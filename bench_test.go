package mrts_test

// One benchmark per figure and table of the paper's evaluation section.
// Each runs the corresponding experiment from internal/bench and logs the
// reproduced table (visible with -v). Scale the problem sizes with
// MRTS_BENCH_SCALE (default 0.15: a laptop-friendly series; 1.0 is the
// repository's full series, the paper's absolute sizes need a cluster).
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=BenchmarkTable7 -v     # one experiment, with its table
//	MRTS_BENCH_SCALE=0.5 go test -bench=BenchmarkFigure8

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"mrts/internal/bench"
	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/workload"
)

func benchScale() float64 {
	if s := os.Getenv("MRTS_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.15
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	opts := bench.Options{Scale: benchScale(), PEs: 4}
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			b.Log("\n" + buf.String())
		}
	}
}

// Figures.

func BenchmarkFigure1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFigure5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// Tables.

func BenchmarkTable1(b *testing.B) { runExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "tab5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "tab6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "tab7") }

// Ablations: the eviction-policy comparison of §II-E, the directory
// location-management comparison of [27], and the conclusion's
// remote-memory configuration.

func BenchmarkAblationPolicies(b *testing.B)    { runExperiment(b, "policies") }
func BenchmarkAblationDirPolicies(b *testing.B) { runExperiment(b, "dirpolicies") }
func BenchmarkAblationRemoteMem(b *testing.B)   { runExperiment(b, "remotemem") }

// Micro-benchmarks of the substrates, for profiling the kernels the
// experiments are built from.

func BenchmarkDelaunayInsert(b *testing.B) {
	m := mesh.New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if _, err := m.InsertPoint(p, mesh.NoTri); err != nil && err != mesh.ErrDuplicate {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuppertRefine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _, err := delaunay.BuildCDT(workload.UnitSquare())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := delaunay.Refine(m, delaunay.Options{MaxArea: 0.0002}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshEncode(b *testing.B) {
	m, _, err := delaunay.BuildCDT(workload.UnitSquare())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := delaunay.Refine(m, delaunay.Options{MaxArea: 0.0002}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(m.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := m.EncodeTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshDecode(b *testing.B) {
	m, _, err := delaunay.BuildCDT(workload.UnitSquare())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := delaunay.Refine(m, delaunay.Options{MaxArea: 0.0002}); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m2 mesh.Mesh
		if err := m2.DecodeFrom(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

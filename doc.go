// Package mrts is a from-scratch Go reproduction of the Multi-layered
// Run-Time System (MRTS) of Kot, Chernikov and Chrisochoides, "The
// Evaluation of an Effective Out-of-core Run-Time System in the Context of
// Parallel Mesh Generation" (IPDPS Workshops, 2011), together with the three
// parallel unstructured mesh generation methods used to evaluate it (UPDR,
// NUPDR, PCDM) and their out-of-core ports.
//
// The implementation lives under internal/; see README.md for the layout,
// DESIGN.md for the architecture and the per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark harness that
// regenerates every figure and table of the paper is exposed through
// bench_test.go (go test -bench) and cmd/mrtsbench.
package mrts

// Command mrtsbench regenerates the figures and tables of the paper's
// evaluation section.
//
// Usage:
//
//	mrtsbench -exp fig5                    # one experiment
//	mrtsbench -exp all -scale 0.25         # the whole evaluation, smaller sizes
//	mrtsbench -exp tab4 -trace out.json    # + Perfetto-loadable event trace
//	mrtsbench -exp all -json BENCH.json    # + machine-readable metrics
//	mrtsbench -pprof localhost:6060 ...    # + live pprof/expvar endpoints
//	mrtsbench -list                        # show experiment IDs
//
// The -trace file is Chrome trace-event JSON: open it at https://ui.perfetto.dev
// (or chrome://tracing) to see per-node swap/comm/sched/app/mcast tracks.
// The -json file is a bench.Doc consumed by cmd/benchgate and the CI
// benchmark-regression gate.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"strings"
	"time"

	"mrts/internal/bench"
	"mrts/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment ID(s), comma-separated (see -list), or 'all'")
		scale     = flag.Float64("scale", 0.25, "problem size multiplier")
		pes       = flag.Int("pes", 4, "processing elements / cluster nodes")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		jsonPath  = flag.String("json", "", "write machine-readable metrics (bench.Doc JSON)")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address while running")
		seed      = flag.Int64("seed", 0, "perturb every seeded random stream in the experiments (0 = legacy fixed seeds)")
		dir       = flag.String("dir", "", "restrict the routing experiment to one locator (placed, lazy, eager, home)")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.Experiments()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	opts := bench.Options{Scale: *scale, PEs: *pes, Seed: *seed, Dir: *dir}
	var sink *obs.TraceSink
	if *tracePath != "" {
		sink = obs.NewTraceSink(obs.DefaultCapacity)
		opts.Trace = sink
	}
	doc := bench.NewDoc(opts)
	if *pprofAddr != "" {
		// Expose the metrics gathered so far next to the stock expvar
		// counters: `curl host:port/debug/vars | jq .bench`.
		expvar.Publish("bench", expvar.Func(func() any { return doc }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mrtsbench: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof/expvar listening on http://%s/debug/pprof\n\n", *pprofAddr)
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrtsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		doc.Add(tbl)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := doc.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "mrtsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *jsonPath)
	}
	if sink != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrtsbench: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, sink.Tracers()...); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "mrtsbench: trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mrtsbench: trace: %v\n", err)
			os.Exit(1)
		}
		var events, dropped int
		for _, tr := range sink.Tracers() {
			events += tr.Len()
			dropped += int(tr.Dropped())
		}
		fmt.Printf("wrote %d trace events to %s (open at https://ui.perfetto.dev)", events, *tracePath)
		if dropped > 0 {
			fmt.Printf(" [%d oldest events overwritten by the ring buffer]", dropped)
		}
		fmt.Println()
	}
}

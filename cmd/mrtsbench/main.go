// Command mrtsbench regenerates the figures and tables of the paper's
// evaluation section.
//
// Usage:
//
//	mrtsbench -exp fig5              # one experiment
//	mrtsbench -exp all -scale 0.25   # the whole evaluation, smaller sizes
//	mrtsbench -list                  # show experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mrts/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale = flag.Float64("scale", 0.25, "problem size multiplier")
		pes   = flag.Int("pes", 4, "processing elements / cluster nodes")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.Experiments()
	if *exp != "all" {
		ids = []string{*exp}
	}
	opts := bench.Options{Scale: *scale, PEs: *pes}
	for _, id := range ids {
		start := time.Now()
		tbl, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrtsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

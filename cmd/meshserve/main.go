// Command meshserve serves a meshstore directory over HTTP, so a mesh — or
// the readable prefix of one still being generated — can be inspected and
// fetched without the cluster that wrote it:
//
//	meshserve -store dir -listen 127.0.0.1:8844
//
//	GET /manifest          the store index as JSON (merged manifest, or one
//	                       assembled by scanning the chunks when the run is
//	                       still in progress — always marked partial then)
//	GET /chunk/<name>      one raw chunk file; supports Range requests
//	GET /block/<key>       one block's decoded payload, digest-verified on
//	                       the way out
//
// Every response carries X-Meshstore-Format; block responses add
// X-Meshstore-SHA256 (hex digest of the body), X-Meshstore-Hash (the
// block's canonical mesh digest) and X-Meshstore-Elements, so a client can
// verify integrity without trusting the transport. The store is re-opened
// per request: a server pointed at a live export directory serves whatever
// whole frames exist at that moment — the streaming-read half of the
// format's crash-tolerance rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mrts/internal/meshstore"
)

func main() {
	var (
		store  = flag.String("store", "", "mesh store directory (required)")
		listen = flag.String("listen", "127.0.0.1:8844", "address to serve on")
	)
	flag.Parse()
	if *store == "" {
		fatalf("-store is required")
	}
	if _, err := os.Stat(*store); err != nil {
		fatalf("store: %v", err)
	}
	logf("serving %s on http://%s", *store, *listen)
	if err := http.ListenAndServe(*listen, newHandler(*store)); err != nil {
		fatalf("%v", err)
	}
}

// newHandler builds the HTTP handler for one store directory.
func newHandler(dir string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest", func(w http.ResponseWriter, r *http.Request) {
		st, err := meshstore.Open(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer st.Close()
		man := st.Manifest()
		w.Header().Set("Content-Type", "application/json")
		setFormatHeaders(w, man)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(man)
	})
	mux.HandleFunc("/chunk/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/chunk/")
		// IsChunkName is the only sanctioned request-path -> file mapping:
		// anything that is not a well-formed chunk name (traversal attempts
		// included) never reaches the filesystem.
		if !meshstore.IsChunkName(name) {
			http.NotFound(w, r)
			return
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Meshstore-Format", fmt.Sprint(meshstore.FormatVersion))
		http.ServeContent(w, r, name, fi.ModTime(), f)
	})
	mux.HandleFunc("/block/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/block/")
		st, err := meshstore.Open(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer st.Close()
		payload, rec, err := st.Payload(key)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		setFormatHeaders(w, st.Manifest())
		w.Header().Set("X-Meshstore-SHA256", rec.PayloadSHA)
		w.Header().Set("X-Meshstore-Hash", rec.Hash)
		w.Header().Set("X-Meshstore-Elements", fmt.Sprint(rec.Elements))
		w.Write(payload)
	})
	return mux
}

func setFormatHeaders(w http.ResponseWriter, man *meshstore.Manifest) {
	w.Header().Set("X-Meshstore-Format", fmt.Sprint(man.Format))
	w.Header().Set("X-Meshstore-Partial", fmt.Sprint(man.Partial))
	if man.MeshHash != "" {
		w.Header().Set("X-Meshstore-Mesh-Hash", man.MeshHash)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshserve: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshserve: "+format+"\n", args...)
	os.Exit(1)
}

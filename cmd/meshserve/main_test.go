package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mrts/internal/meshstore"
)

func testPayload(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%7)
	}
	return b
}

// writeStore builds a 2x2 store with one writer. When finalize is false the
// writer is left open — the shape of a run still exporting — and only the
// first `blocks` grid cells are appended.
func writeStore(t *testing.T, dir string, blocks int, finalize bool) {
	t.Helper()
	w, err := meshstore.NewWriter(meshstore.WriterConfig{
		Dir:      dir,
		Writer:   0,
		Meta:     meshstore.Meta{Blocks: 2, TargetElements: 100},
		Compress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for j := 0; j < 2 && n < blocks; j++ {
		for i := 0; i < 2 && n < blocks; i++ {
			p := testPayload(byte(n), 900)
			sum := sha256.Sum256(p)
			err := w.Append(meshstore.BlockKey(i, j), i, j, int32(10+n),
				hex.EncodeToString(sum[:]), p)
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if !finalize {
		return // live run: chunk on disk, no manifest yet
	}
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := meshstore.MergeManifests(dir); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeCompleteStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 4, true)
	srv := httptest.NewServer(newHandler(dir))
	defer srv.Close()

	resp, body := get(t, srv, "/manifest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d", resp.StatusCode)
	}
	var man meshstore.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	if man.Partial || man.Blocks() != 4 || man.MeshHash == "" {
		t.Fatalf("manifest: partial=%v blocks=%d hash=%q", man.Partial, man.Blocks(), man.MeshHash)
	}
	if got := resp.Header.Get("X-Meshstore-Mesh-Hash"); got != man.MeshHash {
		t.Fatalf("mesh hash header %q != manifest %q", got, man.MeshHash)
	}
	if got := resp.Header.Get("X-Meshstore-Partial"); got != "false" {
		t.Fatalf("partial header %q", got)
	}

	// Block fetch: body is the decoded payload; the digest header must match
	// the body so a client can verify integrity end to end.
	resp, body = get(t, srv, "/block/"+meshstore.BlockKey(1, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("block: status %d", resp.StatusCode)
	}
	if want := testPayload(1, 900); string(body) != string(want) {
		t.Fatal("block body differs from the appended payload")
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get("X-Meshstore-SHA256"); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("integrity header %q does not digest the body", got)
	}
	if got := resp.Header.Get("X-Meshstore-Elements"); got != "11" {
		t.Fatalf("elements header %q, want 11", got)
	}

	resp, _ = get(t, srv, "/block/no-such-block")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing block: status %d, want 404", resp.StatusCode)
	}
}

func TestServeChunkRange(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 4, true)
	srv := httptest.NewServer(newHandler(dir))
	defer srv.Close()

	req, err := http.NewRequest("GET", srv.URL+"/chunk/chunk-000.mshc", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", "bytes=0-3")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range request: status %d, want 206", resp.StatusCode)
	}
	if string(body) != "MSC1" {
		t.Fatalf("first four chunk bytes %q, want the frame magic", body)
	}

	// Only well-formed chunk names map to files; nothing else reaches the
	// filesystem.
	for _, path := range []string{
		"/chunk/MANIFEST.json",
		"/chunk/chunk-0.mshc",       // non-canonical digits
		"/chunk/..%2fMANIFEST.json", // traversal
	} {
		resp, _ := get(t, srv, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServePartialMidRun is the acceptance property: a store still being
// written — chunk growing, no manifest anywhere — serves its intact prefix,
// clearly marked partial.
func TestServePartialMidRun(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 2, false) // 2 of 4 blocks, writer never finalized
	srv := httptest.NewServer(newHandler(dir))
	defer srv.Close()

	resp, body := get(t, srv, "/manifest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Meshstore-Partial"); got != "true" {
		t.Fatalf("partial header %q, want true", got)
	}
	var man meshstore.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}
	if !man.Partial || man.Blocks() != 2 {
		t.Fatalf("mid-run manifest: partial=%v blocks=%d, want partial with 2 blocks", man.Partial, man.Blocks())
	}

	resp, body = get(t, srv, "/block/"+meshstore.BlockKey(0, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-run block fetch: status %d", resp.StatusCode)
	}
	if want := testPayload(0, 900); string(body) != string(want) {
		t.Fatal("mid-run block body differs from the appended payload")
	}
	resp, _ = get(t, srv, "/block/"+meshstore.BlockKey(0, 1))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unwritten block: status %d, want 404", resp.StatusCode)
	}
}

// Command meshgen generates a mesh with any of the six method builds and
// prints run statistics, optionally writing the per-subdomain meshes'
// element counts.
//
// Usage:
//
//	meshgen -method updr   -elements 100000 -pes 4
//	meshgen -method onupdr -elements 200000 -pes 4 -budget 2000000
//	meshgen -method opcdm  -elements 500000 -pes 8 -policy lfu -spool /tmp/spool
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mrts/internal/cluster"
	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/meshgen"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/render"
	"mrts/internal/trace"
	"mrts/internal/workload"
)

func main() {
	var (
		method   = flag.String("method", "updr", "updr|nupdr|pcdm|oupdr|onupdr|opcdm")
		elements = flag.Int("elements", 50000, "target element count")
		pes      = flag.Int("pes", 4, "processing elements (in-core) / nodes (OOC)")
		budget   = flag.Int64("budget", 0, "per-node memory budget in bytes (OOC methods; 0 = generous)")
		policy   = flag.String("policy", "lru", "eviction policy: lru|lfu|mru|mu|lu")
		spool    = flag.String("spool", "", "spool directory for OOC storage (default: temp dir)")
		quality  = flag.Float64("quality", 0, "radius-edge quality bound (0 = sqrt 2)")
		svgPath  = flag.String("svg", "", "also render an equivalent sequential mesh to this SVG file")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (OOC methods; open in Perfetto)")
	)
	flag.Parse()

	m := strings.ToLower(*method)
	ooM := strings.HasPrefix(m, "o") && m != "updr"
	var res meshgen.Result
	var err error
	var sink *obs.TraceSink
	if *traceOut != "" {
		if !ooM {
			fatalf("-trace requires an OOC method (the tracer lives in the runtime cluster)")
		}
		sink = obs.NewTraceSink(obs.DefaultCapacity)
	}

	if !ooM {
		switch m {
		case "updr":
			res, err = meshgen.RunUPDR(meshgen.UPDRConfig{
				Blocks: 6, TargetElements: *elements, PEs: *pes, QualityBound: *quality,
			})
		case "nupdr":
			res, err = meshgen.RunNUPDR(meshgen.NUPDRConfig{
				TargetElements: *elements, PEs: *pes, QualityBound: *quality,
			})
		case "pcdm":
			res, err = meshgen.RunPCDM(meshgen.PCDMConfig{
				Grid: 6, TargetElements: *elements, PEs: *pes, QualityBound: *quality,
			})
		default:
			fatalf("unknown method %q", *method)
		}
	} else {
		dir := *spool
		if dir == "" {
			var cleanup func()
			dir, cleanup, err = cluster.TempSpoolDir("meshgen-")
			if err != nil {
				fatalf("spool: %v", err)
			}
			defer cleanup()
		}
		b := *budget
		if b <= 0 {
			b = int64(*elements) * 30
		}
		cl, cerr := cluster.New(cluster.Config{
			Nodes:     *pes,
			MemBudget: b,
			Policy:    ooc.Policy(*policy),
			SpoolDir:  dir,
			Factory:   meshgen.Factory,
			Trace:     sink,
		})
		if cerr != nil {
			fatalf("cluster: %v", cerr)
		}
		defer cl.Close()
		switch m {
		case "oupdr":
			res, err = meshgen.RunOUPDR(cl, meshgen.UPDRConfig{
				Blocks: 6, TargetElements: *elements, QualityBound: *quality,
			})
		case "onupdr":
			res, err = meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{
				TargetElements: *elements, QualityBound: *quality,
			})
		case "opcdm":
			res, err = meshgen.RunOPCDM(cl, meshgen.PCDMConfig{
				Grid: 6, TargetElements: *elements, QualityBound: *quality,
			})
		default:
			fatalf("unknown method %q", *method)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Println(res)
	fmt.Printf("conforming interfaces: %v\n", res.Conforming)
	if *svgPath != "" {
		if err := writeSVG(*svgPath, m, *elements, *quality); err != nil {
			fatalf("svg: %v", err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if ooM {
		r := res.Report
		fmt.Printf("comp %.1f%%  comm %.1f%%  disk %.1f%%  overlap %.1f%%\n",
			r.Percent(trace.Comp), r.Percent(trace.Comm), r.Percent(trace.Disk), r.Overlap())
		fmt.Printf("evictions %d  loads %d  peak mem %d KB\n",
			res.Mem.Evictions, res.Mem.Loads, res.Mem.PeakMemUsed/1024)
	}
	if sink != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("trace: %v", err)
		}
		if err := obs.WriteChromeTrace(f, sink.Tracers()...); err != nil {
			f.Close()
			fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("wrote trace to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
}

// writeSVG meshes the method's domain sequentially with equivalent sizing
// and renders it (the parallel runners do not retain their meshes).
func writeSVG(path, method string, elements int, quality float64) error {
	var mm *mesh.Mesh
	var err error
	switch method {
	case "nupdr", "onupdr":
		mm, _, err = delaunay.BuildCDT(workload.UnitSquare())
		if err != nil {
			return err
		}
		size := workload.GradedRadial(geom.Pt(0.5, 0.5),
			workload.UniformSizeFor(elements, 1)/2, 0.08)
		_, err = delaunay.Refine(mm, delaunay.Options{QualityBound: quality, SizeFunc: size})
	default:
		mm, _, err = delaunay.BuildCDT(workload.UnitSquare())
		if err != nil {
			return err
		}
		_, err = delaunay.Refine(mm, delaunay.Options{
			QualityBound: quality,
			MaxArea:      workload.UniformAreaFor(elements, 1),
		})
	}
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.WriteSVG(f, mm, render.Options{FillByQuality: true, Constrained: true})
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshgen: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"fmt"

	"mrts/internal/delaunay3"
	"mrts/internal/geom3"
	"mrts/internal/mesh3"
)

func main() {
	box := geom3.NewBox(geom3.Pt(0, 0, 0), geom3.Pt(1, 1, 1))
	m, err := delaunay3.NewBoxMesh(box)
	if err != nil {
		panic(err)
	}
	stats, err := delaunay3.Refine(m, box, delaunay3.Options{
		Size:        func(geom3.Point) float64 { return 0.16 },
		MaxVertices: 3000,
	})
	fmt.Printf("stats=%+v err=%v verts=%d tets=%d\n", stats, err, m.NumVertices(), m.NumInteriorTets())
	if err := m.Validate(); err != nil {
		fmt.Println("VALIDATE:", err)
	}
	// Inspect the worst remaining tets.
	worst := 0
	m.ForEachTet(func(id mesh3.TetID, _ mesh3.Tet) {
		if m.HasSuperVertex(id) {
			return
		}
		g := m.Geom(id)
		if !box.Contains(g.Centroid()) {
			return
		}
		if g.Circumradius() > 0.16 {
			worst++
			if worst <= 5 {
				fmt.Printf("bad tet: R=%.4f L=%.4f vol=%.2e ratio=%.1f\n",
					g.Circumradius(), g.LongestEdge(), g.Volume(), g.RadiusEdgeRatio())
			}
		}
	})
	fmt.Println("bad remaining:", worst)
}

// Command meshctl launches and drives a multi-process OUPDR cluster: it
// spawns one cmd/meshnode process per node (the first is the membership
// seed), steps them through the phase barriers over their stdin/stdout
// protocol, optionally SIGKILLs one worker between phases and relaunches it
// from its checkpoint under the same node ID, and finally merges the
// per-node block dumps into one mesh report — verifying every block is
// reported exactly once.
//
//	meshctl -meshnode bin/meshnode -nodes 1 -out baseline.txt
//	meshctl -meshnode bin/meshnode -nodes 3 -kill 2 -kill-after 0 -baseline baseline.txt
//
// The second invocation exits nonzero unless the cluster's mesh — through a
// kill and rejoin — is identical to the baseline file. Per-node stderr goes
// to node<id>.log under -dir.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		meshnode  = flag.String("meshnode", "meshnode", "path to the meshnode binary")
		nodes     = flag.Int("nodes", 3, "cluster size")
		blocks    = flag.Int("blocks", 6, "decomposition grid dimension")
		elements  = flag.Int("elements", 50000, "target total element count")
		quality   = flag.Float64("quality", 0, "radius-edge quality bound")
		phases    = flag.Int("phases", 3, "barrier-separated kick-off phases")
		budget    = flag.Int64("budget", 0, "per-node memory budget in bytes")
		dir       = flag.String("dir", "", "working directory for logs/spools/checkpoints (default: temp)")
		kill      = flag.Int("kill", -1, "worker node to SIGKILL and relaunch mid-run (-1: none; 0, the seed, is not killable)")
		killAfter = flag.Int("kill-after", 0, "phase barrier after which to kill")
		out       = flag.String("out", "", "write the merged block dump to this file")
		baseline  = flag.String("baseline", "", "compare the merged dump against this file; exit 1 on any difference")
		routing   = flag.String("routing", "placed", "routing locator passed to every node: placed, lazy, eager or home")
		trace     = flag.Bool("trace", false, "have each node write a Chrome trace under -dir")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-step timeout")
	)
	flag.Parse()
	if *kill == 0 || *kill >= *nodes {
		fatalf("-kill must name a worker node in [1,%d)", *nodes)
	}
	if *kill > 0 && (*killAfter < 0 || *killAfter >= *phases-1) {
		fatalf("-kill-after must leave a phase to run after the rejoin (have %d phases)", *phases)
	}

	work := *dir
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "meshctl-")
		if err != nil {
			fatalf("workdir: %v", err)
		}
		defer os.RemoveAll(work)
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		fatalf("workdir: %v", err)
	}

	ctl := &control{
		meshnode: *meshnode, work: work, nodes: *nodes, timeout: *timeout,
		common: []string{
			"-nodes", fmt.Sprint(*nodes),
			"-blocks", fmt.Sprint(*blocks),
			"-elements", fmt.Sprint(*elements),
			"-quality", fmt.Sprint(*quality),
			"-phases", fmt.Sprint(*phases),
			"-budget", fmt.Sprint(*budget),
			"-routing", *routing,
			"-heartbeat", "100ms",
			"-expire", "1s",
		},
		trace: *trace,
		procs: make([]*proc, *nodes),
	}
	defer ctl.killAll()

	// Launch the seed first, then the workers against its address.
	seed, err := ctl.launch(0, false)
	if err != nil {
		fatalf("launch seed: %v", err)
	}
	ctl.procs[0] = seed
	ctl.seedAddr = seed.addr
	for i := 1; i < *nodes; i++ {
		p, err := ctl.launch(i, false)
		if err != nil {
			fatalf("launch node %d: %v", i, err)
		}
		ctl.procs[i] = p
	}

	for k := 0; k < *phases; k++ {
		if err := ctl.phase(k); err != nil {
			fatalf("phase %d: %v", k, err)
		}
		logf("phase %d complete on all %d nodes", k, *nodes)
		if *kill > 0 && k == *killAfter {
			victim := ctl.procs[*kill]
			logf("killing node %d (pid %d)", *kill, victim.cmd.Process.Pid)
			victim.cmd.Process.Kill()
			victim.cmd.Wait()
			p, err := ctl.launch(*kill, true)
			if err != nil {
				fatalf("relaunch node %d: %v", *kill, err)
			}
			ctl.procs[*kill] = p
			logf("node %d rejoined at %s and restored from checkpoint", *kill, p.addr)
		}
	}

	dump, err := ctl.dump()
	if err != nil {
		fatalf("dump: %v", err)
	}
	report := strings.Join(dump, "\n") + "\n"
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fatalf("out: %v", err)
		}
		logf("wrote %d blocks to %s", len(dump), *out)
	}

	if err := ctl.quitAll(); err != nil {
		fatalf("shutdown: %v", err)
	}

	if *baseline != "" {
		want, err := os.ReadFile(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		if string(want) != report {
			diff(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), dump)
			fatalf("mesh differs from baseline %s", *baseline)
		}
		logf("mesh identical to baseline %s (%d blocks)", *baseline, len(dump))
	}
}

// proc is one running meshnode process.
type proc struct {
	id    int
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
	addr  string
}

type control struct {
	meshnode string
	work     string
	nodes    int
	timeout  time.Duration
	common   []string
	trace    bool
	seedAddr string
	procs    []*proc
}

// launch starts node i: the seed listens, workers dial the seed; a relaunch
// reclaims the node's old ID and restores from its checkpoint directory.
func (c *control) launch(i int, relaunch bool) (*proc, error) {
	ndir := filepath.Join(c.work, fmt.Sprintf("node%d", i))
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-spool", filepath.Join(ndir, "spool"),
		"-ckpt", filepath.Join(ndir, "ckpt"),
	}, c.common...)
	if i > 0 {
		args = append(args, "-seed", c.seedAddr)
	}
	if relaunch {
		args = append(args, "-restore", "-id", fmt.Sprint(i))
	}
	if c.trace {
		args = append(args, "-trace", filepath.Join(c.work, fmt.Sprintf("node%d.trace.json", i)))
	}

	if err := os.MkdirAll(ndir, 0o755); err != nil {
		return nil, err
	}
	logName := filepath.Join(c.work, fmt.Sprintf("node%d.log", i))
	logFile, err := os.OpenFile(logName, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}

	cmd := exec.Command(c.meshnode, args...)
	cmd.Stderr = logFile
	stdin, err := cmd.StdinPipe()
	if err != nil {
		logFile.Close()
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logFile.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, err
	}
	logFile.Close() // the child holds its own descriptor now

	p := &proc{id: i, cmd: cmd, stdin: stdin, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			p.lines <- sc.Text()
		}
		close(p.lines)
	}()

	ready, err := c.expect(p, "ready ")
	if err != nil {
		return nil, fmt.Errorf("node %d not ready: %w (see %s)", i, err, logName)
	}
	var id int
	if _, err := fmt.Sscanf(ready, "ready %d %s", &id, &p.addr); err != nil {
		return nil, fmt.Errorf("node %d: bad ready line %q", i, ready)
	}
	if id != i {
		return nil, fmt.Errorf("launched node %d but the seed assigned ID %d", i, id)
	}
	return p, nil
}

// expect reads lines from p until one starts with prefix.
func (c *control) expect(p *proc, prefix string) (string, error) {
	deadline := time.After(c.timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				return "", fmt.Errorf("process exited (wanted %q)", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line, nil
			}
			return "", fmt.Errorf("unexpected output %q (wanted %q)", line, prefix)
		case <-deadline:
			return "", fmt.Errorf("timeout waiting for %q", prefix)
		}
	}
}

// phase drives one global barrier: every node posts its share, and the
// barrier completes only when the distributed termination protocol fires on
// all of them.
func (c *control) phase(k int) error {
	for _, p := range c.procs {
		if _, err := fmt.Fprintf(p.stdin, "phase %d\n", k); err != nil {
			return fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	for _, p := range c.procs {
		if _, err := c.expect(p, fmt.Sprintf("done %d", k)); err != nil {
			return fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	return nil
}

// dump collects every node's block reports and merges them, verifying each
// block appears exactly once across the cluster.
func (c *control) dump() ([]string, error) {
	for _, p := range c.procs {
		if _, err := fmt.Fprintln(p.stdin, "dump"); err != nil {
			return nil, fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	seen := make(map[string]int) // "j i" -> reporting node
	var all []string
	for _, p := range c.procs {
		deadline := time.After(c.timeout)
		for {
			var line string
			var ok bool
			select {
			case line, ok = <-p.lines:
				if !ok {
					return nil, fmt.Errorf("node %d exited mid-dump", p.id)
				}
			case <-deadline:
				return nil, fmt.Errorf("node %d: timeout mid-dump", p.id)
			}
			if line == "dumped" {
				break
			}
			rec, found := strings.CutPrefix(line, "block ")
			if !found {
				return nil, fmt.Errorf("node %d: unexpected output %q", p.id, line)
			}
			f := strings.Fields(rec)
			if len(f) != 4 {
				return nil, fmt.Errorf("node %d: bad block line %q", p.id, line)
			}
			key := f[0] + " " + f[1]
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("block (%s) reported by both node %d and node %d", key, prev, p.id)
			}
			seen[key] = p.id
			all = append(all, rec)
		}
	}
	sort.Strings(all)
	return all, nil
}

func (c *control) quitAll() error {
	for _, p := range c.procs {
		fmt.Fprintln(p.stdin, "quit")
	}
	var firstErr error
	for _, p := range c.procs {
		if err := p.cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("node %d: %w", p.id, err)
		}
		p.cmd = nil
	}
	return firstErr
}

func (c *control) killAll() {
	for _, p := range c.procs {
		if p != nil && p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
	}
}

// diff prints the first few lines that differ between the baseline and the
// cluster dump.
func diff(want, got []string) {
	n := 0
	for i := 0; i < len(want) || i < len(got); i++ {
		w, g := "", ""
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			fmt.Fprintf(os.Stderr, "meshctl: line %d: baseline %q, cluster %q\n", i+1, w, g)
			if n++; n >= 5 {
				fmt.Fprintln(os.Stderr, "meshctl: ...")
				return
			}
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshctl: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshctl: "+format+"\n", args...)
	os.Exit(1)
}

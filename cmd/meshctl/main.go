// Command meshctl launches and drives a multi-process OUPDR cluster, and
// operates on the chunked mesh stores such runs export.
//
// Run mode (the default, bare flags) spawns one cmd/meshnode process per node
// (the first is the membership seed), steps them through the phase barriers
// over their stdin/stdout protocol, optionally SIGKILLs one worker between
// phases and relaunches it from its checkpoint under the same node ID, and
// finally merges the per-node block dumps into one mesh report — verifying
// every block is reported exactly once:
//
//	meshctl -meshnode bin/meshnode -nodes 1 -out baseline.txt
//	meshctl -meshnode bin/meshnode -nodes 3 -kill 2 -kill-after 0 -baseline baseline.txt
//
// Subcommands operate on the meshstore format:
//
//	meshctl export  -meshnode bin/meshnode -nodes 3 -store dir [-kill-export 2]
//	meshctl verify  -store dir [-deep]
//	meshctl restore -store dir -nodes 2 [-baseline baseline.txt]
//
// export runs the cluster to completion and has every node stream its blocks
// into one chunk per node under -store, then merges the per-node manifests
// into MANIFEST.json and verifies the store offline. The block report (-out)
// is rendered from the manifest index — block payloads never pass through
// the launcher, unlike the in-memory dump merge of run mode. -kill-export
// SIGKILLs a worker right after it starts exporting and relaunches it from
// its checkpoint; the fresh incarnation truncates the partial chunk and
// re-exports.
//
// restore proves rank independence: it rebuilds the mesh from a store onto
// -nodes in-process runtimes — however many nodes wrote it — and compares
// the restored mesh's canonical hash against the manifest's.
//
// Per-node stderr goes to node<id>.log under -dir.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/meshstore"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "export":
			exportMain(os.Args[2:])
			return
		case "verify":
			verifyMain(os.Args[2:])
			return
		case "restore":
			restoreMain(os.Args[2:])
			return
		}
	}
	runMain(os.Args[1:])
}

// clusterOpts are the flags shared by every mode that launches meshnode
// processes.
type clusterOpts struct {
	meshnode string
	nodes    int
	blocks   int
	elements int
	quality  float64
	phases   int
	budget   int64
	dir      string
	routing  string
	trace    bool
	timeout  time.Duration
}

func registerClusterOpts(fs *flag.FlagSet) *clusterOpts {
	o := &clusterOpts{}
	fs.StringVar(&o.meshnode, "meshnode", "meshnode", "path to the meshnode binary")
	fs.IntVar(&o.nodes, "nodes", 3, "cluster size")
	fs.IntVar(&o.blocks, "blocks", 6, "decomposition grid dimension")
	fs.IntVar(&o.elements, "elements", 50000, "target total element count")
	fs.Float64Var(&o.quality, "quality", 0, "radius-edge quality bound")
	fs.IntVar(&o.phases, "phases", 3, "barrier-separated kick-off phases")
	fs.Int64Var(&o.budget, "budget", 0, "per-node memory budget in bytes")
	fs.StringVar(&o.dir, "dir", "", "working directory for logs/spools/checkpoints (default: temp)")
	fs.StringVar(&o.routing, "routing", "placed", "routing locator passed to every node: placed, lazy, eager or home")
	fs.BoolVar(&o.trace, "trace", false, "have each node write a Chrome trace under -dir")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Minute, "per-step timeout")
	return o
}

// start creates the working directory and launches the full cluster: the
// seed first, then the workers against its address. The returned cleanup
// removes a temporary working directory.
func (o *clusterOpts) start(extra ...string) (*control, func()) {
	work := o.dir
	cleanup := func() {}
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "meshctl-")
		if err != nil {
			fatalf("workdir: %v", err)
		}
		cleanup = func() { os.RemoveAll(work) }
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		fatalf("workdir: %v", err)
	}

	ctl := &control{
		meshnode: o.meshnode, work: work, nodes: o.nodes, timeout: o.timeout,
		common: append([]string{
			"-nodes", fmt.Sprint(o.nodes),
			"-blocks", fmt.Sprint(o.blocks),
			"-elements", fmt.Sprint(o.elements),
			"-quality", fmt.Sprint(o.quality),
			"-phases", fmt.Sprint(o.phases),
			"-budget", fmt.Sprint(o.budget),
			"-routing", o.routing,
			"-heartbeat", "100ms",
			"-expire", "1s",
		}, extra...),
		trace: o.trace,
		procs: make([]*proc, o.nodes),
	}

	seed, err := ctl.launch(0, false)
	if err != nil {
		ctl.killAll()
		cleanup()
		fatalf("launch seed: %v", err)
	}
	ctl.procs[0] = seed
	ctl.seedAddr = seed.addr
	for i := 1; i < o.nodes; i++ {
		p, err := ctl.launch(i, false)
		if err != nil {
			ctl.killAll()
			cleanup()
			fatalf("launch node %d: %v", i, err)
		}
		ctl.procs[i] = p
	}
	return ctl, cleanup
}

// runPhases drives every phase barrier, optionally killing and relaunching
// worker `kill` after barrier killAfter.
func (c *control) runPhases(phases, kill, killAfter int) {
	for k := 0; k < phases; k++ {
		if err := c.phase(k); err != nil {
			fatalf("phase %d: %v", k, err)
		}
		logf("phase %d complete on all %d nodes", k, c.nodes)
		if kill > 0 && k == killAfter {
			victim := c.procs[kill]
			logf("killing node %d (pid %d)", kill, victim.cmd.Process.Pid)
			victim.cmd.Process.Kill()
			victim.cmd.Wait()
			p, err := c.launch(kill, true)
			if err != nil {
				fatalf("relaunch node %d: %v", kill, err)
			}
			c.procs[kill] = p
			logf("node %d rejoined at %s and restored from checkpoint", kill, p.addr)
		}
	}
}

func runMain(args []string) {
	fs := flag.NewFlagSet("meshctl", flag.ExitOnError)
	o := registerClusterOpts(fs)
	var (
		kill      = fs.Int("kill", -1, "worker node to SIGKILL and relaunch mid-run (-1: none; 0, the seed, is not killable)")
		killAfter = fs.Int("kill-after", 0, "phase barrier after which to kill")
		out       = fs.String("out", "", "write the merged block dump to this file")
		baseline  = fs.String("baseline", "", "compare the merged dump against this file; exit 1 on any difference")
	)
	fs.Parse(args)
	if *kill == 0 || *kill >= o.nodes {
		fatalf("-kill must name a worker node in [1,%d)", o.nodes)
	}
	if *kill > 0 && (*killAfter < 0 || *killAfter >= o.phases-1) {
		fatalf("-kill-after must leave a phase to run after the rejoin (have %d phases)", o.phases)
	}

	ctl, cleanup := o.start()
	defer cleanup()
	defer ctl.killAll()

	ctl.runPhases(o.phases, *kill, *killAfter)

	dump, err := ctl.dump(o.blocks * o.blocks)
	if err != nil {
		fatalf("dump: %v", err)
	}
	if err := ctl.quitAll(); err != nil {
		fatalf("shutdown: %v", err)
	}
	finishReport(dump, *out, *baseline)
}

// exportMain runs the cluster to completion and streams the mesh into a
// chunked store, one chunk per node, then merges and verifies offline.
func exportMain(args []string) {
	fs := flag.NewFlagSet("meshctl export", flag.ExitOnError)
	o := registerClusterOpts(fs)
	var (
		store      = fs.String("store", "", "mesh store directory (required)")
		killExport = fs.Int("kill-export", -1, "worker to SIGKILL right after it starts exporting, then relaunch and re-export (-1: none)")
		compress   = fs.Bool("compress", true, "flate-compress chunk frames")
		out        = fs.String("out", "", "write the manifest-derived block report to this file")
		baseline   = fs.String("baseline", "", "compare the block report against this file; exit 1 on any difference")
	)
	fs.Parse(args)
	if *store == "" {
		fatalf("export: -store is required")
	}
	if *killExport == 0 || *killExport >= o.nodes {
		fatalf("export: -kill-export must name a worker node in [1,%d)", o.nodes)
	}
	// Workers inherit this process's working directory; make the store path
	// absolute so launcher and workers agree on it regardless.
	abs, err := filepath.Abs(*store)
	if err != nil {
		fatalf("export: %v", err)
	}
	*store = abs

	ctl, cleanup := o.start("-compress=" + fmt.Sprint(*compress))
	defer cleanup()
	defer ctl.killAll()

	ctl.runPhases(o.phases, -1, 0)

	if *killExport > 0 {
		// Crash drill: tell the victim to export and SIGKILL it immediately —
		// depending on the race it dies before, during, or after appending
		// frames, possibly mid-frame. The export barrier is still pending on
		// the other nodes, so nothing else is disturbed; the relaunched
		// incarnation restores from its phase checkpoint and its fresh writer
		// truncates whatever the dead one left in the chunk.
		victim := ctl.procs[*killExport]
		fmt.Fprintf(victim.stdin, "export %s\n", *store)
		logf("killing node %d (pid %d) mid-export", *killExport, victim.cmd.Process.Pid)
		victim.cmd.Process.Kill()
		victim.cmd.Wait()
		p, err := ctl.launch(*killExport, true)
		if err != nil {
			fatalf("relaunch node %d: %v", *killExport, err)
		}
		ctl.procs[*killExport] = p
		logf("node %d rejoined at %s and restored from checkpoint", *killExport, p.addr)
	}

	for _, p := range ctl.procs {
		if _, err := fmt.Fprintf(p.stdin, "export %s\n", *store); err != nil {
			fatalf("export node %d: %v", p.id, err)
		}
	}
	for _, p := range ctl.procs {
		line, err := ctl.expect(p, "exported ")
		if err != nil {
			fatalf("export node %d: %v", p.id, err)
		}
		logf("node %d: %s", p.id, line)
	}
	if err := ctl.quitAll(); err != nil {
		fatalf("shutdown: %v", err)
	}

	man, err := meshstore.MergeManifests(*store)
	if err != nil {
		fatalf("merge: %v", err)
	}
	if man.Partial {
		fatalf("merged store does not cover the %dx%d grid", o.blocks, o.blocks)
	}
	rep, err := meshstore.Verify(*store)
	if err != nil {
		fatalf("verify: %v", err)
	}
	if !rep.OK() {
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "meshctl: verify: %s\n", p)
		}
		fatalf("store failed verification with %d problems", len(rep.Problems))
	}
	logf("exported %d blocks (%d bytes on disk) to %s", rep.Blocks, rep.Bytes, *store)
	logf("MeshHash %s", man.MeshHash)
	finishReport(manifestReport(man), *out, *baseline)
}

// verifyMain checks a store offline: chunk walk, payload digests, index
// cross-check, combined hash. -deep additionally decodes every block payload
// and recomputes its canonical mesh digest — no cluster involved.
func verifyMain(args []string) {
	fs := flag.NewFlagSet("meshctl verify", flag.ExitOnError)
	var (
		store = fs.String("store", "", "mesh store directory (required)")
		deep  = fs.Bool("deep", false, "decode every block payload and recompute its canonical mesh digest")
	)
	fs.Parse(args)
	if *store == "" {
		fatalf("verify: -store is required")
	}
	rep, err := meshstore.Verify(*store)
	if err != nil {
		fatalf("verify: %v", err)
	}
	problems := rep.Problems
	if *deep {
		problems = append(problems, deepVerify(*store)...)
	}
	logf("store %s: format %d, %d blocks, %d bytes, partial=%v",
		*store, rep.Format, rep.Blocks, rep.Bytes, rep.Partial)
	if rep.MeshHash != "" {
		logf("MeshHash %s", rep.MeshHash)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "meshctl: verify: %s\n", p)
		}
		fatalf("store failed verification with %d problems", len(problems))
	}
	logf("store verified clean")
}

// deepVerify re-derives every block's canonical digest from its decoded
// payload and compares it against the manifest index.
func deepVerify(dir string) []string {
	st, err := meshstore.Open(dir)
	if err != nil {
		return []string{err.Error()}
	}
	defer st.Close()
	nb := st.Manifest().Meta.Blocks
	if nb <= 0 {
		return []string{"deep verify needs a merged manifest (meta unknown)"}
	}
	var problems []string
	for _, rec := range st.Manifest().Records() {
		payload, _, err := st.Payload(rec.Key)
		if err != nil {
			problems = append(problems, fmt.Sprintf("block %s: %v", rec.Key, err))
			continue
		}
		dump, err := meshgen.DecodeExportedBlock(payload, nb)
		if err != nil {
			problems = append(problems, fmt.Sprintf("block %s: decode: %v", rec.Key, err))
			continue
		}
		if dump.I != rec.I || dump.J != rec.J || dump.Elements != rec.Elements || dump.Hash != rec.Hash {
			problems = append(problems, fmt.Sprintf("block %s: payload decodes to %v, index says %v",
				rec.Key, dump, meshgen.BlockDump{I: rec.I, J: rec.J, Elements: rec.Elements, Hash: rec.Hash}))
		}
	}
	return problems
}

// restoreMain rebuilds the mesh from a store onto -nodes in-process
// runtimes — the store may have been written by any number of nodes — and
// compares the restored mesh's canonical hash against the manifest's.
func restoreMain(args []string) {
	fs := flag.NewFlagSet("meshctl restore", flag.ExitOnError)
	var (
		store    = fs.String("store", "", "mesh store directory (required)")
		nodes    = fs.Int("nodes", 2, "number of nodes to restore onto")
		workers  = fs.Int("workers", 2, "task pool workers per node")
		budget   = fs.Int64("budget", 0, "per-node memory budget in bytes (0 = elements*30)")
		out      = fs.String("out", "", "write the restored block report to this file")
		baseline = fs.String("baseline", "", "compare the restored report against this file; exit 1 on any difference")
	)
	fs.Parse(args)
	if *store == "" {
		fatalf("restore: -store is required")
	}
	if *nodes <= 0 {
		fatalf("restore: -nodes must be positive")
	}
	st, err := meshstore.Open(*store)
	if err != nil {
		fatalf("restore: %v", err)
	}
	defer st.Close()
	if st.Partial() {
		fatalf("restore: store %s is partial; restore needs full grid coverage", *store)
	}
	meta := st.Manifest().Meta

	b := *budget
	if b <= 0 {
		b = int64(meta.TargetElements) * 30
	}
	tr := comm.NewInProc(*nodes, comm.LatencyModel{})
	ds := make([]*meshgen.Dist, *nodes)
	rts := make([]*core.Runtime, *nodes)
	for i := 0; i < *nodes; i++ {
		rts[i] = core.NewRuntime(core.Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     sched.NewWorkStealing(*workers),
			Factory:  meshgen.Factory,
			Mem:      ooc.Config{Budget: b},
			Store:    storage.NewMem(),
			NumNodes: *nodes,
		})
		defer rts[i].Close()
		ds[i], err = meshgen.NewDist(rts[i], meshgen.DistConfig{
			Blocks:         meta.Blocks,
			TargetElements: meta.TargetElements,
			QualityBound:   meta.QualityBound,
			Nodes:          *nodes,
			Node:           i,
		})
		if err != nil {
			fatalf("restore: %v", err)
		}
		if err := ds[i].RestoreFromStore(st); err != nil {
			fatalf("restore node %d: %v", i, err)
		}
	}
	logf("restored %d blocks onto %d nodes from %s", st.Manifest().Blocks(), *nodes, *store)

	// The dump barrier is global: every node must run it concurrently.
	dumps := make([][]meshgen.BlockDump, *nodes)
	var wg sync.WaitGroup
	for i := range ds {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			dumps[i] = ds[i].Dump()
		}()
	}
	wg.Wait()
	var all []meshgen.BlockDump
	for _, part := range dumps {
		all = append(all, part...)
	}
	if len(all) != meta.Blocks*meta.Blocks {
		fatalf("restore: dumped %d blocks, grid holds %d", len(all), meta.Blocks*meta.Blocks)
	}
	if got := meshgen.MeshHashOf(all); got != st.MeshHash() {
		fatalf("restored MeshHash %s != store %s", got, st.MeshHash())
	}
	logf("restored MeshHash matches store: %s", st.MeshHash())

	lines := make([]string, len(all))
	for i, bd := range all {
		lines[i] = bd.String()
	}
	sort.Strings(lines)
	finishReport(lines, *out, *baseline)
}

// manifestReport renders the canonical block report from the manifest index
// alone — the streaming replacement for run mode's in-memory dump merge.
func manifestReport(man *meshstore.Manifest) []string {
	recs := man.Records()
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = meshgen.BlockDump{I: r.I, J: r.J, Elements: r.Elements, Hash: r.Hash}.String()
	}
	sort.Strings(lines)
	return lines
}

// finishReport writes the block report and/or compares it to a baseline.
func finishReport(lines []string, out, baseline string) {
	report := strings.Join(lines, "\n") + "\n"
	if out != "" {
		if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
			fatalf("out: %v", err)
		}
		logf("wrote %d blocks to %s", len(lines), out)
	}
	if baseline != "" {
		want, err := os.ReadFile(baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		if string(want) != report {
			diff(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), lines)
			fatalf("mesh differs from baseline %s", baseline)
		}
		logf("mesh identical to baseline %s (%d blocks)", baseline, len(lines))
	}
}

// proc is one running meshnode process.
type proc struct {
	id    int
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
	addr  string
}

type control struct {
	meshnode string
	work     string
	nodes    int
	timeout  time.Duration
	common   []string
	trace    bool
	seedAddr string
	procs    []*proc
}

// launch starts node i: the seed listens, workers dial the seed; a relaunch
// reclaims the node's old ID and restores from its checkpoint directory.
func (c *control) launch(i int, relaunch bool) (*proc, error) {
	ndir := filepath.Join(c.work, fmt.Sprintf("node%d", i))
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-spool", filepath.Join(ndir, "spool"),
		"-ckpt", filepath.Join(ndir, "ckpt"),
	}, c.common...)
	if i > 0 {
		args = append(args, "-seed", c.seedAddr)
	}
	if relaunch {
		args = append(args, "-restore", "-id", fmt.Sprint(i))
	}
	if c.trace {
		args = append(args, "-trace", filepath.Join(c.work, fmt.Sprintf("node%d.trace.json", i)))
	}

	if err := os.MkdirAll(ndir, 0o755); err != nil {
		return nil, err
	}
	logName := filepath.Join(c.work, fmt.Sprintf("node%d.log", i))
	logFile, err := os.OpenFile(logName, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}

	cmd := exec.Command(c.meshnode, args...)
	cmd.Stderr = logFile
	stdin, err := cmd.StdinPipe()
	if err != nil {
		logFile.Close()
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logFile.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, err
	}
	logFile.Close() // the child holds its own descriptor now

	p := &proc{id: i, cmd: cmd, stdin: stdin, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			p.lines <- sc.Text()
		}
		close(p.lines)
	}()

	ready, err := c.expect(p, "ready ")
	if err != nil {
		return nil, fmt.Errorf("node %d not ready: %w (see %s)", i, err, logName)
	}
	var id int
	if _, err := fmt.Sscanf(ready, "ready %d %s", &id, &p.addr); err != nil {
		return nil, fmt.Errorf("node %d: bad ready line %q", i, ready)
	}
	if id != i {
		return nil, fmt.Errorf("launched node %d but the seed assigned ID %d", i, id)
	}
	return p, nil
}

// expect reads lines from p until one starts with prefix.
func (c *control) expect(p *proc, prefix string) (string, error) {
	deadline := time.After(c.timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				return "", fmt.Errorf("process exited (wanted %q)", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line, nil
			}
			return "", fmt.Errorf("unexpected output %q (wanted %q)", line, prefix)
		case <-deadline:
			return "", fmt.Errorf("timeout waiting for %q", prefix)
		}
	}
}

// phase drives one global barrier: every node posts its share, and the
// barrier completes only when the distributed termination protocol fires on
// all of them.
func (c *control) phase(k int) error {
	for _, p := range c.procs {
		if _, err := fmt.Fprintf(p.stdin, "phase %d\n", k); err != nil {
			return fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	for _, p := range c.procs {
		if _, err := c.expect(p, fmt.Sprintf("done %d", k)); err != nil {
			return fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	return nil
}

// dump collects every node's block reports and merges them, verifying each
// block appears exactly once across the cluster and that no node reports
// more than the grid holds — the merge never grows past expect lines.
func (c *control) dump(expect int) ([]string, error) {
	for _, p := range c.procs {
		if _, err := fmt.Fprintln(p.stdin, "dump"); err != nil {
			return nil, fmt.Errorf("node %d: %w", p.id, err)
		}
	}
	seen := make(map[string]int) // "j i" -> reporting node
	var all []string
	for _, p := range c.procs {
		deadline := time.After(c.timeout)
		for {
			var line string
			var ok bool
			select {
			case line, ok = <-p.lines:
				if !ok {
					return nil, fmt.Errorf("node %d exited mid-dump", p.id)
				}
			case <-deadline:
				return nil, fmt.Errorf("node %d: timeout mid-dump", p.id)
			}
			if line == "dumped" {
				break
			}
			rec, found := strings.CutPrefix(line, "block ")
			if !found {
				return nil, fmt.Errorf("node %d: unexpected output %q", p.id, line)
			}
			if len(all) >= expect {
				return nil, fmt.Errorf("node %d: more than %d block lines; refusing to buffer past the grid size", p.id, expect)
			}
			f := strings.Fields(rec)
			if len(f) != 4 {
				return nil, fmt.Errorf("node %d: bad block line %q", p.id, line)
			}
			key := f[0] + " " + f[1]
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("block (%s) reported by both node %d and node %d", key, prev, p.id)
			}
			seen[key] = p.id
			all = append(all, rec)
		}
	}
	sort.Strings(all)
	return all, nil
}

func (c *control) quitAll() error {
	for _, p := range c.procs {
		fmt.Fprintln(p.stdin, "quit")
	}
	var firstErr error
	for _, p := range c.procs {
		if err := p.cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("node %d: %w", p.id, err)
		}
		p.cmd = nil
	}
	return firstErr
}

func (c *control) killAll() {
	for _, p := range c.procs {
		if p != nil && p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
	}
}

// diff prints the first few lines that differ between the baseline and the
// cluster dump.
func diff(want, got []string) {
	n := 0
	for i := 0; i < len(want) || i < len(got); i++ {
		w, g := "", ""
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			fmt.Fprintf(os.Stderr, "meshctl: line %d: baseline %q, cluster %q\n", i+1, w, g)
			if n++; n >= 5 {
				fmt.Fprintln(os.Stderr, "meshctl: ...")
				return
			}
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshctl: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshctl: "+format+"\n", args...)
	os.Exit(1)
}

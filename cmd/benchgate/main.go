// Command benchgate compares two mrtsbench -json documents and exits
// non-zero when the current run regressed past the tolerances — the CI
// benchmark-regression gate.
//
// Usage:
//
//	benchgate -baseline ci/bench-baseline.json -current BENCH_ci.json
//	benchgate -baseline a.json -current b.json -speed-tol 0.5 -time-tol 2.5
//
// The gate checks speed metrics against a relative lower bound, overlap
// percentages against an absolute drop in points, and wall times against a
// relative upper bound; see bench.GateConfig. A run-shape mismatch (different
// -scale or -pes) fails loudly rather than comparing incomparable runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"mrts/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline bench.Doc JSON (required)")
		currentPath  = flag.String("current", "", "current bench.Doc JSON (required)")
		speedTol     = flag.Float64("speed-tol", 0, "relative speed floor (0 = default 0.6)")
		overlapTol   = flag.Float64("overlap-tol", 0, "allowed overlap drop in points (0 = default 25)")
		timeTol      = flag.Float64("time-tol", 0, "relative time ceiling (0 = default 1.8)")
		waitTol      = flag.Float64("wait-tol", 0, "relative demand-wait ceiling (0 = default 5)")
		hitTol       = flag.Float64("hit-tol", 0, "allowed hit-ratio drop in points (0 = default 25)")
		allocTol     = flag.Float64("alloc-tol", 0, "relative allocs/op ceiling (0 = default 2)")
		bytesTol     = flag.Float64("bytes-tol", 0, "relative bytes-moved ceiling (0 = default 1.5)")
		forwardTol   = flag.Float64("forward-tol", 0, "relative forwarded-per-message ceiling (0 = default 2)")
		hopsTol      = flag.Float64("hops-tol", 0, "relative mean-hop-count ceiling (0 = default 1.5)")
		conflictTol  = flag.Float64("conflict-tol", 0, "relative speculation conflict-rate ceiling (0 = default 2)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := bench.ReadDoc(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	current, err := bench.ReadDoc(*currentPath)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := bench.GateConfig{
		SpeedTol: *speedTol, OverlapTol: *overlapTol, TimeTol: *timeTol,
		WaitTol: *waitTol, HitTol: *hitTol, AllocTol: *allocTol, BytesTol: *bytesTol,
		ForwardTol: *forwardTol, HopsTol: *hopsTol, ConflictTol: *conflictTol,
	}
	violations := bench.Compare(baseline, current, cfg)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s:\n", len(violations), *baselinePath)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	gated := 0
	for _, id := range baseline.ExperimentIDs() {
		gated += len(baseline.Experiments[id])
	}
	fmt.Printf("benchgate: ok — %d experiments, %d baseline metrics within tolerance\n",
		len(baseline.Experiments), gated)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

// Command jobsim runs the batch-queue simulation behind Figure 1: mean
// queue wait versus requested node count on a shared cluster, under an
// FCFS + EASY-backfill scheduler.
//
// Usage:
//
//	jobsim -jobs 3000 -nodes 128 -interarrival 15m -runtime 80m
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mrts/internal/cluster"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 3000, "number of jobs in the synthetic trace")
		nodes    = flag.Int("nodes", 128, "cluster node count")
		seed     = flag.Int64("seed", 7, "trace random seed")
		inter    = flag.Duration("interarrival", 15*time.Minute, "mean job interarrival time")
		runtime_ = flag.Duration("runtime", 80*time.Minute, "mean job runtime")
		backfill = flag.Bool("backfill", true, "enable EASY backfill")
	)
	flag.Parse()

	trace := cluster.SyntheticWorkload(cluster.WorkloadConfig{
		Jobs:             *jobs,
		ClusterNodes:     *nodes,
		Seed:             *seed,
		MeanInterarrival: *inter,
		MeanRuntime:      *runtime_,
	})
	if err := cluster.SimulateJobs(cluster.JobSimConfig{
		ClusterNodes: *nodes, Backfill: *backfill,
	}, trace); err != nil {
		fmt.Fprintf(os.Stderr, "jobsim: %v\n", err)
		os.Exit(1)
	}

	buckets := []int{4, 8, 16, 32, 64, *nodes}
	sort.Ints(buckets)
	wait := cluster.WaitByBucket(trace, buckets)
	fmt.Printf("%8s  %12s\n", "nodes<=", "mean wait")
	for _, b := range buckets {
		if w, ok := wait[b]; ok {
			fmt.Printf("%8d  %12s\n", b, w.Round(time.Second))
		}
	}
}

// Command meshnode is one worker process of a distributed OUPDR run. It
// joins a TCP cluster (dialing the seed, or listening as the seed when -seed
// is empty), predicts the global block placement from the shared
// consistent-hash directory, creates or restores its share of the blocks, and
// then executes phase barriers driven over stdin by cmd/meshctl:
//
//	phase K     post phase K, run it to global termination, checkpoint -> "done K"
//	dump        report every local block as "block <j> <i> <elements> <hash>" -> "dumped"
//	export DIR  frame every local block into DIR as meshstore chunk + manifest
//	            (all nodes must export together) -> "exported <blocks> <bytes>"
//	quit        leave the cluster and exit
//
// The stdout protocol starts with "ready <id> <addr>" once membership is
// complete. Diagnostics go to stderr. A relaunched worker passes -restore
// together with -id <old id> to rejoin under its old identity and resume from
// the checkpoint the previous incarnation wrote at its last phase barrier.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/meshstore"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to listen on")
		seed     = flag.String("seed", "", "seed node address (empty: this process is the seed, node 0)")
		id       = flag.Int("id", -1, "node ID to claim on rejoin (-1: let the seed assign one)")
		nodes    = flag.Int("nodes", 3, "cluster size")
		blocks   = flag.Int("blocks", 6, "decomposition grid dimension")
		elements = flag.Int("elements", 50000, "target total element count")
		quality  = flag.Float64("quality", 0, "radius-edge quality bound (0 = sqrt 2)")
		phases   = flag.Int("phases", 3, "barrier-separated kick-off phases")
		budget   = flag.Int64("budget", 0, "memory budget in bytes (0 = elements*30)")
		spool    = flag.String("spool", "", "swap spool directory (empty: in-memory)")
		ckpt     = flag.String("ckpt", "", "checkpoint directory (empty: checkpoints kept in memory)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file on quit")
		restore  = flag.Bool("restore", false, "restore from the checkpoint in -ckpt instead of creating blocks")
		compress = flag.Bool("compress", true, "flate-compress exported chunk frames")
		workers  = flag.Int("workers", 2, "task pool workers")
		routing  = flag.String("routing", "placed", "routing locator: placed, lazy, eager or home")
		hb       = flag.Duration("heartbeat", 0, "heartbeat interval (0 = default)")
		expire   = flag.Duration("expire", 0, "seed-side member expiry (0 = default)")
	)
	flag.Parse()
	if *restore && (*id < 0 || *ckpt == "") {
		fatalf("-restore requires -id and -ckpt")
	}

	// A rejoining worker races the seed's processing of its predecessor's
	// leave (or heartbeat expiry): the seed refuses to reissue the ID while
	// it still believes the old incarnation is up, so retry the join.
	var tn *comm.TCPNode
	var err error
	for attempt := 0; attempt < 200; attempt++ {
		tn, err = comm.StartTCPNode(comm.TCPNodeConfig{
			Listen:         *listen,
			Seed:           *seed,
			WantID:         comm.NodeID(*id),
			HeartbeatEvery: *hb,
			ExpireAfter:    *expire,
		})
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		fatalf("join: %v", err)
	}
	defer tn.Close()

	var sink *obs.TraceSink
	var tracer *obs.Tracer
	if *traceOut != "" {
		sink = obs.NewTraceSink(obs.DefaultCapacity)
		tracer = sink.NewTracer(fmt.Sprintf("node%d", tn.Node()))
		tn.SetTracer(tracer)
	}

	store, err := openStore(*spool, "spool")
	if err != nil {
		fatalf("spool: %v", err)
	}
	ckStore, err := openStore(*ckpt, "ckpt")
	if err != nil {
		fatalf("ckpt: %v", err)
	}

	b := *budget
	if b <= 0 {
		b = int64(*elements) * 30
	}
	pool := sched.NewWorkStealing(*workers)
	if tracer != nil {
		pool.SetTracer(tracer)
	}
	rkind, err := cluster.ParseRouting(*routing)
	if err != nil {
		fatalf("routing: %v", err)
	}
	dcfg := meshgen.DistConfig{
		Blocks:         *blocks,
		TargetElements: *elements,
		QualityBound:   *quality,
		Nodes:          *nodes,
		Node:           int(tn.Node()),
		Phases:         *phases,
	}
	// The placement directory exists before the runtime: under -routing
	// placed it doubles as the runtime's locator, so block addressing and
	// message routing come from the same ring and every first hop lands on
	// the owner directly.
	pl, err := meshgen.NewPlacement(dcfg)
	if err != nil {
		fatalf("dist: %v", err)
	}
	cc := core.Config{
		Endpoint: tn,
		Pool:     pool,
		Factory:  meshgen.Factory,
		Mem:      ooc.Config{Budget: b},
		Store:    store,
		Tracer:   tracer,
		NumNodes: *nodes,
	}
	switch rkind {
	case cluster.RoutePlaced:
		// Keyed by Placement.Key: blocks were placed on the ring by their
		// "block-i-j" names, so first hops must resolve by those names too.
		cc.Locator = cluster.NewPlacedLocatorKeyed(pl.Dir, tn.Node(), pl.Key)
	case cluster.RouteEager:
		cc.Directory = core.DirEager
	case cluster.RouteHome:
		cc.Directory = core.DirHome
	default:
		cc.Directory = core.DirLazy
	}
	rt := core.NewRuntime(cc)
	defer rt.Close()

	d, err := meshgen.NewDistFrom(rt, dcfg, pl)
	if err != nil {
		fatalf("dist: %v", err)
	}

	// Announce the listen address before waiting for full membership: the
	// launcher needs the seed's address to start the other workers at all.
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "ready %d %s\n", tn.Node(), tn.Addr())
	out.Flush()

	if err := tn.WaitMembers(*nodes, 30*time.Second); err != nil {
		fatalf("membership: %v", err)
	}
	if *restore {
		if err := d.Restore(ckStore, "ck"); err != nil {
			fatalf("restore: %v", err)
		}
		logf(tn, "restored %d blocks from checkpoint", rt.NumLocalObjects())
	} else {
		if err := d.CreateBlocks(); err != nil {
			fatalf("create: %v", err)
		}
		logf(tn, "created %d blocks", rt.NumLocalObjects())
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		var k int
		line := sc.Text()
		switch {
		case line == "quit":
			if m := d.Mismatches(); m != 0 {
				fatalf("%d interface mismatches", m)
			}
			writeTrace(*traceOut, sink)
			return
		case line == "dump":
			for _, bd := range d.Dump() {
				fmt.Fprintf(out, "block %s\n", bd)
			}
			fmt.Fprintln(out, "dumped")
			out.Flush()
		case strings.HasPrefix(line, "export "):
			// Every node of the run must receive the export command: the
			// export barrier is global, like a phase. The writer truncates any
			// chunk a killed incarnation left behind, so a relaunched worker
			// re-exports cleanly over its predecessor's partial file.
			w, err := meshstore.NewWriter(meshstore.WriterConfig{
				Dir:      strings.TrimSpace(strings.TrimPrefix(line, "export ")),
				Writer:   int(tn.Node()),
				Meta:     d.StoreMeta(),
				Compress: *compress,
				Tracer:   tracer,
			})
			if err != nil {
				fatalf("export: %v", err)
			}
			if err := d.Export(w); err != nil {
				fatalf("export: %v", err)
			}
			if _, err := w.Finalize(); err != nil {
				fatalf("export: %v", err)
			}
			logf(tn, "exported %d blocks (%d bytes)", w.Blocks(), w.Bytes())
			fmt.Fprintf(out, "exported %d %d\n", w.Blocks(), w.Bytes())
			out.Flush()
		default:
			if _, err := fmt.Sscanf(line, "phase %d", &k); err != nil {
				fatalf("bad command %q", line)
			}
			d.PostPhase(k)
			d.WaitPhase()
			// Checkpoint at every barrier so a later incarnation can resume
			// from whichever phase the process died after.
			if err := d.Checkpoint(ckStore, "ck"); err != nil {
				fatalf("checkpoint: %v", err)
			}
			logf(tn, "phase %d done: %d elements local", k, d.Elements())
			fmt.Fprintf(out, "done %d\n", k)
			out.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("stdin: %v", err)
	}
}

// openStore returns a file store rooted at dir, or an in-memory store when
// dir is empty.
func openStore(dir, what string) (storage.Store, error) {
	if dir == "" {
		return storage.NewMem(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	return storage.NewFile(dir)
}

func writeTrace(path string, sink *obs.TraceSink) {
	if sink == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("trace: %v", err)
	}
	if err := obs.WriteChromeTrace(f, sink.Tracers()...); err != nil {
		f.Close()
		fatalf("trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("trace: %v", err)
	}
}

func logf(tn *comm.TCPNode, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshnode %d: "+format+"\n",
		append([]any{tn.Node()}, args...)...)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "meshnode: "+format+"\n", args...)
	os.Exit(1)
}

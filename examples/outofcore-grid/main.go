// Out-of-core uniform meshing: the headline use case of the paper.
//
// A uniform mesh whose total footprint exceeds the cluster's aggregate
// memory budget is generated block by block with OUPDR: each block is a
// mobile object; when memory runs out, idle blocks are serialized to a disk
// spool and reloaded on demand, overlapping the I/O with meshing of other
// blocks. The run prints the comp/comm/disk breakdown and the overlap metric
// of Tables IV-VI.
package main

import (
	"fmt"
	"log"

	"mrts/internal/cluster"
	"mrts/internal/meshgen"
	"mrts/internal/ooc"
	"mrts/internal/trace"
)

func main() {
	const target = 120_000 // elements; ~2.6 MB of mesh fragments

	spool, cleanup, err := cluster.TempSpoolDir("ooc-grid-")
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// Budget one third of the problem: most blocks must live on disk.
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: int64(target) * 22 / 3 / 2,
		Policy:    ooc.LRU,
		SpoolDir:  spool,
		Factory:   meshgen.Factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	res, err := meshgen.RunOUPDR(cl, meshgen.UPDRConfig{
		Blocks:         8, // 64 mobile objects, over-decomposed (N >> P)
		TargetElements: target,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res)
	fmt.Printf("interfaces conforming: %v\n", res.Conforming)
	fmt.Printf("memory: budget %d KB/node, peak %d KB, %d evictions, %d reloads\n",
		cl.RT(0).Mem().Budget()/1024, res.Mem.PeakMemUsed/1024,
		res.Mem.Evictions, res.Mem.Loads)
	r := res.Report
	fmt.Printf("breakdown: comp %.1f%%  comm %.1f%%  disk %.1f%%  overlap %.1f%%\n",
		r.Percent(trace.Comp), r.Percent(trace.Comm), r.Percent(trace.Disk), r.Overlap())

	if res.Mem.Evictions == 0 {
		log.Fatal("expected the problem to run out-of-core")
	}
	if !res.Conforming {
		log.Fatal("block interfaces must conform")
	}
}

// Graded meshing: the NUPDR scenario.
//
// Part one meshes an actual pipe cross-section (the paper's NUPDR geometry)
// sequentially with the refinement engine, grading element sizes around the
// inner wall. Part two runs the full out-of-core ONUPDR method — quad-tree
// leaves as mobile objects, a locked refinement-queue object dispatching
// leaves whose buffer zones are free, buffer data flowing through
// construct-buffer/add-to-buffer messages — on a simulated 2-node cluster.
package main

import (
	"fmt"
	"log"
	"math"

	"mrts/internal/cluster"
	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/meshgen"
	"mrts/internal/workload"
)

func main() {
	// --- Part 1: sequential graded mesh of a pipe cross-section. ---
	pipe := workload.Pipe(96, 1.0, 0.45, geom.Pt(0, 0))
	m, _, err := delaunay.BuildCDT(pipe)
	if err != nil {
		log.Fatal(err)
	}
	// Fine elements at the inner wall, coarsening outward.
	size := workload.GradedAnnular(geom.Pt(0, 0), 0.45, 0.012, 0.35)
	stats, err := delaunay.Refine(m, delaunay.Options{SizeFunc: size})
	if err != nil {
		log.Fatal(err)
	}
	minAngle := math.Pi
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
		if a := m.Triangle(id).MinAngle(); a < minAngle {
			minAngle = a
		}
	})
	fmt.Printf("pipe cross-section: %d triangles, %d vertices (%d Steiner, %d segment splits)\n",
		m.NumTriangles(), m.NumVertices(), stats.SteinerPoints, stats.SegmentSplits)
	fmt.Printf("quality: min angle %.1f°\n", minAngle*180/math.Pi)
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	// --- Part 2: the parallel out-of-core method (ONUPDR). ---
	spool, cleanup, err := cluster.TempSpoolDir("nupdr-pipe-")
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 400 << 10,
		SpoolDir:  spool,
		Factory:   meshgen.Factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	res, err := meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{
		TargetElements: 60_000,
		Grading:        8, // strong non-uniformity, the NUPDR stress case
		MaxLeafElems:   1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("quad-tree leaves: %d, conforming: %v, evictions: %d\n",
		res.Subdomains, res.Conforming, res.Mem.Evictions)
	if !res.Conforming {
		log.Fatal("leaf interfaces must conform")
	}
}

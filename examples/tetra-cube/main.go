// Tetrahedral meshing: the 3-D build.
//
// The paper generates "unstructured (i.e., triangular and tetrahedral)
// meshes"; the MRTS code paths never look at the dimension of the data they
// move. Part one builds a graded tetrahedral Delaunay mesh of the unit cube
// sequentially; part two decomposes the cube into sub-cube mobile objects
// and meshes them out-of-core on a 2-node cluster, swapping serialized
// tetrahedral meshes through the storage layer exactly like the 2-D blocks.
package main

import (
	"fmt"
	"log"

	"mrts/internal/cluster"
	"mrts/internal/delaunay3"
	"mrts/internal/geom3"
	"mrts/internal/meshgen"
)

func main() {
	// --- Part 1: sequential graded tetrahedral mesh. ---
	box := geom3.NewBox(geom3.Pt(0, 0, 0), geom3.Pt(1, 1, 1))
	m, err := delaunay3.NewBoxMesh(box)
	if err != nil {
		log.Fatal(err)
	}
	size := func(p geom3.Point) float64 {
		// Fine near the center, coarse at the corners.
		return 0.05 + 0.18*p.Dist(box.Center())
	}
	stats, err := delaunay3.Refine(m, box, delaunay3.Options{Size: size})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graded cube: %d tetrahedra, %d vertices (%d Steiner points)\n",
		m.NumInteriorTets(), m.NumVertices(), stats.Inserted)

	// --- Part 2: out-of-core tetrahedral blocks on the MRTS. ---
	spool, cleanup, err := cluster.TempSpoolDir("tetra-")
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 150 << 10, // force most blocks to disk
		SpoolDir:  spool,
		Factory:   meshgen.Factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	res, err := meshgen.RunOUPDR3(cl, meshgen.OUPDR3Config{
		Blocks:         3, // 27 mobile objects
		TargetElements: 40_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("evictions %d, reloads %d — tetrahedral meshes swapped through the storage layer\n",
		res.Mem.Evictions, res.Mem.Loads)
	if res.Mem.Evictions == 0 {
		log.Fatal("expected the run to go out-of-core")
	}
}

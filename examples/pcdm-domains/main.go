// Constrained Delaunay meshing over a domain decomposition: the PCDM
// scenario.
//
// The unit square is cut into subdomains whose meshes must conform exactly
// at the interfaces. Each subdomain refines independently; whenever
// refinement splits an interface segment, the midpoint travels to the
// neighbor as a small asynchronous message and is inserted there too. The
// split cascades settle at a fixpoint, detected by the runtime's termination
// condition — fully unstructured, asynchronous communication, the pattern
// the paper uses to stress the MRTS control layer.
package main

import (
	"fmt"
	"log"

	"mrts/internal/cluster"
	"mrts/internal/meshgen"
	"mrts/internal/ooc"
)

func main() {
	// In-core baseline first.
	base, err := meshgen.RunPCDM(meshgen.PCDMConfig{
		Grid:           5,
		TargetElements: 60_000,
		PEs:            4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base)
	fmt.Printf("interfaces conforming: %v\n\n", base.Conforming)

	// The same problem out-of-core on the MRTS, with the LFU policy the
	// paper found up to 7% faster for PCDM.
	spool, cleanup, err := cluster.TempSpoolDir("pcdm-")
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	cl, err := cluster.New(cluster.Config{
		Nodes:     4,
		MemBudget: 200 << 10,
		Policy:    ooc.LFU,
		SpoolDir:  spool,
		Factory:   meshgen.Factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	res, err := meshgen.RunOPCDM(cl, meshgen.PCDMConfig{
		Grid:           5,
		TargetElements: 60_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("interfaces conforming: %v, evictions: %d, reloads: %d\n",
		res.Conforming, res.Mem.Evictions, res.Mem.Loads)

	if !base.Conforming || !res.Conforming {
		log.Fatal("interfaces must conform")
	}
}

// Fault tolerance on top of the out-of-core subsystem.
//
// The paper's conclusion: "check and restore functionality for fault
// tolerance can be implemented with little effort on top of the out-of-core
// subsystem" — because mobile objects already know how to serialize
// themselves, a checkpoint is just "swap everything out to a durable store".
//
// This example runs a computation in two phases, checkpoints at the phase
// boundary, "crashes" the node (throws the runtime away), restores a fresh
// runtime from the checkpoint, and completes the second phase. Restored
// objects come back out-of-core-cold: nothing is deserialized until a
// message actually needs it.
//
// It then demonstrates the hardened swap path itself: a run over a store
// injecting transient I/O faults (absorbed invisibly by the retry layer)
// and one over a permanently failing store (objects are lost — loudly,
// through counters and the SwapError callback, never silently).
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"time"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

type account struct {
	Balance int64
}

func (a *account) TypeID() uint16 { return 1 }

func (a *account) EncodeTo(w io.Writer) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(a.Balance))
	_, err := w.Write(b[:])
	return err
}

func (a *account) DecodeFrom(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	a.Balance = int64(binary.LittleEndian.Uint64(b[:]))
	return nil
}

func (a *account) SizeHint() int { return 8 }

func factory(t uint16) (core.Object, error) {
	if t == 1 {
		return &account{}, nil
	}
	return nil, core.ErrUnknownType
}

const hDeposit core.HandlerID = 1

func newNode() (*core.Runtime, func()) {
	return newNodeWith(storage.NewMem(), 1<<20, storage.RetryPolicy{}, nil)
}

// newNodeWith builds a single-node runtime over an arbitrary store, retry
// policy and swap-error callback — the knobs the fault demos exercise.
func newNodeWith(st storage.Store, budget int64, retry storage.RetryPolicy, onSwap func(core.SwapError)) (*core.Runtime, func()) {
	tr := comm.NewInProc(1, comm.LatencyModel{})
	pool := sched.NewWorkStealing(2)
	rt := core.NewRuntime(core.Config{
		Endpoint:    tr.Endpoint(0),
		Pool:        pool,
		Factory:     factory,
		Mem:         ooc.Config{Budget: budget},
		Store:       st,
		Retry:       retry,
		OnSwapError: onSwap,
	})
	rt.Register(hDeposit, func(c *core.Ctx, arg []byte) {
		c.Object().(*account).Balance += int64(binary.LittleEndian.Uint32(arg))
	})
	return rt, func() { rt.Close(); pool.Close(); tr.Close() }
}

func main() {
	// The durable checkpoint store survives the "crash" (in production this
	// is the disk spool or the remote memory server).
	durable := storage.NewMem()

	// --- Phase 1 on the original node. ---
	rt1, stop1 := newNode()
	var ptrs []core.MobilePtr
	for i := 0; i < 16; i++ {
		ptrs = append(ptrs, rt1.CreateObject(&account{}))
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 100)
	for _, p := range ptrs {
		rt1.Post(p, hDeposit, arg)
	}
	core.WaitQuiescence(rt1)
	if err := rt1.Checkpoint(durable, "phase1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1 done, checkpoint written")

	// --- Crash. ---
	stop1()
	fmt.Println("node crashed (runtime discarded)")

	// --- Restore on a fresh node and run phase 2. ---
	rt2, stop2 := newNode()
	defer stop2()
	if err := rt2.Restore(durable, "phase1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d objects (all out-of-core-cold)\n", rt2.NumLocalObjects())

	binary.LittleEndian.PutUint32(arg, 23)
	for _, p := range ptrs {
		rt2.Post(p, hDeposit, arg)
	}
	core.WaitQuiescence(rt2)

	// Verify: every account carries both phases' deposits.
	got := make(chan int64, 1)
	rt2.Register(2, func(c *core.Ctx, arg []byte) { got <- c.Object().(*account).Balance })
	var total int64
	for _, p := range ptrs {
		rt2.Post(p, 2, nil)
		total += <-got
	}
	fmt.Printf("total balance after restore + phase 2: %d\n", total)
	if total != 16*123 {
		log.Fatalf("state lost: want %d", 16*123)
	}
	fmt.Println("no state lost across the crash")

	transientFaultDemo()
	permanentFaultDemo()
}

// transientFaultDemo runs the same deposit workload over a store where every
// key fails its first two reads and writes. The retry layer absorbs all of
// it: the balances come out exact and the only trace is the retry counter.
func transientFaultDemo() {
	fmt.Println("\n--- transient I/O faults, absorbed by retry ---")
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{
		Seed:          1,
		FailFirstGets: 2,
		FailFirstPuts: 2,
	})
	// A budget of ~half the accounts forces constant swapping, so the fault
	// injection actually sits on the hot path.
	rt, stop := newNodeWith(st, 80, storage.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Microsecond,
	}, nil)
	defer stop()

	var ptrs []core.MobilePtr
	for i := 0; i < 16; i++ {
		ptrs = append(ptrs, rt.CreateObject(&account{}))
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 10)
	for round := 0; round < 3; round++ {
		for _, p := range ptrs {
			rt.Post(p, hDeposit, arg)
		}
		core.WaitQuiescence(rt)
	}

	got := make(chan int64, len(ptrs))
	rt.Register(2, func(c *core.Ctx, arg []byte) { got <- c.Object().(*account).Balance })
	var total int64
	for _, p := range ptrs {
		rt.Post(p, 2, nil)
		total += <-got
	}
	s := rt.SwapStats()
	fmt.Printf("total balance: %d (want %d), swap stats: %s\n", total, 16*30, s)
	if total != 16*30 || s.ObjectsLost != 0 {
		log.Fatal("transient faults were not absorbed")
	}
	if s.Retries == 0 {
		log.Fatal("retry layer never engaged; the demo is not exercising faults")
	}
	fmt.Println("faults absorbed: identical result, only the retry counter moved")
}

// permanentFaultDemo runs over a store whose reads always fail permanently:
// swapped-out accounts cannot come back. The point is what does NOT happen —
// no silent loss, no wedged termination. Every loss is counted and reported
// through the SwapError callback.
func permanentFaultDemo() {
	fmt.Println("\n--- permanent I/O faults, surfaced loudly ---")
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{
		Seed:        1,
		GetFailProb: 1,
		Permanent:   true,
	})
	rt, stop := newNodeWith(st, 80, storage.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Microsecond,
	}, func(e core.SwapError) {
		fmt.Printf("  swap error: %v\n", e)
	})
	defer stop()

	var ptrs []core.MobilePtr
	for i := 0; i < 16; i++ {
		ptrs = append(ptrs, rt.CreateObject(&account{}))
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 10)
	for round := 0; round < 3; round++ {
		for _, p := range ptrs {
			rt.Post(p, hDeposit, arg)
		}
		core.WaitQuiescence(rt) // terminates despite the losses
	}

	// Survivors still answer; messages to lost objects were dropped with
	// their work accounted, so no blocking reads here — post to everyone,
	// quiesce, count the replies that made it.
	got := make(chan int64, len(ptrs))
	rt.Register(2, func(c *core.Ctx, arg []byte) { got <- c.Object().(*account).Balance })
	for _, p := range ptrs {
		rt.Post(p, 2, nil)
	}
	core.WaitQuiescence(rt)
	survivors := len(got)
	s := rt.SwapStats()
	fmt.Printf("%d/%d accounts survived, swap stats: %s\n", survivors, len(ptrs), s)
	if s.ObjectsLost == 0 {
		log.Fatal("permanent faults were silent: no objects reported lost")
	}
	fmt.Println("losses surfaced through counters and callbacks; termination intact")
}

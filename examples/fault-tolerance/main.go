// Fault tolerance on top of the out-of-core subsystem.
//
// The paper's conclusion: "check and restore functionality for fault
// tolerance can be implemented with little effort on top of the out-of-core
// subsystem" — because mobile objects already know how to serialize
// themselves, a checkpoint is just "swap everything out to a durable store".
//
// This example runs a computation in two phases, checkpoints at the phase
// boundary, "crashes" the node (throws the runtime away), restores a fresh
// runtime from the checkpoint, and completes the second phase. Restored
// objects come back out-of-core-cold: nothing is deserialized until a
// message actually needs it.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

type account struct {
	Balance int64
}

func (a *account) TypeID() uint16 { return 1 }

func (a *account) EncodeTo(w io.Writer) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(a.Balance))
	_, err := w.Write(b[:])
	return err
}

func (a *account) DecodeFrom(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	a.Balance = int64(binary.LittleEndian.Uint64(b[:]))
	return nil
}

func (a *account) SizeHint() int { return 8 }

func factory(t uint16) (core.Object, error) {
	if t == 1 {
		return &account{}, nil
	}
	return nil, core.ErrUnknownType
}

const hDeposit core.HandlerID = 1

func newNode() (*core.Runtime, func()) {
	tr := comm.NewInProc(1, comm.LatencyModel{})
	pool := sched.NewWorkStealing(2)
	rt := core.NewRuntime(core.Config{
		Endpoint: tr.Endpoint(0),
		Pool:     pool,
		Factory:  factory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    storage.NewMem(),
	})
	rt.Register(hDeposit, func(c *core.Ctx, arg []byte) {
		c.Object().(*account).Balance += int64(binary.LittleEndian.Uint32(arg))
	})
	return rt, func() { rt.Close(); pool.Close(); tr.Close() }
}

func main() {
	// The durable checkpoint store survives the "crash" (in production this
	// is the disk spool or the remote memory server).
	durable := storage.NewMem()

	// --- Phase 1 on the original node. ---
	rt1, stop1 := newNode()
	var ptrs []core.MobilePtr
	for i := 0; i < 16; i++ {
		ptrs = append(ptrs, rt1.CreateObject(&account{}))
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 100)
	for _, p := range ptrs {
		rt1.Post(p, hDeposit, arg)
	}
	core.WaitQuiescence(rt1)
	if err := rt1.Checkpoint(durable, "phase1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1 done, checkpoint written")

	// --- Crash. ---
	stop1()
	fmt.Println("node crashed (runtime discarded)")

	// --- Restore on a fresh node and run phase 2. ---
	rt2, stop2 := newNode()
	defer stop2()
	if err := rt2.Restore(durable, "phase1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d objects (all out-of-core-cold)\n", rt2.NumLocalObjects())

	binary.LittleEndian.PutUint32(arg, 23)
	for _, p := range ptrs {
		rt2.Post(p, hDeposit, arg)
	}
	core.WaitQuiescence(rt2)

	// Verify: every account carries both phases' deposits.
	got := make(chan int64, 1)
	rt2.Register(2, func(c *core.Ctx, arg []byte) { got <- c.Object().(*account).Balance })
	var total int64
	for _, p := range ptrs {
		rt2.Post(p, 2, nil)
		total += <-got
	}
	fmt.Printf("total balance after restore + phase 2: %d\n", total)
	if total != 16*123 {
		log.Fatalf("state lost: want %d", 16*123)
	}
	fmt.Println("no state lost across the crash")
}

// Quickstart: the MRTS programming model in one file.
//
// A dataset is decomposed into mobile objects — here, simple counters
// scattered over a 4-node simulated cluster. All computation happens inside
// message handlers, driven by one-sided messages posted to mobile pointers:
// a token circulates through the ring of counters, each hop incrementing the
// local object, migrating work across nodes without any receive calls. When
// no handler is running and no message is in flight, the runtime detects
// termination and control returns to the driver.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"

	"mrts/internal/cluster"
	"mrts/internal/core"
)

// counter is a minimal mobile object: it needs serialization (for
// out-of-core unloading and migration) and a size hint.
type counter struct {
	Hits int64
}

func (c *counter) TypeID() uint16 { return 1 }

func (c *counter) EncodeTo(w io.Writer) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c.Hits))
	_, err := w.Write(b[:])
	return err
}

func (c *counter) DecodeFrom(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	c.Hits = int64(binary.LittleEndian.Uint64(b[:]))
	return nil
}

func (c *counter) SizeHint() int { return 8 }

func factory(typeID uint16) (core.Object, error) {
	if typeID == 1 {
		return &counter{}, nil
	}
	return nil, core.ErrUnknownType
}

const hToken core.HandlerID = 1

func main() {
	// A 4-node simulated cluster; each node has its own runtime, task pool,
	// memory budget and storage spool.
	cl, err := cluster.New(cluster.Config{
		Nodes:     4,
		MemBudget: 1 << 20,
		Factory:   factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// One counter per node, forming a ring.
	ring := make([]core.MobilePtr, cl.Nodes())
	for i := range ring {
		ring[i] = cl.RT(i).CreateObject(&counter{})
	}

	// The token handler: bump the local counter and forward the token.
	// SPMD: every node registers the same handlers.
	for i, rt := range cl.Runtimes() {
		i := i
		rt.Register(hToken, func(c *core.Ctx, arg []byte) {
			obj := c.Object().(*counter)
			obj.Hits++
			ttl := binary.LittleEndian.Uint32(arg)
			if ttl == 0 {
				return
			}
			next := make([]byte, 4)
			binary.LittleEndian.PutUint32(next, ttl-1)
			c.Post(ring[(i+1)%len(ring)], hToken, next)
		})
	}

	// Kick off: one message starts the whole computation; Wait blocks until
	// global termination (no handlers running, no messages traveling).
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 99) // 100 hops in total
	cl.RT(0).Post(ring[0], hToken, arg)
	cl.Wait()

	// Read the results with one more round of messages (objects may live
	// anywhere — never touch them directly).
	done := make(chan int64, 4)
	for _, rt := range cl.Runtimes() {
		rt.Register(2, func(c *core.Ctx, arg []byte) {
			done <- c.Object().(*counter).Hits
		})
	}
	var total int64
	for i, p := range ring {
		cl.RT(i).Post(p, 2, nil)
		total += <-done
	}
	fmt.Printf("token made %d hops across %d nodes\n", total, cl.Nodes())
	if total != 100 {
		log.Fatalf("expected 100 hops, got %d", total)
	}
}

// Package delaunay3 implements size-driven Delaunay refinement of box
// domains in 3-D: tetrahedra whose longest edge exceeds the sizing field are
// split by inserting their circumcenter (when it falls inside the box) or a
// point on their longest edge. The edge-length criterion deliberately avoids
// chasing sliver tetrahedra — the flat, short-edged elements whose
// circumradii explode and make circumradius-driven refinement in 3-D
// non-terminating without the full sliver-removal machinery.
//
// Quality (radius-edge) refinement is supported as a secondary criterion;
// unlike in 2-D it carries no termination guarantee (slivers again), so a
// vertex cap should accompany aggressive bounds.
package delaunay3

import (
	"fmt"

	"mrts/internal/geom3"
	"mrts/internal/mesh3"
)

// Options control 3-D refinement.
type Options struct {
	// Size is the target edge-length field: a tetrahedron whose longest
	// edge exceeds Size(centroid) is split. Required.
	Size func(geom3.Point) float64
	// RadiusEdgeBound, when positive, additionally splits tets with a
	// larger circumradius-to-shortest-edge ratio. No termination
	// guarantee; combine with MaxVertices.
	RadiusEdgeBound float64
	// MaxVertices caps refinement (0 = none).
	MaxVertices int
}

// Stats reports a refinement run.
type Stats struct {
	Inserted int
	Capped   bool
}

// longestEdgeSplit returns the midpoint of the tet's longest edge pulled a
// quarter of the way toward the centroid: strictly interior to the tet, so
// the insertion never degenerates on an existing edge or face.
func longestEdgeSplit(g geom3.Tet) geom3.Point {
	pts := [4]geom3.Point{g.A, g.B, g.C, g.D}
	bi, bj, best := 0, 1, -1.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if d := pts[i].Dist2(pts[j]); d > best {
				best, bi, bj = d, i, j
			}
		}
	}
	a, b := pts[bi], pts[bj]
	mid := geom3.Pt((a.X+b.X)/2, (a.Y+b.Y)/2, (a.Z+b.Z)/2)
	c := g.Centroid()
	return mid.Add(c.Sub(mid).Scale(0.25))
}

// NewBoxMesh builds the initial Delaunay mesh of a box: the super
// tetrahedron plus the eight box corners.
func NewBoxMesh(box geom3.Box) (*mesh3.Mesh, error) {
	m := mesh3.New()
	m.InitSuper(box)
	for _, x := range []float64{box.Min.X, box.Max.X} {
		for _, y := range []float64{box.Min.Y, box.Max.Y} {
			for _, z := range []float64{box.Min.Z, box.Max.Z} {
				if _, err := m.InsertPoint(geom3.Pt(x, y, z), mesh3.NoTet); err != nil && err != mesh3.ErrDuplicate {
					return nil, fmt.Errorf("delaunay3: corner insert: %w", err)
				}
			}
		}
	}
	return m, nil
}

// Refine splits interior tetrahedra (those not touching a super vertex)
// until all meet the size (and optional quality) bounds, inserting
// circumcenters clamped to the box.
func Refine(m *mesh3.Mesh, box geom3.Box, opts Options) (Stats, error) {
	if opts.Size == nil {
		return Stats{}, fmt.Errorf("delaunay3: Options.Size is required")
	}
	var stats Stats
	isBad := func(t mesh3.TetID) bool {
		if m.HasSuperVertex(t) {
			return false
		}
		g := m.Geom(t)
		c := g.Centroid()
		if !box.Contains(c) {
			return false
		}
		if h := opts.Size(c); h > 0 && g.LongestEdge() > h {
			return true
		}
		if opts.RadiusEdgeBound > 0 && g.RadiusEdgeRatio() > opts.RadiusEdgeBound {
			return true
		}
		return false
	}

	var bad []mesh3.TetID
	m.ForEachTet(func(t mesh3.TetID, _ mesh3.Tet) {
		if isBad(t) {
			bad = append(bad, t)
		}
	})
	for len(bad) > 0 {
		if opts.MaxVertices > 0 && m.NumVertices() >= opts.MaxVertices {
			stats.Capped = true
			return stats, nil
		}
		t := bad[len(bad)-1]
		bad = bad[:len(bad)-1]
		if !m.Alive(t) || !isBad(t) {
			continue
		}
		g := m.Geom(t)
		cc, ok := g.Circumcenter()
		if !ok {
			continue
		}
		// Circumcenters of boundary tets can fall outside the box (there
		// are no constrained facets to split in this kernel); fall back to
		// an interior point near the longest edge's midpoint, which stays
		// inside the box by convexity and still shrinks the offending tet.
		if !box.Contains(cc) {
			cc = longestEdgeSplit(g)
		}
		v, err := m.InsertPoint(cc, t)
		if err == mesh3.ErrDuplicate || err == mesh3.ErrOutside {
			continue
		}
		if err != nil {
			return stats, fmt.Errorf("delaunay3: inserting Steiner point: %w", err)
		}
		stats.Inserted++
		// Requeue the star of the new vertex: scan live tets incident to
		// v via a local walk from its hint tet.
		for _, nt := range m.StarOf(v) {
			if isBad(nt) {
				bad = append(bad, nt)
			}
		}
	}
	return stats, nil
}

package delaunay3

import (
	"bytes"
	"math"
	"testing"

	"mrts/internal/geom3"
	"mrts/internal/mesh3"
)

func unitBox() geom3.Box {
	return geom3.NewBox(geom3.Pt(0, 0, 0), geom3.Pt(1, 1, 1))
}

func TestNewBoxMesh(t *testing.T) {
	m, err := NewBoxMesh(unitBox())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	var vol float64
	m.ForEachTet(func(id mesh3.TetID, _ mesh3.Tet) {
		if !m.HasSuperVertex(id) {
			vol += m.Geom(id).Volume()
		}
	})
	if math.Abs(vol-1) > 1e-9 {
		t.Fatalf("cube volume = %v, want 1", vol)
	}
}

func TestRefineUniform(t *testing.T) {
	m, err := NewBoxMesh(unitBox())
	if err != nil {
		t.Fatal(err)
	}
	const h = 0.16
	stats, err := Refine(m, unitBox(), Options{
		Size: func(geom3.Point) float64 { return h },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Capped || stats.Inserted == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	// Every interior tet with its centroid in the box meets the bound.
	m.ForEachTet(func(id mesh3.TetID, _ mesh3.Tet) {
		if m.HasSuperVertex(id) {
			return
		}
		g := m.Geom(id)
		if !unitBox().Contains(g.Centroid()) {
			return
		}
		if l := g.LongestEdge(); l > h+1e-12 {
			t.Errorf("tet %d longest edge %v exceeds %v", id, l, h)
		}
	})
	// Volume conservation, up to the thin boundary layer that super-vertex
	// tets can claim when a hull facet is nearly flat (the super tet is
	// large but finite).
	var vol float64
	m.ForEachTet(func(id mesh3.TetID, _ mesh3.Tet) {
		if !m.HasSuperVertex(id) {
			vol += m.Geom(id).Volume()
		}
	})
	if vol < 0.99 || vol > 1.0+1e-9 {
		t.Errorf("volume = %v, want ≈1", vol)
	}
	t.Logf("uniform h=%v: %d tets, %d inserted, vol=%.6f", h, m.NumInteriorTets(), stats.Inserted, vol)
}

func TestRefineGraded3(t *testing.T) {
	m, err := NewBoxMesh(unitBox())
	if err != nil {
		t.Fatal(err)
	}
	size := func(p geom3.Point) float64 {
		d := p.Dist(geom3.Pt(0, 0, 0))
		return 0.08 + 0.2*d
	}
	if _, err := Refine(m, unitBox(), Options{Size: size}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Gradation: mean element size near the origin must be clearly smaller
	// than far away (min/max would be dominated by boundary slivers).
	var nearSum, farSum float64
	var nearN, farN int
	m.ForEachTet(func(id mesh3.TetID, _ mesh3.Tet) {
		if m.HasSuperVertex(id) {
			return
		}
		g := m.Geom(id)
		c := g.Centroid()
		l := g.LongestEdge()
		switch d := c.Dist(geom3.Pt(0, 0, 0)); {
		case d < 0.3:
			nearSum += l
			nearN++
		case d > 1.2:
			farSum += l
			farN++
		}
	})
	if nearN == 0 || farN == 0 {
		t.Fatal("regions empty")
	}
	nearAvg, farAvg := nearSum/float64(nearN), farSum/float64(farN)
	if !(nearAvg*1.5 < farAvg) {
		t.Errorf("weak gradation: near avg %v vs far avg %v", nearAvg, farAvg)
	}
}

func TestRefineCap(t *testing.T) {
	m, err := NewBoxMesh(unitBox())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Refine(m, unitBox(), Options{
		Size:        func(geom3.Point) float64 { return 0.01 },
		MaxVertices: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Capped {
		t.Error("expected cap")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineRequiresSize(t *testing.T) {
	m, _ := NewBoxMesh(unitBox())
	if _, err := Refine(m, unitBox(), Options{}); err == nil {
		t.Fatal("nil Size should fail")
	}
}

func TestEncodeDecodeRoundtrip3(t *testing.T) {
	m, err := NewBoxMesh(unitBox())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(m, unitBox(), Options{Size: func(geom3.Point) float64 { return 0.25 }}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != m.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", m.EncodedSize(), buf.Len())
	}
	var m2 mesh3.Mesh
	if err := m2.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.NumTets() != m.NumTets() || m2.NumVertices() != m.NumVertices() {
		t.Fatalf("counts drifted: %d/%d tets, %d/%d verts",
			m2.NumTets(), m.NumTets(), m2.NumVertices(), m.NumVertices())
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	if m2.NumInteriorTets() != m.NumInteriorTets() {
		t.Error("interior count changed")
	}
}

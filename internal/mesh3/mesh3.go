// Package mesh3 implements the 3-D tetrahedral Delaunay kernel: incremental
// Bowyer–Watson insertion with exact predicates, point location by walking,
// structural validation and binary serialization. Together with
// internal/delaunay3 it backs the tetrahedral ("3-D") build of the mesh
// generation methods; the paper generates "unstructured (i.e., triangular
// and tetrahedral) meshes" and the MRTS code paths are dimension-agnostic.
//
// Scope note: this kernel triangulates point sets within a convex (box)
// domain. Constrained facets (3-D CDT boundary recovery) are out of scope —
// the 2-D engine carries the conformity experiments; the 3-D kernel
// demonstrates the runtime's dimension independence.
package mesh3

import (
	"errors"
	"fmt"

	"mrts/internal/geom3"
)

// VertexID identifies a vertex. Vertices are never removed.
type VertexID int32

// TetID identifies a tetrahedron; IDs are recycled as tets die.
type TetID int32

// NoTet is the nil tet ID.
const NoTet TetID = -1

// NoVertex is the nil vertex ID.
const NoVertex VertexID = -1

// Tet is one tetrahedron: V in positive orientation
// (geom3.Orient3D(V0,V1,V2,V3) > 0), N[i] the neighbor across the face
// opposite V[i].
type Tet struct {
	V [4]VertexID
	N [4]TetID
}

// faceIdx[i] lists the vertex indices of the face opposite corner i,
// ordered so that Orient3D(face..., V[i]) is Positive.
var faceIdx = [4][3]int{
	{1, 3, 2},
	{0, 2, 3},
	{0, 3, 1},
	{0, 1, 2},
}

// Errors returned by mesh mutations.
var (
	ErrDuplicate = errors.New("mesh3: point coincides with an existing vertex")
	ErrOutside   = errors.New("mesh3: point lies outside the triangulation")
)

// Mesh is a mutable tetrahedralization. Not safe for concurrent mutation.
type Mesh struct {
	verts   []geom3.Point
	tets    []Tet
	alive   []bool
	free    []TetID
	vertTet []TetID
	super   [4]VertexID
	nAlive  int
}

// New returns an empty mesh.
func New() *Mesh {
	return &Mesh{super: [4]VertexID{NoVertex, NoVertex, NoVertex, NoVertex}}
}

// NumVertices returns the vertex count including super vertices.
func (m *Mesh) NumVertices() int { return len(m.verts) }

// NumTets returns the live tetrahedron count.
func (m *Mesh) NumTets() int { return m.nAlive }

// Vertex returns the position of v.
func (m *Mesh) Vertex(v VertexID) geom3.Point { return m.verts[v] }

// Tet returns the record for t.
func (m *Mesh) Tet(t TetID) Tet { return m.tets[t] }

// Alive reports whether t is live.
func (m *Mesh) Alive(t TetID) bool {
	return t >= 0 && int(t) < len(m.tets) && m.alive[t]
}

// IsSuper reports whether v is a synthetic bounding vertex.
func (m *Mesh) IsSuper(v VertexID) bool {
	return v == m.super[0] || v == m.super[1] || v == m.super[2] || v == m.super[3]
}

// HasSuperVertex reports whether t touches a super vertex.
func (m *Mesh) HasSuperVertex(t TetID) bool {
	for _, v := range m.tets[t].V {
		if m.IsSuper(v) {
			return true
		}
	}
	return false
}

// Geom returns the geometric tetrahedron for t.
func (m *Mesh) Geom(t TetID) geom3.Tet {
	r := m.tets[t]
	return geom3.Tet{A: m.verts[r.V[0]], B: m.verts[r.V[1]], C: m.verts[r.V[2]], D: m.verts[r.V[3]]}
}

// ForEachTet calls f for every live tet.
func (m *Mesh) ForEachTet(f func(TetID, Tet)) {
	for i := range m.tets {
		if m.alive[i] {
			f(TetID(i), m.tets[i])
		}
	}
}

// NumInteriorTets counts live tets not touching a super vertex.
func (m *Mesh) NumInteriorTets() int {
	n := 0
	m.ForEachTet(func(t TetID, _ Tet) {
		if !m.HasSuperVertex(t) {
			n++
		}
	})
	return n
}

// InitSuper initializes the mesh with a huge tetrahedron enclosing box.
// All points inserted later must lie within the box.
func (m *Mesh) InitSuper(box geom3.Box) {
	if len(m.verts) != 0 {
		panic("mesh3: InitSuper on non-empty mesh")
	}
	c := box.Center()
	d := box.Diagonal() + 1
	const k = 64.0
	s0 := m.addVertex(geom3.Pt(c.X-2*k*d, c.Y-k*d, c.Z-k*d))
	s1 := m.addVertex(geom3.Pt(c.X+2*k*d, c.Y-k*d, c.Z-k*d))
	s2 := m.addVertex(geom3.Pt(c.X, c.Y+2*k*d, c.Z-k*d))
	s3 := m.addVertex(geom3.Pt(c.X, c.Y, c.Z+2*k*d))
	m.super = [4]VertexID{s0, s1, s2, s3}
	// Ensure positive orientation.
	if geom3.Orient3D(m.verts[s0], m.verts[s1], m.verts[s2], m.verts[s3]) != geom3.Positive {
		s1, s2 = s2, s1
		m.super = [4]VertexID{s0, s1, s2, s3}
	}
	m.newTet([4]VertexID{s0, s1, s2, s3})
}

func (m *Mesh) addVertex(p geom3.Point) VertexID {
	m.verts = append(m.verts, p)
	m.vertTet = append(m.vertTet, NoTet)
	return VertexID(len(m.verts) - 1)
}

func (m *Mesh) newTet(v [4]VertexID) TetID {
	var id TetID
	rec := Tet{V: v, N: [4]TetID{NoTet, NoTet, NoTet, NoTet}}
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
		m.tets[id] = rec
		m.alive[id] = true
	} else {
		m.tets = append(m.tets, rec)
		m.alive = append(m.alive, true)
		id = TetID(len(m.tets) - 1)
	}
	m.nAlive++
	for _, vv := range v {
		m.vertTet[vv] = id
	}
	return id
}

func (m *Mesh) killTet(t TetID) {
	if !m.alive[t] {
		return
	}
	m.alive[t] = false
	m.free = append(m.free, t)
	m.nAlive--
}

// LocateKind classifies point location results.
type LocateKind int

// Location kinds. Face/edge incidences are folded into Inside: the cavity
// algorithm handles them uniformly (a point on a shared face is strictly
// inside both circumspheres).
const (
	LocateInside LocateKind = iota
	LocateOnVert
	LocateFailed
)

// Location is the result of Locate.
type Location struct {
	Kind LocateKind
	Tet  TetID
	Vert VertexID
}

// Locate finds a tetrahedron containing p by walking from hint.
func (m *Mesh) Locate(p geom3.Point, hint TetID) Location {
	t := hint
	if t == NoTet || int(t) >= len(m.tets) || !m.alive[t] {
		t = m.anyTet()
		if t == NoTet {
			return Location{Kind: LocateFailed}
		}
	}
	maxSteps := 4*len(m.tets) + 64
	prev := NoTet
	for step := 0; step < maxSteps; step++ {
		rec := m.tets[t]
		for i := 0; i < 4; i++ {
			if m.verts[rec.V[i]].Eq(p) {
				return Location{Kind: LocateOnVert, Tet: t, Vert: rec.V[i]}
			}
		}
		moved := false
		start := int(t) % 4
		var deferred TetID = NoTet
		for k := 0; k < 4; k++ {
			i := (start + k) % 4
			f := faceIdx[i]
			a := m.verts[rec.V[f[0]]]
			b := m.verts[rec.V[f[1]]]
			c := m.verts[rec.V[f[2]]]
			if geom3.Orient3D(a, b, c, p) == geom3.Negative {
				n := rec.N[i]
				if n == NoTet {
					return Location{Kind: LocateFailed}
				}
				if n == prev {
					deferred = n
					continue
				}
				prev, t = t, n
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		if deferred != NoTet {
			prev, t = t, deferred
			continue
		}
		return Location{Kind: LocateInside, Tet: t}
	}
	return m.locateExhaustive(p)
}

func (m *Mesh) locateExhaustive(p geom3.Point) Location {
	for i := range m.tets {
		if !m.alive[i] {
			continue
		}
		rec := m.tets[i]
		inside := true
		for j := 0; j < 4; j++ {
			if m.verts[rec.V[j]].Eq(p) {
				return Location{Kind: LocateOnVert, Tet: TetID(i), Vert: rec.V[j]}
			}
		}
		for j := 0; j < 4 && inside; j++ {
			f := faceIdx[j]
			if geom3.Orient3D(m.verts[rec.V[f[0]]], m.verts[rec.V[f[1]]], m.verts[rec.V[f[2]]], p) == geom3.Negative {
				inside = false
			}
		}
		if inside {
			return Location{Kind: LocateInside, Tet: TetID(i)}
		}
	}
	return Location{Kind: LocateFailed}
}

func (m *Mesh) anyTet() TetID {
	for i := range m.tets {
		if m.alive[i] {
			return TetID(i)
		}
	}
	return NoTet
}

// circumsphereContains reports whether p is strictly inside t's
// circumsphere.
func (m *Mesh) circumsphereContains(t TetID, p geom3.Point) bool {
	r := m.tets[t]
	return geom3.InSphere(m.verts[r.V[0]], m.verts[r.V[1]], m.verts[r.V[2]], m.verts[r.V[3]], p) == geom3.Positive
}

// InsertPoint inserts p by the Bowyer–Watson cavity algorithm and returns
// the new vertex. Returns the existing vertex with ErrDuplicate if p
// coincides with one, and ErrOutside if p is outside the triangulation.
func (m *Mesh) InsertPoint(p geom3.Point, hint TetID) (VertexID, error) {
	loc := m.Locate(p, hint)
	switch loc.Kind {
	case LocateFailed:
		return NoVertex, ErrOutside
	case LocateOnVert:
		return loc.Vert, ErrDuplicate
	}

	// Cavity BFS in discovery order (determinism).
	inCavity := map[TetID]bool{loc.Tet: true}
	cavity := []TetID{loc.Tet}
	stack := []TetID{loc.Tet}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec := m.tets[t]
		for i := 0; i < 4; i++ {
			n := rec.N[i]
			if n == NoTet || inCavity[n] {
				continue
			}
			if m.circumsphereContains(n, p) {
				inCavity[n] = true
				cavity = append(cavity, n)
				stack = append(stack, n)
			}
		}
	}

	// Collect boundary faces (ordered triple + outside neighbor).
	type bface struct {
		a, b, c VertexID
		out     TetID
	}
	var boundary []bface
	for _, t := range cavity {
		rec := m.tets[t]
		for i := 0; i < 4; i++ {
			n := rec.N[i]
			if n != NoTet && inCavity[n] {
				continue
			}
			f := faceIdx[i]
			boundary = append(boundary, bface{rec.V[f[0]], rec.V[f[1]], rec.V[f[2]], n})
		}
	}

	v := m.addVertex(p)
	for _, t := range cavity {
		m.killTet(t)
	}

	// New tets: (a, b, c, v), positively oriented because v lies on the
	// cavity side of each boundary face.
	type edgeKey struct{ a, b VertexID }
	mkEdge := func(a, b VertexID) edgeKey {
		if a > b {
			a, b = b, a
		}
		return edgeKey{a, b}
	}
	type half struct {
		tet  TetID
		face int
	}
	edges := make(map[edgeKey][]half, 3*len(boundary)/2)
	created := make([]TetID, len(boundary))
	for i, bf := range boundary {
		t := m.newTet([4]VertexID{bf.a, bf.b, bf.c, v})
		created[i] = t
		// Wire the base face (opposite v, index 3) to the outside.
		if bf.out != NoTet {
			m.link(t, 3, bf.out)
		}
		// The other three faces contain v plus one base edge:
		// face 0 opp a: edge (b, c); face 1 opp b: edge (a, c);
		// face 2 opp c: edge (a, b).
		edges[mkEdge(bf.b, bf.c)] = append(edges[mkEdge(bf.b, bf.c)], half{t, 0})
		edges[mkEdge(bf.a, bf.c)] = append(edges[mkEdge(bf.a, bf.c)], half{t, 1})
		edges[mkEdge(bf.a, bf.b)] = append(edges[mkEdge(bf.a, bf.b)], half{t, 2})
	}
	for _, hs := range edges {
		if len(hs) != 2 {
			// Should not happen for a proper cavity; leave unwired.
			continue
		}
		m.tets[hs[0].tet].N[hs[0].face] = hs[1].tet
		m.tets[hs[1].tet].N[hs[1].face] = hs[0].tet
	}
	return v, nil
}

// link makes u the neighbor of t across t's face i and fixes u's backlink.
func (m *Mesh) link(t TetID, i int, u TetID) {
	m.tets[t].N[i] = u
	f := faceIdx[i]
	want := [3]VertexID{m.tets[t].V[f[0]], m.tets[t].V[f[1]], m.tets[t].V[f[2]]}
	for j := 0; j < 4; j++ {
		g := faceIdx[j]
		got := [3]VertexID{m.tets[u].V[g[0]], m.tets[u].V[g[1]], m.tets[u].V[g[2]]}
		if sameTriple(want, got) {
			m.tets[u].N[j] = t
			return
		}
	}
	panic("mesh3: link: tets do not share the face")
}

func sameTriple(a, b [3]VertexID) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: positive orientation, neighbor
// symmetry and shared faces.
func (m *Mesh) Validate() error {
	for i := range m.tets {
		if !m.alive[i] {
			continue
		}
		t := TetID(i)
		rec := m.tets[i]
		if geom3.Orient3D(m.verts[rec.V[0]], m.verts[rec.V[1]], m.verts[rec.V[2]], m.verts[rec.V[3]]) != geom3.Positive {
			return fmt.Errorf("tet %d not positively oriented", t)
		}
		for k := 0; k < 4; k++ {
			n := rec.N[k]
			if n == NoTet {
				continue
			}
			if int(n) >= len(m.tets) || !m.alive[n] {
				return fmt.Errorf("tet %d neighbor %d dead", t, n)
			}
			f := faceIdx[k]
			want := [3]VertexID{rec.V[f[0]], rec.V[f[1]], rec.V[f[2]]}
			back := false
			for j := 0; j < 4; j++ {
				g := faceIdx[j]
				got := [3]VertexID{m.tets[n].V[g[0]], m.tets[n].V[g[1]], m.tets[n].V[g[2]]}
				if sameTriple(want, got) {
					if m.tets[n].N[j] != t {
						return fmt.Errorf("tet %d face %d: neighbor %d does not point back", t, k, n)
					}
					back = true
				}
			}
			if !back {
				return fmt.Errorf("tet %d face %d: neighbor %d does not share the face", t, k, n)
			}
		}
	}
	return nil
}

// CheckDelaunay verifies the Delaunay property: no vertex strictly inside
// any tet's circumsphere (checked against neighbor apexes).
func (m *Mesh) CheckDelaunay() error {
	for i := range m.tets {
		if !m.alive[i] {
			continue
		}
		t := TetID(i)
		rec := m.tets[i]
		for k := 0; k < 4; k++ {
			n := rec.N[k]
			if n == NoTet || n < t {
				continue
			}
			// Apex of n opposite the shared face.
			var apex VertexID = NoVertex
			for j := 0; j < 4; j++ {
				if m.tets[n].N[j] == t {
					apex = m.tets[n].V[j]
				}
			}
			if apex == NoVertex {
				return fmt.Errorf("tet %d: backlink missing on neighbor %d", t, n)
			}
			if m.circumsphereContains(t, m.verts[apex]) {
				return fmt.Errorf("tet %d violates Delaunay against vertex %d", t, apex)
			}
		}
	}
	return nil
}

// StarOf returns all live tets incident to v (breadth-first over
// face-adjacent tets sharing v, starting from v's hint).
func (m *Mesh) StarOf(v VertexID) []TetID {
	start := m.vertTet[v]
	if start == NoTet || !m.alive[start] {
		start = NoTet
		for i := range m.tets {
			if m.alive[i] {
				for _, vv := range m.tets[i].V {
					if vv == v {
						start = TetID(i)
						break
					}
				}
			}
			if start != NoTet {
				break
			}
		}
		if start == NoTet {
			return nil
		}
		m.vertTet[v] = start
	}
	seen := map[TetID]bool{start: true}
	out := []TetID{start}
	stack := []TetID{start}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rec := m.tets[t]
		for i := 0; i < 4; i++ {
			if rec.V[i] == v {
				continue // neighbor across this face does not contain v
			}
			n := rec.N[i]
			if n == NoTet || seen[n] {
				continue
			}
			seen[n] = true
			out = append(out, n)
			stack = append(stack, n)
		}
	}
	return out
}

package mesh3

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mrts/internal/geom3"
)

const (
	encodeMagic   = 0x4D455333 // "MES3"
	encodeVersion = 1

	// maxDecodeElems bounds untrusted vertex/tet counts so a corrupted
	// length prefix cannot demand a multi-gigabyte allocation.
	maxDecodeElems = 1 << 24
)

// EncodedSize returns the exact byte count EncodeTo writes.
func (m *Mesh) EncodedSize() int {
	return 4 + 4 + 4 + 24*len(m.verts) + 16 + 4 + 16*m.nAlive
}

// EncodeTo writes a compact binary encoding (vertices + tet vertex
// quadruples; adjacency is rebuilt on decode).
func (m *Mesh) EncodeTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var b [24]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b[:4], v)
		_, err := bw.Write(b[:4])
		return err
	}
	if err := putU32(encodeMagic); err != nil {
		return err
	}
	if err := putU32(encodeVersion); err != nil {
		return err
	}
	if err := putU32(uint32(len(m.verts))); err != nil {
		return err
	}
	for _, p := range m.verts {
		binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(p.Y))
		binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(p.Z))
		if _, err := bw.Write(b[:24]); err != nil {
			return err
		}
	}
	for _, s := range m.super {
		if err := putU32(uint32(int32(s))); err != nil {
			return err
		}
	}
	if err := putU32(uint32(m.nAlive)); err != nil {
		return err
	}
	for i := range m.tets {
		if !m.alive[i] {
			continue
		}
		for k := 0; k < 4; k++ {
			if err := putU32(uint32(int32(m.tets[i].V[k]))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeFrom replaces the mesh with one read from r, rebuilding adjacency
// from shared faces.
func (m *Mesh) DecodeFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var b [24]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:4]), nil
	}
	magic, err := getU32()
	if err != nil {
		return err
	}
	if magic != encodeMagic {
		return fmt.Errorf("mesh3: bad magic %#x", magic)
	}
	version, err := getU32()
	if err != nil {
		return err
	}
	if version != encodeVersion {
		return fmt.Errorf("mesh3: unsupported version %d", version)
	}
	nv, err := getU32()
	if err != nil {
		return err
	}
	if nv > maxDecodeElems {
		return fmt.Errorf("mesh3: vertex count %d exceeds limit %d (corrupt blob?)", nv, maxDecodeElems)
	}
	verts := make([]geom3.Point, nv)
	for i := range verts {
		if _, err := io.ReadFull(br, b[:24]); err != nil {
			return err
		}
		verts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
		verts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
		verts[i].Z = math.Float64frombits(binary.LittleEndian.Uint64(b[16:24]))
	}
	var super [4]VertexID
	for i := range super {
		v, err := getU32()
		if err != nil {
			return err
		}
		super[i] = VertexID(int32(v))
	}
	nt, err := getU32()
	if err != nil {
		return err
	}
	if nt > maxDecodeElems {
		return fmt.Errorf("mesh3: tet count %d exceeds limit %d (corrupt blob?)", nt, maxDecodeElems)
	}
	tets := make([]Tet, nt)
	for i := range tets {
		for k := 0; k < 4; k++ {
			v, err := getU32()
			if err != nil {
				return err
			}
			id := VertexID(int32(v))
			if id < 0 || int(id) >= len(verts) {
				return fmt.Errorf("mesh3: tet %d vertex %d out of range", i, id)
			}
			tets[i].V[k] = id
		}
		tets[i].N = [4]TetID{NoTet, NoTet, NoTet, NoTet}
	}

	// Rebuild adjacency: map sorted face triple -> halves.
	type faceKey [3]VertexID
	mkFace := func(a, b, c VertexID) faceKey {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return faceKey{a, b, c}
	}
	type half struct {
		tet  TetID
		face int
	}
	faces := make(map[faceKey][]half, 2*len(tets))
	for i := range tets {
		for k := 0; k < 4; k++ {
			f := faceIdx[k]
			key := mkFace(tets[i].V[f[0]], tets[i].V[f[1]], tets[i].V[f[2]])
			faces[key] = append(faces[key], half{TetID(i), k})
		}
	}
	for key, hs := range faces {
		if len(hs) > 2 {
			return fmt.Errorf("mesh3: face %v shared by %d tets", key, len(hs))
		}
		if len(hs) == 2 {
			tets[hs[0].tet].N[hs[0].face] = hs[1].tet
			tets[hs[1].tet].N[hs[1].face] = hs[0].tet
		}
	}

	m.verts = verts
	m.tets = tets
	m.alive = make([]bool, len(tets))
	m.vertTet = make([]TetID, len(verts))
	for i := range m.vertTet {
		m.vertTet[i] = NoTet
	}
	for i := range tets {
		m.alive[i] = true
		for _, v := range tets[i].V {
			m.vertTet[v] = TetID(i)
		}
	}
	m.free = nil
	m.super = super
	m.nAlive = len(tets)
	return nil
}

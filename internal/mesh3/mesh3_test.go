package mesh3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mrts/internal/geom3"
)

func unitBox() geom3.Box {
	return geom3.NewBox(geom3.Pt(0, 0, 0), geom3.Pt(1, 1, 1))
}

func buildRandom3(t testing.TB, n int, seed int64) *Mesh {
	m := New()
	m.InitSuper(unitBox())
	rng := rand.New(rand.NewSource(seed))
	hint := NoTet
	for i := 0; i < n; i++ {
		p := geom3.Pt(rng.Float64(), rng.Float64(), rng.Float64())
		v, err := m.InsertPoint(p, hint)
		if err != nil && err != ErrDuplicate {
			t.Fatalf("insert %v: %v", p, err)
		}
		if v != NoVertex {
			hint = m.vertTet[v]
		}
	}
	return m
}

func TestInitSuper(t *testing.T) {
	m := New()
	m.InitSuper(unitBox())
	if m.NumTets() != 1 {
		t.Fatalf("tets = %d", m.NumTets())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSingle(t *testing.T) {
	m := New()
	m.InitSuper(unitBox())
	if _, err := m.InsertPoint(geom3.Pt(0.5, 0.5, 0.5), NoTet); err != nil {
		t.Fatal(err)
	}
	// One interior point splits the super tet into 4.
	if m.NumTets() != 4 {
		t.Fatalf("tets = %d, want 4", m.NumTets())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	// Duplicate.
	v, err := m.InsertPoint(geom3.Pt(0.5, 0.5, 0.5), NoTet)
	if err != ErrDuplicate {
		t.Fatalf("duplicate: %v", err)
	}
	if m.IsSuper(v) {
		t.Fatal("duplicate returned a super vertex")
	}
}

func TestInsertOutside(t *testing.T) {
	m := New()
	m.InitSuper(unitBox())
	if _, err := m.InsertPoint(geom3.Pt(1e9, 1e9, 1e9), NoTet); err != ErrOutside {
		t.Fatalf("err = %v, want ErrOutside", err)
	}
}

func TestRandomDelaunay3(t *testing.T) {
	for _, n := range []int{10, 60, 200} {
		m := buildRandom3(t, n, int64(n))
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.CheckDelaunay(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGridDegenerate3(t *testing.T) {
	// Grid points: many cospherical/coplanar quadruples stress the exact
	// predicates.
	m := New()
	m.InitSuper(unitBox())
	for i := 0; i <= 3; i++ {
		for j := 0; j <= 3; j++ {
			for k := 0; k <= 3; k++ {
				p := geom3.Pt(float64(i)/3, float64(j)/3, float64(k)/3)
				if _, err := m.InsertPoint(p, NoTet); err != nil && err != ErrDuplicate {
					t.Fatalf("grid insert %v: %v", p, err)
				}
			}
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorVolume(t *testing.T) {
	// The interior tets (no super vertex) of a meshed unit cube with corner
	// points must fill the cube's convex hull: volume 1.
	m := New()
	m.InitSuper(unitBox())
	for _, x := range []float64{0, 1} {
		for _, y := range []float64{0, 1} {
			for _, z := range []float64{0, 1} {
				if _, err := m.InsertPoint(geom3.Pt(x, y, z), NoTet); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		p := geom3.Pt(rng.Float64(), rng.Float64(), rng.Float64())
		if _, err := m.InsertPoint(p, NoTet); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var vol float64
	m.ForEachTet(func(id TetID, _ Tet) {
		if !m.HasSuperVertex(id) {
			vol += m.Geom(id).Volume()
		}
	})
	if math.Abs(vol-1) > 1e-9 {
		t.Errorf("interior volume = %v, want 1", vol)
	}
	if m.NumInteriorTets() == 0 {
		t.Error("no interior tets")
	}
}

func TestLocateModes3(t *testing.T) {
	m := buildRandom3(t, 50, 9)
	// Existing vertex (skip supers).
	v := VertexID(5)
	loc := m.Locate(m.Vertex(v), NoTet)
	if loc.Kind != LocateOnVert || loc.Vert != v {
		t.Fatalf("Locate(vertex) = %+v", loc)
	}
	// Centroid of some interior tet.
	var tid TetID = NoTet
	m.ForEachTet(func(id TetID, _ Tet) {
		if tid == NoTet && !m.HasSuperVertex(id) {
			tid = id
		}
	})
	if tid == NoTet {
		t.Skip("no interior tet")
	}
	c := m.Geom(tid).Centroid()
	loc = m.Locate(c, NoTet)
	if loc.Kind != LocateInside {
		t.Fatalf("Locate(centroid) = %+v", loc)
	}
}

func TestEulerRelation3(t *testing.T) {
	// For a triangulation of the super-tet with n interior points, checking
	// total tet count against the boundary-face relation:
	// sum over tets of 4 faces = 2*interior faces + boundary faces (4).
	m := buildRandom3(t, 80, 4)
	interior := 0
	boundary := 0
	m.ForEachTet(func(id TetID, rec Tet) {
		for k := 0; k < 4; k++ {
			if rec.N[k] == NoTet {
				boundary++
			} else {
				interior++
			}
		}
	})
	if boundary != 4 {
		t.Errorf("super-tet hull should have 4 boundary faces, got %d", boundary)
	}
	if interior%2 != 0 {
		t.Error("interior half-faces must pair up")
	}
}

func TestPropertyRandomInsertions3(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 4
		m := buildRandom3(t, n, seed)
		if err := m.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := m.CheckDelaunay(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClusteredPoints3(t *testing.T) {
	m := New()
	m.InitSuper(unitBox())
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		p := geom3.Pt(0.5+rng.Float64()*1e-7, 0.5+rng.Float64()*1e-7, 0.5+rng.Float64()*1e-7)
		if _, err := m.InsertPoint(p, NoTet); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestStarOf(t *testing.T) {
	m := buildRandom3(t, 40, 6)
	for v := VertexID(4); v < 10; v++ {
		star := m.StarOf(v)
		if len(star) == 0 {
			t.Fatalf("vertex %d has empty star", v)
		}
		// Every tet in the star contains v; every live tet containing v is
		// in the star.
		inStar := map[TetID]bool{}
		for _, s := range star {
			inStar[s] = true
			found := false
			for _, vv := range m.Tet(s).V {
				if vv == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("star tet %d does not contain %d", s, v)
			}
		}
		m.ForEachTet(func(id TetID, rec Tet) {
			for _, vv := range rec.V {
				if vv == v && !inStar[id] {
					t.Fatalf("tet %d contains %d but missing from star", id, v)
				}
			}
		})
	}
}

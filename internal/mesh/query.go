package mesh

// IncidentTriangles returns all live triangles incident to v, in ring order
// (open fans at the hull are still fully covered). Returns nil if v has no
// incident triangle.
func (m *Mesh) IncidentTriangles(v VertexID) []TriID {
	start := m.IncidentTri(v)
	if start == NoTri {
		return nil
	}
	ring, err := m.triangleRing(v, start)
	if err != nil {
		return nil
	}
	return ring
}

// EdgeTriangles returns the one or two live triangles having edge (a, b).
// Returns nil if (a, b) is not an edge of the triangulation.
func (m *Mesh) EdgeTriangles(a, b VertexID) []TriID {
	t := m.findEdge(a, b)
	if t == NoTri {
		return nil
	}
	out := []TriID{t}
	if i := m.edgeIndex(t, a, b); i >= 0 {
		if n := m.tris[t].N[i]; n != NoTri {
			out = append(out, n)
		}
	}
	return out
}

// VertexDegree returns the number of triangles incident to v.
func (m *Mesh) VertexDegree(v VertexID) int { return len(m.IncidentTriangles(v)) }

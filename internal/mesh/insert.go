package mesh

import "mrts/internal/geom"

// InsertPoint inserts p into the triangulation using the Bowyer–Watson
// cavity algorithm and returns the new vertex ID. hint is a triangle to
// start point location from (NoTri is allowed).
//
// If p coincides with an existing vertex, that vertex is returned together
// with ErrDuplicate. If p falls on a constrained edge, the edge is split:
// both halves are marked constrained.
//
// The cavity search never crosses constrained edges, so inserting a point
// strictly inside a region bounded by constrained segments only retriangulates
// that region — the property the subdomain-local refinement of UPDR/NUPDR and
// PCDM relies on.
func (m *Mesh) InsertPoint(p geom.Point, hint TriID) (VertexID, error) {
	return m.insertLocated(p, m.Locate(p, hint))
}

// SplitEdge inserts the midpoint of the existing edge (a, b) by a purely
// topological seed (no point location), which is robust even when the
// floating-point midpoint falls a few ulps off the segment — the common case
// for boundary segments of non-axis-aligned domains. If the edge is
// constrained both halves end up constrained.
func (m *Mesh) SplitEdge(a, b VertexID) (VertexID, error) {
	t := m.findEdge(a, b)
	if t == NoTri {
		return NoVertex, ErrNoPath
	}
	mid := m.verts[a].Mid(m.verts[b])
	if mid.Eq(m.verts[a]) || mid.Eq(m.verts[b]) {
		return NoVertex, ErrDuplicate // edge too short to split in float64
	}
	i := m.edgeIndex(t, a, b)
	return m.insertLocated(mid, Location{Kind: LocateOnEdge, Tri: t, Edge: i})
}

func (m *Mesh) insertLocated(p geom.Point, loc Location) (VertexID, error) {
	switch loc.Kind {
	case LocateFailed:
		return NoVertex, ErrOutside
	case LocateOnVert:
		return loc.Vert, ErrDuplicate
	}

	var (
		splitA, splitB VertexID = NoVertex, NoVertex
		excludeEdge    edgeKey
		hasExclude     bool
	)
	seeds := []TriID{loc.Tri}
	if loc.Kind == LocateOnEdge {
		tr := m.tris[loc.Tri]
		a := tr.V[(loc.Edge+1)%3]
		b := tr.V[(loc.Edge+2)%3]
		if m.IsConstrained(a, b) {
			// Split a constrained segment: temporarily unmark it so the
			// cavity may span both sides, and remember to mark the halves.
			splitA, splitB = a, b
			m.SetConstrained(a, b, false)
			excludeEdge, hasExclude = mkEdge(a, b), true
		}
		if n := tr.N[loc.Edge]; n != NoTri {
			seeds = append(seeds, n)
		}
	}

	// Grow the cavity: triangles whose circumcircle strictly contains p,
	// reached without crossing constrained edges. The cavity is kept as an
	// ordered list (discovery order) so that retriangulation — and hence
	// everything downstream of it — is deterministic.
	inCavity := make(map[TriID]bool, 8)
	var cavity []TriID
	stack := make([]TriID, 0, 8)
	for _, s := range seeds {
		if !inCavity[s] {
			inCavity[s] = true
			cavity = append(cavity, s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		tr := m.tris[t]
		for i := 0; i < 3; i++ {
			n := tr.N[i]
			if n == NoTri || inCavity[n] {
				continue
			}
			a := tr.V[(i+1)%3]
			b := tr.V[(i+2)%3]
			if m.IsConstrained(a, b) {
				continue
			}
			if m.Triangle(n).CircumcircleContains(p) {
				inCavity[n] = true
				cavity = append(cavity, n)
				stack = append(stack, n)
			}
		}
	}

	// Collect cavity boundary edges (a, b) with the outside triangle, CCW
	// as seen from inside the cavity. The edge being split (if any) is
	// excluded: p lies on it, so it contributes the two hull edges (a,p),
	// (p,b) instead of a degenerate fan triangle.
	type bedge struct {
		a, b VertexID
		out  TriID
	}
	var boundary []bedge
	for _, t := range cavity {
		tr := m.tris[t]
		for i := 0; i < 3; i++ {
			a := tr.V[(i+1)%3]
			b := tr.V[(i+2)%3]
			n := tr.N[i]
			if n != NoTri && inCavity[n] {
				continue
			}
			if hasExclude && mkEdge(a, b) == excludeEdge {
				continue
			}
			boundary = append(boundary, bedge{a, b, n})
		}
	}

	v := m.addVertex(p)

	for _, t := range cavity {
		m.killTri(t)
	}

	// Retriangulate: fan of (v, a, b) triangles. Wire internal edges via
	// the boundary chain: successor of (v,a,b) across edge (b,v) is the
	// triangle whose first base vertex is b; predecessor across (v,a) is
	// the one whose second base vertex is a.
	byA := make(map[VertexID]TriID, len(boundary))
	byB := make(map[VertexID]TriID, len(boundary))
	created := make([]TriID, 0, len(boundary))
	for _, e := range boundary {
		t := m.newTri(v, e.a, e.b)
		byA[e.a] = t
		byB[e.b] = t
		created = append(created, t)
	}
	for i, e := range boundary {
		t := created[i]
		m.tris[t].N[0] = NoTri
		if e.out != NoTri {
			m.link(t, 0, e.out)
		}
		if nb, ok := byA[e.b]; ok {
			m.tris[t].N[1] = nb // edge (b, v)
		} else {
			m.tris[t].N[1] = NoTri
		}
		if pb, ok := byB[e.a]; ok {
			m.tris[t].N[2] = pb // edge (v, a)
		} else {
			m.tris[t].N[2] = NoTri
		}
	}

	if splitA != NoVertex {
		m.SetConstrained(splitA, v, true)
		m.SetConstrained(v, splitB, true)
		if m.splitHook != nil {
			m.splitHook(m.verts[splitA], m.verts[splitB], p)
		}
	}
	return v, nil
}

// InsertVertexAt adds p as a vertex without touching the triangulation.
// It is used when assembling meshes from serialized parts.
func (m *Mesh) InsertVertexAt(p geom.Point) VertexID { return m.addVertex(p) }

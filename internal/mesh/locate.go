package mesh

import "mrts/internal/geom"

// LocateKind classifies the result of point location.
type LocateKind int

// Location result kinds.
const (
	LocateInside LocateKind = iota // strictly inside triangle Tri
	LocateOnEdge                   // on edge Edge of triangle Tri
	LocateOnVert                   // coincides with vertex Vert
	LocateFailed                   // outside the triangulation
)

// Location is the result of Locate.
type Location struct {
	Kind LocateKind
	Tri  TriID
	Edge int      // edge index within Tri, valid for LocateOnEdge
	Vert VertexID // valid for LocateOnVert
}

// Locate finds the triangle containing p by a remembering stochastic walk
// starting from hint (or from an arbitrary live triangle when hint is
// invalid). The mesh must contain at least one live triangle.
func (m *Mesh) Locate(p geom.Point, hint TriID) Location {
	t := hint
	if t == NoTri || int(t) >= len(m.tris) || !m.alive[t] {
		t = m.anyTri()
		if t == NoTri {
			return Location{Kind: LocateFailed}
		}
	}

	// Walk: at each triangle, find an edge with p strictly on its outer
	// side and move to that neighbor. Bounded by a generous step count to
	// guard against cycles on degenerate input.
	maxSteps := 4*len(m.tris) + 64
	prev := NoTri
	for step := 0; step < maxSteps; step++ {
		tr := m.tris[t]
		// Check vertices first.
		for i := 0; i < 3; i++ {
			if m.verts[tr.V[i]].Eq(p) {
				return Location{Kind: LocateOnVert, Tri: t, Vert: tr.V[i]}
			}
		}
		var signs [3]geom.Sign
		moved := false
		// Deterministic but rotation-varied edge order avoids pathological
		// cycling on cocircular configurations.
		start := int(t) % 3
		for k := 0; k < 3; k++ {
			i := (start + k) % 3
			a := m.verts[tr.V[(i+1)%3]]
			b := m.verts[tr.V[(i+2)%3]]
			s := geom.Orient2D(a, b, p)
			signs[i] = s
			if s == geom.Negative {
				n := tr.N[i]
				if n == NoTri {
					return Location{Kind: LocateFailed}
				}
				if n == prev {
					// Prefer not to immediately backtrack; try other
					// edges first, fall back if none work.
					continue
				}
				prev, t = t, n
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		// Either p is inside/on this triangle, or the only way out is
		// backtracking (numerically possible); handle both.
		for i := 0; i < 3; i++ {
			if signs[i] == geom.Negative {
				prev, t = t, m.tris[t].N[i]
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		// All signs >= 0: inside or on an edge.
		for i := 0; i < 3; i++ {
			if signs[i] == geom.Zero {
				return Location{Kind: LocateOnEdge, Tri: t, Edge: i}
			}
		}
		return Location{Kind: LocateInside, Tri: t}
	}
	return m.locateExhaustive(p)
}

// locateExhaustive is the O(n) fallback when walking fails to converge.
func (m *Mesh) locateExhaustive(p geom.Point) Location {
	for i := range m.tris {
		if !m.alive[i] {
			continue
		}
		t := TriID(i)
		tr := m.tris[i]
		for j := 0; j < 3; j++ {
			if m.verts[tr.V[j]].Eq(p) {
				return Location{Kind: LocateOnVert, Tri: t, Vert: tr.V[j]}
			}
		}
		inside := true
		onEdge := -1
		for j := 0; j < 3; j++ {
			a := m.verts[tr.V[(j+1)%3]]
			b := m.verts[tr.V[(j+2)%3]]
			switch geom.Orient2D(a, b, p) {
			case geom.Negative:
				inside = false
			case geom.Zero:
				onEdge = j
			}
			if !inside {
				break
			}
		}
		if inside {
			if onEdge >= 0 {
				return Location{Kind: LocateOnEdge, Tri: t, Edge: onEdge}
			}
			return Location{Kind: LocateInside, Tri: t}
		}
	}
	return Location{Kind: LocateFailed}
}

func (m *Mesh) anyTri() TriID {
	for i := range m.tris {
		if m.alive[i] {
			return TriID(i)
		}
	}
	return NoTri
}

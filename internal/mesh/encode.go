package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mrts/internal/geom"
)

const (
	encodeMagic   = 0x4D525453 // "MRTS"
	encodeVersion = 1

	// maxDecodeElems bounds every untrusted count in the encoding (vertices,
	// triangles, constraints). A corrupted length prefix could otherwise
	// demand a multi-gigabyte allocation before the short read is noticed.
	maxDecodeElems = 1 << 24
)

// EncodedSize returns the exact number of bytes EncodeTo will write for the
// current mesh state. The out-of-core layer uses it for memory accounting.
func (m *Mesh) EncodedSize() int {
	return 4 + 4 + // magic, version
		4 + 16*len(m.verts) + // vertex count + coordinates
		12 + // super vertices
		4 + 12*m.nAlive + // triangle count + vertex triples
		4 + 8*len(m.constrained) // constraint count + pairs
}

// EncodeTo writes a compact binary encoding of the mesh to w. Triangle IDs
// are not preserved (dead slots are compacted); vertex IDs are preserved.
func (m *Mesh) EncodeTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [16]byte

	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	putI32 := func(v int32) error { return putU32(uint32(v)) }

	if err := putU32(encodeMagic); err != nil {
		return err
	}
	if err := putU32(encodeVersion); err != nil {
		return err
	}
	if err := putU32(uint32(len(m.verts))); err != nil {
		return err
	}
	for _, p := range m.verts {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(scratch[8:16], math.Float64bits(p.Y))
		if _, err := bw.Write(scratch[:16]); err != nil {
			return err
		}
	}
	for _, s := range m.super {
		if err := putI32(int32(s)); err != nil {
			return err
		}
	}
	if err := putU32(uint32(m.nAlive)); err != nil {
		return err
	}
	for i := range m.tris {
		if !m.alive[i] {
			continue
		}
		for k := 0; k < 3; k++ {
			if err := putI32(int32(m.tris[i].V[k])); err != nil {
				return err
			}
		}
	}
	if err := putU32(uint32(len(m.constrained))); err != nil {
		return err
	}
	for k := range m.constrained {
		if err := putI32(int32(k.a)); err != nil {
			return err
		}
		if err := putI32(int32(k.b)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeFrom reads a mesh previously written by EncodeTo and replaces the
// receiver's contents. Triangle adjacency is rebuilt from the vertex triples.
func (m *Mesh) DecodeFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var scratch [16]byte

	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}

	magic, err := getU32()
	if err != nil {
		return err
	}
	if magic != encodeMagic {
		return fmt.Errorf("mesh: bad magic %#x", magic)
	}
	version, err := getU32()
	if err != nil {
		return err
	}
	if version != encodeVersion {
		return fmt.Errorf("mesh: unsupported version %d", version)
	}

	nv, err := getU32()
	if err != nil {
		return err
	}
	if nv > maxDecodeElems {
		return fmt.Errorf("mesh: vertex count %d exceeds limit %d (corrupt blob?)", nv, maxDecodeElems)
	}
	verts := make([]geom.Point, nv)
	for i := range verts {
		if _, err := io.ReadFull(br, scratch[:16]); err != nil {
			return err
		}
		verts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(scratch[:8]))
		verts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(scratch[8:16]))
	}
	var super [3]VertexID
	for i := range super {
		v, err := getU32()
		if err != nil {
			return err
		}
		super[i] = VertexID(int32(v))
	}
	nt, err := getU32()
	if err != nil {
		return err
	}
	if nt > maxDecodeElems {
		return fmt.Errorf("mesh: triangle count %d exceeds limit %d (corrupt blob?)", nt, maxDecodeElems)
	}
	tris := make([]Tri, nt)
	for i := range tris {
		for k := 0; k < 3; k++ {
			v, err := getU32()
			if err != nil {
				return err
			}
			id := VertexID(int32(v))
			if id < 0 || int(id) >= len(verts) {
				return fmt.Errorf("mesh: triangle %d references vertex %d out of range", i, id)
			}
			tris[i].V[k] = id
		}
		tris[i].N = [3]TriID{NoTri, NoTri, NoTri}
	}
	nc, err := getU32()
	if err != nil {
		return err
	}
	if nc > maxDecodeElems {
		return fmt.Errorf("mesh: constraint count %d exceeds limit %d (corrupt blob?)", nc, maxDecodeElems)
	}
	constrained := make(map[edgeKey]bool, nc)
	for i := uint32(0); i < nc; i++ {
		a, err := getU32()
		if err != nil {
			return err
		}
		b, err := getU32()
		if err != nil {
			return err
		}
		constrained[mkEdge(VertexID(int32(a)), VertexID(int32(b)))] = true
	}

	// Rebuild adjacency from directed half-edges.
	type dedge struct{ a, b VertexID }
	half := make(map[dedge]TriID, 3*len(tris))
	for i := range tris {
		for k := 0; k < 3; k++ {
			a := tris[i].V[(k+1)%3]
			b := tris[i].V[(k+2)%3]
			half[dedge{a, b}] = TriID(i)
		}
	}
	for i := range tris {
		for k := 0; k < 3; k++ {
			a := tris[i].V[(k+1)%3]
			b := tris[i].V[(k+2)%3]
			if n, ok := half[dedge{b, a}]; ok {
				tris[i].N[k] = n
			}
		}
	}

	m.verts = verts
	m.tris = tris
	m.alive = make([]bool, len(tris))
	m.vertTri = make([]TriID, len(verts))
	for i := range m.vertTri {
		m.vertTri[i] = NoTri
	}
	for i := range tris {
		m.alive[i] = true
		for k := 0; k < 3; k++ {
			m.vertTri[tris[i].V[k]] = TriID(i)
		}
	}
	m.free = nil
	m.constrained = constrained
	m.super = super
	m.nAlive = len(tris)
	return nil
}

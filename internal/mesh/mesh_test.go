package mesh

import (
	"bytes"
	"math/rand"
	"testing"

	"mrts/internal/geom"
)

// buildRandom builds a Delaunay triangulation of n random points in the unit
// square (plus the super triangle).
func buildRandom(t *testing.T, n int, seed int64) *Mesh {
	t.Helper()
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	rng := rand.New(rand.NewSource(seed))
	hint := NoTri
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		v, err := m.InsertPoint(p, hint)
		if err != nil && err != ErrDuplicate {
			t.Fatalf("insert %v: %v", p, err)
		}
		if v != NoVertex {
			hint = m.IncidentTri(v)
		}
	}
	return m
}

func TestInsertBasic(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	if m.NumTriangles() != 1 {
		t.Fatalf("after InitSuper: %d triangles", m.NumTriangles())
	}
	v, err := m.InsertPoint(geom.Pt(0.5, 0.5), NoTri)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 3 {
		t.Fatalf("after one insert: %d triangles, want 3", m.NumTriangles())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate.
	v2, err := m.InsertPoint(geom.Pt(0.5, 0.5), NoTri)
	if err != ErrDuplicate {
		t.Fatalf("duplicate insert: err = %v", err)
	}
	if v2 != v {
		t.Fatalf("duplicate insert returned %d, want %d", v2, v)
	}
}

func TestInsertOutside(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	// Way beyond the super triangle.
	if _, err := m.InsertPoint(geom.Pt(1e9, 1e9), NoTri); err != ErrOutside {
		t.Fatalf("err = %v, want ErrOutside", err)
	}
}

func TestInsertOnEdge(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(4, 4)))
	a, _ := m.InsertPoint(geom.Pt(0, 0), NoTri)
	b, _ := m.InsertPoint(geom.Pt(4, 0), NoTri)
	if _, err := m.InsertPoint(geom.Pt(2, 2), NoTri); err != nil {
		t.Fatal(err)
	}
	// (a, b) should be an edge; insert its midpoint, exactly on the edge.
	if !m.HasEdge(a, b) {
		t.Fatal("expected edge (a,b)")
	}
	if _, err := m.InsertPoint(geom.Pt(2, 0), NoTri); err != nil {
		t.Fatalf("on-edge insert: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDelaunay(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		m := buildRandom(t, n, int64(n))
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.CheckDelaunay(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Euler: for a triangulation of V vertices with hull size 3 (the
		// super triangle), triangles = 2V - 2 - 3 = 2V - 5.
		wantTris := 2*m.NumVertices() - 5
		if m.NumTriangles() != wantTris {
			t.Fatalf("n=%d: %d triangles, want %d", n, m.NumTriangles(), wantTris)
		}
	}
}

func TestGridPointsDegenerate(t *testing.T) {
	// Cocircular grid points stress the exact predicates.
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(8, 8)))
	for i := 0; i <= 8; i++ {
		for j := 0; j <= 8; j++ {
			_, err := m.InsertPoint(geom.Pt(float64(i), float64(j)), NoTri)
			if err != nil && err != ErrDuplicate {
				t.Fatalf("grid insert (%d,%d): %v", i, j, err)
			}
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestLocateModes(t *testing.T) {
	m := buildRandom(t, 50, 1)
	// Existing vertex.
	p := m.Vertex(5)
	loc := m.Locate(p, NoTri)
	if loc.Kind != LocateOnVert || loc.Vert != 5 {
		t.Fatalf("Locate(vertex) = %+v", loc)
	}
	// Interior point of some triangle.
	var tid TriID = NoTri
	m.ForEachTri(func(id TriID, tr Tri) {
		if tid == NoTri && !m.HasSuperVertex(id) {
			tid = id
		}
	})
	c := m.Triangle(tid).Centroid()
	loc = m.Locate(c, NoTri)
	if loc.Kind != LocateInside {
		t.Fatalf("Locate(centroid) = %+v", loc)
	}
	if !m.Triangle(loc.Tri).ContainsPoint(c) {
		t.Fatal("located triangle does not contain the point")
	}
}

func TestInsertSegmentAndFlip(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	// A quad where the Delaunay diagonal will be (c, d), then force (a, b).
	a, _ := m.InsertPoint(geom.Pt(0, 5), NoTri)
	b, _ := m.InsertPoint(geom.Pt(10, 5), NoTri)
	if _, err := m.InsertPoint(geom.Pt(5, 0.5), NoTri); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertPoint(geom.Pt(5, 9.5), NoTri); err != nil {
		t.Fatal(err)
	}
	if m.HasEdge(a, b) {
		t.Skip("Delaunay already contains (a,b); geometry assumption broken")
	}
	if err := m.InsertSegment(a, b); err != nil {
		t.Fatal(err)
	}
	if !m.HasEdge(a, b) {
		t.Fatal("segment not recovered")
	}
	if !m.IsConstrained(a, b) {
		t.Fatal("segment not marked constrained")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSegmentLong(t *testing.T) {
	// Force a segment across many random points.
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	a, _ := m.InsertPoint(geom.Pt(0.001, 0.5001), NoTri)
	b, _ := m.InsertPoint(geom.Pt(0.999, 0.5002), NoTri)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if _, err := m.InsertPoint(p, NoTri); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	if err := m.InsertSegment(a, b); err != nil {
		t.Fatal(err)
	}
	if !m.HasEdge(a, b) || !m.IsConstrained(a, b) {
		t.Fatal("long segment not recovered")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitConstrainedEdge(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	a, _ := m.InsertPoint(geom.Pt(1, 5), NoTri)
	b, _ := m.InsertPoint(geom.Pt(9, 5), NoTri)
	if _, err := m.InsertPoint(geom.Pt(5, 1), NoTri); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertPoint(geom.Pt(5, 9), NoTri); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertSegment(a, b); err != nil {
		t.Fatal(err)
	}
	mid := m.Vertex(a).Mid(m.Vertex(b))
	v, err := m.InsertPoint(mid, NoTri)
	if err != nil {
		t.Fatalf("midpoint insert: %v", err)
	}
	if m.IsConstrained(a, b) {
		t.Error("original segment should no longer be constrained")
	}
	if !m.IsConstrained(a, v) || !m.IsConstrained(v, b) {
		t.Error("halves should be constrained")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossingConstraintRejected(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)))
	a, _ := m.InsertPoint(geom.Pt(1, 5), NoTri)
	b, _ := m.InsertPoint(geom.Pt(9, 5), NoTri)
	c, _ := m.InsertPoint(geom.Pt(5, 1), NoTri)
	d, _ := m.InsertPoint(geom.Pt(5, 9), NoTri)
	if err := m.InsertSegment(a, b); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertSegment(c, d); err != ErrCrossConstrain {
		t.Fatalf("crossing segment: err = %v, want ErrCrossConstrain", err)
	}
}

// carveSquare builds a CDT of the unit square with constrained boundary and
// carves the exterior.
func carveSquare(t *testing.T, interior int, seed int64) *Mesh {
	t.Helper()
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	corners := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	ids := make([]VertexID, 4)
	for i, p := range corners {
		v, err := m.InsertPoint(p, NoTri)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < interior; i++ {
		p := geom.Pt(0.05+0.9*rng.Float64(), 0.05+0.9*rng.Float64())
		if _, err := m.InsertPoint(p, NoTri); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	for i := range ids {
		if err := m.InsertSegment(ids[i], ids[(i+1)%4]); err != nil {
			t.Fatal(err)
		}
	}
	m.Carve()
	return m
}

func TestCarve(t *testing.T) {
	m := carveSquare(t, 100, 7)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// No super-vertex triangles must remain, and every hull edge must be
	// constrained.
	m.ForEachTri(func(id TriID, tr Tri) {
		for k := 0; k < 3; k++ {
			if tr.N[k] == NoTri {
				a := tr.V[(k+1)%3]
				b := tr.V[(k+2)%3]
				if !m.IsConstrained(a, b) {
					t.Errorf("hull edge (%d,%d) not constrained", a, b)
				}
			}
		}
	})
	// Total area of live triangles should equal the square's area.
	var area float64
	m.ForEachTri(func(id TriID, tr Tri) { area += m.Triangle(id).Area() })
	if area < 0.999 || area > 1.001 {
		t.Errorf("carved area = %v, want 1.0", area)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	m := carveSquare(t, 60, 11)
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), m.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, actual = %d", want, got)
	}
	var m2 Mesh
	if err := m2.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.NumTriangles() != m.NumTriangles() {
		t.Errorf("triangles: got %d want %d", m2.NumTriangles(), m.NumTriangles())
	}
	if m2.NumVertices() != m.NumVertices() {
		t.Errorf("vertices: got %d want %d", m2.NumVertices(), m.NumVertices())
	}
	if m2.NumConstrained() != m.NumConstrained() {
		t.Errorf("constraints: got %d want %d", m2.NumConstrained(), m.NumConstrained())
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex positions preserved exactly.
	for i := 0; i < m.NumVertices(); i++ {
		if !m.Vertex(VertexID(i)).Eq(m2.Vertex(VertexID(i))) {
			t.Fatalf("vertex %d moved", i)
		}
	}
	// Total area preserved.
	var a1, a2 float64
	m.ForEachTri(func(id TriID, tr Tri) { a1 += m.Triangle(id).Area() })
	m2.ForEachTri(func(id TriID, tr Tri) { a2 += m2.Triangle(id).Area() })
	if d := a1 - a2; d > 1e-12 || d < -1e-12 {
		t.Errorf("area changed: %v vs %v", a1, a2)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	var m Mesh
	if err := m.DecodeFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestEncodedSizeEmpty(t *testing.T) {
	m := New()
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != m.EncodedSize() {
		t.Fatalf("empty mesh: EncodedSize=%d actual=%d", m.EncodedSize(), buf.Len())
	}
}

func TestFlipPreservesValidity(t *testing.T) {
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(2, 2)))
	a, _ := m.InsertPoint(geom.Pt(0, 1), NoTri)
	b, _ := m.InsertPoint(geom.Pt(2, 1), NoTri)
	if _, err := m.InsertPoint(geom.Pt(1, 0), NoTri); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertPoint(geom.Pt(1, 2), NoTri); err != nil {
		t.Fatal(err)
	}
	// Find an interior flippable edge and flip it back and forth.
	var ft TriID = NoTri
	var fi int
	m.ForEachTri(func(id TriID, tr Tri) {
		if ft != NoTri {
			return
		}
		for k := 0; k < 3; k++ {
			if tr.N[k] == NoTri {
				continue
			}
			ea := tr.V[(k+1)%3]
			eb := tr.V[(k+2)%3]
			// Need the quad strictly convex: check with a trial flip by
			// picking the known convex configuration (a..b quad).
			if (ea == a && eb == b) || (ea == b && eb == a) {
				ft, fi = id, k
			}
		}
	})
	if ft == NoTri {
		t.Skip("no (a,b) edge in this configuration")
	}
	t1, t2 := m.Flip(ft, fi)
	if err := m.Validate(); err != nil {
		t.Fatalf("after flip: %v", err)
	}
	if m.HasEdge(a, b) {
		t.Fatal("edge (a,b) should be gone after flip")
	}
	_ = t1
	_ = t2
}

func TestTriangleRingClosedAndOpen(t *testing.T) {
	m := carveSquare(t, 30, 5)
	// A hull (corner) vertex has an open fan; an interior vertex a closed
	// ring. Find one of each and check the ring contains exactly the
	// triangles incident to the vertex.
	count := func(v VertexID) int {
		n := 0
		m.ForEachTri(func(id TriID, tr Tri) {
			for k := 0; k < 3; k++ {
				if tr.V[k] == v {
					n++
				}
			}
		})
		return n
	}
	checked := 0
	for vi := 0; vi < m.NumVertices() && checked < 10; vi++ {
		v := VertexID(vi)
		start := m.IncidentTri(v)
		if start == NoTri {
			continue // super vertices have no triangles after carving
		}
		ring, err := m.triangleRing(v, start)
		if err != nil {
			t.Fatalf("ring(%d): %v", v, err)
		}
		if len(ring) != count(v) {
			t.Fatalf("ring(%d): %d triangles, want %d", v, len(ring), count(v))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no vertices checked")
	}
}

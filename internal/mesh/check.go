package mesh

import (
	"fmt"

	"mrts/internal/geom"
)

// Validate checks the structural invariants of the triangulation: CCW
// orientation of every live triangle, neighbor symmetry, shared-edge
// consistency, and constrained edges being actual edges. It returns the
// first violation found, or nil. Intended for tests and debug assertions.
func (m *Mesh) Validate() error {
	for i := range m.tris {
		if !m.alive[i] {
			continue
		}
		t := TriID(i)
		tr := m.tris[i]
		a, b, c := m.verts[tr.V[0]], m.verts[tr.V[1]], m.verts[tr.V[2]]
		if geom.Orient2D(a, b, c) != geom.Positive {
			return fmt.Errorf("triangle %d not CCW: %v %v %v", t, a, b, c)
		}
		for k := 0; k < 3; k++ {
			n := tr.N[k]
			if n == NoTri {
				continue
			}
			if int(n) >= len(m.tris) || !m.alive[n] {
				return fmt.Errorf("triangle %d neighbor %d dead or out of range", t, n)
			}
			ea := tr.V[(k+1)%3]
			eb := tr.V[(k+2)%3]
			// The neighbor must hold the same edge reversed and point back.
			back := false
			for j := 0; j < 3; j++ {
				na := m.tris[n].V[(j+1)%3]
				nb := m.tris[n].V[(j+2)%3]
				if na == eb && nb == ea {
					if m.tris[n].N[j] != t {
						return fmt.Errorf("triangle %d edge %d: neighbor %d does not point back", t, k, n)
					}
					back = true
				}
			}
			if !back {
				return fmt.Errorf("triangle %d edge %d: neighbor %d does not share edge (%d,%d)", t, k, n, ea, eb)
			}
		}
	}
	for e := range m.constrained {
		if m.findEdge(e.a, e.b) == NoTri {
			return fmt.Errorf("constrained edge (%d,%d) is not an edge of the triangulation", e.a, e.b)
		}
	}
	return nil
}

// CheckDelaunay verifies the (constrained) Delaunay property: for every
// non-constrained interior edge, the vertex opposite in the adjacent triangle
// is not strictly inside the circumcircle. Returns the first violation.
func (m *Mesh) CheckDelaunay() error {
	for i := range m.tris {
		if !m.alive[i] {
			continue
		}
		t := TriID(i)
		tr := m.tris[i]
		for k := 0; k < 3; k++ {
			n := tr.N[k]
			if n == NoTri || n < t {
				continue // visit each edge once
			}
			ea := tr.V[(k+1)%3]
			eb := tr.V[(k+2)%3]
			if m.IsConstrained(ea, eb) {
				continue
			}
			// Vertex of n opposite the shared edge.
			var w VertexID = NoVertex
			for j := 0; j < 3; j++ {
				if m.tris[n].N[j] == t {
					w = m.tris[n].V[j]
				}
			}
			if w == NoVertex {
				return fmt.Errorf("edge (%d,%d): backlink missing", ea, eb)
			}
			if m.Triangle(t).CircumcircleContains(m.verts[w]) {
				return fmt.Errorf("edge (%d,%d) of triangle %d violates Delaunay (opposite vertex %d inside circumcircle)", ea, eb, t, w)
			}
		}
	}
	return nil
}

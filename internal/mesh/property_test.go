package mesh

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"mrts/internal/geom"
)

// TestPropertyRandomInsertionsKeepInvariants drives the kernel with random
// point sets and checks the full invariant set after every build: structural
// validity, the Delaunay property, and Euler's relation.
func TestPropertyRandomInsertionsKeepInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%120) + 3
		rng := rand.New(rand.NewSource(seed))
		m := New()
		m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
		inserted := 3 // super vertices
		for i := 0; i < n; i++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			if _, err := m.InsertPoint(p, NoTri); err == nil {
				inserted++
			} else if err != ErrDuplicate {
				return false
			}
		}
		if err := m.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if err := m.CheckDelaunay(); err != nil {
			t.Logf("delaunay: %v", err)
			return false
		}
		// Euler: triangles = 2V - 2 - hull; hull is the super triangle (3).
		return m.NumTriangles() == 2*inserted-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyClusteredPoints stresses near-degenerate input: many points
// packed into a tiny region plus cocircular rings.
func TestPropertyClusteredPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	m.InitSuper(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	// Tight cluster.
	for i := 0; i < 100; i++ {
		p := geom.Pt(0.5+rng.Float64()*1e-6, 0.5+rng.Float64()*1e-6)
		if _, err := m.InsertPoint(p, NoTri); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	// Cocircular ring (grid-snapped angles generate exact duplicates of
	// coordinates and many cocircular quadruples).
	for i := 0; i < 64; i++ {
		x := 0.5 + 0.25*cos64(i)
		y := 0.5 + 0.25*sin64(i)
		if _, err := m.InsertPoint(geom.Pt(x, y), NoTri); err != nil && err != ErrDuplicate {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func cos64(i int) float64 {
	table := [4]float64{1, 0, -1, 0}
	return table[i%4] * (1 + float64(i/4)*0.01)
}

func sin64(i int) float64 {
	table := [4]float64{0, 1, 0, -1}
	return table[i%4] * (1 + float64(i/4)*0.01)
}

// TestPropertySplitEdgeConsistency splits random constrained edges and
// verifies constraint bookkeeping stays exact.
func TestPropertySplitEdgeConsistency(t *testing.T) {
	m := carveSquare(t, 40, 21)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 30; round++ {
		// Pick a random constrained edge.
		type e struct{ a, b VertexID }
		var edges []e
		m.ForEachConstrained(func(a, b VertexID) { edges = append(edges, e{a, b}) })
		if len(edges) == 0 {
			t.Fatal("no constrained edges")
		}
		pick := edges[rng.Intn(len(edges))]
		before := m.NumConstrained()
		v, err := m.SplitEdge(pick.a, pick.b)
		if err == ErrDuplicate {
			continue // too short to split
		}
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		if m.IsConstrained(pick.a, pick.b) {
			t.Fatal("parent segment still constrained")
		}
		if !m.IsConstrained(pick.a, v) || !m.IsConstrained(v, pick.b) {
			t.Fatal("halves not constrained")
		}
		if m.NumConstrained() != before+1 {
			t.Fatalf("constraint count %d -> %d", before, m.NumConstrained())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropertyEncodeDecodeIdempotent round-trips random meshes twice and
// compares the byte streams (a canonical-form check modulo triangle order).
func TestPropertyEncodeDecodeIdempotent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := buildRandom(t, 80, seed)
		var b1 bytesBuffer
		if err := m.EncodeTo(&b1); err != nil {
			t.Fatal(err)
		}
		var m2 Mesh
		if err := m2.DecodeFrom(&b1); err != nil {
			t.Fatal(err)
		}
		var b2 bytesBuffer
		if err := m2.EncodeTo(&b2); err != nil {
			t.Fatal(err)
		}
		var m3 Mesh
		if err := m3.DecodeFrom(&b2); err != nil {
			t.Fatal(err)
		}
		if m3.NumTriangles() != m.NumTriangles() || m3.NumVertices() != m.NumVertices() {
			t.Fatalf("seed %d: counts drifted", seed)
		}
		if err := m3.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// bytesBuffer is a minimal io.ReadWriter for the round-trip test.
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bytesBuffer) Read(p []byte) (int, error) {
	if len(w.b) == 0 {
		return 0, errEOF
	}
	n := copy(p, w.b)
	w.b = w.b[n:]
	return n, nil
}

var errEOF = io.EOF

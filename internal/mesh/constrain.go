package mesh

import "mrts/internal/geom"

// Flip flips the edge (a, b) shared by triangle t and its neighbor, replacing
// it with the opposite diagonal of the quadrilateral. The quadrilateral must
// be strictly convex; the caller is responsible for checking. Flip panics on
// inconsistent topology.
func (m *Mesh) Flip(t TriID, i int) (TriID, TriID) {
	u := m.tris[t].N[i]
	if u == NoTri {
		panic("mesh: Flip on boundary edge")
	}
	p := m.tris[t].V[i]
	a := m.tris[t].V[(i+1)%3]
	b := m.tris[t].V[(i+2)%3]
	j := -1
	for k := 0; k < 3; k++ {
		if m.tris[u].N[k] == t {
			j = k
			break
		}
	}
	if j < 0 {
		panic("mesh: Flip: neighbor backlink missing")
	}
	q := m.tris[u].V[j]

	// External neighbors before rewiring.
	tPA := m.tris[t].N[(i+2)%3] // across (p, a), opposite b
	tBP := m.tris[t].N[(i+1)%3] // across (b, p), opposite a
	uAQ := m.tris[u].N[(j+1)%3] // across (a, q), opposite b
	uQB := m.tris[u].N[(j+2)%3] // across (q, b), opposite a

	// The labels above assume u = (q, b, a) rotation: u.V[j+1] = b,
	// u.V[j+2] = a. Verify and swap if the orientation is mirrored.
	if m.tris[u].V[(j+1)%3] != b || m.tris[u].V[(j+2)%3] != a {
		panic("mesh: Flip: shared edge mismatch")
	}

	// New triangles: t' = (p, a, q), u' = (p, q, b).
	m.tris[t].V = [3]VertexID{p, a, q}
	m.tris[u].V = [3]VertexID{p, q, b}

	// t' edges: opp p = (a, q) -> uAQ; opp a = (q, p) -> u'; opp q = (p, a) -> tPA.
	m.tris[t].N = [3]TriID{NoTri, u, NoTri}
	if uAQ != NoTri {
		m.link(t, 0, uAQ)
	}
	if tPA != NoTri {
		m.link(t, 2, tPA)
	}
	// u' edges: opp p = (q, b) -> uQB; opp q = (b, p) -> tBP; opp b = (p, q) -> t'.
	m.tris[u].N = [3]TriID{NoTri, NoTri, t}
	if uQB != NoTri {
		m.link(u, 0, uQB)
	}
	if tBP != NoTri {
		m.link(u, 1, tBP)
	}

	for _, vv := range []VertexID{p, a, q} {
		m.vertTri[vv] = t
	}
	for _, vv := range []VertexID{p, q, b} {
		m.vertTri[vv] = u
	}
	return t, u
}

// InsertSegment forces the edge (a, b) into the triangulation (recovering it
// with edge flips, Sloan's algorithm) and marks it constrained. Both vertices
// must already be part of the triangulation. It fails with ErrCrossConstrain
// if the segment properly crosses an existing constrained edge, and with
// ErrNoPath if recovery does not converge (e.g. a vertex lies exactly on the
// open segment).
func (m *Mesh) InsertSegment(a, b VertexID) error {
	if a == b {
		return nil
	}
	if m.findEdge(a, b) != NoTri {
		m.SetConstrained(a, b, true)
		return nil
	}
	pa, pb := m.verts[a], m.verts[b]

	// Collect edges crossing segment (a, b) by walking from a.
	crossing, err := m.crossingEdges(a, b)
	if err != nil {
		return err
	}

	// Flip crossing edges until the segment appears. Non-convex quads are
	// postponed; Sloan shows this terminates for valid input.
	guard := (len(crossing) + 8) * (len(crossing) + 8) * 4
	for len(crossing) > 0 {
		if guard--; guard < 0 {
			return ErrNoPath
		}
		e := crossing[0]
		crossing = crossing[1:]
		t := m.findEdge(e.a, e.b)
		if t == NoTri {
			continue // already flipped away
		}
		i := m.edgeIndex(t, e.a, e.b)
		u := m.tris[t].N[i]
		if u == NoTri {
			return ErrNoPath
		}
		p := m.verts[m.tris[t].V[i]]
		ea := m.verts[m.tris[t].V[(i+1)%3]]
		eb := m.verts[m.tris[t].V[(i+2)%3]]
		var q geom.Point
		for k := 0; k < 3; k++ {
			if m.tris[u].N[k] == t {
				q = m.verts[m.tris[u].V[k]]
				break
			}
		}
		// Flip only if the quadrilateral (p, ea, q, eb), which is in CCW
		// order by construction, is strictly convex.
		if geom.Orient2D(p, ea, q) <= 0 || geom.Orient2D(ea, q, eb) <= 0 ||
			geom.Orient2D(q, eb, p) <= 0 || geom.Orient2D(eb, p, ea) <= 0 {
			crossing = append(crossing, e)
			continue
		}
		nt, _ := m.Flip(t, i)
		// The new diagonal is (p, q) = (t.V[i], opposite). Does it still
		// cross segment (a,b)?
		d0 := m.tris[nt].V[0]
		d1 := m.tris[nt].V[2] // t' = (p, a, q): diagonal is (p, q) = V[0], V[2]
		if d0 != a && d0 != b && d1 != a && d1 != b &&
			geom.SegmentsProperlyIntersect(pa, pb, m.verts[d0], m.verts[d1]) {
			crossing = append(crossing, edgeKey{d0, d1})
		}
	}

	if m.findEdge(a, b) == NoTri {
		return ErrNoPath
	}
	m.SetConstrained(a, b, true)
	return nil
}

// crossingEdges returns the edges properly crossed by segment (a, b),
// starting the walk at a.
func (m *Mesh) crossingEdges(a, b VertexID) ([]edgeKey, error) {
	pa, pb := m.verts[a], m.verts[b]
	start := m.IncidentTri(a)
	if start == NoTri {
		return nil, ErrNoPath
	}
	// Find the triangle incident to a whose opposite edge crosses (a, b).
	t := start
	var first edgeKey
	found := false
	// Iterate over all triangles around a.
	ring, err := m.triangleRing(a, start)
	if err != nil {
		return nil, err
	}
	for _, rt := range ring {
		i := m.vertIndex(rt, a)
		va := m.tris[rt].V[(i+1)%3]
		vb := m.tris[rt].V[(i+2)%3]
		if va == b || vb == b {
			return nil, nil // edge already exists
		}
		if geom.SegmentsProperlyIntersect(pa, pb, m.verts[va], m.verts[vb]) {
			t = rt
			first = edgeKey{va, vb}
			found = true
			break
		}
	}
	if !found {
		return nil, ErrNoPath
	}
	var out []edgeKey
	cur := first
	for {
		if m.IsConstrained(cur.a, cur.b) {
			return nil, ErrCrossConstrain
		}
		out = append(out, cur)
		i := m.edgeIndex(t, cur.a, cur.b)
		u := m.tris[t].N[i]
		if u == NoTri {
			return nil, ErrNoPath
		}
		// Vertex of u opposite the shared edge.
		var w VertexID
		for k := 0; k < 3; k++ {
			if m.tris[u].N[k] == t {
				w = m.tris[u].V[k]
				break
			}
		}
		if w == b {
			return out, nil
		}
		// Continue through whichever edge of u crosses the segment.
		pw := m.verts[w]
		if geom.Orient2D(pa, pb, pw) == geom.Zero {
			return nil, ErrNoPath // vertex exactly on segment
		}
		var next edgeKey
		if geom.SegmentsProperlyIntersect(pa, pb, m.verts[cur.a], pw) {
			next = edgeKey{cur.a, w}
		} else {
			next = edgeKey{cur.b, w}
		}
		t, cur = u, next
		if len(out) > len(m.tris)*3+16 {
			return nil, ErrNoPath
		}
	}
}

// triangleRing returns the triangles around vertex v in order, starting from
// triangle start (which must be incident to v). It handles open fans at the
// hull by walking both directions.
func (m *Mesh) triangleRing(v VertexID, start TriID) ([]TriID, error) {
	var ring []TriID
	seen := make(map[TriID]bool)
	// Walk counter-clockwise.
	t := start
	for t != NoTri && !seen[t] {
		seen[t] = true
		ring = append(ring, t)
		i := m.vertIndex(t, v)
		if i < 0 {
			return nil, ErrNoPath
		}
		// Next CCW triangle is across edge (v, V[i+1]) = edge opposite V[i+2].
		t = m.tris[t].N[(i+2)%3]
	}
	if t == start && len(ring) > 0 && seen[start] {
		return ring, nil // closed ring
	}
	// Open fan: also walk clockwise from start.
	t = start
	i := m.vertIndex(t, v)
	t = m.tris[t].N[(i+1)%3]
	for t != NoTri && !seen[t] {
		seen[t] = true
		ring = append(ring, t)
		i := m.vertIndex(t, v)
		if i < 0 {
			return nil, ErrNoPath
		}
		t = m.tris[t].N[(i+1)%3]
	}
	return ring, nil
}

// findEdge returns a triangle having edge (a, b), or NoTri.
func (m *Mesh) findEdge(a, b VertexID) TriID {
	start := m.IncidentTri(a)
	if start == NoTri {
		return NoTri
	}
	ring, err := m.triangleRing(a, start)
	if err != nil {
		return NoTri
	}
	for _, t := range ring {
		if m.vertIndex(t, b) >= 0 {
			return t
		}
	}
	return NoTri
}

// HasEdge reports whether (a, b) is an edge of the triangulation.
func (m *Mesh) HasEdge(a, b VertexID) bool { return m.findEdge(a, b) != NoTri }

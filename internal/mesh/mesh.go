// Package mesh implements the 2-D triangular mesh data structure shared by
// all mesh generation methods in this repository: an incremental
// Bowyer–Watson Delaunay kernel with exact predicates, constrained edges
// (constrained Delaunay triangulation), point location by walking, exterior
// carving and a compact binary serialization used by the out-of-core layers.
package mesh

import (
	"errors"
	"fmt"

	"mrts/internal/geom"
)

// VertexID identifies a vertex within a Mesh. Vertex IDs are dense and
// stable: vertices are never removed.
type VertexID int32

// TriID identifies a triangle within a Mesh. Triangle IDs are recycled when
// triangles die during cavity retriangulation; they are not stable across
// serialization.
type TriID int32

// NoTri is the nil triangle ID (no neighbor across an edge, i.e. a boundary).
const NoTri TriID = -1

// NoVertex is the nil vertex ID.
const NoVertex VertexID = -1

// Tri is a single triangle. V holds the corner vertices in counter-clockwise
// order. N[i] is the neighbor sharing the edge opposite V[i] (the edge
// (V[i+1], V[i+2])), or NoTri if that edge has no neighbor.
type Tri struct {
	V [3]VertexID
	N [3]TriID
}

// Errors returned by mesh mutation operations.
var (
	ErrDuplicate      = errors.New("mesh: point coincides with an existing vertex")
	ErrOutside        = errors.New("mesh: point lies outside the triangulation")
	ErrCrossConstrain = errors.New("mesh: segment crosses a constrained edge")
	ErrNoPath         = errors.New("mesh: cannot recover segment")
)

type edgeKey struct{ a, b VertexID }

func mkEdge(a, b VertexID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Mesh is a mutable 2-D triangulation.
//
// A Mesh is not safe for concurrent mutation; the parallel mesh generation
// methods give every processing element its own Mesh (one per subdomain),
// matching the mobile-object decomposition of the paper.
type Mesh struct {
	verts []geom.Point
	tris  []Tri
	alive []bool
	free  []TriID

	// vertTri[v] is some triangle incident to v, used as a location hint
	// and to start incident-triangle walks.
	vertTri []TriID

	constrained map[edgeKey]bool

	// splitHook, when set, observes every constrained-edge split (see
	// SetSplitHook). It is not serialized.
	splitHook func(a, b, mid geom.Point)

	// super holds the three synthetic bounding vertices created by
	// InitSuper, or NoVertex if the mesh has no super triangle.
	super [3]VertexID

	nAlive int
}

// New returns an empty mesh.
func New() *Mesh {
	return &Mesh{
		constrained: make(map[edgeKey]bool),
		super:       [3]VertexID{NoVertex, NoVertex, NoVertex},
	}
}

// NewWithCapacity returns an empty mesh with storage preallocated for nv
// vertices and nt triangles.
func NewWithCapacity(nv, nt int) *Mesh {
	m := New()
	m.verts = make([]geom.Point, 0, nv)
	m.vertTri = make([]TriID, 0, nv)
	m.tris = make([]Tri, 0, nt)
	m.alive = make([]bool, 0, nt)
	return m
}

// NumVertices returns the number of vertices, including super vertices.
func (m *Mesh) NumVertices() int { return len(m.verts) }

// NumTriangles returns the number of live triangles.
func (m *Mesh) NumTriangles() int { return m.nAlive }

// Vertex returns the position of v.
func (m *Mesh) Vertex(v VertexID) geom.Point { return m.verts[v] }

// Tri returns the triangle record for t. The caller must not retain the
// returned value across mutations.
func (m *Mesh) Tri(t TriID) Tri { return m.tris[t] }

// Alive reports whether triangle t is live.
func (m *Mesh) Alive(t TriID) bool {
	return t >= 0 && int(t) < len(m.tris) && m.alive[t]
}

// IsSuper reports whether v is one of the synthetic bounding vertices.
func (m *Mesh) IsSuper(v VertexID) bool {
	return v == m.super[0] || v == m.super[1] || v == m.super[2]
}

// HasSuperVertex reports whether triangle t touches a super vertex.
func (m *Mesh) HasSuperVertex(t TriID) bool {
	tr := m.tris[t]
	return m.IsSuper(tr.V[0]) || m.IsSuper(tr.V[1]) || m.IsSuper(tr.V[2])
}

// Triangle returns the geometric triangle for t.
func (m *Mesh) Triangle(t TriID) geom.Triangle {
	tr := m.tris[t]
	return geom.Triangle{A: m.verts[tr.V[0]], B: m.verts[tr.V[1]], C: m.verts[tr.V[2]]}
}

// ForEachTri calls f for every live triangle. f must not mutate the mesh.
func (m *Mesh) ForEachTri(f func(TriID, Tri)) {
	for i := range m.tris {
		if m.alive[i] {
			f(TriID(i), m.tris[i])
		}
	}
}

// TriIDs returns the IDs of all live triangles.
func (m *Mesh) TriIDs() []TriID {
	out := make([]TriID, 0, m.nAlive)
	for i := range m.tris {
		if m.alive[i] {
			out = append(out, TriID(i))
		}
	}
	return out
}

// addVertex appends a vertex without any triangulation bookkeeping.
func (m *Mesh) addVertex(p geom.Point) VertexID {
	m.verts = append(m.verts, p)
	m.vertTri = append(m.vertTri, NoTri)
	return VertexID(len(m.verts) - 1)
}

// newTri allocates a triangle (recycling dead slots) with the given CCW
// vertices and no neighbors.
func (m *Mesh) newTri(a, b, c VertexID) TriID {
	var id TriID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
		m.tris[id] = Tri{V: [3]VertexID{a, b, c}, N: [3]TriID{NoTri, NoTri, NoTri}}
		m.alive[id] = true
	} else {
		m.tris = append(m.tris, Tri{V: [3]VertexID{a, b, c}, N: [3]TriID{NoTri, NoTri, NoTri}})
		m.alive = append(m.alive, true)
		id = TriID(len(m.tris) - 1)
	}
	m.nAlive++
	m.vertTri[a] = id
	m.vertTri[b] = id
	m.vertTri[c] = id
	return id
}

func (m *Mesh) killTri(t TriID) {
	if !m.alive[t] {
		return
	}
	m.alive[t] = false
	m.free = append(m.free, t)
	m.nAlive--
}

// link makes u the neighbor of t across t's edge i and fixes the backlink in
// u. u may be NoTri.
func (m *Mesh) link(t TriID, i int, u TriID) {
	m.tris[t].N[i] = u
	if u == NoTri {
		return
	}
	// Find the edge of u that matches (t.v[i+1], t.v[i+2]) reversed.
	a := m.tris[t].V[(i+1)%3]
	b := m.tris[t].V[(i+2)%3]
	for j := 0; j < 3; j++ {
		ua := m.tris[u].V[(j+1)%3]
		ub := m.tris[u].V[(j+2)%3]
		if ua == b && ub == a {
			m.tris[u].N[j] = t
			return
		}
	}
	panic("mesh: link: triangles do not share the edge")
}

// vertIndex returns the index of v within triangle t, or -1.
func (m *Mesh) vertIndex(t TriID, v VertexID) int {
	for i := 0; i < 3; i++ {
		if m.tris[t].V[i] == v {
			return i
		}
	}
	return -1
}

// edgeIndex returns the index i such that triangle t's edge i is (a, b) in
// either direction, or -1.
func (m *Mesh) edgeIndex(t TriID, a, b VertexID) int {
	for i := 0; i < 3; i++ {
		ea := m.tris[t].V[(i+1)%3]
		eb := m.tris[t].V[(i+2)%3]
		if (ea == a && eb == b) || (ea == b && eb == a) {
			return i
		}
	}
	return -1
}

// InitSuper initializes the triangulation with a huge super triangle
// enclosing r. All real points inserted later must lie within r.
func (m *Mesh) InitSuper(r geom.Rect) {
	if len(m.verts) != 0 {
		panic("mesh: InitSuper on non-empty mesh")
	}
	c := r.Center()
	d := r.W() + r.H() + 1
	// A triangle large enough that the circumcircles of all real triangles
	// stay well inside. 64x margin keeps walking robust.
	const k = 64.0
	s0 := m.addVertex(geom.Pt(c.X-2*k*d, c.Y-k*d))
	s1 := m.addVertex(geom.Pt(c.X+2*k*d, c.Y-k*d))
	s2 := m.addVertex(geom.Pt(c.X, c.Y+2*k*d))
	m.super = [3]VertexID{s0, s1, s2}
	m.newTri(s0, s1, s2)
}

// SuperVertices returns the three super-vertex IDs (NoVertex if InitSuper was
// never called).
func (m *Mesh) SuperVertices() [3]VertexID { return m.super }

// SetConstrained marks or unmarks the edge (a, b) as constrained. The edge is
// not required to be present in the triangulation (PCDM marks subdomain
// boundary segments before recovery).
func (m *Mesh) SetConstrained(a, b VertexID, c bool) {
	k := mkEdge(a, b)
	if c {
		m.constrained[k] = true
	} else {
		delete(m.constrained, k)
	}
}

// IsConstrained reports whether edge (a, b) is constrained.
func (m *Mesh) IsConstrained(a, b VertexID) bool {
	return m.constrained[mkEdge(a, b)]
}

// SetSplitHook installs (or clears, with nil) a callback invoked whenever a
// constrained edge is split by a point insertion, with the original
// endpoints and the inserted point. PCDM propagates interface splits to
// neighbor subdomains through it.
func (m *Mesh) SetSplitHook(hook func(a, b, mid geom.Point)) { m.splitHook = hook }

// NumConstrained returns the number of constrained edges.
func (m *Mesh) NumConstrained() int { return len(m.constrained) }

// ForEachConstrained calls f for every constrained edge.
func (m *Mesh) ForEachConstrained(f func(a, b VertexID)) {
	for k := range m.constrained {
		f(k.a, k.b)
	}
}

// Neighbor returns the triangle adjacent to t across the edge (a, b), or
// NoTri.
func (m *Mesh) Neighbor(t TriID, a, b VertexID) TriID {
	i := m.edgeIndex(t, a, b)
	if i < 0 {
		return NoTri
	}
	return m.tris[t].N[i]
}

// IncidentTri returns some live triangle incident to v, or NoTri.
func (m *Mesh) IncidentTri(v VertexID) TriID {
	t := m.vertTri[v]
	if t != NoTri && m.alive[t] && m.vertIndex(t, v) >= 0 {
		return t
	}
	// Hint is stale: scan (rare; hints are refreshed on every newTri).
	for i := range m.tris {
		if m.alive[i] && m.vertIndex(TriID(i), v) >= 0 {
			m.vertTri[v] = TriID(i)
			return TriID(i)
		}
	}
	return NoTri
}

// String implements fmt.Stringer with a short summary.
func (m *Mesh) String() string {
	return fmt.Sprintf("mesh{verts: %d, tris: %d, constrained: %d}",
		len(m.verts), m.nAlive, len(m.constrained))
}

package mesh

// Carve removes the exterior of the domain: every triangle reachable from a
// super-triangle vertex without crossing a constrained edge is deleted, and
// the super vertices are forgotten. After Carve the triangulation is bounded
// by constrained segments only (its hull edges are exactly the domain
// boundary), which is the invariant the refinement engine relies on.
//
// Domains with holes are handled by CarveFrom with interior hole seeds.
func (m *Mesh) Carve() {
	var seeds []TriID
	for i := range m.tris {
		if m.alive[i] && m.HasSuperVertex(TriID(i)) {
			seeds = append(seeds, TriID(i))
		}
	}
	m.CarveFrom(seeds)
	m.super = [3]VertexID{NoVertex, NoVertex, NoVertex}
}

// CarveFrom deletes every triangle reachable from the seed triangles without
// crossing a constrained edge.
func (m *Mesh) CarveFrom(seeds []TriID) {
	kill := make(map[TriID]bool, len(seeds)*4)
	stack := make([]TriID, 0, len(seeds))
	for _, s := range seeds {
		if s != NoTri && m.alive[s] && !kill[s] {
			kill[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		tr := m.tris[t]
		for i := 0; i < 3; i++ {
			n := tr.N[i]
			if n == NoTri || kill[n] {
				continue
			}
			a := tr.V[(i+1)%3]
			b := tr.V[(i+2)%3]
			if m.IsConstrained(a, b) {
				continue
			}
			kill[n] = true
			stack = append(stack, n)
		}
	}
	// Unlink neighbors pointing into the killed region, then delete.
	for t := range kill {
		tr := m.tris[t]
		for i := 0; i < 3; i++ {
			n := tr.N[i]
			if n == NoTri || kill[n] {
				continue
			}
			for j := 0; j < 3; j++ {
				if m.tris[n].N[j] == t {
					m.tris[n].N[j] = NoTri
				}
			}
		}
	}
	for t := range kill {
		m.killTri(t)
	}
}

//go:build !unix

package storage

// MappedFileStore falls back to the FileStore's pooled read path on
// platforms without mmap; the API is identical so callers never branch.
type MappedFileStore struct {
	*FileStore
}

// NewFileStoreMapped returns a FileStore rooted at dir. Without mmap support
// GetBuf serves pooled reads (still allocation-free in steady state).
func NewFileStoreMapped(dir string) (*MappedFileStore, error) {
	fs, err := NewFile(dir)
	if err != nil {
		return nil, err
	}
	return &MappedFileStore{FileStore: fs}, nil
}

package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// This file implements deterministic fault injection for the storage layer.
// Robust parallel mesh I/O hinges on every failure branch of the swap path
// being reachable in tests; FaultStore makes transient and permanent I/O
// faults reproducible (seeded), targetable (per key) and countable, so the
// retry layer and the runtime's loss accounting can be exercised without a
// failing disk.

// ErrInjected is the base error of every fault FaultStore injects.
var ErrInjected = errors.New("storage: injected fault")

// ErrPermanent marks an error as non-retryable: retry layers must hand it to
// the caller immediately. Classify with IsPermanent.
var ErrPermanent = errors.New("storage: permanent fault")

// IsPermanent reports whether err must not be retried: the key is missing,
// the store is closed, the store is out of capacity, or the error is
// explicitly marked permanent.
func IsPermanent(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrCapacity) || errors.Is(err, ErrPermanent)
}

// FaultConfig configures a FaultStore. All mechanisms compose: an operation
// first consumes its fail-first-N budget, then rolls the per-op probability.
type FaultConfig struct {
	// Seed makes the probabilistic injection deterministic. The same seed
	// and the same operation sequence produce the same faults.
	Seed int64
	// GetFailProb / PutFailProb are per-operation fault probabilities.
	GetFailProb float64
	PutFailProb float64
	// FailFirstGets / FailFirstPuts fail the first N matching operations of
	// each key and then succeed — the canonical transient-fault shape a
	// retry budget must absorb deterministically.
	FailFirstGets int
	FailFirstPuts int
	// Keys restricts injection to the listed keys; empty targets every key.
	Keys []Key
	// Permanent marks injected faults non-retryable (IsPermanent == true),
	// modeling media loss rather than a transient glitch.
	Permanent bool
	// CorruptGets returns a truncated blob instead of an error, driving the
	// caller's decode-failure branch rather than its read-failure branch.
	CorruptGets bool
}

// FaultStats counts injected faults.
type FaultStats struct {
	InjectedGets uint64
	InjectedPuts uint64
}

// FaultStore wraps a Store and injects configured faults. It is safe for
// concurrent use.
type FaultStore struct {
	inner Store
	cfg   FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	getsRem map[Key]int // remaining fail-first budget per key
	putsRem map[Key]int

	injGets atomic.Uint64
	injPuts atomic.Uint64
}

// NewFault wraps inner with the given fault configuration.
func NewFault(inner Store, cfg FaultConfig) *FaultStore {
	return &FaultStore{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		getsRem: make(map[Key]int),
		putsRem: make(map[Key]int),
	}
}

// Stats returns the injected-fault counters.
func (s *FaultStore) Stats() FaultStats {
	return FaultStats{InjectedGets: s.injGets.Load(), InjectedPuts: s.injPuts.Load()}
}

// Inner returns the wrapped store.
func (s *FaultStore) Inner() Store { return s.inner }

func (s *FaultStore) targeted(key Key) bool {
	if len(s.cfg.Keys) == 0 {
		return true
	}
	for _, k := range s.cfg.Keys {
		if k == key {
			return true
		}
	}
	return false
}

// trip decides whether this operation faults. rem holds the per-key
// fail-first budgets, budget the configured N, prob the per-op probability.
func (s *FaultStore) trip(key Key, rem map[Key]int, budget int, prob float64) bool {
	if !s.targeted(key) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if budget > 0 {
		n, seen := rem[key]
		if !seen {
			n = budget
		}
		if n > 0 {
			rem[key] = n - 1
			return true
		}
		rem[key] = 0
	}
	return prob > 0 && s.rng.Float64() < prob
}

func (s *FaultStore) injectedErr(op string, key Key) error {
	if s.cfg.Permanent {
		return fmt.Errorf("%s %q: %w: %w", op, string(key), ErrInjected, ErrPermanent)
	}
	return fmt.Errorf("%s %q: %w", op, string(key), ErrInjected)
}

// Put implements Store.
func (s *FaultStore) Put(key Key, data []byte) error {
	if s.trip(key, s.putsRem, s.cfg.FailFirstPuts, s.cfg.PutFailProb) {
		s.injPuts.Add(1)
		return s.injectedErr("put", key)
	}
	return s.inner.Put(key, data)
}

// Get implements Store.
func (s *FaultStore) Get(key Key) ([]byte, error) {
	if s.trip(key, s.getsRem, s.cfg.FailFirstGets, s.cfg.GetFailProb) {
		s.injGets.Add(1)
		if s.cfg.CorruptGets {
			d, err := s.inner.Get(key)
			if err != nil {
				return nil, err
			}
			return d[:len(d)/2], nil
		}
		return nil, s.injectedErr("get", key)
	}
	return s.inner.Get(key)
}

// GetBuf implements BufGetter, injecting the same faults as Get while
// forwarding the pooled path inward. A corrupted read returns a truncated
// view of the inner buffer; ReleaseBuf below still releases the full region.
func (s *FaultStore) GetBuf(key Key) ([]byte, error) {
	if s.trip(key, s.getsRem, s.cfg.FailFirstGets, s.cfg.GetFailProb) {
		s.injGets.Add(1)
		if s.cfg.CorruptGets {
			d, err := GetBuf(s.inner, key)
			if err != nil {
				return nil, err
			}
			return d[:len(d)/2], nil
		}
		return nil, s.injectedErr("get", key)
	}
	return GetBuf(s.inner, key)
}

// ReleaseBuf implements BufGetter.
func (s *FaultStore) ReleaseBuf(data []byte) { ReleaseBuf(s.inner, data) }

// PutBuf implements BufPutter: an injected fault leaves the buffer with the
// caller (exactly the retry contract), otherwise ownership passes inward.
func (s *FaultStore) PutBuf(key Key, data []byte) error {
	if s.trip(key, s.putsRem, s.cfg.FailFirstPuts, s.cfg.PutFailProb) {
		s.injPuts.Add(1)
		return s.injectedErr("put", key)
	}
	return PutBuf(s.inner, key, data)
}

// Delete implements Store.
func (s *FaultStore) Delete(key Key) error { return s.inner.Delete(key) }

// Has implements Store.
func (s *FaultStore) Has(key Key) bool { return s.inner.Has(key) }

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }

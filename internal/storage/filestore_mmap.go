//go:build unix

package storage

import (
	"fmt"
	"os"
	"sync"
	"syscall"
	"unsafe"

	"mrts/internal/bufpool"
)

// MappedFileStore is a FileStore whose read path serves blobs as read-only
// memory mappings: a demand load decodes straight out of the page cache with
// no read(2) copy and no heap buffer at all. Writes go through the ordinary
// temp-file + rename path, which keeps already-mapped readers valid — the
// rename replaces the directory entry while the old inode's pages stay
// mapped until ReleaseBuf unmaps them (the same holds for Delete's unlink).
type MappedFileStore struct {
	*FileStore
	mapMu sync.Mutex
	// maps records each live mapping by its base pointer so ReleaseBuf can
	// unmap the full original region even when the caller hands back a
	// truncated or re-sliced view (fault injection does exactly that).
	maps map[*byte][]byte
}

// NewFileStoreMapped returns a FileStore rooted at dir whose GetBuf path is
// mmap-backed. On platforms without mmap this falls back to pooled reads
// (see filestore_mmap_stub.go).
func NewFileStoreMapped(dir string) (*MappedFileStore, error) {
	fs, err := NewFile(dir)
	if err != nil {
		return nil, err
	}
	return &MappedFileStore{FileStore: fs, maps: make(map[*byte][]byte)}, nil
}

// GetBuf implements BufGetter: the returned buffer is a read-only mapping of
// the object's file. The caller must not write to it and must hand it back
// with ReleaseBuf, which unmaps.
func (s *MappedFileStore) GetBuf(key Key) ([]byte, error) {
	f, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	size := int(fi.Size())
	if size == 0 {
		// mmap rejects zero-length mappings; hand out a pooled empty buffer
		// instead (ReleaseBuf recognizes it by not finding a mapping).
		return bufpool.Get(0), nil
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %q: %w", key, err)
	}
	s.mapMu.Lock()
	s.maps[unsafe.SliceData(m)] = m
	s.mapMu.Unlock()
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += uint64(size)
	s.mu.Unlock()
	return m, nil
}

// ReleaseBuf implements BufGetter: it unmaps the full original mapping that
// data is a view of. Buffers that are not mappings (the zero-length case, or
// a pooled fallback) are recycled into the arena.
func (s *MappedFileStore) ReleaseBuf(data []byte) {
	if cap(data) == 0 {
		return
	}
	base := unsafe.SliceData(data[:cap(data)])
	s.mapMu.Lock()
	m, ok := s.maps[base]
	if ok {
		delete(s.maps, base)
	}
	s.mapMu.Unlock()
	if ok {
		_ = syscall.Munmap(m)
		return
	}
	bufpool.Put(data)
}

// Get implements Store: a caller-owned copy (callers of the plain interface
// may hold the result indefinitely, which a mapping must not be).
func (s *MappedFileStore) Get(key Key) ([]byte, error) {
	m, err := s.GetBuf(key)
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(m))
	copy(cp, m)
	s.ReleaseBuf(m)
	return cp, nil
}

// Close implements Store, unmapping any mappings never released (a leak
// guard, not an expected path — the swap scheduler releases every load).
func (s *MappedFileStore) Close() error {
	s.mapMu.Lock()
	for base, m := range s.maps {
		_ = syscall.Munmap(m)
		delete(s.maps, base)
	}
	s.mapMu.Unlock()
	return s.FileStore.Close()
}

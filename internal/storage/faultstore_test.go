package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFaultStoreFailFirstN(t *testing.T) {
	st := NewFault(NewMem(), FaultConfig{FailFirstGets: 2, FailFirstPuts: 1})
	// First put fails, second succeeds.
	if err := st.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first Put = %v, want ErrInjected", err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("second Put = %v", err)
	}
	// First two gets fail, third succeeds.
	for i := 0; i < 2; i++ {
		if _, err := st.Get("k"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Get %d = %v, want ErrInjected", i, err)
		}
	}
	got, err := st.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("third Get = %q, %v", got, err)
	}
	// The budget is per key: a fresh key gets its own failures.
	if err := st.Put("k2", []byte("w")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put on fresh key = %v, want ErrInjected", err)
	}
	s := st.Stats()
	if s.InjectedGets != 2 || s.InjectedPuts != 2 {
		t.Fatalf("stats = %+v, want 2 gets / 2 puts", s)
	}
}

func TestFaultStoreKeyTargeting(t *testing.T) {
	st := NewFault(NewMem(), FaultConfig{FailFirstPuts: 1, Keys: []Key{"bad"}})
	if err := st.Put("good", []byte("v")); err != nil {
		t.Fatalf("untargeted Put = %v", err)
	}
	if err := st.Put("bad", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted Put = %v, want ErrInjected", err)
	}
}

func TestFaultStoreProbabilityDeterminism(t *testing.T) {
	seq := func() []bool {
		st := NewFault(NewMem(), FaultConfig{Seed: 99, GetFailProb: 0.5})
		st.Inner().Put("k", []byte("v"))
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := st.Get("k")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := seq(), seq()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: run A faulted=%v, run B faulted=%v", i, a[i], b[i])
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("prob 0.5 over %d ops injected %d faults", len(a), faults)
	}
}

func TestFaultStorePermanentClassification(t *testing.T) {
	tr := NewFault(NewMem(), FaultConfig{FailFirstGets: 1})
	if _, err := tr.Get("k"); err == nil || IsPermanent(err) {
		t.Fatalf("transient fault: err=%v IsPermanent=%v", err, IsPermanent(err))
	}
	pm := NewFault(NewMem(), FaultConfig{FailFirstGets: 1, Permanent: true})
	if _, err := pm.Get("k"); !IsPermanent(err) {
		t.Fatalf("permanent fault not classified permanent: %v", err)
	}
	if !IsPermanent(ErrNotFound) || !IsPermanent(ErrClosed) {
		t.Fatal("ErrNotFound/ErrClosed must be permanent")
	}
	if IsPermanent(nil) || IsPermanent(errors.New("disk hiccup")) {
		t.Fatal("nil/unknown errors must not be permanent")
	}
}

func TestFaultStoreCorruptGets(t *testing.T) {
	st := NewFault(NewMem(), FaultConfig{FailFirstGets: 1, CorruptGets: true})
	full := []byte("0123456789abcdef")
	st.Inner().Put("k", full)
	got, err := st.Get("k")
	if err != nil {
		t.Fatalf("corrupting Get returned error %v", err)
	}
	if len(got) >= len(full) {
		t.Fatalf("corrupting Get returned %d bytes, want truncation below %d", len(got), len(full))
	}
	got, err = st.Get("k")
	if err != nil || !bytes.Equal(got, full) {
		t.Fatalf("second Get = %q, %v, want full blob", got, err)
	}
}

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	fs := NewFault(NewMem(), FaultConfig{FailFirstGets: 2, FailFirstPuts: 2})
	a := NewAsyncRetry(fs, 1, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	defer a.Close()
	if _, err := a.PutAsync("k", []byte("v")).Wait(); err != nil {
		t.Fatalf("PutAsync with retry budget = %v", err)
	}
	data, err := a.GetAsync("k").Wait()
	if err != nil || string(data) != "v" {
		t.Fatalf("GetAsync with retry budget = %q, %v", data, err)
	}
	if r := a.Retries(); r != 4 {
		t.Fatalf("Retries() = %d, want 4 (2 put + 2 get)", r)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	fs := NewFault(NewMem(), FaultConfig{FailFirstGets: 10})
	fs.Inner().Put("k", []byte("v"))
	var observed int
	a := NewAsyncRetry(fs, 1, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		OnRetry:     func(key Key, attempt int, err error) { observed++ },
	})
	defer a.Close()
	if _, err := a.GetAsync("k").Wait(); !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted Get = %v, want ErrInjected", err)
	}
	if r := a.Retries(); r != 2 {
		t.Fatalf("Retries() = %d, want 2 (3 attempts)", r)
	}
	if observed != 2 {
		t.Fatalf("OnRetry observed %d retries, want 2", observed)
	}
}

func TestRetrySkipsPermanentErrors(t *testing.T) {
	fs := NewFault(NewMem(), FaultConfig{FailFirstGets: 10, Permanent: true, Keys: []Key{"k"}})
	fs.Inner().Put("k", []byte("v"))
	a := NewAsyncRetry(fs, 1, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	defer a.Close()
	if _, err := a.GetAsync("k").Wait(); !IsPermanent(err) {
		t.Fatalf("permanent Get = %v, want permanent", err)
	}
	if r := a.Retries(); r != 0 {
		t.Fatalf("Retries() = %d, want 0 for a permanent error", r)
	}
	// A missing key is permanent too: no retries burned on ErrNotFound.
	if _, err := a.GetAsync("missing").Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if r := a.Retries(); r != 0 {
		t.Fatalf("Retries() = %d after ErrNotFound, want 0", r)
	}
}

func TestRetryZeroPolicySingleAttempt(t *testing.T) {
	fs := NewFault(NewMem(), FaultConfig{FailFirstPuts: 1})
	a := NewAsync(fs, 1)
	defer a.Close()
	if _, err := a.PutAsync("k", []byte("v")).Wait(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put without retry = %v, want ErrInjected", err)
	}
	if r := a.Retries(); r != 0 {
		t.Fatalf("Retries() = %d, want 0", r)
	}
}

// TestLatencyStoreChargesMissesAndMetadata pins the disk-model accounting:
// a Get miss still pays a seek (the head moved before the lookup failed),
// and Delete/Has are charged like any other disk command.
func TestLatencyStoreChargesMissesAndMetadata(t *testing.T) {
	const seek = 3 * time.Millisecond
	st := NewLatency(NewMem(), DiskModel{Seek: seek})
	defer st.Close()

	elapsed := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	for name, f := range map[string]func(){
		"get-miss": func() {
			if _, err := st.Get("missing"); err != ErrNotFound {
				t.Fatalf("Get(missing) = %v", err)
			}
		},
		"delete": func() { st.Delete("missing") },
		"has":    func() { st.Has("missing") },
	} {
		if d := elapsed(f); d < seek {
			t.Fatalf("%s took %v, want at least one seek (%v)", name, d, seek)
		}
	}
}

func TestFaultStoreConcurrent(t *testing.T) {
	st := NewFault(NewMem(), FaultConfig{Seed: 3, GetFailProb: 0.3, PutFailProb: 0.3})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := Key(fmt.Sprintf("k%d-%d", g, i%8))
				st.Put(k, []byte("v"))
				st.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	s := st.Stats()
	if s.InjectedGets == 0 || s.InjectedPuts == 0 {
		t.Fatalf("expected injected faults under concurrency, got %+v", s)
	}
}

package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":     NewMem(),
		"file":    fs,
		"latency": NewLatency(NewMem(), DiskModel{Seek: time.Microsecond, BytesPerSec: 1 << 30}),
	}
}

func TestPutGetDelete(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			if _, err := st.Get("missing"); err != ErrNotFound {
				t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
			}
			if st.Has("k") {
				t.Fatal("Has before Put")
			}
			data := []byte("some payload")
			if err := st.Put("k", data); err != nil {
				t.Fatal(err)
			}
			if !st.Has("k") {
				t.Fatal("Has after Put")
			}
			got, err := st.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q", got)
			}
			// Overwrite.
			if err := st.Put("k", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _ = st.Get("k")
			if string(got) != "v2" {
				t.Fatalf("after overwrite: %q", got)
			}
			if err := st.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if st.Has("k") {
				t.Fatal("Has after Delete")
			}
			if err := st.Delete("k"); err != nil {
				t.Fatal("double delete should be fine:", err)
			}
		})
	}
}

func TestGetReturnsCopy(t *testing.T) {
	st := NewMem()
	orig := []byte{1, 2, 3}
	if err := st.Put("k", orig); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get("k")
	got[0] = 99
	again, _ := st.Get("k")
	if again[0] != 1 {
		t.Fatal("Get does not return a copy")
	}
	// Mutating the original after Put must not affect the store either.
	orig[1] = 77
	again, _ = st.Get("k")
	if again[1] != 2 {
		t.Fatal("Put does not copy")
	}
}

func TestFileStoreKeySanitization(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	weird := Key("obj/3:sub\\x*?")
	if err := fs.Put(weird, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(weird)
	if err != nil || string(got) != "v" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("persist", []byte("disk")); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	fs2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get("persist")
	if err != nil || string(got) != "disk" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestStatsCounting(t *testing.T) {
	st := NewMem()
	st.Put("a", make([]byte, 10))
	st.Put("b", make([]byte, 20))
	st.Get("a")
	st.Delete("b")
	s := st.Stats()
	if s.Puts != 2 || s.Gets != 1 || s.Deletes != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesWritten != 30 || s.BytesRead != 10 {
		t.Fatalf("bytes %+v", s)
	}
}

func TestAsyncPutGet(t *testing.T) {
	a := NewAsync(NewMem(), 2)
	defer a.Close()
	var results []*AsyncResult
	for i := 0; i < 50; i++ {
		results = append(results, a.PutAsync(Key(fmt.Sprintf("k%d", i)), []byte{byte(i)}))
	}
	for _, r := range results {
		if _, err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		d, err := a.GetAsync(Key(fmt.Sprintf("k%d", i))).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != 1 || d[0] != byte(i) {
			t.Fatalf("k%d = %v", i, d)
		}
	}
	if a.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all waits", a.InFlight())
	}
}

func TestAsyncGetMissing(t *testing.T) {
	a := NewAsync(NewMem(), 1)
	defer a.Close()
	if _, err := a.GetAsync("nope").Wait(); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncCloseIdempotent(t *testing.T) {
	a := NewAsync(NewMem(), 1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncOverlap(t *testing.T) {
	// With a slow store and 4 workers, 4 operations should take about one
	// service time, not four.
	slow := NewLatency(NewMem(), DiskModel{Seek: 20 * time.Millisecond})
	// LatencyStore serializes on one spindle; use 4 independent spindles to
	// measure the async fan-out itself.
	a := NewAsync(NewMem(), 4)
	defer a.Close()
	_ = slow
	start := time.Now()
	var rs []*AsyncResult
	for i := 0; i < 4; i++ {
		rs = append(rs, a.PutAsync(Key(fmt.Sprintf("x%d", i)), make([]byte, 1<<20)))
	}
	for _, r := range rs {
		r.Wait()
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("async puts took unreasonably long")
	}
}

func TestDiskModelServiceTime(t *testing.T) {
	m := DiskModel{Seek: 5 * time.Millisecond, BytesPerSec: 1000}
	if d := m.ServiceTime(0); d != 5*time.Millisecond {
		t.Errorf("ServiceTime(0) = %v", d)
	}
	if d := m.ServiceTime(500); d != 5*time.Millisecond+500*time.Millisecond {
		t.Errorf("ServiceTime(500) = %v", d)
	}
	var zero DiskModel
	if d := zero.ServiceTime(1 << 30); d != 0 {
		t.Errorf("zero model = %v", d)
	}
}

func TestLatencyStoreInjectsDelay(t *testing.T) {
	st := NewLatency(NewMem(), DiskModel{Seek: 30 * time.Millisecond})
	start := time.Now()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 25*time.Millisecond {
		t.Errorf("Put took %v, want >= ~30ms", e)
	}
}

func TestRoundtripProperty(t *testing.T) {
	st := NewMem()
	f := func(key string, val []byte) bool {
		k := Key(key)
		if err := st.Put(k, val); err != nil {
			return false
		}
		got, err := st.Get(k)
		return err == nil && bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						k := Key(fmt.Sprintf("g%d-i%d", g, i))
						if err := st.Put(k, []byte{byte(g), byte(i)}); err != nil {
							t.Error(err)
							return
						}
						d, err := st.Get(k)
						if err != nil || d[0] != byte(g) || d[1] != byte(i) {
							t.Errorf("roundtrip %s failed: %v %v", k, d, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

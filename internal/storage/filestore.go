package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mrts/internal/bufpool"
)

// FileStore keeps each object in its own file under a spool directory — the
// "regular files" backend of the paper's storage layer. Keys are sanitized
// into file names; writes go through a temp file + rename so a crashed
// process never leaves a torn object behind.
type FileStore struct {
	dir   string
	mu    sync.RWMutex
	stats Stats
}

// NewFile returns a store rooted at dir, creating it if needed.
func NewFile(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the spool directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(key Key) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, string(key))
	return filepath.Join(s.dir, name+".obj")
}

// Put implements Store.
func (s *FileStore) Put(key Key, data []byte) error {
	p := s.path(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("storage: put %q: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.stats.BytesWritten += uint64(len(data))
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key Key) ([]byte, error) {
	d, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += uint64(len(d))
	s.mu.Unlock()
	return d, nil
}

// Delete implements Store.
func (s *FileStore) Delete(key Key) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete %q: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements Store.
func (s *FileStore) Has(key Key) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Close implements Store. The spool directory is left in place.
func (s *FileStore) Close() error { return nil }

// GetBuf implements BufGetter: the file is read into a pooled buffer sized
// from its stat, so a demand load costs no heap allocation in steady state.
func (s *FileStore) GetBuf(key Key) ([]byte, error) {
	f, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	d := bufpool.Get(int(fi.Size()))
	if _, err := io.ReadFull(f, d); err != nil {
		bufpool.Put(d)
		return nil, fmt.Errorf("storage: get %q: %w", key, err)
	}
	s.mu.Lock()
	s.stats.Gets++
	s.stats.BytesRead += uint64(len(d))
	s.mu.Unlock()
	return d, nil
}

// ReleaseBuf implements BufGetter.
func (s *FileStore) ReleaseBuf(data []byte) { bufpool.Put(data) }

// PutBuf implements BufPutter: the bytes are written out (FileStore retains
// nothing), then the caller's buffer is recycled.
func (s *FileStore) PutBuf(key Key, data []byte) error {
	err := s.Put(key, data)
	if err == nil {
		bufpool.Put(data)
	}
	return err
}

// Stats returns a snapshot of the store counters.
func (s *FileStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Package storage implements the MRTS storage layer: the facility that holds
// serialized mobile objects out of core. The underlying medium is hidden
// behind the Store interface — the paper mentions regular files, block
// devices and databases; this package provides a real file-backed store, an
// in-memory store for tests, and a latency-injecting wrapper that models a
// disk's service time (seek + transfer) so that comp/IO overlap remains
// measurable on fast hardware.
//
// Both blocking and asynchronous load/store operations are provided, matching
// the paper ("blocking and non-blocking operations for loading and storing a
// mobile object"). This functionality is used by the out-of-core layer and is
// not normally called by applications.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
)

// Key identifies a stored object within a Store.
type Key string

// ErrNotFound is returned when loading a key that was never stored.
var ErrNotFound = errors.New("storage: object not found")

// ErrCapacity is returned by capacity-bounded stores when a Put would push
// the resident bytes past the configured cap. It is permanent for retry
// purposes (IsPermanent): retrying the same write cannot make room — the
// caller must place the blob elsewhere (the tier layer spills to the next
// tier down).
var ErrCapacity = errors.New("storage: capacity exhausted")

// Store is a byte-blob store for serialized mobile objects.
//
// Stores may additionally implement BufGetter/BufPutter (bufio.go), the
// pooled ownership-transfer path the swap hot path uses to avoid per-blob
// allocations; the package-level GetBuf/PutBuf helpers fall back to the
// methods below for stores that do not.
type Store interface {
	// Put stores data under key, replacing any previous value. The store
	// must not retain data after Put returns (implementations copy or write
	// out) — callers may recycle the buffer immediately on success.
	Put(key Key, data []byte) error
	// Get returns the data stored under key.
	Get(key Key) ([]byte, error)
	// Delete removes key. Deleting a missing key is not an error.
	Delete(key Key) error
	// Has reports whether key is present.
	Has(key Key) bool
	// Close releases resources.
	Close() error
}

// Stats counts store traffic.
type Stats struct {
	Puts, Gets, Deletes uint64
	BytesWritten        uint64
	BytesRead           uint64
}

// SizedStore is implemented by stores that account their resident payload
// bytes — the contract a capacity-aware tier needs from its backends.
type SizedStore interface {
	Store
	// BytesResident returns the total payload bytes currently stored.
	BytesResident() int64
}

// AsyncResult is the completion handle of an asynchronous operation.
type AsyncResult struct {
	done chan struct{}
	data []byte
	err  error
}

// Done returns a channel closed when the operation completes.
func (r *AsyncResult) Done() <-chan struct{} { return r.done }

// Wait blocks until completion and returns the result of the operation
// (data is non-nil only for loads).
func (r *AsyncResult) Wait() ([]byte, error) {
	<-r.done
	return r.data, r.err
}

// ErrClosed is returned by asynchronous operations submitted after Close.
var ErrClosed = errors.New("storage: async store closed")

// Async wraps a Store with a worker pool performing Put/Get in the
// background, so the control layer can overlap disk I/O with computation —
// the central claim of the paper's evaluation (Tables IV-VI). The internal
// queue is unbounded (memory pressure is the out-of-core layer's job, not
// the I/O queue's) and submission after Close fails cleanly instead of
// racing the shutdown.
type Async struct {
	st    Store
	retry *retrier

	mu       sync.Mutex
	cond     *sync.Cond
	reads    []func() // demand loads jump ahead of eviction writes
	writes   []func()
	closed   bool
	wg       sync.WaitGroup
	inFlight atomic.Int64
}

// NewAsync returns an asynchronous facade over st with the given number of
// I/O workers (<= 0 means 2, a typical per-node disk queue depth) and no
// retry (a single attempt per operation).
func NewAsync(st Store, workers int) *Async {
	return NewAsyncRetry(st, workers, RetryPolicy{})
}

// NewAsyncRetry is NewAsync with a retry policy: transient operation
// failures are retried with exponential backoff + jitter inside the worker,
// so they never surface to the runtime's swap path. Permanent errors
// (IsPermanent) fail immediately.
func NewAsyncRetry(st Store, workers int, policy RetryPolicy) *Async {
	if workers <= 0 {
		workers = 2
	}
	a := &Async{st: st, retry: newRetrier(policy)}
	a.cond = sync.NewCond(&a.mu)
	a.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go a.worker()
	}
	return a
}

func (a *Async) worker() {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		for len(a.reads) == 0 && len(a.writes) == 0 && !a.closed {
			a.cond.Wait()
		}
		var f func()
		switch {
		case len(a.reads) > 0: // reads first: a blocked load stalls a handler
			f = a.reads[0]
			a.reads = a.reads[1:]
		case len(a.writes) > 0:
			f = a.writes[0]
			a.writes = a.writes[1:]
		default:
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
		f()
	}
}

// submit enqueues f unless the store is closed.
func (a *Async) submit(f func(), read bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	if read {
		a.reads = append(a.reads, f)
	} else {
		a.writes = append(a.writes, f)
	}
	a.cond.Signal()
	return true
}

// Store returns the underlying synchronous store.
func (a *Async) Store() Store { return a.st }

// InFlight returns the number of operations submitted but not yet complete.
func (a *Async) InFlight() int { return int(a.inFlight.Load()) }

// Retries returns the cumulative count of retried operations.
func (a *Async) Retries() uint64 { return a.retry.retries.Load() }

// PutAsync schedules a background write.
func (a *Async) PutAsync(key Key, data []byte) *AsyncResult {
	r := &AsyncResult{done: make(chan struct{})}
	a.inFlight.Add(1)
	ok := a.submit(func() {
		r.err = a.retry.do(key, func() error { return a.st.Put(key, data) })
		a.inFlight.Add(-1)
		close(r.done)
	}, false)
	if !ok {
		r.err = ErrClosed
		a.inFlight.Add(-1)
		close(r.done)
	}
	return r
}

// GetAsync schedules a background read.
func (a *Async) GetAsync(key Key) *AsyncResult {
	r := &AsyncResult{done: make(chan struct{})}
	a.inFlight.Add(1)
	ok := a.submit(func() {
		r.err = a.retry.do(key, func() error {
			r.data, r.err = a.st.Get(key)
			return r.err
		})
		a.inFlight.Add(-1)
		close(r.done)
	}, true)
	if !ok {
		r.err = ErrClosed
		a.inFlight.Add(-1)
		close(r.done)
	}
	return r
}

// Close drains queued operations and closes the underlying store. Operations
// submitted after Close complete immediately with ErrClosed.
func (a *Async) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
	a.wg.Wait()
	return a.st.Close()
}

// MemStore is an in-memory Store, used in tests and as the "remote memory as
// out-of-core media" configuration sketched in the paper's conclusion. Built
// with NewMemCap it enforces a byte capacity: a donor node leases a bounded
// slice of its RAM, it does not surrender all of it.
type MemStore struct {
	mu       sync.RWMutex
	data     map[Key][]byte
	stats    Stats
	resident int64
	capacity int64 // <= 0 means unbounded
	rejected uint64
}

// NewMem returns an empty, unbounded in-memory store.
func NewMem() *MemStore { return &MemStore{data: make(map[Key][]byte)} }

// NewMemCap returns an in-memory store that rejects writes (ErrCapacity)
// once resident payload bytes would exceed capacity. capacity <= 0 means
// unbounded.
func NewMemCap(capacity int64) *MemStore {
	return &MemStore{data: make(map[Key][]byte), capacity: capacity}
}

// Put implements Store. On a capacity-bounded store a write that would push
// the resident bytes past the cap fails loudly with ErrCapacity (replacing
// an existing value accounts only the size delta).
func (s *MemStore) Put(key Key, data []byte) error {
	// The stored copy lives in pooled memory owned by the map; it is
	// recycled on overwrite and Delete. Get/GetBuf always copy out, so no
	// reference to a map value ever escapes the store.
	cp := bufpool.Clone(data)
	s.mu.Lock()
	old, hadOld := s.data[key]
	next := s.resident - int64(len(old)) + int64(len(data))
	if s.capacity > 0 && next > s.capacity {
		s.rejected++
		resident := s.resident
		s.mu.Unlock()
		bufpool.Put(cp)
		return fmt.Errorf("put %q (%d bytes, %d/%d resident): %w",
			string(key), len(data), resident, s.capacity, ErrCapacity)
	}
	s.data[key] = cp
	s.resident = next
	s.stats.Puts++
	s.stats.BytesWritten += uint64(len(data))
	s.mu.Unlock()
	if hadOld {
		bufpool.Put(old)
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key Key) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	s.stats.Gets++
	s.stats.BytesRead += uint64(len(d))
	cp := make([]byte, len(d))
	copy(cp, d)
	return cp, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key Key) error {
	s.mu.Lock()
	old, had := s.data[key]
	s.resident -= int64(len(old))
	delete(s.data, key)
	s.stats.Deletes++
	s.mu.Unlock()
	if had {
		bufpool.Put(old)
	}
	return nil
}

// Has implements Store.
func (s *MemStore) Has(key Key) bool {
	s.mu.RLock()
	_, ok := s.data[key]
	s.mu.RUnlock()
	return ok
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Stats returns a snapshot of the store counters.
func (s *MemStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// BytesResident implements SizedStore.
func (s *MemStore) BytesResident() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resident
}

// Capacity returns the configured byte cap (<= 0 means unbounded).
func (s *MemStore) Capacity() int64 { return s.capacity }

// Rejected returns how many writes ErrCapacity refused.
func (s *MemStore) Rejected() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rejected
}

var _ SizedStore = (*MemStore)(nil)

// DiskModel is the service-time model of the latency-injecting wrapper: each
// operation costs Seek plus size/BytesPerSec of transfer time.
type DiskModel struct {
	Seek        time.Duration
	BytesPerSec float64
}

// ServiceTime returns the modeled duration of an operation on size bytes.
func (m DiskModel) ServiceTime(size int) time.Duration {
	d := m.Seek
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(size) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// LatencyStore wraps a Store and injects the DiskModel's service time into
// every operation, serializing access like a single disk spindle.
type LatencyStore struct {
	inner Store
	model DiskModel
	clk   clock.Clock
	mu    sync.Mutex // one spindle: operations do not proceed in parallel
}

// NewLatency wraps inner with the given model on the wall clock.
func NewLatency(inner Store, model DiskModel) *LatencyStore {
	return NewLatencyClock(inner, model, nil)
}

// NewLatencyClock is NewLatency with an injected clock (nil means the wall
// clock). Under a virtual clock the spindle's service time elapses in
// simulated time only.
func NewLatencyClock(inner Store, model DiskModel, clk clock.Clock) *LatencyStore {
	return &LatencyStore{inner: inner, model: model, clk: clock.Or(clk)}
}

func (s *LatencyStore) delay(size int) {
	d := s.model.ServiceTime(size)
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.clk.Sleep(d)
	s.mu.Unlock()
}

// Put implements Store.
func (s *LatencyStore) Put(key Key, data []byte) error {
	s.delay(len(data))
	return s.inner.Put(key, data)
}

// Get implements Store. A miss still costs one seek: the disk finds out a
// block is absent only after positioning the head.
func (s *LatencyStore) Get(key Key) ([]byte, error) {
	d, err := s.inner.Get(key)
	if err != nil {
		s.delay(0)
		return nil, err
	}
	s.delay(len(d))
	return d, nil
}

// Delete implements Store. Directory updates cost one seek.
func (s *LatencyStore) Delete(key Key) error {
	s.delay(0)
	return s.inner.Delete(key)
}

// Has implements Store. Probing the directory costs one seek.
func (s *LatencyStore) Has(key Key) bool {
	s.delay(0)
	return s.inner.Has(key)
}

// Close implements Store.
func (s *LatencyStore) Close() error { return s.inner.Close() }

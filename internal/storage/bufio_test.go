package storage

import (
	"bytes"
	"errors"
	"testing"

	"mrts/internal/bufpool"
)

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// exerciseBufPath runs the ownership-transfer round trip against any store.
func exerciseBufPath(t *testing.T, st Store) {
	t.Helper()
	want := payload(3000, 3)
	blob := bufpool.Clone(want)
	if err := PutBuf(st, "k", blob); err != nil {
		t.Fatalf("PutBuf: %v", err)
	}
	// blob is owned by the store now; read it back through the pooled path.
	got, err := GetBuf(st, "k")
	if err != nil {
		t.Fatalf("GetBuf: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("GetBuf content mismatch (len %d vs %d)", len(got), len(want))
	}
	ReleaseBuf(st, got)
	// The plain path must still see the same value.
	d, err := st.Get("k")
	if err != nil || !bytes.Equal(d, want) {
		t.Fatalf("Get after PutBuf: %v", err)
	}
	if _, err := GetBuf(st, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetBuf miss: %v, want ErrNotFound", err)
	}
	if err := st.Delete("k"); err != nil {
		t.Fatal(err)
	}
}

func TestBufPathMemStore(t *testing.T) { exerciseBufPath(t, NewMem()) }

func TestBufPathFileStore(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exerciseBufPath(t, fs)
}

func TestBufPathMappedFileStore(t *testing.T) {
	fs, err := NewFileStoreMapped(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exerciseBufPath(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufPathLatencyAndFaultDelegate(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := NewFault(NewLatency(fs, DiskModel{}), FaultConfig{})
	exerciseBufPath(t, st)
}

func TestMappedGetBufSurvivesOverwriteAndDelete(t *testing.T) {
	fs, err := NewFileStoreMapped(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	v1 := payload(4096, 1)
	if err := fs.Put("k", v1); err != nil {
		t.Fatal(err)
	}
	m, err := fs.GetBuf("k")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite and delete while the mapping is live: the temp+rename write
	// and the unlink must leave the mapped pages of the old inode intact.
	if err := fs.Put("k", payload(2048, 9)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m, v1) {
		t.Fatalf("live mapping changed under overwrite/delete")
	}
	fs.ReleaseBuf(m)
}

func TestMappedReleaseBufTruncatedView(t *testing.T) {
	fs, err := NewFileStoreMapped(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Put("k", payload(8192, 2)); err != nil {
		t.Fatal(err)
	}
	m, err := fs.GetBuf("k")
	if err != nil {
		t.Fatal(err)
	}
	// Releasing a truncated view (what fault injection hands back) must
	// still unmap the full region — Close would otherwise find a leak.
	fs.ReleaseBuf(m[:len(m)/2])
}

func TestMappedZeroLengthObject(t *testing.T) {
	fs, err := NewFileStoreMapped(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	m, err := fs.GetBuf("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("len=%d", len(m))
	}
	fs.ReleaseBuf(m)
}

func TestFaultStoreCorruptGetBuf(t *testing.T) {
	inner := NewMem()
	if err := inner.Put("k", payload(1000, 5)); err != nil {
		t.Fatal(err)
	}
	st := NewFault(inner, FaultConfig{FailFirstGets: 1, CorruptGets: true})
	d, err := st.GetBuf("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 500 {
		t.Fatalf("corrupt GetBuf len=%d, want 500", len(d))
	}
	st.ReleaseBuf(d)
	d2, err := st.GetBuf("k")
	if err != nil || len(d2) != 1000 {
		t.Fatalf("second GetBuf: len=%d err=%v", len(d2), err)
	}
	st.ReleaseBuf(d2)
}

func TestMemStorePooledValuesRecycledSafely(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)
	st := NewMem()
	want := payload(700, 7)
	if err := st.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite recycles (and poisons) the old internal value; the copy Get
	// handed out must be unaffected.
	if err := st.Put("k", payload(700, 8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get result aliased store-internal memory")
	}
	if err := st.Delete("k"); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreGetBufSteadyStateZeroAlloc(t *testing.T) {
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("k", payload(4096, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d, err := fs.GetBuf("k")
		if err != nil {
			t.Fatal(err)
		}
		fs.ReleaseBuf(d)
	}
	allocs := testing.AllocsPerRun(50, func() {
		d, err := fs.GetBuf("k")
		if err != nil {
			t.Fatal(err)
		}
		fs.ReleaseBuf(d)
	})
	// os.Open allocates a file object; the blob buffer itself must be
	// pool-served. A small constant is fine, growth with blob size is not.
	if allocs > 6 {
		t.Fatalf("GetBuf allocates %.1f/op", allocs)
	}
}

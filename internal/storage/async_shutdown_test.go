package storage

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mrts/internal/clock"
)

// blockingStore stalls every Put until released — the instrument for
// holding an async operation in flight across a Close.
type blockingStore struct {
	*MemStore
	release chan struct{}
	started chan struct{}
}

func newBlocking() *blockingStore {
	return &blockingStore{
		MemStore: NewMem(),
		release:  make(chan struct{}),
		started:  make(chan struct{}, 16),
	}
}

func (b *blockingStore) Put(key Key, data []byte) error {
	b.started <- struct{}{}
	<-b.release
	return b.MemStore.Put(key, data)
}

// TestAsyncCloseDrainsInFlight: Close must wait for an operation a worker
// has already picked up, and the operation must complete successfully.
func TestAsyncCloseDrainsInFlight(t *testing.T) {
	st := newBlocking()
	a := NewAsync(st, 1)
	r := a.PutAsync("k", []byte("v"))
	<-st.started // the worker is inside Put

	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	// Give Close every chance to (incorrectly) return before the release:
	// repeated yields instead of a wall-clock sleep keep the check fast and
	// deterministic under load.
	for i := 0; i < 200; i++ {
		runtime.Gosched()
	}
	select {
	case <-closed:
		t.Fatal("Close returned with a Put still in flight")
	default:
	}
	st.release <- struct{}{}
	if _, err := r.Wait(); err != nil {
		t.Fatalf("in-flight Put at Close: %v", err)
	}
	<-closed
	if !st.MemStore.Has("k") {
		t.Fatal("drained Put did not land")
	}
}

// TestAsyncCloseDrainsQueued: operations still queued (no worker has picked
// them up) when Close is called must run to completion, not be dropped.
func TestAsyncCloseDrainsQueued(t *testing.T) {
	st := newBlocking()
	a := NewAsync(st, 1)
	first := a.PutAsync("k0", []byte("v"))
	<-st.started
	var queued []*AsyncResult
	for i := 1; i < 5; i++ {
		queued = append(queued, a.PutAsync(Key(fmt.Sprintf("k%d", i)), []byte("v")))
	}
	done := make(chan struct{})
	go func() { a.Close(); close(done) }()
	go func() {
		for i := 0; i < 5; i++ {
			st.release <- struct{}{}
			if i < 4 {
				<-st.started
			}
		}
	}()
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, r := range queued {
		if _, err := r.Wait(); err != nil {
			t.Fatalf("queued Put %d dropped at Close: %v", i+1, err)
		}
	}
	<-done
	for i := 0; i < 5; i++ {
		if !st.MemStore.Has(Key(fmt.Sprintf("k%d", i))) {
			t.Fatalf("k%d missing after drain", i)
		}
	}
}

// TestAsyncSubmitAfterClose: every submission after Close completes
// immediately with ErrClosed and leaves no trace in the store.
func TestAsyncSubmitAfterClose(t *testing.T) {
	st := NewMem()
	a := NewAsync(st, 2)
	a.Close()
	if _, err := a.PutAsync("k", []byte("v")).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("PutAsync after Close: want ErrClosed, got %v", err)
	}
	if _, err := a.GetAsync("k").Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetAsync after Close: want ErrClosed, got %v", err)
	}
	if st.Has("k") {
		t.Fatal("post-Close Put reached the store")
	}
	if n := a.InFlight(); n != 0 {
		t.Fatalf("refused submissions left InFlight at %d", n)
	}
}

// TestAsyncBackpressureUnderBacklog: the queue is unbounded by design, so a
// large burst against a slow single worker must neither drop nor deadlock —
// every submission completes and InFlight returns to zero. The disk model
// runs on a virtual clock: the 200 serialized seeks cost simulated time only.
func TestAsyncBackpressureUnderBacklog(t *testing.T) {
	vclk := clock.NewVirtual()
	defer vclk.Stop()
	a := NewAsync(NewLatencyClock(NewMem(), DiskModel{Seek: 50 * time.Microsecond}, vclk), 1)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		r := a.PutAsync(Key(fmt.Sprintf("k%d", i)), make([]byte, 64))
		go func() {
			defer wg.Done()
			if _, err := r.Wait(); err != nil {
				t.Errorf("burst Put: %v", err)
			}
		}()
	}
	wg.Wait()
	if n := a.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after all results delivered", n)
	}
	a.Close()
}

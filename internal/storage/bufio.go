package storage

import "mrts/internal/bufpool"

// This file defines the ownership-transfer I/O path that makes the swap hot
// path allocation-free. The plain Store interface is copy-safe and simple;
// BufGetter/BufPutter are optional upgrades a store may implement so the
// layers above (the swap I/O scheduler, the remote-memory protocol) can move
// one pooled buffer through encode→write and read→decode instead of copying
// at every seam.
//
// Ownership rules (see also the bufpool package comment):
//
//   - GetBuf returns a buffer OWNED BY THE STORE's read path; the caller must
//     hand it back with ReleaseBuf of the same store when done, and must not
//     retain it past that point. For most stores the buffer is pooled memory;
//     for the mmap-backed FileStore it is a mapped view whose release unmaps.
//   - PutBuf transfers ownership of data to the store. On success the store
//     disposes of the buffer (recycling it when it is pooled); on error the
//     caller retains ownership — which is exactly what a retry loop needs.
//   - Store.Put never retains data after returning (implementations copy or
//     write out), so the copy-fallbacks below are safe for every Store.

// BufGetter is the zero-copy/pooled read path. See the ownership rules above.
type BufGetter interface {
	// GetBuf returns the data stored under key in a buffer owned by the
	// store's read path; release it with ReleaseBuf.
	GetBuf(key Key) ([]byte, error)
	// ReleaseBuf returns a buffer obtained from GetBuf. Passing a slice of
	// the original buffer is allowed (fault injection truncates); passing
	// any other buffer is not.
	ReleaseBuf(data []byte)
}

// BufPutter is the ownership-transfer write path. See the rules above.
type BufPutter interface {
	// PutBuf stores data under key, taking ownership of the buffer on
	// success (the store disposes of it). On error the caller keeps
	// ownership, so the operation can be retried with the same buffer.
	PutBuf(key Key, data []byte) error
}

// GetBuf reads key through the store's pooled path when it has one, falling
// back to a plain Get. Either way the caller owns the result only until the
// matching ReleaseBuf(st, ...) call.
func GetBuf(st Store, key Key) ([]byte, error) {
	if bg, ok := st.(BufGetter); ok {
		return bg.GetBuf(key)
	}
	return st.Get(key)
}

// ReleaseBuf returns a buffer obtained from GetBuf(st, ...). For stores
// without a pooled path the (caller-owned) Get result is recycled into the
// arena, which is safe because Get always returns a fresh buffer.
func ReleaseBuf(st Store, data []byte) {
	if bg, ok := st.(BufGetter); ok {
		bg.ReleaseBuf(data)
		return
	}
	bufpool.Put(data)
}

// PutBuf writes data through the store's ownership-transfer path when it has
// one; otherwise it performs a plain Put and recycles the buffer on success
// (safe because Store.Put never retains data). On error the caller keeps the
// buffer, matching BufPutter semantics.
func PutBuf(st Store, key Key, data []byte) error {
	if bp, ok := st.(BufPutter); ok {
		return bp.PutBuf(key, data)
	}
	err := st.Put(key, data)
	if err == nil {
		bufpool.Put(data)
	}
	return err
}

// StatsReader is implemented by stores that count their traffic; the cluster
// reads it off the bottom-most (disk-level) store to report bytes moved.
type StatsReader interface {
	Stats() Stats
}

// --- MemStore ---

// GetBuf implements BufGetter: the returned buffer is a pooled copy.
func (s *MemStore) GetBuf(key Key) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[key]
	if !ok {
		return nil, ErrNotFound
	}
	s.stats.Gets++
	s.stats.BytesRead += uint64(len(d))
	return bufpool.Clone(d), nil
}

// ReleaseBuf implements BufGetter.
func (s *MemStore) ReleaseBuf(data []byte) { bufpool.Put(data) }

// PutBuf implements BufPutter. MemStore retains what it stores, so this is
// the documented copy fallback: the value is copied into store-owned pooled
// memory and the caller's buffer is recycled on success.
func (s *MemStore) PutBuf(key Key, data []byte) error {
	err := s.Put(key, data)
	if err == nil {
		bufpool.Put(data)
	}
	return err
}

// --- LatencyStore ---
// The wrapper forwards the pooled path inward so that wrapping a FileStore
// in a disk model does not silently reintroduce per-load allocations; the
// modeled service time is charged exactly as in Put/Get.

// GetBuf implements BufGetter.
func (s *LatencyStore) GetBuf(key Key) ([]byte, error) {
	d, err := GetBuf(s.inner, key)
	if err != nil {
		s.delay(0)
		return nil, err
	}
	s.delay(len(d))
	return d, nil
}

// ReleaseBuf implements BufGetter.
func (s *LatencyStore) ReleaseBuf(data []byte) { ReleaseBuf(s.inner, data) }

// PutBuf implements BufPutter.
func (s *LatencyStore) PutBuf(key Key, data []byte) error {
	s.delay(len(data))
	return PutBuf(s.inner, key, data)
}

package storage

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/clock"
)

// RetryPolicy configures transparent retry of failed store operations inside
// the Async facade: transient I/O faults are absorbed with exponential
// backoff and jitter before they ever reach the runtime's swap path.
// Permanent errors (IsPermanent) are never retried.
//
// The zero value disables retry (a single attempt per operation).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per operation, including the
	// first. Values <= 1 mean a single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. Zero means 500µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 50ms.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic (0 is a valid fixed seed).
	Seed int64
	// OnRetry, when non-nil, observes every retry before its backoff sleep.
	// attempt is the 1-based number of the attempt that just failed.
	OnRetry func(key Key, attempt int, err error)
	// Clock times the backoff sleeps. Nil means the wall clock; the
	// simulation harness injects a virtual clock so backoff costs no real
	// time.
	Clock clock.Clock
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return p
}

// retrier executes operations under a RetryPolicy and counts retries.
type retrier struct {
	p       RetryPolicy
	clk     clock.Clock
	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Uint64
}

func newRetrier(p RetryPolicy) *retrier {
	p = p.withDefaults()
	return &retrier{p: p, clk: clock.Or(p.Clock), rng: rand.New(rand.NewSource(p.Seed))}
}

// jitter returns a duration in [d/2, d] ("equal jitter"), decorrelating
// concurrent waiters without losing the exponential envelope.
func (r *retrier) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	f := 0.5 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Retrier executes storage operations under a RetryPolicy, absorbing
// transient failures with exponential backoff and jitter. It is the policy
// engine shared by the Async facade and the swap I/O scheduler, exported so
// both layers retry with identical semantics (same backoff envelope, same
// IsPermanent cutoff, same OnRetry observation).
type Retrier struct {
	r *retrier
}

// NewRetrier returns a Retrier for the given policy.
func NewRetrier(p RetryPolicy) *Retrier {
	return &Retrier{r: newRetrier(p)}
}

// Do runs op, retrying transient failures within the attempt budget. key is
// reported to the policy's OnRetry observer.
func (t *Retrier) Do(key Key, op func() error) error { return t.r.do(key, op) }

// DoGetBuf runs GetBuf(st, key) under the retry policy. It exists alongside
// Do because the swap read path calls it per load: taking the operation as a
// closure would heap-allocate the closure on every call, and the hot path
// must stay allocation-free in the steady state.
func (t *Retrier) DoGetBuf(st Store, key Key) ([]byte, error) {
	delay := t.r.p.BaseDelay
	for attempt := 1; ; attempt++ {
		blob, err := GetBuf(st, key)
		if err == nil || !t.r.shouldRetry(key, attempt, err, &delay) {
			return blob, err
		}
	}
}

// DoPutBuf runs PutBuf(st, key, blob) under the retry policy, closure-free
// like DoGetBuf. PutBuf's ownership contract holds across retries: the
// buffer transfers only on success, so a failed attempt may safely retry
// with the same bytes.
func (t *Retrier) DoPutBuf(st Store, key Key, blob []byte) error {
	delay := t.r.p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := PutBuf(st, key, blob)
		if err == nil || !t.r.shouldRetry(key, attempt, err, &delay) {
			return err
		}
	}
}

// Retries returns the cumulative count of absorbed (retried) failures.
func (t *Retrier) Retries() uint64 { return t.r.retries.Load() }

// do runs op, retrying transient failures within the attempt budget.
func (r *retrier) do(key Key, op func() error) error {
	delay := r.p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !r.shouldRetry(key, attempt, err, &delay) {
			return err
		}
	}
}

// shouldRetry decides whether another attempt is allowed after err on the
// given 1-based attempt; when it is, it performs the retry bookkeeping and
// backoff sleep and advances *delay along the exponential envelope.
func (r *retrier) shouldRetry(key Key, attempt int, err error, delay *time.Duration) bool {
	if attempt >= r.p.MaxAttempts || IsPermanent(err) {
		return false
	}
	r.retries.Add(1)
	if r.p.OnRetry != nil {
		r.p.OnRetry(key, attempt, err)
	}
	r.clk.Sleep(r.jitter(*delay))
	*delay *= 2
	if *delay > r.p.MaxDelay {
		*delay = r.p.MaxDelay
	}
	return true
}

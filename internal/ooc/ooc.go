// Package ooc implements the MRTS out-of-core layer: it tracks every mobile
// object's residency (in-core vs on disk), decides when and which objects to
// swap, and exposes the control knobs the paper describes — five eviction
// policies (LRU, LFU, MRU, MU, LU), a hard and a soft swapping threshold,
// per-object priorities, and lock/unlock.
//
// Memory pressure is modeled by explicit byte accounting of serialized object
// sizes against a per-node budget: the Go runtime's GC makes physical RAM
// exhaustion both unportable and unsafe to provoke, while byte accounting
// triggers the identical decision logic at the same thresholds (hard = a
// multiple of the largest stored object, soft = a fraction of total memory).
package ooc

import (
	"fmt"
	"sort"
	"sync"
)

// ObjectID identifies a mobile object to the residency manager.
type ObjectID uint64

// Policy selects the eviction (swapping) scheme.
type Policy string

// The five swapping schemes implemented by the paper's storage layer.
const (
	// LRU evicts the least recently used object ("enjoys highest
	// performance most of the time").
	LRU Policy = "lru"
	// LFU evicts the least frequently used object (accesses per unit of
	// residence time); "for some applications (e.g., PCDM) the LFU can be
	// up to 7% faster".
	LFU Policy = "lfu"
	// MRU evicts the most recently used object.
	MRU Policy = "mru"
	// MU evicts the object with the most total accesses.
	MU Policy = "mu"
	// LU evicts the object with the fewest total accesses.
	LU Policy = "lu"
)

// Policies lists all supported eviction policies.
func Policies() []Policy { return []Policy{LRU, LFU, MRU, MU, LU} }

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool {
	switch p {
	case LRU, LFU, MRU, MU, LU:
		return true
	}
	return false
}

// Config configures a Manager.
type Config struct {
	// Budget is the node's memory budget in bytes for mobile objects.
	Budget int64
	// Policy is the eviction scheme. Empty means LRU.
	Policy Policy
	// HardMultiple defines the hard swapping threshold as a multiple of
	// the size of the largest object currently stored on disk; checked on
	// allocation. Zero means the paper's default of 2.
	HardMultiple float64
	// SoftFraction defines the soft swapping threshold as a fraction of
	// the total budget: when free memory drops below it the layer is
	// "advised" to start swapping. Zero means the paper's default of 1/2.
	SoftFraction float64
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = LRU
	}
	if c.HardMultiple == 0 {
		c.HardMultiple = 2
	}
	if c.SoftFraction == 0 {
		c.SoftFraction = 0.5
	}
	return c
}

type entry struct {
	id         ObjectID
	size       int64
	inCore     bool
	locked     int // lock count; > 0 pins the object in core
	priority   int
	lastAccess uint64 // logical clock of last access
	firstSeen  uint64 // logical clock at registration / load
	accesses   uint64
	queueLen   int // pending messages (control layer input)
}

// Stats summarizes manager activity.
type Stats struct {
	Evictions   uint64
	Loads       uint64
	InCore      int
	OutOfCore   int
	MemUsed     int64
	MemBudget   int64
	PeakMemUsed int64

	// Swap-path failure accounting, reported into the manager by the
	// runtime (the ooc layer decides residency; the control layer observes
	// the I/O outcomes).
	LoadFailures  uint64 // loads that failed after retry (incl. decode)
	StoreFailures uint64 // eviction writes that failed after retry
	Retries       uint64 // transient I/O faults absorbed by the retry layer
	ObjectsLost   uint64 // objects made unreachable by a failed load
}

// Manager is the residency manager for one node. It is safe for concurrent
// use.
type Manager struct {
	mu   sync.Mutex
	cfg  Config
	used int64
	peak int64

	clock         uint64
	entries       map[ObjectID]*entry
	largestStored int64 // largest object ever written to disk
	evictions     uint64
	loads         uint64

	loadFailures  uint64
	storeFailures uint64
	retries       uint64
	objectsLost   uint64
}

// NewManager returns a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:     cfg.withDefaults(),
		entries: make(map[ObjectID]*entry),
	}
}

// Policy returns the active eviction policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// Budget returns the memory budget in bytes.
func (m *Manager) Budget() int64 { return m.cfg.Budget }

// MemUsed returns the bytes currently accounted in-core.
func (m *Manager) MemUsed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Register adds an object of the given size, in-core. It is an error to
// register the same ID twice.
func (m *Manager) Register(id ObjectID, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; ok {
		return fmt.Errorf("ooc: object %d already registered", id)
	}
	m.clock++
	m.entries[id] = &entry{
		id: id, size: size, inCore: true,
		lastAccess: m.clock, firstSeen: m.clock,
	}
	m.addUsed(size)
	return nil
}

// Unregister removes an object entirely (e.g. after migration to another
// node).
func (m *Manager) Unregister(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return
	}
	if e.inCore {
		m.used -= e.size
	}
	delete(m.entries, id)
}

// Touch records an access to id (message delivered / handler executed).
func (m *Manager) Touch(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		m.clock++
		e.lastAccess = m.clock
		e.accesses++
	}
}

// SetSize updates the accounted size of id (objects grow during refinement).
func (m *Manager) SetSize(id ObjectID, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return
	}
	if e.inCore {
		m.used += size - e.size
		if m.used > m.peak {
			m.peak = m.used
		}
	}
	e.size = size
}

// Size returns the accounted size of id (0 if unknown).
func (m *Manager) Size(id ObjectID) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		return e.size
	}
	return 0
}

// Lock pins id in core: a locked object is never selected for eviction.
// Locks nest; each Lock needs a matching Unlock.
func (m *Manager) Lock(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		e.locked++
	}
}

// Unlock releases one pin.
func (m *Manager) Unlock(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok && e.locked > 0 {
		e.locked--
	}
}

// Locked reports whether id is pinned.
func (m *Manager) Locked(id ObjectID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	return ok && e.locked > 0
}

// SetPriority sets the swapping priority hint: higher-priority objects are
// kept in core longer. The default is 0.
func (m *Manager) SetPriority(id ObjectID, pri int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		e.priority = pri
	}
}

// SetQueueLen informs the layer how many messages are pending for id — the
// control layer input that biases swapping decisions (objects with queued
// work are kept, idle ones go first).
func (m *Manager) SetQueueLen(id ObjectID, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[id]; ok {
		e.queueLen = n
	}
}

// InCore reports whether id is resident.
func (m *Manager) InCore(id ObjectID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	return ok && e.inCore
}

// MarkOut transitions id out of core (after its bytes hit the store).
func (m *Manager) MarkOut(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok || !e.inCore {
		return
	}
	e.inCore = false
	m.used -= e.size
	m.evictions++
	if e.size > m.largestStored {
		m.largestStored = e.size
	}
}

// MarkIn transitions id back in core (after a load completes).
func (m *Manager) MarkIn(id ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok || e.inCore {
		return
	}
	e.inCore = true
	m.clock++
	e.lastAccess = m.clock
	e.firstSeen = m.clock
	m.loads++
	m.addUsed(e.size)
}

func (m *Manager) addUsed(n int64) {
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
}

// HardThreshold returns the current hard swapping threshold in bytes:
// HardMultiple × the largest object stored so far. Allocations that would
// leave less than this amount free force eviction.
func (m *Manager) HardThreshold() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hardThresholdLocked()
}

func (m *Manager) hardThresholdLocked() int64 {
	return int64(m.cfg.HardMultiple * float64(m.largestStored))
}

// SoftBreached reports whether free memory has dropped below the soft
// threshold (SoftFraction × Budget): the advisory signal to start swapping.
func (m *Manager) SoftBreached() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	free := m.cfg.Budget - m.used
	return float64(free) < m.cfg.SoftFraction*float64(m.cfg.Budget)
}

// NeedForSoft returns how many bytes must be evicted to bring free memory
// back above the soft threshold. Zero means the threshold is not breached.
func (m *Manager) NeedForSoft() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	target := int64((1 - m.cfg.SoftFraction) * float64(m.cfg.Budget))
	over := m.used - target
	if over < 0 {
		return 0
	}
	return over
}

// NeedForAlloc returns how many bytes must be evicted before extra bytes can
// be allocated without violating the budget and the hard threshold. Zero
// means the allocation fits.
func (m *Manager) NeedForAlloc(extra int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	limit := m.cfg.Budget - m.hardThresholdLocked()
	if limit < 0 {
		limit = 0
	}
	over := m.used + extra - limit
	if over < 0 {
		return 0
	}
	return over
}

// PickVictims selects unlocked in-core objects to evict, in policy order,
// until their sizes sum to at least need. Objects with pending messages and
// higher priorities are avoided when possible: candidates are ranked by
// priority, then queue length, then the policy key.
func (m *Manager) PickVictims(need int64) []ObjectID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var cands []*entry
	for _, e := range m.entries {
		if e.inCore && e.locked == 0 {
			cands = append(cands, e)
		}
	}
	clock := m.clock
	key := func(e *entry) float64 {
		switch m.cfg.Policy {
		case LRU:
			return float64(e.lastAccess)
		case MRU:
			return -float64(e.lastAccess)
		case LFU:
			age := clock - e.firstSeen + 1
			return float64(e.accesses) / float64(age)
		case MU:
			return -float64(e.accesses)
		case LU:
			return float64(e.accesses)
		default:
			return float64(e.lastAccess)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.priority != b.priority {
			return a.priority < b.priority
		}
		if a.queueLen != b.queueLen {
			return a.queueLen < b.queueLen
		}
		ka, kb := key(a), key(b)
		if ka != kb {
			return ka < kb
		}
		return a.id < b.id
	})
	var out []ObjectID
	var freed int64
	for _, e := range cands {
		if freed >= need {
			break
		}
		out = append(out, e.id)
		freed += e.size
	}
	return out
}

// Candidate is one prefetch suggestion: the object plus a class hint for the
// I/O scheduler. Urgent candidates already have messages queued — their load
// is on the critical path and should go in at demand class; the rest are
// speculation (priority hints) and belong in the prefetch class.
type Candidate struct {
	ID     ObjectID
	Urgent bool
}

// SuggestPrefetchRanked returns up to limit out-of-core objects worth
// loading ahead of need, ranked by pending message count then priority — the
// cache population policy of the out-of-core layer — each tagged with its
// urgency class hint.
func (m *Manager) SuggestPrefetchRanked(limit int) []Candidate {
	m.mu.Lock()
	defer m.mu.Unlock()
	var cands []*entry
	for _, e := range m.entries {
		if !e.inCore && (e.queueLen > 0 || e.priority > 0) {
			cands = append(cands, e)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.queueLen != b.queueLen {
			return a.queueLen > b.queueLen
		}
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		return a.id < b.id
	})
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]Candidate, len(cands))
	for i, e := range cands {
		out[i] = Candidate{ID: e.id, Urgent: e.queueLen > 0}
	}
	return out
}

// SuggestPrefetch returns just the object IDs of SuggestPrefetchRanked.
func (m *Manager) SuggestPrefetch(limit int) []ObjectID {
	ranked := m.SuggestPrefetchRanked(limit)
	out := make([]ObjectID, len(ranked))
	for i, c := range ranked {
		out[i] = c.ID
	}
	return out
}

// SetStoredSize records the serialized size of an object whose bytes just
// hit (or are about to hit) the store: the size its reload will re-admit,
// and the input to the largest-stored-object tracking behind the hard
// threshold. Unlike SetSize it is meaningful for out-of-core entries; if the
// object raced back in core (a write rollback), the in-core accounting is
// adjusted like SetSize would.
func (m *Manager) SetStoredSize(id ObjectID, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return
	}
	if e.inCore {
		m.used += size - e.size
		if m.used > m.peak {
			m.peak = m.used
		}
	}
	e.size = size
	if size > m.largestStored {
		m.largestStored = size
	}
}

// NoteLoadFailure records a load (or decode) that failed after retry.
func (m *Manager) NoteLoadFailure() {
	m.mu.Lock()
	m.loadFailures++
	m.mu.Unlock()
}

// NoteStoreFailure records an eviction write that failed after retry.
func (m *Manager) NoteStoreFailure() {
	m.mu.Lock()
	m.storeFailures++
	m.mu.Unlock()
}

// NoteObjectLost records an object made unreachable by a failed load.
func (m *Manager) NoteObjectLost() {
	m.mu.Lock()
	m.objectsLost++
	m.mu.Unlock()
}

// NoteRetries records n transient I/O faults absorbed by the retry layer.
func (m *Manager) NoteRetries(n uint64) {
	m.mu.Lock()
	m.retries += n
	m.mu.Unlock()
}

// Snapshot returns current statistics.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Evictions:     m.evictions,
		Loads:         m.loads,
		MemUsed:       m.used,
		MemBudget:     m.cfg.Budget,
		PeakMemUsed:   m.peak,
		LoadFailures:  m.loadFailures,
		StoreFailures: m.storeFailures,
		Retries:       m.retries,
		ObjectsLost:   m.objectsLost,
	}
	for _, e := range m.entries {
		if e.inCore {
			s.InCore++
		} else {
			s.OutOfCore++
		}
	}
	return s
}

// String implements fmt.Stringer for the report printers.
func (s Stats) String() string {
	return fmt.Sprintf(
		"evictions %d loads %d in-core %d out-of-core %d mem %d/%d (peak %d) retries %d load-fail %d store-fail %d lost %d",
		s.Evictions, s.Loads, s.InCore, s.OutOfCore, s.MemUsed, s.MemBudget, s.PeakMemUsed,
		s.Retries, s.LoadFailures, s.StoreFailures, s.ObjectsLost)
}

package ooc

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSuggestPrefetchRacesEviction hammers SuggestPrefetch while other
// goroutines flip residency, queue pressure, and registration underneath it —
// the shape of a prefetch scan running concurrently with the eviction path.
// Run under -race; the assertions check the suggestions stay well-formed
// (no duplicates, respecting limit) no matter how the timeline interleaves.
func TestSuggestPrefetchRacesEviction(t *testing.T) {
	const objects = 64
	m := newMgr(LRU, 1<<20)
	for i := 1; i <= objects; i++ {
		if err := m.Register(ObjectID(i), 128); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Evictor/loader: objects continuously leave and re-enter core.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := ObjectID(1 + rng.Intn(objects))
			if rng.Intn(2) == 0 {
				m.MarkOut(id)
			} else {
				m.MarkIn(id)
			}
		}
	}()

	// Message pressure: queue lengths and touches churn the ranking keys
	// SuggestPrefetch sorts by.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := ObjectID(1 + rng.Intn(objects))
			m.SetQueueLen(id, rng.Intn(5))
			m.Touch(id)
			m.SetPriority(id, rng.Intn(3))
		}
	}()

	// Lifecycle churn: a band of extra objects appears and disappears, so the
	// scan races registration too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ObjectID(objects + 1 + i%16)
			if m.Register(id, 64) == nil {
				m.MarkOut(id)
				m.SetQueueLen(id, 1)
			}
			m.Unregister(id)
		}
	}()

	const limit = 8
	for i := 0; i < 3000; i++ {
		got := m.SuggestPrefetch(limit)
		if len(got) > limit {
			t.Fatalf("SuggestPrefetch returned %d ids, limit %d", len(got), limit)
		}
		seen := make(map[ObjectID]bool, len(got))
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate suggestion %d in %v", id, got)
			}
			seen[id] = true
		}
		if i%500 == 0 {
			m.PickVictims(512) // the eviction scan itself joins the race
		}
	}
	close(stop)
	wg.Wait()

	// After the dust settles the ranking contract must hold: out-of-core
	// objects with queued messages outrank merely prioritized ones.
	for i := 1; i <= objects; i++ {
		m.MarkIn(ObjectID(i))
		m.SetQueueLen(ObjectID(i), 0)
		m.SetPriority(ObjectID(i), 0)
	}
	m.MarkOut(1)
	m.SetQueueLen(1, 3)
	m.MarkOut(2)
	m.SetPriority(2, 1)
	got := m.SuggestPrefetch(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SuggestPrefetch ranking = %v, want [1 2]", got)
	}
}

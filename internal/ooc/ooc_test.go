package ooc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newMgr(policy Policy, budget int64) *Manager {
	return NewManager(Config{Budget: budget, Policy: policy})
}

func TestPoliciesValid(t *testing.T) {
	for _, p := range Policies() {
		if !p.Valid() {
			t.Errorf("policy %q should be valid", p)
		}
	}
	if Policy("bogus").Valid() {
		t.Error("bogus policy should be invalid")
	}
}

func TestRegisterAccounting(t *testing.T) {
	m := newMgr(LRU, 1000)
	if err := m.Register(1, 300); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(1, 300); err == nil {
		t.Fatal("double register should fail")
	}
	if err := m.Register(2, 200); err != nil {
		t.Fatal(err)
	}
	if m.MemUsed() != 500 {
		t.Fatalf("MemUsed = %d", m.MemUsed())
	}
	m.Unregister(1)
	if m.MemUsed() != 200 {
		t.Fatalf("after unregister: %d", m.MemUsed())
	}
	m.Unregister(99) // no-op
}

func TestSetSizeGrowth(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.SetSize(1, 400)
	if m.MemUsed() != 400 {
		t.Fatalf("MemUsed = %d", m.MemUsed())
	}
	if m.Size(1) != 400 {
		t.Fatalf("Size = %d", m.Size(1))
	}
	// Size of out-of-core object updates without changing used memory.
	m.MarkOut(1)
	if m.MemUsed() != 0 {
		t.Fatalf("after MarkOut: %d", m.MemUsed())
	}
	m.SetSize(1, 500)
	if m.MemUsed() != 0 {
		t.Fatalf("SetSize on OOC object changed used: %d", m.MemUsed())
	}
	m.MarkIn(1)
	if m.MemUsed() != 500 {
		t.Fatalf("after MarkIn: %d", m.MemUsed())
	}
}

func TestMarkInOutIdempotent(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.MarkOut(1)
	m.MarkOut(1)
	if m.MemUsed() != 0 {
		t.Fatalf("double MarkOut: %d", m.MemUsed())
	}
	m.MarkIn(1)
	m.MarkIn(1)
	if m.MemUsed() != 100 {
		t.Fatalf("double MarkIn: %d", m.MemUsed())
	}
	s := m.Snapshot()
	if s.Evictions != 1 || s.Loads != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUVictimOrder(t *testing.T) {
	m := newMgr(LRU, 1000)
	for id := ObjectID(1); id <= 3; id++ {
		m.Register(id, 100)
	}
	m.Touch(1) // order of recency now: 2 (oldest), 3, 1
	m.Touch(3)
	m.Touch(1)
	v := m.PickVictims(100)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("LRU victims = %v, want [2]", v)
	}
	v = m.PickVictims(250)
	if len(v) != 3 || v[0] != 2 || v[1] != 3 || v[2] != 1 {
		t.Fatalf("LRU victims(250) = %v, want [2 3 1]", v)
	}
}

func TestMRUVictimOrder(t *testing.T) {
	m := newMgr(MRU, 1000)
	for id := ObjectID(1); id <= 3; id++ {
		m.Register(id, 100)
	}
	m.Touch(2) // 2 is most recent
	v := m.PickVictims(100)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("MRU victims = %v, want [2]", v)
	}
}

func TestLUAndMUVictims(t *testing.T) {
	m := newMgr(LU, 1000)
	for id := ObjectID(1); id <= 3; id++ {
		m.Register(id, 100)
	}
	m.Touch(1)
	m.Touch(1)
	m.Touch(2)
	// LU evicts fewest-accesses first: 3 (0), then 2 (1), then 1 (2).
	v := m.PickVictims(300)
	if len(v) != 3 || v[0] != 3 || v[1] != 2 || v[2] != 1 {
		t.Fatalf("LU victims = %v", v)
	}
	mu := newMgr(MU, 1000)
	for id := ObjectID(1); id <= 3; id++ {
		mu.Register(id, 100)
	}
	mu.Touch(1)
	mu.Touch(1)
	mu.Touch(2)
	v = mu.PickVictims(100)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("MU victims = %v, want [1]", v)
	}
}

func TestLFUFrequency(t *testing.T) {
	m := newMgr(LFU, 1000)
	m.Register(1, 100)
	// Many accesses to 1 early.
	for i := 0; i < 10; i++ {
		m.Touch(1)
	}
	m.Register(2, 100)
	m.Touch(2)
	// Object 1: 10 accesses over a long age; object 2: 1 access, young.
	// Advance the clock so 1's frequency stays high relative to 2.
	v := m.PickVictims(100)
	if len(v) != 1 {
		t.Fatalf("victims = %v", v)
	}
	// 2's frequency = 1/age2; 1's = 10/age1. age1 ≈ 13, age2 ≈ 2.
	// freq1 ≈ 0.77 > freq2 = 0.5, so 2 is evicted.
	if v[0] != 2 {
		t.Fatalf("LFU victim = %v, want 2", v)
	}
}

func TestLockPreventsEviction(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.Register(2, 100)
	m.Lock(1)
	if !m.Locked(1) {
		t.Fatal("Locked(1) should be true")
	}
	v := m.PickVictims(200)
	for _, id := range v {
		if id == 1 {
			t.Fatal("locked object selected for eviction")
		}
	}
	m.Unlock(1)
	if m.Locked(1) {
		t.Fatal("Locked after Unlock")
	}
	v = m.PickVictims(200)
	if len(v) != 2 {
		t.Fatalf("victims after unlock = %v", v)
	}
}

func TestPriorityOrdering(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.Register(2, 100)
	m.Register(3, 100)
	m.SetPriority(2, 10) // keep 2 longest
	m.SetPriority(3, 5)
	v := m.PickVictims(300)
	if len(v) != 3 || v[0] != 1 || v[1] != 3 || v[2] != 2 {
		t.Fatalf("victims = %v, want [1 3 2]", v)
	}
}

func TestQueueLenBias(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.Register(2, 100)
	m.SetQueueLen(1, 5) // 1 has pending work; 2 goes first
	v := m.PickVictims(100)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want [2]", v)
	}
}

func TestHardThreshold(t *testing.T) {
	m := NewManager(Config{Budget: 1000, HardMultiple: 2})
	if m.HardThreshold() != 0 {
		t.Fatal("no stored objects: threshold 0")
	}
	m.Register(1, 300)
	m.MarkOut(1) // largest stored = 300 → hard threshold 600
	if got := m.HardThreshold(); got != 600 {
		t.Fatalf("HardThreshold = %d, want 600", got)
	}
	// Allocation limit = budget - threshold = 400.
	if need := m.NeedForAlloc(400); need != 0 {
		t.Fatalf("NeedForAlloc(400) = %d, want 0", need)
	}
	if need := m.NeedForAlloc(500); need != 100 {
		t.Fatalf("NeedForAlloc(500) = %d, want 100", need)
	}
}

func TestSoftThreshold(t *testing.T) {
	m := NewManager(Config{Budget: 1000, SoftFraction: 0.5})
	if m.SoftBreached() {
		t.Fatal("empty manager should not breach soft threshold")
	}
	m.Register(1, 400)
	if m.SoftBreached() {
		t.Fatal("400/1000 used: free 600 >= 500")
	}
	m.Register(2, 200)
	if !m.SoftBreached() {
		t.Fatal("600/1000 used: free 400 < 500 should breach")
	}
}

func TestSuggestPrefetch(t *testing.T) {
	m := newMgr(LRU, 1000)
	for id := ObjectID(1); id <= 4; id++ {
		m.Register(id, 100)
		m.MarkOut(id)
	}
	m.SetQueueLen(2, 3)
	m.SetQueueLen(3, 7)
	m.SetPriority(4, 1)
	got := m.SuggestPrefetch(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("SuggestPrefetch = %v, want [3 2]", got)
	}
	all := m.SuggestPrefetch(0)
	if len(all) != 3 {
		t.Fatalf("SuggestPrefetch(0) = %v, want 3 entries", all)
	}
	// In-core objects are never suggested.
	m.MarkIn(3)
	got = m.SuggestPrefetch(10)
	for _, id := range got {
		if id == 3 {
			t.Fatal("in-core object suggested for prefetch")
		}
	}
}

func TestSnapshot(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.Register(2, 200)
	m.MarkOut(2)
	s := m.Snapshot()
	if s.InCore != 1 || s.OutOfCore != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.MemUsed != 100 || s.MemBudget != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.PeakMemUsed != 300 {
		t.Fatalf("peak = %d, want 300", s.PeakMemUsed)
	}
}

func TestDefaults(t *testing.T) {
	m := NewManager(Config{Budget: 100})
	if m.Policy() != LRU {
		t.Errorf("default policy = %q", m.Policy())
	}
	if m.Budget() != 100 {
		t.Errorf("budget = %d", m.Budget())
	}
}

func TestVictimsDeterministicTieBreak(t *testing.T) {
	// Objects registered in one batch tie on everything except id.
	m := newMgr(LU, 1000)
	for id := ObjectID(5); id >= 1; id-- {
		m.Register(id, 100)
	}
	v := m.PickVictims(500)
	for i := 1; i < len(v); i++ {
		if v[i-1] >= v[i] {
			t.Fatalf("tie-break not by id: %v", v)
		}
	}
}

func TestConcurrentSafety(t *testing.T) {
	m := newMgr(LRU, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := ObjectID(g * 1000)
			for i := 0; i < 200; i++ {
				id := base + ObjectID(i)
				m.Register(id, 10)
				m.Touch(id)
				m.SetPriority(id, i%3)
				m.SetQueueLen(id, i%5)
				if i%2 == 0 {
					m.MarkOut(id)
					m.MarkIn(id)
				}
				m.PickVictims(50)
				m.SuggestPrefetch(4)
			}
		}(g)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.InCore != 1600 {
		t.Fatalf("in-core = %d, want 1600", s.InCore)
	}
}

// TestPropertyAccountingInvariant drives the manager with random operation
// sequences and checks that MemUsed always equals the sum of in-core entry
// sizes (the core accounting invariant the thresholds depend on).
func TestPropertyAccountingInvariant(t *testing.T) {
	type model struct {
		size   int64
		inCore bool
	}
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager(Config{Budget: 1 << 20})
		ref := make(map[ObjectID]*model)
		nextID := ObjectID(1)
		ops := int(opsRaw)%200 + 20
		for i := 0; i < ops; i++ {
			switch rng.Intn(6) {
			case 0: // register
				sz := int64(rng.Intn(1000) + 1)
				if err := m.Register(nextID, sz); err != nil {
					return false
				}
				ref[nextID] = &model{size: sz, inCore: true}
				nextID++
			case 1: // unregister random
				for id := range ref {
					m.Unregister(id)
					delete(ref, id)
					break
				}
			case 2: // mark out
				for id, mo := range ref {
					if mo.inCore {
						m.MarkOut(id)
						mo.inCore = false
						break
					}
				}
			case 3: // mark in
				for id, mo := range ref {
					if !mo.inCore {
						m.MarkIn(id)
						mo.inCore = true
						break
					}
				}
			case 4: // resize
				for id, mo := range ref {
					sz := int64(rng.Intn(2000) + 1)
					m.SetSize(id, sz)
					mo.size = sz
					break
				}
			case 5: // touch + lock churn
				for id := range ref {
					m.Touch(id)
					m.Lock(id)
					m.Unlock(id)
					break
				}
			}
			var want int64
			for _, mo := range ref {
				if mo.inCore {
					want += mo.size
				}
			}
			if got := m.MemUsed(); got != want {
				t.Logf("seed %d op %d: MemUsed=%d want %d", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVictimsAreEvictable checks that PickVictims never proposes a
// locked or out-of-core object, under random state.
func TestPropertyVictimsAreEvictable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := NewManager(Config{Budget: 1 << 20, Policy: Policies()[trial%5]})
		state := make(map[ObjectID]string)
		for id := ObjectID(1); id <= 30; id++ {
			m.Register(id, int64(rng.Intn(500)+1))
			switch rng.Intn(3) {
			case 0:
				m.Lock(id)
				state[id] = "locked"
			case 1:
				m.MarkOut(id)
				state[id] = "out"
			default:
				state[id] = "evictable"
			}
		}
		for _, v := range m.PickVictims(int64(rng.Intn(5000) + 1)) {
			if state[v] != "evictable" {
				t.Fatalf("policy %s picked %s object %d", m.Policy(), state[v], v)
			}
		}
	}
}

func TestSuggestPrefetchRanked(t *testing.T) {
	m := newMgr(LRU, 1000)
	for id := ObjectID(1); id <= 4; id++ {
		m.Register(id, 100)
		m.MarkOut(id)
	}
	m.SetQueueLen(2, 3)
	m.SetQueueLen(3, 7)
	m.SetPriority(4, 1)
	got := m.SuggestPrefetchRanked(3)
	if len(got) != 3 || got[0].ID != 3 || got[1].ID != 2 || got[2].ID != 4 {
		t.Fatalf("SuggestPrefetchRanked = %v, want IDs [3 2 4]", got)
	}
	// Objects with queued messages are urgent — something waits on them;
	// a priority hint alone is speculation.
	if !got[0].Urgent || !got[1].Urgent {
		t.Fatalf("queue-bearing candidates must be urgent: %v", got)
	}
	if got[2].Urgent {
		t.Fatalf("priority-only candidate must not be urgent: %v", got)
	}
}

func TestSetStoredSize(t *testing.T) {
	m := newMgr(LRU, 1000)
	m.Register(1, 100)
	m.MarkOut(1)
	m.SetStoredSize(1, 250)
	if got := m.Size(1); got != 250 {
		t.Fatalf("Size after SetStoredSize = %d, want 250", got)
	}
	// An out-of-core resize must not disturb the in-core accounting.
	if used := m.MemUsed(); used != 0 {
		t.Fatalf("MemUsed = %d after out-of-core resize, want 0", used)
	}
	// In-core resize adjusts usage like SetSize.
	m.Register(2, 100)
	m.SetStoredSize(2, 300)
	if used := m.MemUsed(); used != 300 {
		t.Fatalf("MemUsed = %d after in-core resize, want 300", used)
	}
}

// Package render writes meshes as SVG images, for inspecting the output of
// the generators (element grading, subdomain conformity) without external
// tooling.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"mrts/internal/geom"
	"mrts/internal/mesh"
)

// Options control the SVG output.
type Options struct {
	// WidthPx is the image width in pixels (height follows the aspect
	// ratio). Zero means 800.
	WidthPx int
	// StrokeWidth is the edge line width in mesh units. Zero picks 0.15%
	// of the bounding box diagonal.
	StrokeWidth float64
	// FillByQuality colors triangles from green (equilateral) to red
	// (poor radius-edge ratio).
	FillByQuality bool
	// Constrained highlights constrained edges in a heavier stroke.
	Constrained bool
}

// WriteSVG renders m to w.
func WriteSVG(w io.Writer, m *mesh.Mesh, opts Options) error {
	if m.NumTriangles() == 0 {
		return fmt.Errorf("render: empty mesh")
	}
	if opts.WidthPx <= 0 {
		opts.WidthPx = 800
	}
	var pts []geom.Point
	m.ForEachTri(func(id mesh.TriID, tr mesh.Tri) {
		for k := 0; k < 3; k++ {
			pts = append(pts, m.Vertex(tr.V[k]))
		}
	})
	bb := geom.BoundingRect(pts)
	diag := math.Hypot(bb.W(), bb.H())
	if opts.StrokeWidth <= 0 {
		opts.StrokeWidth = diag * 0.0015
	}
	hPx := int(float64(opts.WidthPx) * bb.H() / bb.W())
	if hPx <= 0 {
		hPx = opts.WidthPx
	}

	bw := bufio.NewWriter(w)
	// Flip Y: SVG grows downward, meshes upward.
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="%g %g %g %g">`+"\n",
		opts.WidthPx, hPx, bb.Min.X, -bb.Max.Y, bb.W(), bb.H())
	fmt.Fprintf(bw, `<g stroke="#334" stroke-width="%g" stroke-linejoin="round">`+"\n", opts.StrokeWidth)

	m.ForEachTri(func(id mesh.TriID, tr mesh.Tri) {
		a := m.Vertex(tr.V[0])
		b := m.Vertex(tr.V[1])
		c := m.Vertex(tr.V[2])
		fill := "#e8ecf4"
		if opts.FillByQuality {
			fill = qualityColor(m.Triangle(id).Quality())
		}
		fmt.Fprintf(bw, `<polygon points="%g,%g %g,%g %g,%g" fill="%s"/>`+"\n",
			a.X, -a.Y, b.X, -b.Y, c.X, -c.Y, fill)
	})
	fmt.Fprintln(bw, "</g>")

	if opts.Constrained {
		fmt.Fprintf(bw, `<g stroke="#b2182b" stroke-width="%g">`+"\n", opts.StrokeWidth*2.5)
		m.ForEachConstrained(func(a, b mesh.VertexID) {
			pa, pb := m.Vertex(a), m.Vertex(b)
			fmt.Fprintf(bw, `<line x1="%g" y1="%g" x2="%g" y2="%g"/>`+"\n",
				pa.X, -pa.Y, pb.X, -pb.Y)
		})
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// qualityColor maps a radius-edge ratio to a green→yellow→red fill.
func qualityColor(q float64) string {
	// 1/sqrt(3) ≈ 0.577 is equilateral; sqrt(2) is the default bound.
	t := (q - 0.577) / (math.Sqrt2 - 0.577)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := int(120 + 135*t)
	g := int(200 - 120*t)
	return fmt.Sprintf("#%02x%02x60", r, g)
}

package render

import (
	"bytes"
	"strings"
	"testing"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/workload"
)

func refinedSquare(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, _, err := delaunay.BuildCDT(workload.UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := delaunay.Refine(m, delaunay.Options{MaxArea: 0.02}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteSVG(t *testing.T) {
	m := refinedSquare(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("missing svg root")
	}
	if got := strings.Count(out, "<polygon"); got != m.NumTriangles() {
		t.Fatalf("polygons = %d, triangles = %d", got, m.NumTriangles())
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("unterminated svg")
	}
}

func TestWriteSVGQualityAndConstrained(t *testing.T) {
	m := refinedSquare(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, m, Options{FillByQuality: true, Constrained: true, WidthPx: 400}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "<line"); got != m.NumConstrained() {
		t.Fatalf("lines = %d, constrained = %d", got, m.NumConstrained())
	}
	if !strings.Contains(out, `width="400"`) {
		t.Fatal("width option ignored")
	}
}

func TestWriteSVGEmptyMesh(t *testing.T) {
	if err := WriteSVG(&bytes.Buffer{}, mesh.New(), Options{}); err == nil {
		t.Fatal("empty mesh should error")
	}
}

func TestQualityColorRange(t *testing.T) {
	for _, q := range []float64{0, 0.577, 1.0, 1.4142, 10} {
		c := qualityColor(q)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q for q=%v", c, q)
		}
	}
	if qualityColor(0.577) == qualityColor(5) {
		t.Fatal("good and bad triangles should differ in color")
	}
	_ = geom.Pt(0, 0)
}

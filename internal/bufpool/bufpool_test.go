package bufpool

import (
	"bytes"
	"testing"
)

func TestClassSizing(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 512}, {1, 512}, {512, 512}, {513, 1024}, {4096, 4096},
		{5000, 8192}, {1 << 24, 1 << 24},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("Get(%d): len=%d cap=%d, want len=%d cap=%d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		Put(b)
	}
	// Beyond the largest class, Get falls through to the allocator.
	big := Get(1<<24 + 1)
	if len(big) != 1<<24+1 {
		t.Fatalf("oversize Get: len=%d", len(big))
	}
	Put(big) // must be a silent drop
}

func TestRoundTripReuse(t *testing.T) {
	b := Get(1000)
	for i := range b {
		b[i] = 7
	}
	Put(b)
	b2 := Get(900)
	if cap(b2) != cap(b) {
		t.Fatalf("expected class reuse, got cap %d vs %d", cap(b2), cap(b))
	}
}

func TestPutForeignBufferDropped(t *testing.T) {
	before := Snapshot()
	Put(make([]byte, 777)) // cap 777 is not a class size
	after := Snapshot()
	if after.Drops != before.Drops+1 {
		t.Fatalf("foreign Put not dropped: %+v -> %+v", before, after)
	}
}

func TestClone(t *testing.T) {
	src := []byte("hello pooled world")
	dst := Clone(src)
	if !bytes.Equal(src, dst) {
		t.Fatalf("clone mismatch")
	}
	if cap(dst) != 512 {
		t.Fatalf("clone not pooled: cap=%d", cap(dst))
	}
	Put(dst)
}

func TestPoisonOnPut(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	b := Get(600)
	for i := range b {
		b[i] = 0x11
	}
	// Keep an alias to observe the poison (this is exactly the misuse the
	// poison exists to catch).
	alias := b[:8]
	Put(b)
	for i, c := range alias {
		if c != poisonByte {
			t.Fatalf("byte %d not poisoned: %#x", i, c)
		}
	}
	// Drain the poisoned buffer so later tests get clean state.
	Put(Get(600))
}

func TestWriterGrowAndDetach(t *testing.T) {
	w := GetWriter(16)
	var want []byte
	chunk := bytes.Repeat([]byte{0xAB}, 300)
	for i := 0; i < 10; i++ {
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	if err := w.WriteByte(0xCD); err != nil {
		t.Fatal(err)
	}
	want = append(want, 0xCD)
	if w.Len() != len(want) {
		t.Fatalf("Len=%d want %d", w.Len(), len(want))
	}
	got := w.Detach()
	PutWriter(w)
	if !bytes.Equal(got, want) {
		t.Fatalf("writer content mismatch (len %d vs %d)", len(got), len(want))
	}
	if w2 := GetWriter(8); w2.Len() != 0 {
		t.Fatalf("recycled writer not empty")
	} else {
		PutWriter(w2)
	}
	Put(got)
}

func TestWriterSteadyStateZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	// Warm the pools.
	for i := 0; i < 4; i++ {
		w := GetWriter(len(payload))
		w.Write(payload)
		Put(w.Detach())
		PutWriter(w)
	}
	allocs := testing.AllocsPerRun(100, func() {
		w := GetWriter(len(payload))
		w.Write(payload)
		b := w.Detach()
		PutWriter(w)
		Put(b)
	})
	if allocs > 0.5 {
		t.Fatalf("writer round trip allocates: %.1f allocs/op", allocs)
	}
}

func TestGetPutSteadyStateZeroAlloc(t *testing.T) {
	for i := 0; i < 4; i++ {
		Put(Get(8192))
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(8192)
		b[0] = 1
		Put(b)
	})
	if allocs > 0.5 {
		t.Fatalf("Get/Put round trip allocates: %.1f allocs/op", allocs)
	}
}

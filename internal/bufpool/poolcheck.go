//go:build poolcheck

package bufpool

// Building with -tags poolcheck turns poison-on-put on for the whole binary,
// so any read of a buffer after its release surfaces as garbled data in
// ordinary test runs instead of lurking until a rare interleaving.
func init() { poison.Store(true) }

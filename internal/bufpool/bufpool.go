// Package bufpool is the swap path's size-classed buffer arena. Every blob
// that moves through the out-of-core pipeline — encode on eviction, the read
// on a demand load, the wire frames of the remote-memory protocol — is a
// short-lived []byte whose size repeats run after run; allocating each one
// fresh makes the garbage collector a hidden participant in every swap. The
// arena recycles them instead: Get hands out a buffer from a power-of-two
// size class, Put returns it, and the steady-state evict/load cycle touches
// the heap not at all.
//
// Ownership rule (the single rule every layer follows): a buffer obtained
// from Get/Clone/Writer.Detach has exactly one owner at a time. The owner may
// hand it off (storage.PutBuf, comm.SendPooled) — after a successful hand-off
// the previous owner must neither read nor release it — or release it with
// Put. Layers that must retain bytes past the hand-off (MemStore, the
// compression cache) copy; nothing retains a caller's pooled buffer.
//
// The free lists are plain bounded stacks, not sync.Pool: sync.Pool drops
// its contents at GC (reintroducing the allocations the arena exists to
// remove) and boxing a []byte into its interface{} allocates on every Put.
// Misuse is detectable: SetPoison (enabled by default under the `poolcheck`
// build tag) fills released buffers with a poison byte, so any reader holding
// a buffer past its release sees garbage instead of silently stale data.
package bufpool

import (
	"sync"
	"sync/atomic"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes: 512 B up to
	// 16 MiB. Smaller requests round up to the smallest class; larger ones
	// fall through to the allocator (they are rare enough not to matter and
	// pooling them would pin large dead memory).
	minClassBits = 9
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// maxFreePerClass bounds each class's free list; beyond it, released
	// buffers are dropped to the GC. The pool is a cache, not a reservation.
	maxFreePerClass = 64

	// poisonByte fills released buffers when poisoning is on. 0xDB reads as
	// "dead buffer" in hex dumps and is never a valid length prefix start.
	poisonByte = 0xDB
)

type class struct {
	mu   sync.Mutex
	free [][]byte
}

var classes [numClasses]class

// Counters for tests and the bench harness (hits = Get served from a free
// list, misses = Get that had to allocate, drops = Put of an unpoolable or
// overflowing buffer).
var hits, misses, puts, drops atomic.Uint64

// poison controls poison-on-put. Tests flip it with SetPoison; the poolcheck
// build tag turns it on for a whole build.
var poison atomic.Bool

// classIndex returns the class for a capacity request, or -1 when the
// request is beyond the largest class.
func classIndex(n int) int {
	if n < 0 {
		return -1
	}
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// classOf returns the class whose size is exactly cap(b), or -1 — only
// exact-cap buffers are recycled, so a foreign slice with a coincidental
// capacity cannot corrupt the arena's size invariant.
func classOf(b []byte) int {
	c := cap(b)
	if c < 1<<minClassBits || c > 1<<maxClassBits || c&(c-1) != 0 {
		return -1
	}
	idx := 0
	for size := 1 << minClassBits; size < c; size <<= 1 {
		idx++
	}
	return idx
}

// Get returns a buffer of length n whose capacity is the smallest class that
// fits (or exactly n beyond the largest class). The contents are unspecified.
func Get(n int) []byte {
	idx := classIndex(n)
	if idx < 0 {
		misses.Add(1)
		return make([]byte, n)
	}
	cl := &classes[idx]
	cl.mu.Lock()
	if last := len(cl.free) - 1; last >= 0 {
		b := cl.free[last]
		cl.free[last] = nil
		cl.free = cl.free[:last]
		cl.mu.Unlock()
		hits.Add(1)
		return b[:n]
	}
	cl.mu.Unlock()
	misses.Add(1)
	return make([]byte, n, 1<<(minClassBits+idx))
}

// Put releases b back to its size class. Buffers whose capacity is not
// exactly a class size (including every slice that never came from the pool)
// are dropped silently — Put is always safe to call on a buffer you own.
// After Put the caller must not touch b again.
func Put(b []byte) {
	idx := classOf(b)
	if idx < 0 {
		drops.Add(1)
		return
	}
	if poison.Load() {
		b = b[:cap(b)]
		for i := range b {
			b[i] = poisonByte
		}
	}
	cl := &classes[idx]
	cl.mu.Lock()
	if cl.free == nil {
		cl.free = make([][]byte, 0, maxFreePerClass)
	}
	if len(cl.free) < maxFreePerClass {
		cl.free = append(cl.free, b)
		cl.mu.Unlock()
		puts.Add(1)
		return
	}
	cl.mu.Unlock()
	drops.Add(1)
}

// Clone returns a pooled copy of src (the caller owns it; release with Put).
func Clone(src []byte) []byte {
	dst := Get(len(src))
	copy(dst, src)
	return dst
}

// SetPoison enables or disables poison-on-put: released buffers are filled
// with 0xDB so a read-after-release surfaces as garbled data instead of a
// silent race. The poolcheck build tag enables it for the whole build.
func SetPoison(on bool) { poison.Store(on) }

// Stats is a snapshot of the arena counters.
type Stats struct {
	Hits, Misses, Puts, Drops uint64
}

// Snapshot returns the current counters.
func Snapshot() Stats {
	return Stats{Hits: hits.Load(), Misses: misses.Load(), Puts: puts.Load(), Drops: drops.Load()}
}

// Writer is an io.Writer accumulating into a pooled buffer — the encode
// target of the eviction path. Obtain one with GetWriter, take the result
// with Detach, and return the Writer with PutWriter; EncodeTo never sees the
// pooling at all.
type Writer struct {
	buf []byte
}

// writerPool recycles the Writer headers themselves (pointer-shaped, so the
// sync.Pool round trip does not allocate).
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns an empty Writer whose backing buffer has at least
// sizeHint capacity.
func GetWriter(sizeHint int) *Writer {
	if sizeHint < 1 {
		sizeHint = 1
	}
	w := writerPool.Get().(*Writer)
	if w.buf == nil || cap(w.buf) < sizeHint {
		if w.buf != nil {
			Put(w.buf)
		}
		w.buf = Get(sizeHint)
	}
	w.buf = w.buf[:0]
	return w
}

// PutWriter releases w; a backing buffer not taken by Detach stays cached in
// the Writer for its next use.
func PutWriter(w *Writer) {
	if w.buf != nil {
		w.buf = w.buf[:0]
	}
	writerPool.Put(w)
}

// Write implements io.Writer, growing through the pool.
func (w *Writer) Write(p []byte) (int, error) {
	w.grow(len(p))
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// WriteByte appends one byte.
func (w *Writer) WriteByte(c byte) error {
	w.grow(1)
	w.buf = append(w.buf, c)
	return nil
}

// grow ensures capacity for n more bytes, recycling the old backing buffer.
func (w *Writer) grow(n int) {
	need := len(w.buf) + n
	if need <= cap(w.buf) {
		return
	}
	nb := Get(need * 2)
	nb = nb[:len(w.buf)]
	copy(nb, w.buf)
	Put(w.buf)
	w.buf = nb
}

// Len returns the bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Truncate discards all but the first n written bytes, keeping the backing
// buffer. n must not exceed Len.
func (w *Writer) Truncate(n int) {
	if n < 0 || n > len(w.buf) {
		panic("bufpool: Truncate out of range")
	}
	w.buf = w.buf[:n]
}

// Bytes returns the accumulated bytes, still owned by the Writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Detach hands the accumulated buffer to the caller (who releases it with
// Put) and leaves the Writer empty.
func (w *Writer) Detach() []byte {
	b := w.buf
	w.buf = nil
	return b
}

package delaunay

import (
	"math"
	"testing"

	"mrts/internal/geom"
	"mrts/internal/mesh"
)

// squarePSLG returns a unit-square PSLG.
func squarePSLG() *PSLG {
	return &PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
}

// polygonPSLG returns a regular n-gon of the given radius.
func polygonPSLG(n int, radius float64) *PSLG {
	p := &PSLG{}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p.Points = append(p.Points, geom.Pt(radius*math.Cos(a), radius*math.Sin(a)))
	}
	for i := 0; i < n; i++ {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % n})
	}
	return p
}

func TestPSLGValidate(t *testing.T) {
	if err := (&PSLG{}).Validate(); err == nil {
		t.Error("empty PSLG should fail validation")
	}
	bad := squarePSLG()
	bad.Segments = append(bad.Segments, [2]int{0, 9})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range segment should fail validation")
	}
	deg := squarePSLG()
	deg.Segments = append(deg.Segments, [2]int{2, 2})
	if err := deg.Validate(); err == nil {
		t.Error("degenerate segment should fail validation")
	}
	if err := squarePSLG().Validate(); err != nil {
		t.Errorf("valid PSLG rejected: %v", err)
	}
}

func TestBuildCDTSquare(t *testing.T) {
	m, ids, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids = %d", len(ids))
	}
	if m.NumTriangles() != 2 {
		t.Fatalf("unit square should carve to 2 triangles, got %d", m.NumTriangles())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var area float64
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) { area += m.Triangle(id).Area() })
	if math.Abs(area-1) > 1e-12 {
		t.Errorf("area = %v, want 1", area)
	}
}

func TestBuildCDTWithHole(t *testing.T) {
	// Outer square [0,4]^2 with inner square hole [1.5,2.5]^2.
	p := &PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4),
			geom.Pt(1.5, 1.5), geom.Pt(2.5, 1.5), geom.Pt(2.5, 2.5), geom.Pt(1.5, 2.5),
		},
		Segments: [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0},
			{4, 5}, {5, 6}, {6, 7}, {7, 4},
		},
		Holes: []geom.Point{geom.Pt(2, 2)},
	}
	m, _, err := BuildCDT(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var area float64
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) { area += m.Triangle(id).Area() })
	if math.Abs(area-15) > 1e-9 {
		t.Errorf("area = %v, want 16-1 = 15", area)
	}
}

func TestRefineQuality(t *testing.T) {
	m, _, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Refine(m, Options{QualityBound: math.Sqrt2, MaxArea: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Capped {
		t.Fatal("refinement should not cap")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	nbad := 0
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
		tr := m.Triangle(id)
		if tr.Quality() > math.Sqrt2+1e-9 || tr.Area() > 0.005+1e-12 {
			nbad++
		}
	})
	if nbad != 0 {
		t.Errorf("%d bad triangles remain", nbad)
	}
	if m.NumTriangles() < 200 {
		t.Errorf("expected at least ~200 triangles for area bound 0.005, got %d", m.NumTriangles())
	}
	// Area conservation.
	var area float64
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) { area += m.Triangle(id).Area() })
	if math.Abs(area-1) > 1e-9 {
		t.Errorf("area = %v, want 1", area)
	}
}

func TestRefinePolygon(t *testing.T) {
	m, _, err := BuildCDT(polygonPSLG(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(m, Options{MaxArea: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	minAngle := math.Pi
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
		if a := m.Triangle(id).MinAngle(); a < minAngle {
			minAngle = a
		}
	})
	// Quality bound sqrt(2) guarantees >= arcsin(1/(2*sqrt 2)) ≈ 20.7°.
	if deg := minAngle * 180 / math.Pi; deg < 20 {
		t.Errorf("min angle %.2f° below guarantee", deg)
	}
}

func TestRefineGraded(t *testing.T) {
	m, _, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	// Fine near the origin corner, coarse far away.
	size := func(p geom.Point) float64 {
		d := math.Hypot(p.X, p.Y)
		return 0.01 + 0.15*d
	}
	if _, err := Refine(m, Options{SizeFunc: size}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// All triangles meet the sizing bound.
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
		tr := m.Triangle(id)
		if h := size(tr.Centroid()); tr.LongestEdge() > h+1e-12 {
			t.Errorf("triangle %d: longest edge %v exceeds size %v", id, tr.LongestEdge(), h)
		}
	})
	// Gradation: triangles near origin must be much smaller than far ones.
	var nearMax, farMin float64
	farMin = math.Inf(1)
	m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
		tr := m.Triangle(id)
		c := tr.Centroid()
		d := math.Hypot(c.X, c.Y)
		if d < 0.2 && tr.LongestEdge() > nearMax {
			nearMax = tr.LongestEdge()
		}
		if d > 1.2 && tr.LongestEdge() < farMin {
			farMin = tr.LongestEdge()
		}
	})
	if !(nearMax < farMin) {
		t.Errorf("expected gradation: near max edge %v should be < far min edge %v", nearMax, farMin)
	}
}

func TestRefineMaxVerticesCap(t *testing.T) {
	m, _, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Refine(m, Options{MaxArea: 1e-6, MaxVertices: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Capped {
		t.Error("expected capped refinement")
	}
	if m.NumVertices() > 510 {
		t.Errorf("cap overshoot: %d vertices", m.NumVertices())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineBadOptions(t *testing.T) {
	m, _, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(m, Options{QualityBound: 0.5}); err != ErrBadOptions {
		t.Errorf("err = %v, want ErrBadOptions", err)
	}
}

func TestRefineOffCenters(t *testing.T) {
	m1, _, err := BuildCDT(polygonPSLG(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Refine(m1, Options{MaxArea: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := BuildCDT(polygonPSLG(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Refine(m2, Options{MaxArea: 0.002, OffCenters: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both must meet the bound; off-centers usually need no more points.
	for _, m := range []*mesh.Mesh{m1, m2} {
		m.ForEachTri(func(id mesh.TriID, _ mesh.Tri) {
			if m.Triangle(id).Quality() > DefaultQualityBound+1e-9 {
				t.Errorf("bad quality triangle survived")
			}
		})
	}
	t.Logf("circumcenters: %d Steiner, off-centers: %d Steiner", s1.SteinerPoints, s2.SteinerPoints)
}

func TestSegmentsRemainConstrainedAfterRefine(t *testing.T) {
	m, _, err := BuildCDT(squarePSLG())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refine(m, Options{MaxArea: 0.01}); err != nil {
		t.Fatal(err)
	}
	// Every hull edge must still be constrained, and all boundary vertices
	// must lie exactly on the unit square's boundary.
	m.ForEachTri(func(id mesh.TriID, tr mesh.Tri) {
		for k := 0; k < 3; k++ {
			if tr.N[k] == mesh.NoTri {
				a := tr.V[(k+1)%3]
				b := tr.V[(k+2)%3]
				if !m.IsConstrained(a, b) {
					t.Errorf("hull edge (%d,%d) not constrained", a, b)
				}
				for _, v := range []mesh.VertexID{a, b} {
					p := m.Vertex(v)
					onBoundary := p.X == 0 || p.X == 1 || p.Y == 0 || p.Y == 1
					if !onBoundary {
						t.Errorf("hull vertex %v not on square boundary", p)
					}
				}
			}
		}
	})
}

func TestRefineSliverDomain(t *testing.T) {
	// A very flat triangular domain: the initial triangle's circumcenter
	// lies far outside the hull, exercising the blocked-walk fallback
	// (split the boundary segment the walk toward the circumcenter hits).
	p := &PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 0.05),
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 0}},
	}
	m, _, err := BuildCDT(p)
	if err != nil {
		t.Fatal(err)
	}
	// The ~6° input angles at the base corners are far below Ruppert's
	// termination guarantee (see Options.QualityBound), so refinement will
	// grind toward the corners forever: the vertex cap is load-bearing.
	stats, err := Refine(m, Options{QualityBound: math.Sqrt2, MaxVertices: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.SegmentSplits == 0 {
		t.Error("expected boundary segment splits on the sliver domain")
	}
	if !stats.Capped {
		t.Log("sliver refinement terminated without hitting the cap")
	}
	if m.NumTriangles() < 10 {
		t.Errorf("refinement barely progressed: %d triangles", m.NumTriangles())
	}
}

func TestRefineInputEncroachment(t *testing.T) {
	// An input point sitting just above the bottom edge encroaches it:
	// phase 1 (splitAllEncroached) must split segments before any Steiner
	// insertion.
	p := &PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
			geom.Pt(0.5, 0.02), // encroaches the bottom segment
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	m, _, err := BuildCDT(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Refine(m, Options{QualityBound: math.Sqrt2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentSplits == 0 {
		t.Error("encroached input should force segment splits")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// No boundary segment may remain encroached by any mesh vertex.
	m.ForEachConstrained(func(a, b mesh.VertexID) {
		seg := geom.Segment{A: m.Vertex(a), B: m.Vertex(b)}
		for _, tid := range m.EdgeTriangles(a, b) {
			tr := m.Tri(tid)
			for k := 0; k < 3; k++ {
				v := tr.V[k]
				if v == a || v == b {
					continue
				}
				if seg.DiametralContains(m.Vertex(v)) {
					t.Errorf("segment (%d,%d) still encroached by %d", a, b, v)
				}
			}
		}
	})
}

func TestRefineNoSegmentSplitSkips(t *testing.T) {
	// Same encroaching geometry with frozen segments: refinement must skip
	// the offending triangles instead of splitting, and report it.
	p := &PSLG{
		Points: []geom.Point{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
			geom.Pt(0.5, 0.02),
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	m, _, err := BuildCDT(p)
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumConstrained()
	stats, err := Refine(m, Options{QualityBound: math.Sqrt2, NoSegmentSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentSplits != 0 {
		t.Errorf("frozen segments were split %d times", stats.SegmentSplits)
	}
	if m.NumConstrained() != before {
		t.Errorf("constraint count changed: %d -> %d", before, m.NumConstrained())
	}
	if stats.Skipped == 0 {
		t.Error("expected skipped triangles to be reported")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Package delaunay implements guaranteed-quality Delaunay mesh refinement
// (Ruppert's algorithm) on top of the mesh package: constrained Delaunay
// triangulation of a planar straight-line graph (PSLG), followed by
// encroachment-driven segment splitting and circumcenter insertion until all
// triangles meet the quality and size bounds.
//
// This is the sequential meshing core used by every parallel mesh generation
// method in this repository (UPDR, NUPDR, PCDM and their out-of-core ports):
// each processing element runs this engine on its own subdomain.
package delaunay

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mrts/internal/geom"
	"mrts/internal/mesh"
)

// DefaultQualityBound is the default circumradius-to-shortest-edge bound
// (sqrt 2, guaranteeing a minimum angle of about 20.7 degrees, for which
// Ruppert's algorithm provably terminates).
const DefaultQualityBound = math.Sqrt2

// Options control refinement.
type Options struct {
	// QualityBound is the maximum allowed circumradius-to-shortest-edge
	// ratio. Zero means DefaultQualityBound. Values below 1 are rejected
	// (refinement would not terminate). Termination is guaranteed for
	// bounds >= sqrt(2) when adjacent input segments meet at 60° or more
	// (Ruppert's condition); domains with very acute input angles should
	// set MaxVertices, as refinement can otherwise grind into the corners
	// indefinitely.
	QualityBound float64

	// MaxArea, when positive, forces every triangle's area below it
	// (uniform sizing).
	MaxArea float64

	// SizeFunc, when non-nil, gives the target edge length at a point
	// (graded sizing). A triangle whose longest edge exceeds
	// SizeFunc(centroid) is refined.
	SizeFunc func(geom.Point) float64

	// MaxVertices caps the total number of vertices as a safety valve.
	// Zero means no cap. When the cap is hit, Refine stops early and
	// reports Capped in its stats.
	MaxVertices int

	// OffCenters enables Üngör off-center Steiner points instead of plain
	// circumcenters, which typically yields fewer inserted points.
	OffCenters bool

	// OnSegmentSplit, when non-nil, is called after every constrained
	// segment split with the segment endpoints and the inserted midpoint.
	// PCDM uses it to propagate interface splits to neighbor subdomains.
	OnSegmentSplit func(a, b, mid geom.Point)

	// NoSegmentSplit freezes all constrained segments: encroached segments
	// are never split, and Steiner points whose insertion would encroach a
	// segment are skipped instead (their triangles stay as they are).
	// Subdomain-local refinement uses this to keep interfaces bit-exact
	// with neighbors that already fixed them. Skipped triangles are
	// reported in Stats.
	NoSegmentSplit bool
}

func (o *Options) qualityBound() float64 {
	if o.QualityBound == 0 {
		return DefaultQualityBound
	}
	return o.QualityBound
}

// Stats reports what a refinement run did.
type Stats struct {
	SteinerPoints int  // circumcenters / off-centers inserted
	SegmentSplits int  // constrained segment midpoint insertions
	Skipped       int  // bad triangles left alone under NoSegmentSplit
	Capped        bool // true if MaxVertices stopped refinement early
}

// ErrBadOptions is returned for option values that would not terminate.
var ErrBadOptions = errors.New("delaunay: quality bound must be >= 1")

// PSLG is a planar straight-line graph: the input to CDT construction.
type PSLG struct {
	Points   []geom.Point
	Segments [][2]int     // indices into Points
	Holes    []geom.Point // one interior point per hole to carve
}

// Validate performs basic sanity checks on the PSLG.
func (p *PSLG) Validate() error {
	if len(p.Points) < 3 {
		return fmt.Errorf("delaunay: PSLG needs at least 3 points, have %d", len(p.Points))
	}
	for i, s := range p.Segments {
		if s[0] < 0 || s[0] >= len(p.Points) || s[1] < 0 || s[1] >= len(p.Points) {
			return fmt.Errorf("delaunay: segment %d references point out of range", i)
		}
		if s[0] == s[1] {
			return fmt.Errorf("delaunay: segment %d is degenerate", i)
		}
	}
	return nil
}

// BuildCDT builds the constrained Delaunay triangulation of the PSLG and
// carves away the exterior (and any holes). It returns the mesh and the
// vertex IDs corresponding to p.Points (duplicated points map to the same
// vertex).
func BuildCDT(p *PSLG) (*mesh.Mesh, []mesh.VertexID, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	m := mesh.New()
	bbox := geom.BoundingRect(p.Points)
	m.InitSuper(bbox)

	ids := make([]mesh.VertexID, len(p.Points))
	hint := mesh.NoTri
	for i, pt := range p.Points {
		v, err := m.InsertPoint(pt, hint)
		if err != nil && err != mesh.ErrDuplicate {
			return nil, nil, fmt.Errorf("delaunay: inserting point %d %v: %w", i, pt, err)
		}
		ids[i] = v
		hint = m.IncidentTri(v)
	}
	for i, s := range p.Segments {
		if err := m.InsertSegment(ids[s[0]], ids[s[1]]); err != nil {
			return nil, nil, fmt.Errorf("delaunay: recovering segment %d: %w", i, err)
		}
	}

	// Carve exterior (reachable from super triangle) and holes.
	var holeSeeds []mesh.TriID
	for _, h := range p.Holes {
		loc := m.Locate(h, mesh.NoTri)
		if loc.Kind == mesh.LocateInside || loc.Kind == mesh.LocateOnEdge {
			holeSeeds = append(holeSeeds, loc.Tri)
		}
	}
	m.Carve()
	m.CarveFrom(holeSeeds)
	return m, ids, nil
}

// refiner carries the state of one refinement run.
type refiner struct {
	m     *mesh.Mesh
	opts  Options
	beta  float64
	bad   []mesh.TriID // stack of candidate bad triangles (rechecked at pop)
	stats Stats
}

// Refine runs Ruppert refinement on m in place. m must be a carved CDT: its
// hull edges must all be constrained (BuildCDT guarantees this).
func Refine(m *mesh.Mesh, opts Options) (Stats, error) {
	if opts.QualityBound != 0 && opts.QualityBound < 1 {
		return Stats{}, ErrBadOptions
	}
	r := &refiner{m: m, opts: opts, beta: opts.qualityBound()}
	if opts.OnSegmentSplit != nil {
		// Hook at the mesh level so that every constrained split is seen,
		// including Steiner points landing exactly on a segment.
		m.SetSplitHook(opts.OnSegmentSplit)
		defer m.SetSplitHook(nil)
	}

	// Phase 1: split encroached segments until none remain (skipped when
	// segments are frozen).
	if !opts.NoSegmentSplit {
		if err := r.splitAllEncroached(); err != nil {
			return r.stats, err
		}
	}

	// Phase 2: seed the bad-triangle queue.
	m.ForEachTri(func(t mesh.TriID, _ mesh.Tri) {
		if r.isBad(t) {
			r.bad = append(r.bad, t)
		}
	})

	// Phase 3: main loop.
	for len(r.bad) > 0 {
		if r.capped() {
			r.stats.Capped = true
			return r.stats, nil
		}
		t := r.bad[len(r.bad)-1]
		r.bad = r.bad[:len(r.bad)-1]
		if !r.m.Alive(t) || !r.isBad(t) {
			continue
		}
		if err := r.refineTriangle(t); err != nil {
			return r.stats, err
		}
	}
	return r.stats, nil
}

func (r *refiner) capped() bool {
	return r.opts.MaxVertices > 0 && r.m.NumVertices() >= r.opts.MaxVertices
}

// isBad reports whether triangle t violates the quality or size bounds.
func (r *refiner) isBad(t mesh.TriID) bool {
	tr := r.m.Triangle(t)
	if tr.Quality() > r.beta {
		return true
	}
	if r.opts.MaxArea > 0 && tr.Area() > r.opts.MaxArea {
		return true
	}
	if r.opts.SizeFunc != nil {
		if h := r.opts.SizeFunc(tr.Centroid()); h > 0 && tr.LongestEdge() > h {
			return true
		}
	}
	return false
}

// encroached reports whether the constrained edge (a, b) is encroached by
// any vertex of its adjacent triangles (sufficient for Delaunay meshes: if
// any vertex is inside the diametral circle, the nearest one is a neighbor
// apex).
func (r *refiner) encroached(a, b mesh.VertexID) bool {
	seg := geom.Segment{A: r.m.Vertex(a), B: r.m.Vertex(b)}
	for _, t := range r.m.EdgeTriangles(a, b) {
		tr := r.m.Tri(t)
		for k := 0; k < 3; k++ {
			v := tr.V[k]
			if v == a || v == b {
				continue
			}
			if seg.DiametralContains(r.m.Vertex(v)) {
				return true
			}
		}
	}
	return false
}

// splitSegment inserts the midpoint of constrained edge (a, b), requeues the
// triangles around the new vertex and recursively resolves encroachment of
// the two halves.
func (r *refiner) splitSegment(a, b mesh.VertexID) error {
	v, err := r.m.SplitEdge(a, b)
	if err == mesh.ErrDuplicate {
		return nil // edge too short to split further
	}
	if err != nil {
		return fmt.Errorf("delaunay: splitting segment: %w", err)
	}
	r.stats.SegmentSplits++
	r.queueAround(v)
	// The two halves may themselves be encroached.
	for _, half := range [][2]mesh.VertexID{{a, v}, {v, b}} {
		if r.capped() {
			return nil
		}
		if r.m.IsConstrained(half[0], half[1]) && r.encroached(half[0], half[1]) {
			if err := r.splitSegment(half[0], half[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitAllEncroached scans all constrained edges and splits the encroached
// ones to a fixpoint.
func (r *refiner) splitAllEncroached() error {
	for {
		if r.capped() {
			r.stats.Capped = true
			return nil
		}
		var queue [][2]mesh.VertexID
		r.m.ForEachConstrained(func(a, b mesh.VertexID) {
			if r.encroached(a, b) {
				queue = append(queue, [2]mesh.VertexID{a, b})
			}
		})
		if len(queue) == 0 {
			return nil
		}
		// ForEachConstrained iterates a map; sort for determinism.
		sort.Slice(queue, func(i, j int) bool {
			if queue[i][0] != queue[j][0] {
				return queue[i][0] < queue[j][0]
			}
			return queue[i][1] < queue[j][1]
		})
		for _, e := range queue {
			if !r.m.IsConstrained(e[0], e[1]) {
				continue // already split
			}
			if err := r.splitSegment(e[0], e[1]); err != nil {
				return err
			}
		}
	}
}

// queueAround pushes all triangles incident to v onto the bad-candidate
// stack (they are rechecked at pop time).
func (r *refiner) queueAround(v mesh.VertexID) {
	for _, t := range r.m.IncidentTriangles(v) {
		r.bad = append(r.bad, t)
	}
}

// refineTriangle attempts to kill bad triangle t by inserting its
// circumcenter (or off-center); if the new point would encroach constrained
// segments, those segments are split instead (Ruppert's rule).
func (r *refiner) refineTriangle(t mesh.TriID) error {
	tr := r.m.Triangle(t)
	var c geom.Point
	var ok bool
	if r.opts.OffCenters {
		c, ok = tr.OffCenter(r.beta)
	} else {
		c, ok = tr.Circumcenter()
	}
	if !ok {
		return fmt.Errorf("delaunay: degenerate triangle %d", t)
	}

	// Find the constrained segments the would-be cavity of c exposes, and
	// test them for encroachment by c.
	segs, loc := r.cavitySegments(c, t)
	var encroachedSegs [][2]mesh.VertexID
	for _, s := range segs {
		seg := geom.Segment{A: r.m.Vertex(s[0]), B: r.m.Vertex(s[1])}
		if seg.DiametralContains(c) {
			encroachedSegs = append(encroachedSegs, s)
		}
	}
	if loc.Kind == mesh.LocateFailed && len(encroachedSegs) == 0 {
		// The circumcenter escaped the (constrained-bounded) domain without
		// crossing an encroached segment: split the segment the walk from t
		// toward c is blocked by.
		if s, found := r.blockingSegment(t, c); found {
			encroachedSegs = append(encroachedSegs, s)
		} else {
			// Numerical corner case: give up on this triangle.
			return nil
		}
	}

	if len(encroachedSegs) > 0 && r.opts.NoSegmentSplit {
		// Segments are frozen: leave this triangle be.
		r.stats.Skipped++
		return nil
	}
	if len(encroachedSegs) > 0 {
		for _, s := range encroachedSegs {
			if r.capped() {
				return nil
			}
			if r.m.IsConstrained(s[0], s[1]) {
				if err := r.splitSegment(s[0], s[1]); err != nil {
					return err
				}
			}
		}
		// The triangle may still be bad; requeue it.
		if r.m.Alive(t) {
			r.bad = append(r.bad, t)
		}
		return nil
	}

	switch loc.Kind {
	case mesh.LocateOnVert:
		return nil // circumcenter coincides with an existing vertex
	case mesh.LocateFailed:
		return nil
	}
	v, err := r.m.InsertPoint(c, loc.Tri)
	if err == mesh.ErrDuplicate || err == mesh.ErrOutside {
		return nil
	}
	if err != nil {
		return fmt.Errorf("delaunay: inserting Steiner point: %w", err)
	}
	r.stats.SteinerPoints++
	r.queueAround(v)
	return nil
}

// cavitySegments computes, without mutating the mesh, the constrained edges
// on the boundary of the Bowyer–Watson cavity that inserting c would carve.
// It returns the located position of c as well.
func (r *refiner) cavitySegments(c geom.Point, hint mesh.TriID) ([][2]mesh.VertexID, mesh.Location) {
	loc := r.m.Locate(c, hint)
	if loc.Kind == mesh.LocateFailed || loc.Kind == mesh.LocateOnVert {
		return nil, loc
	}
	inCavity := map[mesh.TriID]bool{loc.Tri: true}
	stack := []mesh.TriID{loc.Tri}
	var segs [][2]mesh.VertexID
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		tr := r.m.Tri(t)
		for i := 0; i < 3; i++ {
			a := tr.V[(i+1)%3]
			b := tr.V[(i+2)%3]
			n := tr.N[i]
			if r.m.IsConstrained(a, b) {
				segs = append(segs, [2]mesh.VertexID{a, b})
				continue
			}
			if n == mesh.NoTri || inCavity[n] {
				continue
			}
			if r.m.Triangle(n).CircumcircleContains(c) {
				inCavity[n] = true
				stack = append(stack, n)
			}
		}
	}
	return segs, loc
}

// blockingSegment walks from triangle t toward target and returns the first
// constrained edge the walk would have to cross.
func (r *refiner) blockingSegment(t mesh.TriID, target geom.Point) ([2]mesh.VertexID, bool) {
	cur := t
	prev := mesh.NoTri
	from := r.m.Triangle(t).Centroid()
	for step := 0; step < r.m.NumTriangles()+8; step++ {
		tr := r.m.Tri(cur)
		moved := false
		for i := 0; i < 3; i++ {
			a := tr.V[(i+1)%3]
			b := tr.V[(i+2)%3]
			pa, pb := r.m.Vertex(a), r.m.Vertex(b)
			if geom.Orient2D(pa, pb, target) != geom.Negative {
				continue // target not beyond this edge
			}
			if !geom.SegmentsProperlyIntersect(from, target, pa, pb) {
				continue
			}
			if r.m.IsConstrained(a, b) {
				return [2]mesh.VertexID{a, b}, true
			}
			n := tr.N[i]
			if n == mesh.NoTri || n == prev {
				continue
			}
			prev, cur = cur, n
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	return [2]mesh.VertexID{}, false
}

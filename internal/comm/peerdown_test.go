package comm

import (
	"errors"
	"testing"
)

// A peer that dies mid-connection must surface as the typed, retryable
// ErrPeerDown — not as a raw io error the storage retry policy can't
// classify.
func TestTCPSendToDeadPeerIsErrPeerDown(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, b := tr.Endpoint(0), tr.Endpoint(1)
	b.Register(9, func(Message) {})

	// Establish the connection with a successful send first, so the
	// failure below is a mid-connection death, not a failed dial.
	if err := a.Send(1, 9, []byte("warmup")); err != nil {
		t.Fatalf("warmup send: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close peer: %v", err)
	}

	// The kernel may buffer a few writes before the RST lands; keep
	// sending until the failure surfaces.
	var sendErr error
	for i := 0; i < 10000; i++ {
		if sendErr = a.Send(1, 9, make([]byte, 4096)); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends to a closed peer never failed")
	}
	if !errors.Is(sendErr, ErrPeerDown) {
		t.Fatalf("send to dead peer = %v, want errors.Is(_, ErrPeerDown)", sendErr)
	}

	// The failed connection must have been dropped so a later send
	// re-dials (and fails the dial, still as ErrPeerDown: the peer's
	// listener is gone too).
	if err := a.Send(1, 9, []byte("x")); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send after drop = %v, want ErrPeerDown", err)
	}
}

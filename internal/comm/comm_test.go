package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// transports returns constructors for every transport flavor.
func transports(t *testing.T, n int) map[string]Transport {
	t.Helper()
	out := map[string]Transport{
		"inproc": NewInProc(n, LatencyModel{}),
	}
	tcp, err := NewTCP(n)
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	out["tcp"] = tcp
	return out
}

func TestBasicDelivery(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			got := make(chan Message, 1)
			tr.Endpoint(1).Register(7, func(m Message) { got <- m })
			if err := tr.Endpoint(0).Send(1, 7, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			select {
			case m := <-got:
				if m.From != 0 || m.Handler != 7 || string(m.Payload) != "hello" {
					t.Fatalf("got %+v", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("timeout")
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for name, tr := range transports(t, 1) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			got := make(chan string, 1)
			tr.Endpoint(0).Register(1, func(m Message) { got <- string(m.Payload) })
			if err := tr.Endpoint(0).Send(0, 1, []byte("self")); err != nil {
				t.Fatal(err)
			}
			select {
			case s := <-got:
				if s != "self" {
					t.Fatalf("got %q", s)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("timeout")
			}
		})
	}
}

func TestPairwiseOrdering(t *testing.T) {
	const nmsg = 500
	for name, tr := range transports(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			var mu sync.Mutex
			perSource := map[NodeID][]int{}
			done := make(chan struct{})
			var count atomic.Int64
			tr.Endpoint(2).Register(1, func(m Message) {
				v := int(m.Payload[0])<<8 | int(m.Payload[1])
				mu.Lock()
				perSource[m.From] = append(perSource[m.From], v)
				mu.Unlock()
				if count.Add(1) == 2*nmsg {
					close(done)
				}
			})
			send := func(src NodeID) {
				ep := tr.Endpoint(src)
				for i := 0; i < nmsg; i++ {
					if err := ep.Send(2, 1, []byte{byte(i >> 8), byte(i)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
			go send(0)
			go send(1)
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("timeout")
			}
			mu.Lock()
			defer mu.Unlock()
			for src, seq := range perSource {
				if len(seq) != nmsg {
					t.Fatalf("source %d: %d messages", src, len(seq))
				}
				for i, v := range seq {
					if v != i {
						t.Fatalf("source %d: message %d out of order (got %d)", src, i, v)
					}
				}
			}
		})
	}
}

func TestHandlersSerializedPerEndpoint(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			var inHandler atomic.Int32
			var overlap atomic.Int32
			var count atomic.Int32
			done := make(chan struct{})
			tr.Endpoint(1).Register(1, func(m Message) {
				if inHandler.Add(1) > 1 {
					overlap.Add(1)
				}
				time.Sleep(100 * time.Microsecond)
				inHandler.Add(-1)
				if count.Add(1) == 50 {
					close(done)
				}
			})
			for i := 0; i < 50; i++ {
				if err := tr.Endpoint(0).Send(1, 1, nil); err != nil {
					t.Fatal(err)
				}
			}
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("timeout")
			}
			if overlap.Load() != 0 {
				t.Fatalf("handlers overlapped %d times", overlap.Load())
			}
		})
	}
}

func TestHandlerMaySend(t *testing.T) {
	// Ring: 0 -> 1 -> 2 -> 0, forwarded from inside handlers.
	for name, tr := range transports(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			done := make(chan int, 1)
			for i := 0; i < 3; i++ {
				i := i
				ep := tr.Endpoint(NodeID(i))
				ep.Register(1, func(m Message) {
					hops := int(m.Payload[0])
					if hops >= 30 {
						done <- hops
						return
					}
					next := NodeID((i + 1) % 3)
					if err := ep.Send(next, 1, []byte{byte(hops + 1)}); err != nil {
						t.Error(err)
					}
				})
			}
			if err := tr.Endpoint(0).Send(1, 1, []byte{0}); err != nil {
				t.Fatal(err)
			}
			select {
			case h := <-done:
				if h < 30 {
					t.Fatalf("hops = %d", h)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("timeout")
			}
		})
	}
}

func TestSendUnknownNode(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			if err := tr.Endpoint(0).Send(9, 1, nil); err == nil {
				t.Fatal("expected error for unknown node")
			}
		})
	}
}

func TestStats(t *testing.T) {
	tr := NewInProc(2, LatencyModel{})
	defer tr.Close()
	rcvd := make(chan struct{}, 10)
	tr.Endpoint(1).Register(1, func(m Message) { rcvd <- struct{}{} })
	for i := 0; i < 5; i++ {
		if err := tr.Endpoint(0).Send(1, 1, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		<-rcvd
	}
	s0 := tr.Endpoint(0).Stats()
	s1 := tr.Endpoint(1).Stats()
	if s0.MsgsSent != 5 || s0.BytesSent != 500 {
		t.Errorf("sender stats: %+v", s0)
	}
	if s1.MsgsReceived != 5 || s1.BytesReceived != 500 {
		t.Errorf("receiver stats: %+v", s1)
	}
}

func TestLatencyModelDelay(t *testing.T) {
	m := LatencyModel{Latency: 10 * time.Millisecond, BytesPerSec: 1000}
	if d := m.Delay(0); d != 10*time.Millisecond {
		t.Errorf("Delay(0) = %v", d)
	}
	if d := m.Delay(1000); d != 10*time.Millisecond+time.Second {
		t.Errorf("Delay(1000) = %v", d)
	}
	var zero LatencyModel
	if d := zero.Delay(1 << 20); d != 0 {
		t.Errorf("zero model Delay = %v", d)
	}
}

func TestLatencyModelDelaysDelivery(t *testing.T) {
	tr := NewInProc(2, LatencyModel{Latency: 30 * time.Millisecond})
	defer tr.Close()
	got := make(chan time.Time, 1)
	tr.Endpoint(1).Register(1, func(m Message) { got <- time.Now() })
	start := time.Now()
	if err := tr.Endpoint(0).Send(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if e := at.Sub(start); e < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", e)
	}
}

func TestSendAfterClose(t *testing.T) {
	tr := NewInProc(2, LatencyModel{})
	tr.Close()
	if err := tr.Endpoint(0).Send(1, 1, nil); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCloseDrainsQueued(t *testing.T) {
	tr := NewInProc(2, LatencyModel{})
	var n atomic.Int64
	tr.Endpoint(1).Register(1, func(m Message) { n.Add(1) })
	for i := 0; i < 100; i++ {
		if err := tr.Endpoint(0).Send(1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	if n.Load() != 100 {
		t.Fatalf("only %d of 100 queued messages delivered before close", n.Load())
	}
}

func TestManyNodesAllToAll(t *testing.T) {
	const n = 8
	for name, tr := range transports(t, n) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			var total atomic.Int64
			done := make(chan struct{})
			for i := 0; i < n; i++ {
				tr.Endpoint(NodeID(i)).Register(1, func(m Message) {
					if total.Add(1) == int64(n*(n-1)) {
						close(done)
					}
				})
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					if err := tr.Endpoint(NodeID(i)).Send(NodeID(j), 1, []byte(fmt.Sprintf("%d->%d", i, j))); err != nil {
						t.Fatal(err)
					}
				}
			}
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("timeout: %d delivered", total.Load())
			}
		})
	}
}

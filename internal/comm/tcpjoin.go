package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
	"mrts/internal/obs"
)

// TCPNode is one process's endpoint of an address-based TCP transport: the
// multi-process counterpart of the loopback TCPTransport. Where NewTCP
// builds all n endpoints inside one process, every TCPNode is started
// independently (usually in its own OS process) and finds the others through
// a join handshake with a well-known seed node:
//
//   - the seed (started with an empty Seed address) takes node ID 0 and owns
//     the member table;
//   - every other node dials the seed, sends a JOIN carrying its listen
//     address (and, on rejoin after a crash, the ID it wants back), and
//     receives a WELCOME with its assigned ID plus the current member table;
//   - the seed broadcasts the member table to all live members on every
//     change, stamped with a monotonically increasing membership epoch;
//   - non-seed members heartbeat to the seed on the injected clock; the seed
//     marks members that fall silent for ExpireAfter as down (a graceful
//     Close sends LEAVE so the seed doesn't have to wait for the timeout).
//
// Frames on the wire are identical to TCPTransport's (src, handler, len,
// payload, little-endian); handler IDs at or above ctrlBase are reserved for
// the membership protocol and never reach registered handlers. Sends to a
// peer that is down — or whose connection dies mid-stream and cannot be
// immediately re-dialed — fail with ErrPeerDown and back off; the connection
// is re-dialed (at the peer's current address, which may have changed across
// a restart) on a later Send.
type TCPNode struct {
	cfg    TCPNodeConfig
	clk    clock.Clock
	id     NodeID
	seed   bool
	ln     net.Listener
	stats  statCounters
	tracer atomic.Pointer[obs.Tracer]

	hmu      sync.RWMutex
	handlers map[uint32]Handler

	mu      sync.Mutex
	epoch   uint64
	members map[NodeID]*memberState
	conns   map[NodeID]*tcpConn
	inbound []net.Conn
	closed  bool

	inbox     *inbox
	done      chan struct{}
	stop      chan struct{} // closes heartbeat/expiry loops
	wg        sync.WaitGroup
	hbWG      sync.WaitGroup
	closeOnce sync.Once
}

// TCPNodeConfig configures one TCPNode.
type TCPNodeConfig struct {
	// Listen is the address to listen on, e.g. "127.0.0.1:7070" or
	// "127.0.0.1:0" for an ephemeral port (read it back with Addr).
	Listen string
	// Seed is the seed node's address. Empty means this node IS the seed
	// and takes ID 0.
	Seed string
	// WantID requests a specific node ID from the seed: a node restarting
	// after a crash passes its old ID so mobile pointers homed on it stay
	// valid. Negative asks the seed to assign the next free ID. Ignored on
	// the seed itself.
	WantID NodeID
	// Clock supplies time for heartbeats, expiry and backoff. Nil means
	// the wall clock.
	Clock clock.Clock
	// HeartbeatEvery is the interval between liveness heartbeats to the
	// seed (default 500ms).
	HeartbeatEvery time.Duration
	// ExpireAfter is how long the seed lets a member stay silent before
	// marking it down (default 5s).
	ExpireAfter time.Duration
	// RedialBackoff is the initial per-peer backoff after a failed dial or
	// a send that failed twice; it doubles per failure up to RedialMax
	// (defaults 50ms and 2s).
	RedialBackoff time.Duration
	RedialMax     time.Duration
	// OnMembers, when non-nil, is called (on the membership goroutine,
	// without internal locks held) after every membership change with the
	// new epoch and table.
	OnMembers func(epoch uint64, members []Member)
}

// Member is one row of the cluster member table.
type Member struct {
	ID   NodeID
	Addr string
	Up   bool
}

// memberState is the node-local view of one peer, including the sender-side
// redial backoff for its connection.
type memberState struct {
	addr     string
	up       bool
	lastSeen time.Time // seed only: last heartbeat/traffic time
	nextDial time.Time // no dial attempts before this instant
	backoff  time.Duration
}

// Reserved control handler IDs (never dispatched to registered handlers).
const (
	ctrlBase      uint32 = 0xFFFF0000
	ctrlJoin      uint32 = ctrlBase + 1 // payload: wantID(4) alen(2) addr
	ctrlWelcome   uint32 = ctrlBase + 2 // payload: id(4) + member table
	ctrlMembers   uint32 = ctrlBase + 3 // payload: member table
	ctrlHeartbeat uint32 = ctrlBase + 4 // payload: empty
	ctrlLeave     uint32 = ctrlBase + 5 // payload: empty
)

// anyID is the on-wire encoding of "assign me an ID".
const anyID = ^uint32(0)

const (
	defaultHeartbeat   = 500 * time.Millisecond
	defaultExpireAfter = 5 * time.Second
	defaultRedialBase  = 50 * time.Millisecond
	defaultRedialMax   = 2 * time.Second
)

// StartTCPNode starts listening, joins the cluster through the seed (unless
// this node is the seed), and begins dispatching messages.
func StartTCPNode(cfg TCPNodeConfig) (*TCPNode, error) {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = defaultHeartbeat
	}
	if cfg.ExpireAfter <= 0 {
		cfg.ExpireAfter = defaultExpireAfter
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = defaultRedialBase
	}
	if cfg.RedialMax <= 0 {
		cfg.RedialMax = defaultRedialMax
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	e := &TCPNode{
		cfg:      cfg,
		clk:      clock.Or(cfg.Clock),
		seed:     cfg.Seed == "",
		ln:       ln,
		handlers: make(map[uint32]Handler),
		members:  make(map[NodeID]*memberState),
		conns:    make(map[NodeID]*tcpConn),
		inbox:    newInbox(),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if e.seed {
		e.id = 0
		e.epoch = 1
		e.members[0] = &memberState{addr: e.Addr(), up: true, lastSeen: e.clk.Now()}
	} else if err := e.join(); err != nil {
		ln.Close()
		return nil, err
	}
	e.wg.Add(1)
	go e.acceptLoop()
	go e.dispatch()
	e.hbWG.Add(1)
	if e.seed {
		go e.expireLoop()
	} else {
		go e.heartbeatLoop()
	}
	return e, nil
}

// Addr returns the address this node actually listens on.
func (e *TCPNode) Addr() string { return e.ln.Addr().String() }

// Node implements Endpoint.
func (e *TCPNode) Node() NodeID { return e.id }

// Epoch returns the current membership epoch.
func (e *TCPNode) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Members returns the current member table, sorted by node ID.
func (e *TCPNode) Members() []Member {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.membersLocked()
}

func (e *TCPNode) membersLocked() []Member {
	ms := make([]Member, 0, len(e.members))
	for id, m := range e.members {
		ms = append(ms, Member{ID: id, Addr: m.addr, Up: m.up})
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return ms
}

// WaitMembers blocks until at least n members are up (including this node)
// or the timeout elapses.
func (e *TCPNode) WaitMembers(n int, timeout time.Duration) error {
	deadline := e.clk.Now().Add(timeout)
	for {
		up := 0
		for _, m := range e.Members() {
			if m.Up {
				up++
			}
		}
		if up >= n {
			return nil
		}
		if e.isClosed() {
			return ErrClosed
		}
		if !e.clk.Now().Before(deadline) {
			return fmt.Errorf("comm: %d/%d members up after %v", up, n, timeout)
		}
		e.clk.Sleep(5 * time.Millisecond)
	}
}

// Register implements Endpoint.
func (e *TCPNode) Register(id uint32, h Handler) {
	e.hmu.Lock()
	e.handlers[id] = h
	e.hmu.Unlock()
}

// SetTracer implements Endpoint.
func (e *TCPNode) SetTracer(tr *obs.Tracer) { e.tracer.Store(tr) }

// Stats implements Endpoint.
func (e *TCPNode) Stats() Stats { return e.stats.snapshot() }

// join runs the handshake: dial the seed on a dedicated connection, send
// JOIN, read WELCOME synchronously, install the member table.
func (e *TCPNode) join() error {
	c, err := net.Dial("tcp", e.cfg.Seed)
	if err != nil {
		return fmt.Errorf("comm: join: dial seed %s: %w", e.cfg.Seed, err)
	}
	defer c.Close()
	addr := e.Addr()
	req := make([]byte, 6+len(addr))
	want := anyID
	if e.cfg.WantID >= 0 {
		want = uint32(e.cfg.WantID)
	}
	binary.LittleEndian.PutUint32(req[0:4], want)
	binary.LittleEndian.PutUint16(req[4:6], uint16(len(addr)))
	copy(req[6:], addr)
	w := bufio.NewWriter(c)
	if err := writeFrame(w, -1, ctrlJoin, req); err != nil {
		return fmt.Errorf("comm: join: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("comm: join: %w", err)
	}
	_, handler, payload, err := readFrame(bufio.NewReader(c))
	if err != nil {
		return fmt.Errorf("comm: join: read welcome: %w", err)
	}
	if handler != ctrlWelcome || len(payload) < 4 {
		return fmt.Errorf("comm: join: unexpected reply handler %#x", handler)
	}
	id := NodeID(int32(binary.LittleEndian.Uint32(payload[0:4])))
	epoch, table, err := decodeMemberTable(payload[4:])
	if err != nil {
		return fmt.Errorf("comm: join: %w", err)
	}
	e.mu.Lock()
	e.id = id
	e.installTableLocked(epoch, table)
	e.mu.Unlock()
	return nil
}

// encodeMemberTable renders epoch(8) n(4) then n rows of
// id(4) up(1) alen(2) addr.
func encodeMemberTable(epoch uint64, ms []Member) []byte {
	size := 12
	for _, m := range ms {
		size += 7 + len(m.Addr)
	}
	buf := make([]byte, 12, size)
	binary.LittleEndian.PutUint64(buf[0:8], epoch)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(ms)))
	for _, m := range ms {
		var row [7]byte
		binary.LittleEndian.PutUint32(row[0:4], uint32(m.ID))
		if m.Up {
			row[4] = 1
		}
		binary.LittleEndian.PutUint16(row[5:7], uint16(len(m.Addr)))
		buf = append(buf, row[:]...)
		buf = append(buf, m.Addr...)
	}
	return buf
}

func decodeMemberTable(b []byte) (uint64, []Member, error) {
	if len(b) < 12 {
		return 0, nil, fmt.Errorf("short member table (%d bytes)", len(b))
	}
	epoch := binary.LittleEndian.Uint64(b[0:8])
	n := int(binary.LittleEndian.Uint32(b[8:12]))
	b = b[12:]
	if n < 0 || n > 1<<20 {
		return 0, nil, fmt.Errorf("implausible member count %d", n)
	}
	ms := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 7 {
			return 0, nil, fmt.Errorf("truncated member row %d", i)
		}
		id := NodeID(int32(binary.LittleEndian.Uint32(b[0:4])))
		up := b[4] == 1
		alen := int(binary.LittleEndian.Uint16(b[5:7]))
		b = b[7:]
		if len(b) < alen {
			return 0, nil, fmt.Errorf("truncated member addr %d", i)
		}
		ms = append(ms, Member{ID: id, Addr: string(b[:alen]), Up: up})
		b = b[alen:]
	}
	return epoch, ms, nil
}

// installTableLocked replaces the member table from a broadcast, dropping
// cached connections to peers that went down or moved address. Stale epochs
// are ignored (broadcasts can reorder across connections).
func (e *TCPNode) installTableLocked(epoch uint64, table []Member) bool {
	if epoch <= e.epoch && len(e.members) > 0 {
		return false
	}
	e.epoch = epoch
	fresh := make(map[NodeID]*memberState, len(table))
	for _, m := range table {
		old := e.members[m.ID]
		st := &memberState{addr: m.Addr, up: m.Up, lastSeen: e.clk.Now()}
		if old != nil {
			st.nextDial, st.backoff = old.nextDial, old.backoff
		}
		if m.Up {
			// A peer that is (back) up is immediately dialable.
			st.nextDial, st.backoff = time.Time{}, 0
		}
		fresh[m.ID] = st
		if c, ok := e.conns[m.ID]; ok && (!m.Up || (old != nil && old.addr != m.Addr)) {
			delete(e.conns, m.ID)
			c.c.Close()
		}
	}
	e.members = fresh
	return true
}

func (e *TCPNode) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound = append(e.inbound, c)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPNode) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		src, handler, payload, err := readFrame(br)
		if err != nil {
			return
		}
		if handler >= ctrlBase {
			if !e.handleControl(c, src, handler, payload) {
				return
			}
			continue
		}
		e.stats.msgsReceived.Add(1)
		e.stats.bytesReceived.Add(uint64(len(payload)))
		e.noteAlive(src)
		if !e.inbox.push(Message{From: src, Handler: handler, Payload: payload}) {
			return
		}
	}
}

// handleControl processes one membership-protocol frame on the reader
// goroutine of the connection it arrived on. It reports whether the
// connection should stay open.
func (e *TCPNode) handleControl(c net.Conn, src NodeID, handler uint32, payload []byte) bool {
	switch handler {
	case ctrlJoin:
		if !e.seed || len(payload) < 6 {
			return false
		}
		want := binary.LittleEndian.Uint32(payload[0:4])
		alen := int(binary.LittleEndian.Uint16(payload[4:6]))
		if len(payload) < 6+alen {
			return false
		}
		return e.admit(c, want, string(payload[6:6+alen]))
	case ctrlMembers:
		epoch, table, err := decodeMemberTable(payload)
		if err != nil {
			return false
		}
		e.mu.Lock()
		changed := e.installTableLocked(epoch, table)
		var snapshot []Member
		if changed && e.cfg.OnMembers != nil {
			snapshot = e.membersLocked()
		}
		e.mu.Unlock()
		if snapshot != nil {
			e.cfg.OnMembers(epoch, snapshot)
		}
		return true
	case ctrlHeartbeat:
		if e.seed {
			e.noteAlive(src)
		}
		return true
	case ctrlLeave:
		if e.seed {
			e.markDown(src)
		}
		return true
	default:
		return true // unknown control frame: ignore, stream still framed
	}
}

// admit (seed only) assigns an ID to a joiner, answers WELCOME on the same
// connection, and broadcasts the new table.
func (e *TCPNode) admit(c net.Conn, want uint32, addr string) bool {
	e.mu.Lock()
	var id NodeID
	if want != anyID {
		id = NodeID(int32(want))
		if m, ok := e.members[id]; ok && m.up && m.addr != addr {
			e.mu.Unlock()
			return false // ID is taken by a live member elsewhere
		}
	} else {
		for mid := range e.members {
			if mid >= id {
				id = mid + 1
			}
		}
	}
	e.members[id] = &memberState{addr: addr, up: true, lastSeen: e.clk.Now()}
	e.epoch++
	epoch := e.epoch
	table := e.membersLocked()
	e.mu.Unlock()

	welcome := make([]byte, 4)
	binary.LittleEndian.PutUint32(welcome, uint32(id))
	welcome = append(welcome, encodeMemberTable(epoch, table)...)
	w := bufio.NewWriter(c)
	if err := writeFrame(w, e.id, ctrlWelcome, welcome); err != nil {
		return false
	}
	if err := w.Flush(); err != nil {
		return false
	}
	e.broadcastMembers(epoch, table)
	if e.cfg.OnMembers != nil {
		e.cfg.OnMembers(epoch, table)
	}
	return true
}

// broadcastMembers pushes the member table to every other up member.
func (e *TCPNode) broadcastMembers(epoch uint64, table []Member) {
	payload := encodeMemberTable(epoch, table)
	for _, m := range table {
		if m.ID == e.id || !m.Up {
			continue
		}
		_ = e.sendRaw(m.ID, ctrlMembers, payload) // down peers learn on rejoin
	}
}

// noteAlive records traffic from a member (seed: refreshes its expiry; a
// down member that speaks again is revived and re-announced).
func (e *TCPNode) noteAlive(src NodeID) {
	if !e.seed {
		return
	}
	e.mu.Lock()
	m, ok := e.members[src]
	if !ok {
		e.mu.Unlock()
		return
	}
	m.lastSeen = e.clk.Now()
	revived := !m.up
	if revived {
		m.up = true
		e.epoch++
	}
	epoch := e.epoch
	table := e.membersLocked()
	e.mu.Unlock()
	if revived {
		e.broadcastMembers(epoch, table)
		if e.cfg.OnMembers != nil {
			e.cfg.OnMembers(epoch, table)
		}
	}
}

// markDown (seed only) marks a member down and broadcasts the change.
func (e *TCPNode) markDown(id NodeID) {
	e.mu.Lock()
	m, ok := e.members[id]
	if !ok || !m.up {
		e.mu.Unlock()
		return
	}
	m.up = false
	e.epoch++
	epoch := e.epoch
	table := e.membersLocked()
	if c, ok := e.conns[id]; ok {
		delete(e.conns, id)
		c.c.Close()
	}
	e.mu.Unlock()
	e.broadcastMembers(epoch, table)
	if e.cfg.OnMembers != nil {
		e.cfg.OnMembers(epoch, table)
	}
}

// heartbeatLoop (non-seed) tells the seed this node is alive.
func (e *TCPNode) heartbeatLoop() {
	defer e.hbWG.Done()
	for {
		t := e.clk.NewTimer(e.cfg.HeartbeatEvery)
		select {
		case <-t.C:
		case <-e.stop:
			t.Stop()
			return
		}
		_ = e.sendRaw(0, ctrlHeartbeat, nil) // seed is node 0 by construction
	}
}

// expireLoop (seed) sweeps for members that fell silent.
func (e *TCPNode) expireLoop() {
	defer e.hbWG.Done()
	for {
		t := e.clk.NewTimer(e.cfg.ExpireAfter / 4)
		select {
		case <-t.C:
		case <-e.stop:
			t.Stop()
			return
		}
		now := e.clk.Now()
		var expired []NodeID
		e.mu.Lock()
		for id, m := range e.members {
			if id != e.id && m.up && now.Sub(m.lastSeen) > e.cfg.ExpireAfter {
				expired = append(expired, id)
			}
		}
		e.mu.Unlock()
		for _, id := range expired {
			e.markDown(id)
		}
	}
}

// Send implements Endpoint.
func (e *TCPNode) Send(to NodeID, handler uint32, payload []byte) error {
	if handler >= ctrlBase {
		return fmt.Errorf("comm: handler %#x is reserved for the membership protocol", handler)
	}
	if e.isClosed() {
		return ErrClosed
	}
	if to == e.id {
		e.stats.msgsSent.Add(1)
		e.stats.bytesSent.Add(uint64(len(payload)))
		e.stats.msgsReceived.Add(1)
		e.stats.bytesReceived.Add(uint64(len(payload)))
		if !e.inbox.push(Message{From: e.id, Handler: handler, Payload: payload}) {
			return ErrClosed
		}
		e.tracer.Load().Emit(obs.KindCommSend, uint64(handler), int64(len(payload)))
		return nil
	}
	if err := e.sendRaw(to, handler, payload); err != nil {
		return err
	}
	e.stats.msgsSent.Add(1)
	e.stats.bytesSent.Add(uint64(len(payload)))
	e.tracer.Load().Emit(obs.KindCommSend, uint64(handler), int64(len(payload)))
	return nil
}

// SendBuf implements BufSender; see tcpEndpoint.SendBuf for the contract.
func (e *TCPNode) SendBuf(to NodeID, handler uint32, payload []byte) error {
	err := e.Send(to, handler, payload)
	if to != e.id {
		bufpool.Put(payload)
	}
	return err
}

// sendRaw delivers one frame to a remote member: resolve its address, dial
// if needed (respecting the per-peer backoff), write, and on a mid-stream
// failure drop the socket and retry once on a fresh dial — the peer may
// have restarted at the same or a new address, in which case the first
// cached connection is stale but the peer itself is healthy. A second
// failure arms the backoff and reports the peer down.
func (e *TCPNode) sendRaw(to NodeID, handler uint32, payload []byte) error {
	for attempt := 0; ; attempt++ {
		tc, fresh, err := e.connTo(to)
		if err != nil {
			return err
		}
		tc.mu.Lock()
		err = writeFrame(tc.w, e.id, handler, payload)
		if err == nil {
			err = tc.w.Flush()
		}
		tc.mu.Unlock()
		if err == nil {
			e.resetBackoff(to)
			return nil
		}
		e.dropPeerConn(to, tc)
		if attempt > 0 || fresh {
			e.armBackoff(to)
			return fmt.Errorf("comm: send to node %d: %v: %w", to, err, ErrPeerDown)
		}
	}
}

// connTo returns the cached connection to a peer, dialing its current
// address if none is cached. fresh reports that this call dialed.
func (e *TCPNode) connTo(to NodeID) (tc *tcpConn, fresh bool, err error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, false, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, false, nil
	}
	m, ok := e.members[to]
	if !ok {
		e.mu.Unlock()
		return nil, false, fmt.Errorf("comm: send to unknown node %d: %w", to, ErrPeerDown)
	}
	if !m.up {
		e.mu.Unlock()
		return nil, false, fmt.Errorf("comm: node %d is down: %w", to, ErrPeerDown)
	}
	if !m.nextDial.IsZero() && e.clk.Now().Before(m.nextDial) {
		e.mu.Unlock()
		return nil, false, fmt.Errorf("comm: node %d in dial backoff: %w", to, ErrPeerDown)
	}
	addr := m.addr
	e.mu.Unlock()

	// Dial outside the lock: a slow peer must not stall sends to others.
	c, derr := net.Dial("tcp", addr)
	if derr != nil {
		e.armBackoff(to)
		return nil, false, fmt.Errorf("comm: dial node %d (%s): %v: %w", to, addr, derr, ErrPeerDown)
	}
	tc = &tcpConn{w: bufio.NewWriter(c), c: c}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, false, ErrClosed
	}
	if prev, ok := e.conns[to]; ok {
		// A concurrent Send won the dial race; use its connection.
		e.mu.Unlock()
		c.Close()
		return prev, false, nil
	}
	e.conns[to] = tc
	e.mu.Unlock()
	return tc, true, nil
}

func (e *TCPNode) dropPeerConn(to NodeID, tc *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == tc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	tc.c.Close()
}

func (e *TCPNode) armBackoff(to NodeID) {
	e.mu.Lock()
	if m, ok := e.members[to]; ok {
		if m.backoff <= 0 {
			m.backoff = e.cfg.RedialBackoff
		} else if m.backoff < e.cfg.RedialMax {
			m.backoff *= 2
			if m.backoff > e.cfg.RedialMax {
				m.backoff = e.cfg.RedialMax
			}
		}
		m.nextDial = e.clk.Now().Add(m.backoff)
	}
	e.mu.Unlock()
}

func (e *TCPNode) resetBackoff(to NodeID) {
	e.mu.Lock()
	if m, ok := e.members[to]; ok && m.backoff != 0 {
		m.backoff = 0
		m.nextDial = time.Time{}
	}
	e.mu.Unlock()
}

func (e *TCPNode) dispatch() {
	defer close(e.done)
	for {
		m, ok := e.inbox.pop()
		if !ok {
			return
		}
		e.hmu.RLock()
		h := e.handlers[m.Handler]
		e.hmu.RUnlock()
		if h != nil {
			sp := e.tracer.Load().Start(obs.KindCommDeliver, uint64(m.Handler))
			h(m)
			sp.End(int64(len(m.Payload)))
		}
	}
}

func (e *TCPNode) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close implements Endpoint: announce LEAVE to the seed (best effort), stop
// the liveness loops, close every connection and drain the dispatcher.
func (e *TCPNode) Close() error {
	e.shutdown(true)
	return nil
}

// abort tears the node down without the LEAVE announcement — test hook for
// simulating a crash that the seed must detect by heartbeat expiry.
func (e *TCPNode) abort() { e.shutdown(false) }

func (e *TCPNode) shutdown(announce bool) {
	e.closeOnce.Do(func() {
		if announce && !e.seed {
			_ = e.sendRaw(0, ctrlLeave, nil)
		}
		close(e.stop)
		e.hbWG.Wait()
		e.mu.Lock()
		e.closed = true
		for _, c := range e.conns {
			c.c.Close()
		}
		for _, c := range e.inbound {
			c.Close()
		}
		e.mu.Unlock()
		e.ln.Close()
		e.wg.Wait()
		e.inbox.close()
	})
	<-e.done
}

// Interface checks.
var (
	_ Endpoint  = (*TCPNode)(nil)
	_ BufSender = (*TCPNode)(nil)
)

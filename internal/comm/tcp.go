package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"mrts/internal/obs"
)

// TCPTransport connects n endpoints over real loopback TCP sockets: one
// listener per endpoint, one lazily-dialed connection per ordered pair.
// Frames are length-prefixed: src(4) handler(4) len(4) payload.
//
// It exists to demonstrate that the MRTS control layer runs unchanged over a
// real network substrate; the simulated cluster uses InProc.
type TCPTransport struct {
	eps []*tcpEndpoint
}

type tcpEndpoint struct {
	id     NodeID
	tr     *TCPTransport
	ln     net.Listener
	stats  statCounters
	tracer atomic.Pointer[obs.Tracer]

	hmu      sync.RWMutex
	handlers map[uint32]Handler

	cmu     sync.Mutex
	conns   map[NodeID]*tcpConn
	inbound []net.Conn // accepted connections, closed on shutdown

	inbox  *inbox
	done   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// maxFramePayload bounds the claimed payload length of one frame: a corrupt
// or malicious frame could otherwise demand a 4 GiB allocation. Oversized
// frames drop the connection (the stream is unrecoverable once misframed).
const maxFramePayload = 1 << 28

// frameHdrSize is the fixed frame header: src(4) handler(4) len(4).
const frameHdrSize = 12

// writeFrame writes one length-prefixed frame. The caller serializes access
// to w and flushes it.
func writeFrame(w *bufio.Writer, src NodeID, handler uint32, payload []byte) error {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(src))
	binary.LittleEndian.PutUint32(hdr[4:8], handler)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) (src NodeID, handler uint32, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	src = NodeID(int32(binary.LittleEndian.Uint32(hdr[0:4])))
	handler = binary.LittleEndian.Uint32(hdr[4:8])
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("comm: frame payload %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return src, handler, payload, nil
}

// inbox is an unbounded FIFO used to serialize handler execution on one
// dispatcher goroutine regardless of how many reader connections feed it.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(m Message) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false
	}
	ib.queue = append(ib.queue, m)
	ib.cond.Signal()
	return true
}

func (ib *inbox) pop() (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.queue) == 0 && !ib.closed {
		ib.cond.Wait()
	}
	if len(ib.queue) == 0 {
		return Message{}, false
	}
	m := ib.queue[0]
	ib.queue = ib.queue[1:]
	return m, true
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// NewTCP returns a transport with n endpoints listening on ephemeral
// loopback ports.
func NewTCP(n int) (*TCPTransport, error) {
	tr := &TCPTransport{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.Close()
			return nil, err
		}
		ep := &tcpEndpoint{
			id:       NodeID(i),
			tr:       tr,
			ln:       ln,
			handlers: make(map[uint32]Handler),
			conns:    make(map[NodeID]*tcpConn),
			inbox:    newInbox(),
			done:     make(chan struct{}),
		}
		tr.eps = append(tr.eps, ep)
	}
	for _, ep := range tr.eps {
		ep.wg.Add(1)
		go ep.acceptLoop()
		go ep.dispatch()
	}
	return tr, nil
}

// NumNodes returns the number of endpoints.
func (t *TCPTransport) NumNodes() int { return len(t.eps) }

// Endpoint returns endpoint n.
func (t *TCPTransport) Endpoint(n NodeID) Endpoint { return t.eps[n] }

// Close closes every endpoint.
func (t *TCPTransport) Close() error {
	var first error
	for _, ep := range t.eps {
		if ep == nil {
			continue
		}
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (e *tcpEndpoint) Node() NodeID { return e.id }

func (e *tcpEndpoint) Register(id uint32, h Handler) {
	e.hmu.Lock()
	e.handlers[id] = h
	e.hmu.Unlock()
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.cmu.Lock()
		if e.closed {
			e.cmu.Unlock()
			c.Close()
			return
		}
		e.inbound = append(e.inbound, c)
		e.cmu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		src, handler, payload, err := readFrame(br)
		if err != nil {
			return
		}
		e.stats.msgsReceived.Add(1)
		e.stats.bytesReceived.Add(uint64(len(payload)))
		if !e.inbox.push(Message{From: src, Handler: handler, Payload: payload}) {
			return
		}
	}
}

func (e *tcpEndpoint) dispatch() {
	defer close(e.done)
	for {
		m, ok := e.inbox.pop()
		if !ok {
			return
		}
		e.hmu.RLock()
		h := e.handlers[m.Handler]
		e.hmu.RUnlock()
		if h != nil {
			sp := e.tracer.Load().Start(obs.KindCommDeliver, uint64(m.Handler))
			h(m)
			sp.End(int64(len(m.Payload)))
		}
	}
}

// SetTracer implements Endpoint.
func (e *tcpEndpoint) SetTracer(tr *obs.Tracer) { e.tracer.Store(tr) }

func (e *tcpEndpoint) connTo(to NodeID) (*tcpConn, error) {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	if c, ok := e.conns[to]; ok {
		return c, nil
	}
	if int(to) < 0 || int(to) >= len(e.tr.eps) {
		return nil, fmt.Errorf("comm: send to unknown node %d", to)
	}
	addr := e.tr.eps[to].ln.Addr().String()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dial node %d: %v: %w", to, err, ErrPeerDown)
	}
	tc := &tcpConn{w: bufio.NewWriter(c), c: c}
	e.conns[to] = tc
	return tc, nil
}

// dropConn discards the cached connection to a peer if it is still the one
// that just failed, so the next Send re-dials instead of reusing a socket
// known to be dead.
func (e *tcpEndpoint) dropConn(to NodeID, tc *tcpConn) {
	e.cmu.Lock()
	if e.conns[to] == tc {
		delete(e.conns, to)
	}
	e.cmu.Unlock()
	tc.c.Close()
}

func (e *tcpEndpoint) Send(to NodeID, handler uint32, payload []byte) error {
	if e.isClosed() {
		return ErrClosed
	}
	if to == e.id {
		// Local fast path: no socket round-trip.
		e.stats.msgsSent.Add(1)
		e.stats.bytesSent.Add(uint64(len(payload)))
		e.stats.msgsReceived.Add(1)
		e.stats.bytesReceived.Add(uint64(len(payload)))
		if !e.inbox.push(Message{From: e.id, Handler: handler, Payload: payload}) {
			return ErrClosed
		}
		e.tracer.Load().Emit(obs.KindCommSend, uint64(handler), int64(len(payload)))
		return nil
	}
	tc, err := e.connTo(to)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	err = writeFrame(tc.w, e.id, handler, payload)
	if err == nil {
		err = tc.w.Flush()
	}
	tc.mu.Unlock()
	if err != nil {
		// The stream is misframed or the peer died mid-connection: drop
		// the socket so a later Send re-dials, and surface a typed,
		// retryable error instead of the raw io error.
		e.dropConn(to, tc)
		return fmt.Errorf("comm: send to node %d: %v: %w", to, err, ErrPeerDown)
	}
	e.stats.msgsSent.Add(1)
	e.stats.bytesSent.Add(uint64(len(payload)))
	e.tracer.Load().Emit(obs.KindCommSend, uint64(handler), int64(len(payload)))
	return nil
}

func (e *tcpEndpoint) isClosed() bool {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	return e.closed
}

func (e *tcpEndpoint) Close() error {
	e.cmu.Lock()
	if e.closed {
		e.cmu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	for _, c := range e.conns {
		c.c.Close()
	}
	// Also close accepted connections: their readers would otherwise wait
	// for the *peer* endpoints to close their dial side, and peers close
	// after us — a circular wait across the transport.
	for _, c := range e.inbound {
		c.Close()
	}
	e.cmu.Unlock()
	e.ln.Close()
	e.wg.Wait()     // all readers finished feeding the inbox
	e.inbox.close() // dispatcher drains what remains, then exits
	<-e.done
	return nil
}

func (e *tcpEndpoint) Stats() Stats { return e.stats.snapshot() }

package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fastCfg returns a config with intervals short enough for wall-clock tests.
// Real sockets need the real clock: a Virtual clock only advances when all
// goroutines quiesce, which never happens while kernel I/O is in flight.
func fastCfg(seed string, want NodeID) TCPNodeConfig {
	return TCPNodeConfig{
		Listen:         "127.0.0.1:0",
		Seed:           seed,
		WantID:         want,
		HeartbeatEvery: 20 * time.Millisecond,
		ExpireAfter:    150 * time.Millisecond,
		RedialBackoff:  5 * time.Millisecond,
		RedialMax:      50 * time.Millisecond,
	}
}

func startCluster(t *testing.T, n int) []*TCPNode {
	t.Helper()
	seed, err := StartTCPNode(fastCfg("", -1))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*TCPNode{seed}
	for i := 1; i < n; i++ {
		nd, err := StartTCPNode(fastCfg(seed.Addr(), -1))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		if err := nd.WaitMembers(n, 5*time.Second); err != nil {
			t.Fatalf("node %d: %v", nd.Node(), err)
		}
	}
	return nodes
}

func closeAll(nodes []*TCPNode) {
	for _, nd := range nodes {
		nd.Close()
	}
}

func TestJoinAssignsSequentialIDs(t *testing.T) {
	nodes := startCluster(t, 3)
	defer closeAll(nodes)
	for i, nd := range nodes {
		if nd.Node() != NodeID(i) {
			t.Fatalf("node %d got ID %d", i, nd.Node())
		}
	}
	// Every node sees the same 3-member table at the same epoch.
	for _, nd := range nodes {
		ms := nd.Members()
		if len(ms) != 3 {
			t.Fatalf("node %d sees %d members", nd.Node(), len(ms))
		}
		for _, m := range ms {
			if !m.Up {
				t.Fatalf("node %d sees member %d down", nd.Node(), m.ID)
			}
		}
	}
}

func TestAllPairsDelivery(t *testing.T) {
	const n = 3
	nodes := startCluster(t, n)
	defer closeAll(nodes)

	var mu sync.Mutex
	got := make(map[NodeID][]NodeID) // receiver -> senders seen
	var wg sync.WaitGroup
	wg.Add(n * (n - 1))
	for _, nd := range nodes {
		to := nd.Node()
		nd.Register(7, func(m Message) {
			mu.Lock()
			got[to] = append(got[to], m.From)
			mu.Unlock()
			wg.Done()
		})
	}
	for _, nd := range nodes {
		for peer := 0; peer < n; peer++ {
			if NodeID(peer) == nd.Node() {
				continue
			}
			if err := nd.Send(NodeID(peer), 7, []byte("hi")); err != nil {
				t.Fatalf("send %d->%d: %v", nd.Node(), peer, err)
			}
		}
	}
	waitDone(t, &wg, 5*time.Second)
	mu.Lock()
	defer mu.Unlock()
	for _, nd := range nodes {
		if len(got[nd.Node()]) != n-1 {
			t.Fatalf("node %d received %d messages, want %d", nd.Node(), len(got[nd.Node()]), n-1)
		}
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out waiting for deliveries")
	}
}

// A graceful Close announces LEAVE: peers see the member go down without
// waiting for heartbeat expiry, and sends to it fail typed.
func TestLeaveMarksMemberDown(t *testing.T) {
	nodes := startCluster(t, 3)
	defer closeAll(nodes[:2])
	nodes[2].Close()

	if err := waitMemberState(nodes[1], 2, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Send(2, 7, []byte("x")); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to departed member = %v, want ErrPeerDown", err)
	}
}

// A silent crash (no LEAVE) is detected by the seed's heartbeat expiry.
func TestHeartbeatExpiryDetectsSilentCrash(t *testing.T) {
	nodes := startCluster(t, 3)
	defer closeAll(nodes[:2])
	nodes[2].abort() // dies without announcing

	if err := waitMemberState(nodes[0], 2, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := waitMemberState(nodes[1], 2, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// A node that rejoins with WantID after dying gets its old ID back — at a
// new address — and traffic to it resumes, even from peers holding stale
// dead connections.
func TestRejoinSameIDNewAddress(t *testing.T) {
	nodes := startCluster(t, 3)
	defer closeAll(nodes[:2])

	// Warm a connection 1->2 so node 1 holds a stale socket afterwards.
	nodes[2].Register(7, func(Message) {})
	if err := nodes[1].Send(2, 7, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	nodes[2].Close()
	if err := waitMemberState(nodes[1], 2, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	reborn, err := StartTCPNode(fastCfg(nodes[0].Addr(), 2))
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if reborn.Node() != 2 {
		t.Fatalf("rejoin assigned ID %d, want 2", reborn.Node())
	}
	var wg sync.WaitGroup
	wg.Add(1)
	reborn.Register(7, func(m Message) { wg.Done() })
	if err := waitMemberState(nodes[1], 2, true, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The member table's new address replaced the stale connection; the
	// send may need one retry while the revival broadcast settles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := nodes[1].Send(2, 7, []byte("again")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send to rejoined member kept failing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitDone(t, &wg, 5*time.Second)

	if reborn.Epoch() == 0 {
		t.Fatal("rejoined node has no epoch")
	}
}

// Membership epochs only move forward, and each change bumps them.
func TestEpochMonotonic(t *testing.T) {
	seed, err := StartTCPNode(fastCfg("", -1))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	e1 := seed.Epoch()
	n1, err := StartTCPNode(fastCfg(seed.Addr(), -1))
	if err != nil {
		t.Fatal(err)
	}
	e2 := seed.Epoch()
	if e2 <= e1 {
		t.Fatalf("epoch did not advance on join: %d -> %d", e1, e2)
	}
	n1.Close()
	if err := waitMemberState(seed, 1, false, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if e3 := seed.Epoch(); e3 <= e2 {
		t.Fatalf("epoch did not advance on leave: %d -> %d", e2, e3)
	}
}

func waitMemberState(nd *TCPNode, id NodeID, up bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		for _, m := range nd.Members() {
			if m.ID == id && m.Up == up {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return errors.New("timed out waiting for member state change")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
	"mrts/internal/obs"
)

// LatencyModel describes the simulated network cost of a message. The
// delivery of a message of s bytes is delayed by Latency + s/BytesPerSec
// relative to its send time. A zero model delivers immediately.
//
// The model restores the communication-cost term that the MRTS must overlap
// with computation and disk I/O; without it, an in-process "network" would
// be unrealistically free.
type LatencyModel struct {
	Latency     time.Duration
	BytesPerSec float64
}

// Delay returns the injected delivery delay for a message of size bytes.
func (m LatencyModel) Delay(size int) time.Duration {
	d := m.Latency
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(size) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// item is a queued in-process message with its earliest delivery time.
// pooled items carry a bufpool payload the dispatcher recycles after the
// handler returns.
type item struct {
	msg       Message
	deliverAt time.Time
	pooled    bool
}

// inprocEndpoint delivers messages through an unbounded in-memory inbox. An
// unbounded queue is deliberate: bounded inboxes can deadlock an
// active-message system when handlers themselves send (a cycle of full
// inboxes); the paper's runtime queues application messages without bound
// and relies on the out-of-core layer for memory pressure.
type inprocEndpoint struct {
	id     NodeID
	tr     *InProcTransport
	stats  statCounters
	tracer atomic.Pointer[obs.Tracer]

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []item
	closed   bool
	done     chan struct{}
	handlers map[uint32]Handler
	hmu      sync.RWMutex
}

// InProcTransport connects n endpoints inside one process.
type InProcTransport struct {
	eps   []*inprocEndpoint
	model LatencyModel
	clk   clock.Clock
}

// NewInProc returns an in-process transport with n endpoints and the given
// latency model, timed on the wall clock.
func NewInProc(n int, model LatencyModel) *InProcTransport {
	return NewInProcClock(n, model, nil)
}

// NewInProcClock is NewInProc with an injected clock (nil means the wall
// clock). Delivery delays from the latency model elapse on that clock, so a
// virtual clock makes the modeled network cost free in wall time.
func NewInProcClock(n int, model LatencyModel, clk clock.Clock) *InProcTransport {
	tr := &InProcTransport{model: model, clk: clock.Or(clk)}
	for i := 0; i < n; i++ {
		ep := &inprocEndpoint{
			id:       NodeID(i),
			tr:       tr,
			done:     make(chan struct{}),
			handlers: make(map[uint32]Handler),
		}
		ep.cond = sync.NewCond(&ep.mu)
		tr.eps = append(tr.eps, ep)
	}
	for _, ep := range tr.eps {
		go ep.dispatch()
	}
	return tr
}

// NumNodes returns the number of endpoints.
func (t *InProcTransport) NumNodes() int { return len(t.eps) }

// Endpoint returns endpoint n.
func (t *InProcTransport) Endpoint(n NodeID) Endpoint { return t.eps[n] }

// Close closes all endpoints, draining their queues.
func (t *InProcTransport) Close() error {
	for _, ep := range t.eps {
		if err := ep.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (e *inprocEndpoint) Node() NodeID { return e.id }

func (e *inprocEndpoint) Register(id uint32, h Handler) {
	e.hmu.Lock()
	e.handlers[id] = h
	e.hmu.Unlock()
}

func (e *inprocEndpoint) Send(to NodeID, handler uint32, payload []byte) error {
	return e.send(to, handler, payload, false)
}

func (e *inprocEndpoint) send(to NodeID, handler uint32, payload []byte, pooled bool) error {
	if int(to) < 0 || int(to) >= len(e.tr.eps) {
		return fmt.Errorf("comm: send to unknown node %d", to)
	}
	dst := e.tr.eps[to]
	it := item{
		msg:       Message{From: e.id, Handler: handler, Payload: payload},
		deliverAt: e.tr.clk.Now().Add(e.tr.model.Delay(len(payload))),
		pooled:    pooled,
	}
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return ErrClosed
	}
	dst.queue = append(dst.queue, it)
	dst.cond.Signal()
	dst.mu.Unlock()
	e.stats.msgsSent.Add(1)
	e.stats.bytesSent.Add(uint64(len(payload)))
	e.tracer.Load().Emit(obs.KindCommSend, uint64(handler), int64(len(payload)))
	return nil
}

func (e *inprocEndpoint) dispatch() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		it := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		if d := it.deliverAt.Sub(e.tr.clk.Now()); d > 0 {
			e.tr.clk.Sleep(d)
		}
		e.hmu.RLock()
		h := e.handlers[it.msg.Handler]
		e.hmu.RUnlock()
		e.stats.msgsReceived.Add(1)
		e.stats.bytesReceived.Add(uint64(len(it.msg.Payload)))
		if h != nil {
			sp := e.tracer.Load().Start(obs.KindCommDeliver, uint64(it.msg.Handler))
			h(it.msg)
			sp.End(int64(len(it.msg.Payload)))
		}
		if it.pooled {
			bufpool.Put(it.msg.Payload)
		}
	}
}

// SetTracer implements Endpoint.
func (e *inprocEndpoint) SetTracer(tr *obs.Tracer) { e.tracer.Store(tr) }

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.done
	return nil
}

func (e *inprocEndpoint) Stats() Stats { return e.stats.snapshot() }

// Package comm provides one-sided active-message transports between the
// nodes of a (simulated or real) cluster. It is the stand-in for the ARMCI
// one-sided communication library the paper's MRTS builds on: a sender
// deposits a message (handler ID + payload) at a destination node without
// the receiver posting a receive; the destination runs the registered
// handler for it.
//
// Two transports are provided:
//
//   - InProc: N endpoints inside one process, with a configurable
//     latency/bandwidth model, used by the simulated cluster;
//   - TCP: endpoints connected over real loopback TCP sockets.
//
// Delivery guarantees match the paper: message order is preserved between
// every pair of endpoints; no ordering holds across pairs. Handlers for one
// endpoint run on a single dispatcher goroutine, so they never run
// concurrently with each other.
package comm

import (
	"errors"
	"sync/atomic"

	"mrts/internal/obs"
)

// NodeID identifies a node.
type NodeID int32

// Message is a delivered active message.
type Message struct {
	From    NodeID
	Handler uint32
	Payload []byte
}

// Handler processes an incoming active message on the receiving node's
// dispatcher goroutine. The payload is owned by the handler.
type Handler func(Message)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("comm: endpoint closed")

// ErrPeerDown is returned (wrapped) by Send when the destination peer is
// unreachable: its connection died mid-stream, a dial failed, or the
// membership layer marked it down. It is retryable — transports drop the
// broken connection and re-dial on a later Send — so callers should treat
// it like a transient storage error, not a permanent one.
var ErrPeerDown = errors.New("comm: peer down")

// Endpoint is one node's attachment to a transport.
type Endpoint interface {
	// Node returns this endpoint's ID.
	Node() NodeID
	// Send delivers a one-sided message to the destination node. It is
	// asynchronous and safe for concurrent use. The payload is not copied
	// for in-process transports; the caller must not mutate it afterwards.
	Send(to NodeID, handler uint32, payload []byte) error
	// Register installs the handler for messages with the given ID. All
	// registrations must happen before traffic starts.
	Register(id uint32, h Handler)
	// Close stops the dispatcher after draining already-queued messages.
	Close() error
	// Stats returns a snapshot of this endpoint's counters.
	Stats() Stats
	// SetTracer installs a structured event tracer: sends are recorded as
	// comm.send instants, handler dispatches as comm.deliver spans. A nil
	// tracer (the default) disables recording. Safe to call at any time.
	SetTracer(tr *obs.Tracer)
}

// Transport wires a set of endpoints together.
type Transport interface {
	Endpoint(n NodeID) Endpoint
	NumNodes() int
	// Close closes every endpoint.
	Close() error
}

// Stats are per-endpoint counters.
type Stats struct {
	MsgsSent      uint64
	MsgsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
}

type statCounters struct {
	msgsSent      atomic.Uint64
	msgsReceived  atomic.Uint64
	bytesSent     atomic.Uint64
	bytesReceived atomic.Uint64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		MsgsSent:      c.msgsSent.Load(),
		MsgsReceived:  c.msgsReceived.Load(),
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesReceived.Load(),
	}
}

package comm

import "mrts/internal/bufpool"

// BufSender is the pooled-payload send path, implemented by endpoints that
// can recycle a bufpool buffer once the message no longer needs it (after
// the receiving handler returns for in-process delivery, after the frame is
// flushed for sockets).
//
// SendBuf takes ownership of payload unconditionally: whether it returns nil
// or an error, the caller must not touch the buffer again. It is only safe
// for messages whose handler does not retain the payload past its return —
// the remote-memory protocol's request/response handlers qualify; general
// application messages should keep using Send.
type BufSender interface {
	SendBuf(to NodeID, handler uint32, payload []byte) error
}

// SendPooled sends payload (a bufpool buffer owned by the caller) through
// ep's pooled path when it has one, falling back to a plain Send where the
// buffer is simply never recycled (dropping to the GC is always safe).
// Either way, ownership transfers: the caller must not touch payload after
// the call.
func SendPooled(ep Endpoint, to NodeID, handler uint32, payload []byte) error {
	if bs, ok := ep.(BufSender); ok {
		return bs.SendBuf(to, handler, payload)
	}
	return ep.Send(to, handler, payload)
}

// SendBuf implements BufSender: the payload rides the normal inbox and is
// recycled on the dispatcher after its handler returns (Close drains the
// queue through the same path, so nothing is stranded).
func (e *inprocEndpoint) SendBuf(to NodeID, handler uint32, payload []byte) error {
	if err := e.send(to, handler, payload, true); err != nil {
		bufpool.Put(payload)
		return err
	}
	return nil
}

// SendBuf implements BufSender. On the socket path the frame is fully
// buffered+flushed inside Send, so the payload is recycled as soon as Send
// returns. The local fast path enqueues the payload itself into the inbox
// with no pooled marker, so there the buffer is dropped to the GC instead —
// correct, just not recycled.
func (e *tcpEndpoint) SendBuf(to NodeID, handler uint32, payload []byte) error {
	err := e.Send(to, handler, payload)
	if to != e.id {
		bufpool.Put(payload)
	}
	return err
}

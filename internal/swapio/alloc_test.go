package swapio

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"

	"mrts/internal/bufpool"
	"mrts/internal/storage"
)

// The encode/write stage — encode into a pooled writer, detach, hand the
// blob to the store via the ownership-transfer path — must be allocation-free
// once the pools are warm. This drives the scheduler's own execute path with
// a reused request, exactly as a worker does.
func TestStoreStageSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	st := storage.NewMem()
	s := New(st, Config{Workers: 1})
	defer s.Close()

	payload := bytes.Repeat([]byte{0x5A}, 4096)
	var lastErr error
	encode := func() ([]byte, error) {
		w := bufpool.GetWriter(len(payload))
		w.Write(payload)
		blob := w.Detach()
		bufpool.PutWriter(w)
		return blob, nil
	}
	done := func(n int, err error) {
		if err != nil {
			lastErr = err
		}
	}
	r := &request{op: opStore, key: "alloc-store", class: Write, encode: encode, done: done}

	for i := 0; i < 16; i++ { // warm the pools and the store's map slot
		s.execute(r)
	}
	allocs := testing.AllocsPerRun(200, func() { s.execute(r) })
	if lastErr != nil {
		t.Fatalf("store stage error: %v", lastErr)
	}
	if allocs > 0 {
		t.Fatalf("encode/write stage allocates %.1f objects per op, want 0", allocs)
	}
}

// The read/decode stage — pooled read buffer from the store, decode through a
// reused reader inside the done callback, buffer back to the arena — must
// likewise be allocation-free in the steady state.
func TestLoadStageSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	st := storage.NewMem()
	payload := bytes.Repeat([]byte{0xA5}, 4096)
	if err := st.Put("alloc-load", payload); err != nil {
		t.Fatal(err)
	}
	s := New(st, Config{Workers: 1})
	defer s.Close()

	var reader bytes.Reader
	scratch := make([]byte, len(payload))
	var lastErr error
	done := func(blob []byte, err error) {
		if err != nil {
			lastErr = err
			return
		}
		reader.Reset(blob)
		if _, err := io.ReadFull(&reader, scratch); err != nil {
			lastErr = err
		}
		reader.Reset(nil)
	}
	dones := []func([]byte, error){done}
	r := &request{op: opLoad, key: "alloc-load", class: Demand}

	run := func() {
		r.dones = dones // execute nils this out; reuse the same backing slice
		s.execute(r)
	}
	for i := 0; i < 16; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(200, run)
	if lastErr != nil {
		t.Fatalf("load stage error: %v", lastErr)
	}
	if allocs > 0 {
		t.Fatalf("read/decode stage allocates %.1f objects per op, want 0", allocs)
	}
}

// Poison hammer: with buffer poisoning on, any read of a pooled buffer after
// its release shows 0xDB instead of the expected pattern, and the race
// detector flags the concurrent access. Loads verify full contents inside
// the callback (the only window the scheduler guarantees); stores re-encode
// the same pattern concurrently through the real worker pool.
func TestPoisonHammerNoReadAfterRelease(t *testing.T) {
	bufpool.SetPoison(true)
	defer bufpool.SetPoison(false)

	st := storage.NewMem()
	s := New(st, Config{Workers: 4})
	defer s.Close()

	const nKeys = 8
	const blobSize = 2048
	const iters = 300

	keyOf := func(i int) storage.Key { return storage.Key(fmt.Sprintf("hammer-%d", i)) }
	encodeFor := func(i int) func() ([]byte, error) {
		fill := byte(i + 1)
		return func() ([]byte, error) {
			w := bufpool.GetWriter(blobSize)
			for j := 0; j < blobSize; j++ {
				w.WriteByte(fill)
			}
			blob := w.Detach()
			bufpool.PutWriter(w)
			return blob, nil
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nKeys*iters)

	// Seed every key synchronously so loads never see NotFound.
	for i := 0; i < nKeys; i++ {
		wg.Add(1)
		if !s.Store(keyOf(i), uint64(i), encodeFor(i), nil, func(n int, err error) {
			if err != nil {
				errCh <- err
			}
			wg.Done()
		}) {
			t.Fatal("seed store refused")
		}
	}
	wg.Wait()

	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < iters; it++ {
				i := rng.Intn(nKeys)
				key := keyOf(i)
				want := byte(i + 1)
				if rng.Intn(3) == 0 {
					wg.Add(1)
					if !s.Store(key, uint64(i), encodeFor(i), nil, func(n int, err error) {
						if err != nil {
							errCh <- fmt.Errorf("store %s: %w", key, err)
						}
						wg.Done()
					}) {
						wg.Done()
					}
					continue
				}
				wg.Add(1)
				if !s.Load(key, uint64(i), Demand, func(blob []byte, err error) {
					defer wg.Done()
					if err != nil {
						errCh <- fmt.Errorf("load %s: %w", key, err)
						return
					}
					if len(blob) != blobSize {
						errCh <- fmt.Errorf("load %s: got %d bytes, want %d", key, len(blob), blobSize)
						return
					}
					for _, b := range blob {
						if b != want {
							errCh <- fmt.Errorf("load %s: byte %#x, want %#x (read-after-release?)", key, b, want)
							return
						}
					}
				}) {
					wg.Done()
				}
			}
		}(int64(g + 1))
	}
	workers.Wait()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// Package swapio implements the MRTS disk pipeline: a priority-classed,
// coalescing, bounded I/O scheduler through which every byte of the swap
// path flows. It replaces the one-goroutine-per-operation swap code in the
// control layer and subsumes the FIFO queue of storage.Async for runtime
// use: requests carry an explicit class, a bounded worker pool serves them
// strictly in class order, and serialization (encode on eviction, the read
// itself on load) happens on the I/O workers so compute workers never stall
// inside drain.
//
// The three classes, in service order:
//
//	Demand   — a load a message handler is blocked on ("force loading").
//	Write    — an eviction write freeing memory for something else.
//	Prefetch — a speculative load ahead of need (the prefetch cache).
//
// Two further rules keep the pipeline honest. Per-key coalescing: a second
// load of a key already queued or in flight joins the first request instead
// of issuing a duplicate read, and a demand joiner promotes a still-queued
// prefetch to demand class. Bounded speculation: when the backlog reaches the
// configured bound, further Prefetch submissions are refused (never Demand or
// Write — refusing those could deadlock the eviction path that runs on the
// workers themselves), and queued prefetches can be cancelled wholesale when
// memory pressure or shutdown supersedes them.
package swapio

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
	"mrts/internal/obs"
	"mrts/internal/storage"
)

// Class prioritizes a request; lower values are served first.
type Class uint8

// The three request classes, in strict service order.
const (
	// Demand is a load something is blocked on: a queued message, a
	// migration, a multicast collection.
	Demand Class = iota
	// Write is an eviction write; it frees memory but blocks nobody
	// directly.
	Write
	// Prefetch is a speculative load ahead of need.
	Prefetch
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Demand:
		return "demand"
	case Write:
		return "write"
	case Prefetch:
		return "prefetch"
	default:
		return "invalid"
	}
}

// ErrCanceled is delivered to the callbacks of a queued prefetch that was
// cancelled before a worker picked it up.
var ErrCanceled = errors.New("swapio: request canceled")

// Config configures a Scheduler.
type Config struct {
	// Workers is the I/O worker count (<= 0 means 2).
	Workers int
	// QueueBound is the queued-request count at which further Prefetch
	// submissions are refused (<= 0 means 64). Demand and Write are never
	// bounded.
	QueueBound int
	// Retry is the retry policy applied to every Get/Put (see
	// storage.RetryPolicy). The zero value means a single attempt.
	Retry storage.RetryPolicy
	// Tracer, when non-nil, receives swap.wait spans (queue time of demand
	// loads) and swap.cancel events.
	Tracer *obs.Tracer
	// Clock timestamps queue waits and times retry backoff. Nil means the
	// wall clock. The Retry policy's own Clock, when set, wins for backoff.
	Clock clock.Clock
}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opDelete
)

// request is one queued or running operation.
type request struct {
	op      opKind
	key     storage.Key
	id      uint64
	class   Class
	enq     time.Time
	span    obs.Span // open swap.wait span for demand loads
	running bool

	// Loads accumulate callbacks as duplicates coalesce onto the first.
	dones []func([]byte, error)

	// Stores pipeline serialization onto the worker: encode produces the
	// blob there, encoded (optional) observes its size between a successful
	// encode and the Put, done receives the blob's size and the final error.
	// done no longer receives the blob itself: the scheduler hands its
	// ownership to the store (or recycles it on failure), so by the time
	// done runs the bytes may already be reused.
	encode  func() ([]byte, error)
	encoded func(int)
	done    func(int, error)
}

// Stats is a point-in-time snapshot of scheduler activity. Aggregate
// snapshots from several schedulers with Add.
type Stats struct {
	// Submitted requests per class (accepted ones; rejections count in
	// Rejected).
	DemandLoads, Writes, Prefetches uint64
	// Completed requests per class (cancelled prefetches count in
	// Cancelled, not here).
	CompletedDemand, CompletedWrites, CompletedPrefetch uint64
	// Coalesced counts loads that joined an in-flight request of the same
	// key instead of issuing a duplicate read.
	Coalesced uint64
	// Cancelled counts queued prefetches removed before running.
	Cancelled uint64
	// Rejected counts Prefetch submissions refused by the queue bound.
	Rejected uint64
	// QueueDepth is the currently queued (not yet running) request count;
	// MaxQueueDepth is its high-water mark.
	QueueDepth, MaxQueueDepth int
	// Demand-load queue-wait accounting: total and max time demand loads
	// sat queued before dispatch, and how many were measured.
	DemandWaits     uint64
	DemandWaitTotal time.Duration
	DemandWaitMax   time.Duration
	// Retries is the cumulative count of transient faults absorbed by the
	// retry layer.
	Retries uint64
	// BytesRead / BytesWritten count the payload bytes the scheduler moved
	// through the backing store (loads and eviction writes respectively).
	BytesRead    uint64
	BytesWritten uint64
	// PriorityInversions counts dispatches that handed a worker a Prefetch
	// while a Demand load sat queued. Strict class order makes this
	// impossible by construction, so any non-zero value is a scheduler bug;
	// the simulation harness asserts it stays zero.
	PriorityInversions uint64
}

// DemandWaitMean returns the mean demand-load queue wait (0 when none).
func (s Stats) DemandWaitMean() time.Duration {
	if s.DemandWaits == 0 {
		return 0
	}
	return s.DemandWaitTotal / time.Duration(s.DemandWaits)
}

// Add merges other into s (sums for counters, max for high-water marks).
func (s *Stats) Add(other Stats) {
	s.DemandLoads += other.DemandLoads
	s.Writes += other.Writes
	s.Prefetches += other.Prefetches
	s.CompletedDemand += other.CompletedDemand
	s.CompletedWrites += other.CompletedWrites
	s.CompletedPrefetch += other.CompletedPrefetch
	s.Coalesced += other.Coalesced
	s.Cancelled += other.Cancelled
	s.Rejected += other.Rejected
	s.QueueDepth += other.QueueDepth
	if other.MaxQueueDepth > s.MaxQueueDepth {
		s.MaxQueueDepth = other.MaxQueueDepth
	}
	s.DemandWaits += other.DemandWaits
	s.DemandWaitTotal += other.DemandWaitTotal
	if other.DemandWaitMax > s.DemandWaitMax {
		s.DemandWaitMax = other.DemandWaitMax
	}
	s.Retries += other.Retries
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.PriorityInversions += other.PriorityInversions
}

// Scheduler is the swap-path I/O scheduler for one node. It owns the backing
// store: Close drains the pending demand and write work, cancels queued
// prefetches, and closes the store.
type Scheduler struct {
	st     storage.Store
	retry  *storage.Retrier
	tracer *obs.Tracer
	clk    clock.Clock
	bound  int

	mu     sync.Mutex
	cond   *sync.Cond
	queues [numClasses][]*request
	loads  map[storage.Key]*request // queued or running loads, by key
	queued int
	closed bool
	wg     sync.WaitGroup

	// Counters, under mu.
	submitted [numClasses]uint64
	completed [numClasses]uint64
	coalesced uint64
	cancelled uint64
	rejected  uint64
	maxDepth  int

	demandWaits     uint64
	demandWaitTotal time.Duration
	demandWaitMax   time.Duration
	inversions      uint64

	// Byte counters, outside mu: workers bump them mid-operation.
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// New returns a running Scheduler over st. The Scheduler owns st and closes
// it on Close.
func New(st storage.Store, cfg Config) *Scheduler {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	bound := cfg.QueueBound
	if bound <= 0 {
		bound = 64
	}
	retry := cfg.Retry
	if retry.Clock == nil {
		retry.Clock = cfg.Clock
	}
	s := &Scheduler{
		st:     st,
		retry:  storage.NewRetrier(retry),
		tracer: cfg.Tracer,
		clk:    clock.Or(cfg.Clock),
		bound:  bound,
		loads:  make(map[storage.Key]*request),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Backing returns the underlying store, for the few paths (checkpointing)
// that need synchronous access outside the scheduler's queue.
func (s *Scheduler) Backing() storage.Store { return s.st }

// Retries returns the cumulative count of absorbed transient faults.
func (s *Scheduler) Retries() uint64 { return s.retry.Retries() }

// QueueDepth returns the number of queued (not yet dispatched) requests.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// QueuedPrefetches returns the number of queued prefetch-class requests —
// the feedback signal the prefetch policy throttles on.
func (s *Scheduler) QueuedPrefetches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[Prefetch])
}

// Load schedules a read of key at the given class (Write is not a load
// class and is treated as Demand). done runs on an I/O worker with the blob
// and the post-retry error — decode there, not on a compute worker — or,
// for a cancelled prefetch, on the canceller's goroutine with ErrCanceled.
//
// The blob is owned by the scheduler's read path and is recycled as soon as
// every callback of the (possibly coalesced) request has returned: done must
// decode or copy, never retain the blob past its return. Use LoadSync for a
// caller-owned result.
//
// A load of a key already queued or in flight coalesces: done joins the
// existing request's callback list and no second read is issued; a Demand
// joiner additionally promotes a still-queued prefetch. Load reports whether
// the request was accepted (or joined); it refuses when the scheduler is
// closed, or for Prefetch class when the backlog is at the bound.
func (s *Scheduler) Load(key storage.Key, id uint64, class Class, done func([]byte, error)) bool {
	if class == Write {
		class = Demand
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if r, ok := s.loads[key]; ok {
		r.dones = append(r.dones, done)
		s.coalesced++
		if class == Demand && !r.running && r.class == Prefetch {
			s.promoteLocked(r)
		}
		s.mu.Unlock()
		return true
	}
	if class == Prefetch && s.queued >= s.bound {
		s.rejected++
		s.mu.Unlock()
		return false
	}
	r := &request{op: opLoad, key: key, id: id, class: class, enq: s.clk.Now(),
		dones: []func([]byte, error){done}}
	if class == Demand {
		r.span = s.tracer.Start(obs.KindSwapWait, id)
	}
	s.loads[key] = r
	s.pushLocked(r)
	s.mu.Unlock()
	return true
}

// LoadSync is Load at Demand class, blocking for the result — the migration
// path's synchronous read. It coalesces with any in-flight load of key.
// Never call it from an I/O worker callback: with one worker it would wait
// on itself. The returned blob is caller-owned (a pooled copy of the
// scheduler-owned read buffer); recycling it with bufpool.Put when done is
// optional but keeps the steady state allocation-free.
func (s *Scheduler) LoadSync(key storage.Key, id uint64) ([]byte, error) {
	type result struct {
		blob []byte
		err  error
	}
	ch := make(chan result, 1)
	if !s.Load(key, id, Demand, func(blob []byte, err error) {
		if err == nil {
			blob = bufpool.Clone(blob) // the original is recycled after this callback
		} else {
			blob = nil
		}
		ch <- result{blob, err}
	}) {
		return nil, storage.ErrClosed
	}
	r := <-ch
	return r.blob, r.err
}

// Store schedules an eviction write. encode runs on an I/O worker (the
// pipelined serialization) and should produce a pooled buffer
// (bufpool.Writer / bufpool.Get): the scheduler takes ownership of it,
// handing it to the store via the ownership-transfer write path (recycled on
// write, not copied) or recycling it itself on failure. encoded, when
// non-nil, observes the blob size between a successful encode and the Put —
// the hook the runtime uses to record the serialized size; done receives the
// blob's size and the final error. When encode itself fails, done gets
// (0, encodeErr) and encoded never runs. Store reports whether the request
// was accepted; writes are never bounded, only a closed scheduler refuses
// them (and then nothing runs).
func (s *Scheduler) Store(key storage.Key, id uint64, encode func() ([]byte, error), encoded func(int), done func(int, error)) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	r := &request{op: opStore, key: key, id: id, class: Write, enq: s.clk.Now(),
		encode: encode, encoded: encoded, done: done}
	s.pushLocked(r)
	s.mu.Unlock()
	return true
}

// Delete schedules removal of key's blob (write class, fire-and-forget) so
// migrated-away and destroyed objects do not leak disk. It reports whether
// the request was accepted.
func (s *Scheduler) Delete(key storage.Key) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	r := &request{op: opDelete, key: key, class: Write, enq: s.clk.Now()}
	s.pushLocked(r)
	s.mu.Unlock()
	return true
}

// Promote upgrades a still-queued prefetch load of key to Demand class (the
// object now blocks a handler). It reports whether a load of key is in
// flight at all — false means the caller must issue its own demand load.
func (s *Scheduler) Promote(key storage.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.loads[key]
	if !ok {
		return false
	}
	if !r.running && r.class == Prefetch {
		s.promoteLocked(r)
	}
	return true
}

// promoteLocked moves a queued prefetch to the demand queue and starts its
// wait measurement. Caller holds s.mu; r must be queued (not running).
func (s *Scheduler) promoteLocked(r *request) {
	q := s.queues[r.class]
	for i, qr := range q {
		if qr == r {
			s.queues[r.class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	r.class = Demand
	r.enq = s.clk.Now()
	r.span = s.tracer.Start(obs.KindSwapWait, r.id)
	s.queues[Demand] = append(s.queues[Demand], r)
	s.cond.Signal()
}

// CancelPrefetches removes every queued prefetch and invokes its callbacks
// with ErrCanceled on the caller's goroutine (running requests are never
// interrupted). It returns the number cancelled. Used when memory pressure
// or shutdown supersedes the speculation.
func (s *Scheduler) CancelPrefetches() int {
	s.mu.Lock()
	victims := s.cancelQueuedPrefetchesLocked()
	s.mu.Unlock()
	for _, r := range victims {
		for _, d := range r.dones {
			d(nil, ErrCanceled)
		}
	}
	return len(victims)
}

// cancelQueuedPrefetchesLocked detaches the queued prefetches without
// invoking callbacks. Caller holds s.mu and must run the callbacks after
// releasing it.
func (s *Scheduler) cancelQueuedPrefetchesLocked() []*request {
	victims := s.queues[Prefetch]
	s.queues[Prefetch] = nil
	s.queued -= len(victims)
	for _, r := range victims {
		delete(s.loads, r.key)
		s.cancelled++
		s.tracer.Emit(obs.KindSwapCancel, r.id, 0)
	}
	return victims
}

// Close stops intake, cancels the queued prefetches, drains the queued
// demand loads and writes, waits for the workers and closes the backing
// store. Submissions after Close return false. Close is idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	victims := s.cancelQueuedPrefetchesLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, r := range victims {
		for _, d := range r.dones {
			d(nil, ErrCanceled)
		}
	}
	s.wg.Wait()
	return s.st.Close()
}

// Snapshot returns the current statistics.
func (s *Scheduler) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		DemandLoads:        s.submitted[Demand],
		Writes:             s.submitted[Write],
		Prefetches:         s.submitted[Prefetch],
		CompletedDemand:    s.completed[Demand],
		CompletedWrites:    s.completed[Write],
		CompletedPrefetch:  s.completed[Prefetch],
		Coalesced:          s.coalesced,
		Cancelled:          s.cancelled,
		Rejected:           s.rejected,
		QueueDepth:         s.queued,
		MaxQueueDepth:      s.maxDepth,
		DemandWaits:        s.demandWaits,
		DemandWaitTotal:    s.demandWaitTotal,
		DemandWaitMax:      s.demandWaitMax,
		Retries:            s.retry.Retries(),
		BytesRead:          s.bytesRead.Load(),
		BytesWritten:       s.bytesWritten.Load(),
		PriorityInversions: s.inversions,
	}
}

// pushLocked enqueues r and wakes one worker. Caller holds s.mu.
func (s *Scheduler) pushLocked(r *request) {
	s.queues[r.class] = append(s.queues[r.class], r)
	s.submitted[r.class]++
	s.queued++
	if s.queued > s.maxDepth {
		s.maxDepth = s.queued
	}
	s.cond.Signal()
}

// popLocked removes the highest-priority queued request (nil when empty).
// Caller holds s.mu.
func (s *Scheduler) popLocked() *request {
	for c := Class(0); c < numClasses; c++ {
		if q := s.queues[c]; len(q) > 0 {
			r := q[0]
			s.queues[c] = q[1:]
			s.queued--
			return r
		}
	}
	return nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		r := s.popLocked()
		if r == nil {
			// Closed and drained.
			s.mu.Unlock()
			return
		}
		r.running = true
		if r.class == Prefetch && len(s.queues[Demand]) > 0 {
			s.inversions++
		}
		if r.op == opLoad && r.class == Demand {
			w := s.clk.Since(r.enq)
			s.demandWaits++
			s.demandWaitTotal += w
			if w > s.demandWaitMax {
				s.demandWaitMax = w
			}
			r.span.End(0)
		}
		s.mu.Unlock()
		s.execute(r)
	}
}

// execute runs r on the calling worker and invokes its callbacks.
func (s *Scheduler) execute(r *request) {
	switch r.op {
	case opLoad:
		// DoGetBuf rather than Do(closure): the closure would heap-allocate
		// per load and this path must stay allocation-free.
		blob, err := s.retry.DoGetBuf(s.st, r.key)
		if err != nil {
			blob = nil
		}
		if err == nil {
			s.bytesRead.Add(uint64(len(blob)))
		}
		s.mu.Lock()
		// Remove from the coalescing map before the callbacks run: a
		// late joiner must issue a fresh read, not attach to a request
		// whose result is already being delivered.
		delete(s.loads, r.key)
		dones := r.dones
		r.dones = nil
		s.completed[r.class]++
		s.mu.Unlock()
		for _, d := range dones {
			d(blob, err)
		}
		// Every callback has returned; the read buffer goes back to the
		// store's read path (pool, or munmap for a mapped store).
		if blob != nil {
			storage.ReleaseBuf(s.st, blob)
		}
	case opStore:
		blob, err := r.encode()
		if err != nil {
			s.finish(Write)
			r.done(0, err)
			return
		}
		n := len(blob)
		if r.encoded != nil {
			r.encoded(n)
		}
		// PutBuf transfers ownership on success (one buffer from encode to
		// media, no copy for stores that write out); on failure the buffer
		// is still ours and goes back to the arena. DoPutBuf keeps the path
		// closure-free.
		err = s.retry.DoPutBuf(s.st, r.key, blob)
		if err != nil {
			bufpool.Put(blob)
		} else {
			s.bytesWritten.Add(uint64(n))
		}
		s.finish(Write)
		r.done(n, err)
	case opDelete:
		_ = s.st.Delete(r.key)
		s.finish(Write)
	}
}

func (s *Scheduler) finish(c Class) {
	s.mu.Lock()
	s.completed[c]++
	s.mu.Unlock()
}

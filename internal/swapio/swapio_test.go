package swapio

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mrts/internal/storage"
)

// gatedStore blocks every Get until the test feeds a token into release,
// and reports each Get's key on started (when non-nil) as the worker picks
// it up — the instrument for freezing the pipeline mid-flight.
type gatedStore struct {
	*storage.MemStore
	release chan struct{}
	started chan storage.Key
}

func newGated() *gatedStore {
	return &gatedStore{
		MemStore: storage.NewMem(),
		release:  make(chan struct{}),
		started:  make(chan storage.Key, 64),
	}
}

func (g *gatedStore) Get(key storage.Key) ([]byte, error) {
	if g.started != nil {
		g.started <- key
	}
	<-g.release
	return g.MemStore.Get(key)
}

// GetBuf gates identically: the scheduler reads through the pooled path, and
// the embedded MemStore's ungated GetBuf must not leak past the instrument.
func (g *gatedStore) GetBuf(key storage.Key) ([]byte, error) {
	if g.started != nil {
		g.started <- key
	}
	<-g.release
	return g.MemStore.GetBuf(key)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDemandBeatsPrefetchBacklog is the priority acceptance test: a demand
// load issued while >= 8 prefetches sit queued must complete before the
// backlog drains.
func TestDemandBeatsPrefetchBacklog(t *testing.T) {
	st := newGated()
	for i := 0; i < 10; i++ {
		st.MemStore.Put(storage.Key(fmt.Sprintf("p%d", i)), []byte{byte(i)})
	}
	st.MemStore.Put("d", []byte("demand"))
	s := New(st, Config{Workers: 1, QueueBound: 100})

	var mu sync.Mutex
	var order []string
	record := func(name string) func([]byte, error) {
		return func(_ []byte, err error) {
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}

	// p0 occupies the single worker (blocked in Get); p1..p9 queue behind it.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("p%d", i)
		if !s.Load(storage.Key(name), uint64(i), Prefetch, record(name)) {
			t.Fatalf("prefetch %s refused", name)
		}
	}
	<-st.started // p0 dispatched
	waitFor(t, "9 queued prefetches", func() bool { return s.QueuedPrefetches() == 9 })
	if !s.Load("d", 100, Demand, record("d")) {
		t.Fatal("demand load refused")
	}

	for i := 0; i < 11; i++ {
		st.release <- struct{}{}
		if i < 10 {
			<-st.started // next dispatch (the last release has no successor)
		}
	}
	waitFor(t, "all loads done", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 11
	})

	mu.Lock()
	defer mu.Unlock()
	// p0 was already running when d arrived; d must be served immediately
	// after it, with the whole prefetch backlog still pending.
	if order[0] != "p0" || order[1] != "d" {
		t.Fatalf("demand did not jump the backlog: completion order %v", order)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescing is the coalescing acceptance test: concurrent duplicate
// loads of one key issue exactly one storage read.
func TestCoalescing(t *testing.T) {
	st := newGated()
	st.MemStore.Put("k", []byte("blob"))
	s := New(st, Config{Workers: 1})

	var mu sync.Mutex
	done := 0
	cb := func(blob []byte, err error) {
		if err != nil || string(blob) != "blob" {
			t.Errorf("load returned %q, %v", blob, err)
		}
		mu.Lock()
		done++
		mu.Unlock()
	}
	if !s.Load("k", 1, Demand, cb) {
		t.Fatal("first load refused")
	}
	<-st.started // in flight, blocked in Get
	for i := 0; i < 5; i++ {
		if !s.Load("k", 1, Demand, cb) {
			t.Fatalf("duplicate load %d refused", i)
		}
	}
	st.release <- struct{}{}
	waitFor(t, "all 6 callbacks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done == 6
	})
	if gets := st.MemStore.Stats().Gets; gets != 1 {
		t.Fatalf("expected exactly 1 storage read, got %d", gets)
	}
	if c := s.Snapshot().Coalesced; c != 5 {
		t.Fatalf("expected 5 coalesced, got %d", c)
	}
	s.Close()
}

// TestDemandJoinerPromotesQueuedPrefetch: a demand load of a key whose
// prefetch is still queued must pull that request into the demand queue.
func TestDemandJoinerPromotesQueuedPrefetch(t *testing.T) {
	st := newGated()
	st.MemStore.Put("busy", []byte("x"))
	st.MemStore.Put("k", []byte("y"))
	st.MemStore.Put("other", []byte("z"))
	s := New(st, Config{Workers: 1})

	var mu sync.Mutex
	var order []string
	rec := func(name string) func([]byte, error) {
		return func([]byte, error) { mu.Lock(); order = append(order, name); mu.Unlock() }
	}
	s.Load("busy", 0, Demand, rec("busy"))
	<-st.started // worker occupied
	s.Load("other", 1, Prefetch, rec("other"))
	s.Load("k", 2, Prefetch, rec("k"))
	// The demand joiner: coalesces AND promotes past "other".
	s.Load("k", 2, Demand, rec("k2"))
	if c := s.Snapshot().Coalesced; c != 1 {
		t.Fatalf("expected 1 coalesced, got %d", c)
	}
	for i := 0; i < 3; i++ {
		st.release <- struct{}{}
		if i < 2 {
			<-st.started
		}
	}
	waitFor(t, "4 callbacks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 4
	})
	mu.Lock()
	defer mu.Unlock()
	if order[1] != "k" || order[2] != "k2" {
		t.Fatalf("promoted load did not run before the remaining prefetch: %v", order)
	}
	s.Close()
}

func TestPromote(t *testing.T) {
	st := newGated()
	st.MemStore.Put("busy", []byte("x"))
	st.MemStore.Put("k", []byte("y"))
	s := New(st, Config{Workers: 1})
	s.Load("busy", 0, Demand, func([]byte, error) {})
	<-st.started

	if s.Promote("missing") {
		t.Fatal("Promote of an unknown key must report false")
	}
	s.Load("k", 1, Prefetch, func([]byte, error) {})
	if !s.Promote("k") {
		t.Fatal("Promote of a queued prefetch must report true")
	}
	if n := s.QueuedPrefetches(); n != 0 {
		t.Fatalf("prefetch queue should be empty after promotion, has %d", n)
	}
	st.release <- struct{}{}
	<-st.started
	st.release <- struct{}{}
	s.Close()
	if w := s.Snapshot().DemandWaits; w < 1 {
		t.Fatalf("promoted load should be measured as a demand wait, waits=%d", w)
	}
}

func TestCancelPrefetches(t *testing.T) {
	st := newGated()
	st.MemStore.Put("busy", []byte("x"))
	for i := 0; i < 3; i++ {
		st.MemStore.Put(storage.Key(fmt.Sprintf("p%d", i)), []byte{byte(i)})
	}
	s := New(st, Config{Workers: 1})
	s.Load("busy", 0, Demand, func([]byte, error) {})
	<-st.started

	var mu sync.Mutex
	cancelled := 0
	for i := 0; i < 3; i++ {
		s.Load(storage.Key(fmt.Sprintf("p%d", i)), uint64(i), Prefetch, func(blob []byte, err error) {
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("expected ErrCanceled, got %v", err)
			}
			mu.Lock()
			cancelled++
			mu.Unlock()
		})
	}
	if n := s.CancelPrefetches(); n != 3 {
		t.Fatalf("expected 3 cancelled, got %d", n)
	}
	mu.Lock()
	if cancelled != 3 {
		t.Fatalf("expected 3 ErrCanceled callbacks, got %d", cancelled)
	}
	mu.Unlock()
	// The coalescing map must be clear: a fresh load of a cancelled key is
	// a new request, not a join onto a dead one.
	if !s.Load("p0", 0, Demand, func([]byte, error) {}) {
		t.Fatal("fresh load of a cancelled key refused")
	}
	if c := s.Snapshot().Coalesced; c != 0 {
		t.Fatalf("fresh load after cancel must not coalesce, coalesced=%d", c)
	}
	st.release <- struct{}{}
	<-st.started
	st.release <- struct{}{}
	s.Close()
}

// TestBoundRejectsOnlyPrefetch: the queue bound is backpressure for
// speculation, never for demand loads or eviction writes.
func TestBoundRejectsOnlyPrefetch(t *testing.T) {
	st := newGated()
	for i := 0; i < 4; i++ {
		st.MemStore.Put(storage.Key(fmt.Sprintf("p%d", i)), []byte{byte(i)})
	}
	st.MemStore.Put("busy", []byte("x"))
	st.MemStore.Put("d", []byte("y"))
	s := New(st, Config{Workers: 1, QueueBound: 2})
	s.Load("busy", 0, Demand, func([]byte, error) {})
	<-st.started

	if !s.Load("p0", 1, Prefetch, func([]byte, error) {}) ||
		!s.Load("p1", 2, Prefetch, func([]byte, error) {}) {
		t.Fatal("prefetches under the bound refused")
	}
	if s.Load("p2", 3, Prefetch, func([]byte, error) {}) {
		t.Fatal("prefetch beyond the bound accepted")
	}
	if s.Snapshot().Rejected != 1 {
		t.Fatalf("expected 1 rejection, got %d", s.Snapshot().Rejected)
	}
	// Demand and Write sail past the same full queue.
	if !s.Load("d", 4, Demand, func([]byte, error) {}) {
		t.Fatal("demand load refused by the prefetch bound")
	}
	if !s.Store("w", 5, func() ([]byte, error) { return []byte("w"), nil }, nil, func(int, error) {}) {
		t.Fatal("write refused by the prefetch bound")
	}
	for i := 0; i < 4; i++ {
		st.release <- struct{}{}
		if i < 3 {
			<-st.started
		}
	}
	s.Close()
}

// TestStorePipeline: encode runs on the worker, encoded sees the blob size
// before the Put, done gets the blob; an encode failure surfaces through
// done without touching the store.
func TestStorePipeline(t *testing.T) {
	st := storage.NewMem()
	s := New(st, Config{Workers: 1})

	var sized int
	ch := make(chan error, 1)
	s.Store("k", 1,
		func() ([]byte, error) { return []byte("encoded-blob"), nil },
		func(n int) { sized = n },
		func(n int, err error) { ch <- err })
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if sized != len("encoded-blob") {
		t.Fatalf("encoded hook saw size %d", sized)
	}
	if got, err := st.Get("k"); err != nil || string(got) != "encoded-blob" {
		t.Fatalf("store holds %q, %v", got, err)
	}

	encodeErr := errors.New("boom")
	hookRan := false
	s.Store("bad", 2,
		func() ([]byte, error) { return nil, encodeErr },
		func(int) { hookRan = true },
		func(n int, err error) { ch <- err })
	if err := <-ch; !errors.Is(err, encodeErr) {
		t.Fatalf("expected encode error, got %v", err)
	}
	if hookRan {
		t.Fatal("encoded hook ran despite encode failure")
	}
	if st.Has("bad") {
		t.Fatal("failed encode must not write")
	}
	s.Close()
}

// TestCloseSemantics covers the shutdown satellite: Close with in-flight
// operations drains them, queued prefetches die with ErrCanceled, and every
// submission after Close is refused.
func TestCloseSemantics(t *testing.T) {
	st := newGated()
	st.MemStore.Put("busy", []byte("x"))
	st.MemStore.Put("d", []byte("y"))
	st.MemStore.Put("p", []byte("z"))
	s := New(st, Config{Workers: 1})

	inflight := make(chan error, 1)
	s.Load("busy", 0, Demand, func(_ []byte, err error) { inflight <- err })
	<-st.started
	queued := make(chan error, 1)
	s.Load("d", 1, Demand, func(_ []byte, err error) { queued <- err })
	pf := make(chan error, 1)
	s.Load("p", 2, Prefetch, func(_ []byte, err error) { pf <- err })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// The queued prefetch is cancelled by Close even while a worker is
	// stuck; the demand load must still be served.
	if err := <-pf; !errors.Is(err, ErrCanceled) {
		t.Fatalf("queued prefetch at Close: want ErrCanceled, got %v", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned with an operation still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	st.release <- struct{}{}
	<-st.started
	st.release <- struct{}{}
	if err := <-inflight; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued demand load at Close must drain, got %v", err)
	}
	<-closed

	if s.Load("d", 1, Demand, func([]byte, error) {}) {
		t.Fatal("Load accepted after Close")
	}
	if s.Store("k", 1, func() ([]byte, error) { return nil, nil }, nil, func(int, error) {}) {
		t.Fatal("Store accepted after Close")
	}
	if s.Delete("k") {
		t.Fatal("Delete accepted after Close")
	}
	if _, err := s.LoadSync("d", 1); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("LoadSync after Close: want ErrClosed, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestDeleteRemovesBlob(t *testing.T) {
	st := storage.NewMem()
	st.Put("k", []byte("x"))
	s := New(st, Config{Workers: 1})
	if !s.Delete("k") {
		t.Fatal("Delete refused")
	}
	waitFor(t, "blob deleted", func() bool { return !st.Has("k") })
	s.Close()
}

func TestLoadSync(t *testing.T) {
	st := storage.NewMem()
	st.Put("k", []byte("hello"))
	s := New(st, Config{Workers: 2})
	blob, err := s.LoadSync("k", 1)
	if err != nil || string(blob) != "hello" {
		t.Fatalf("LoadSync = %q, %v", blob, err)
	}
	if _, err := s.LoadSync("missing", 2); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("LoadSync of missing key: %v", err)
	}
	s.Close()
}

func TestStatsAdd(t *testing.T) {
	a := Stats{DemandLoads: 1, Coalesced: 2, MaxQueueDepth: 3, DemandWaits: 1,
		DemandWaitTotal: time.Second, DemandWaitMax: time.Second}
	b := Stats{DemandLoads: 2, Coalesced: 1, MaxQueueDepth: 7, DemandWaits: 3,
		DemandWaitTotal: time.Second, DemandWaitMax: 2 * time.Second}
	a.Add(b)
	if a.DemandLoads != 3 || a.Coalesced != 3 {
		t.Fatalf("counters should sum: %+v", a)
	}
	if a.MaxQueueDepth != 7 || a.DemandWaitMax != 2*time.Second {
		t.Fatalf("high-water marks should take the max: %+v", a)
	}
	if mean := a.DemandWaitMean(); mean != 500*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

package sim

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"mrts/internal/core"
	"mrts/internal/meshgen"
)

// simObj is the harness's mobile object: a counter plus ballast that makes
// the plan's tight memory budget force swapping.
type simObj struct {
	Count   int64
	Ballast []byte
}

const simTypeID uint16 = 77

func (o *simObj) TypeID() uint16 { return simTypeID }
func (o *simObj) SizeHint() int  { return 32 + len(o.Ballast) }

func (o *simObj) EncodeTo(w io.Writer) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(o.Count))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(o.Ballast)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(o.Ballast)
	return err
}

// maxBallast bounds the decoded ballast length. The prefix arrives from
// storage and must not be trusted: one corrupted u32 could otherwise demand
// a 4 GiB allocation before the short read is ever noticed.
const maxBallast = 1 << 26

func (o *simObj) DecodeFrom(r io.Reader) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	o.Count = int64(binary.LittleEndian.Uint64(hdr[0:8]))
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxBallast {
		return fmt.Errorf("sim: ballast length %d exceeds limit %d (corrupt blob?)", n, maxBallast)
	}
	// Reuse the existing ballast when it fits: decoding into a recycled
	// object is then allocation-free.
	if cap(o.Ballast) >= int(n) {
		o.Ballast = o.Ballast[:n]
	} else {
		o.Ballast = make([]byte, n)
	}
	_, err := io.ReadFull(r, o.Ballast)
	return err
}

func simFactory(typeID uint16) (core.Object, error) {
	if typeID == simTypeID {
		return &simObj{}, nil
	}
	// The speculation storm runs meshgen's S-UPDR workload on the simulated
	// cluster; its blocks must decode after eviction and migration too.
	return meshgen.Factory(typeID)
}

// Handler IDs used by the scenarios.
const (
	hInc    core.HandlerID = 100
	hReport core.HandlerID = 101
)

// counterBoard collects reported final counts across nodes.
type counterBoard struct {
	mu     sync.Mutex
	counts map[core.MobilePtr]int64
}

// registerHandlers installs the increment and report handlers on every node.
func registerHandlers(env *Env, board *counterBoard) {
	for _, rt := range env.Cluster.Runtimes() {
		registerHandlersOn(rt, board)
	}
}

// buildObjects creates the plan's objects on each node and returns them with
// the ballast sizes drawn from the environment rng (seed-derived, so the
// layout replays).
func buildObjects(env *Env) []core.MobilePtr {
	var ptrs []core.MobilePtr
	for n := 0; n < env.Plan.Nodes; n++ {
		rt := env.Cluster.RT(n)
		for j := 0; j < env.Plan.Objects; j++ {
			ballast := make([]byte, 1500+env.Rng.Intn(1500))
			ptrs = append(ptrs, rt.CreateObject(&simObj{Ballast: ballast}))
		}
	}
	return ptrs
}

// postStorm posts the plan's increments from seed-drawn sender nodes to
// seed-drawn targets and returns the expected per-object final counts.
func postStorm(env *Env, ptrs []core.MobilePtr, posts int) map[core.MobilePtr]int64 {
	expected := make(map[core.MobilePtr]int64, len(ptrs))
	for _, p := range ptrs {
		expected[p] = 0
	}
	for i := 0; i < posts; i++ {
		target := ptrs[env.Rng.Intn(len(ptrs))]
		sender := env.Cluster.RT(env.Rng.Intn(env.Plan.Nodes))
		sender.Post(target, hInc, nil)
		expected[target]++
	}
	return expected
}

// reportPhase posts a report message to every object (a second termination
// generation) and returns the collected counts.
func reportPhase(env *Env, board *counterBoard, ptrs []core.MobilePtr) map[core.MobilePtr]int64 {
	for _, p := range ptrs {
		env.Cluster.RT(int(p.Home)).Post(p, hReport, nil)
	}
	env.WaitTermination()
	board.mu.Lock()
	defer board.mu.Unlock()
	out := make(map[core.MobilePtr]int64, len(board.counts))
	for k, v := range board.counts {
		out[k] = v
	}
	return out
}

// CounterStorm posts a seeded storm of increments at swapping objects over
// a clean (or transiently faulty) store and verifies every counter landed:
// message delivery, swap round-trips and retry must conspire to lose
// nothing, under any interleaving.
type CounterStorm struct {
	// Transient switches the plan to the transient fault schedule.
	Transient bool
}

// Name implements Scenario.
func (s CounterStorm) Name() string {
	if s.Transient {
		return "counter-storm-transient"
	}
	return "counter-storm"
}

// Fault implements Scenario.
func (s CounterStorm) Fault() FaultKind {
	if s.Transient {
		return FaultTransient
	}
	return FaultNone
}

// Run implements Scenario.
func (s CounterStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	env.Note("storm of %d posts at %d objects", posts, len(ptrs))

	expected := postStorm(env, ptrs, posts)
	env.WaitTermination()
	got := reportPhase(env, board, ptrs)

	var sum int64
	for _, p := range ptrs {
		if got[p] != expected[p] {
			return fmt.Errorf("object %v: count %d, expected %d", p, got[p], expected[p])
		}
		env.Record(fmt.Sprintf("count.%v", p), got[p])
		sum += got[p]
	}
	env.Record("objects", int64(len(ptrs)))
	env.Record("sum", sum)
	return nil
}

// MigrationShuffle interleaves the increment storm with seed-drawn
// migrations, verifying that objects in motion — directory forwards, parked
// messages, install races — still deliver every increment exactly once.
type MigrationShuffle struct{}

// Name implements Scenario.
func (MigrationShuffle) Name() string { return "migration-shuffle" }

// Fault implements Scenario.
func (MigrationShuffle) Fault() FaultKind { return FaultNone }

// Run implements Scenario.
func (MigrationShuffle) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	half := posts / 2
	moves := len(ptrs) * 2
	env.Note("shuffle of %d posts, %d migration requests", posts, moves)

	expected := postStorm(env, ptrs, half)
	for i := 0; i < moves; i++ {
		p := ptrs[env.Rng.Intn(len(ptrs))]
		dest := core.NodeID(env.Rng.Intn(env.Plan.Nodes))
		// Fire-and-forget: the request routes to wherever the object is; a
		// busy or mid-swap object simply stays put. Counts are unaffected
		// either way.
		env.Cluster.RT(int(p.Home)).RequestMigration(p, dest)
	}
	more := postStorm(env, ptrs, posts-half)
	for p, n := range more {
		expected[p] += n
	}
	env.WaitTermination()
	got := reportPhase(env, board, ptrs)

	var sum int64
	for _, p := range ptrs {
		if got[p] != expected[p] {
			return fmt.Errorf("object %v: count %d, expected %d", p, got[p], expected[p])
		}
		env.Record(fmt.Sprintf("count.%v", p), got[p])
		sum += got[p]
	}
	env.Record("objects", int64(len(ptrs)))
	env.Record("sum", sum)
	return nil
}

// PermanentFaultStorm runs the increment storm over stores whose reads fail
// permanently with the plan's probability: swapped-out objects are lost.
// The verified properties are the loud-loss contract — every loss surfaces
// in the counters and the SwapError log, lost objects drop their queues so
// termination still fires — not the (necessarily nondeterministic) final
// counts, which only enter the check as an upper bound.
type PermanentFaultStorm struct{}

// Name implements Scenario.
func (PermanentFaultStorm) Name() string { return "permanent-fault-storm" }

// Fault implements Scenario.
func (PermanentFaultStorm) Fault() FaultKind { return FaultPermanent }

// Run implements Scenario.
func (PermanentFaultStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	env.Note("storm of %d posts under permanent faults", posts)

	expected := postStorm(env, ptrs, posts)
	env.WaitTermination()
	got := reportPhase(env, board, ptrs)

	// Survivors can only have received at most what was posted at them;
	// lost objects are absent from the report (their messages dropped).
	for p, n := range got {
		if n > expected[p] {
			return fmt.Errorf("object %v: count %d exceeds the %d posted", p, n, expected[p])
		}
	}
	// The loud-loss contract: losses and the error log must agree.
	stats := env.Cluster.SwapStats()
	var lostErrs uint64
	for _, rt := range env.Cluster.Runtimes() {
		for _, e := range rt.SwapErrors() {
			if e.Lost {
				lostErrs++
			}
		}
	}
	if stats.ObjectsLost != lostErrs {
		return fmt.Errorf("ObjectsLost=%d but %d Lost SwapErrors recorded", stats.ObjectsLost, lostErrs)
	}
	if stats.ObjectsLost > 0 && stats.LoadFailures == 0 {
		return fmt.Errorf("objects lost with zero recorded load failures")
	}
	env.Record("objects", int64(len(ptrs)))
	env.Record("posts", int64(posts))
	return nil
}

// TieredFaultStorm runs the increment storm on a tiered cluster (remote
// memory over disk) whose remote-memory tier takes transient faults: writes
// that fault on tier 0 must spill to the disk tier, reads must retry or be
// re-dispatched at the blob's surviving home — every counter lands, nothing
// is lost, and the tier invariants (single residency, lease) hold throughout
// via the harness's continuous sweep.
type TieredFaultStorm struct{}

// Name implements Scenario.
func (TieredFaultStorm) Name() string { return "tiered-fault-storm" }

// Fault implements Scenario.
func (TieredFaultStorm) Fault() FaultKind { return FaultTierTransient }

// Run implements Scenario.
func (TieredFaultStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	env.Note("storm of %d posts over tier cap %d with tier-0 faults", posts, env.Plan.TierCapacity)

	expected := postStorm(env, ptrs, posts)
	env.WaitTermination()
	got := reportPhase(env, board, ptrs)

	var sum int64
	for _, p := range ptrs {
		if got[p] != expected[p] {
			return fmt.Errorf("object %v: count %d, expected %d", p, got[p], expected[p])
		}
		env.Record(fmt.Sprintf("count.%v", p), got[p])
		sum += got[p]
	}
	if lost := env.Cluster.SwapStats().ObjectsLost; lost != 0 {
		return fmt.Errorf("%d objects lost despite a healthy disk tier", lost)
	}
	ts := env.Cluster.TierStats()
	if ts.FastPuts+ts.Spills == 0 {
		return fmt.Errorf("tiered run wrote nothing through the hierarchy")
	}
	if env.Plan.TierCapacity != 0 {
		// Tier-0 faults fire on the first touch of each key, so a run that
		// has a fast tier must have absorbed at least one: a spill on a
		// faulted admission, or a retried read.
		retried := env.Cluster.SwapStats().Retries
		if ts.FastPutErrors+ts.FastReadErrors+retried == 0 {
			return fmt.Errorf("tier-0 fault schedule never fired: %+v", ts)
		}
	}
	env.Record("objects", int64(len(ptrs)))
	env.Record("sum", sum)
	return nil
}

package sim

import (
	"fmt"

	"mrts/internal/core"
)

// registerHandlersOn installs the scenario handlers on one runtime — the
// re-registration a relaunched worker process performs before resuming.
func registerHandlersOn(rt *core.Runtime, board *counterBoard) {
	rt.Register(hInc, func(c *core.Ctx, arg []byte) {
		c.Object().(*simObj).Count++
	})
	rt.Register(hReport, func(c *core.Ctx, arg []byte) {
		n := c.Object().(*simObj).Count
		board.mu.Lock()
		board.counts[c.Self] = n
		board.mu.Unlock()
	})
}

// verifyCounts compares the reported counters to the expectation and records
// the confluent digest entries.
func verifyCounts(env *Env, ptrs []core.MobilePtr, got, expected map[core.MobilePtr]int64) error {
	var sum int64
	for _, p := range ptrs {
		if got[p] != expected[p] {
			return fmt.Errorf("object %v: count %d, expected %d", p, got[p], expected[p])
		}
		env.Record(fmt.Sprintf("count.%v", p), got[p])
		sum += got[p]
	}
	env.Record("objects", int64(len(ptrs)))
	env.Record("sum", sum)
	return nil
}

// auditPlacement snapshots the directory invariants at a phase boundary and
// turns any violation into a scenario error (the harness's final audit would
// catch it too, but failing at the boundary names the epoch that broke).
func auditPlacement(env *Env, when string) error {
	if bad := env.Cluster.DirectoryInvariants(); len(bad) > 0 {
		return fmt.Errorf("placement %s: %v", when, bad)
	}
	return nil
}

// NodeChurnStorm interleaves the increment storm with a graceful membership
// change: one seed-drawn node leaves the ring mid-run (draining its objects
// to their new ring owners), the storm keeps posting at the drained node's
// old objects while it is out, then the node rejoins and pulls back the keys
// it owns. Every increment must land exactly once and the directory
// invariants must hold at every epoch boundary.
type NodeChurnStorm struct{}

// Name implements Scenario.
func (NodeChurnStorm) Name() string { return "node-churn-storm" }

// Fault implements Scenario.
func (NodeChurnStorm) Fault() FaultKind { return FaultNodeCrash }

// Run implements Scenario.
func (NodeChurnStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	churn := env.Plan.ChurnNode
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	third := posts / 3
	env.Note("churn storm of %d posts; node %d leaves and rejoins", posts, churn)

	expected := postStorm(env, ptrs, third)
	env.WaitTermination()

	moved, err := env.Cluster.LeaveNode(churn)
	if err != nil {
		return fmt.Errorf("leave node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after leave"); err != nil {
		return err
	}
	// The drained node's object count is seed-determined (objects stay where
	// they were created until the drain moves them).
	env.Record("rebalanced.out", int64(moved))

	// The storm keeps running while the node is out: posts to its old
	// objects follow the drain's directory updates, and the drained node
	// itself still forwards as a live shell.
	for p, n := range postStorm(env, ptrs, third) {
		expected[p] += n
	}
	env.WaitTermination()

	back, err := env.Cluster.JoinNode(churn)
	if err != nil {
		return fmt.Errorf("rejoin node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after join"); err != nil {
		return err
	}
	// back counts the keys the rejoined member took over — a pure function
	// of the ring, so it digests deterministically.
	env.Record("rebalanced.in", int64(back))

	for p, n := range postStorm(env, ptrs, posts-2*third) {
		expected[p] += n
	}
	env.WaitTermination()

	got := reportPhase(env, board, ptrs)
	return verifyCounts(env, ptrs, got, expected)
}

// NodeCrashStorm kills a seed-drawn node at a quiescent phase boundary —
// checkpoint, teardown, relaunch in the same slot with the same node ID,
// restore — and resumes the storm. The crashed node keeps its ring
// membership (it is down, not departed), no object may be lost through the
// checkpoint round-trip, and every increment posted before and after the
// outage must land exactly once.
type NodeCrashStorm struct{}

// Name implements Scenario.
func (NodeCrashStorm) Name() string { return "node-crash-storm" }

// Fault implements Scenario.
func (NodeCrashStorm) Fault() FaultKind { return FaultNodeCrash }

// Run implements Scenario.
func (NodeCrashStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	churn := env.Plan.ChurnNode
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	half := posts / 2
	env.Note("crash storm of %d posts; node %d crashes and restarts", posts, churn)

	expected := postStorm(env, ptrs, half)
	env.WaitTermination()

	if err := env.Cluster.CrashNode(churn); err != nil {
		return fmt.Errorf("crash node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "during outage"); err != nil {
		return err
	}
	if !env.Cluster.Directory().Contains(core.NodeID(churn)) {
		return fmt.Errorf("crashed node %d lost its ring membership", churn)
	}

	rt, err := env.Cluster.RestartNode(churn)
	if err != nil {
		return fmt.Errorf("restart node %d: %w", churn, err)
	}
	registerHandlersOn(rt, board) // the relaunched process re-registers
	if err := auditPlacement(env, "after restart"); err != nil {
		return err
	}
	restored := rt.NumLocalObjects()
	if restored != env.Plan.Objects {
		return fmt.Errorf("node %d restored %d objects from its checkpoint, want %d",
			churn, restored, env.Plan.Objects)
	}
	env.Record("restored", int64(restored))

	for p, n := range postStorm(env, ptrs, posts-half) {
		expected[p] += n
	}
	env.WaitTermination()

	got := reportPhase(env, board, ptrs)
	return verifyCounts(env, ptrs, got, expected)
}

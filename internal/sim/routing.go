package sim

import (
	"fmt"

	"mrts/internal/core"
)

// RoutedChurnStorm is the routing-invariants scenario: an increment storm on
// a cluster whose first hops resolve off the epoch-versioned consistent-hash
// ring (the placed locator), racing the three things that make a resolution
// stale — migration drift off the ring placement, a graceful leave that
// re-homes a node's keys, and the rejoin that takes them back. Every
// increment must land exactly once, no message may die at the forward-hop
// bound (the loud-drop counter is audited both here and in the harness's
// quiescent CheckInvariants pass), and the placement invariants must hold at
// every epoch boundary.
type RoutedChurnStorm struct{}

// Name implements Scenario.
func (RoutedChurnStorm) Name() string { return "routed-churn-storm" }

// Fault implements Scenario.
func (RoutedChurnStorm) Fault() FaultKind { return FaultRoutedChurn }

// Run implements Scenario.
func (RoutedChurnStorm) Run(env *Env) error {
	board := &counterBoard{counts: make(map[core.MobilePtr]int64)}
	registerHandlers(env, board)
	ptrs := buildObjects(env)
	churn := env.Plan.ChurnNode
	posts := env.Plan.Nodes * env.Plan.Objects * env.Plan.Messages
	third := posts / 3
	env.Note("routed storm of %d posts under placed routing; node %d leaves and rejoins", posts, churn)

	// Settle every object at its ring owner first — the placement contract a
	// directory-driven application establishes by construction (meshgen
	// creates blocks at their owners). Until then the ring answers nothing
	// about these birth placements, so this must precede the first post.
	settled, err := env.Cluster.SettleAtOwners()
	if err != nil {
		return fmt.Errorf("settle: %w", err)
	}
	env.Record("settled", int64(settled))

	expected := postStorm(env, ptrs, third)

	// Migration drift: pull seed-drawn objects off their ring placement while
	// the storm is still in flight, so placed resolutions go stale and the
	// override/feedback repair path carries the load. Fire-and-forget like
	// MigrationShuffle: a busy object staying put changes no count.
	for i := 0; i < len(ptrs); i++ {
		p := ptrs[env.Rng.Intn(len(ptrs))]
		dest := core.NodeID(env.Rng.Intn(env.Plan.Nodes))
		env.Cluster.RT(int(p.Home)).RequestMigration(p, dest)
	}
	for p, n := range postStorm(env, ptrs, third) {
		expected[p] += n
	}
	env.WaitTermination()

	// A leave and a rejoin bump the membership epoch twice: every cached
	// resolution taken before is now stale and must re-resolve against the
	// new ring rather than trusting the old chain.
	if _, err := env.Cluster.LeaveNode(churn); err != nil {
		return fmt.Errorf("leave node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after leave"); err != nil {
		return err
	}
	if _, err := env.Cluster.JoinNode(churn); err != nil {
		return fmt.Errorf("rejoin node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after join"); err != nil {
		return err
	}

	for p, n := range postStorm(env, ptrs, posts-2*third) {
		expected[p] += n
	}
	env.WaitTermination()

	// The loud-drop contract, asserted where the failure names the scenario:
	// a routing cycle or a lost install surfaces as a counted drop, never as
	// a silently missing increment.
	if d := env.Cluster.RouteStats().Dropped; d != 0 {
		return fmt.Errorf("%d messages dropped at the forward-hop bound", d)
	}

	got := reportPhase(env, board, ptrs)
	return verifyCounts(env, ptrs, got, expected)
}

package sim

import (
	"fmt"

	"mrts/internal/meshgen"
)

// SpeculStorm runs the speculative refinement protocol (S-UPDR) on the
// simulated cluster: optimistic execution with epoch-stamped conflict
// detection, snapshot rollback and deterministic-priority retry — racing the
// plan's transient storage faults (speculative blocks swap mid-protocol and
// their loads fail transiently), the migrations the conflict multicasts
// issue to collect winner and loser on one node, and a graceful node churn
// between two full speculation rounds.
//
// The scenario checks the speculation invariants the harness cannot express
// generically:
//   - no committed cavity overlaps: the committed mesh has exactly the
//     in-core reference's element count and conforming interfaces — a block
//     that committed over a neighbor's conflicting cavity would break both;
//   - every rollback is followed by a retry or a loss: termination fired
//     with every block committed and (via core.CheckInvariants' quiescent
//     sweep, run by the harness audit) not one speculation snapshot left;
//   - termination is safe with speculation in flight: cl.Wait inside
//     RunSUPDR returns only once the protocol — announces, acks, conflict
//     multicasts, retries — has fully drained.
type SpeculStorm struct{}

// Name implements Scenario.
func (SpeculStorm) Name() string { return "specul-storm" }

// Fault implements Scenario.
func (SpeculStorm) Fault() FaultKind { return FaultSpecul }

// Run implements Scenario.
func (SpeculStorm) Run(env *Env) error {
	const blocks = 3
	target := 2000 + env.Rng.Intn(2000)
	prob := 0.2 + 0.1*float64(env.Rng.Intn(7)) // 0.2..0.8
	cfg := meshgen.UPDRConfig{Blocks: blocks, TargetElements: target}
	env.Note("speculative refinement of %d blocks to ~%d elements at conflict prob %.1f; node %d churns between rounds",
		blocks*blocks, target, prob, env.Plan.ChurnNode)

	// The in-core bulk-synchronous reference the speculative runs must
	// reproduce exactly (meshBlock is deterministic per block).
	want, err := meshgen.RunUPDR(cfg)
	if err != nil {
		return fmt.Errorf("in-core reference: %w", err)
	}

	round := func(tag string, seed int64) error {
		res, err := meshgen.RunSUPDR(env.Cluster, meshgen.SUPDRConfig{
			UPDRConfig:   cfg,
			ConflictProb: prob,
			Seed:         seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", tag, err)
		}
		if res.Elements != want.Elements {
			return fmt.Errorf("%s: speculative mesh has %d elements, in-core reference %d (a cavity committed over a conflict, or a rollback lost work)",
				tag, res.Elements, want.Elements)
		}
		if !res.Conforming {
			return fmt.Errorf("%s: committed interfaces do not conform", tag)
		}
		// Every rollback must have been followed by a successful retry:
		// the totals above prove every block committed exactly once, and
		// no node may still hold a pre-speculation snapshot.
		for i, rt := range env.Cluster.Runtimes() {
			if n := rt.SnapshotCount(); n != 0 {
				return fmt.Errorf("%s: node %d holds %d speculation snapshots after termination", tag, i, n)
			}
		}
		env.Record("elements."+tag, int64(res.Elements))
		return nil
	}

	if err := round("pre-churn", env.Plan.Seed); err != nil {
		return err
	}

	// Graceful churn between the rounds: the departing node drains its
	// committed blocks (and any counters) to the remaining members, the
	// second speculation round runs on the reduced cluster's survivors
	// plus the rejoined node.
	churn := env.Plan.ChurnNode
	if _, err := env.Cluster.LeaveNode(churn); err != nil {
		return fmt.Errorf("leave node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after leave"); err != nil {
		return err
	}
	if _, err := env.Cluster.JoinNode(churn); err != nil {
		return fmt.Errorf("rejoin node %d: %w", churn, err)
	}
	if err := auditPlacement(env, "after rejoin"); err != nil {
		return err
	}

	// Second round with a shifted conflict seed: fresh blocks, a fresh
	// conflict structure, on the post-churn membership.
	return round("post-churn", env.Plan.Seed+1_000_003)
}

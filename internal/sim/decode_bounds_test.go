package sim

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// A corrupted ballast length must be rejected before allocation: the old code
// would make() up to 4 GiB from one bad u32 and only then hit the short read.
func TestSimObjDecodeRejectsHugeBallast(t *testing.T) {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 7)
	binary.LittleEndian.PutUint32(hdr[8:12], 0xFFFFFFFF)
	var o simObj
	err := o.DecodeFrom(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("DecodeFrom(huge ballast) err = %v, want bound error", err)
	}
}

// Decoding into an object whose ballast already has capacity must reuse it
// (the swap hot path decodes into recycled objects).
func TestSimObjDecodeReusesBallastCapacity(t *testing.T) {
	src := simObj{Count: 3, Ballast: bytes.Repeat([]byte{0xAB}, 256)}
	var buf bytes.Buffer
	if err := src.EncodeTo(&buf); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	dst := simObj{Ballast: make([]byte, 1024)}
	keep := &dst.Ballast[0]
	if err := dst.DecodeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if dst.Count != 3 || len(dst.Ballast) != 256 {
		t.Fatalf("decoded count=%d len=%d, want 3, 256", dst.Count, len(dst.Ballast))
	}
	if &dst.Ballast[0] != keep {
		t.Fatal("DecodeFrom reallocated ballast despite sufficient capacity")
	}
	for i, b := range dst.Ballast {
		if b != 0xAB {
			t.Fatalf("ballast[%d] = %#x, want 0xAB", i, b)
		}
	}
}

// Truncated payload after a plausible length must still fail (the bound does
// not mask truncation detection).
func TestSimObjDecodeTruncatedBallast(t *testing.T) {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[8:12], 64)
	var o simObj
	if err := o.DecodeFrom(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("DecodeFrom(truncated ballast) succeeded, want error")
	}
}

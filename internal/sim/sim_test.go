package sim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// Replay controls: -sim.seed replays one failing seed, -sim.seeds sets the
// soak breadth. Every failure message embeds the exact replay command.
var (
	simSeed  = flag.Int64("sim.seed", 0, "replay a single simulation seed (0 = run the -sim.seeds sweep)")
	simSeeds = flag.Int("sim.seeds", 10, "number of seeds the soak sweep explores")
)

// scenarioForSeed distributes the seed space across the scenarios.
func scenarioForSeed(seed int64) Scenario {
	switch seed % 10 {
	case 0:
		return CounterStorm{}
	case 1:
		return CounterStorm{Transient: true}
	case 2:
		return MigrationShuffle{}
	case 3:
		return PermanentFaultStorm{}
	case 4:
		return TieredFaultStorm{}
	case 5:
		return NodeChurnStorm{}
	case 6:
		return NodeCrashStorm{}
	case 7:
		return RoutedChurnStorm{}
	case 8:
		return SpeculStorm{}
	default:
		return MeshRestoreStorm{}
	}
}

// runSeed executes one seed under a real-time watchdog (virtual time can
// only hang if the runtime deadlocks — that is itself a finding).
func runSeed(t *testing.T, seed int64) *Result {
	t.Helper()
	ch := make(chan *Result, 1)
	go func() { ch <- Run(seed, scenarioForSeed(seed)) }()
	select {
	case r := <-ch:
		return r
	case <-time.After(2 * time.Minute):
		t.Fatalf("seed %d: simulation hung; replay with: go test ./internal/sim -run Soak -sim.seed %d", seed, seed)
		return nil
	}
}

// TestSoak sweeps seeds (or replays one with -sim.seed), failing with the
// replay command and writing the failing-seed list to sim-failed-seeds.txt
// for the nightly job's artifact upload.
func TestSoak(t *testing.T) {
	var seeds []int64
	if *simSeed != 0 {
		seeds = []int64{*simSeed}
	} else {
		for s := int64(1); s <= int64(*simSeeds); s++ {
			seeds = append(seeds, s)
		}
	}
	var failed []int64
	for _, seed := range seeds {
		res := runSeed(t, seed)
		if res.Failed() {
			failed = append(failed, seed)
			t.Errorf("seed %d (%s) failed; replay with: go test ./internal/sim -run Soak -sim.seed %d\n%s",
				seed, res.Scenario, seed, res.TraceBytes())
		}
	}
	if len(failed) > 0 {
		var b strings.Builder
		for _, s := range failed {
			fmt.Fprintf(&b, "%d\n", s)
		}
		if err := os.WriteFile("sim-failed-seeds.txt", []byte(b.String()), 0o644); err != nil {
			t.Logf("could not write failing-seed list: %v", err)
		}
	}
}

// TestSeedReplayByteEqual runs one seed per scenario twice and requires the
// exported traces to match byte for byte — the property that makes
// -sim.seed replays trustworthy.
func TestSeedReplayByteEqual(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		first := runSeed(t, seed)
		second := runSeed(t, seed)
		if !bytes.Equal(first.TraceBytes(), second.TraceBytes()) {
			t.Errorf("seed %d: replay diverged\n--- first ---\n%s--- second ---\n%s",
				seed, first.TraceBytes(), second.TraceBytes())
		}
		if first.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, first.TraceBytes())
		}
	}
}

// TestPlanIsPureFunctionOfSeed pins the seed->plan mapping: expanding the
// same seed twice must yield identical plans (the replay guarantee's
// foundation).
func TestPlanIsPureFunctionOfSeed(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := expandPlan(seed, FaultTransient), expandPlan(seed, FaultTransient)
		if a != b {
			t.Fatalf("seed %d expanded to different plans:\n%+v\n%+v", seed, a, b)
		}
	}
}

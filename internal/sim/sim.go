// Package sim is the deterministic simulation harness for the MRTS runtime,
// in the FoundationDB style: a whole cluster — transport latency, disk
// service times, retry backoff, termination probing — runs on one virtual
// clock whose time advances only when every simulated goroutine has
// quiesced, and every source of randomness (cluster layout, fault schedule,
// work-stealing victims, retry jitter) derives from one seed. A failing seed
// is a complete reproduction recipe:
//
//	go test ./internal/sim -run Soak -sim.seed <seed>
//
// sim.Run(seed, scenario) expands the seed into a Plan (cluster shape,
// network and disk models, a slow node, a fault schedule), executes the
// scenario under continuous invariant checking, then audits the terminated
// cluster. The Result's TraceBytes renders the plan, the scenario's
// deterministic outcome digest, and any invariant violations canonically —
// re-running a seed must reproduce it byte for byte, which the test suite
// enforces for every seed it touches.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mrts/internal/clock"
	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/storage"
)

// Clock is the time source abstraction the runtime layers accept; the
// harness drives them with a clock.Virtual.
type Clock = clock.Clock

// FaultKind classifies the plan's injected storage faults.
type FaultKind int

// The fault schedules a plan can draw.
const (
	FaultNone      FaultKind = iota // clean stores
	FaultTransient                  // early failures absorbed by retry
	FaultPermanent                  // unreadable blobs: loud object loss
	// FaultTierTransient runs a tiered (remote memory over disk) cluster
	// whose remote-memory tier takes transient faults: writes spill to the
	// disk tier, reads fall back or retry — never an object loss.
	FaultTierTransient
	// FaultNodeCrash draws a churn victim (Plan.ChurnNode) on clean plain
	// disk stores: the scenario takes a whole node out mid-run — gracefully
	// (leave/join with directory rebalancing) or by crash (checkpoint,
	// teardown, restart) — and the directory invariants must hold through
	// every membership epoch.
	FaultNodeCrash
	// FaultRoutedChurn is FaultNodeCrash on a cluster routed by the placed
	// locator: first hops resolve off the epoch-versioned ring, so the
	// scenario races stale-epoch re-resolution and override repair against
	// migration drift and membership churn.
	FaultRoutedChurn
	// FaultSpecul races speculative refinement (S-UPDR snapshots, conflict
	// multicasts, rollback/retry) against transient storage faults and a
	// mid-run graceful churn of one node. The budget is sized for mesh
	// blocks rather than ballast counters, and a churn victim is drawn.
	FaultSpecul
	// FaultMeshRestore streams a mesh into a meshstore chunk while the
	// generating cluster takes transient swap faults, then restores the
	// store onto a differently-sized cluster whose swap stores fault too.
	// Mesh-sized budget like FaultSpecul, so blocks swap during both halves.
	FaultMeshRestore
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultTierTransient:
		return "tier-transient"
	case FaultNodeCrash:
		return "node-crash"
	case FaultRoutedChurn:
		return "routed-churn"
	case FaultSpecul:
		return "specul"
	case FaultMeshRestore:
		return "mesh-restore"
	default:
		return "invalid"
	}
}

// Plan is the seed-expanded shape of one simulated run. It is a pure
// function of the seed — every field is drawn before the cluster starts, so
// the plan renders identically on every replay.
type Plan struct {
	Seed       int64
	Nodes      int
	Workers    int           // PEs per node
	MemBudget  int64         // per-node byte budget, small enough to swap
	NetLatency time.Duration // transport latency (virtual time)
	DiskSeek   time.Duration // per-op disk seek (virtual time)
	SlowNode   int           // index of the node with a 4x slower disk, -1 none
	Fault      FaultKind
	FailFirst  int // transient: first N gets+puts per key fail
	GetProb    float64
	Retries    int // retry attempts budget
	Objects    int // objects the scenario should create per node
	Messages   int // messages the scenario should post per object
	// Tiered runs remote memory composed over disk (internal/tier);
	// TierCapacity is the per-node tier-0 lease (0 degenerates to pure
	// disk — a valid point the hierarchy must handle).
	Tiered       bool
	TierCapacity int64
	// ChurnNode is the node the churn scenarios take out mid-run
	// (FaultNodeCrash plans only; -1 otherwise).
	ChurnNode int
}

// expandPlan draws a Plan from the seed. All draws happen in a fixed order
// so the mapping seed -> Plan never shifts between runs of the same binary.
func expandPlan(seed int64, kind FaultKind) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{
		Seed:       seed,
		Nodes:      2 + rng.Intn(3),                                       // 2..4
		Workers:    1 + rng.Intn(2),                                       // 1..2
		MemBudget:  int64(4_000 + rng.Intn(12_000)),                       // forces swapping
		NetLatency: time.Duration(rng.Intn(500)) * time.Microsecond,       // 0..0.5ms
		DiskSeek:   time.Duration(100+rng.Intn(1_500)) * time.Microsecond, // 0.1..1.6ms
		SlowNode:   -1,
		ChurnNode:  -1,
		Fault:      kind,
		Retries:    3 + rng.Intn(3),
		Objects:    3 + rng.Intn(5), // per node
		Messages:   4 + rng.Intn(9), // per object
	}
	if rng.Intn(2) == 0 {
		p.SlowNode = rng.Intn(p.Nodes)
	}
	switch kind {
	case FaultTransient:
		p.FailFirst = 1 + rng.Intn(2)
	case FaultPermanent:
		p.GetProb = 0.5 + 0.5*rng.Float64()
	case FaultTierTransient:
		p.FailFirst = 1 + rng.Intn(2)
		p.Tiered = true
		if rng.Intn(6) == 0 {
			p.TierCapacity = 0 // degenerate point: the lease is gone entirely
		} else {
			p.TierCapacity = int64(2_000 + rng.Intn(10_000))
		}
	case FaultNodeCrash, FaultRoutedChurn:
		p.ChurnNode = rng.Intn(p.Nodes)
	case FaultSpecul:
		p.FailFirst = 1 + rng.Intn(2)
		p.ChurnNode = rng.Intn(p.Nodes)
		// Mesh blocks dwarf the counter objects' ballast: keep the budget
		// tight enough that speculative blocks still swap mid-protocol,
		// but large enough to hold a couple of refined blocks per node.
		p.MemBudget = int64(60_000 + rng.Intn(60_000))
	case FaultMeshRestore:
		p.FailFirst = 1 + rng.Intn(2)
		p.MemBudget = int64(60_000 + rng.Intn(60_000)) // mesh-sized, as above
	}
	return p
}

// clusterConfig materializes the plan into a cluster.Config on clk.
func (p Plan) clusterConfig(clk Clock, factory core.Factory) cluster.Config {
	cfg := cluster.Config{
		Nodes:          p.Nodes,
		WorkersPerNode: p.Workers,
		MemBudget:      p.MemBudget,
		Network:        comm.LatencyModel{Latency: p.NetLatency, BytesPerSec: 100e6},
		Factory:        factory,
		Clock:          clk,
		Seed:           p.Seed,
		Retry: storage.RetryPolicy{
			MaxAttempts: p.Retries,
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    5 * time.Millisecond,
			Seed:        p.Seed,
			Clock:       clk,
		},
	}
	if p.DiskSeek > 0 {
		seek := p.DiskSeek
		slow := p.SlowNode
		cfg.NodeDisk = func(node int) storage.DiskModel {
			d := storage.DiskModel{Seek: seek, BytesPerSec: 50e6}
			if node == slow {
				d.Seek *= 4
				d.BytesPerSec /= 4
			}
			return d
		}
	}
	switch p.Fault {
	case FaultRoutedChurn:
		cfg.Routing = cluster.RoutePlaced
	case FaultTransient, FaultSpecul, FaultMeshRestore:
		cfg.Fault = &storage.FaultConfig{
			Seed:          p.Seed,
			FailFirstGets: p.FailFirst,
			FailFirstPuts: p.FailFirst,
		}
	case FaultPermanent:
		cfg.Fault = &storage.FaultConfig{
			Seed:        p.Seed,
			GetFailProb: p.GetProb,
			Permanent:   true,
		}
	case FaultTierTransient:
		// The faults storm tier 0 only; the disk tier stays healthy, so
		// every blob always has a reachable home.
		cfg.RemoteMemory = true
		cfg.Tier = &cluster.TierSpec{
			Capacity: p.TierCapacity,
			Fault: &storage.FaultConfig{
				Seed:          p.Seed,
				FailFirstGets: p.FailFirst,
				FailFirstPuts: p.FailFirst,
			},
		}
	}
	return cfg
}

// render writes the plan canonically.
func (p Plan) render(w *strings.Builder) {
	fmt.Fprintf(w, "plan seed=%d nodes=%d workers=%d budget=%d", p.Seed, p.Nodes, p.Workers, p.MemBudget)
	fmt.Fprintf(w, " net=%s disk=%s slow=%d", p.NetLatency, p.DiskSeek, p.SlowNode)
	fmt.Fprintf(w, " fault=%s failfirst=%d getprob=%.3f retries=%d", p.Fault, p.FailFirst, p.GetProb, p.Retries)
	fmt.Fprintf(w, " objects=%d messages=%d tiered=%t tiercap=%d churn=%d\n",
		p.Objects, p.Messages, p.Tiered, p.TierCapacity, p.ChurnNode)
}

// Env is the execution environment handed to a scenario: the running
// cluster, the plan it was built from, and a seeded rng for the scenario's
// own deterministic choices (message targets, migration shuffles). The rng
// must be the scenario's only source of randomness.
type Env struct {
	Plan    Plan
	Cluster *cluster.Cluster
	Rng     *rand.Rand
	clk     *clock.Virtual

	digest map[string]int64
	notes  []string
}

// Clock returns the run's virtual clock.
func (e *Env) Clock() Clock { return e.clk }

// Record adds key=v to the run's outcome digest. Digest entries must be
// deterministic functions of the seed (confluent outcomes like final
// counter values — never interleaving-dependent counters like evictions),
// because the replay test compares rendered digests byte for byte.
func (e *Env) Record(key string, v int64) {
	e.digest[key] = v
}

// Note appends a plan-derived annotation to the trace. Like Record, notes
// must depend only on the seed.
func (e *Env) Note(format string, args ...any) {
	e.notes = append(e.notes, fmt.Sprintf(format, args...))
}

// WaitTermination runs the message-based termination protocol on every node
// (SPMD) and blocks until it fires — exercising the paper's detector under
// the simulated schedule rather than the driver-level shortcut.
func (e *Env) WaitTermination() {
	done := make(chan struct{}, e.Plan.Nodes)
	for _, rt := range e.Cluster.Runtimes() {
		rt := rt
		go func() {
			rt.WaitTermination(e.Plan.Nodes)
			done <- struct{}{}
		}()
	}
	for i := 0; i < e.Plan.Nodes; i++ {
		<-done
	}
}

// Scenario is one workload the harness can drive.
type Scenario interface {
	// Name labels the scenario in traces and failure output.
	Name() string
	// Fault selects the plan's fault schedule.
	Fault() FaultKind
	// Run drives the cluster to completion. When it returns the cluster
	// must be terminated (use env.WaitTermination or Cluster.Wait).
	Run(env *Env) error
}

// Result is the outcome of one simulated run.
type Result struct {
	Seed       int64
	Scenario   string
	Plan       Plan
	Notes      []string
	Digest     map[string]int64
	Violations []string
	Err        error
}

// Failed reports whether the run violated an invariant or returned an error.
func (r *Result) Failed() bool { return r.Err != nil || len(r.Violations) > 0 }

// TraceBytes renders the run canonically: plan, notes, digest (sorted),
// violations. Re-running the same seed must reproduce these bytes exactly;
// the suite's replay test enforces it.
func (r *Result) TraceBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", r.Scenario)
	r.Plan.render(&b)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note %s\n", n)
	}
	keys := make([]string, 0, len(r.Digest))
	for k := range r.Digest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "digest %s=%d\n", k, r.Digest[k])
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "error %v\n", r.Err)
	}
	return []byte(b.String())
}

// checkInterval is the virtual-time period of the continuous invariant
// sweep. Coarse enough not to dominate the schedule, fine enough to catch
// transient violations between workload phases.
const checkInterval = 2 * time.Millisecond

// Run executes scenario under virtual time with the fault schedule and
// cluster shape drawn from seed. Invariants are checked continuously during
// the run and exhaustively after termination; every violation carries the
// seed, so any red is replayable.
func Run(seed int64, scenario Scenario) *Result {
	plan := expandPlan(seed, scenario.Fault())
	res := &Result{Seed: seed, Scenario: scenario.Name(), Plan: plan,
		Digest: make(map[string]int64)}

	vclk := clock.NewVirtual()
	defer vclk.Stop()

	cl, err := cluster.New(plan.clusterConfig(vclk, simFactory))
	if err != nil {
		res.Err = fmt.Errorf("cluster: %w", err)
		return res
	}
	defer cl.Close()

	// Continuous checking: sweep the always-valid invariants while the
	// scenario runs. Sweeps ride the virtual clock, so they interleave with
	// every time advance the schedule makes.
	stop := make(chan struct{})
	sweepDone := make(chan []string, 1)
	go func() {
		var found []string
		for {
			select {
			case <-stop:
				sweepDone <- found
				return
			default:
			}
			for _, rt := range cl.Runtimes() {
				found = append(found, rt.CheckInvariants(false)...)
			}
			for _, ts := range cl.Tiers() {
				// Always-true tier properties: lease never exceeded,
				// accounting self-consistent.
				found = append(found, ts.CheckInvariants(false)...)
			}
			// Ring structure is always valid — every key has exactly one
			// owner in every epoch. (Per-object single-host placement is a
			// quiescent property: it is checked in the final audit, where
			// no migration is in flight to straddle two nodes.)
			found = append(found, cl.Directory().CheckInvariants()...)
			if len(found) > 8 {
				found = found[:8] // one broken invariant repeats; cap the noise
			}
			vclk.Sleep(checkInterval)
		}
	}()

	env := &Env{
		Plan:    plan,
		Cluster: cl,
		Rng:     rand.New(rand.NewSource(seed ^ 0x5eed)),
		clk:     vclk,
		digest:  res.Digest,
	}
	res.Err = scenario.Run(env)
	res.Notes = env.notes

	close(stop)
	res.Violations = append(res.Violations, <-sweepDone...)

	// Terminated-state audit: the full invariant set, plus the global
	// message balance and the swapio class-order property.
	if res.Err == nil {
		var work, sent, recv int64
		for _, rt := range cl.Runtimes() {
			res.Violations = append(res.Violations, rt.CheckInvariants(true)...)
			work += rt.Work()
			sent += rt.SentCount()
			recv += rt.RecvCount()
		}
		if work != 0 || sent != recv {
			res.Violations = append(res.Violations,
				fmt.Sprintf("termination fired with work=%d sent=%d recv=%d", work, sent, recv))
		}
		// Placement audit: every object hosted by exactly one active node,
		// drained nodes empty, ring membership matching node state.
		res.Violations = append(res.Violations, cl.DirectoryInvariants()...)
		if inv := cl.IOStats().PriorityInversions; inv != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("swapio dispatched %d prefetches past queued demand loads", inv))
		}
		// Tiered clusters: wait out in-flight demotions/promotions, then
		// audit single-tier residency and the lease exhaustively.
		for _, ts := range cl.Tiers() {
			ts.WaitIdle()
			res.Violations = append(res.Violations, ts.CheckInvariants(true)...)
		}
	}
	return res
}

package sim

import (
	"testing"
	"time"

	"mrts/internal/clock"
	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/meshgen"
	"mrts/internal/storage"
)

// meshPropSeeds is how many random fault schedules the mesh equality
// property explores per run. Each seed reshapes the schedule end to end:
// work-stealing victims, retry jitter, fault injection, modeled disk and
// network latency all derive from it.
const meshPropSeeds = 3

// meshPropConfig mirrors the meshgen fault suite's proven-deterministic
// workload: four blocks refined to ~12k elements on two nodes.
var meshPropConfig = meshgen.UPDRConfig{Blocks: 4, TargetElements: 12000}

// inCoreReference runs the mesh generation once with a budget so large
// nothing ever swaps: the ground truth the out-of-core runs must reproduce.
func inCoreReference(t *testing.T) meshgen.Result {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:     2,
		MemBudget: 1 << 30,
		Factory:   meshgen.Factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	res, err := meshgen.RunOUPDR(cl, meshPropConfig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Evictions != 0 {
		t.Fatalf("in-core reference evicted %d objects; budget too small for a true in-core run", res.Mem.Evictions)
	}
	return res
}

// TestMeshFaultEqualityProperty is the paper's central claim as a property
// test: for every seed, an out-of-core run — tiny budget, modeled network
// and disk latency, a slow node, transient storage faults absorbed by
// seeded-backoff retry, all on virtual time — produces a mesh identical to
// the in-core run.
func TestMeshFaultEqualityProperty(t *testing.T) {
	want := inCoreReference(t)

	for seed := int64(1); seed <= meshPropSeeds; seed++ {
		vclk := clock.NewVirtual()
		cl, err := cluster.New(cluster.Config{
			Nodes:     2,
			MemBudget: 200_000, // tiny: blocks must swap under faults
			Factory:   meshgen.Factory,
			Clock:     vclk,
			Seed:      seed,
			Network:   comm.LatencyModel{Latency: time.Duration(50*(seed%5)) * time.Microsecond, BytesPerSec: 100e6},
			NodeDisk: func(node int) storage.DiskModel {
				d := storage.DiskModel{Seek: time.Duration(100+50*seed) * time.Microsecond, BytesPerSec: 50e6}
				if node == int(seed)%2 {
					d.Seek *= 4 // one slow node per schedule
				}
				return d
			},
			Fault: &storage.FaultConfig{
				Seed:          seed,
				FailFirstGets: int(1 + seed%2),
				FailFirstPuts: int(1 + seed%2),
			},
			Retry: storage.RetryPolicy{
				MaxAttempts: 5,
				BaseDelay:   50 * time.Microsecond,
				MaxDelay:    time.Millisecond,
				Seed:        seed,
				Clock:       vclk,
			},
		})
		if err != nil {
			vclk.Stop()
			t.Fatal(err)
		}
		got, err := meshgen.RunOUPDR(cl, meshPropConfig)
		stats := cl.SwapStats()
		cl.Close()
		vclk.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Mem.Evictions == 0 {
			t.Errorf("seed %d: out-of-core run never swapped; the property was not exercised", seed)
		}
		if got.Elements != want.Elements {
			t.Errorf("seed %d: out-of-core mesh has %d elements, in-core has %d", seed, got.Elements, want.Elements)
		}
		if !got.Conforming {
			t.Errorf("seed %d: submesh interfaces no longer conform", seed)
		}
		if stats.ObjectsLost != 0 || stats.LoadFailures != 0 || stats.StoreFailures != 0 {
			t.Errorf("seed %d: transient faults leaked into SwapStats: %+v", seed, stats)
		}
		if stats.Retries == 0 {
			t.Errorf("seed %d: no retries recorded; the fault injection did not engage", seed)
		}
	}
}

// TestMeshFaultEqualityPropertyTiered repeats the equality property on the
// tiered hierarchy: remote memory with a bounded lease fronting the faulty,
// latency-modeled disk, while the remote tier takes its own transient fault
// schedule. Placement decisions (admit, spill, demote, promote) and tier-0
// faults must be invisible to the mesh: same elements, conforming
// interfaces, nothing lost.
func TestMeshFaultEqualityPropertyTiered(t *testing.T) {
	want := inCoreReference(t)

	for seed := int64(1); seed <= meshPropSeeds; seed++ {
		vclk := clock.NewVirtual()
		cl, err := cluster.New(cluster.Config{
			Nodes:        2,
			MemBudget:    200_000, // tiny: blocks must swap under faults
			Factory:      meshgen.Factory,
			Clock:        vclk,
			Seed:         seed,
			RemoteMemory: true,
			Tier: &cluster.TierSpec{
				Capacity: 30_000, // a fraction of the spilled bytes: forces both tiers into play
				Fault: &storage.FaultConfig{
					Seed:          seed * 31,
					FailFirstGets: 1,
					FailFirstPuts: 1,
				},
			},
			Network: comm.LatencyModel{Latency: time.Duration(50*(seed%5)) * time.Microsecond, BytesPerSec: 100e6},
			NodeDisk: func(node int) storage.DiskModel {
				d := storage.DiskModel{Seek: time.Duration(100+50*seed) * time.Microsecond, BytesPerSec: 50e6}
				if node == int(seed)%2 {
					d.Seek *= 4 // one slow node per schedule
				}
				return d
			},
			Fault: &storage.FaultConfig{
				Seed:          seed,
				FailFirstGets: int(1 + seed%2),
				FailFirstPuts: int(1 + seed%2),
			},
			Retry: storage.RetryPolicy{
				MaxAttempts: 5,
				BaseDelay:   50 * time.Microsecond,
				MaxDelay:    time.Millisecond,
				Seed:        seed,
				Clock:       vclk,
			},
		})
		if err != nil {
			vclk.Stop()
			t.Fatal(err)
		}
		got, err := meshgen.RunOUPDR(cl, meshPropConfig)
		stats := cl.SwapStats()
		ts := cl.TierStats()
		var violations []string
		for _, s := range cl.Tiers() {
			s.WaitIdle()
			violations = append(violations, s.CheckInvariants(true)...)
		}
		cl.Close()
		vclk.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Mem.Evictions == 0 {
			t.Errorf("seed %d: out-of-core run never swapped; the property was not exercised", seed)
		}
		if got.Elements != want.Elements {
			t.Errorf("seed %d: tiered mesh has %d elements, in-core has %d", seed, got.Elements, want.Elements)
		}
		if !got.Conforming {
			t.Errorf("seed %d: submesh interfaces no longer conform", seed)
		}
		if stats.ObjectsLost != 0 || stats.LoadFailures != 0 || stats.StoreFailures != 0 {
			t.Errorf("seed %d: transient faults leaked into SwapStats: %+v", seed, stats)
		}
		if len(violations) > 0 {
			t.Errorf("seed %d: tier invariants: %v", seed, violations)
		}
		if ts.FastPuts == 0 || ts.Spills == 0 {
			t.Errorf("seed %d: both tiers were not exercised: %+v", seed, ts)
		}
		if stats.Retries+ts.FastPutErrors+ts.FastReadErrors == 0 {
			t.Errorf("seed %d: no fault was ever absorbed; the injection did not engage", seed)
		}
	}
}

// TestSpeculMeshFaultEquality extends the equality property to speculative
// refinement: for every seed, an S-UPDR run under the full adverse schedule
// — tiny budget, modeled latency, a slow node, transient storage faults,
// plus injected speculation conflicts forcing snapshot rollbacks and
// epoch-bumped retries — produces a mesh byte-identical (canonical
// sorted-triangle digest) to the in-core bulk-synchronous run.
func TestSpeculMeshFaultEquality(t *testing.T) {
	want := inCoreReference(t)
	if want.MeshHash == "" {
		t.Fatal("in-core reference carries no mesh hash")
	}

	for seed := int64(1); seed <= meshPropSeeds; seed++ {
		vclk := clock.NewVirtual()
		cl, err := cluster.New(cluster.Config{
			Nodes:     2,
			MemBudget: 200_000, // tiny: blocks must swap mid-speculation
			Factory:   meshgen.Factory,
			Clock:     vclk,
			Seed:      seed,
			Network:   comm.LatencyModel{Latency: time.Duration(50*(seed%5)) * time.Microsecond, BytesPerSec: 100e6},
			NodeDisk: func(node int) storage.DiskModel {
				d := storage.DiskModel{Seek: time.Duration(100+50*seed) * time.Microsecond, BytesPerSec: 50e6}
				if node == int(seed)%2 {
					d.Seek *= 4 // one slow node per schedule
				}
				return d
			},
			Fault: &storage.FaultConfig{
				Seed:          seed,
				FailFirstGets: int(1 + seed%2),
				FailFirstPuts: int(1 + seed%2),
			},
			Retry: storage.RetryPolicy{
				MaxAttempts: 5,
				BaseDelay:   50 * time.Microsecond,
				MaxDelay:    time.Millisecond,
				Seed:        seed,
				Clock:       vclk,
			},
		})
		if err != nil {
			vclk.Stop()
			t.Fatal(err)
		}
		got, err := meshgen.RunSUPDR(cl, meshgen.SUPDRConfig{
			UPDRConfig:   meshPropConfig,
			ConflictProb: 0.3 + 0.2*float64(seed%3), // 0.3..0.7: rollbacks guaranteed at this grid size
			Seed:         seed,
		})
		var snaps int
		for _, rt := range cl.Runtimes() {
			snaps += rt.SnapshotCount()
		}
		stats := cl.SwapStats()
		cl.Close()
		vclk.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.MeshHash != want.MeshHash {
			t.Errorf("seed %d: speculative mesh hash %s != bulk-sync in-core %s",
				seed, got.MeshHash, want.MeshHash)
		}
		if got.Mem.Evictions == 0 {
			t.Errorf("seed %d: run never swapped; the property was not exercised", seed)
		}
		if got.Rollbacks == 0 {
			t.Errorf("seed %d: no speculation was ever rolled back; the conflict injection did not engage", seed)
		}
		if !got.Conforming {
			t.Errorf("seed %d: committed interfaces no longer conform", seed)
		}
		if snaps != 0 {
			t.Errorf("seed %d: %d speculation snapshots survived termination", seed, snaps)
		}
		if stats.ObjectsLost != 0 || stats.LoadFailures != 0 || stats.StoreFailures != 0 {
			t.Errorf("seed %d: transient faults leaked into SwapStats: %+v", seed, stats)
		}
		if stats.Retries == 0 {
			t.Errorf("seed %d: no retries recorded; the fault injection did not engage", seed)
		}
	}
}

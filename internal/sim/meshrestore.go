package sim

import (
	"fmt"
	"os"
	"time"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/meshstore"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// MeshRestoreStorm is the N→M restore property under the simulated schedule:
// the cluster meshes OUPDR while streaming every block into a meshstore
// chunk — with the plan's transient swap faults firing under the mesh-sized
// budget, so blocks round-trip through the faulty store mid-export — then
// the sealed store is restored onto M ≠ N nodes whose swap stores fault
// too, and the restored mesh must reproduce the run's canonical MeshHash
// exactly. Nothing in the chunk may remember N: the restore side rewrites
// every neighbor pointer against its own placement.
type MeshRestoreStorm struct{}

// Name implements Scenario.
func (MeshRestoreStorm) Name() string { return "mesh-restore-storm" }

// Fault implements Scenario.
func (MeshRestoreStorm) Fault() FaultKind { return FaultMeshRestore }

// Run implements Scenario.
func (MeshRestoreStorm) Run(env *Env) error {
	const blocks = 3
	target := 2000 + env.Rng.Intn(2000)
	// Restore onto a deliberately different cluster size: grow by one or
	// two, or shrink by one when the plan has nodes to spare. Drawn from the
	// scenario rng so the same seed always replays the same M.
	m := env.Plan.Nodes + 1 + env.Rng.Intn(2)
	if env.Rng.Intn(2) == 0 && env.Plan.Nodes > 1 {
		m = env.Plan.Nodes - 1
	}
	env.Note("mesh %d blocks to ~%d elements, exported by %d nodes, restored onto %d",
		blocks*blocks, target, env.Plan.Nodes, m)

	dir, err := os.MkdirTemp("", "sim-meshstore-")
	if err != nil {
		return fmt.Errorf("store dir: %w", err)
	}
	defer os.RemoveAll(dir)

	w, err := meshstore.NewWriter(meshstore.WriterConfig{
		Dir:    dir,
		Writer: 0,
		Meta: meshstore.Meta{
			Blocks:         blocks,
			TargetElements: target,
		},
		Compress: true,
	})
	if err != nil {
		return fmt.Errorf("writer: %w", err)
	}
	res, err := meshgen.RunOUPDR(env.Cluster, meshgen.UPDRConfig{
		Blocks:         blocks,
		TargetElements: target,
		Export:         w,
	})
	if err != nil {
		w.Close()
		return fmt.Errorf("oupdr export: %w", err)
	}
	if !res.Conforming {
		return fmt.Errorf("exported mesh interfaces do not conform")
	}
	if _, err := w.Finalize(); err != nil {
		return fmt.Errorf("finalize: %w", err)
	}
	man, err := meshstore.MergeManifests(dir)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	if man.Partial || man.MeshHash != res.MeshHash {
		return fmt.Errorf("manifest partial=%v hash %s, run hash %s",
			man.Partial, man.MeshHash, res.MeshHash)
	}
	rep, err := meshstore.Verify(dir)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if !rep.OK() {
		return fmt.Errorf("store verify: %v", rep.Problems)
	}

	got, err := restoreOnto(env, m, dir)
	if err != nil {
		return err
	}
	if got != res.MeshHash {
		return fmt.Errorf("restore onto %d nodes: MeshHash %s != exported %s", m, got, res.MeshHash)
	}
	// The chunk's byte size is deliberately absent from the digest: the
	// encoded mesh bytes are not canonical (only the sorted-triangle digest
	// is), so frame sizes vary between replays of the same seed.
	env.Record("blocks", int64(blocks*blocks))
	env.Record("elements", int64(res.Elements))
	env.Record("restore.nodes", int64(m))
	return nil
}

// restoreOnto rebuilds the store onto m fresh in-proc nodes whose swap
// stores take the plan's transient faults, dumps every block, and returns
// the restored mesh's canonical hash.
func restoreOnto(env *Env, m int, dir string) (string, error) {
	st, err := meshstore.Open(dir)
	if err != nil {
		return "", fmt.Errorf("open store: %w", err)
	}
	defer st.Close()
	meta := st.Manifest().Meta

	tr := comm.NewInProc(m, comm.LatencyModel{})
	rts := make([]*core.Runtime, m)
	defer func() {
		for _, rt := range rts {
			if rt != nil {
				rt.Close()
			}
		}
	}()
	ds := make([]*meshgen.Dist, m)
	for i := 0; i < m; i++ {
		rts[i] = core.NewRuntime(core.Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     sched.NewWorkStealing(env.Plan.Workers),
			Factory:  meshgen.Factory,
			Mem:      ooc.Config{Budget: env.Plan.MemBudget},
			Store: storage.NewFault(storage.NewMem(), storage.FaultConfig{
				Seed:          env.Plan.Seed + int64(i), // distinct per-node streams
				FailFirstGets: env.Plan.FailFirst,
				FailFirstPuts: env.Plan.FailFirst,
			}),
			Retry: storage.RetryPolicy{
				MaxAttempts: env.Plan.Retries + 2,
				BaseDelay:   50 * time.Microsecond,
				MaxDelay:    time.Millisecond,
			},
			NumNodes: m,
		})
		d, err := meshgen.NewDist(rts[i], meshgen.DistConfig{
			Blocks:         meta.Blocks,
			TargetElements: meta.TargetElements,
			QualityBound:   meta.QualityBound,
			Nodes:          m,
			Node:           i,
		})
		if err != nil {
			return "", fmt.Errorf("restore dist %d: %w", i, err)
		}
		if err := d.RestoreFromStore(st); err != nil {
			return "", fmt.Errorf("restore node %d: %w", i, err)
		}
		ds[i] = d
	}
	dumps := make([][]meshgen.BlockDump, m)
	done := make(chan int, m)
	for i, d := range ds {
		i, d := i, d
		go func() {
			dumps[i] = d.Dump()
			done <- i
		}()
	}
	for range ds {
		<-done
	}
	var all []meshgen.BlockDump
	for _, part := range dumps {
		all = append(all, part...)
	}
	if len(all) != meta.Blocks*meta.Blocks {
		return "", fmt.Errorf("restored cluster dumped %d blocks, want %d", len(all), meta.Blocks*meta.Blocks)
	}
	return meshgen.MeshHashOf(all), nil
}

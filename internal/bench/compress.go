package bench

import (
	"fmt"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/meshgen"
	"mrts/internal/storage"
)

// Compress runs the same OPCDM problem through the tiered hierarchy with the
// tier-0.5 compression layer off and on. The point of comparison is the
// bottom of the hierarchy: bytes_moved is measured at the raw disk store,
// below the compression layer, so the "on" run must move fewer media bytes
// for the same mesh — the ratio is the layer's whole value proposition. Time
// should not regress: DEFLATE at BestSpeed costs microseconds per blob while
// the modeled disk charges milliseconds for the bytes it saves.
func Compress(opts Options) (*Table, error) {
	t := &Table{
		ID:      "compress",
		Title:   "tier-0.5 transparent compression: OPCDM with the layer off vs on",
		Headers: []string{"compression", "time", "disk bytes moved", "ratio", "cache hit%"},
		Notes: []string{
			"bytes moved is measured at the raw disk store, below the compression layer",
			"ratio = raw bytes / stored bytes across every framed blob; cache holds compressed frames",
		},
	}
	size := opts.size(60000)
	// The same bounded tier-0 lease as the tiers experiment's midpoint: a
	// real spill stream is what gives the compression layer traffic.
	capMid := int64(size * bytesPerElement / 6 / opts.PEs)
	sweep := []struct {
		label string
		spec  *cluster.CompressSpec
	}{
		{"off", nil},
		{"on", &cluster.CompressSpec{CacheBytes: 1 << 20}},
	}
	for _, pt := range sweep {
		dir, err := os.MkdirTemp("", "mrts-bench-")
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:        opts.PEs,
			MemBudget:    int64(size * bytesPerElement / 3 / opts.PEs),
			RemoteMemory: true,
			Tier:         &cluster.TierSpec{Capacity: capMid, Compress: pt.spec},
			SpoolDir:     dir,
			Factory:      meshgen.Factory,
			Network:      comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
			Disk:         storage.DiskModel{Seek: 600 * time.Microsecond, BytesPerSec: 150 << 20},
			Trace:        opts.Trace,
			TraceLabel:   fmt.Sprintf("compress/%s/", pt.label),
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		res, err := meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: size})
		disk := cl.DiskStats()
		cst, haveStats := cl.CompressStats()
		cl.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		bytesMoved := disk.BytesWritten + disk.BytesRead
		ratioCol, hitCol := "—", "—"
		if haveStats {
			ratioCol = fmt.Sprintf("%.2fx", cst.Ratio())
			hitCol = fmtPct(cst.CacheHitRatio() * 100)
		}
		t.AddRow(pt.label, fmtDur(res.Elapsed), fmtInt(int(bytesMoved)), ratioCol, hitCol)
		prefix := fmt.Sprintf("sz%d/%s", size, pt.label)
		t.SetMetric(prefix+"/time_sec", res.Elapsed.Seconds())
		t.SetMetric(prefix+"/bytes_moved", float64(bytesMoved))
		if haveStats {
			t.SetMetric(prefix+"/compress_ratio", cst.Ratio())
			t.SetMetric(prefix+"/tier05_hit_pct", cst.CacheHitRatio()*100)
		}
	}
	return t, nil
}

// Package bench is the harness that regenerates every figure and table of
// the paper's evaluation section (see DESIGN.md for the experiment index).
// Each experiment function returns a Table whose rows mirror the series the
// paper plots; cmd/mrtsbench and the root bench_test.go both drive it.
//
// Absolute numbers cannot match 2005-era SPARC/Power5 clusters; the harness
// targets the paper's shapes: small OOC overhead in-core, near-linear time
// growth past the memory budget, flat per-PE Speed, high comp/comm/disk
// overlap, and the LRU-vs-LFU policy ordering for PCDM.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one reproduced figure or table.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	// Metrics carries the machine-readable counterpart of the rendered
	// rows: named scalar results (speeds, overlaps, times) keyed by a
	// stable "sz<configured-size>/<metric>" convention so runs at the same
	// scale can be diffed. This is what BENCH_*.json and the CI
	// benchmark-regression gate consume.
	Metrics map[string]float64
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// SetMetric records a machine-readable scalar result.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = v
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], c))
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Headers)
	total := len(t.Headers) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Formatting helpers.

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return d.String()
	}
}

func fmtPct(p float64) string { return fmt.Sprintf("%.1f%%", p) }

func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

func fmtK(v int) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0fk", float64(v)/1000)
	}
	return fmt.Sprintf("%d", v)
}

func fmtSpeed(s float64) string { return fmt.Sprintf("%.0f", s) }

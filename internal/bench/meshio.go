package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/meshstore"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// MeshIO measures the mesh checkpoint/serve format's data path. The
// synthetic stage streams a fixed grid of seeded payloads through one chunk
// writer and reads every block back through the store index: write and read
// MB/s, plus the exact framed byte count on disk — the payloads and their
// order are fixed, so bytes_moved is deterministic and the CI gate bounds it
// tightly (a lost compression win or a double-write trips it regardless of
// machine speed). The integration stage runs OUPDR with streaming export on
// an out-of-core cluster and restores the sealed store onto a two-node
// cluster, verifying the canonical MeshHash end to end.
func MeshIO(opts Options) (*Table, error) {
	t := &Table{
		ID:      "meshio",
		Title:   "meshstore chunk write/read throughput and export/restore round trip",
		Headers: []string{"stage", "blocks", "payload MB", "time", "MB/s"},
		Notes: []string{
			"synthetic payloads and append order are fixed so bytes_moved is deterministic across machines",
			"restore rebuilds the exported mesh on a 2-node cluster and must reproduce the MeshHash",
		},
	}
	if err := meshIOSynthetic(t); err != nil {
		return nil, err
	}
	if err := meshIOExportRestore(t, opts); err != nil {
		return nil, err
	}
	return t, nil
}

// meshIOSynthetic streams a fixed 12x12 grid of 48 KiB payloads through the
// chunk writer and reads them all back.
func meshIOSynthetic(t *Table) error {
	const (
		grid        = 12
		payloadSize = 48 << 10
	)
	dir, err := os.MkdirTemp("", "mrts-meshio-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Mid-entropy payloads (6 bits per byte): flate shrinks them, but not to
	// nothing, so both the compressed and the raw framing paths are realistic.
	// The seed is fixed — the byte stream, and with it every frame length,
	// must not drift between baseline and gated run.
	rng := rand.New(rand.NewSource(42))
	payloads := make([][]byte, grid*grid)
	for i := range payloads {
		p := make([]byte, payloadSize)
		for j := range p {
			p[j] = byte(rng.Intn(64))
		}
		payloads[i] = p
	}
	rawMB := float64(grid*grid*payloadSize) / (1 << 20)

	w, err := meshstore.NewWriter(meshstore.WriterConfig{
		Dir:      dir,
		Writer:   0,
		Meta:     meshstore.Meta{Blocks: grid, TargetElements: grid * grid},
		Compress: true,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	for j := 0; j < grid; j++ {
		for i := 0; i < grid; i++ {
			p := payloads[j*grid+i]
			sum := sha256.Sum256(p)
			err := w.Append(meshstore.BlockKey(i, j), i, j, 1, hex.EncodeToString(sum[:]), p)
			if err != nil {
				return err
			}
		}
	}
	if _, err := w.Finalize(); err != nil {
		return err
	}
	writeTime := time.Since(start)
	if _, err := meshstore.MergeManifests(dir); err != nil {
		return err
	}

	st, err := meshstore.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	start = time.Now()
	var readBytes int
	for j := 0; j < grid; j++ {
		for i := 0; i < grid; i++ {
			p, _, err := st.Payload(meshstore.BlockKey(i, j))
			if err != nil {
				return err
			}
			readBytes += len(p)
		}
	}
	readTime := time.Since(start)
	if readBytes != grid*grid*payloadSize {
		return fmt.Errorf("bench: read back %d payload bytes, want %d", readBytes, grid*grid*payloadSize)
	}

	writeMBps := rawMB / writeTime.Seconds()
	readMBps := rawMB / readTime.Seconds()
	t.AddRow("synthetic write", fmtInt(grid*grid), fmt.Sprintf("%.1f", rawMB), fmtDur(writeTime), fmt.Sprintf("%.0f", writeMBps))
	t.AddRow("synthetic read", fmtInt(grid*grid), fmt.Sprintf("%.1f", rawMB), fmtDur(readTime), fmt.Sprintf("%.0f", readMBps))
	t.SetMetric("synth/speed_write_mbps", writeMBps)
	t.SetMetric("synth/speed_read_mbps", readMBps)
	t.SetMetric("synth/time_write_sec", writeTime.Seconds())
	t.SetMetric("synth/time_read_sec", readTime.Seconds())
	t.SetMetric("synth/bytes_moved", float64(w.Bytes()))
	return nil
}

// meshIOExportRestore runs OUPDR with streaming export on an out-of-core
// cluster and restores the sealed store onto a fresh 2-node cluster.
func meshIOExportRestore(t *Table, opts Options) error {
	size := opts.size(30000)
	dir, err := os.MkdirTemp("", "mrts-meshio-exp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cl, cleanup, err := oocCluster(opts.PEs, size/3, ooc.LRU, cluster.WorkStealing, 1, opts.Trace, "meshio/")
	if err != nil {
		return err
	}
	const blocks = 6
	w, err := meshstore.NewWriter(meshstore.WriterConfig{
		Dir:      dir,
		Writer:   0,
		Meta:     meshstore.Meta{Blocks: blocks, TargetElements: size},
		Compress: true,
	})
	if err != nil {
		cleanup()
		return err
	}
	start := time.Now()
	res, err := meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: blocks, TargetElements: size, Export: w})
	cleanup()
	if err != nil {
		return err
	}
	if _, err := w.Finalize(); err != nil {
		return err
	}
	exportTime := time.Since(start)
	man, err := meshstore.MergeManifests(dir)
	if err != nil {
		return err
	}
	if man.Partial || man.MeshHash != res.MeshHash {
		return fmt.Errorf("bench: exported store partial=%v hash %s, run hash %s", man.Partial, man.MeshHash, res.MeshHash)
	}
	expMB := float64(w.Bytes()) / (1 << 20)

	start = time.Now()
	got, err := meshIORestore(2, dir)
	if err != nil {
		return err
	}
	restoreTime := time.Since(start)
	if got != res.MeshHash {
		return fmt.Errorf("bench: restored MeshHash %s != exported %s", got, res.MeshHash)
	}

	t.AddRow("oupdr export (run+stream)", fmtInt(blocks*blocks), fmt.Sprintf("%.1f", expMB), fmtDur(exportTime), "")
	t.AddRow("restore onto 2 nodes", fmtInt(blocks*blocks), fmt.Sprintf("%.1f", expMB), fmtDur(restoreTime),
		fmt.Sprintf("%.0f", expMB/restoreTime.Seconds()))
	t.SetMetric(fmt.Sprintf("sz%d/time_export_run_sec", size), exportTime.Seconds())
	t.SetMetric(fmt.Sprintf("sz%d/time_restore_sec", size), restoreTime.Seconds())
	return nil
}

// meshIORestore rebuilds the store onto m in-proc nodes and returns the
// restored mesh's canonical hash.
func meshIORestore(m int, dir string) (string, error) {
	st, err := meshstore.Open(dir)
	if err != nil {
		return "", err
	}
	defer st.Close()
	meta := st.Manifest().Meta

	tr := comm.NewInProc(m, comm.LatencyModel{})
	defer tr.Close()
	rts := make([]*core.Runtime, m)
	defer func() {
		for _, rt := range rts {
			if rt != nil {
				rt.Close()
			}
		}
	}()
	ds := make([]*meshgen.Dist, m)
	for i := 0; i < m; i++ {
		rts[i] = core.NewRuntime(core.Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     sched.NewWorkStealing(2),
			Factory:  meshgen.Factory,
			Mem:      ooc.Config{Budget: int64(meta.TargetElements) * 30},
			Store:    storage.NewMem(),
			NumNodes: m,
		})
		d, err := meshgen.NewDist(rts[i], meshgen.DistConfig{
			Blocks:         meta.Blocks,
			TargetElements: meta.TargetElements,
			QualityBound:   meta.QualityBound,
			Nodes:          m,
			Node:           i,
		})
		if err != nil {
			return "", err
		}
		if err := d.RestoreFromStore(st); err != nil {
			return "", err
		}
		ds[i] = d
	}
	dumps := make([][]meshgen.BlockDump, m)
	done := make(chan struct{}, m)
	for i, d := range ds {
		i, d := i, d
		go func() {
			dumps[i] = d.Dump()
			done <- struct{}{}
		}()
	}
	for range ds {
		<-done
	}
	var all []meshgen.BlockDump
	for _, part := range dumps {
		all = append(all, part...)
	}
	if len(all) != meta.Blocks*meta.Blocks {
		return "", fmt.Errorf("bench: restore dumped %d blocks, want %d", len(all), meta.Blocks*meta.Blocks)
	}
	return meshgen.MeshHashOf(all), nil
}

package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/meshgen"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
	"mrts/internal/trace"
)

// Options tune the harness for the machine it runs on.
type Options struct {
	// Scale multiplies every problem size (1.0 reproduces the default
	// laptop-scale series; the paper's absolute sizes need a cluster).
	Scale float64
	// PEs is the processing element count for the in-core runs and the
	// node count for out-of-core clusters (0 = 4).
	PEs int
	// Trace, when non-nil, wires structured event tracing into every
	// cluster the experiments build; the caller exports the sink to a
	// Perfetto-loadable file afterwards (mrtsbench -trace).
	Trace *obs.TraceSink
	// Seed perturbs every seeded random stream the experiments draw
	// (access skew, directory traffic). Zero keeps the legacy fixed
	// seeds, so the CI bench baseline stays bit-stable by default.
	Seed int64
	// Dir, when non-empty, restricts locator-sweep experiments (routing) to
	// one locator kind ("lazy", "eager", "home" or "placed") so a single
	// cell can run standalone (mrtsbench -dir placed -exp routing).
	Dir string
}

// seedFor returns the rng seed for one experiment stream: the stream's
// legacy fixed seed when no global seed was given, otherwise the global
// seed folded with the stream id so distinct streams stay decorrelated.
func (o Options) seedFor(stream int64) int64 {
	if o.Seed == 0 {
		return stream
	}
	return o.Seed + stream*7919
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.PEs <= 0 {
		o.PEs = 4
	}
	return o
}

func (o Options) size(base int) int { return int(float64(base) * o.Scale) }

// Experiments lists every experiment ID in paper order.
func Experiments() []string {
	return []string{
		"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
		"policies", "dirpolicies", "routing", "remotemem", "tiers", "faults",
		"pipeline", "alloc", "compress", "specul", "meshio",
	}
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	switch id {
	case "fig1":
		return Figure1(opts)
	case "fig5":
		return Figure5(opts)
	case "fig6":
		return Figure6(opts)
	case "fig7":
		return Figure7(opts)
	case "fig8":
		return Figure8(opts)
	case "fig9":
		return Figure9(opts)
	case "fig10":
		return Figure10(opts)
	case "tab1":
		return Table1(opts)
	case "tab2":
		return Table2(opts)
	case "tab3":
		return Table3(opts)
	case "tab4":
		return Table4(opts)
	case "tab5":
		return Table5(opts)
	case "tab6":
		return Table6(opts)
	case "tab7":
		return Table7(opts)
	case "policies":
		return Policies(opts)
	case "dirpolicies":
		return DirPolicies(opts)
	case "routing":
		return Routing(opts)
	case "remotemem":
		return RemoteMem(opts)
	case "tiers":
		return Tiers(opts)
	case "faults":
		return Faults(opts)
	case "pipeline":
		return Pipeline(opts)
	case "alloc":
		return Alloc(opts)
	case "compress":
		return Compress(opts)
	case "specul":
		return Specul(opts)
	case "meshio":
		return MeshIO(opts)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Experiments())
	}
}

// bytesPerElement estimates a mesh fragment's serialized footprint.
const bytesPerElement = 22

// oocCluster builds a cluster for an out-of-core run: per-node memory
// budget, a real file spool with a disk service-time model, and a modeled
// network. The budget is expressed via inCoreElems: the number of elements
// that fit in memory cluster-wide; larger problems must swap. trace (from
// Options.Trace, may be nil) enables event tracing, with the node labels
// prefixed by label.
func oocCluster(nodes, inCoreElems int, policy ooc.Policy, sched cluster.SchedulerKind, workers int, trace *obs.TraceSink, label string) (*cluster.Cluster, func(), error) {
	dir, err := os.MkdirTemp("", "mrts-bench-")
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		WorkersPerNode: workers,
		MemBudget:      int64(inCoreElems * bytesPerElement / nodes),
		Policy:         policy,
		SpoolDir:       dir,
		Scheduler:      sched,
		Factory:        meshgen.Factory,
		Trace:          trace,
		TraceLabel:     label,
		// Regime-matched models: the paper's clusters balanced ~30k
		// elements/s/PE of meshing against ~50 MB/s disks. Modern CPUs
		// mesh ~10x faster, so scaling the disk model by the same factor
		// preserves the compute-to-I/O ratio the evaluation lives in; a
		// raw NVMe would make the I/O cost -- the thing MRTS overlaps --
		// invisible, and a raw 2005 disk would drown the computation.
		Network: comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
		Disk:    storage.DiskModel{Seek: 600 * time.Microsecond, BytesPerSec: 150 << 20},
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return cl, func() { cl.Close(); os.RemoveAll(dir) }, nil
}

// Figure1 reproduces the batch-queue wait times: mean queue wait versus
// requested node count on a shared 128-node cluster.
func Figure1(opts Options) (*Table, error) {
	jobs := cluster.SyntheticWorkload(cluster.WorkloadConfig{
		Jobs:             int(3000 * opts.Scale),
		ClusterNodes:     128,
		Seed:             7,
		MeanInterarrival: 15 * time.Minute,
		MeanRuntime:      80 * time.Minute,
	})
	if err := cluster.SimulateJobs(cluster.JobSimConfig{ClusterNodes: 128, Backfill: true}, jobs); err != nil {
		return nil, err
	}
	buckets := []int{4, 8, 16, 32, 64, 128}
	wait := cluster.WaitByBucket(jobs, buckets)
	t := &Table{
		ID:      "fig1",
		Title:   "batch queue wait time vs requested nodes (FCFS+backfill, 128-node cluster)",
		Headers: []string{"nodes<=", "mean wait"},
		Notes:   []string{"paper: <16 nodes start within minutes, 32 nodes wait ~30min, 100+ nodes wait hours"},
	}
	for _, b := range buckets {
		w, ok := wait[b]
		if !ok {
			continue
		}
		t.AddRow(fmtInt(b), w.Round(time.Second).String())
	}
	return t, nil
}

// methodPair runs the in-core and out-of-core builds of one method over a
// size series and emits time columns (Figures 5-7).
func methodPair(id, title, method string, sizes []int, opts Options) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"size", method + " (in-core)", "O" + method + " (MRTS)", "overhead"},
		Notes: []string{
			"paper: MRTS overhead up to 12-18% for in-core problem sizes",
		},
	}
	// The OOC cluster budget fits the whole series with headroom above the
	// soft swapping threshold: these figures measure pure control-layer
	// overhead on in-core problem sizes, like the paper's small runs.
	maxSize := sizes[len(sizes)-1]
	cl, cleanup, err := oocCluster(opts.PEs, maxSize*6, ooc.LRU, cluster.WorkStealing, 1, opts.Trace, id+"/")
	if err != nil {
		return nil, err
	}
	defer cleanup()
	for _, s := range sizes {
		in, oc, err := runPair(method, cl, s, opts.PEs)
		if err != nil {
			return nil, err
		}
		over := float64(oc.Elapsed-in.Elapsed) / float64(in.Elapsed) * 100
		t.AddRow(fmtK(in.Elements), fmtDur(in.Elapsed), fmtDur(oc.Elapsed), fmtPct(over))
		t.SetMetric(fmt.Sprintf("sz%d/time_incore_sec", s), in.Elapsed.Seconds())
		t.SetMetric(fmt.Sprintf("sz%d/time_ooc_sec", s), oc.Elapsed.Seconds())
		t.SetMetric(fmt.Sprintf("sz%d/overhead_pct", s), over)
	}
	return t, nil
}

func runPair(method string, cl *cluster.Cluster, size, pes int) (in, oc meshgen.Result, err error) {
	switch method {
	case "UPDR":
		in, err = meshgen.RunUPDR(meshgen.UPDRConfig{Blocks: 6, TargetElements: size, PEs: pes})
		if err != nil {
			return
		}
		oc, err = meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: 6, TargetElements: size})
	case "NUPDR":
		in, err = meshgen.RunNUPDR(meshgen.NUPDRConfig{TargetElements: size, PEs: pes})
		if err != nil {
			return
		}
		oc, err = meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{TargetElements: size})
	case "PCDM":
		in, err = meshgen.RunPCDM(meshgen.PCDMConfig{Grid: 6, TargetElements: size, PEs: pes})
		if err != nil {
			return
		}
		oc, err = meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 6, TargetElements: size})
	default:
		err = fmt.Errorf("bench: unknown method %q", method)
	}
	return
}

// Figure5 compares UPDR and OUPDR execution times over problem sizes.
func Figure5(opts Options) (*Table, error) {
	sizes := []int{opts.size(20000), opts.size(40000), opts.size(80000), opts.size(160000)}
	return methodPair("fig5", "UPDR vs OUPDR execution time", "UPDR", sizes, opts)
}

// Figure6 compares NUPDR and ONUPDR execution times.
func Figure6(opts Options) (*Table, error) {
	sizes := []int{opts.size(15000), opts.size(30000), opts.size(60000), opts.size(120000)}
	return methodPair("fig6", "NUPDR vs ONUPDR execution time", "NUPDR", sizes, opts)
}

// Figure7 compares PCDM and OPCDM execution times.
func Figure7(opts Options) (*Table, error) {
	sizes := []int{opts.size(20000), opts.size(40000), opts.size(80000), opts.size(160000)}
	return methodPair("fig7", "PCDM vs OPCDM execution time", "PCDM", sizes, opts)
}

// oocScaling runs one OOC method over sizes growing past the memory budget
// (Figures 8-10): time must grow near-linearly, not blow up, as the problem
// leaves memory.
func oocScaling(id, title, method string, sizes []int, inCoreElems int, opts Options) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"size", "time", "time/elem", "evictions", "disk%"},
		Notes: []string{
			fmt.Sprintf("memory budget fits ~%s elements cluster-wide; larger sizes run out-of-core", fmtK(inCoreElems)),
			"paper: time increases almost linearly with size on MRTS",
		},
	}
	for _, s := range sizes {
		cl, cleanup, err := oocCluster(opts.PEs, inCoreElems, ooc.LRU, cluster.WorkStealing, 1,
			opts.Trace, fmt.Sprintf("%s/sz%d/", id, s))
		if err != nil {
			return nil, err
		}
		var res meshgen.Result
		switch method {
		case "UPDR":
			res, err = meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: 8, TargetElements: s})
		case "NUPDR":
			res, err = meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{TargetElements: s})
		case "PCDM":
			res, err = meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: s})
		}
		cleanup()
		if err != nil {
			return nil, err
		}
		perElem := time.Duration(0)
		if res.Elements > 0 {
			perElem = res.Elapsed / time.Duration(res.Elements)
		}
		t.AddRow(fmtK(res.Elements), fmtDur(res.Elapsed), perElem.String(),
			fmtInt(int(res.Mem.Evictions)), fmtPct(res.Report.Percent(trace.Disk)))
		t.SetMetric(fmt.Sprintf("sz%d/time_sec", s), res.Elapsed.Seconds())
		t.SetMetric(fmt.Sprintf("sz%d/disk_pct", s), res.Report.Percent(trace.Disk))
		t.SetMetric(fmt.Sprintf("sz%d/evictions", s), float64(res.Mem.Evictions))
	}
	return t, nil
}

// Figure8 scales OUPDR past the memory budget.
func Figure8(opts Options) (*Table, error) {
	base := opts.size(30000)
	return oocScaling("fig8", "OUPDR on very large problems", "UPDR",
		[]int{base, base * 2, base * 4, base * 8}, base*2, opts)
}

// Figure9 scales ONUPDR past the memory budget.
func Figure9(opts Options) (*Table, error) {
	base := opts.size(20000)
	// ONUPDR keeps a leaf plus its whole buffer zone in flight per PE, so
	// its working set is larger; a budget of 3× the base size keeps the
	// large runs out-of-core without thrashing the buffer collections.
	return oocScaling("fig9", "ONUPDR on very large problems", "NUPDR",
		[]int{base, base * 2, base * 4, base * 8}, base*3, opts)
}

// Figure10 scales OPCDM past the memory budget.
func Figure10(opts Options) (*Table, error) {
	base := opts.size(30000)
	return oocScaling("fig10", "OPCDM on very large problems", "PCDM",
		[]int{base, base * 2, base * 4, base * 8}, base*2, opts)
}

// speedTable builds the single-PE Speed tables (Tables I-III): Speed =
// S/(T·N) must stay roughly flat as the problem grows.
func speedTable(id, title, method string, sizes []int, opts Options) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"size", "in-core time", "in-core speed", "OOC time", "OOC speed"},
		Notes:   []string{"Speed = S/(T×N) in elements/sec/PE; the paper's point is that it stays ~constant"},
	}
	maxSize := sizes[len(sizes)-1]
	cl, cleanup, err := oocCluster(opts.PEs, maxSize/2, ooc.LRU, cluster.WorkStealing, 1, opts.Trace, id+"/")
	if err != nil {
		return nil, err
	}
	defer cleanup()
	for _, s := range sizes {
		in, oc, err := runPair(method, cl, s, opts.PEs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtK(in.Elements), fmtDur(in.Elapsed), fmtSpeed(in.Speed()),
			fmtDur(oc.Elapsed), fmtSpeed(oc.Speed()))
		t.SetMetric(fmt.Sprintf("sz%d/speed_incore", s), in.Speed())
		t.SetMetric(fmt.Sprintf("sz%d/speed_ooc", s), oc.Speed())
	}
	return t, nil
}

// Table1 is the UPDR/OUPDR Speed table.
func Table1(opts Options) (*Table, error) {
	sizes := []int{opts.size(20000), opts.size(40000), opts.size(80000), opts.size(160000)}
	return speedTable("tab1", "single-PE performance of UPDR and OUPDR", "UPDR", sizes, opts)
}

// Table2 is the NUPDR/ONUPDR Speed table.
func Table2(opts Options) (*Table, error) {
	sizes := []int{opts.size(15000), opts.size(30000), opts.size(60000), opts.size(120000)}
	return speedTable("tab2", "single-PE performance of NUPDR and ONUPDR", "NUPDR", sizes, opts)
}

// Table3 is the PCDM/OPCDM Speed table.
func Table3(opts Options) (*Table, error) {
	sizes := []int{opts.size(20000), opts.size(40000), opts.size(80000), opts.size(160000)}
	return speedTable("tab3", "single-PE performance of PCDM and OPCDM", "PCDM", sizes, opts)
}

// overlapTable builds the comp/comm/disk breakdown tables (Tables IV-VI).
func overlapTable(id, title, method string, sizes []int, opts Options) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"size", "comp%", "comm%", "disk%", "overlap%"},
		Notes:   []string{"paper: overlap exceeds 50% (up to 62%) on large out-of-core problems"},
	}
	for _, s := range sizes {
		cl, cleanup, err := oocCluster(opts.PEs, s/3, ooc.LRU, cluster.WorkStealing, 1,
			opts.Trace, fmt.Sprintf("%s/sz%d/", id, s))
		if err != nil {
			return nil, err
		}
		var res meshgen.Result
		switch method {
		case "UPDR":
			res, err = meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: 8, TargetElements: s})
		case "NUPDR":
			res, err = meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{TargetElements: s})
		case "PCDM":
			res, err = meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: s})
		}
		cleanup()
		if err != nil {
			return nil, err
		}
		r := res.Report
		t.AddRow(fmtK(res.Elements), fmtPct(r.Percent(trace.Comp)), fmtPct(r.Percent(trace.Comm)),
			fmtPct(r.Percent(trace.Disk)), fmtPct(r.Overlap()))
		t.SetMetric(fmt.Sprintf("sz%d/comp_pct", s), r.Percent(trace.Comp))
		t.SetMetric(fmt.Sprintf("sz%d/comm_pct", s), r.Percent(trace.Comm))
		t.SetMetric(fmt.Sprintf("sz%d/disk_pct", s), r.Percent(trace.Disk))
		t.SetMetric(fmt.Sprintf("sz%d/overlap_pct", s), r.Overlap())
	}
	return t, nil
}

// Table4 is the OUPDR breakdown/overlap table.
func Table4(opts Options) (*Table, error) {
	sizes := []int{opts.size(40000), opts.size(80000), opts.size(160000)}
	return overlapTable("tab4", "OUPDR computation/communication/disk breakdown", "UPDR", sizes, opts)
}

// Table5 is the ONUPDR breakdown/overlap table.
func Table5(opts Options) (*Table, error) {
	sizes := []int{opts.size(30000), opts.size(60000), opts.size(120000)}
	return overlapTable("tab5", "ONUPDR computation/synchronization/disk breakdown", "NUPDR", sizes, opts)
}

// Table6 is the OPCDM breakdown/overlap table.
func Table6(opts Options) (*Table, error) {
	sizes := []int{opts.size(40000), opts.size(80000), opts.size(160000)}
	return overlapTable("tab6", "OPCDM computation/communication/disk breakdown", "PCDM", sizes, opts)
}

// Table7 compares the two computing-layer schedulers on ONUPDR: sequential
// time T1, parallel time T4, and relative speedup — the TBB vs GCD
// comparison of the paper.
func Table7(opts Options) (*Table, error) {
	t := &Table{
		ID:      "tab7",
		Title:   "ONUPDR with work-stealing (TBB-like) vs global-queue (GCD-like) scheduling",
		Headers: []string{"size", "sched", "T1", "T4", "speedup"},
		Notes:   []string{"paper: GCD build slightly slower, similar trends"},
	}
	sizes := []int{opts.size(40000), opts.size(80000), opts.size(160000)}
	for _, s := range sizes {
		for _, kind := range []cluster.SchedulerKind{cluster.WorkStealing, cluster.GlobalQueue} {
			t1, err := onupdrTime(s, kind, 1, opts.Trace)
			if err != nil {
				return nil, err
			}
			t4, err := onupdrTime(s, kind, 4, opts.Trace)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmtK(s), string(kind), fmtDur(t1), fmtDur(t4),
				fmt.Sprintf("%.2f", t1.Seconds()/t4.Seconds()))
			t.SetMetric(fmt.Sprintf("sz%d/%s/speedup", s, kind), t1.Seconds()/t4.Seconds())
		}
	}
	return t, nil
}

func onupdrTime(size int, kind cluster.SchedulerKind, workers int, sink *obs.TraceSink) (time.Duration, error) {
	cl, cleanup, err := oocCluster(1, size*6, ooc.LRU, kind, workers,
		sink, fmt.Sprintf("tab7/%s/w%d/", kind, workers))
	if err != nil {
		return 0, err
	}
	defer cleanup()
	// A fine decomposition: the region-disjoint dispatch rule needs many
	// leaves before several can refine concurrently (the paper's runs had
	// hundreds of leaves).
	maxLeaf := size / 60
	if maxLeaf < 300 {
		maxLeaf = 300
	}
	res, err := meshgen.RunONUPDR(cl, meshgen.NUPDRConfig{
		TargetElements: size,
		MaxLeafElems:   maxLeaf,
	})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// Policies ablates the eviction policies on OPCDM (the §II-E claim: LFU can
// beat LRU by up to 7% for PCDM).
func Policies(opts Options) (*Table, error) {
	t := &Table{
		ID:      "policies",
		Title:   "OPCDM under the five eviction policies",
		Headers: []string{"policy", "time", "evictions", "loads"},
		Notes:   []string{"paper: LRU best most of the time; LFU up to 7% faster for PCDM"},
	}
	size := opts.size(80000)
	for _, p := range ooc.Policies() {
		cl, cleanup, err := oocCluster(opts.PEs, size/3, p, cluster.WorkStealing, 1,
			opts.Trace, fmt.Sprintf("policies/%s/", p))
		if err != nil {
			return nil, err
		}
		res, err := meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: size})
		cleanup()
		if err != nil {
			return nil, err
		}
		t.AddRow("opcdm/"+string(p), fmtDur(res.Elapsed), fmtInt(int(res.Mem.Evictions)), fmtInt(int(res.Mem.Loads)))
		t.SetMetric(fmt.Sprintf("sz%d/%s/time_sec", size, p), res.Elapsed.Seconds())
	}
	// A skewed synthetic access pattern (a hot working set with a long
	// cold tail) separates the policies more sharply than PCDM's wave
	// pattern does: recency- and frequency-aware schemes keep the hot set
	// resident, MRU/MU evict it.
	for _, p := range ooc.Policies() {
		loads, evicts, elapsed, err := skewedAccessRun(p, int(400*opts.Scale)+100, opts.seedFor(7))
		if err != nil {
			return nil, err
		}
		t.AddRow("skewed/"+string(p), fmtDur(elapsed), fmtInt(evicts), fmtInt(loads))
	}
	return t, nil
}

// skewedAccessRun posts rounds of messages where 80% of the traffic hits 20%
// of the objects, under a budget that only fits the hot set.
func skewedAccessRun(policy ooc.Policy, rounds int, seed int64) (loads, evicts int, elapsed time.Duration, err error) {
	tr := comm.NewInProc(1, comm.LatencyModel{})
	defer tr.Close()
	pool := sched.NewWorkStealing(1)
	defer pool.Close()
	rt := core.NewRuntime(core.Config{
		Endpoint: tr.Endpoint(0),
		Pool:     pool,
		Factory: func(typeID uint16) (core.Object, error) {
			if typeID == 10 {
				return &kbObj{}, nil
			}
			return nil, core.ErrUnknownType
		},
		// 50 objects of ~1KB; the soft threshold keeps ~18 resident —
		// room for the whole hot set plus some of the tail.
		Mem:   ooc.Config{Budget: 36 << 10, Policy: policy},
		Store: storage.NewLatency(storage.NewMem(), storage.DiskModel{Seek: 100 * time.Microsecond}),
	})
	defer rt.Close()
	rt.Register(1, func(c *core.Ctx, arg []byte) {})
	var ptrs []core.MobilePtr
	for i := 0; i < 50; i++ {
		ptrs = append(ptrs, rt.CreateObject(&kbObj{}))
	}
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	lastCold := -1
	for r := 0; r < rounds; r++ {
		for k := 0; k < 10; k++ {
			var idx int
			switch {
			case rng.Float64() < 0.8:
				idx = rng.Intn(10) // hot set
			case lastCold >= 0 && rng.Float64() < 0.5:
				idx = lastCold // revisit the last cold object (temporal locality)
			default:
				idx = 10 + rng.Intn(40) // fresh cold object
				lastCold = idx
			}
			rt.Post(ptrs[idx], 1, nil)
		}
		core.WaitQuiescence(rt)
	}
	elapsed = time.Since(start)
	s := rt.Mem().Snapshot()
	return int(s.Loads), int(s.Evictions), elapsed, nil
}

// kbObj is a 1KB mobile object for the policy ablation.
type kbObj struct{ pad [1024]byte }

func (o *kbObj) TypeID() uint16 { return 10 }
func (o *kbObj) EncodeTo(w io.Writer) error {
	_, err := w.Write(o.pad[:])
	return err
}
func (o *kbObj) DecodeFrom(r io.Reader) error {
	_, err := io.ReadFull(r, o.pad[:])
	return err
}
func (o *kbObj) SizeHint() int { return 1024 }

// DirPolicies compares the three directory location-management policies on
// a migration-heavy synthetic workload — the experiment behind the paper's
// statement that lazy updates are the right compromise between accuracy and
// update overhead.
func DirPolicies(opts Options) (*Table, error) {
	t := &Table{
		ID:      "dirpolicies",
		Title:   "directory location management: lazy vs eager vs home",
		Headers: []string{"policy", "time", "forwarded", "dir updates"},
		Notes:   []string{"paper: lazy updates are a good compromise between accuracy and update overhead"},
	}
	const objects = 64
	posts := int(2000 * opts.Scale)
	if posts < 200 {
		posts = 200
	}
	for _, policy := range core.DirectoryPolicies() {
		elapsed, fwd, upd, err := dirPolicyRun(opts.PEs, objects, posts, policy, opts.seedFor(11))
		if err != nil {
			return nil, err
		}
		t.AddRow(policy.String(), fmtDur(elapsed), fmtInt(int(fwd)), fmtInt(int(upd)))
	}
	return t, nil
}

func dirPolicyRun(nodes, objects, posts int, policy core.DirectoryPolicy, seed int64) (time.Duration, int64, int64, error) {
	tr := comm.NewInProc(nodes, comm.LatencyModel{Latency: 100 * time.Microsecond})
	defer tr.Close()
	var pools []sched.Pool
	var rts []*core.Runtime
	for i := 0; i < nodes; i++ {
		pool := sched.NewWorkStealing(1)
		pools = append(pools, pool)
		rts = append(rts, core.NewRuntime(core.Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     pool,
			Factory: func(typeID uint16) (core.Object, error) {
				if typeID == 9 {
					return &noopObj{}, nil
				}
				return nil, core.ErrUnknownType
			},
			Mem:       ooc.Config{Budget: 1 << 24},
			Store:     storage.NewMem(),
			Directory: policy,
			NumNodes:  nodes,
		}))
	}
	defer func() {
		core.WaitQuiescence(rts...)
		for _, rt := range rts {
			rt.Close()
		}
		for _, p := range pools {
			p.Close()
		}
	}()
	for _, rt := range rts {
		rt.Register(1, func(c *core.Ctx, arg []byte) {})
	}
	// All objects born on node 0, then scattered by migration — the
	// directory-staleness stress.
	var ptrs []core.MobilePtr
	for i := 0; i < objects; i++ {
		ptrs = append(ptrs, rts[0].CreateObject(&noopObj{}))
	}
	for i, p := range ptrs {
		if err := rts[0].Migrate(p, core.NodeID(1+i%(nodes-1))); err != nil {
			return 0, 0, 0, err
		}
	}
	core.WaitQuiescence(rts...)
	time.Sleep(5 * time.Millisecond) // let eager broadcasts land
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	// Several rounds: the first touches pay for staleness, later rounds
	// show the steady state each policy converges to.
	for round := 0; round < 3; round++ {
		for i := 0; i < posts/3; i++ {
			// Posts come from random nodes whose directories may be stale.
			rts[rng.Intn(nodes)].Post(ptrs[rng.Intn(len(ptrs))], 1, nil)
		}
		core.WaitQuiescence(rts...)
	}
	elapsed := time.Since(start)
	var fwd, upd int64
	for _, rt := range rts {
		fwd += rt.ForwardedCount()
		upd += rt.DirUpdatesSent()
	}
	return elapsed, fwd, upd, nil
}

// noopObj is a minimal object for the directory experiment.
type noopObj struct{}

func (o *noopObj) TypeID() uint16               { return 9 }
func (o *noopObj) EncodeTo(w io.Writer) error   { return nil }
func (o *noopObj) DecodeFrom(r io.Reader) error { return nil }
func (o *noopObj) SizeHint() int                { return 16 }

// RemoteMem compares the out-of-core media: local modeled disk versus the
// memory of a remote node (the configuration the paper's conclusion
// proposes). Both run the same OPCDM problem with the same budget.
func RemoteMem(opts Options) (*Table, error) {
	t := &Table{
		ID:      "remotemem",
		Title:   "out-of-core media: local disk vs remote memory (OPCDM)",
		Headers: []string{"medium", "time", "evictions", "loads"},
		Notes:   []string{"paper (conclusion): remote memory lets low-parallelism, high-memory applications run unchanged"},
	}
	size := opts.size(60000)
	for _, remote := range []bool{false, true} {
		var cl *cluster.Cluster
		var cleanup func()
		var err error
		if remote {
			cl, err = cluster.New(cluster.Config{
				Nodes:        opts.PEs,
				MemBudget:    int64(size * bytesPerElement / 3 / opts.PEs),
				RemoteMemory: true,
				Factory:      meshgen.Factory,
				Network:      comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
				Trace:        opts.Trace,
				TraceLabel:   "remotemem/remote/",
			})
			cleanup = func() { cl.Close() }
		} else {
			cl, cleanup, err = oocCluster(opts.PEs, size/3, ooc.LRU, cluster.WorkStealing, 1,
				opts.Trace, "remotemem/disk/")
		}
		if err != nil {
			return nil, err
		}
		res, err := meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: size})
		cleanup()
		if err != nil {
			return nil, err
		}
		medium := "local disk"
		if remote {
			medium = "remote memory"
		}
		t.AddRow(medium, fmtDur(res.Elapsed), fmtInt(int(res.Mem.Evictions)), fmtInt(int(res.Mem.Loads)))
		if remote {
			t.SetMetric(fmt.Sprintf("sz%d/time_remote_sec", size), res.Elapsed.Seconds())
		} else {
			t.SetMetric(fmt.Sprintf("sz%d/time_disk_sec", size), res.Elapsed.Seconds())
		}
	}
	return t, nil
}

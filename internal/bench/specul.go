package bench

import (
	"fmt"

	"mrts/internal/cluster"
	"mrts/internal/meshgen"
	"mrts/internal/ooc"
)

// Specul sweeps the conflict probability of speculative refinement (S-UPDR)
// against the bulk-synchronous OUPDR baseline on the same out-of-core
// cluster shape. Bulk-sync OUPDR pays a full barrier between the mesh and
// interface phases; S-UPDR refines optimistically and resolves interface
// conflicts by snapshot rollback, so at low conflict probability it should
// win, and as the probability rises toward the worst case the rollback
// retries eat the lead. Every speculative cell must still produce the
// byte-identical mesh (canonical sorted-triangle digest) — a hash mismatch
// fails the experiment outright rather than showing up as a soft metric.
//
// Gated metrics: bulk/speed_oupdr and p*/speed_supdr (relative lower bound,
// like every speed metric) and p*/conflict_rate (conflicts per interior
// interface, relative upper bound plus absolute slack — the p00 cell's
// healthy baseline is exactly zero). The speedup column is informational:
// wall-clock ratios are too machine-dependent to gate directly, the speed
// floors on both methods bound the same regression.
func Specul(opts Options) (*Table, error) {
	size := opts.size(60000)
	const blocks = 3
	cfg := meshgen.UPDRConfig{Blocks: blocks, TargetElements: size}
	// First-epoch announcement count of the blocks×blocks grid: each of the
	// 2·b·(b-1) interior interfaces is announced once from each side. The
	// deterministic unit conflict_rate is normalized by — retries push the
	// rate above prob, which is the sweep's point.
	interfaces := float64(4 * blocks * (blocks - 1))

	t := &Table{
		ID:      "specul",
		Title:   "speculative refinement (S-UPDR) vs bulk-synchronous OUPDR",
		Headers: []string{"method", "prob", "time", "speed", "speedup", "loads", "conflicts", "rollbacks", "rate"},
		Notes: []string{
			"speedup is S-UPDR over bulk-sync OUPDR wall clock on the identical cluster; rate is conflicts per interior interface",
			"loads counts cold swap reloads: S-UPDR folds the digest into commit and ships interfaces at first refinement, so it skips the bulk-sync dump pass entirely",
			"every cell's mesh digest must equal the bulk-sync digest: speculation may reorder work, never change it",
		},
	}

	newCluster := func(label string) (*cluster.Cluster, func(), error) {
		// Two thirds of the mesh fits in memory: speculation snapshots and
		// conflict multicasts ride the same swap path the rest of the
		// harness measures, not an all-in-core fast path.
		return oocCluster(opts.PEs, size*2/3, ooc.LRU, cluster.WorkStealing, 1,
			opts.Trace, "specul/"+label+"/")
	}

	cl, cleanup, err := newCluster("bulk")
	if err != nil {
		return nil, err
	}
	bulk, err := meshgen.RunOUPDR(cl, cfg)
	bulkLoads := cl.MemStats().Loads
	cleanup()
	if err != nil {
		return nil, fmt.Errorf("bench: specul bulk-sync baseline: %w", err)
	}
	if bulk.MeshHash == "" {
		return nil, fmt.Errorf("bench: specul bulk-sync baseline produced no mesh digest")
	}
	t.AddRow("OUPDR", "-", fmtDur(bulk.Elapsed), fmt.Sprintf("%.0f", bulk.Speed()),
		"1.00x", fmtInt(int(bulkLoads)), "-", "-", "-")
	t.SetMetric("bulk/speed_oupdr", bulk.Speed())
	t.SetMetric("bulk/time_mesh_sec", bulk.Elapsed.Seconds())
	t.SetMetric("bulk/swap_loads", float64(bulkLoads))

	for _, prob := range []float64{0, 0.1, 0.5} {
		label := fmt.Sprintf("p%02d", int(prob*100+0.5))
		cl, cleanup, err := newCluster(label)
		if err != nil {
			return nil, err
		}
		res, err := meshgen.RunSUPDR(cl, meshgen.SUPDRConfig{
			UPDRConfig:   cfg,
			ConflictProb: prob,
			Seed:         opts.seedFor(31),
		})
		loads := cl.MemStats().Loads
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("bench: specul prob %.1f: %w", prob, err)
		}
		if res.MeshHash != bulk.MeshHash {
			return nil, fmt.Errorf("bench: specul prob %.1f: mesh digest %s != bulk-sync %s (speculation corrupted the mesh)",
				prob, res.MeshHash, bulk.MeshHash)
		}
		if !res.Conforming {
			return nil, fmt.Errorf("bench: specul prob %.1f: committed interfaces do not conform", prob)
		}
		rate := float64(res.Conflicts) / interfaces
		speedup := float64(bulk.Elapsed) / float64(res.Elapsed)
		t.AddRow("S-UPDR", fmt.Sprintf("%.1f", prob), fmtDur(res.Elapsed),
			fmt.Sprintf("%.0f", res.Speed()), fmt.Sprintf("%.2fx", speedup),
			fmtInt(int(loads)), fmtInt(int(res.Conflicts)), fmtInt(int(res.Rollbacks)),
			fmt.Sprintf("%.2f", rate))
		pfx := label + "/"
		t.SetMetric(pfx+"speed_supdr", res.Speed())
		t.SetMetric(pfx+"conflict_rate", rate)
		t.SetMetric(pfx+"rollbacks", float64(res.Rollbacks))
		t.SetMetric(pfx+"speedup_vs_bulk", speedup)
		t.SetMetric(pfx+"swap_loads", float64(loads))
	}
	return t, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DocSchema versions the BENCH_*.json layout; bump on incompatible change.
const DocSchema = 1

// Doc is the machine-readable result of one harness invocation: every
// experiment's Table.Metrics keyed by experiment ID, plus the options that
// shaped the run (the gate refuses to compare runs with different shapes).
type Doc struct {
	Schema      int                           `json:"schema"`
	Scale       float64                       `json:"scale"`
	PEs         int                           `json:"pes"`
	Experiments map[string]map[string]float64 `json:"experiments"`
}

// NewDoc starts an empty document for the given options.
func NewDoc(opts Options) *Doc {
	opts = opts.withDefaults()
	return &Doc{
		Schema:      DocSchema,
		Scale:       opts.Scale,
		PEs:         opts.PEs,
		Experiments: make(map[string]map[string]float64),
	}
}

// Add records one experiment's metrics (no-op when the table carries none).
func (d *Doc) Add(t *Table) {
	if t == nil || len(t.Metrics) == 0 {
		return
	}
	m := d.Experiments[t.ID]
	if m == nil {
		m = make(map[string]float64, len(t.Metrics))
		d.Experiments[t.ID] = m
	}
	for k, v := range t.Metrics {
		m[k] = v
	}
}

// WriteJSON emits the document as indented JSON (keys sorted by
// encoding/json) with a trailing newline.
func (d *Doc) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the document to path.
func (d *Doc) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDoc loads a BENCH_*.json document.
func ReadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if d.Schema != DocSchema {
		return nil, fmt.Errorf("bench: %s: schema %d, want %d", path, d.Schema, DocSchema)
	}
	return &d, nil
}

// ExperimentIDs returns the document's experiment IDs sorted.
func (d *Doc) ExperimentIDs() []string {
	ids := make([]string, 0, len(d.Experiments))
	for id := range d.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

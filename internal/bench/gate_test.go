package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func docPair() (*Doc, *Doc) {
	mk := func() *Doc {
		d := NewDoc(Options{Scale: 0.1, PEs: 2})
		d.Experiments["tab1"] = map[string]float64{
			"sz2000/speed_incore": 30000,
			"sz2000/speed_ooc":    25000,
		}
		d.Experiments["tab4"] = map[string]float64{
			"sz4000/overlap_pct": 55,
			"sz4000/comp_pct":    80,
		}
		d.Experiments["fig8"] = map[string]float64{
			"sz3000/time_sec":  1.0,
			"sz3000/evictions": 120,
		}
		return d
	}
	return mk(), mk()
}

func TestGatePassesOnIdenticalRuns(t *testing.T) {
	base, cur := docPair()
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("identical runs must pass, got %v", v)
	}
}

func TestGateToleratesNoise(t *testing.T) {
	base, cur := docPair()
	cur.Experiments["tab1"]["sz2000/speed_ooc"] = 25000 * 0.7 // within 0.6 floor
	cur.Experiments["tab4"]["sz4000/overlap_pct"] = 55 - 20   // within 25-pt drop
	cur.Experiments["fig8"]["sz3000/time_sec"] = 1.5          // within 1.8× ceiling
	cur.Experiments["fig8"]["sz3000/evictions"] = 9999        // ungated
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("noisy-but-tolerable run must pass, got %v", v)
	}
}

func TestGateCatchesSpeedRegression(t *testing.T) {
	base, cur := docPair()
	cur.Experiments["tab1"]["sz2000/speed_ooc"] = 25000 * 0.5
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "speed_ooc") {
		t.Fatalf("want one speed violation, got %v", v)
	}
}

func TestGateCatchesOverlapAndTimeRegression(t *testing.T) {
	base, cur := docPair()
	cur.Experiments["tab4"]["sz4000/overlap_pct"] = 5
	cur.Experiments["fig8"]["sz3000/time_sec"] = 5.0
	v := Compare(base, cur, GateConfig{})
	if len(v) != 2 {
		t.Fatalf("want overlap + time violations, got %v", v)
	}
}

func TestGateRejectsShapeMismatch(t *testing.T) {
	base, cur := docPair()
	cur.PEs = 4
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "shape mismatch") {
		t.Fatalf("want shape-mismatch violation, got %v", v)
	}
}

func TestGateRejectsMissingMetricsAndExperiments(t *testing.T) {
	base, cur := docPair()
	delete(cur.Experiments["tab1"], "sz2000/speed_ooc")
	delete(cur.Experiments, "fig8")
	v := Compare(base, cur, GateConfig{})
	if len(v) != 2 {
		t.Fatalf("want missing-metric + missing-experiment violations, got %v", v)
	}
}

func TestDocRoundTrip(t *testing.T) {
	base, _ := docPair()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Compare(base, got, GateConfig{}); len(v) != 0 {
		t.Fatalf("round-tripped doc must compare clean, got %v", v)
	}
	var buf bytes.Buffer
	if err := base.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteJSON must emit valid JSON")
	}
}

func TestDocAddCollectsTableMetrics(t *testing.T) {
	d := NewDoc(Options{})
	tab := &Table{ID: "tab1"}
	tab.SetMetric("sz100/speed_ooc", 42)
	d.Add(tab)
	d.Add(&Table{ID: "empty"}) // no metrics → no entry
	if got := d.Experiments["tab1"]["sz100/speed_ooc"]; got != 42 {
		t.Fatalf("metric not collected: %v", d.Experiments)
	}
	if _, ok := d.Experiments["empty"]; ok {
		t.Fatal("metric-less table must not create an entry")
	}
}

func TestGateWaitMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["pipeline"] = map[string]float64{"sz3000/w1d2/demand_wait_ms": 0.4}
	cur.Experiments["pipeline"] = map[string]float64{"sz3000/w1d2/demand_wait_ms": 0.4}

	// Large relative growth under the absolute slack is noise, not a
	// regression: 0.4ms -> 4ms stays under 0.4×5 + 5ms.
	cur.Experiments["pipeline"]["sz3000/w1d2/demand_wait_ms"] = 4
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("sub-slack wait growth must pass, got %v", v)
	}
	// Past the slack + relative bound it trips.
	cur.Experiments["pipeline"]["sz3000/w1d2/demand_wait_ms"] = 20
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "demand_wait_ms") {
		t.Fatalf("want one wait violation, got %v", v)
	}
}

func TestGateAllocMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["alloc"] = map[string]float64{"steady/store_allocs_per_op": 3}
	cur.Experiments["alloc"] = map[string]float64{"steady/store_allocs_per_op": 3}

	// A couple of incidental allocations under the absolute slack pass: the
	// healthy value sits near zero where relative bounds degenerate.
	cur.Experiments["alloc"]["steady/store_allocs_per_op"] = 8
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("sub-slack alloc growth must pass, got %v", v)
	}
	// A lost pooled path (every op allocating buffers again) trips.
	cur.Experiments["alloc"]["steady/store_allocs_per_op"] = 15
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "store_allocs_per_op") {
		t.Fatalf("want one alloc violation, got %v", v)
	}
	// Fewer allocations is never a regression.
	cur.Experiments["alloc"]["steady/store_allocs_per_op"] = 0
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("improvement must pass, got %v", v)
	}
}

func TestGateBytesMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["compress"] = map[string]float64{"sz3000/on/bytes_moved": 1 << 20}
	cur.Experiments["compress"] = map[string]float64{"sz3000/on/bytes_moved": 1 << 20}

	// Within the relative ceiling passes.
	cur.Experiments["compress"]["sz3000/on/bytes_moved"] = 1.3 * (1 << 20)
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("in-tolerance byte growth must pass, got %v", v)
	}
	// A doubled byte count (a lost compression win, a double-write) trips.
	cur.Experiments["compress"]["sz3000/on/bytes_moved"] = 2 * (1 << 20)
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "bytes_moved") {
		t.Fatalf("want one bytes violation, got %v", v)
	}
	// Moving fewer bytes is never a regression.
	cur.Experiments["compress"]["sz3000/on/bytes_moved"] = 1 << 10
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("improvement must pass, got %v", v)
	}
}

func TestGateForwardMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["routing"] = map[string]float64{
		"placed/settled/forwarded_per_msg": 0,
		"lazy/drift/forwarded_per_msg":     0.2,
	}
	cur.Experiments["routing"] = map[string]float64{
		"placed/settled/forwarded_per_msg": 0,
		"lazy/drift/forwarded_per_msg":     0.2,
	}

	// The placed settled baseline is exactly zero — the absolute slack keeps
	// a stray scheduling-race forward from tripping the gate.
	cur.Experiments["routing"]["placed/settled/forwarded_per_msg"] = 0.04
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("sub-slack forwarding must pass, got %v", v)
	}
	// Systematic forwarding over a zero baseline trips: the placed locator
	// stopped resolving first hops off the ring.
	cur.Experiments["routing"]["placed/settled/forwarded_per_msg"] = 0.3
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "forwarded_per_msg") {
		t.Fatalf("want one forwarding violation, got %v", v)
	}
	// Over a nonzero baseline the relative bound applies.
	cur.Experiments["routing"]["placed/settled/forwarded_per_msg"] = 0
	cur.Experiments["routing"]["lazy/drift/forwarded_per_msg"] = 0.6
	v = Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "lazy/drift") {
		t.Fatalf("want one relative forwarding violation, got %v", v)
	}
	// Less forwarding is never a regression.
	cur.Experiments["routing"]["lazy/drift/forwarded_per_msg"] = 0
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("improvement must pass, got %v", v)
	}
}

func TestGateHopsMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["routing"] = map[string]float64{"placed/drift/hops_mean": 1.1}
	cur.Experiments["routing"] = map[string]float64{"placed/drift/hops_mean": 1.1}

	// The healthy floor is 1.0 (every remote message direct), so small
	// absolute growth under the slack is noise.
	cur.Experiments["routing"]["placed/drift/hops_mean"] = 1.3
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("sub-slack hop growth must pass, got %v", v)
	}
	// A forwarding chain creeping toward the hop bound trips.
	cur.Experiments["routing"]["placed/drift/hops_mean"] = 2.5
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "hops_mean") {
		t.Fatalf("want one hop-count violation, got %v", v)
	}
}

func TestGateHitMetric(t *testing.T) {
	base, cur := docPair()
	base.Experiments["tiers"] = map[string]float64{"sz3000/capmid/tier0_hit_pct": 40}
	cur.Experiments["tiers"] = map[string]float64{"sz3000/capmid/tier0_hit_pct": 40}

	// Drops within the absolute tolerance pass — hit ratios at small smoke
	// scales are noisy.
	cur.Experiments["tiers"]["sz3000/capmid/tier0_hit_pct"] = 20
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("in-tolerance hit drop must pass, got %v", v)
	}
	// A collapse past HitTol points trips (the placement policy broke).
	cur.Experiments["tiers"]["sz3000/capmid/tier0_hit_pct"] = 5
	v := Compare(base, cur, GateConfig{})
	if len(v) != 1 || !strings.Contains(v[0], "tier0_hit_pct") {
		t.Fatalf("want one hit-ratio violation, got %v", v)
	}
	// Rising hit ratio is never a regression.
	cur.Experiments["tiers"]["sz3000/capmid/tier0_hit_pct"] = 95
	if v := Compare(base, cur, GateConfig{}); len(v) != 0 {
		t.Fatalf("improvement must pass, got %v", v)
	}
}

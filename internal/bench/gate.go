package bench

import (
	"fmt"
	"sort"
	"strings"
)

// GateConfig sets the tolerances for the benchmark-regression gate. The gate
// only checks metrics that can regress in one interesting direction:
//
//   - */speed_*: throughput (elements/sec/PE) may not drop below
//     baseline×SpeedTol — a relative lower bound, loose enough to absorb the
//     machine-to-machine spread of CI runners but tight enough that a
//     deliberate slowdown (a sleep in the swap path, a lost overlap) trips it.
//   - */overlap_pct: the paper's headline quality metric may not drop more
//     than OverlapTol absolute percentage points below baseline (overlap near
//     zero makes relative bounds meaningless).
//   - */time_*: wall times may not exceed baseline×TimeTol.
//   - */*_wait_ms: queueing latencies (the pipeline experiment's demand-load
//     wait) may not exceed baseline×WaitTol + waitSlackMs. The absolute slack
//     matters because a healthy demand wait is near zero — a fraction of a
//     millisecond — where a purely relative bound would trip on scheduler
//     jitter alone.
//   - */*hit_pct: cache-style hit ratios (the tiers experiment's tier-0 hit
//     percentage) may not drop more than HitTol absolute points below
//     baseline — absolute, like overlap, because the interesting endpoints
//     sit at 0 and 100 where relative bounds degenerate.
//   - */*_allocs_per_op: steady-state heap allocations on the swap hot path
//     (the alloc experiment) may not exceed baseline×AllocTol + allocSlack.
//     The absolute slack matters because the healthy value is a small
//     constant near zero, where a purely relative bound is meaningless.
//   - */bytes_moved: payload bytes crossing a storage boundary may not
//     exceed baseline×BytesTol. These are deterministic byte counts, not
//     wall times, so the bound can be much tighter than the time bounds —
//     a double-write or a lost compression win trips it regardless of
//     machine speed.
//   - */forwarded_per_msg: routing indirection (the routing experiment) may
//     not exceed baseline×ForwardTol + forwardSlack. The slack carries the
//     placed locator's settled regime, whose healthy baseline is exactly
//     zero — any systematic forwarding there is a routing regression, while
//     a purely relative bound over zero would be vacuous.
//   - */hops_mean: the delivered-message mean hop count may not exceed
//     baseline×HopsTol + hopsSlack; 1.0 means every remote message took the
//     direct hop.
//   - */conflict_rate: speculative-refinement conflicts per interior
//     interface (the specul experiment) may not exceed
//     baseline×ConflictTol + conflictSlack. The absolute slack carries the
//     zero-probability cell, whose healthy baseline is exactly zero — a
//     conflict there means the draw guard broke — while the relative term
//     bounds the stochastic cells.
//
// Everything else in the documents (evictions, element counts, breakdown
// percentages) is informational and not gated.
type GateConfig struct {
	// SpeedTol is the relative lower bound for speed metrics
	// (current >= baseline*SpeedTol). 0 means the default 0.6.
	SpeedTol float64
	// OverlapTol is the allowed absolute drop, in percentage points, for
	// overlap_pct metrics. 0 means the default 25.
	OverlapTol float64
	// TimeTol is the relative upper bound for time metrics
	// (current <= baseline*TimeTol). 0 means the default 1.8.
	TimeTol float64
	// WaitTol is the relative upper bound for *_wait_ms metrics
	// (current <= baseline*WaitTol + waitSlackMs). 0 means the default 5.
	WaitTol float64
	// HitTol is the allowed absolute drop, in percentage points, for
	// *hit_pct metrics. 0 means the default 25.
	HitTol float64
	// AllocTol is the relative upper bound for *_allocs_per_op metrics
	// (current <= baseline*AllocTol + allocSlack). 0 means the default 2.
	AllocTol float64
	// BytesTol is the relative upper bound for bytes_moved metrics
	// (current <= baseline*BytesTol). 0 means the default 1.5.
	BytesTol float64
	// ForwardTol is the relative upper bound for forwarded_per_msg metrics
	// (current <= baseline*ForwardTol + forwardSlack). 0 means the default 2.
	ForwardTol float64
	// HopsTol is the relative upper bound for hops_mean metrics
	// (current <= baseline*HopsTol + hopsSlack). 0 means the default 1.5.
	HopsTol float64
	// ConflictTol is the relative upper bound for conflict_rate metrics
	// (current <= baseline*ConflictTol + conflictSlack). 0 means the
	// default 2.
	ConflictTol float64
}

// waitSlackMs is the absolute headroom added on top of the relative wait
// bound; below this, queueing latency is noise, not a regression.
const waitSlackMs = 5.0

// allocSlack is the absolute headroom on allocs/op: a couple of incidental
// allocations (a map bucket split, a queue growth) are noise, not a
// regression, when the baseline itself sits near zero.
const allocSlack = 4.0

// forwardSlack is the absolute headroom on forwarded-per-message: a handful
// of forwards from scheduling races (a post landing during a migration
// install) are noise even when the baseline is exactly zero.
const forwardSlack = 0.05

// hopsSlack is the absolute headroom on the mean hop count, for the same
// reason: the healthy placed baseline sits at exactly 1.0.
const hopsSlack = 0.25

// conflictSlack is the absolute headroom on the speculation conflict rate:
// the conflict draw itself is deterministic, but whether an announcement
// finds its receiver still mid-speculation depends on scheduling, so a few
// detections' worth of spread is noise — and the zero-probability cell's
// healthy baseline is exactly zero, where a relative bound is vacuous.
const conflictSlack = 0.25

func (g GateConfig) withDefaults() GateConfig {
	if g.SpeedTol <= 0 {
		g.SpeedTol = 0.6
	}
	if g.OverlapTol <= 0 {
		g.OverlapTol = 25
	}
	if g.TimeTol <= 0 {
		g.TimeTol = 1.8
	}
	if g.WaitTol <= 0 {
		g.WaitTol = 5
	}
	if g.HitTol <= 0 {
		g.HitTol = 25
	}
	if g.AllocTol <= 0 {
		g.AllocTol = 2
	}
	if g.BytesTol <= 0 {
		g.BytesTol = 1.5
	}
	if g.ForwardTol <= 0 {
		g.ForwardTol = 2
	}
	if g.HopsTol <= 0 {
		g.HopsTol = 1.5
	}
	if g.ConflictTol <= 0 {
		g.ConflictTol = 2
	}
	return g
}

// Compare checks current against baseline and returns one human-readable
// violation string per regression (empty slice = gate passes). A shape
// mismatch (different scale or PEs) or a baseline metric missing from the
// current run is itself a violation: silently comparing different runs would
// make the gate pass vacuously.
func Compare(baseline, current *Doc, cfg GateConfig) []string {
	cfg = cfg.withDefaults()
	var out []string
	if baseline.Scale != current.Scale || baseline.PEs != current.PEs {
		out = append(out, fmt.Sprintf(
			"run shape mismatch: baseline scale=%g pes=%d, current scale=%g pes=%d",
			baseline.Scale, baseline.PEs, current.Scale, current.PEs))
		return out
	}
	for _, id := range baseline.ExperimentIDs() {
		base := baseline.Experiments[id]
		cur := current.Experiments[id]
		if cur == nil {
			out = append(out, fmt.Sprintf("%s: experiment missing from current run", id))
			continue
		}
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			want := base[k]
			got, ok := cur[k]
			kind := metricKind(k)
			if kind == gateSkip {
				continue
			}
			if !ok {
				out = append(out, fmt.Sprintf("%s: %s missing from current run", id, k))
				continue
			}
			switch kind {
			case gateSpeed:
				if floor := want * cfg.SpeedTol; got < floor {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.1f < %.1f (baseline %.1f × tol %.2f)",
						id, k, got, floor, want, cfg.SpeedTol))
				}
			case gateOverlap:
				if floor := want - cfg.OverlapTol; got < floor {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.1f%% < %.1f%% (baseline %.1f%% − %.0f pts)",
						id, k, got, floor, want, cfg.OverlapTol))
				}
			case gateTime:
				if ceil := want * cfg.TimeTol; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.3fs > %.3fs (baseline %.3fs × tol %.2f)",
						id, k, got, ceil, want, cfg.TimeTol))
				}
			case gateWait:
				if ceil := want*cfg.WaitTol + waitSlackMs; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.3fms > %.3fms (baseline %.3fms × tol %.2f + %.0fms slack)",
						id, k, got, ceil, want, cfg.WaitTol, waitSlackMs))
				}
			case gateHit:
				if floor := want - cfg.HitTol; got < floor {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.1f%% < %.1f%% (baseline %.1f%% − %.0f pts)",
						id, k, got, floor, want, cfg.HitTol))
				}
			case gateAlloc:
				if ceil := want*cfg.AllocTol + allocSlack; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.2f > %.2f (baseline %.2f × tol %.2f + %.0f slack)",
						id, k, got, ceil, want, cfg.AllocTol, allocSlack))
				}
			case gateBytes:
				if ceil := want * cfg.BytesTol; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.0f > %.0f bytes (baseline %.0f × tol %.2f)",
						id, k, got, ceil, want, cfg.BytesTol))
				}
			case gateForward:
				if ceil := want*cfg.ForwardTol + forwardSlack; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.3f > %.3f (baseline %.3f × tol %.2f + %.2f slack)",
						id, k, got, ceil, want, cfg.ForwardTol, forwardSlack))
				}
			case gateHops:
				if ceil := want*cfg.HopsTol + hopsSlack; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.2f > %.2f hops (baseline %.2f × tol %.2f + %.2f slack)",
						id, k, got, ceil, want, cfg.HopsTol, hopsSlack))
				}
			case gateConflict:
				if ceil := want*cfg.ConflictTol + conflictSlack; got > ceil {
					out = append(out, fmt.Sprintf(
						"%s: %s regressed: %.2f > %.2f conflicts/interface (baseline %.2f × tol %.2f + %.2f slack)",
						id, k, got, ceil, want, cfg.ConflictTol, conflictSlack))
				}
			}
		}
	}
	return out
}

type gateKind int

const (
	gateSkip gateKind = iota
	gateSpeed
	gateOverlap
	gateTime
	gateWait
	gateHit
	gateAlloc
	gateBytes
	gateForward
	gateHops
	gateConflict
)

// metricKind classifies a metric name ("sz40000/speed_ooc" etc.) into the
// bound the gate applies to it.
func metricKind(name string) gateKind {
	leaf := name
	if i := strings.LastIndex(name, "/"); i >= 0 {
		leaf = name[i+1:]
	}
	switch {
	case strings.HasPrefix(leaf, "speed_"):
		return gateSpeed
	case leaf == "overlap_pct":
		return gateOverlap
	case strings.HasPrefix(leaf, "time_") && strings.HasSuffix(leaf, "_sec"):
		return gateTime
	case strings.HasSuffix(leaf, "_wait_ms"):
		return gateWait
	case strings.HasSuffix(leaf, "hit_pct"):
		return gateHit
	case strings.HasSuffix(leaf, "_allocs_per_op"):
		return gateAlloc
	case leaf == "bytes_moved":
		return gateBytes
	case leaf == "forwarded_per_msg":
		return gateForward
	case leaf == "hops_mean":
		return gateHops
	case leaf == "conflict_rate":
		return gateConflict
	default:
		return gateSkip
	}
}

package bench

import (
	"fmt"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/meshgen"
	"mrts/internal/storage"
)

// Tiers sweeps the OPCDM workload over the tier-0 (remote memory) capacity
// of the tiered storage hierarchy. The endpoints bracket the paper's
// remote-memory comparison as one curve: capacity 0 is pure disk (the
// classic OOC configuration), unbounded capacity is pure remote memory (the
// conclusion's proposal), and the intermediate lease exercises the full
// placement machinery — admission, spill, demotion, promotion — with a
// tier-0 hit ratio strictly between the endpoints' 0 and 1.
func Tiers(opts Options) (*Table, error) {
	t := &Table{
		ID:      "tiers",
		Title:   "tiered OOC storage: OPCDM vs tier-0 (remote memory) capacity",
		Headers: []string{"tier0 lease", "time", "hit%", "spills", "demotions", "promotions", "evictions", "lost"},
		Notes: []string{
			"capacity 0 = pure disk, unbounded = pure remote memory (the paper's remotemem endpoints)",
			"the intermediate lease shows adaptive placement: spills and a partial tier-0 hit ratio",
		},
	}
	size := opts.size(60000)
	// A fraction of the spilled working set (~2/3 of the mesh leaves the
	// budget): big enough to absorb real traffic, small enough to spill.
	capMid := int64(size * bytesPerElement / 6 / opts.PEs)
	sweep := []struct {
		label string
		cap   int64
	}{
		{"cap0", 0},
		{"capmid", capMid},
		{"capinf", -1},
	}
	for _, pt := range sweep {
		dir, err := os.MkdirTemp("", "mrts-bench-")
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Nodes:        opts.PEs,
			MemBudget:    int64(size * bytesPerElement / 3 / opts.PEs),
			RemoteMemory: true,
			Tier:         &cluster.TierSpec{Capacity: pt.cap},
			SpoolDir:     dir,
			Factory:      meshgen.Factory,
			Network:      comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
			Disk:         storage.DiskModel{Seek: 600 * time.Microsecond, BytesPerSec: 150 << 20},
			Trace:        opts.Trace,
			TraceLabel:   fmt.Sprintf("tiers/%s/", pt.label),
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		res, err := meshgen.RunOPCDM(cl, meshgen.PCDMConfig{Grid: 8, TargetElements: size})
		ts := cl.TierStats()
		wait := cl.IOStats().DemandWaitMean()
		lost := cl.SwapStats().ObjectsLost
		cl.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		label := "0 (disk)"
		switch {
		case pt.cap < 0:
			label = "unbounded (remote)"
		case pt.cap > 0:
			label = fmtK(int(pt.cap)) + "B/node"
		}
		t.AddRow(label, fmtDur(res.Elapsed), fmtPct(ts.HitRatio()*100),
			fmtInt(int(ts.Spills)), fmtInt(int(ts.Demotions)), fmtInt(int(ts.Promotions)),
			fmtInt(int(res.Mem.Evictions)), fmtInt(int(lost)))
		prefix := fmt.Sprintf("sz%d/%s", size, pt.label)
		t.SetMetric(prefix+"/time_sec", res.Elapsed.Seconds())
		t.SetMetric(prefix+"/tier0_hit_pct", ts.HitRatio()*100)
		t.SetMetric(prefix+"/demand_wait_ms", float64(wait.Microseconds())/1000)
		if pt.label == "capmid" {
			t.SetMetric(prefix+"/spills", float64(ts.Spills))
			t.SetMetric(prefix+"/demotions", float64(ts.Demotions))
			t.SetMetric(prefix+"/promotions", float64(ts.Promotions))
		}
	}
	return t, nil
}

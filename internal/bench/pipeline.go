package bench

import (
	"fmt"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/meshgen"
	"mrts/internal/ooc"
	"mrts/internal/storage"
	"mrts/internal/swapio"
)

// Pipeline sweeps the swap I/O scheduler's two knobs — worker count and
// prefetch depth — over an out-of-core OUPDR run. It is the experiment
// behind the scheduler's design claims: more I/O workers pipeline
// serialization against disk service time, and deeper prefetch raises
// comp/disk overlap, while the priority classes keep demand-load latency
// flat no matter how much speculation is queued behind it. The gated
// metrics are wall time, overlap%% and mean demand-load wait.
func Pipeline(opts Options) (*Table, error) {
	t := &Table{
		ID:      "pipeline",
		Title:   "swap I/O scheduler: workers × prefetch depth on OUPDR",
		Headers: []string{"io workers", "prefetch", "time", "overlap%", "demand wait", "coalesced", "cancelled"},
		Notes: []string{
			"demand wait = mean time a demand load sat queued before an I/O worker picked it up",
			"expectation: more workers/deeper prefetch raise overlap; demand wait stays flat (priority classes)",
		},
	}
	size := opts.size(60000)
	for _, workers := range []int{1, 4} {
		for _, depth := range []int{2, 8} {
			res, st, err := pipelineRun(opts, size, workers, depth)
			if err != nil {
				return nil, err
			}
			wait := st.DemandWaitMean()
			t.AddRow(fmtInt(workers), fmtInt(depth), fmtDur(res.Elapsed),
				fmtPct(res.Report.Overlap()), wait.Round(time.Microsecond).String(),
				fmtInt(int(st.Coalesced)), fmtInt(int(st.Cancelled)))
			key := fmt.Sprintf("sz%d/w%dd%d", size, workers, depth)
			t.SetMetric(key+"/time_sec", res.Elapsed.Seconds())
			t.SetMetric(key+"/overlap_pct", res.Report.Overlap())
			t.SetMetric(key+"/demand_wait_ms", float64(wait.Microseconds())/1000)
		}
	}
	return t, nil
}

// pipelineRun builds a cluster with the given scheduler knobs, runs OUPDR
// out-of-core, and snapshots the aggregated I/O stats before teardown
// (Close cancels queued prefetches, which would distort the counters).
func pipelineRun(opts Options, size, workers, depth int) (meshgen.Result, swapio.Stats, error) {
	dir, err := os.MkdirTemp("", "mrts-bench-")
	if err != nil {
		return meshgen.Result{}, swapio.Stats{}, err
	}
	defer os.RemoveAll(dir)
	cl, err := cluster.New(cluster.Config{
		Nodes:          opts.PEs,
		WorkersPerNode: 1,
		MemBudget:      int64(size / 3 * bytesPerElement / opts.PEs),
		Policy:         ooc.LRU,
		SpoolDir:       dir,
		Factory:        meshgen.Factory,
		IOWorkers:      workers,
		PrefetchDepth:  depth,
		Trace:          opts.Trace,
		TraceLabel:     fmt.Sprintf("pipeline/w%dd%d/", workers, depth),
		// Same regime-matched models as oocCluster.
		Network: comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
		Disk:    storage.DiskModel{Seek: 600 * time.Microsecond, BytesPerSec: 150 << 20},
	})
	if err != nil {
		return meshgen.Result{}, swapio.Stats{}, err
	}
	defer cl.Close()
	res, err := meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: 8, TargetElements: size})
	if err != nil {
		return meshgen.Result{}, swapio.Stats{}, err
	}
	return res, cl.IOStats(), nil
}

package bench

import (
	"fmt"
	"os"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/meshgen"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/storage"
)

// faultCluster builds an out-of-core cluster like oocCluster, but with a
// fault-injecting store and a retry policy on every node.
func faultCluster(nodes, inCoreElems int, fault *storage.FaultConfig, retry storage.RetryPolicy, sink *obs.TraceSink, label string) (*cluster.Cluster, func(), error) {
	dir, err := os.MkdirTemp("", "mrts-faults-")
	if err != nil {
		return nil, nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:          nodes,
		WorkersPerNode: 1,
		MemBudget:      int64(inCoreElems * bytesPerElement / nodes),
		Policy:         ooc.LRU,
		SpoolDir:       dir,
		Factory:        meshgen.Factory,
		Network:        comm.LatencyModel{Latency: 200 * time.Microsecond, BytesPerSec: 100 << 20},
		Disk:           storage.DiskModel{Seek: 600 * time.Microsecond, BytesPerSec: 150 << 20},
		Fault:          fault,
		Retry:          retry,
		Trace:          sink,
		TraceLabel:     label,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return cl, func() { cl.Close(); os.RemoveAll(dir) }, nil
}

// Faults exercises the hardened swap path: the same out-of-core OUPDR
// problem runs fault-free, under transient I/O faults (absorbed by the
// retry layer: identical element count, no losses), and under permanent
// faults (objects are lost, counted, and reported instead of silently
// dropped — the cluster still terminates).
func Faults(opts Options) (*Table, error) {
	t := &Table{
		ID:      "faults",
		Title:   "OUPDR under injected storage faults (transient absorbed, permanent surfaced)",
		Headers: []string{"run", "elements", "retries", "load-fail", "store-fail", "lost", "status"},
		Notes: []string{
			"transient faults (fail twice, then succeed) must not change the mesh: the retry layer absorbs them",
			"permanent faults must surface as non-zero lost objects, never as a silent wedge or drop",
		},
	}
	size := opts.size(40000)
	budget := size / 3 // tight: the run must swap to exercise the fault paths
	retry := storage.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        17,
	}

	type run struct {
		name  string
		fault *storage.FaultConfig
		retry storage.RetryPolicy
	}
	runs := []run{
		{name: "fault-free"},
		{
			name: "transient",
			fault: &storage.FaultConfig{
				Seed:          42,
				FailFirstGets: 2,
				FailFirstPuts: 2,
			},
			retry: retry,
		},
		{
			name: "permanent",
			fault: &storage.FaultConfig{
				Seed:        42,
				GetFailProb: 1.0,
				Permanent:   true,
			},
			retry: retry,
		},
	}

	baseline := -1
	for _, r := range runs {
		cl, cleanup, err := faultCluster(opts.PEs, budget, r.fault, r.retry,
			opts.Trace, "faults/"+r.name+"/")
		if err != nil {
			return nil, err
		}
		res, err := meshgen.RunOUPDR(cl, meshgen.UPDRConfig{Blocks: 8, TargetElements: size})
		stats := cl.SwapStats()
		cleanup()
		elements := 0
		if err == nil {
			elements = res.Elements
		} else if r.name != "permanent" {
			// Only the permanent run is allowed to lose work.
			return nil, fmt.Errorf("bench: faults %s run: %w", r.name, err)
		}
		status := "ok"
		switch r.name {
		case "fault-free":
			baseline = elements
		case "transient":
			if elements != baseline {
				status = fmt.Sprintf("MISMATCH (want %d)", baseline)
			} else if stats.ObjectsLost != 0 {
				status = "UNEXPECTED LOSS"
			} else {
				status = "match"
			}
		case "permanent":
			if stats.ObjectsLost > 0 {
				status = "loss surfaced"
			} else {
				status = "NO LOSS SURFACED"
			}
		}
		t.AddRow(r.name, fmtInt(elements), fmtInt(int(stats.Retries)),
			fmtInt(int(stats.LoadFailures)), fmtInt(int(stats.StoreFailures)),
			fmtInt(int(stats.ObjectsLost)), status)
		t.SetMetric(fmt.Sprintf("sz%d/%s/elements", size, r.name), float64(elements))
		t.SetMetric(fmt.Sprintf("sz%d/%s/objects_lost", size, r.name), float64(stats.ObjectsLost))
	}
	return t, nil
}

package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("1", "22")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "333", "22"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(25 * time.Millisecond); got != "25ms" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(200 * time.Microsecond); got != "200µs" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtPct(12.34); got != "12.3%" {
		t.Errorf("fmtPct = %q", got)
	}
	if got := fmtK(42000); got != "42k" {
		t.Errorf("fmtK = %q", got)
	}
	if got := fmtK(999); got != "999" {
		t.Errorf("fmtK = %q", got)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("bogus", Options{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 25 {
		t.Fatalf("expected 25 experiments, got %d", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestFigure1Small(t *testing.T) {
	tbl, err := Figure1(Options{Scale: 0.2, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
}

func TestFigure5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Options{Scale: 0.05, PEs: 2}.withDefaults()
	tbl, err := methodPair("fig5", "tiny", "UPDR", []int{opts.size(20000), opts.size(40000)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestPoliciesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := Policies(Options{Scale: 0.08, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("expected 10 rows (5 policies x 2 workloads), got %d", len(tbl.Rows))
	}
}

func TestAllocSmoke(t *testing.T) {
	tbl, err := Alloc(Options{Scale: 0.05, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"steady/store_allocs_per_op", "steady/load_allocs_per_op",
		"steady/bytes_moved", "steady/pool_hit_pct",
	} {
		if _, ok := tbl.Metrics[key]; !ok {
			t.Fatalf("missing metric %s: %v", key, tbl.Metrics)
		}
	}
	// The pooled path keeps per-op allocations at a small bookkeeping
	// constant; double digits means a pooled buffer path came unhooked.
	if a := tbl.Metrics["steady/store_allocs_per_op"]; a > 10 {
		t.Fatalf("store allocs/op = %.2f, want bookkeeping-only", a)
	}
	if a := tbl.Metrics["steady/load_allocs_per_op"]; a > 10 {
		t.Fatalf("load allocs/op = %.2f, want bookkeeping-only", a)
	}
	if tbl.Metrics["steady/bytes_moved"] == 0 {
		t.Fatal("bytes_moved = 0; the probe moved no payload")
	}
}

func TestCompressTiny(t *testing.T) {
	tbl, err := Compress(Options{Scale: 0.02, PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	size := int(60000 * 0.02)
	off := tbl.Metrics[fmt.Sprintf("sz%d/off/bytes_moved", size)]
	on := tbl.Metrics[fmt.Sprintf("sz%d/on/bytes_moved", size)]
	if off == 0 || on == 0 {
		t.Fatalf("bytes_moved missing: off=%v on=%v (%v)", off, on, tbl.Metrics)
	}
	ratio := tbl.Metrics[fmt.Sprintf("sz%d/on/compress_ratio", size)]
	if ratio <= 0 {
		t.Fatalf("compress_ratio = %v, want > 0", ratio)
	}
	// The layer exists to shrink media traffic; allow slack for framing
	// overhead on tiny incompressible blobs but never a blow-up.
	if on > off*1.1 {
		t.Fatalf("compression increased media bytes: on=%v off=%v", on, off)
	}
}

package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"mrts/internal/bufpool"
	"mrts/internal/storage"
	"mrts/internal/swapio"
)

// Alloc audits the steady-state allocation behaviour of the swap hot path:
// the full submit-to-complete store (encode → write) and load (read →
// callback) cycles through the swapio scheduler over a pooled in-memory
// store. The I/O stages themselves are allocation-free (the zero-alloc unit
// tests in internal/swapio pin that exactly); what this experiment measures
// and the CI gate bounds is the whole public path, whose only remaining
// allocations are the per-request bookkeeping (the request struct and its
// callback slice). A regression here — a lost pooled path, a fresh buffer per
// op, a closure snuck into the retry loop — shows up as a jump in allocs/op
// long before it is visible as wall time.
//
// The op count and payload size are fixed (not scaled): bytes_moved is then
// fully deterministic, so the gate's relative bound catches double-writes and
// lost coalescing, not machine speed.
func Alloc(opts Options) (*Table, error) {
	t := &Table{
		ID:      "alloc",
		Title:   "steady-state allocations and bytes moved on the swap hot path",
		Headers: []string{"stage", "allocs/op", "bytes moved", "pool hit%"},
		Notes: []string{
			"full submit-to-complete cycle; the I/O stages themselves are 0 allocs/op (see internal/swapio tests)",
			"payload and op counts are fixed so bytes_moved is deterministic across machines",
		},
	}
	const (
		payloadSize = 8 << 10
		warmupOps   = 64
		measureOps  = 512
	)

	// The collector would attribute its own background allocations to the
	// measured window; pin it for the duration.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	s := swapio.New(storage.NewMem(), swapio.Config{Workers: 1})
	defer s.Close()

	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	ch := make(chan struct{}, 1)

	// Store stage: encode produces a pooled clone (ownership transfers to
	// the scheduler), done just signals. Both closures are built once and
	// reused so the measurement sees the scheduler, not the harness.
	encode := func() ([]byte, error) { return bufpool.Clone(payload), nil }
	storeDone := func(int, error) { ch <- struct{}{} }
	storeOnce := func(key storage.Key) {
		if !s.Store(key, 1, encode, nil, storeDone) {
			panic("bench: store refused")
		}
		<-ch
	}
	loadDone := func([]byte, error) { ch <- struct{}{} } // blob is scheduler-owned; untouched
	loadOnce := func(key storage.Key) {
		if !s.Load(key, 1, swapio.Demand, loadDone) {
			panic("bench: load refused")
		}
		<-ch
	}

	const key = storage.Key("alloc-probe")
	measure := func(op func(storage.Key)) float64 {
		for i := 0; i < warmupOps; i++ {
			op(key)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < measureOps; i++ {
			op(key)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / measureOps
	}

	poolBefore := bufpool.Snapshot()
	ioBefore := s.Snapshot()
	storeAllocs := measure(storeOnce)
	ioMid := s.Snapshot()
	loadAllocs := measure(loadOnce)
	ioAfter := s.Snapshot()
	poolAfter := bufpool.Snapshot()

	bytesWritten := ioMid.BytesWritten - ioBefore.BytesWritten
	bytesRead := ioAfter.BytesRead - ioMid.BytesRead
	bytesMoved := bytesWritten + bytesRead

	gets := (poolAfter.Hits + poolAfter.Misses) - (poolBefore.Hits + poolBefore.Misses)
	hitPct := 0.0
	if gets > 0 {
		hitPct = float64(poolAfter.Hits-poolBefore.Hits) / float64(gets) * 100
	}

	t.AddRow("store (encode→write)", fmt.Sprintf("%.2f", storeAllocs), fmtInt(int(bytesWritten)), "")
	t.AddRow("load (read→callback)", fmt.Sprintf("%.2f", loadAllocs), fmtInt(int(bytesRead)), fmtPct(hitPct))
	t.SetMetric("steady/store_allocs_per_op", storeAllocs)
	t.SetMetric("steady/load_allocs_per_op", loadAllocs)
	t.SetMetric("steady/bytes_moved", float64(bytesMoved))
	t.SetMetric("steady/pool_hit_pct", hitPct)
	return t, nil
}

package bench

import (
	"fmt"
	"math/rand"
	"time"

	"mrts/internal/cluster"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/ooc"
)

// Routing sweeps the four locators over two migration regimes — the
// experiment behind the placement-aware routing claim: with objects settled
// at their ring owners, a DirPlaced first hop lands on the owner directly
// (forwarded-per-message ≈ 0), while the home-anchored policies pay the home
// detour or a forwarding chain; under migration drift every locator pays
// something, and the sweep shows what.
//
// The dirpolicies experiment is unchanged and still reproduces the paper's
// lazy/eager/home comparison; this one adds the placed locator and gates the
// forwarding and hop-count metrics in CI.
func Routing(opts Options) (*Table, error) {
	t := &Table{
		ID:      "routing",
		Title:   "first-hop routing: home-anchored policies vs directory placement",
		Headers: []string{"locator", "regime", "time", "fwd/msg", "hops", "dir updates", "stale"},
		Notes: []string{
			"settled: objects sit at their ring owners; drift: a third migrate to random nodes between rounds",
			"placed resolves first hops off the consistent-hash ring: fwd/msg ~ 0 when settled",
		},
	}
	kinds := []cluster.RoutingKind{cluster.RouteHome, cluster.RouteLazy, cluster.RouteEager, cluster.RoutePlaced}
	for _, kind := range kinds {
		if opts.Dir != "" && string(kind) != opts.Dir {
			continue
		}
		for _, regime := range []string{"settled", "drift"} {
			m, err := routingRun(opts, kind, regime == "drift")
			if err != nil {
				return nil, err
			}
			t.AddRow(string(kind), regime, fmtDur(m.elapsed),
				fmt.Sprintf("%.3f", m.fwdPerMsg), fmt.Sprintf("%.2f", m.hopsMean),
				fmtInt(int(m.dirUpdates)), fmtInt(int(m.staleRetries)))
			pfx := fmt.Sprintf("%s/%s/", kind, regime)
			t.SetMetric(pfx+"time_sec", m.elapsed.Seconds())
			t.SetMetric(pfx+"forwarded_per_msg", m.fwdPerMsg)
			t.SetMetric(pfx+"hops_mean", m.hopsMean)
		}
	}
	return t, nil
}

type routingMetrics struct {
	elapsed      time.Duration
	fwdPerMsg    float64
	hopsMean     float64
	dirUpdates   int64
	staleRetries int64
}

// routingRun executes one (locator, regime) cell: objects born on node 0,
// rebalanced to their ring owners, then a post storm from random nodes. The
// drift regime migrates a third of the objects to random nodes between storm
// rounds, so locators must recover from off-placement objects.
func routingRun(opts Options, kind cluster.RoutingKind, drift bool) (routingMetrics, error) {
	var m routingMetrics
	// A two-node cluster cannot express a stale first hop: every object is
	// either local to the poster or on the only other node, so the home
	// anchor always answers correctly and all locators tie at zero. Three
	// nodes is the smallest shape with a real detour (poster, home, owner
	// pairwise distinct).
	nodes := opts.PEs
	if nodes < 3 {
		nodes = 3
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:     nodes,
		MemBudget: 1 << 24,
		Routing:   kind,
		Network:   comm.LatencyModel{Latency: 100 * time.Microsecond},
		Policy:    ooc.LRU,
		Factory: func(typeID uint16) (core.Object, error) {
			if typeID == 9 {
				return &noopObj{}, nil
			}
			return nil, core.ErrUnknownType
		},
		Trace:      opts.Trace,
		TraceLabel: fmt.Sprintf("routing/%s/", kind),
	})
	if err != nil {
		return m, err
	}
	defer cl.Close()
	rts := cl.Runtimes()
	for _, rt := range rts {
		rt.Register(1, func(c *core.Ctx, arg []byte) {})
	}

	// Every object is born on node 0 (maximal home skew), then settled at its
	// ring owner — the placement a directory-driven application (meshgen's
	// SPMD driver) establishes by construction.
	const objects = 48
	ptrs := make([]core.MobilePtr, 0, objects)
	host := make([]core.NodeID, objects) // where each object currently lives
	for i := 0; i < objects; i++ {
		ptrs = append(ptrs, rts[0].CreateObject(&noopObj{}))
	}
	for i, p := range ptrs {
		owner, _ := cl.Directory().OwnerOf(p)
		host[i] = owner
		if owner != 0 {
			if err := rts[0].Migrate(p, owner); err != nil {
				return m, err
			}
		}
	}
	cl.Wait()
	time.Sleep(5 * time.Millisecond) // let migration notices land

	posts := int(2000 * opts.Scale)
	if posts < 200 {
		posts = 200
	}
	before := cl.RouteStats()
	rng := rand.New(rand.NewSource(opts.seedFor(13)))
	start := time.Now()
	const rounds = 3
	for round := 0; round < rounds; round++ {
		if drift && round > 0 {
			// Migration drift: a third of the objects move to random nodes,
			// taking them off their ring placement.
			for i := rng.Intn(3); i < len(ptrs); i += 3 {
				dest := core.NodeID(rng.Intn(nodes))
				if dest == host[i] {
					continue
				}
				if err := cl.RT(int(host[i])).Migrate(ptrs[i], dest); err != nil {
					return m, err
				}
				host[i] = dest
			}
			cl.Wait()
			time.Sleep(5 * time.Millisecond)
		}
		for i := 0; i < posts/rounds; i++ {
			rts[rng.Intn(nodes)].Post(ptrs[rng.Intn(len(ptrs))], 1, nil)
		}
		cl.Wait()
	}
	m.elapsed = time.Since(start)
	after := cl.RouteStats()
	m.fwdPerMsg = float64(after.Forwarded-before.Forwarded) / float64(posts)
	m.hopsMean = after.HopsMean
	m.dirUpdates = after.DirUpdates - before.DirUpdates
	m.staleRetries = after.StaleRetries - before.StaleRetries
	if after.Dropped != 0 {
		return m, fmt.Errorf("bench: routing %s: %d messages dropped at the hop bound", kind, after.Dropped)
	}
	return m, nil
}

// Package cluster assembles simulated clusters: N MRTS nodes inside one
// process, each with its own memory budget, task pool (PEs), spool store and
// trace collector, wired by an in-process one-sided transport with a
// configurable network model. It also hosts the batch-queue simulator used
// to reproduce Figure 1 of the paper.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/clock"
	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/remotemem"
	"mrts/internal/sched"
	"mrts/internal/storage"
	"mrts/internal/swapio"
	"mrts/internal/tier"
	"mrts/internal/trace"
)

// SchedulerKind selects the computing layer implementation (Table VII).
type SchedulerKind string

// Available computing-layer schedulers.
const (
	WorkStealing SchedulerKind = "workstealing" // TBB-like
	GlobalQueue  SchedulerKind = "globalqueue"  // GCD-like
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of simulated nodes.
	Nodes int
	// WorkersPerNode is the PE count per node (pool workers). <= 0 means 1.
	WorkersPerNode int
	// MemBudget is the per-node memory budget in bytes for mobile objects.
	MemBudget int64
	// Policy is the eviction policy (default LRU).
	Policy ooc.Policy
	// Network is the latency model of the inter-node transport.
	Network comm.LatencyModel
	// Disk, when non-zero, injects a service-time model into each node's
	// store (one simulated spindle per node).
	Disk storage.DiskModel
	// SpoolDir, when non-empty, uses real files under
	// SpoolDir/node<i>/ as the storage backend; otherwise memory-backed
	// stores are used.
	SpoolDir string
	// RemoteMemory, when true, implements the paper's "memory of remote
	// nodes as out-of-core media" configuration: one extra node joins the
	// transport as a dedicated memory server and every compute node's
	// storage layer reaches it over one-sided messages instead of using
	// local disk. Without Tier, SpoolDir and Disk are ignored (the legacy
	// exclusive mode); with Tier set, remote memory becomes tier 0 *in
	// front of* the SpoolDir/Disk backstop.
	RemoteMemory bool
	// Tier, when non-nil alongside RemoteMemory, composes the two backends
	// into a capacity-aware hierarchy (internal/tier): remote memory is a
	// leased fast tier over the local disk store, which keeps its full
	// LatencyClock/FaultStore stack.
	Tier *TierSpec
	// Scheduler selects the task scheduler flavor (default WorkStealing).
	Scheduler SchedulerKind
	// Routing selects the locator wired into every node: one of the paper's
	// home-anchored directory policies (RouteLazy — the default and the
	// paper's choice — RouteEager, RouteHome) or RoutePlaced, which resolves
	// first hops off the cluster's consistent-hash placement ring so a
	// settled object costs one hop regardless of its birth node.
	Routing RoutingKind
	// Factory constructs application objects on reload/migration.
	Factory core.Factory
	// IOWorkers per node (<= 0 means 2).
	IOWorkers int
	// QueueDepth bounds each node's swap I/O queue: prefetch submissions
	// beyond the bound are rejected (demand loads and eviction writes are
	// never bounded). <= 0 means the swapio default (64).
	QueueDepth int
	// PrefetchDepth bounds how many speculative loads each node keeps in
	// flight (<= 0 means 2).
	PrefetchDepth int
	// Retry is each node's storage retry policy: transient I/O faults are
	// absorbed with backoff inside the async facade before they can reach
	// the swap path. Zero value = single attempt.
	Retry storage.RetryPolicy
	// Fault, when non-nil, wraps every node's store in a deterministic
	// fault-injecting layer (the node index is folded into the seed so the
	// nodes draw independent but reproducible fault sequences).
	Fault *storage.FaultConfig
	// OnSwapError, when non-nil, is installed on every node and receives
	// swap-path failures that survived the retry budget.
	OnSwapError func(node int, e core.SwapError)
	// Trace, when non-nil, enables structured event tracing: every node
	// draws a tracer from this sink (so timelines across nodes — and
	// across clusters sharing the sink — align), installed on the node's
	// endpoint, task pool and runtime. Export with obs.WriteChromeTrace.
	Trace *obs.TraceSink
	// TraceLabel prefixes the per-node tracer labels (e.g. "fig8/" makes
	// "fig8/node0"), distinguishing clusters that share one sink.
	TraceLabel string
	// Clock is the shared time source of every layer in the cluster:
	// transport delivery delays, disk service times, retry backoff,
	// termination probing. Nil means the wall clock; the simulation harness
	// injects a virtual clock so modeled latencies cost no real time.
	Clock clock.Clock
	// Seed derives every node's deterministic randomness: work-stealing
	// victim selection (Seed + node*65537), retry jitter and fault injection
	// (node-folded inside their layers). Zero is a valid fixed seed; two
	// clusters built with the same Config replay the same random choices.
	Seed int64
	// NodeDisk, when non-nil, overrides Disk per node — the hook the
	// simulation harness uses to model one slow node. Nodes with a zero
	// model get no latency wrapper.
	NodeDisk func(node int) storage.DiskModel
}

// TierSpec configures the tiered storage hierarchy of a RemoteMemory
// cluster. Zero-value fields take the tier package defaults.
type TierSpec struct {
	// Capacity is each node's tier-0 byte lease: 0 disables the fast tier
	// (pure disk), < 0 means unbounded. The memory server's own cap is the
	// sum of the node leases.
	Capacity int64
	// HighWater / LowWater are the demotion watermarks (defaults 0.9/0.7).
	HighWater, LowWater float64
	// AdmitMax caps the blob size admitted to tier 0 (0 = no size gate).
	AdmitMax int64
	// PromoteAfter is the demand-miss count that promotes a blob back to
	// tier 0 (default 2, < 0 disables).
	PromoteAfter int
	// Workers is the inner I/O worker count serving the disk tier
	// (default 2).
	Workers int
	// Compress, when non-nil, enables the transparent compression layer
	// (tier 0.5) on every node: disk-bound blobs are flate-compressed and a
	// byte-capped RAM cache of compressed frames fronts the disk. See
	// tier.CompressConfig.
	Compress *CompressSpec
	// Fault, when non-nil, wraps the remote-memory tier in a deterministic
	// fault injector (node-folded seed) — the knob the simulation harness
	// uses to storm tier 0 while the disk tier stays healthy.
	Fault *storage.FaultConfig
}

// CompressSpec configures each node's tier-0.5 compression layer.
// Zero-value fields take the tier package defaults.
type CompressSpec struct {
	// CacheBytes caps the per-node RAM cache of compressed frames
	// (0 disables the cache; compression still applies).
	CacheBytes int64
	// MinSize is the blob size below which compression is skipped.
	MinSize int
	// Level is the DEFLATE level (default flate.BestSpeed).
	Level int
	// AdmitHeat is the touch count before a frame earns cache space.
	AdmitHeat int
}

// Cluster is a set of wired MRTS nodes.
type Cluster struct {
	cfg     Config
	tr      *comm.InProcTransport
	pools   []sched.Pool
	cols    []*trace.Collector
	tracers []*obs.Tracer
	tiers   []*tier.Store
	memsrv  *remotemem.Server
	clk     clock.Clock
	start   time.Time

	// nmu guards the per-node slots that churn operations replace or flag
	// (a restarted node gets a fresh runtime and store in the same slot)
	// against readers like the simulator's continuous invariant sweep.
	nmu      sync.RWMutex
	rts      []*core.Runtime
	bases    []storage.Store // each node's bottom-most (disk-level) store, for DiskStats
	inactive []bool          // node has left (drained) or crashed
	ckpts    []storage.Store // crash checkpoints awaiting RestartNode

	dir        *Directory       // consistent-hash object placement ring
	placed     []*PlacedLocator // per-node placed locators (RoutePlaced only, else nil)
	rebalanced atomic.Int64     // objects moved by churn rebalancing
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node")
	}
	if cfg.WorkersPerNode <= 0 {
		cfg.WorkersPerNode = 1
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = WorkStealing
	}
	endpoints := cfg.Nodes
	if cfg.RemoteMemory {
		endpoints++ // the memory server node
	}
	tiered := cfg.RemoteMemory && cfg.Tier != nil
	clk := clock.Or(cfg.Clock)
	c := &Cluster{cfg: cfg, tr: comm.NewInProcClock(endpoints, cfg.Network, clk), clk: clk, start: clk.Now()}
	// The placement ring exists before any node: RoutePlaced nodes wrap it as
	// their locator, and churn mutates this same instance, so every node's
	// routing view moves with the membership by construction.
	ids := make([]core.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = core.NodeID(i)
	}
	c.dir = NewDirectory(ids, 0)
	if cfg.RemoteMemory {
		ep := c.tr.Endpoint(comm.NodeID(cfg.Nodes))
		if tiered && cfg.Tier.Capacity > 0 {
			// The donor enforces the sum of the node leases: even a buggy
			// tier client cannot overrun the donated budget.
			c.memsrv = remotemem.NewServerCap(ep, cfg.Tier.Capacity*int64(cfg.Nodes))
		} else {
			c.memsrv = remotemem.NewServer(ep)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		var pool sched.Pool
		switch cfg.Scheduler {
		case GlobalQueue:
			pool = sched.NewGlobalQueue(cfg.WorkersPerNode)
		default:
			pool = sched.NewWorkStealingSeeded(cfg.WorkersPerNode, cfg.Seed+int64(i)*65537)
		}
		var tracer *obs.Tracer
		if cfg.Trace != nil {
			tracer = cfg.Trace.NewTracer(fmt.Sprintf("%snode%d", cfg.TraceLabel, i))
			pool.SetTracer(tracer)
			c.tr.Endpoint(comm.NodeID(i)).SetTracer(tracer)
		}
		retry := cfg.Retry
		if retry.Clock == nil {
			retry.Clock = cfg.Clock
		}
		// Fold the node index into the jitter seed so concurrent retriers
		// decorrelate while staying reproducible from Config.Seed.
		retry.Seed += cfg.Seed + int64(i)*7919
		disk := cfg.Disk
		if cfg.NodeDisk != nil {
			disk = cfg.NodeDisk(i)
		}
		var st storage.Store
		if cfg.RemoteMemory && !tiered {
			// Legacy exclusive mode: remote memory replaces disk outright.
			st = remotemem.NewClient(c.tr.Endpoint(comm.NodeID(i)), comm.NodeID(cfg.Nodes))
			if cfg.Fault != nil {
				fc := *cfg.Fault
				fc.Seed += int64(i) * 7919
				st = storage.NewFault(st, fc)
			}
		} else {
			// The disk (or backstop) store keeps its full latency + fault
			// stack even when remote memory fronts it — the service-time
			// model is part of the tier, not an alternative to it.
			base, raw, err := c.nodeBaseStore(i, disk)
			if err != nil {
				c.Close()
				return nil, err
			}
			// Keep the raw bottom store before any wrappers: DiskStats reads
			// bytes at the media level, where the compression layer's savings
			// are visible.
			c.bases = append(c.bases, raw)
			if tiered {
				var fast storage.Store
				if cfg.Tier.Capacity != 0 {
					fast = remotemem.NewClient(c.tr.Endpoint(comm.NodeID(i)), comm.NodeID(cfg.Nodes))
					if cfg.Tier.Fault != nil {
						fc := *cfg.Tier.Fault
						// A different fold than the disk tier's so the two
						// fault sequences decorrelate.
						fc.Seed += int64(i)*7919 + 3571
						fast = storage.NewFault(fast, fc)
					}
				}
				var compress *tier.CompressConfig
				if cfg.Tier.Compress != nil {
					compress = &tier.CompressConfig{
						CacheBytes: cfg.Tier.Compress.CacheBytes,
						MinSize:    cfg.Tier.Compress.MinSize,
						Level:      cfg.Tier.Compress.Level,
						AdmitHeat:  cfg.Tier.Compress.AdmitHeat,
					}
				}
				ts, err := tier.New(tier.Config{
					Fast:         fast,
					Slow:         base,
					Capacity:     cfg.Tier.Capacity,
					HighWater:    cfg.Tier.HighWater,
					LowWater:     cfg.Tier.LowWater,
					AdmitMax:     cfg.Tier.AdmitMax,
					PromoteAfter: cfg.Tier.PromoteAfter,
					Workers:      cfg.Tier.Workers,
					Compress:     compress,
					Retry:        retry,
					Tracer:       tracer,
					Clock:        cfg.Clock,
				})
				if err != nil {
					c.Close()
					return nil, err
				}
				c.tiers = append(c.tiers, ts)
				st = ts
			} else {
				st = base
			}
		}
		col := trace.NewCollector()
		var commDelay func(int) time.Duration
		if cfg.Network.Latency > 0 || cfg.Network.BytesPerSec > 0 {
			commDelay = cfg.Network.Delay
		}
		var diskDelay func(int) time.Duration
		if (disk.Seek > 0 || disk.BytesPerSec > 0) && !tiered {
			// Tiered nodes charge measured durations instead: a tier-0 hit
			// must not be billed the modeled disk service time, while a
			// tier-1 access pays the LatencyClock on the slow store.
			diskDelay = disk.ServiceTime
		}
		var onSwapError func(core.SwapError)
		if cfg.OnSwapError != nil {
			node := i
			hook := cfg.OnSwapError
			onSwapError = func(e core.SwapError) { hook(node, e) }
		}
		cc := core.Config{
			Endpoint:      c.tr.Endpoint(comm.NodeID(i)),
			Pool:          pool,
			Factory:       cfg.Factory,
			Mem:           ooc.Config{Budget: cfg.MemBudget, Policy: cfg.Policy},
			Store:         st,
			IOWorkers:     cfg.IOWorkers,
			QueueDepth:    cfg.QueueDepth,
			PrefetchDepth: cfg.PrefetchDepth,
			Retry:         retry,
			OnSwapError:   onSwapError,
			Collector:     col,
			Tracer:        tracer,
			CommDelay:     commDelay,
			DiskDelay:     diskDelay,
			Clock:         cfg.Clock,
		}
		c.applyRouting(&cc, i)
		rt := core.NewRuntime(cc)
		c.pools = append(c.pools, pool)
		c.rts = append(c.rts, rt)
		c.cols = append(c.cols, col)
		c.tracers = append(c.tracers, tracer)
	}
	c.inactive = make([]bool, cfg.Nodes)
	c.ckpts = make([]storage.Store, cfg.Nodes)
	return c, nil
}

// applyRouting fills node i's routing configuration per cfg.Routing: the
// placement-aware locator over the shared ring, or one of the home-anchored
// policy locators. RestartNode reuses it so a relaunched node routes exactly
// like its old incarnation.
func (c *Cluster) applyRouting(cc *core.Config, i int) {
	switch c.cfg.Routing {
	case RoutePlaced:
		l := NewPlacedLocator(c.dir, core.NodeID(i))
		if c.placed == nil {
			c.placed = make([]*PlacedLocator, c.cfg.Nodes)
		}
		c.placed[i] = l
		cc.Locator = l
	case RouteEager:
		cc.Directory = core.DirEager
	case RouteHome:
		cc.Directory = core.DirHome
	default: // "" and RouteLazy: the paper's default policy
		cc.Directory = core.DirLazy
	}
	cc.NumNodes = c.cfg.Nodes
}

// nodeBaseStore builds node i's bottom-level store stack for a non-remote
// node: the raw media store (file under SpoolDir or memory), wrapped by the
// modeled disk latency and the deterministic fault layer. It returns the
// wrapped store plus the raw media store (kept for DiskStats), and is also
// how RestartNode gives a restarted node a fresh stack in the same slot.
func (c *Cluster) nodeBaseStore(i int, disk storage.DiskModel) (wrapped, raw storage.Store, err error) {
	var base storage.Store
	if c.cfg.SpoolDir != "" {
		fs, err := storage.NewFile(filepath.Join(c.cfg.SpoolDir, fmt.Sprintf("node%d", i)))
		if err != nil {
			return nil, nil, err
		}
		base = fs
	} else {
		base = storage.NewMem()
	}
	raw = base
	if disk.Seek > 0 || disk.BytesPerSec > 0 {
		base = storage.NewLatencyClock(base, disk, c.clk)
	}
	if c.cfg.Fault != nil {
		fc := *c.cfg.Fault
		fc.Seed += int64(i) * 7919
		base = storage.NewFault(base, fc)
	}
	return base, raw, nil
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.rts) }

// PEs returns the total processing element count (nodes × workers).
func (c *Cluster) PEs() int { return len(c.rts) * c.cfg.WorkersPerNode }

// RT returns node i's runtime (the current one, if the node was restarted).
func (c *Cluster) RT(i int) *core.Runtime {
	c.nmu.RLock()
	defer c.nmu.RUnlock()
	return c.rts[i]
}

// Runtimes returns a snapshot of all runtimes. Slots of restarted nodes
// change between calls; callers iterate the snapshot, not the live slice.
func (c *Cluster) Runtimes() []*core.Runtime {
	c.nmu.RLock()
	defer c.nmu.RUnlock()
	out := make([]*core.Runtime, len(c.rts))
	copy(out, c.rts)
	return out
}

// MemoryServer returns the remote-memory server when the cluster was built
// with RemoteMemory, else nil.
func (c *Cluster) MemoryServer() *remotemem.Server { return c.memsrv }

// Tiers returns the per-node tiered stores when the cluster was built with
// RemoteMemory + Tier, else an empty slice.
func (c *Cluster) Tiers() []*tier.Store { return c.tiers }

// TierStats aggregates the tier counters across nodes (counters and gauges
// sum; HitRatio of the sum is the cluster-wide tier-0 hit ratio).
func (c *Cluster) TierStats() tier.Stats {
	var out tier.Stats
	for _, ts := range c.tiers {
		out.Add(ts.Snapshot())
	}
	return out
}

// CompressStats aggregates the tier-0.5 counters across nodes. ok is false
// when no node has a compression layer.
func (c *Cluster) CompressStats() (stats tier.CompressStats, ok bool) {
	for _, ts := range c.tiers {
		if s, has := ts.CompressStats(); has {
			stats.Add(s)
			ok = true
		}
	}
	return stats, ok
}

// DiskStats aggregates the bottom-most (media-level) store counters across
// nodes. Bytes here are what actually hit the disk store — below the
// compression layer, so tier-0.5 savings show as a drop. Nodes whose bottom
// store does not count traffic contribute zero.
func (c *Cluster) DiskStats() storage.Stats {
	var out storage.Stats
	c.nmu.RLock()
	bases := make([]storage.Store, len(c.bases))
	copy(bases, c.bases)
	c.nmu.RUnlock()
	for _, st := range bases {
		if sr, ok := st.(storage.StatsReader); ok {
			s := sr.Stats()
			out.Puts += s.Puts
			out.Gets += s.Gets
			out.Deletes += s.Deletes
			out.BytesWritten += s.BytesWritten
			out.BytesRead += s.BytesRead
		}
	}
	return out
}

// Wait blocks until the whole cluster is quiescent — the paper's
// termination condition ("no message handlers executing and no messages
// traveling").
func (c *Cluster) Wait() { core.WaitQuiescence(c.Runtimes()...) }

// Report merges the per-node trace reports for the elapsed wall time.
func (c *Cluster) Report() trace.Report {
	wall := c.clk.Since(c.start)
	reports := make([]trace.Report, len(c.cols))
	for i, col := range c.cols {
		reports[i] = col.Report()
	}
	return trace.Merge(wall, reports...)
}

// MemStats aggregates the OOC statistics across nodes.
func (c *Cluster) MemStats() ooc.Stats {
	var out ooc.Stats
	for _, rt := range c.Runtimes() {
		s := rt.Mem().Snapshot()
		out.Evictions += s.Evictions
		out.Loads += s.Loads
		out.InCore += s.InCore
		out.OutOfCore += s.OutOfCore
		out.MemUsed += s.MemUsed
		out.MemBudget += s.MemBudget
		out.PeakMemUsed += s.PeakMemUsed
		out.LoadFailures += s.LoadFailures
		out.StoreFailures += s.StoreFailures
		out.Retries += s.Retries
		out.ObjectsLost += s.ObjectsLost
	}
	return out
}

// Tracers returns the per-node event tracers (nil entries when the
// cluster was built without a TraceSink).
func (c *Cluster) Tracers() []*obs.Tracer { return c.tracers }

// PublishMetrics registers every node's runtime metrics into reg under
// "node<i>." prefixes, plus cluster-level aggregates under "cluster.".
// This is the unified registry view: one snapshot covers the trace
// collectors, the ooc layer and the swap-failure counters of all nodes.
func (c *Cluster) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, rt := range c.rts {
		rt.PublishMetrics(reg, fmt.Sprintf("node%d.", i))
	}
	reg.Gauge("cluster.nodes", func() float64 { return float64(len(c.rts)) })
	reg.Gauge("cluster.pes", func() float64 { return float64(c.PEs()) })
	reg.Gauge("cluster.evictions", func() float64 { return float64(c.MemStats().Evictions) })
	reg.Gauge("cluster.loads", func() float64 { return float64(c.MemStats().Loads) })
	reg.Gauge("cluster.retries", func() float64 { return float64(c.SwapStats().Retries) })
	reg.Gauge("cluster.objects_lost", func() float64 { return float64(c.SwapStats().ObjectsLost) })
	reg.Gauge("cluster.overlap_pct", func() float64 { return c.Report().Overlap() })
	reg.Gauge("cluster.disk_pct", func() float64 { return c.Report().Percent(trace.Disk) })
	reg.Gauge("cluster.coalesced", func() float64 { return float64(c.IOStats().Coalesced) })
	reg.Gauge("cluster.cancelled", func() float64 { return float64(c.IOStats().Cancelled) })
	reg.Gauge("cluster.demand_wait_ms", func() float64 {
		return float64(c.IOStats().DemandWaitMean().Microseconds()) / 1000
	})
	reg.Gauge("cluster.ring_epoch", func() float64 { return float64(c.dir.Epoch()) })
	reg.Gauge("cluster.ring_nodes", func() float64 { return float64(c.dir.Size()) })
	reg.Gauge("cluster.active_nodes", func() float64 { return float64(c.ActiveNodes()) })
	reg.Gauge("cluster.rebalanced_objects", func() float64 { return float64(c.rebalanced.Load()) })
	reg.Gauge("cluster.route.forwarded", func() float64 { return float64(c.RouteStats().Forwarded) })
	reg.Gauge("cluster.route.dropped", func() float64 { return float64(c.RouteStats().Dropped) })
	reg.Gauge("cluster.route.stale_retries", func() float64 { return float64(c.RouteStats().StaleRetries) })
	reg.Gauge("cluster.route.hops_mean", func() float64 { return c.RouteStats().HopsMean })
	if len(c.tiers) > 0 {
		reg.Gauge("cluster.tier0_hit_pct", func() float64 { return c.TierStats().HitRatio() * 100 })
		reg.Gauge("cluster.tier.fast_bytes", func() float64 { return float64(c.TierStats().FastBytes) })
		reg.Gauge("cluster.tier.spills", func() float64 { return float64(c.TierStats().Spills) })
		reg.Gauge("cluster.tier.demotions", func() float64 { return float64(c.TierStats().Demotions) })
		reg.Gauge("cluster.tier.promotions", func() float64 { return float64(c.TierStats().Promotions) })
		if _, ok := c.CompressStats(); ok {
			reg.Gauge("cluster.tier05.ratio", func() float64 {
				s, _ := c.CompressStats()
				return s.Ratio()
			})
			reg.Gauge("cluster.tier05.hit_pct", func() float64 {
				s, _ := c.CompressStats()
				return s.CacheHitRatio() * 100
			})
			reg.Gauge("cluster.tier05.stored_bytes", func() float64 {
				s, _ := c.CompressStats()
				return float64(s.StoredBytes)
			})
			reg.Gauge("cluster.disk.bytes_moved", func() float64 {
				d := c.DiskStats()
				return float64(d.BytesWritten + d.BytesRead)
			})
		}
		for i, ts := range c.tiers {
			ts := ts
			reg.Gauge(fmt.Sprintf("node%d.tier.fast_bytes", i), func() float64 {
				return float64(ts.Snapshot().FastBytes)
			})
		}
	}
}

// Metrics returns a one-shot unified snapshot of the cluster's metrics, a
// convenience wrapper over PublishMetrics for harness code that does not
// keep a registry around.
func (c *Cluster) Metrics() obs.Snapshot {
	reg := obs.NewRegistry()
	c.PublishMetrics(reg)
	return reg.Snapshot()
}

// IOStats aggregates the swap I/O scheduler statistics across nodes
// (counters sum; high-water marks take the per-node maximum).
func (c *Cluster) IOStats() swapio.Stats {
	var out swapio.Stats
	for _, rt := range c.Runtimes() {
		out.Add(rt.IOStats())
	}
	return out
}

// RouteStats aggregates the routing counters across nodes: forwarding
// traffic, directory updates, loud drops, epoch-staleness retries and the
// cluster-wide mean hop count of delivered remote messages.
type RouteStats struct {
	Forwarded    int64
	DirUpdates   int64
	Dropped      int64
	StaleRetries int64
	HopsMean     float64
}

// RouteStats aggregates routing counters across nodes (hop means weighted by
// each node's delivered-message count).
func (c *Cluster) RouteStats() RouteStats {
	var out RouteStats
	var hopSum float64
	var hopN int64
	for _, rt := range c.Runtimes() {
		out.Forwarded += rt.ForwardedCount()
		out.DirUpdates += rt.DirUpdatesSent()
		out.Dropped += rt.RouteDropped()
		out.StaleRetries += rt.RouteStaleRetries()
		var n int64
		for _, b := range rt.RouteHopHistogram() {
			n += b
		}
		hopSum += rt.RouteHopsMean() * float64(n)
		hopN += n
	}
	if hopN > 0 {
		out.HopsMean = hopSum / float64(hopN)
	}
	return out
}

// SwapStats aggregates the swap-failure statistics across nodes.
func (c *Cluster) SwapStats() core.SwapStats {
	var out core.SwapStats
	for _, rt := range c.Runtimes() {
		s := rt.SwapStats()
		out.LoadFailures += s.LoadFailures
		out.StoreFailures += s.StoreFailures
		out.Retries += s.Retries
		out.ObjectsLost += s.ObjectsLost
	}
	return out
}

// Close shuts everything down: runtimes (waiting for swap ops), pools and
// the transport.
func (c *Cluster) Close() {
	for _, rt := range c.Runtimes() {
		if rt != nil {
			rt.Close()
		}
	}
	for _, p := range c.pools {
		if p != nil {
			p.Close()
		}
	}
	if c.tr != nil {
		c.tr.Close()
	}
}

// TempSpoolDir creates a throwaway spool directory for out-of-core runs and
// returns it with a cleanup function.
func TempSpoolDir(prefix string) (string, func(), error) {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

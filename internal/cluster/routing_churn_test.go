package cluster

import (
	"testing"

	"mrts/internal/core"
)

// TestRoutedSendsRaceChurn storms posts on a placed-routing cluster without
// waiting for delivery before membership churn bumps the ring epoch: sends
// resolved at epoch N must be delivered (or cleanly re-resolved and counted
// as stale retries) after a leave and a rejoin move the directory to N+1 and
// N+2. Every post lands exactly once, nothing dies at the forward-hop bound,
// and the placement invariants hold at each boundary. Run under -race in the
// CI matrix, this is the locking story for the Locator seam: epoch reads,
// override repair, and parked re-routing all race real churn here.
func TestRoutedSendsRaceChurn(t *testing.T) {
	c, err := New(Config{
		Nodes:     4,
		MemBudget: 1 << 20,
		Factory:   ballastFactory,
		Routing:   RoutePlaced,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	registerInc(c.Runtimes())

	var ptrs []core.MobilePtr
	for i := 0; i < 32; i++ {
		ptrs = append(ptrs, c.RT(i%4).CreateObject(&ballastObj{Data: make([]byte, 64)}))
	}
	// The placed contract: the application settles placement by the
	// directory before routing against it.
	if _, err := c.SettleAtOwners(); err != nil {
		t.Fatalf("settle: %v", err)
	}

	// postBatch fires one post per object from a rotating sender and does
	// NOT wait: the batch is in flight when the caller churns the ring.
	batches := 0
	postBatch := func() {
		for i, p := range ptrs {
			c.RT((i+batches)%4).Post(p, 1, nil)
		}
		batches++
	}

	epoch0 := c.Directory().Epoch()
	postBatch() // resolved at epoch N, racing the leave below
	moved, err := c.LeaveNode(2)
	if err != nil {
		t.Fatalf("LeaveNode: %v", err)
	}
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("after leave: %v", bad)
	}
	t.Logf("leave drained %d objects, epoch %d -> %d", moved, epoch0, c.Directory().Epoch())

	postBatch() // posts while the node is out, racing the rejoin below
	back, err := c.JoinNode(2)
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("after join: %v", bad)
	}
	t.Logf("join pulled %d objects back", back)

	postBatch()
	c.Wait()

	got := readCounts(t, c, ptrs)
	for _, p := range ptrs {
		if got[p] != int64(batches) {
			t.Errorf("object %v received %d of %d posts", p, got[p], batches)
		}
	}
	rs := c.RouteStats()
	if rs.Dropped != 0 {
		t.Fatalf("%d messages died at the forward-hop bound", rs.Dropped)
	}
	if c.Directory().Epoch() == epoch0 {
		t.Fatal("churn did not move the ring epoch; the race never happened")
	}
}

package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"mrts/internal/core"
)

// Directory is the consistent-hash sharded object directory: it owns the
// key→node placement every node of a multi-process cluster computes
// identically and without communication. Each node is mapped to VNodes
// points on a 64-bit hash ring; a key is owned by the node whose ring point
// first follows the key's hash. Adding or removing one node therefore moves
// only the keys in the arcs that node's points cover — about 1/N of the
// keyspace — instead of rehashing everything.
//
// The ring is versioned by an epoch that increments on every membership
// change. Lookups made against a remembered epoch (OwnerAt) fail with
// ErrStaleEpoch when the ring has moved on, so a caller that cached a
// placement retries against the current ring instead of acting on a stale —
// and possibly wrong — owner.
//
// All methods are safe for concurrent use.
type Directory struct {
	vnodes int

	mu    sync.RWMutex
	epoch uint64
	nodes map[core.NodeID]struct{}
	ring  []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node core.NodeID
}

// ErrStaleEpoch reports that a lookup was made against a superseded ring;
// the caller should re-resolve against the current epoch.
var ErrStaleEpoch = errors.New("cluster: stale ring epoch")

// DefaultVNodes is the virtual-node count per member used when none is
// given. 512 keeps the spread across 8 nodes within a few percent of
// uniform while the ring stays small enough to rebuild on every change.
const DefaultVNodes = 512

// NewDirectory builds a ring over the given members. vnodes <= 0 selects
// DefaultVNodes. The initial epoch is 1.
func NewDirectory(nodes []core.NodeID, vnodes int) *Directory {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	d := &Directory{vnodes: vnodes, epoch: 1, nodes: make(map[core.NodeID]struct{}, len(nodes))}
	for _, n := range nodes {
		d.nodes[n] = struct{}{}
	}
	d.rebuildLocked()
	return d
}

// rebuildLocked regenerates the ring from the node set. Ring points depend
// only on (node, vnodes), so every process derives the identical ring from
// the identical membership — the property that makes the directory shared
// without being replicated.
func (d *Directory) rebuildLocked() {
	d.ring = d.ring[:0]
	for n := range d.nodes {
		for v := 0; v < d.vnodes; v++ {
			d.ring = append(d.ring, ringPoint{hash: vnodeHash(n, v), node: n})
		}
	}
	sort.Slice(d.ring, func(i, j int) bool {
		if d.ring[i].hash != d.ring[j].hash {
			return d.ring[i].hash < d.ring[j].hash
		}
		return d.ring[i].node < d.ring[j].node
	})
}

func vnodeHash(n core.NodeID, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "n%d#%d", n, v)
	return mix64(h.Sum64())
}

func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a over short, similar strings
// ("n3#17", "mp-0-42") leaves correlated low bits; the finalizer spreads
// them over the whole ring so vnode arcs are near-uniform.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Epoch returns the current ring epoch.
func (d *Directory) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// Size returns the number of member nodes.
func (d *Directory) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.nodes)
}

// Nodes returns the members, sorted.
func (d *Directory) Nodes() []core.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ns := make([]core.NodeID, 0, len(d.nodes))
	for n := range d.nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Contains reports whether n is a member.
func (d *Directory) Contains(n core.NodeID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.nodes[n]
	return ok
}

// Owner returns the node owning key on the current ring, plus the epoch the
// answer is valid for. An empty ring owns nothing and returns node -1.
func (d *Directory) Owner(key string) (core.NodeID, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ownerLocked(key), d.epoch
}

// OwnerAt returns the owner of key if the ring is still at the given epoch,
// and ErrStaleEpoch otherwise — the retry signal for cached placements.
func (d *Directory) OwnerAt(key string, epoch uint64) (core.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if epoch != d.epoch {
		return -1, fmt.Errorf("%w: have %d, ring at %d", ErrStaleEpoch, epoch, d.epoch)
	}
	return d.ownerLocked(key), nil
}

// OwnerOf returns the owner of a mobile pointer's placement key.
func (d *Directory) OwnerOf(ptr core.MobilePtr) (core.NodeID, uint64) {
	return d.Owner(PtrKey(ptr))
}

// PtrKey is the canonical placement key of a mobile pointer.
func PtrKey(ptr core.MobilePtr) string {
	return fmt.Sprintf("mp-%d-%d", ptr.Home, ptr.Seq)
}

func (d *Directory) ownerLocked(key string) core.NodeID {
	if len(d.ring) == 0 {
		return -1
	}
	h := keyHash(key)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= h })
	if i == len(d.ring) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return d.ring[i].node
}

// Add inserts a member and returns the new epoch. Adding an existing member
// is a no-op returning the current epoch.
func (d *Directory) Add(n core.NodeID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[n]; ok {
		return d.epoch
	}
	d.nodes[n] = struct{}{}
	d.rebuildLocked()
	d.epoch++
	return d.epoch
}

// Remove deletes a member and returns the new epoch. Removing a non-member
// is a no-op returning the current epoch.
func (d *Directory) Remove(n core.NodeID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[n]; !ok {
		return d.epoch
	}
	delete(d.nodes, n)
	d.rebuildLocked()
	d.epoch++
	return d.epoch
}

// CheckInvariants audits the ring structure and returns human-readable
// violations (empty when healthy): the ring must hold exactly
// members×vnodes points, sorted, every point owned by a member, and probe
// keys must resolve to exactly one member.
func (d *Directory) CheckInvariants() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var bad []string
	if want := len(d.nodes) * d.vnodes; len(d.ring) != want {
		bad = append(bad, fmt.Sprintf("directory: ring has %d points, want %d", len(d.ring), want))
	}
	for i := 1; i < len(d.ring); i++ {
		if d.ring[i-1].hash > d.ring[i].hash {
			bad = append(bad, fmt.Sprintf("directory: ring unsorted at %d", i))
			break
		}
	}
	for _, p := range d.ring {
		if _, ok := d.nodes[p.node]; !ok {
			bad = append(bad, fmt.Sprintf("directory: ring point owned by non-member %d", p.node))
			break
		}
	}
	if len(d.nodes) > 0 {
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("probe-%d", i)
			owner := d.ownerLocked(key)
			if _, ok := d.nodes[owner]; !ok {
				bad = append(bad, fmt.Sprintf("directory: key %q resolves to non-member %d", key, owner))
			}
		}
	}
	return bad
}

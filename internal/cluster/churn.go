// Node churn: graceful leave/join with object rebalancing over the
// consistent-hash directory, and whole-node crash/restart built on the
// checkpoint machinery.
//
// The rebalance drain rule: a membership change never copies the whole
// keyspace. On leave, only the departing node's objects move — each to the
// node now owning its placement key; on join, only the objects whose
// placement key the new member took over move. Both ride the existing
// migrate path, whose eviction writes go through the swapio write class, so
// a rebalance competes with (and yields to) demand loads like any other
// write-back traffic.
//
// All churn operations require a quiescent cluster (call Wait first): they
// reshape placement between computation phases, mirroring how the
// multi-process deployment checkpoints and rebalances only at phase
// barriers.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"mrts/internal/comm"
	"mrts/internal/core"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/storage"
)

// Directory returns the cluster's placement ring.
func (c *Cluster) Directory() *Directory { return c.dir }

// ActiveNodes counts nodes currently in service (not drained or crashed).
func (c *Cluster) ActiveNodes() int {
	c.nmu.RLock()
	defer c.nmu.RUnlock()
	n := 0
	for _, gone := range c.inactive {
		if !gone {
			n++
		}
	}
	return n
}

// Rebalanced returns the number of objects moved by churn rebalancing.
func (c *Cluster) Rebalanced() int64 { return c.rebalanced.Load() }

// LeaveNode gracefully removes node i from the placement ring and drains
// every object it holds to the object's new ring owner. The node's runtime
// stays up as a forwarding shell — in-flight references through it still
// resolve — but it owns no keys and hosts no objects until JoinNode.
// Returns the number of objects drained.
func (c *Cluster) LeaveNode(i int) (int, error) {
	c.nmu.RLock()
	bad := i < 0 || i >= len(c.rts)
	if !bad {
		bad = c.inactive[i]
	}
	c.nmu.RUnlock()
	if bad {
		return 0, fmt.Errorf("cluster: node %d absent or already inactive", i)
	}
	if c.dir.Size() <= 1 {
		return 0, fmt.Errorf("cluster: cannot drain the last ring member")
	}
	epoch := c.dir.Remove(core.NodeID(i))
	c.tracer(i).Emit(obs.KindNodeLeave, uint64(i), int64(epoch))
	moved, err := c.drainNode(i)
	c.nmu.Lock()
	c.inactive[i] = true
	c.nmu.Unlock()
	// The ring epoch moved: off-placement objects must be re-announced to
	// their new anchors, and a message parked under the old placement would
	// hold its node's work counter forever, so Wait below would hang.
	c.reAnchor()
	c.reRouteParked()
	c.Wait() // let the last installs land before the caller resumes posting
	return moved, err
}

// JoinNode returns a previously drained node to the ring and pulls over the
// objects whose placement keys it now owns. Returns the number of objects
// moved to it.
func (c *Cluster) JoinNode(i int) (int, error) {
	c.nmu.Lock()
	if i < 0 || i >= len(c.rts) || !c.inactive[i] || c.ckpts[i] != nil {
		c.nmu.Unlock()
		return 0, fmt.Errorf("cluster: node %d is not a drained member", i)
	}
	c.inactive[i] = false
	c.nmu.Unlock()
	epoch := c.dir.Add(core.NodeID(i))
	c.tracer(i).Emit(obs.KindNodeJoin, uint64(i), int64(epoch))

	moved := 0
	for j, rt := range c.Runtimes() {
		if j == i || c.isInactive(j) {
			continue
		}
		for _, ptr := range rt.LocalObjects() {
			owner, _ := c.dir.OwnerOf(ptr)
			if owner != core.NodeID(i) {
				continue
			}
			if err := c.migrateSettled(rt, ptr, core.NodeID(i)); err != nil {
				return moved, err
			}
			moved++
		}
	}
	c.reAnchor()
	c.reRouteParked() // see LeaveNode: the epoch bump moved placements
	c.Wait()
	return moved, nil
}

// reAnchor repairs placed-routing anchor state after a ring epoch bump. An
// object that migrated off its placement is reachable only through the
// override its old ring owner recorded; when the epoch moves that key to a
// different owner, the override is orphaned and first hops would park at the
// new owner forever. Each live node is the ground truth for the objects it
// hosts, so it re-announces every off-placement object to the current ring
// owner's locator. No-op for the home-anchored policies (their anchor, the
// birth node, never moves).
func (c *Cluster) reAnchor() {
	c.nmu.RLock()
	placed := make([]*PlacedLocator, len(c.placed))
	copy(placed, c.placed)
	c.nmu.RUnlock()
	if len(placed) == 0 {
		return
	}
	for j, rt := range c.Runtimes() {
		if c.isInactive(j) {
			continue
		}
		for _, ptr := range rt.LocalObjects() {
			owner, _ := c.dir.OwnerOf(ptr)
			if owner == core.NodeID(j) || owner < 0 {
				continue
			}
			if l := placed[owner]; l != nil {
				l.Note(ptr, core.NodeID(j))
			}
		}
	}
}

// SettleAtOwners migrates every hosted object to its current ring owner —
// the placement a directory-driven application establishes by construction,
// and the state in which the placed locator's first hops are exact. Returns
// the number of objects moved. The cluster must be quiescent.
func (c *Cluster) SettleAtOwners() (int, error) {
	moved := 0
	for j, rt := range c.Runtimes() {
		if c.isInactive(j) {
			continue
		}
		for _, ptr := range rt.LocalObjects() {
			dest, _ := c.dir.OwnerOf(ptr)
			if dest < 0 || dest == core.NodeID(j) {
				continue
			}
			if err := c.migrateSettled(rt, ptr, dest); err != nil {
				return moved, err
			}
			moved++
		}
	}
	c.Wait()
	return moved, nil
}

// reRouteParked re-resolves parked messages on every live runtime after a
// ring epoch bump. Drained nodes are included — they stay up as forwarding
// shells and can hold parked messages too; crashed nodes are skipped (their
// runtime is closed, and a crash does not move the ring).
func (c *Cluster) reRouteParked() {
	c.nmu.RLock()
	rts := make([]*core.Runtime, 0, len(c.rts))
	for i, rt := range c.rts {
		if c.ckpts[i] != nil {
			continue
		}
		rts = append(rts, rt)
	}
	c.nmu.RUnlock()
	for _, rt := range rts {
		rt.ReRouteParked()
	}
}

// drainNode migrates every object node i holds to its ring owner.
func (c *Cluster) drainNode(i int) (int, error) {
	rt := c.RT(i)
	moved := 0
	for _, ptr := range rt.LocalObjects() {
		dest, _ := c.dir.OwnerOf(ptr)
		if dest < 0 || dest == core.NodeID(i) {
			return moved, fmt.Errorf("cluster: no ring owner for %v while draining node %d", ptr, i)
		}
		if err := c.migrateSettled(rt, ptr, dest); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// migrateSettled migrates one object, absorbing transient ErrBusy (a
// handler or swap operation still holding the object right at the phase
// boundary) with a bounded retry.
func (c *Cluster) migrateSettled(rt *core.Runtime, ptr core.MobilePtr, dest core.NodeID) error {
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		err = rt.Migrate(ptr, dest)
		switch err {
		case nil:
			c.rebalanced.Add(1)
			rt.Tracer().Emit(obs.KindDirRebalance, packPtr(ptr), int64(dest))
			return nil
		case core.ErrNotLocal, core.ErrObjectLost:
			// Already moved (or gone): nothing left to drain here.
			return nil
		case core.ErrBusy:
			c.clk.Sleep(200 * time.Microsecond)
		default:
			return fmt.Errorf("cluster: rebalance %v -> node %d: %w", ptr, dest, err)
		}
	}
	return fmt.Errorf("cluster: rebalance %v -> node %d: still busy after retries: %w", ptr, dest, err)
}

func packPtr(p core.MobilePtr) uint64 {
	return uint64(uint32(p.Home))<<32 | uint64(p.Seq)
}

// CrashNode kills node i at a phase boundary: its state is checkpointed to
// an in-memory store (standing in for the durable checkpoint a real worker
// process writes at every barrier), and the runtime is torn down. The node
// keeps its ring membership — it is down, not departed — exactly like a
// real worker that will be relaunched with the same node ID. Only plain
// disk clusters support crash/restart; remote-memory and tiered stacks
// share state through the transport that dies with the runtime.
func (c *Cluster) CrashNode(i int) error {
	if c.cfg.RemoteMemory || c.cfg.Tier != nil {
		return fmt.Errorf("cluster: CrashNode supports plain disk clusters only")
	}
	c.nmu.RLock()
	bad := i < 0 || i >= len(c.rts) || c.inactive[i]
	var rt *core.Runtime
	if !bad {
		rt = c.rts[i]
	}
	c.nmu.RUnlock()
	if bad {
		return fmt.Errorf("cluster: node %d absent or already inactive", i)
	}
	// Termination stops handlers and messages, but background evictions can
	// still hold objects for a few more virtual microseconds; absorb that
	// window like any other phase-boundary ErrBusy.
	var ck storage.Store
	var err error
	for attempt := 0; attempt < 1000; attempt++ {
		ck = storage.NewMem() // fresh store per attempt: no partial manifests
		err = rt.Checkpoint(ck, "crash")
		if !errors.Is(err, core.ErrBusy) {
			break
		}
		c.clk.Sleep(200 * time.Microsecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: checkpoint node %d: %w", i, err)
	}
	c.nmu.Lock()
	c.ckpts[i] = ck
	c.inactive[i] = true
	c.nmu.Unlock()
	c.tracer(i).Emit(obs.KindNodeLeave, uint64(i), int64(c.dir.Epoch()))
	return rt.Close()
}

// RestartNode relaunches a crashed node in its old slot: a fresh store
// stack, a fresh runtime on the same endpoint and task pool, restored from
// the crash checkpoint. Application handlers must be re-registered on the
// returned runtime (a fresh process knows only what its binary registers).
func (c *Cluster) RestartNode(i int) (*core.Runtime, error) {
	c.nmu.RLock()
	bad := i < 0 || i >= len(c.rts) || !c.inactive[i]
	var ck storage.Store
	if !bad {
		ck = c.ckpts[i]
	}
	c.nmu.RUnlock()
	if bad || ck == nil {
		return nil, fmt.Errorf("cluster: node %d has no crash checkpoint", i)
	}

	disk := c.cfg.Disk
	if c.cfg.NodeDisk != nil {
		disk = c.cfg.NodeDisk(i)
	}
	st, raw, err := c.nodeBaseStore(i, disk)
	if err != nil {
		return nil, err
	}
	retry := c.cfg.Retry
	if retry.Clock == nil {
		retry.Clock = c.cfg.Clock
	}
	retry.Seed += c.cfg.Seed + int64(i)*7919
	var commDelay func(int) time.Duration
	if c.cfg.Network.Latency > 0 || c.cfg.Network.BytesPerSec > 0 {
		commDelay = c.cfg.Network.Delay
	}
	var diskDelay func(int) time.Duration
	if disk.Seek > 0 || disk.BytesPerSec > 0 {
		diskDelay = disk.ServiceTime
	}
	var onSwapError func(core.SwapError)
	if c.cfg.OnSwapError != nil {
		node := i
		hook := c.cfg.OnSwapError
		onSwapError = func(e core.SwapError) { hook(node, e) }
	}
	cc := core.Config{
		Endpoint:      c.tr.Endpoint(comm.NodeID(i)),
		Pool:          c.pools[i],
		Factory:       c.cfg.Factory,
		Mem:           ooc.Config{Budget: c.cfg.MemBudget, Policy: c.cfg.Policy},
		Store:         st,
		IOWorkers:     c.cfg.IOWorkers,
		QueueDepth:    c.cfg.QueueDepth,
		PrefetchDepth: c.cfg.PrefetchDepth,
		Retry:         retry,
		OnSwapError:   onSwapError,
		Collector:     c.cols[i],
		Tracer:        c.tracers[i],
		CommDelay:     commDelay,
		DiskDelay:     diskDelay,
		Clock:         c.cfg.Clock,
	}
	c.applyRouting(&cc, i)
	rt := core.NewRuntime(cc)
	if err := rt.Restore(ck, "crash"); err != nil {
		rt.Close()
		return nil, fmt.Errorf("cluster: restore node %d: %w", i, err)
	}
	c.nmu.Lock()
	c.rts[i] = rt
	c.bases[i] = raw
	c.ckpts[i] = nil
	c.inactive[i] = false
	c.nmu.Unlock()
	c.tracer(i).Emit(obs.KindNodeJoin, uint64(i), int64(c.dir.Epoch()))
	return rt, nil
}

func (c *Cluster) isInactive(i int) bool {
	c.nmu.RLock()
	defer c.nmu.RUnlock()
	return c.inactive[i]
}

func (c *Cluster) tracer(i int) *obs.Tracer {
	if i >= 0 && i < len(c.tracers) {
		return c.tracers[i] // nil-safe: Emit on nil tracer is a no-op
	}
	return nil
}

// DirectoryInvariants audits placement after churn, on a quiescent cluster:
// the ring structure itself; every mobile object hosted by exactly one
// active node; drained nodes hosting nothing; ring membership matching node
// state (crashed-but-checkpointed nodes stay members, drained nodes do
// not). Returns human-readable violations, empty when healthy.
func (c *Cluster) DirectoryInvariants() []string {
	bad := c.dir.CheckInvariants()

	c.nmu.RLock()
	rts := make([]*core.Runtime, len(c.rts))
	copy(rts, c.rts)
	inactive := make([]bool, len(c.inactive))
	copy(inactive, c.inactive)
	crashed := make([]bool, len(c.ckpts))
	for i, ck := range c.ckpts {
		crashed[i] = ck != nil
	}
	c.nmu.RUnlock()

	hosts := make(map[core.MobilePtr]int)
	for i, rt := range rts {
		if inactive[i] {
			if crashed[i] {
				continue // its objects live in the checkpoint, not on a node
			}
			if n := rt.NumLocalObjects(); n != 0 {
				bad = append(bad, fmt.Sprintf("cluster: drained node %d still hosts %d objects", i, n))
			}
			continue
		}
		for _, ptr := range rt.LocalObjects() {
			hosts[ptr]++
		}
	}
	for ptr, n := range hosts {
		if n > 1 {
			bad = append(bad, fmt.Sprintf("cluster: object %v hosted by %d nodes", ptr, n))
		}
	}
	for i := range rts {
		inRing := c.dir.Contains(core.NodeID(i))
		wantIn := !inactive[i] || crashed[i]
		if inRing != wantIn {
			bad = append(bad, fmt.Sprintf("cluster: node %d ring membership %v, want %v (inactive=%v crashed=%v)",
				i, inRing, wantIn, inactive[i], crashed[i]))
		}
	}
	return bad
}

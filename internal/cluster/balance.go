package cluster

import (
	"sort"

	"mrts/internal/core"
)

// This file provides the dynamic load balancing functionality the paper
// inherits from the MRTS's predecessor: redistributing mobile objects
// between nodes by migration. Over-decomposition (N ≫ P objects) is what
// makes this effective — there is always something movable.
//
// Balancing runs at a phase boundary (quiescence), which is when the
// paper's applications rebalance too: migration of busy objects is refused
// by the runtime, so a quiet cluster is the natural point.

// Weight scores one object for balancing. The default weighs every object
// equally; applications supply e.g. element counts.
type Weight func(ptr core.MobilePtr, rt *core.Runtime) int64

// Balance redistributes mobile objects so per-node total weight is as even
// as migration of whole objects allows. It returns the number of objects
// moved. The cluster must be quiescent.
func (c *Cluster) Balance(weight Weight) int {
	if weight == nil {
		weight = func(core.MobilePtr, *core.Runtime) int64 { return 1 }
	}
	type item struct {
		ptr core.MobilePtr
		w   int64
	}
	rts := c.Runtimes()
	n := len(rts)
	loads := make([]int64, n)
	objs := make([][]item, n)
	var total int64
	for i, rt := range rts {
		for _, p := range rt.LocalObjects() {
			w := weight(p, rt)
			if w <= 0 {
				w = 1
			}
			objs[i] = append(objs[i], item{p, w})
			loads[i] += w
			total += w
		}
		// Move the lightest objects first: cheaper migrations, finer
		// control near the target load.
		sort.Slice(objs[i], func(a, b int) bool { return objs[i][a].w < objs[i][b].w })
	}
	target := total / int64(n)

	moved := 0
	// Greedy: repeatedly move an object from the most loaded node to the
	// least loaded one while that strictly improves the imbalance.
	for iter := 0; iter < 4*n*64; iter++ {
		hi, lo := 0, 0
		for i := range loads {
			if loads[i] > loads[hi] {
				hi = i
			}
			if loads[i] < loads[lo] {
				lo = i
			}
		}
		if hi == lo || loads[hi] <= target {
			break
		}
		// Pick the largest object that still fits the deficit.
		deficit := loads[hi] - target
		cand := -1
		for k := len(objs[hi]) - 1; k >= 0; k-- {
			if objs[hi][k].w <= deficit || cand == -1 {
				cand = k
				if objs[hi][k].w <= deficit {
					break
				}
			}
		}
		if cand < 0 {
			break
		}
		it := objs[hi][cand]
		if err := rts[hi].Migrate(it.ptr, core.NodeID(lo)); err != nil {
			// Busy or gone: drop it from consideration.
			objs[hi] = append(objs[hi][:cand], objs[hi][cand+1:]...)
			if len(objs[hi]) == 0 {
				break
			}
			continue
		}
		moved++
		objs[hi] = append(objs[hi][:cand], objs[hi][cand+1:]...)
		loads[hi] -= it.w
		loads[lo] += it.w
		objs[lo] = append(objs[lo], it)
		if loads[hi] <= target && loads[lo] >= target {
			// Check whether any imbalance remains worth fixing.
			maxL, minL := loads[0], loads[0]
			for _, l := range loads {
				if l > maxL {
					maxL = l
				}
				if l < minL {
					minL = l
				}
			}
			if maxL-minL <= 1 {
				break
			}
		}
	}
	// Let the installs land before the caller resumes posting.
	c.Wait()
	return moved
}

// ObjectCounts returns the number of mobile objects per node.
func (c *Cluster) ObjectCounts() []int {
	rts := c.Runtimes()
	out := make([]int, len(rts))
	for i, rt := range rts {
		out[i] = rt.NumLocalObjects()
	}
	return out
}

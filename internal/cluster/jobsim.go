package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// This file implements the batch-queue simulator behind Figure 1 of the
// paper: how long jobs wait before starting, as a function of how many nodes
// they request, on a shared cluster with an FCFS + EASY-backfill scheduler.
// The paper's point: on their small shared cluster, requests under 16 nodes
// started within minutes while 32-node requests waited half an hour and
// 100+-node requests waited hours — which is why running out-of-core on
// fewer nodes can beat running in-core on many.

// Job is one batch job.
type Job struct {
	ID       int
	Submit   time.Duration // submission time since simulation start
	Nodes    int           // requested node count
	Runtime  time.Duration // actual runtime
	Estimate time.Duration // user-provided estimate (for backfill)

	start time.Duration
}

// Wait returns the queue wait time of a scheduled job.
func (j *Job) Wait() time.Duration { return j.start - j.Submit }

// Start returns the scheduled start time.
func (j *Job) Start() time.Duration { return j.start }

// JobSimConfig configures the simulator.
type JobSimConfig struct {
	ClusterNodes int  // total nodes in the machine
	Backfill     bool // EASY backfill vs plain FCFS
}

// SimulateJobs schedules the jobs (in submission order) and fills in their
// start times. It uses an event-driven simulation: at any moment the
// scheduler knows which nodes free up when, starts the queue head as soon as
// possible, and (with Backfill) lets smaller jobs jump ahead when they do
// not delay the head's reservation.
func SimulateJobs(cfg JobSimConfig, jobs []*Job) error {
	if cfg.ClusterNodes <= 0 {
		return fmt.Errorf("jobsim: cluster must have nodes")
	}
	for _, j := range jobs {
		if j.Nodes <= 0 || j.Nodes > cfg.ClusterNodes {
			return fmt.Errorf("jobsim: job %d requests %d of %d nodes", j.ID, j.Nodes, cfg.ClusterNodes)
		}
		if j.Estimate < j.Runtime {
			j.Estimate = j.Runtime
		}
	}
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Submit < jobs[k].Submit })

	var active []runningJob
	free := cfg.ClusterNodes

	freeAt := func(now time.Duration) {
		// Release all jobs that ended by now.
		keep := active[:0]
		for _, r := range active {
			if r.end <= now {
				free += r.nodes
			} else {
				keep = append(keep, r)
			}
		}
		active = keep
	}
	// nextEnd returns the earliest completion time of active jobs.
	nextEnd := func() time.Duration {
		e := time.Duration(math.MaxInt64)
		for _, r := range active {
			if r.end < e {
				e = r.end
			}
		}
		return e
	}

	pending := append([]*Job(nil), jobs...)
	now := time.Duration(0)
	for len(pending) > 0 {
		head := pending[0]
		if head.Submit > now {
			now = head.Submit
		}
		freeAt(now)
		if free >= head.Nodes {
			head.start = now
			active = append(active, runningJob{end: now + head.Runtime, nodes: head.Nodes})
			free -= head.Nodes
			pending = pending[1:]
			continue
		}
		// Head cannot start: compute its reservation (when enough nodes
		// will be free, assuming estimates hold).
		resAt, resOK := reservationTime(active, free, head.Nodes, now)
		if cfg.Backfill && resOK {
			// Backfill: start any later-submitted job that fits in the
			// free nodes now and finishes before the reservation (or uses
			// nodes the head doesn't need).
			for i := 1; i < len(pending); i++ {
				j := pending[i]
				if j.Submit > now || j.Nodes > free {
					continue
				}
				if now+j.Estimate <= resAt || j.Nodes <= free-head.Nodes {
					j.start = now
					active = append(active, runningJob{end: now + j.Runtime, nodes: j.Nodes})
					free -= j.Nodes
					pending = append(pending[:i], pending[i+1:]...)
					i--
				}
			}
		}
		// Advance time to the next event: a completion, or a later
		// submission (which may open a backfill opportunity).
		adv := nextEnd()
		if adv == time.Duration(math.MaxInt64) {
			return fmt.Errorf("jobsim: deadlock — head needs %d nodes, none active", head.Nodes)
		}
		for _, j := range pending[1:] {
			if j.Submit > now && j.Submit < adv {
				adv = j.Submit
			}
		}
		now = adv
	}
	return nil
}

// runningJob tracks one executing job's completion time and node count.
type runningJob struct {
	end   time.Duration
	nodes int
}

// reservationTime computes when `need` nodes will be available given the
// active jobs (by simulated completion) and `free` nodes available now.
func reservationTime(active []runningJob, free, need int, now time.Duration) (time.Duration, bool) {
	if free >= need {
		return now, true
	}
	ends := append([]runningJob(nil), active...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].end < ends[j].end })
	avail := free
	for _, e := range ends {
		avail += e.nodes
		if avail >= need {
			return e.end, true
		}
	}
	return 0, false
}

// WorkloadConfig describes the synthetic job mix for Figure 1.
type WorkloadConfig struct {
	Jobs         int
	ClusterNodes int
	Seed         int64
	// MeanInterarrival is the mean time between submissions.
	MeanInterarrival time.Duration
	// MeanRuntime is the mean job runtime.
	MeanRuntime time.Duration
}

// SyntheticWorkload generates a job mix resembling a small university
// cluster: mostly small jobs (1-8 nodes), some medium (16-32), few large
// (64+), exponential interarrival and runtime distributions.
func SyntheticWorkload(cfg WorkloadConfig) []*Job {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 4 * time.Minute
	}
	if cfg.MeanRuntime == 0 {
		cfg.MeanRuntime = 45 * time.Minute
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 96, 128}
	weights := []float64{0.22, 0.2, 0.18, 0.14, 0.10, 0.08, 0.05, 0.02, 0.01}
	pick := func() int {
		x := rng.Float64()
		acc := 0.0
		for i, w := range weights {
			acc += w
			if x < acc {
				return sizes[i]
			}
		}
		return sizes[len(sizes)-1]
	}
	var jobs []*Job
	at := time.Duration(0)
	for i := 0; i < cfg.Jobs; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		n := pick()
		if n > cfg.ClusterNodes {
			n = cfg.ClusterNodes
		}
		run := time.Duration(rng.ExpFloat64() * float64(cfg.MeanRuntime))
		if run < time.Minute {
			run = time.Minute
		}
		est := time.Duration(float64(run) * (1.1 + rng.Float64()))
		jobs = append(jobs, &Job{ID: i, Submit: at, Nodes: n, Runtime: run, Estimate: est})
	}
	return jobs
}

// WaitByBucket aggregates mean wait time per requested-node bucket — the
// series of Figure 1.
func WaitByBucket(jobs []*Job, buckets []int) map[int]time.Duration {
	sum := make(map[int]time.Duration)
	cnt := make(map[int]int)
	bucketOf := func(n int) int {
		best := buckets[len(buckets)-1]
		for _, b := range buckets {
			if n <= b {
				best = b
				break
			}
		}
		return best
	}
	for _, j := range jobs {
		b := bucketOf(j.Nodes)
		sum[b] += j.Wait()
		cnt[b]++
	}
	out := make(map[int]time.Duration)
	for b, s := range sum {
		out[b] = s / time.Duration(cnt[b])
	}
	return out
}

package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mrts/internal/core"
)

func nodeSet(n int) []core.NodeID {
	ids := make([]core.NodeID, n)
	for i := range ids {
		ids[i] = core.NodeID(i)
	}
	return ids
}

// Placement must be within ±15% of uniform across 8 nodes.
func TestDirectoryUniformSpread(t *testing.T) {
	const nodes, keys = 8, 20000
	d := NewDirectory(nodeSet(nodes), 0)
	counts := make(map[core.NodeID]int)
	for i := 0; i < keys; i++ {
		owner, _ := d.Owner(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	mean := float64(keys) / float64(nodes)
	for n := core.NodeID(0); n < nodes; n++ {
		dev := (float64(counts[n]) - mean) / mean
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("node %d owns %d keys (%.1f%% from uniform %g)", n, counts[n], dev*100, mean)
		}
	}
}

// Consistent hashing's point: a membership change moves only the departing
// or arriving node's arcs — about 1/N of the keys, bounded here at 2/N.
func TestDirectoryMinimalMovement(t *testing.T) {
	const nodes, keys = 8, 20000
	limit := keys * 2 / nodes

	d := NewDirectory(nodeSet(nodes), 0)
	before := make([]core.NodeID, keys)
	for i := range before {
		before[i], _ = d.Owner(fmt.Sprintf("key-%d", i))
	}

	d.Remove(3)
	movedByLeave := 0
	for i := range before {
		now, _ := d.Owner(fmt.Sprintf("key-%d", i))
		if now != before[i] {
			movedByLeave++
			if before[i] != 3 {
				t.Fatalf("key-%d moved %d->%d though node 3 left", i, before[i], now)
			}
		}
	}
	if movedByLeave > limit {
		t.Errorf("leave moved %d keys, want <= %d", movedByLeave, limit)
	}

	d.Add(3)
	movedByJoin := 0
	for i := range before {
		now, _ := d.Owner(fmt.Sprintf("key-%d", i))
		if now != before[i] {
			t.Fatalf("key-%d at %d, want original owner %d after symmetric rejoin", i, now, before[i])
		}
		if now == 3 {
			movedByJoin++ // keys that came back to the rejoined node
		}
	}
	if movedByJoin > limit {
		t.Errorf("join moved %d keys, want <= %d", movedByJoin, limit)
	}
	if movedByJoin == 0 {
		t.Error("rejoined node owns no keys")
	}
}

// The same membership always yields the same ring — the property that lets
// every process compute placement without communication.
func TestDirectoryDeterministic(t *testing.T) {
	a := NewDirectory(nodeSet(5), 64)
	b := NewDirectory([]core.NodeID{4, 2, 0, 3, 1}, 64) // same set, any order
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("obj-%d", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner %d vs %d", key, oa, ob)
		}
	}
}

// OwnerAt against a superseded ring must fail typed, and retrying against
// the fresh epoch must succeed — exercised concurrently under -race.
func TestDirectoryStaleEpochRetry(t *testing.T) {
	d := NewDirectory(nodeSet(4), 32)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-%d", w, i)
				owner, epoch := d.Owner(key)
				if owner < 0 {
					t.Error("empty ring during churn")
					return
				}
				if _, err := d.OwnerAt(key, epoch); err != nil {
					if !errors.Is(err, ErrStaleEpoch) {
						t.Errorf("OwnerAt error = %v, want ErrStaleEpoch", err)
						return
					}
					// Retry against the current ring: must resolve.
					retry, e2 := d.Owner(key)
					if retry < 0 || e2 < epoch {
						t.Errorf("retry after stale epoch: owner %d epoch %d->%d", retry, epoch, e2)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		d.Remove(core.NodeID(i % 3)) // node 3 always stays: ring never empties
		if bad := d.CheckInvariants(); len(bad) > 0 {
			t.Errorf("invariants after remove: %v", bad)
		}
		d.Add(core.NodeID(i % 3))
	}
	close(stop)
	wg.Wait()

	if bad := d.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants: %v", bad)
	}
	if got := d.Size(); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
}

func TestDirectoryEdgeCases(t *testing.T) {
	d := NewDirectory(nil, 8)
	if owner, _ := d.Owner("x"); owner != -1 {
		t.Fatalf("empty ring owner = %d, want -1", owner)
	}
	e1 := d.Epoch()
	if e := d.Add(7); e <= e1 {
		t.Fatalf("add epoch %d, want > %d", e, e1)
	}
	if e := d.Add(7); e != d.Epoch() {
		t.Fatal("re-adding a member must not bump the epoch")
	}
	if owner, _ := d.Owner("x"); owner != 7 {
		t.Fatalf("single-node ring owner = %d, want 7", owner)
	}
	if !d.Contains(7) || d.Contains(3) {
		t.Fatal("Contains is wrong")
	}
	if _, err := d.OwnerAt("x", d.Epoch()+1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("future epoch = %v, want ErrStaleEpoch", err)
	}
}

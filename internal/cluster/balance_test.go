package cluster

import (
	"testing"

	"mrts/internal/core"
)

func newBalanceCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:     nodes,
		MemBudget: 1 << 20,
		Factory:   ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBalanceEvensOutCounts(t *testing.T) {
	c := newBalanceCluster(t, 4)
	// All 40 objects start on node 0.
	for i := 0; i < 40; i++ {
		c.RT(0).CreateObject(&ballastObj{Data: make([]byte, 64)})
	}
	moved := c.Balance(nil)
	if moved == 0 {
		t.Fatal("expected migrations")
	}
	counts := c.ObjectCounts()
	for i, n := range counts {
		if n < 8 || n > 12 {
			t.Errorf("node %d has %d objects after balancing: %v", i, n, counts)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 40 {
		t.Fatalf("objects lost or duplicated: %v", counts)
	}
}

func TestBalanceWeighted(t *testing.T) {
	c := newBalanceCluster(t, 2)
	// Node 0: one heavy object (weight 10) + ten light ones; node 1: none.
	heavy := c.RT(0).CreateObject(&ballastObj{N: 100, Data: make([]byte, 64)})
	for i := 0; i < 10; i++ {
		c.RT(0).CreateObject(&ballastObj{N: 1, Data: make([]byte, 64)})
	}
	weights := map[core.MobilePtr]int64{heavy: 10}
	moved := c.Balance(func(p core.MobilePtr, rt *core.Runtime) int64 {
		if w, ok := weights[p]; ok {
			return w
		}
		return 1
	})
	if moved == 0 {
		t.Fatal("expected migrations")
	}
	// Total weight 20; each node should hold about 10. Whichever side the
	// heavy object landed on, the split must be near even.
	var w0 int64
	for _, p := range c.RT(0).LocalObjects() {
		if p == heavy {
			w0 += 10
		} else {
			w0++
		}
	}
	if w0 < 7 || w0 > 13 {
		t.Errorf("node 0 weight after balance = %d, want ≈10", w0)
	}
}

func TestBalanceObjectsStillWork(t *testing.T) {
	c := newBalanceCluster(t, 3)
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 12; i++ {
		ptrs = append(ptrs, c.RT(0).CreateObject(&ballastObj{}))
	}
	c.Balance(nil)
	// Post to every object from every node; the directory must chase the
	// migrated objects.
	for _, rt := range c.Runtimes() {
		for _, p := range ptrs {
			rt.Post(p, 1, nil)
		}
	}
	c.Wait()
	got := make(chan int64, 1)
	for _, rt := range c.Runtimes() {
		rt.Register(2, func(ctx *core.Ctx, arg []byte) {
			got <- ctx.Object().(*ballastObj).N
		})
	}
	for _, p := range ptrs {
		c.RT(0).Post(p, 2, nil)
		if v := <-got; v != 3 {
			t.Fatalf("object %v count = %d, want 3", p, v)
		}
	}
}

func TestBalanceAlreadyEven(t *testing.T) {
	c := newBalanceCluster(t, 2)
	for i := 0; i < 4; i++ {
		c.RT(i % 2).CreateObject(&ballastObj{})
	}
	if moved := c.Balance(nil); moved != 0 {
		t.Errorf("balanced cluster moved %d objects", moved)
	}
}

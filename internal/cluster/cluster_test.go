package cluster

import (
	"encoding/binary"
	"io"
	"testing"
	"time"

	"mrts/internal/clock"
	"mrts/internal/core"
	"mrts/internal/ooc"
	"mrts/internal/storage"
)

// ballastObj is a trivially serializable mobile object for cluster tests.
type ballastObj struct {
	N    int64
	Data []byte
}

func (o *ballastObj) TypeID() uint16 { return 7 }

func (o *ballastObj) EncodeTo(w io.Writer) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(o.N))
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(o.Data)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := w.Write(o.Data)
	return err
}

func (o *ballastObj) DecodeFrom(r io.Reader) error {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	o.N = int64(binary.LittleEndian.Uint64(b[0:8]))
	o.Data = make([]byte, binary.LittleEndian.Uint32(b[8:12]))
	_, err := io.ReadFull(r, o.Data)
	return err
}

func (o *ballastObj) SizeHint() int { return 12 + len(o.Data) }

func ballastFactory(t uint16) (core.Object, error) {
	if t == 7 {
		return &ballastObj{}, nil
	}
	return nil, core.ErrUnknownType
}

func TestClusterBasic(t *testing.T) {
	c, err := New(Config{
		Nodes:          4,
		WorkersPerNode: 2,
		MemBudget:      1 << 20,
		Factory:        ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Nodes() != 4 || c.PEs() != 8 {
		t.Fatalf("Nodes=%d PEs=%d", c.Nodes(), c.PEs())
	}
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 4; i++ {
		ptrs = append(ptrs, c.RT(i).CreateObject(&ballastObj{}))
	}
	for _, rt := range c.Runtimes() {
		for _, p := range ptrs {
			rt.Post(p, 1, nil)
		}
	}
	c.Wait()
	r := c.Report()
	if r.Total <= 0 {
		t.Error("report should have wall time")
	}
}

func TestClusterOOCWithFileSpool(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		Nodes:     2,
		MemBudget: 3000,
		SpoolDir:  dir,
		Policy:    ooc.LFU,
		Factory:   ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, c.RT(i%2).CreateObject(&ballastObj{Data: make([]byte, 1000)}))
	}
	for round := 0; round < 4; round++ {
		for _, p := range ptrs {
			c.RT(0).Post(p, 1, nil)
		}
		c.Wait()
	}
	if s := c.MemStats(); s.Evictions == 0 {
		t.Error("expected evictions with tiny budget and file spool")
	}
}

func TestClusterGlobalQueueScheduler(t *testing.T) {
	c, err := New(Config{
		Nodes:     1,
		Scheduler: GlobalQueue,
		MemBudget: 1 << 20,
		Factory:   ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	c.RT(0).Register(1, func(ctx *core.Ctx, arg []byte) { close(done) })
	p := c.RT(0).CreateObject(&ballastObj{})
	c.RT(0).Post(p, 1, nil)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran on globalqueue scheduler")
	}
	c.Wait()
}

func TestClusterRejectsZeroNodes(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimulateJobsFCFSOrdering(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Submit: 0, Nodes: 4, Runtime: 10 * time.Minute},
		{ID: 1, Submit: time.Minute, Nodes: 4, Runtime: 10 * time.Minute},
	}
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 4}, jobs); err != nil {
		t.Fatal(err)
	}
	if jobs[0].Wait() != 0 {
		t.Errorf("job 0 wait = %v", jobs[0].Wait())
	}
	// Job 1 must wait for job 0 to finish: starts at 10min, waited 9min.
	if jobs[1].Start() != 10*time.Minute {
		t.Errorf("job 1 start = %v", jobs[1].Start())
	}
	if jobs[1].Wait() != 9*time.Minute {
		t.Errorf("job 1 wait = %v", jobs[1].Wait())
	}
}

func TestSimulateJobsBackfill(t *testing.T) {
	// Big job blocks the head; a small short job can backfill.
	mk := func() []*Job {
		return []*Job{
			{ID: 0, Submit: 0, Nodes: 8, Runtime: 60 * time.Minute},
			{ID: 1, Submit: time.Minute, Nodes: 8, Runtime: 30 * time.Minute}, // head waits
			{ID: 2, Submit: 2 * time.Minute, Nodes: 2, Runtime: 5 * time.Minute, Estimate: 5 * time.Minute},
		}
	}
	noBF := mk()
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 10}, noBF); err != nil {
		t.Fatal(err)
	}
	withBF := mk()
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 10, Backfill: true}, withBF); err != nil {
		t.Fatal(err)
	}
	// Job 2 fits in the 2 idle nodes; without backfill it waits behind the
	// head, with backfill it starts immediately.
	if withBF[2].Wait() != 0 {
		t.Errorf("backfilled job wait = %v, want 0", withBF[2].Wait())
	}
	if noBF[2].Wait() == 0 {
		t.Error("without backfill the small job should wait")
	}
	// Backfill must not delay the head job.
	if withBF[1].Start() > noBF[1].Start() {
		t.Errorf("backfill delayed the head: %v > %v", withBF[1].Start(), noBF[1].Start())
	}
}

func TestSimulateJobsValidation(t *testing.T) {
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 0}, nil); err == nil {
		t.Error("zero-node cluster should fail")
	}
	jobs := []*Job{{ID: 0, Nodes: 99, Runtime: time.Minute}}
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 8}, jobs); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestSyntheticWorkloadShape(t *testing.T) {
	jobs := SyntheticWorkload(WorkloadConfig{Jobs: 2000, ClusterNodes: 128, Seed: 1})
	if len(jobs) != 2000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.Nodes]++
		if j.Runtime < time.Minute {
			t.Fatal("runtime below floor")
		}
		if j.Estimate < j.Runtime {
			t.Fatal("estimate below runtime")
		}
	}
	if counts[1] < counts[32] {
		t.Error("small jobs should dominate the mix")
	}
	// Submissions must be increasing.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("submissions not monotone")
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	// The headline property of Figure 1: mean wait grows with requested
	// node count on a busy shared cluster.
	jobs := SyntheticWorkload(WorkloadConfig{
		Jobs:             3000,
		ClusterNodes:     128,
		Seed:             42,
		MeanInterarrival: 15 * time.Minute,
		MeanRuntime:      80 * time.Minute,
	})
	if err := SimulateJobs(JobSimConfig{ClusterNodes: 128, Backfill: true}, jobs); err != nil {
		t.Fatal(err)
	}
	buckets := []int{8, 16, 32, 128}
	wait := WaitByBucket(jobs, buckets)
	t.Logf("wait by bucket: <=8:%v <=16:%v <=32:%v <=128:%v",
		wait[8], wait[16], wait[32], wait[128])
	if !(wait[8] < wait[32]) {
		t.Errorf("small jobs should wait less than 32-node jobs: %v vs %v", wait[8], wait[32])
	}
	if !(wait[32] < wait[128]) {
		t.Errorf("32-node jobs should wait less than 128-node jobs: %v vs %v", wait[32], wait[128])
	}
}

func TestWaitByBucketAssignment(t *testing.T) {
	jobs := []*Job{
		{Nodes: 2, Submit: 0, start: 10 * time.Minute},
		{Nodes: 20, Submit: 0, start: 30 * time.Minute},
	}
	w := WaitByBucket(jobs, []int{8, 32})
	if w[8] != 10*time.Minute {
		t.Errorf("bucket 8 wait = %v", w[8])
	}
	if w[32] != 30*time.Minute {
		t.Errorf("bucket 32 wait = %v", w[32])
	}
}

func TestClusterRemoteMemory(t *testing.T) {
	// The "remote memory as out-of-core media" configuration: evicted
	// objects travel to a dedicated memory-server node instead of disk.
	c, err := New(Config{
		Nodes:        2,
		MemBudget:    3000,
		RemoteMemory: true,
		Factory:      ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.MemoryServer() == nil {
		t.Fatal("memory server missing")
	}
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, c.RT(i%2).CreateObject(&ballastObj{Data: make([]byte, 1000)}))
	}
	for round := 0; round < 4; round++ {
		for _, p := range ptrs {
			c.RT(0).Post(p, 1, nil)
		}
		c.Wait()
	}
	if s := c.MemStats(); s.Evictions == 0 {
		t.Error("expected evictions under the tiny budget")
	}
	// Evicted blobs must have reached the remote server.
	if st := c.MemoryServer().Stats(); st.Puts == 0 {
		t.Errorf("memory server saw no puts: %+v", st)
	}
	// State integrity across remote swapping.
	got := make(chan int64, 1)
	for _, rt := range c.Runtimes() {
		rt.Register(2, func(ctx *core.Ctx, arg []byte) {
			got <- ctx.Object().(*ballastObj).N
		})
	}
	for _, p := range ptrs {
		c.RT(int(p.Home)).Post(p, 2, nil)
		if v := <-got; v != 4 {
			t.Fatalf("object %v count = %d, want 4", p, v)
		}
	}
}

func TestClusterTiered(t *testing.T) {
	// Remote memory composed WITH disk: a small tier-0 lease forces part of
	// the working set onto the disk backstop, with spills instead of errors.
	dir := t.TempDir()
	c, err := New(Config{
		Nodes:        2,
		MemBudget:    3000,
		RemoteMemory: true,
		Tier:         &TierSpec{Capacity: 2500},
		SpoolDir:     dir,
		Factory:      ballastFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.MemoryServer() == nil {
		t.Fatal("memory server missing")
	}
	if len(c.Tiers()) != 2 {
		t.Fatalf("want one tiered store per node, got %d", len(c.Tiers()))
	}
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, c.RT(i%2).CreateObject(&ballastObj{Data: make([]byte, 1000)}))
	}
	for round := 0; round < 4; round++ {
		for _, p := range ptrs {
			c.RT(0).Post(p, 1, nil)
		}
		c.Wait()
	}
	if s := c.MemStats(); s.Evictions == 0 {
		t.Error("expected evictions under the tiny budget")
	}
	if s := c.SwapStats(); s.ObjectsLost != 0 {
		t.Errorf("objects lost: %+v", s)
	}
	ts := c.TierStats()
	if ts.FastPuts == 0 {
		t.Errorf("no writes admitted to tier 0: %+v", ts)
	}
	if ts.Spills == 0 {
		t.Errorf("no spills despite the working set exceeding the lease: %+v", ts)
	}
	// The server-side lease (sum of node leases) must hold.
	if st := c.MemoryServer().Stats(); st.Capacity != 2*2500 || st.BytesResident > st.Capacity {
		t.Errorf("server lease: %+v", st)
	}
	// State integrity across tiered swapping.
	got := make(chan int64, 1)
	for _, rt := range c.Runtimes() {
		rt.Register(2, func(ctx *core.Ctx, arg []byte) {
			got <- ctx.Object().(*ballastObj).N
		})
	}
	for _, p := range ptrs {
		c.RT(int(p.Home)).Post(p, 2, nil)
		if v := <-got; v != 4 {
			t.Fatalf("object %v count = %d, want 4", p, v)
		}
	}
	c.Wait()
	for i, s := range c.Tiers() {
		s.WaitIdle()
		if msgs := s.CheckInvariants(true); len(msgs) > 0 {
			t.Errorf("node %d tier invariants: %v", i, msgs)
		}
	}
}

func TestClusterTieredChargesDiskTime(t *testing.T) {
	// Regression: cluster.New used to drop the disk service-time model
	// whenever RemoteMemory was set. With tiering the disk tier keeps its
	// LatencyClock wrapper, so a run that overflows tier 0 charges disk
	// time.
	vclk := clock.NewVirtual()
	c, err := New(Config{
		Nodes:        2,
		MemBudget:    3000,
		RemoteMemory: true,
		Tier:         &TierSpec{Capacity: 2000},
		Disk:         storage.DiskModel{Seek: 2 * time.Millisecond, BytesPerSec: 10 << 20},
		Factory:      ballastFactory,
		Clock:        vclk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rt := range c.Runtimes() {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
	var ptrs []core.MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, c.RT(i%2).CreateObject(&ballastObj{Data: make([]byte, 1000)}))
	}
	for round := 0; round < 4; round++ {
		for _, p := range ptrs {
			c.RT(0).Post(p, 1, nil)
		}
		c.Wait()
	}
	if ts := c.TierStats(); ts.Spills == 0 && ts.Demotions == 0 {
		t.Fatalf("working set never reached the disk tier: %+v", ts)
	}
	if r := c.Report(); r.Disk <= 0 {
		t.Errorf("tiered run charged no disk time: %+v", r)
	}
}

package cluster

import (
	"testing"

	"mrts/internal/core"
)

func registerInc(rts []*core.Runtime) {
	for _, rt := range rts {
		rt.Register(1, func(ctx *core.Ctx, arg []byte) {
			ctx.Object().(*ballastObj).N++
		})
	}
}

func postAll(c *Cluster, ptrs []core.MobilePtr) {
	for i, p := range ptrs {
		c.RT(i%c.Nodes()).Post(p, 1, nil)
	}
	c.Wait()
}

func readCounts(t *testing.T, c *Cluster, ptrs []core.MobilePtr) map[core.MobilePtr]int64 {
	t.Helper()
	got := make(map[core.MobilePtr]int64)
	for _, p := range ptrs {
		for _, rt := range c.Runtimes() {
			rt := rt
			if !rt.IsLocal(p) {
				continue
			}
			var v int64
			done := make(chan struct{})
			rt.Register(2, func(ctx *core.Ctx, arg []byte) {
				v = ctx.Object().(*ballastObj).N
				close(done)
			})
			rt.Post(p, 2, nil)
			<-done
			got[p] = v
			break
		}
	}
	return got
}

// Graceful leave drains every object off the node to its ring owners;
// rejoin pulls back exactly the keys the ring assigns it. No object is
// lost, every post lands, and the directory invariants hold throughout.
func TestLeaveJoinRebalance(t *testing.T) {
	c := newBalanceCluster(t, 4)
	registerInc(c.Runtimes())

	var ptrs []core.MobilePtr
	for i := 0; i < 32; i++ {
		ptrs = append(ptrs, c.RT(i%4).CreateObject(&ballastObj{Data: make([]byte, 64)}))
	}
	postAll(c, ptrs)

	moved, err := c.LeaveNode(2)
	if err != nil {
		t.Fatalf("LeaveNode: %v", err)
	}
	if moved != 8 {
		t.Errorf("drained %d objects off node 2, want its 8", moved)
	}
	if n := c.RT(2).NumLocalObjects(); n != 0 {
		t.Fatalf("node 2 still hosts %d objects after drain", n)
	}
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("after leave: %v", bad)
	}
	if c.ActiveNodes() != 3 || c.Directory().Size() != 3 {
		t.Fatalf("active=%d ring=%d, want 3/3", c.ActiveNodes(), c.Directory().Size())
	}

	// Posting keeps working while the node is out: messages to its old
	// objects follow the migration's directory updates.
	postAll(c, ptrs)

	back, err := c.JoinNode(2)
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if back == 0 {
		t.Error("rejoined node owns no objects")
	}
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("after join: %v", bad)
	}
	postAll(c, ptrs)

	total := 0
	for _, n := range c.ObjectCounts() {
		total += n
	}
	if total != 32 {
		t.Fatalf("object count %d after churn, want 32", total)
	}
	for p, n := range readCounts(t, c, ptrs) {
		if n != 3 {
			t.Errorf("object %v counted %d increments, want 3", p, n)
		}
	}
	if c.Rebalanced() != int64(moved)+int64(back) {
		t.Errorf("Rebalanced() = %d, want %d", c.Rebalanced(), moved+back)
	}
}

// Crash + restart: the node's state survives through the checkpoint, its
// slot gets a fresh runtime, and computation resumes with nothing lost.
func TestCrashRestartNode(t *testing.T) {
	c := newBalanceCluster(t, 3)
	registerInc(c.Runtimes())

	var ptrs []core.MobilePtr
	for i := 0; i < 12; i++ {
		ptrs = append(ptrs, c.RT(i%3).CreateObject(&ballastObj{Data: make([]byte, 64)}))
	}
	postAll(c, ptrs)

	if err := c.CrashNode(1); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("during outage: %v", bad)
	}
	if !c.Directory().Contains(1) {
		t.Fatal("crashed node must keep its ring membership")
	}

	rt, err := c.RestartNode(1)
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if rt != c.RT(1) {
		t.Fatal("restarted runtime not installed in its slot")
	}
	registerInc([]*core.Runtime{rt}) // a fresh process re-registers handlers
	if bad := c.DirectoryInvariants(); len(bad) > 0 {
		t.Fatalf("after restart: %v", bad)
	}
	if n := rt.NumLocalObjects(); n != 4 {
		t.Fatalf("restored node hosts %d objects, want 4", n)
	}

	postAll(c, ptrs)
	for p, n := range readCounts(t, c, ptrs) {
		if n != 2 {
			t.Errorf("object %v counted %d increments, want 2", p, n)
		}
	}

	// A second crash of the same node must also work (fresh slot state).
	if err := c.CrashNode(1); err != nil {
		t.Fatalf("second CrashNode: %v", err)
	}
	if _, err := c.RestartNode(1); err != nil {
		t.Fatalf("second RestartNode: %v", err)
	}
}

func TestChurnValidation(t *testing.T) {
	c := newBalanceCluster(t, 2)
	if _, err := c.LeaveNode(5); err == nil {
		t.Error("LeaveNode out of range must fail")
	}
	if _, err := c.JoinNode(0); err == nil {
		t.Error("JoinNode of an active node must fail")
	}
	if _, err := c.RestartNode(0); err == nil {
		t.Error("RestartNode without a crash must fail")
	}
	if _, err := c.LeaveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LeaveNode(0); err == nil {
		t.Error("draining the last ring member must fail")
	}
	if err := c.CrashNode(1); err == nil {
		t.Error("crashing a drained node must fail")
	}
	if _, err := c.JoinNode(1); err != nil {
		t.Fatal(err)
	}
}

// Placement-aware routing: a core.Locator backed by the epoch-versioned
// consistent-hash Directory. Where the paper's home-anchored policies route a
// first message via the object's birth node and repair staleness with
// forwarding chains, the placed locator resolves the first hop straight off
// the placement ring every node computes identically — a settled object costs
// exactly one hop no matter where it was created, and a membership change
// invalidates cached resolutions through the ring epoch instead of through
// chains of stale forwards.
package cluster

import (
	"fmt"
	"sync"

	"mrts/internal/core"
)

// RoutingKind selects the locator wired into every node of a cluster.
type RoutingKind string

// Available routing kinds. The first three are the paper's home-anchored
// directory policies (see core.DirectoryPolicy); "placed" is the
// directory-backed locator.
const (
	RouteLazy   RoutingKind = "lazy" // default: forwarding chains + lazy repair
	RouteEager  RoutingKind = "eager"
	RouteHome   RoutingKind = "home"
	RoutePlaced RoutingKind = "placed"
)

// ParseRouting maps a flag string onto a RoutingKind ("" means RouteLazy).
func ParseRouting(s string) (RoutingKind, error) {
	switch RoutingKind(s) {
	case "", RouteLazy:
		return RouteLazy, nil
	case RouteEager:
		return RouteEager, nil
	case RouteHome:
		return RouteHome, nil
	case RoutePlaced:
		return RoutePlaced, nil
	}
	return "", fmt.Errorf("cluster: unknown routing kind %q (want lazy, eager, home or placed)", s)
}

// placedResolution is one cached ring lookup: the placement key (so the hot
// path never re-formats it), the owner it resolved to, and the epoch the
// answer is valid for. Directory.OwnerAt validates it on every use and fails
// with ErrStaleEpoch once the ring moves on.
type placedResolution struct {
	key   string
	node  core.NodeID
	epoch uint64
}

// PlacedLocator implements core.Locator over the cluster's shared Directory.
//
// Two tables cooperate. The resolution cache memoizes ring lookups and is
// validated against the live epoch on every Locate, so churn invalidates it
// wholesale without any per-entry bookkeeping. The override table records
// observed locations that differ from ring placement — an object an
// application migrated off its ring owner — learned from migration notices
// and delivery feedback; overrides survive epoch bumps (they describe where
// the object actually is, not where the ring says it should be) and are
// dropped when the object installs locally or feedback supersedes them.
//
// The locator holds only its own lock and the directory's read lock; it never
// touches runtime state, so the runtime may call it under rt.mu.
type PlacedLocator struct {
	dir  *Directory
	self core.NodeID
	key  func(core.MobilePtr) string

	mu       sync.RWMutex
	override map[core.MobilePtr]core.NodeID
	resolved map[core.MobilePtr]placedResolution
}

// NewPlacedLocator builds the placement-aware locator for one node over the
// cluster's shared ring. Every node wraps the same *Directory, so churn
// (Add/Remove) is coherent across the cluster by construction. Placement
// keys come from PtrKey — correct whenever objects were settled by
// Directory.OwnerOf (SettleAtOwners, the churn drain rule).
func NewPlacedLocator(dir *Directory, self core.NodeID) *PlacedLocator {
	return NewPlacedLocatorKeyed(dir, self, PtrKey)
}

// NewPlacedLocatorKeyed is NewPlacedLocator with an application-supplied
// placement-key function. An application that placed its objects by its own
// keys (meshgen hashes "block-i-j", not the minted pointer) must resolve
// first hops through those same keys, or the ring answers a different
// question than the one placement asked. key must be pure: same pointer,
// same key, on every node of the run.
func NewPlacedLocatorKeyed(dir *Directory, self core.NodeID, key func(core.MobilePtr) string) *PlacedLocator {
	return &PlacedLocator{
		dir:      dir,
		self:     self,
		key:      key,
		override: make(map[core.MobilePtr]core.NodeID),
		resolved: make(map[core.MobilePtr]placedResolution),
	}
}

// Locate implements core.Locator: an observed off-ring location wins,
// otherwise the ring owner at the current epoch. Cached resolutions are
// revalidated with OwnerAt so a stale epoch re-resolves instead of routing to
// a node that may have left the ring.
func (l *PlacedLocator) Locate(ptr core.MobilePtr) (core.NodeID, uint64) {
	l.mu.RLock()
	ov, hasOv := l.override[ptr]
	res, hasRes := l.resolved[ptr]
	l.mu.RUnlock()
	if hasOv {
		return ov, l.dir.Epoch()
	}
	if hasRes {
		if _, err := l.dir.OwnerAt(res.key, res.epoch); err == nil {
			return res.node, res.epoch
		}
		// ErrStaleEpoch: the ring moved on under us; fall through and
		// re-resolve at the current epoch.
	}
	key := res.key
	if !hasRes {
		key = l.key(ptr)
	}
	node, epoch := l.dir.Owner(key)
	if node < 0 {
		// Empty ring (all members gone): fall back to the home anchor so the
		// message still has a deterministic first hop.
		return ptr.Home, epoch
	}
	l.mu.Lock()
	l.resolved[ptr] = placedResolution{key: key, node: node, epoch: epoch}
	l.mu.Unlock()
	return node, epoch
}

// Epoch implements core.Locator: the ring epoch versions every resolution.
func (l *PlacedLocator) Epoch() uint64 { return l.dir.Epoch() }

// Note implements core.Locator: record an observed location as an override
// when it differs from ring placement, with a read-locked fast path for the
// already-known case (Note runs on the forward path).
func (l *PlacedLocator) Note(ptr core.MobilePtr, at core.NodeID) {
	l.mu.RLock()
	cur, ok := l.override[ptr]
	l.mu.RUnlock()
	if ok && cur == at {
		return
	}
	if !ok {
		// Skip the override when the observation just confirms ring
		// placement — the resolution cache already answers that.
		if owner, _ := l.dir.Owner(l.key(ptr)); owner == at {
			return
		}
	}
	l.mu.Lock()
	l.override[ptr] = at
	l.mu.Unlock()
}

// Forget implements core.Locator, called when the object installs locally.
func (l *PlacedLocator) Forget(ptr core.MobilePtr) {
	l.mu.Lock()
	delete(l.override, ptr)
	delete(l.resolved, ptr)
	l.mu.Unlock()
}

// FeedbackTargets implements core.Locator: repair every hop of a forwarding
// chain, exactly like the lazy policy — chains only form here when an object
// sits off its ring placement, and the repair installs the override that
// collapses the next send back to one hop.
func (l *PlacedLocator) FeedbackTargets(route []core.NodeID) []core.NodeID {
	if len(route) < 2 {
		return nil
	}
	out := make([]core.NodeID, 0, len(route)-1)
	for _, via := range route[:len(route)-1] {
		if via != l.self {
			out = append(out, via)
		}
	}
	return out
}

// MigrateTargets implements core.Locator: when a migration takes the object
// off its ring placement, its ring owner must know — every other node's first
// hop lands there, and without the override the owner would park those
// messages forever (it has no local install coming).
func (l *PlacedLocator) MigrateTargets(ptr core.MobilePtr, dest core.NodeID) []core.NodeID {
	owner, _ := l.dir.Owner(l.key(ptr))
	if owner >= 0 && owner != l.self && owner != dest {
		return []core.NodeID{owner}
	}
	return nil
}

// Cached implements core.Locator: only the overrides are worth
// checkpointing — ring resolutions are recomputed from membership.
func (l *PlacedLocator) Cached() map[core.MobilePtr]core.NodeID {
	l.mu.RLock()
	out := make(map[core.MobilePtr]core.NodeID, len(l.override))
	for p, n := range l.override {
		out[p] = n
	}
	l.mu.RUnlock()
	return out
}

// String implements core.Locator.
func (l *PlacedLocator) String() string { return string(RoutePlaced) }

package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCategoryString(t *testing.T) {
	if Comp.String() != "comp" || Comm.String() != "comm" || Disk.String() != "disk" {
		t.Error("category names wrong")
	}
	if !strings.Contains(Category(9).String(), "9") {
		t.Error("unknown category should print its number")
	}
}

func TestAddAndReport(t *testing.T) {
	c := NewCollector()
	c.Add(Comp, 100*time.Millisecond)
	c.Add(Comm, 50*time.Millisecond)
	c.Add(Disk, 25*time.Millisecond)
	c.Add(Comp, -time.Second) // negative durations ignored
	r := c.Report()
	if r.Comp != 100*time.Millisecond || r.Comm != 50*time.Millisecond || r.Disk != 25*time.Millisecond {
		t.Fatalf("report %+v", r)
	}
	if r.Total <= 0 {
		t.Fatal("total should be positive")
	}
}

func TestTrackAndTimer(t *testing.T) {
	c := NewCollector()
	c.Track(Comp, func() { time.Sleep(20 * time.Millisecond) })
	stop := c.Timer(Disk)
	time.Sleep(10 * time.Millisecond)
	stop()
	r := c.Report()
	if r.Comp < 15*time.Millisecond {
		t.Errorf("Comp = %v", r.Comp)
	}
	if r.Disk < 5*time.Millisecond {
		t.Errorf("Disk = %v", r.Disk)
	}
}

func TestPercent(t *testing.T) {
	r := Report{Comp: 50, Comm: 25, Disk: 25, Total: 100}
	if got := r.Percent(Comp); got != 50 {
		t.Errorf("Percent(Comp) = %v", got)
	}
	if got := r.Percent(Comm); got != 25 {
		t.Errorf("Percent(Comm) = %v", got)
	}
	var zero Report
	if zero.Percent(Comp) != 0 {
		t.Error("zero report should be all zero")
	}
}

func TestOverlap(t *testing.T) {
	// Sum = 150, total = 100 → overlap = 50%.
	r := Report{Comp: 80, Comm: 40, Disk: 30, Total: 100}
	if got := r.Overlap(); math.Abs(got-50) > 1e-9 {
		t.Errorf("Overlap = %v, want 50", got)
	}
	// Sum < total → clamped to 0.
	r2 := Report{Comp: 30, Comm: 10, Disk: 10, Total: 100}
	if got := r2.Overlap(); got != 0 {
		t.Errorf("Overlap = %v, want 0", got)
	}
	var zero Report
	if zero.Overlap() != 0 {
		t.Error("zero total should be 0 overlap")
	}
}

func TestOverlapConcurrentActivities(t *testing.T) {
	// Two goroutines working concurrently in different categories must
	// produce positive overlap.
	c := NewCollector()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Track(Comp, func() { time.Sleep(60 * time.Millisecond) })
	}()
	go func() {
		defer wg.Done()
		c.Track(Disk, func() { time.Sleep(60 * time.Millisecond) })
	}()
	wg.Wait()
	r := c.Report()
	if r.Overlap() < 20 {
		t.Errorf("expected substantial overlap, got %.1f%% (%+v)", r.Overlap(), r)
	}
}

func TestMerge(t *testing.T) {
	a := Report{Comp: 60, Comm: 20, Disk: 10, Total: 100}
	b := Report{Comp: 40, Comm: 30, Disk: 20, Total: 100}
	m := Merge(100, a, b)
	if m.Comp != 100 || m.Comm != 50 || m.Disk != 30 {
		t.Fatalf("merge %+v", m)
	}
	if m.Total != 200 {
		t.Fatalf("merge total %v", m.Total)
	}
	if got := m.Percent(Comp); got != 50 {
		t.Errorf("merged Percent(Comp) = %v", got)
	}
}

func TestSpeed(t *testing.T) {
	if got := Speed(1000, time.Second, 4); got != 250 {
		t.Errorf("Speed = %v, want 250", got)
	}
	if got := Speed(1000, 0, 4); got != 0 {
		t.Error("zero time should be 0")
	}
	if got := Speed(1000, time.Second, 0); got != 0 {
		t.Error("zero PEs should be 0")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Comp: 50, Comm: 25, Disk: 25, Total: 100}
	s := r.String()
	for _, want := range []string{"comp", "comm", "disk", "overlap"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(Comp, time.Microsecond)
				c.Add(Comm, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	r := c.Report()
	if r.Comp != 8000*time.Microsecond || r.Comm != 8000*time.Microsecond {
		t.Fatalf("concurrent adds lost: %+v", r)
	}
}

// Package trace provides the instrumentation used by the performance
// evaluation: per-node accounting of time spent in computation,
// communication and disk I/O, and the paper's two derived metrics — Speed
// (elements per second per PE, Tables I-III) and Overlap (Tables IV-VI).
//
// Categories are accumulated from concurrent goroutines, so their sum can
// legitimately exceed the wall-clock total; that excess is exactly the
// overlap the MRTS is designed to maximize.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Category labels an activity being timed.
type Category int

// The activity categories of Tables IV-VI.
const (
	Comp Category = iota // computation (mesh refinement)
	Comm                 // communication / synchronization
	Disk                 // disk I/O (serialize + store / load + deserialize)
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Comp:
		return "comp"
	case Comm:
		return "comm"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Collector accumulates time per category for one node. The zero value is
// not usable; call NewCollector, which also starts the wall clock.
type Collector struct {
	start time.Time
	acc   [numCategories]atomic.Int64 // nanoseconds
}

// NewCollector returns a collector with the wall clock started.
func NewCollector() *Collector {
	return &Collector{start: time.Now()}
}

// Add accumulates d into category cat.
func (c *Collector) Add(cat Category, d time.Duration) {
	if d > 0 {
		c.acc[cat].Add(int64(d))
	}
}

// Track runs f and accumulates its duration into cat.
func (c *Collector) Track(cat Category, f func()) {
	t0 := time.Now()
	f()
	c.Add(cat, time.Since(t0))
}

// Timer starts timing cat and returns a stop function.
func (c *Collector) Timer(cat Category) func() {
	t0 := time.Now()
	return func() { c.Add(cat, time.Since(t0)) }
}

// Report snapshots the collector. Total is the elapsed wall-clock time since
// NewCollector.
func (c *Collector) Report() Report {
	return Report{
		Comp:  time.Duration(c.acc[Comp].Load()),
		Comm:  time.Duration(c.acc[Comm].Load()),
		Disk:  time.Duration(c.acc[Disk].Load()),
		Total: time.Since(c.start),
	}
}

// Report is the per-node (or aggregated) time breakdown.
type Report struct {
	Comp, Comm, Disk time.Duration
	Total            time.Duration
}

// Percent returns a category's share of Total in percent.
func (r Report) Percent(cat Category) float64 {
	if r.Total <= 0 {
		return 0
	}
	var d time.Duration
	switch cat {
	case Comp:
		d = r.Comp
	case Comm:
		d = r.Comm
	case Disk:
		d = r.Disk
	}
	return 100 * float64(d) / float64(r.Total)
}

// Overlap returns the paper's overlap metric in percent: how much of the
// categorized activity ran concurrently with other activity, i.e.
// (Comp+Comm+Disk−Total)/Total × 100, clamped at 0. (The paper prints the
// formula without the subtraction but reports 50-62% values, which is only
// consistent with the excess-over-serial reading; see DESIGN.md.)
func (r Report) Overlap() float64 {
	if r.Total <= 0 {
		return 0
	}
	sum := r.Comp + r.Comm + r.Disk
	if sum <= r.Total {
		return 0
	}
	return 100 * float64(sum-r.Total) / float64(r.Total)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("comp %.1f%% comm %.1f%% disk %.1f%% overlap %.1f%% (total %v)",
		r.Percent(Comp), r.Percent(Comm), r.Percent(Disk), r.Overlap(), r.Total.Round(time.Millisecond))
}

// Merge aggregates per-node reports of one parallel run. Category times are
// summed across nodes; Total is wall × nodes, so percentages remain
// comparable to a single node's.
func Merge(wall time.Duration, reports ...Report) Report {
	var out Report
	for _, r := range reports {
		out.Comp += r.Comp
		out.Comm += r.Comm
		out.Disk += r.Disk
	}
	out.Total = wall * time.Duration(len(reports))
	return out
}

// Speed computes the paper's single-PE performance metric for Tables I-III:
// Speed = S / (T × N), in elements per second per processing element.
func Speed(elements int, total time.Duration, pes int) float64 {
	if total <= 0 || pes <= 0 {
		return 0
	}
	return float64(elements) / total.Seconds() / float64(pes)
}

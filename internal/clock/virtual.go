package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// epoch is the fixed start time of every Virtual clock. A constant epoch
// makes virtual timestamps a pure function of the simulated schedule, never
// of the machine the simulation runs on.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a simulated clock in the FoundationDB style: Now() returns a
// virtual time that advances only in discrete jumps to the next registered
// deadline, and only when the simulation has quiesced — every goroutine that
// is going to act has acted, and the only thing left to do is wait. Sleeping
// on a Virtual clock therefore costs (almost) no wall time: a retry backoff
// of 50ms, a termination-probe round of 500µs, a modeled disk seek of 8ms
// all complete as soon as the system has nothing better to do.
//
// Quiescence is detected cooperatively: an internal advancer goroutine
// watches the set of pending waiters; when at least one waiter exists and no
// clock activity (new sleeps, timer registrations, firings) happens across a
// short settle window in which every runnable goroutine gets the processor,
// it jumps time to the earliest deadline and fires everything due. Work that
// never touches the clock (pure computation, channel handoffs) keeps running
// in real time underneath; the settle window only decides when the
// simulation is allowed to skip ahead. The virtual timeline — which
// deadlines exist and in which order they fire — is independent of how fast
// the host executes.
type Virtual struct {
	mu      sync.Mutex
	cond    *sync.Cond // wakes the advancer when waiters appear
	now     int64      // nanoseconds since epoch
	seq     uint64     // registration order, breaks deadline ties
	act     uint64     // bumped on every registration/firing: the quiesce signal
	waiters waiterHeap
	stopped bool
	settle  time.Duration
	done    chan struct{}
}

// waiter is one pending Sleep/After/Timer deadline.
type waiter struct {
	at    int64 // virtual deadline, nanoseconds since epoch
	seq   uint64
	ch    chan time.Time
	index int // heap index; -1 once fired or stopped
}

// NewVirtual returns a started virtual clock at the fixed epoch. Call Stop
// when done with it to release the advancer goroutine.
func NewVirtual() *Virtual {
	v := &Virtual{settle: 20 * time.Microsecond, done: make(chan struct{})}
	v.cond = sync.NewCond(&v.mu)
	go v.advance()
	return v
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return epoch.Add(time.Duration(v.now))
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock: it blocks until the virtual time has advanced by
// d. A non-positive d yields the processor, like the real clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	w := v.add(d)
	if w == nil {
		return // stopped clock: sleeps return immediately
	}
	<-w.ch
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.Now()
		return ch
	}
	if w := v.add(d); w != nil {
		return w.ch
	}
	ch <- v.Now()
	return ch
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- v.Now()
		return &Timer{C: ch, stop: func() bool { return false }}
	}
	w := v.add(d)
	if w == nil {
		ch := make(chan time.Time, 1)
		ch <- v.Now()
		return &Timer{C: ch, stop: func() bool { return false }}
	}
	return &Timer{C: w.ch, stop: func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if w.index < 0 {
			return false // already fired
		}
		heap.Remove(&v.waiters, w.index)
		v.act++
		return true
	}}
}

// add registers a waiter d from now. It returns nil when the clock is
// stopped (callers must not block then).
func (v *Virtual) add(d time.Duration) *waiter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return nil
	}
	v.seq++
	v.act++
	w := &waiter{at: v.now + int64(d), seq: v.seq, ch: make(chan time.Time, 1)}
	heap.Push(&v.waiters, w)
	v.cond.Signal()
	return w
}

// Advance moves virtual time forward by d manually and fires everything
// due — the escape hatch for tests that drive time by hand rather than
// relying on quiesce detection.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.now += int64(d)
	v.fireDueLocked()
	v.mu.Unlock()
}

// Sleepers returns the number of goroutines currently blocked on the clock.
func (v *Virtual) Sleepers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// Stop shuts the clock down: the advancer goroutine exits, every pending
// waiter is released at the current virtual time, and subsequent sleeps
// return immediately. Stop is idempotent. A stopped clock still serves Now.
func (v *Virtual) Stop() {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		<-v.done
		return
	}
	v.stopped = true
	now := epoch.Add(time.Duration(v.now))
	for v.waiters.Len() > 0 {
		w := heap.Pop(&v.waiters).(*waiter)
		w.ch <- now
	}
	v.cond.Broadcast()
	v.mu.Unlock()
	<-v.done
}

// fireDueLocked releases every waiter whose deadline has been reached.
// Caller holds v.mu.
func (v *Virtual) fireDueLocked() {
	for v.waiters.Len() > 0 && v.waiters[0].at <= v.now {
		w := heap.Pop(&v.waiters).(*waiter)
		v.act++
		w.ch <- epoch.Add(time.Duration(v.now))
	}
}

// advance is the quiesce-detecting time driver.
func (v *Virtual) advance() {
	defer close(v.done)
	for {
		v.mu.Lock()
		for v.waiters.Len() == 0 && !v.stopped {
			v.cond.Wait()
		}
		if v.stopped {
			v.mu.Unlock()
			return
		}
		before := v.act
		settle := v.settle
		v.mu.Unlock()

		// Settle window: every runnable goroutine gets the processor, so
		// anything that was about to act on the clock (register a sleep,
		// send a message that leads to one) gets its chance before time
		// jumps. This is the only real-time wait in the virtual clock, and
		// it shapes wall-clock speed, never the virtual timeline.
		for i := 0; i < 16; i++ {
			runtime.Gosched()
		}
		time.Sleep(settle)

		v.mu.Lock()
		if v.stopped {
			v.mu.Unlock()
			return
		}
		if v.act != before || v.waiters.Len() == 0 {
			// Someone acted during the window: not quiesced, re-settle.
			v.mu.Unlock()
			continue
		}
		if next := v.waiters[0].at; next > v.now {
			v.now = next
		}
		v.fireDueLocked()
		v.mu.Unlock()
	}
}

// waiterHeap orders waiters by (deadline, registration sequence).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }

func (h waiterHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}

func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

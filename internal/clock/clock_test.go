package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockSmoke(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatalf("real clock did not advance")
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatalf("After(0) never fired")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatalf("Stop on pending real timer returned false")
	}
}

func TestOrDefaultsToReal(t *testing.T) {
	if Or(nil) == nil {
		t.Fatalf("Or(nil) returned nil")
	}
	v := NewVirtual()
	defer v.Stop()
	if Or(v) != Clock(v) {
		t.Fatalf("Or did not pass through a non-nil clock")
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	t0 := v.Now()
	v.Sleep(50 * time.Millisecond) // auto-advance: no one else is runnable
	if got := v.Since(t0); got < 50*time.Millisecond {
		t.Fatalf("virtual time advanced %v, want >= 50ms", got)
	}
}

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durs := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	for i, d := range durs {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	wg.Wait()
	want := []int{1, 2, 0} // by deadline: 10ms, 20ms, 30ms
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestVirtualAfterAndTimer(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	ch := v.After(5 * time.Millisecond)
	select {
	case ts := <-ch:
		if ts.Before(epoch.Add(5 * time.Millisecond)) {
			t.Fatalf("After fired at %v, want >= epoch+5ms", ts)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("virtual After never fired")
	}

	tm := v.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatalf("Stop on pending virtual timer returned false")
	}
	if tm.Stop() {
		t.Fatalf("second Stop returned true")
	}
	// A stopped timer must not hold the clock back: this sleep would hang
	// forever if the hour-long deadline were still in the heap gating
	// auto-advance at the 1h mark ordering.
	v.Sleep(time.Millisecond)
}

// waitPending blocks until a sleeper is registered on v — or done closes,
// because the quiesce-driven advancer may legitimately fire a sleep before
// this observer ever sees it pending.
func waitPending(v *Virtual, done <-chan struct{}) {
	for v.Sleepers() == 0 {
		select {
		case <-done:
			return
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestVirtualManualAdvance(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	var fired atomic.Bool
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Hour)
		fired.Store(true)
		close(done)
	}()
	// Wait for the sleeper to register, then drive time by hand. (If the
	// advancer won the race and fired it already, Advance still moves time.)
	waitPending(v, done)
	v.Advance(2 * time.Hour)
	<-done
	if !fired.Load() {
		t.Fatalf("manual advance did not release sleeper")
	}
	if v.Since(epoch) < 2*time.Hour {
		t.Fatalf("Advance moved time by %v, want >= 2h", v.Since(epoch))
	}
}

func TestVirtualStopReleasesSleepers(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		// The advancer would fire this eventually; Stop must release it
		// immediately regardless.
		v.Sleep(time.Hour)
		close(done)
	}()
	waitPending(v, done)
	v.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Stop did not release a pending sleeper")
	}
	// Stopped clock: further sleeps are no-ops and Stop is idempotent.
	v.Sleep(time.Hour)
	v.Stop()
}

func TestVirtualManySleepersConverge(t *testing.T) {
	v := NewVirtual()
	defer v.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				v.Sleep(time.Duration(1+i%7) * time.Millisecond)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("auto-advance failed to drain 64 sleepers")
	}
}

// Package clock abstracts time for the MRTS runtime layers. Every package
// below cmd/ that sleeps, schedules timeouts, or timestamps runtime behavior
// (comm delivery delays, storage service times, retry backoff, termination
// probing, swap-wait accounting) takes an injected Clock instead of calling
// the time package directly. Production code runs on Real(), which forwards
// to the time package; the deterministic simulation harness (internal/sim)
// runs on a Virtual clock whose time advances only when every simulated
// goroutine has quiesced — so a test that "waits 50ms of backoff" completes
// in microseconds of wall time, and a whole fault schedule plays out in
// virtual time reproducibly.
//
// The injection rule (enforced by `make lint` and the CI lint job): no
// source file in internal/{core,comm,storage,swapio,sched,cluster} may call
// time.Now, time.Sleep, time.After, time.NewTimer or time.Tick — this
// package is the only place those calls are allowed to reach the runtime
// from.
package clock

import "time"

// Clock is the time source injected into the runtime layers.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	// Non-positive d yields the processor without sleeping.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed. The channel is buffered; the send never blocks the clock.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a Timer firing after d.
	NewTimer(d time.Duration) *Timer
}

// Timer is a stoppable single-fire timer, the portable subset of time.Timer
// both clock implementations can provide.
type Timer struct {
	// C receives the clock's time when the timer fires.
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer. It reports whether the timer was still pending
// (matching time.Timer.Stop semantics).
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// realClock forwards to the time package.
type realClock struct{}

// Real returns the wall clock. It is the default everywhere a nil Clock is
// configured.
func Real() Clock { return realClock{} }

// Or returns c, or the wall clock when c is nil — the idiom every layer uses
// to default its injected clock.
func Or(c Clock) Clock {
	if c == nil {
		return Real()
	}
	return c
}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

func (realClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

package core

import "fmt"

// CheckInvariants audits the runtime's internal bookkeeping and returns one
// human-readable message per violation (empty slice = healthy). It is the
// core half of the simulation harness's continuous checking: sim.Run calls
// it on a sweep goroutine throughout a scenario with quiescent=false, and
// once more after termination with quiescent=true.
//
// Always checked:
//   - every registered object is in exactly one valid locality state, and
//     holds its in-memory representation iff that state is stInCore
//   - a lost object has an empty message queue (its messages were dropped
//     loudly, not parked forever)
//   - every speculation snapshot belongs to a live local object (a snapshot
//     on a missing or lost object can never be rolled back or committed)
//
// Checked only at quiescence (quiescent=true) — these are stable properties
// of a terminated system, racy while work is in flight:
//   - no queued, running or parked work remains anywhere
//   - every multicast collection completed (reference counts back to zero)
//   - the count of lost objects matches the loud-loss counter
//   - the ooc layer's residency accounting agrees with the object states
//   - in-core bytes fit the memory budget (unless eviction stalled loudly:
//     an over-budget stall is reported through EvictStalls, not silence)
//   - no speculation snapshot remains: every optimistic update either
//     committed or rolled back before termination fired
func (rt *Runtime) CheckInvariants(quiescent bool) []string {
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("node %d: ", rt.node)+fmt.Sprintf(format, args...))
	}

	// Snapshot the object set under rt.mu, then examine each object under
	// its own lock — same order every mutation path uses, so no inversion.
	rt.mu.Lock()
	los := make([]*localObject, 0, len(rt.objects))
	for _, lo := range rt.objects {
		los = append(los, lo)
	}
	parked := len(rt.parked)
	rt.mu.Unlock()

	var inCore, lost int
	var queuedMsgs, running int
	for _, lo := range los {
		lo.mu.Lock()
		st := lo.state
		hasObj := lo.obj != nil
		qlen := len(lo.queue)
		isRunning := lo.running
		ptr := lo.ptr
		lo.mu.Unlock()

		switch st {
		case stInCore, stStoring, stOut, stLoading, stLost:
		default:
			fail("object %v in invalid state %d", ptr, st)
		}
		// The in-memory representation exists iff the object is resident.
		// stStoring keeps obj aside in the eviction path (cleared from lo),
		// stLoading has not decoded yet.
		if (st == stInCore) != hasObj {
			fail("object %v: state %d but obj!=nil is %v", ptr, st, hasObj)
		}
		if st == stLost && qlen > 0 {
			fail("lost object %v still holds %d queued messages", ptr, qlen)
		}
		if st == stInCore {
			inCore++
		}
		if st == stLost {
			lost++
		}
		queuedMsgs += qlen
		if isRunning {
			running++
		}
	}

	// Speculation sweep: a snapshot must always refer to a live local
	// object. Snapshots are extracted before an object record is dropped
	// (migration) and discarded before a state flips to stLost (failed load,
	// destroy), so any violation here is a bookkeeping leak, not a race.
	rt.snapMu.Lock()
	snapPtrs := make([]MobilePtr, 0, len(rt.snaps))
	for p := range rt.snaps {
		snapPtrs = append(snapPtrs, p)
	}
	rt.snapMu.Unlock()
	for _, p := range snapPtrs {
		rt.mu.Lock()
		slo := rt.objects[p]
		rt.mu.Unlock()
		if slo == nil {
			fail("speculation snapshot held for %v, which is not a local object", p)
			continue
		}
		slo.mu.Lock()
		st := slo.state
		slo.mu.Unlock()
		if st == stLost {
			fail("speculation snapshot held for lost object %v", p)
		}
	}

	if !quiescent {
		return out
	}

	if w := rt.work.Load(); w != 0 {
		fail("quiescent but work counter = %d", w)
	}
	if queuedMsgs > 0 {
		fail("quiescent but %d messages still queued on objects", queuedMsgs)
	}
	if running > 0 {
		fail("quiescent but %d handlers marked running", running)
	}
	if parked > 0 {
		fail("quiescent but %d destinations hold parked messages", parked)
	}
	if p := rt.PendingMulticasts(); p != 0 {
		fail("quiescent but %d multicast collections pending", p)
	}
	if n := rt.SnapshotCount(); n != 0 {
		fail("quiescent but %d objects still hold speculation snapshots (neither committed nor rolled back)", n)
	}
	// Routing cycles and lost installs drop messages at the forward-hop
	// bound; the drop is loud (counted + traced) and any occurrence is a
	// routing defect a soak must surface, not absorb.
	if d := rt.RouteDropped(); d != 0 {
		fail("%d messages dropped at the %d-hop forward bound (routing cycle or lost install)",
			d, maxForwardHops)
	}
	// Every loudly-lost object leaves a terminal tombstone. Destroyed
	// objects are tombstones too, so the tombstone count is a lower bound,
	// never less than the loss counter.
	if l := rt.SwapStats().ObjectsLost; uint64(lost) < l {
		fail("only %d objects in stLost but ObjectsLost counter = %d", lost, l)
	}

	// Residency accounting is only comparable when no swap transition is in
	// flight (an eviction decrements InCore at its commit point, before the
	// state machine settles).
	if rt.swapOps.Load() == 0 {
		ms := rt.mem.Snapshot()
		if int(ms.InCore) != inCore {
			fail("ooc reports %d in-core objects, state machine has %d", ms.InCore, inCore)
		}
		if ms.MemBudget > 0 && ms.MemUsed > ms.MemBudget && rt.EvictStalls() == 0 {
			fail("in-core bytes %d exceed budget %d with no eviction stall reported",
				ms.MemUsed, ms.MemBudget)
		}
	}
	return out
}

package core

import (
	"strings"
	"testing"
)

// The object-granular speculation snapshots behind S-UPDR: SnapshotObject
// captures an object's serialized state, RollbackObject restores it,
// CommitObject discards it. The tests here cover the lifecycle edges the
// speculative refinement protocol depends on — rollback from inside a
// running handler, snapshots traveling with migration, surviving eviction,
// and being discarded (never leaked) when the object is destroyed while a
// multicast is still collecting it.

const (
	hSnapMut      HandlerID = 40 // mutate Count, no snapshot involvement
	hSnapTake     HandlerID = 41 // snapshot, then mutate
	hSnapRollback HandlerID = 42 // roll back to the snapshot
	hSnapReport   HandlerID = 43 // report Count on a channel
)

func registerSnapHandlers(c *cluster, report chan int64) {
	for _, rt := range c.rts {
		rt.Register(hSnapMut, func(ctx *Ctx, arg []byte) {
			ctx.Object().(*testObj).Count += 100
		})
		rt.Register(hSnapTake, func(ctx *Ctx, arg []byte) {
			if err := ctx.Runtime().SnapshotObject(ctx.Self); err != nil {
				panic(err)
			}
			ctx.Object().(*testObj).Count += 1000
		})
		rt.Register(hSnapRollback, func(ctx *Ctx, arg []byte) {
			if err := ctx.Runtime().RollbackObject(ctx.Self); err != nil {
				panic(err)
			}
		})
		rt.Register(hSnapReport, func(ctx *Ctx, arg []byte) {
			report <- ctx.Object().(*testObj).Count
		})
	}
}

func TestSnapshotRollbackRestoresHandlerState(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt := c.rts[0]
	p := rt.CreateObject(&testObj{Count: 7})

	rt.Post(p, hSnapTake, nil) // snapshot at 7, then Count = 1007
	rt.Post(p, hSnapMut, nil)  // 1107: speculative damage on top
	rt.Post(p, hSnapRollback, nil)
	rt.Post(p, hSnapReport, nil)
	WaitQuiescence(rt)
	if got := <-report; got != 7 {
		t.Fatalf("after rollback Count = %d, want the pre-snapshot 7", got)
	}
	if rt.SnapshotCount() != 0 {
		t.Fatalf("rollback must consume the snapshot; %d still held", rt.SnapshotCount())
	}
	// A second rollback has nothing to restore.
	if err := rt.RollbackObject(p); err != ErrNoSnapshot {
		t.Fatalf("double rollback: got %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotCommitDiscards(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt := c.rts[0]
	p := rt.CreateObject(&testObj{Count: 1})
	rt.Post(p, hSnapTake, nil)
	WaitQuiescence(rt)

	if !rt.Snapshotted(p) {
		t.Fatal("snapshot not recorded")
	}
	if !rt.CommitObject(p) {
		t.Fatal("CommitObject found no snapshot to discard")
	}
	if rt.Snapshotted(p) || rt.SnapshotCount() != 0 {
		t.Fatal("commit must discard the snapshot")
	}
	if err := rt.RollbackObject(p); err != ErrNoSnapshot {
		t.Fatalf("rollback after commit: got %v, want ErrNoSnapshot", err)
	}
	st := rt.SpeculStats()
	if st.Snapshots != 1 || st.Commits != 1 || st.Rollbacks != 0 {
		t.Fatalf("stats %+v, want 1 snapshot / 1 commit / 0 rollbacks", st)
	}
}

func TestSnapshotReplacedByNewerSnapshot(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt := c.rts[0]
	p := rt.CreateObject(&testObj{Count: 0})
	rt.Post(p, hSnapTake, nil) // snapshot at 0, Count = 1000
	rt.Post(p, hSnapTake, nil) // snapshot at 1000, Count = 2000
	rt.Post(p, hSnapRollback, nil)
	rt.Post(p, hSnapReport, nil)
	WaitQuiescence(rt)
	if got := <-report; got != 1000 {
		t.Fatalf("rollback restored Count = %d, want the newer snapshot's 1000", got)
	}
}

func TestSnapshotTravelsWithMigration(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt0, rt1 := c.rts[0], c.rts[1]
	p := rt0.CreateObject(&testObj{Count: 3})
	rt0.Post(p, hSnapTake, nil) // snapshot at 3, Count = 1003
	WaitQuiescence(rt0, rt1)

	if err := rt0.Migrate(p, 1); err != nil {
		t.Fatal(err)
	}
	WaitQuiescence(rt0, rt1)
	if rt0.Snapshotted(p) {
		t.Fatal("source node still holds the snapshot after migration")
	}
	if !rt1.Snapshotted(p) {
		t.Fatal("snapshot did not travel with the migrating object")
	}
	// Roll back on the destination: the pre-speculation state must emerge.
	rt1.Post(p, hSnapRollback, nil)
	rt1.Post(p, hSnapReport, nil)
	WaitQuiescence(rt0, rt1)
	if got := <-report; got != 3 {
		t.Fatalf("post-migration rollback Count = %d, want 3", got)
	}
}

func TestSnapshotSurvivesEviction(t *testing.T) {
	// Budget fits roughly two ballasted objects: creating more evicts the
	// snapshotted one. The snapshot lives outside the residency layer, so
	// eviction and reload must not disturb it.
	c := newCluster(t, 1, 2500)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt := c.rts[0]
	p := rt.CreateObject(&testObj{Count: 5, Ballast: make([]byte, 800)})
	rt.Post(p, hSnapTake, nil)
	WaitQuiescence(rt)
	for i := 0; i < 6; i++ {
		rt.CreateObject(&testObj{Ballast: make([]byte, 800)})
	}
	WaitQuiescence(rt)
	if !rt.Snapshotted(p) {
		t.Fatal("snapshot vanished under memory pressure")
	}
	// The rollback handler forces the object back in core and restores it.
	rt.Post(p, hSnapRollback, nil)
	rt.Post(p, hSnapReport, nil)
	WaitQuiescence(rt)
	if got := <-report; got != 5 {
		t.Fatalf("rollback after eviction Count = %d, want 5", got)
	}
}

func TestSnapshotErrors(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	report := make(chan int64, 1)
	registerSnapHandlers(c, report)
	rt0, rt1 := c.rts[0], c.rts[1]
	remote := rt1.CreateObject(&testObj{})
	if err := rt0.SnapshotObject(remote); err != ErrNotLocal {
		t.Fatalf("snapshot of a remote object: got %v, want ErrNotLocal", err)
	}
	if err := rt0.RollbackObject(remote); err != ErrNoSnapshot {
		t.Fatalf("rollback with no snapshot: got %v, want ErrNoSnapshot", err)
	}
	p := rt0.CreateObject(&testObj{})
	if rt0.CommitObject(p) {
		t.Fatal("CommitObject reported success with no snapshot taken")
	}
}

func TestQuiescentInvariantFlagsUnresolvedSnapshot(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	rt := c.rts[0]
	p := rt.CreateObject(&testObj{Count: 1})
	if err := rt.SnapshotObject(p); err != nil {
		t.Fatal(err)
	}
	WaitQuiescence(rt)
	var hit bool
	for _, msg := range rt.CheckInvariants(true) {
		if strings.Contains(msg, "speculation snapshot") {
			hit = true
		}
	}
	if !hit {
		t.Fatal("quiescent invariant sweep missed an object left snapshotted but neither committed nor rolled back")
	}
	rt.CommitObject(p)
	for _, msg := range rt.CheckInvariants(true) {
		if strings.Contains(msg, "speculation snapshot") {
			t.Fatalf("sweep still complains after commit: %s", msg)
		}
	}
}

func TestMcastObjectLostCancelsPendingCollection(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	a := rt.CreateObject(&testObj{})
	// A pointer that was never created: the collection can never complete,
	// exactly like a member lost in flight.
	ghost := MobilePtr{Home: 0, Seq: 1 << 30}
	rt.startMcast([]MobilePtr{a, ghost}, 1, hInc, nil)
	if rt.PendingMulticasts() != 1 {
		t.Fatalf("PendingMulticasts = %d, want 1", rt.PendingMulticasts())
	}
	// The loss notification must cancel the collection: unpin the members
	// already gathered and release the work unit, or termination wedges.
	rt.mcasts.objectLost(rt, ghost)
	if rt.PendingMulticasts() != 0 {
		t.Fatalf("PendingMulticasts = %d after loss, want 0", rt.PendingMulticasts())
	}
	WaitQuiescence(rt) // hangs here if the cancel leaked the work unit
	report := make(chan int64, 1)
	rt.Register(hSnapReport, func(ctx *Ctx, arg []byte) { report <- ctx.Object().(*testObj).Count })
	rt.Post(a, hSnapReport, nil)
	WaitQuiescence(rt)
	if got := <-report; got != 0 {
		t.Fatalf("cancelled multicast still delivered: Count = %d, want 0", got)
	}
}

func TestDestroyCancelsMcastAndDiscardsSnapshot(t *testing.T) {
	// The rollback-racing-loss edge: an object is snapshotted (a pending
	// speculation) and simultaneously a member of a collecting multicast
	// when it is destroyed. Both attachments must be severed: the snapshot
	// discarded, the collection cancelled, termination clean.
	c := newCluster(t, 1, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	b := rt.CreateObject(&testObj{Count: 9})
	if err := rt.SnapshotObject(b); err != nil {
		t.Fatal(err)
	}
	ghost := MobilePtr{Home: 0, Seq: 1 << 30}
	rt.startMcast([]MobilePtr{b, ghost}, 1, hInc, nil) // b pinned, waiting on ghost
	if err := rt.DestroyObject(b); err != nil {
		t.Fatal(err)
	}
	if rt.SnapshotCount() != 0 {
		t.Fatal("destroy leaked the speculation snapshot")
	}
	if rt.PendingMulticasts() != 0 {
		t.Fatal("destroy left the multicast collecting a tombstone")
	}
	if err := rt.RollbackObject(b); err == nil {
		t.Fatal("rollback of a destroyed object reported success")
	}
	if st := rt.SpeculStats(); st.Discards != 1 {
		t.Fatalf("SpeculStats.Discards = %d, want 1", st.Discards)
	}
	WaitQuiescence(rt)
	if msgs := rt.CheckInvariants(true); len(msgs) != 0 {
		t.Fatalf("invariants violated after destroy: %v", msgs)
	}
}

package core

import (
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// waitQuiescenceOrFail fails the test if the cluster does not reach global
// termination: a message parked with no path to delivery holds the work
// counter forever, which is exactly the wedge these tests guard against.
func waitQuiescenceOrFail(t *testing.T, rts ...*Runtime) {
	t.Helper()
	done := make(chan struct{})
	go func() { WaitQuiescence(rts...); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("quiescence never reached: a parked message is holding the work counter")
	}
}

// TestPostBeforeCreateDelivers posts to a pointer the peer has not minted
// yet — legal whenever a shared placement lets nodes predict each other's
// pointers, and exactly what happens when one node starts a phase while a
// peer is still creating its blocks. The message parks at the home node;
// CreateObject must adopt it or termination never fires.
func TestPostBeforeCreateDelivers(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	target := MobilePtr{Home: 1, Seq: 1}
	c.rts[0].Post(target, hInc, nil)
	time.Sleep(100 * time.Millisecond) // let the message arrive and park
	if ptr := c.rts[1].CreateObject(&testObj{}); ptr != target {
		t.Fatalf("minted %v, want %v", ptr, target)
	}
	waitQuiescenceOrFail(t, c.rts...)
	got := make(chan int64, 1)
	c.rts[1].Register(98, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	c.rts[1].Post(target, 98, nil)
	if v := <-got; v != 1 {
		t.Fatalf("Count = %d, want 1 (parked message lost)", v)
	}
}

// TestPostBeforeRestoreDelivers is the rejoin version of the same race: a
// peer posts to a checkpointed object while its node is back up but has not
// restored yet. The message parks; Restore must adopt it into the restored
// object's queue.
func TestPostBeforeRestoreDelivers(t *testing.T) {
	// A throwaway incarnation of node 1 creates the object and checkpoints.
	ck := storage.NewMem()
	tr := comm.NewInProc(2, comm.LatencyModel{})
	pool := sched.NewWorkStealing(2)
	rtOld := NewRuntime(Config{
		Endpoint: tr.Endpoint(1),
		Pool:     pool,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    storage.NewMem(),
	})
	target := rtOld.CreateObject(&testObj{Count: 7})
	if err := rtOld.Checkpoint(ck, "ck"); err != nil {
		t.Fatal(err)
	}
	if err := rtOld.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	tr.Close()

	// The relaunched cluster: node 1 is up (joined, routing) but empty.
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	c.rts[0].Post(target, hInc, nil)
	time.Sleep(100 * time.Millisecond) // let the message arrive and park
	if err := c.rts[1].Restore(ck, "ck"); err != nil {
		t.Fatal(err)
	}
	waitQuiescenceOrFail(t, c.rts...)
	got := make(chan int64, 1)
	c.rts[1].Register(98, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	c.rts[1].Post(target, 98, nil)
	if v := <-got; v != 8 {
		t.Fatalf("Count = %d, want 8 (checkpointed 7 + parked increment)", v)
	}
}

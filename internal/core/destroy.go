package core

// DestroyObject permanently removes an idle local mobile object: its memory
// accounting is unregistered, its on-disk blob is deleted (swapped blobs
// must not outlive their objects — long runs would leak disk up to the
// total ever-evicted footprint), and the local record becomes a terminal
// tombstone so late messages are dropped with correct termination
// accounting instead of parking forever.
//
// It returns ErrNotLocal if the object is not here, ErrBusy if a handler is
// running, scheduled, or the object is mid-swap or mid-migration (retry
// after quiescence), and ErrObjectLost if it was already lost.
func (rt *Runtime) DestroyObject(ptr MobilePtr) error {
	rt.mu.Lock()
	lo, ok := rt.objects[ptr]
	rt.mu.Unlock()
	if !ok {
		return ErrNotLocal
	}
	lo.mu.Lock()
	switch {
	case lo.state == stLost:
		lo.mu.Unlock()
		return ErrObjectLost
	case lo.running || lo.scheduled || lo.migrating || lo.state == stStoring || lo.state == stLoading:
		lo.mu.Unlock()
		return ErrBusy
	}
	// Drop any speculation snapshot first (same ordering as the lost-load
	// path: the invariant sweep must never see a snapshot on a tombstone).
	rt.discardSnapshot(ptr)
	n := len(lo.queue)
	lo.queue = nil
	lo.obj = nil
	lo.state = stLost
	lo.mu.Unlock()

	rt.work.Add(int64(-n))
	rt.mem.Unregister(oid(ptr))
	rt.io.Delete(storeKey(ptr))
	// A multicast waiting on this object can never complete; cancel it
	// rather than wedge.
	rt.mcasts.objectLost(rt, ptr)
	return nil
}

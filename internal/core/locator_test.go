package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// scriptLocator routes every pointer to a settable target with a settable
// epoch — a test double for driving the runtime's routing edges (the
// forward-hop bound, the stale-epoch retry, parked re-routing) without a
// real directory behind them.
type scriptLocator struct {
	target atomic.Int64
	epoch  atomic.Uint64
}

func newScriptLocator(target NodeID, epoch uint64) *scriptLocator {
	l := &scriptLocator{}
	l.target.Store(int64(target))
	l.epoch.Store(epoch)
	return l
}

func (l *scriptLocator) Locate(MobilePtr) (NodeID, uint64) {
	return NodeID(l.target.Load()), l.epoch.Load()
}
func (l *scriptLocator) Epoch() uint64                             { return l.epoch.Load() }
func (l *scriptLocator) Note(MobilePtr, NodeID)                    {}
func (l *scriptLocator) Forget(MobilePtr)                          {}
func (l *scriptLocator) FeedbackTargets([]NodeID) []NodeID         { return nil }
func (l *scriptLocator) MigrateTargets(MobilePtr, NodeID) []NodeID { return nil }
func (l *scriptLocator) Cached() map[MobilePtr]NodeID              { return nil }
func (l *scriptLocator) String() string                            { return "script" }

// newLocatorCluster builds a cluster with one injected Locator per node.
func newLocatorCluster(t testing.TB, n int, loc func(i int) Locator) *cluster {
	t.Helper()
	tr := comm.NewInProc(n, comm.LatencyModel{})
	c := &cluster{tr: tr}
	for i := 0; i < n; i++ {
		rt := NewRuntime(Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     sched.NewWorkStealing(2),
			Factory:  testFactory,
			Mem:      ooc.Config{Budget: 1 << 20},
			Store:    storage.NewMem(),
			Locator:  loc(i),
		})
		c.rts = append(c.rts, rt)
	}
	t.Cleanup(func() {
		WaitQuiescence(c.rts...)
		for _, rt := range c.rts {
			rt.Close()
		}
		tr.Close()
	})
	return c
}

// TestRouteDropAtHopBound drives a message into a two-node routing cycle
// (each locator points at the other node, the object exists nowhere) and
// requires the loud-drop contract: exactly one counted drop, work released
// so quiescence still fires, and a quiescent CheckInvariants violation
// naming it.
func TestRouteDropAtHopBound(t *testing.T) {
	c := newLocatorCluster(t, 2, func(i int) Locator {
		return newScriptLocator(NodeID(1-i), 0)
	})
	c.rts[0].Post(MobilePtr{Home: 0, Seq: 9999}, hInc, nil)
	WaitQuiescence(c.rts...)

	drops := c.rts[0].RouteDropped() + c.rts[1].RouteDropped()
	if drops != 1 {
		t.Fatalf("dropped %d messages at the hop bound, want exactly 1", drops)
	}
	var violations []string
	for _, rt := range c.rts {
		violations = append(violations, rt.CheckInvariants(true)...)
	}
	found := false
	for _, v := range violations {
		if strings.Contains(v, "dropped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("quiescent CheckInvariants did not surface the drop: %v", violations)
	}
	// The cycle must have actually forwarded up to the bound, not
	// short-circuited.
	if fwd := c.rts[0].ForwardedCount() + c.rts[1].ForwardedCount(); fwd < int64(maxForwardHops)-2 {
		t.Fatalf("only %d forwards before the drop, want ~%d", fwd, maxForwardHops)
	}
}

// TestStaleEpochRetry sends a message resolved at epoch 5 through a node
// whose locator is already at epoch 7: the receiver must count a stale
// retry, re-resolve at its own epoch, and still deliver exactly once.
func TestStaleEpochRetry(t *testing.T) {
	locs := []*scriptLocator{
		newScriptLocator(1, 5), // sender: stale view, routes via node 1
		newScriptLocator(2, 7), // relay: current view, knows the object's host
		newScriptLocator(2, 7),
	}
	c := newLocatorCluster(t, 3, func(i int) Locator { return locs[i] })
	var delivered atomic.Int64
	for _, rt := range c.rts {
		rt.Register(hInc, func(ctx *Ctx, arg []byte) { delivered.Add(1) })
	}
	ptr := c.rts[2].CreateObject(&testObj{})

	c.rts[0].Post(ptr, hInc, nil)
	WaitQuiescence(c.rts...)

	if n := delivered.Load(); n != 1 {
		t.Fatalf("delivered %d times, want 1", n)
	}
	if n := c.rts[1].RouteStaleRetries(); n != 1 {
		t.Fatalf("relay counted %d stale retries, want 1", n)
	}
	if n := c.rts[1].ForwardedCount(); n != 1 {
		t.Fatalf("relay forwarded %d messages, want 1", n)
	}
	if got := c.rts[2].RouteHopsMean(); got != 2.0 {
		t.Fatalf("delivered hop mean %.2f, want 2.0 (sender -> relay -> host)", got)
	}
}

// TestReRouteParked parks a message by pointing the sender's locator at
// itself, then flips the locator and requires ReRouteParked to release
// exactly the parked message.
func TestReRouteParked(t *testing.T) {
	l0 := newScriptLocator(0, 0) // self: the post parks
	c := newLocatorCluster(t, 2, func(i int) Locator {
		if i == 0 {
			return l0
		}
		return newScriptLocator(1, 0)
	})
	var delivered atomic.Int64
	for _, rt := range c.rts {
		rt.Register(hInc, func(ctx *Ctx, arg []byte) { delivered.Add(1) })
	}
	ptr := c.rts[1].CreateObject(&testObj{})

	c.rts[0].Post(ptr, hInc, nil) // routes inline: parked before Post returns
	if n := c.rts[0].ReRouteParked(); n != 0 {
		t.Fatalf("re-route moved %d messages while the locator still says self", n)
	}
	l0.target.Store(1)
	if n := c.rts[0].ReRouteParked(); n != 1 {
		t.Fatalf("re-route moved %d messages after the locator learned, want 1", n)
	}
	WaitQuiescence(c.rts...)
	if n := delivered.Load(); n != 1 {
		t.Fatalf("delivered %d times, want 1", n)
	}
}

// BenchmarkLocatorNoteHit measures the Note fast path — a directory update
// confirming what is already cached — which must stay on the read lock so
// concurrent forward-path traffic does not serialize (the reason location
// recording moved off rt.mu).
func BenchmarkLocatorNoteHit(b *testing.B) {
	l := NewPolicyLocator(DirLazy, 0, 4)
	p := MobilePtr{Home: 1, Seq: 42}
	l.Note(p, 2)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Note(p, 2)
		}
	})
}

// BenchmarkLocatorNoteChurn measures the slow path: every Note changes the
// cached location, taking the write lock.
func BenchmarkLocatorNoteChurn(b *testing.B) {
	l := NewPolicyLocator(DirLazy, 0, 4)
	p := MobilePtr{Home: 1, Seq: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Note(p, NodeID(i%2))
	}
}

package core

import (
	"encoding/binary"
	"sync"

	"mrts/internal/comm"
	"mrts/internal/obs"
)

// wireMcast carries a multicast mobile message to its collection node.
const wireMcast uint32 = 5

// PostMulticast sends the paper's experimental multicast mobile message: a
// message addressed to a vector of mobile pointers that is delivered only
// after the runtime has collected all of the objects onto one node, in core.
// deliverCount selects how many of the leading pointers actually receive the
// message (the ONUPDR uses the vector {leaf, buffer...} with deliverCount 1:
// the buffer leaves are co-located but only the leaf's handler runs).
//
// Collection happens on the node currently holding ptrs[0]; the remaining
// objects are pulled there with migration requests, pinned in core until
// delivery, then unpinned.
func (rt *Runtime) PostMulticast(ptrs []MobilePtr, deliverCount int, h HandlerID, arg []byte) {
	if len(ptrs) == 0 || deliverCount <= 0 {
		return
	}
	if deliverCount > len(ptrs) {
		deliverCount = len(ptrs)
	}
	if rt.IsLocal(ptrs[0]) {
		rt.startMcast(ptrs, deliverCount, h, arg)
		return
	}
	target, _ := rt.loc.Locate(ptrs[0])
	if target == rt.node {
		// ptrs[0] is in flight to us; collect here anyway.
		rt.startMcast(ptrs, deliverCount, h, arg)
		return
	}
	rt.sent.Add(1)
	if err := rt.ep.Send(target, wireMcast, encodeMcast(ptrs, deliverCount, h, arg)); err != nil {
		rt.sent.Add(-1)
	}
}

func encodeMcast(ptrs []MobilePtr, deliver int, h HandlerID, arg []byte) []byte {
	b := make([]byte, 2+8*len(ptrs)+2+4+4+len(arg))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(ptrs)))
	off := 2
	for _, p := range ptrs {
		putPtr(b[off:off+8], p)
		off += 8
	}
	binary.LittleEndian.PutUint16(b[off:off+2], uint16(deliver))
	binary.LittleEndian.PutUint32(b[off+2:off+6], uint32(h))
	binary.LittleEndian.PutUint32(b[off+6:off+10], uint32(len(arg)))
	off += 10
	copy(b[off:], arg)
	return b
}

func decodeMcast(b []byte) (ptrs []MobilePtr, deliver int, h HandlerID, arg []byte, ok bool) {
	if len(b) < 2 {
		return
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	off := 2
	if len(b) < off+8*n+10 {
		return
	}
	for i := 0; i < n; i++ {
		ptrs = append(ptrs, getPtr(b[off:off+8]))
		off += 8
	}
	deliver = int(binary.LittleEndian.Uint16(b[off : off+2]))
	h = HandlerID(binary.LittleEndian.Uint32(b[off+2 : off+6]))
	na := int(binary.LittleEndian.Uint32(b[off+6 : off+10]))
	off += 10
	if len(b) < off+na {
		return nil, 0, 0, nil, false
	}
	return ptrs, deliver, h, b[off : off+na], true
}

func (rt *Runtime) onWireMcast(msg comm.Message) {
	ptrs, deliver, h, arg, ok := decodeMcast(msg.Payload)
	if !ok {
		return
	}
	rt.recv.Add(1)
	rt.startMcast(ptrs, deliver, h, arg)
}

// mcastEntry tracks one pending multicast on its collection node.
type mcastEntry struct {
	id      uint64
	ptrs    []MobilePtr
	deliver int
	h       HandlerID
	arg     []byte
	missing map[MobilePtr]bool
	pinned  []MobilePtr
}

type mcastTable struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]*mcastEntry
	byPtr   map[MobilePtr]map[uint64]bool
}

func newMcastTable() *mcastTable {
	return &mcastTable{
		pending: make(map[uint64]*mcastEntry),
		byPtr:   make(map[MobilePtr]map[uint64]bool),
	}
}

// startMcast begins collecting the objects on this node. The pending
// multicast counts as one unit of work so termination cannot fire under it.
func (rt *Runtime) startMcast(ptrs []MobilePtr, deliver int, h HandlerID, arg []byte) {
	rt.work.Add(1)
	e := &mcastEntry{
		ptrs:    ptrs,
		deliver: deliver,
		h:       h,
		arg:     arg,
		missing: make(map[MobilePtr]bool, len(ptrs)),
	}
	t := rt.mcasts
	t.mu.Lock()
	t.next++
	e.id = t.next
	t.pending[e.id] = e
	for _, p := range ptrs {
		e.missing[p] = true
		if t.byPtr[p] == nil {
			t.byPtr[p] = make(map[uint64]bool)
		}
		t.byPtr[p][e.id] = true
	}
	t.mu.Unlock()
	rt.tracer.Emit(obs.KindMcastStart, e.id, int64(len(ptrs)))

	// Kick every pointer: local ones may already satisfy the condition;
	// remote ones are pulled here.
	for _, p := range ptrs {
		if rt.IsLocal(p) {
			if rt.InCore(p) {
				t.objectArrived(rt, p)
			} else if !rt.forceLoad(p) {
				// Migrated away between the checks: pull it here instead.
				// The collection blocks on this object, so the load goes
				// in at demand class, not as speculation.
				rt.RequestMigration(p, rt.node)
			}
		} else {
			rt.RequestMigration(p, rt.node)
		}
	}
}

// objectArrived is called whenever an object becomes local+in-core (install
// or load completion); it advances any multicast waiting on it.
func (t *mcastTable) objectArrived(rt *Runtime, ptr MobilePtr) {
	t.mu.Lock()
	ids := t.byPtr[ptr]
	if len(ids) == 0 {
		t.mu.Unlock()
		return
	}
	var completed []*mcastEntry
	for id := range ids {
		e := t.pending[id]
		if e == nil || !e.missing[ptr] {
			continue
		}
		delete(e.missing, ptr)
		e.pinned = append(e.pinned, ptr)
		rt.mem.Lock(oid(ptr)) // pin until delivery
		if len(e.missing) == 0 {
			completed = append(completed, e)
			delete(t.pending, id)
			for _, p := range e.ptrs {
				if m := t.byPtr[p]; m != nil {
					delete(m, id)
					if len(m) == 0 {
						delete(t.byPtr, p)
					}
				}
			}
		}
	}
	t.mu.Unlock()

	for _, e := range completed {
		rt.tracer.Emit(obs.KindMcastDeliver, e.id, int64(e.deliver))
		for i := 0; i < e.deliver; i++ {
			rt.Post(e.ptrs[i], e.h, e.arg)
		}
		for _, p := range e.pinned {
			rt.mem.Unlock(oid(p))
		}
		rt.work.Add(-1)
	}
}

// objectLost cancels every multicast waiting on ptr: the object can never
// arrive, so the collection would hold its work unit (and its pins) forever
// and wedge termination. Pinned members are released and the work accounted
// off; the loss itself is surfaced by the swap path's error reporting.
func (t *mcastTable) objectLost(rt *Runtime, ptr MobilePtr) {
	t.mu.Lock()
	ids := t.byPtr[ptr]
	if len(ids) == 0 {
		t.mu.Unlock()
		return
	}
	var cancelled []*mcastEntry
	for id := range ids {
		e := t.pending[id]
		if e == nil {
			continue
		}
		cancelled = append(cancelled, e)
		delete(t.pending, id)
		for _, p := range e.ptrs {
			if m := t.byPtr[p]; m != nil {
				delete(m, id)
				if len(m) == 0 {
					delete(t.byPtr, p)
				}
			}
		}
	}
	t.mu.Unlock()

	for _, e := range cancelled {
		rt.tracer.Emit(obs.KindMcastCancel, e.id, int64(len(e.ptrs)))
		for _, p := range e.pinned {
			rt.mem.Unlock(oid(p))
		}
		rt.work.Add(-1)
	}
}

// PendingMulticasts returns the number of multicasts still collecting.
func (rt *Runtime) PendingMulticasts() int {
	rt.mcasts.mu.Lock()
	defer rt.mcasts.mu.Unlock()
	return len(rt.mcasts.pending)
}

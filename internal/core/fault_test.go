package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// flakyStore injects failures into every Nth operation.
type flakyStore struct {
	inner    storage.Store
	every    int64
	ops      atomic.Int64
	failGets bool
	failPuts bool
}

var errInjected = errors.New("injected storage fault")

func (s *flakyStore) trip() bool {
	return s.ops.Add(1)%s.every == 0
}

func (s *flakyStore) Put(k storage.Key, d []byte) error {
	if s.failPuts && s.trip() {
		return errInjected
	}
	return s.inner.Put(k, d)
}

func (s *flakyStore) Get(k storage.Key) ([]byte, error) {
	if s.failGets && s.trip() {
		return nil, errInjected
	}
	return s.inner.Get(k)
}

func (s *flakyStore) Delete(k storage.Key) error { return s.inner.Delete(k) }
func (s *flakyStore) Has(k storage.Key) bool     { return s.inner.Has(k) }
func (s *flakyStore) Close() error               { return s.inner.Close() }

// newFaultyRuntime builds a single-node runtime over a flaky store.
func newFaultyRuntime(t *testing.T, st storage.Store, budget int64) (*Runtime, func()) {
	t.Helper()
	tr := comm.NewInProc(1, comm.LatencyModel{})
	pool := sched.NewWorkStealing(2)
	rt := NewRuntime(Config{
		Endpoint: tr.Endpoint(0),
		Pool:     pool,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: budget},
		Store:    st,
	})
	return rt, func() {
		rt.Close()
		pool.Close()
		tr.Close()
	}
}

// TestEvictionWriteFailureKeepsObjectInCore: a failed eviction write must
// not lose the object — it stays (or returns) in core with its state intact.
func TestEvictionWriteFailureKeepsObjectInCore(t *testing.T) {
	st := &flakyStore{inner: storage.NewMem(), every: 2, failPuts: true}
	rt, cleanup := newFaultyRuntime(t, st, 3000)
	defer cleanup()
	rt.Register(hInc, func(ctx *Ctx, arg []byte) { ctx.Object().(*testObj).Count++ })

	var ptrs []MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, rt.CreateObject(&testObj{Ballast: make([]byte, 900)}))
	}
	for round := 0; round < 4; round++ {
		for _, p := range ptrs {
			rt.Post(p, hInc, nil)
		}
		WaitQuiescence(rt)
	}
	// Every object must still answer with the full count: no state was
	// lost to the failing writes.
	got := make(chan int64, 1)
	rt.Register(98, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	for _, p := range ptrs {
		rt.Post(p, 98, nil)
		select {
		case v := <-got:
			if v != 4 {
				t.Fatalf("object %v count = %d, want 4", p, v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("object %v unreachable after write faults", p)
		}
	}
}

// TestLoadFailureStillTerminates: if a stored blob cannot be read back, its
// queued messages are dropped — but the cluster must still reach quiescence
// (no deadlock, no counter leak).
func TestLoadFailureStillTerminates(t *testing.T) {
	st := &flakyStore{inner: storage.NewMem(), every: 3, failGets: true}
	rt, cleanup := newFaultyRuntime(t, st, 3000)
	defer cleanup()
	rt.Register(hInc, func(ctx *Ctx, arg []byte) { ctx.Object().(*testObj).Count++ })
	var ptrs []MobilePtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, rt.CreateObject(&testObj{Ballast: make([]byte, 900)}))
	}
	for round := 0; round < 5; round++ {
		for _, p := range ptrs {
			rt.Post(p, hInc, nil)
		}
	}
	done := make(chan struct{})
	go func() {
		WaitQuiescence(rt)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("quiescence never reached with injected read faults")
	}
	if rt.Work() != 0 {
		t.Fatalf("work counter leaked: %d", rt.Work())
	}
}

// TestUnknownTypeInstallDoesNotWedgeCluster: migrating an object whose type
// the destination cannot construct loses the object but must not wedge the
// cluster (bounded forwarding turns the loss into dropped messages).
func TestUnknownTypeInstallDoesNotWedgeCluster(t *testing.T) {
	tr := comm.NewInProc(2, comm.LatencyModel{})
	defer tr.Close()
	pools := []sched.Pool{sched.NewWorkStealing(1), sched.NewWorkStealing(1)}
	defer pools[0].Close()
	defer pools[1].Close()
	rts := []*Runtime{
		NewRuntime(Config{
			Endpoint: tr.Endpoint(0), Pool: pools[0], Factory: testFactory,
			Mem: ooc.Config{Budget: 1 << 20}, Store: storage.NewMem(), NumNodes: 2,
		}),
		// Node 1 cannot build testObj: installs fail there.
		NewRuntime(Config{
			Endpoint: tr.Endpoint(1), Pool: pools[1],
			Factory: func(uint16) (Object, error) { return nil, ErrUnknownType },
			Mem:     ooc.Config{Budget: 1 << 20}, Store: storage.NewMem(), NumNodes: 2,
		}),
	}
	defer rts[0].Close()
	defer rts[1].Close()
	for _, rt := range rts {
		rt.Register(hInc, func(ctx *Ctx, arg []byte) {})
	}
	ptr := rts[0].CreateObject(&testObj{})
	if err := rts[0].Migrate(ptr, 1); err != nil {
		t.Fatal(err)
	}
	// The object is now lost (node 1 dropped the install). Posts must not
	// circulate forever.
	for i := 0; i < 10; i++ {
		rts[0].Post(ptr, hInc, nil)
		rts[1].Post(ptr, hInc, nil)
	}
	done := make(chan struct{})
	go func() {
		WaitQuiescence(rts...)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cluster wedged by a lost object")
	}
}

package core

import (
	"sync"

	"mrts/internal/sched"
	"mrts/internal/trace"
)

// Ctx is the execution context of a message handler: it identifies the
// object the message was delivered to and provides the operations a handler
// may perform — posting messages, creating objects, spawning parallel tasks,
// and influencing the out-of-core layer.
type Ctx struct {
	rt   *Runtime
	Self MobilePtr
	obj  Object
	sc   *sched.Ctx
}

// Object returns the mobile object the handler runs on.
func (c *Ctx) Object() Object { return c.obj }

// Runtime returns the node runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Node returns the executing node's ID.
func (c *Ctx) Node() NodeID { return c.rt.node }

// Post sends a message to another mobile object (or to Self).
func (c *Ctx) Post(dst MobilePtr, h HandlerID, arg []byte) { c.rt.Post(dst, h, arg) }

// Create registers a new mobile object homed on this node.
func (c *Ctx) Create(obj Object) MobilePtr { return c.rt.CreateObject(obj) }

// Lock pins an object in core, reporting whether it was found locally (see
// Runtime.Lock); Unlock releases it; SetPriority hints the out-of-core
// layer.
func (c *Ctx) Lock(ptr MobilePtr) bool            { return c.rt.Lock(ptr) }
func (c *Ctx) Unlock(ptr MobilePtr)               { c.rt.Unlock(ptr) }
func (c *Ctx) SetPriority(ptr MobilePtr, pri int) { c.rt.SetPriority(ptr, pri) }

// InCore reports whether ptr is local and in-core right now.
func (c *Ctx) InCore(ptr MobilePtr) bool { return c.rt.InCore(ptr) }

// CallInline attempts the paper's shared-memory optimization: if the target
// object is local, in-core and idle, its handler runs synchronously in the
// caller's goroutine — the sender's data is made available to the receiver
// without copying or queueing. It reports whether the inline call happened;
// on false the caller should fall back to Post.
//
// The reservation is try-lock style (a busy or non-resident target just
// returns false), so mutually inline-calling objects cannot deadlock.
func (c *Ctx) CallInline(dst MobilePtr, h HandlerID, arg []byte) bool {
	rt := c.rt
	rt.mu.Lock()
	lo := rt.objects[dst]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	if lo.state != stInCore || lo.running || lo.migrating {
		lo.mu.Unlock()
		return false
	}
	lo.running = true
	obj := lo.obj
	lo.mu.Unlock()

	rt.runHandler(dst, obj, queued{handler: h, sentAt: rt.clk.Now().UnixNano(), arg: arg}, c.sc)

	lo.mu.Lock()
	lo.running = false
	// The inline call bypassed the queue; if messages arrived meanwhile,
	// make sure they get drained.
	if len(lo.queue) > 0 && !lo.scheduled && lo.state == stInCore {
		lo.scheduled = true
		rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
	}
	lo.mu.Unlock()
	return true
}

// ForEach runs f(0) … f(n-1) as parallel tasks on the computing layer and
// returns when all complete — the paper's fine-grain parallelism within a
// message handler. The time spent in tasks is accounted as computation.
func (c *Ctx) ForEach(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || c.sc == nil {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	col := c.rt.col
	clk := c.rt.clk
	sched.ForEachN(c.rt.pool, n, func(i int) {
		if col == nil {
			f(i)
			return
		}
		t0 := clk.Now()
		f(i)
		col.Add(trace.Comp, clk.Since(t0))
	})
}

// Parallel runs the given functions as parallel tasks and waits for all.
func (c *Ctx) Parallel(fs ...func()) {
	if len(fs) == 1 {
		fs[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs))
	for _, f := range fs {
		f := f
		c.rt.pool.Submit(func(*sched.Ctx) {
			defer wg.Done()
			f()
		})
	}
	wg.Wait()
}

package core

import "fmt"

// This file implements the swap-path failure surface: when a storage
// operation fails after the retry layer's budget is exhausted, the runtime
// must not lose state silently. Store failures keep the object in core; load
// failures mark the object lost (stLost) and drop its queue so termination
// is still reached — but every such event is counted, recorded, and handed
// to the application's OnSwapError callback. A quietly incomplete mesh
// becomes a loud, attributable failure.

// SwapOp identifies the failing swap-path operation.
type SwapOp string

// The swap-path operations that can fail.
const (
	SwapLoad   SwapOp = "load"   // reading the blob back from the store
	SwapDecode SwapOp = "decode" // deserializing a blob that was read
	SwapStore  SwapOp = "store"  // writing the blob during eviction
)

// SwapError describes one swap-path failure that survived the retry layer.
type SwapError struct {
	Ptr MobilePtr
	Op  SwapOp
	Err error
	// Dropped is the number of queued messages discarded with the object.
	Dropped int
	// Lost reports whether the object became unreachable. Store failures
	// keep the object in core (Lost == false); load and decode failures
	// lose it.
	Lost bool
}

// Error implements the error interface.
func (e SwapError) Error() string {
	if e.Lost {
		return fmt.Sprintf("core: swap %s of %v failed, object lost (%d messages dropped): %v",
			e.Op, e.Ptr, e.Dropped, e.Err)
	}
	return fmt.Sprintf("core: swap %s of %v failed: %v", e.Op, e.Ptr, e.Err)
}

// Unwrap exposes the underlying storage error to errors.Is/As.
func (e SwapError) Unwrap() error { return e.Err }

// SwapStats counts swap-path failures and retries for one runtime.
type SwapStats struct {
	LoadFailures  uint64 // loads/decodes that failed after retry
	StoreFailures uint64 // eviction writes that failed after retry
	Retries       uint64 // transient faults absorbed by the storage layer
	ObjectsLost   uint64 // objects made unreachable by failed loads
}

// String implements fmt.Stringer.
func (s SwapStats) String() string {
	return fmt.Sprintf("retries %d load-fail %d store-fail %d lost %d",
		s.Retries, s.LoadFailures, s.StoreFailures, s.ObjectsLost)
}

// maxRecordedSwapErrors bounds the per-runtime error log; counters keep the
// totals when the log saturates.
const maxRecordedSwapErrors = 128

// SwapStats returns the runtime's swap-failure and retry counters.
func (rt *Runtime) SwapStats() SwapStats {
	return SwapStats{
		LoadFailures:  rt.loadFailures.Load(),
		StoreFailures: rt.storeFailures.Load(),
		Retries:       rt.io.Retries(),
		ObjectsLost:   rt.objectsLost.Load(),
	}
}

// SwapErrors returns the recorded swap failures (up to the first
// maxRecordedSwapErrors of them; SwapStats has the full counts).
func (rt *Runtime) SwapErrors() []SwapError {
	rt.semu.Lock()
	defer rt.semu.Unlock()
	return append([]SwapError(nil), rt.swapErrs...)
}

// noteSwapError updates the counters on both the runtime and the ooc layer,
// records the error, and invokes the application callback. Callers must not
// hold any object lock (the callback is application code).
func (rt *Runtime) noteSwapError(e SwapError) {
	if e.Op == SwapStore {
		rt.storeFailures.Add(1)
		rt.mem.NoteStoreFailure()
	} else {
		rt.loadFailures.Add(1)
		rt.mem.NoteLoadFailure()
	}
	if e.Lost {
		rt.objectsLost.Add(1)
		rt.mem.NoteObjectLost()
	}
	rt.semu.Lock()
	if len(rt.swapErrs) < maxRecordedSwapErrors {
		rt.swapErrs = append(rt.swapErrs, e)
	}
	rt.semu.Unlock()
	if rt.onSwapError != nil {
		rt.onSwapError(e)
	}
}

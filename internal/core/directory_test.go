package core

import (
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// newPolicyCluster builds a cluster with the given directory policy.
func newPolicyCluster(t testing.TB, n int, policy DirectoryPolicy) *cluster {
	t.Helper()
	tr := comm.NewInProc(n, comm.LatencyModel{})
	c := &cluster{tr: tr}
	for i := 0; i < n; i++ {
		rt := NewRuntime(Config{
			Endpoint:  tr.Endpoint(comm.NodeID(i)),
			Pool:      sched.NewWorkStealing(2),
			Factory:   testFactory,
			Mem:       ooc.Config{Budget: 1 << 20},
			Store:     storage.NewMem(),
			Directory: policy,
			NumNodes:  n,
		})
		c.rts = append(c.rts, rt)
	}
	t.Cleanup(func() {
		WaitQuiescence(c.rts...)
		for _, rt := range c.rts {
			rt.Close()
		}
		tr.Close()
	})
	return c
}

func TestDirectoryPolicyString(t *testing.T) {
	if DirLazy.String() != "lazy" || DirEager.String() != "eager" || DirHome.String() != "home" {
		t.Error("policy names wrong")
	}
	if len(DirectoryPolicies()) != 3 {
		t.Error("expected 3 policies")
	}
}

// migrateAndSettle moves ptr from node 0 to node 1 and waits until it lands.
func migrateAndSettle(t *testing.T, c *cluster, ptr MobilePtr) {
	t.Helper()
	if err := c.rts[0].Migrate(ptr, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.rts[1].IsLocal(ptr) {
		if time.Now().After(deadline) {
			t.Fatal("migration did not settle")
		}
		time.Sleep(time.Millisecond)
	}
	WaitQuiescence(c.rts...)
}

func TestDeliveryUnderEveryPolicy(t *testing.T) {
	for _, policy := range DirectoryPolicies() {
		t.Run(policy.String(), func(t *testing.T) {
			c := newPolicyCluster(t, 3, policy)
			registerInc(c)
			obj := &testObj{}
			ptr := c.rts[0].CreateObject(obj)
			migrateAndSettle(t, c, ptr)
			// Post from a third node repeatedly; all must arrive.
			for i := 0; i < 20; i++ {
				c.rts[2].Post(ptr, hInc, nil)
			}
			WaitQuiescence(c.rts...)
			got := make(chan int64, 1)
			c.rts[1].Register(98, func(ctx *Ctx, arg []byte) {
				got <- ctx.Object().(*testObj).Count
			})
			c.rts[1].Post(ptr, 98, nil)
			if v := <-got; v != 20 {
				t.Fatalf("count = %d, want 20", v)
			}
		})
	}
}

func TestLazyForwardsOnceThenDirect(t *testing.T) {
	c := newPolicyCluster(t, 3, DirLazy)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{})
	migrateAndSettle(t, c, ptr)

	// First post from node 2 goes to home (node 0) and is forwarded.
	c.rts[2].Post(ptr, hInc, nil)
	WaitQuiescence(c.rts...)
	first := c.rts[0].ForwardedCount()
	if first == 0 {
		t.Fatal("expected the first message to be forwarded via home")
	}
	// After the lazy update, subsequent posts go direct: no new forwards.
	for i := 0; i < 10; i++ {
		c.rts[2].Post(ptr, hInc, nil)
	}
	WaitQuiescence(c.rts...)
	if got := c.rts[0].ForwardedCount(); got != first {
		t.Fatalf("forwards grew from %d to %d; lazy update did not take", first, got)
	}
}

func TestHomeAlwaysForwards(t *testing.T) {
	c := newPolicyCluster(t, 3, DirHome)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{})
	migrateAndSettle(t, c, ptr)
	for i := 0; i < 10; i++ {
		c.rts[2].Post(ptr, hInc, nil)
		WaitQuiescence(c.rts...)
	}
	// Every one of the 10 posts is a double hop through home.
	if got := c.rts[0].ForwardedCount(); got < 10 {
		t.Fatalf("home policy forwarded %d of 10 messages", got)
	}
}

func TestEagerNeverForwards(t *testing.T) {
	c := newPolicyCluster(t, 3, DirEager)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{})
	migrateAndSettle(t, c, ptr)
	// The broadcast must already have reached node 2; give it a moment.
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		c.rts[2].Post(ptr, hInc, nil)
	}
	WaitQuiescence(c.rts...)
	if got := c.rts[0].ForwardedCount(); got != 0 {
		t.Fatalf("eager policy still forwarded %d messages via home", got)
	}
	// And the broadcast itself must be accounted.
	if c.rts[0].DirUpdatesSent() == 0 {
		t.Fatal("eager migration sent no directory updates")
	}
}

package core

import "sync"

// Locator is the routing seam: it answers "where do I send a message for
// this mobile pointer first?" and absorbs the staleness feedback that keeps
// that answer fresh. The runtime consults it on every non-local Post, after
// every migration, and whenever a forwarded message finally reaches its
// object. Implementations must be safe for concurrent use and must never
// acquire runtime locks (the runtime calls Locate while holding rt.mu on the
// re-route path).
//
// Two families exist: NewPolicyLocator wraps the paper's home-anchored
// policies (lazy forwarding chains, eager broadcast, pure home routing), and
// cluster.NewPlacedLocator resolves the first hop straight off the
// epoch-versioned consistent-hash directory so a settled object costs one
// hop regardless of where it was born.
type Locator interface {
	// Locate returns the first hop for ptr plus the epoch of the resolution
	// (0 for unversioned locators). Returning the local node parks the
	// message until an install or directory update re-routes it.
	Locate(ptr MobilePtr) (NodeID, uint64)
	// Epoch returns the locator's current version. A received message whose
	// carried epoch differs was resolved against a stale view; the runtime
	// counts it and re-resolves instead of trusting the old chain.
	Epoch() uint64
	// Note records an observed location: ptr was seen (or installed) at the
	// given node. Implementations should treat a matching cached entry as a
	// no-op without taking their write lock — Note runs on the forward path.
	Note(ptr MobilePtr, at NodeID)
	// Forget drops any cached location for ptr, called when the object
	// installs locally (the objects table now answers before the locator).
	Forget(ptr MobilePtr)
	// FeedbackTargets returns the stale nodes to repair after a forwarded
	// message is delivered here. route is the full forwarding chain in hop
	// order; the final entry routed correctly and needs no update.
	FeedbackTargets(route []NodeID) []NodeID
	// MigrateTargets returns the nodes to proactively notify when a local
	// object migrates from here to dest (dest itself learns via the install).
	MigrateTargets(ptr MobilePtr, dest NodeID) []NodeID
	// Cached snapshots the cached location table for checkpointing.
	Cached() map[MobilePtr]NodeID
	// String names the locator in reports and bench tables.
	String() string
}

// policyLocator implements the paper's three home-anchored directory
// policies behind the Locator seam. The location cache lives here, off
// rt.mu: Locate and the matching-entry fast path of Note take only a read
// lock, so forward-path traffic no longer serializes against object-table
// mutations.
type policyLocator struct {
	policy DirectoryPolicy
	self   NodeID
	nodes  int // cluster size, for the eager broadcast (0 disables it)

	mu  sync.RWMutex
	dir map[MobilePtr]NodeID
}

// NewPolicyLocator builds the home-anchored locator for one of the paper's
// directory policies. self is the owning node; nodes is the cluster size
// (used only by DirEager to enumerate broadcast targets; 0 disables the
// broadcast).
func NewPolicyLocator(policy DirectoryPolicy, self NodeID, nodes int) Locator {
	return &policyLocator{policy: policy, self: self, nodes: nodes,
		dir: make(map[MobilePtr]NodeID)}
}

// Locate implements Locator.
func (pl *policyLocator) Locate(ptr MobilePtr) (NodeID, uint64) {
	if pl.policy == DirHome && ptr.Home != pl.self {
		// Non-home nodes never cache: always route via home. The home node
		// itself consults its map (it is the forwarding anchor).
		return ptr.Home, 0
	}
	pl.mu.RLock()
	n, ok := pl.dir[ptr]
	pl.mu.RUnlock()
	if ok {
		return n, 0
	}
	return ptr.Home, 0
}

// Epoch implements Locator: the home-anchored policies are unversioned.
func (pl *policyLocator) Epoch() uint64 { return 0 }

// Note implements Locator. The read-locked fast path makes the common case
// — a directory update confirming what is already cached — lock-traffic
// free on the forward path (see BenchmarkLocatorNote*).
func (pl *policyLocator) Note(ptr MobilePtr, at NodeID) {
	if pl.policy == DirHome && ptr.Home != pl.self {
		return // never cached, never read
	}
	pl.mu.RLock()
	cur, ok := pl.dir[ptr]
	pl.mu.RUnlock()
	if ok && cur == at {
		return
	}
	pl.mu.Lock()
	pl.dir[ptr] = at
	pl.mu.Unlock()
}

// Forget implements Locator.
func (pl *policyLocator) Forget(ptr MobilePtr) {
	pl.mu.Lock()
	delete(pl.dir, ptr)
	pl.mu.Unlock()
}

// FeedbackTargets implements Locator: only the lazy policy repairs the
// forwarding chain after delivery ("update messages flow back to every node
// the message was routed through").
func (pl *policyLocator) FeedbackTargets(route []NodeID) []NodeID {
	if pl.policy != DirLazy || len(route) < 2 {
		return nil
	}
	out := make([]NodeID, 0, len(route)-1)
	for _, via := range route[:len(route)-1] {
		if via != pl.self {
			out = append(out, via)
		}
	}
	return out
}

// MigrateTargets implements Locator: every policy informs the home node (the
// routing anchor for nodes with no cache entry); the eager policy
// additionally broadcasts to the whole cluster. Home appears twice under
// eager by design — it mirrors the historical update traffic the dirpolicies
// experiment measures.
func (pl *policyLocator) MigrateTargets(ptr MobilePtr, dest NodeID) []NodeID {
	var out []NodeID
	if ptr.Home != pl.self && ptr.Home != dest {
		out = append(out, ptr.Home)
	}
	if pl.policy == DirEager {
		for n := 0; n < pl.nodes; n++ {
			if NodeID(n) != pl.self && NodeID(n) != dest {
				out = append(out, NodeID(n))
			}
		}
	}
	return out
}

// Cached implements Locator.
func (pl *policyLocator) Cached() map[MobilePtr]NodeID {
	pl.mu.RLock()
	out := make(map[MobilePtr]NodeID, len(pl.dir))
	for p, n := range pl.dir {
		out[p] = n
	}
	pl.mu.RUnlock()
	return out
}

// String implements Locator.
func (pl *policyLocator) String() string { return pl.policy.String() }

// Package core implements the MRTS control layer and programming model: the
// paper's primary contribution. Applications decompose their dataset into
// mobile objects — location-independent, globally addressable containers —
// and drive all computation by posting one-sided messages to mobile
// pointers. The runtime routes messages (locally, to disk-resident objects,
// or across nodes through a distributed directory with lazy updates),
// executes message handlers on the computing layer, swaps objects between
// memory and the storage layer under the out-of-core layer's policies, and
// detects global termination.
//
// The package composes the substrates:
//
//	comm    one-sided active messages between nodes  ("ARMCI")
//	sched   task pools executing handlers            ("TBB"/"GCD")
//	ooc     residency decisions, eviction policies
//	storage serialized object blobs
//	trace   computation/communication/disk accounting
package core

import (
	"errors"
	"fmt"
	"io"

	"mrts/internal/comm"
)

// NodeID identifies a node; it aliases the transport's node ID.
type NodeID = comm.NodeID

// HandlerID identifies a registered message handler. The same handler IDs
// must be registered on every node (SPMD model).
type HandlerID uint32

// MobilePtr is the global identifier of a mobile object: the node that
// created it plus a per-node sequence number. A MobilePtr stays valid when
// the object migrates or is swapped out of core.
type MobilePtr struct {
	Home NodeID
	Seq  uint32
}

// Nil is the zero MobilePtr, addressing nothing.
var Nil MobilePtr

// IsNil reports whether p addresses nothing.
func (p MobilePtr) IsNil() bool { return p == Nil }

// String implements fmt.Stringer.
func (p MobilePtr) String() string { return fmt.Sprintf("mp{%d:%d}", p.Home, p.Seq) }

// Object is the interface a mobile object must implement: serialization for
// out-of-core unloading and migration, plus a size estimate for the memory
// accounting of the out-of-core layer.
type Object interface {
	// TypeID identifies the concrete type to the Factory when the object
	// is reloaded or installed on another node.
	TypeID() uint16
	// EncodeTo serializes the object.
	EncodeTo(w io.Writer) error
	// DecodeFrom restores the object from its serialized form.
	DecodeFrom(r io.Reader) error
	// SizeHint estimates the in-core footprint in bytes. It is re-read
	// after every handler execution, so growing objects (meshes under
	// refinement) keep their accounting current.
	SizeHint() int
}

// Factory constructs an empty Object of the given type, ready for
// DecodeFrom. Every node must use the same factory (SPMD).
type Factory func(typeID uint16) (Object, error)

// Handler is an application message handler. It runs on the node currently
// holding the destination object, with the object loaded in-core, and is
// never run concurrently with another handler of the same object.
type Handler func(c *Ctx, arg []byte)

// maxForwardHops bounds directory-chain forwarding: a message that visited
// this many nodes without finding its object is considered undeliverable and
// dropped (the object was lost — e.g. its type is unknown to a node's
// factory — and unbounded forwarding would livelock the cluster).
const maxForwardHops = 64

// Errors returned by the runtime.
var (
	ErrUnknownObject  = errors.New("core: unknown mobile object")
	ErrUnknownHandler = errors.New("core: unknown handler")
	ErrUnknownType    = errors.New("core: unknown object type")
	ErrNotLocal       = errors.New("core: object is not local")
	ErrBusy           = errors.New("core: object is busy")
	ErrShutdown       = errors.New("core: runtime is shut down")
	ErrObjectLost     = errors.New("core: mobile object lost to a storage failure")
	ErrNoSnapshot     = errors.New("core: object has no speculation snapshot")
)

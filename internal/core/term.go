package core

import (
	"encoding/binary"
	"sync"
	"time"

	"mrts/internal/comm"
)

// This file implements distributed termination detection over the transport
// itself — the paper's control layer detects "when no message handlers are
// executing and no messages are being delivered" without a shared-memory
// oracle. The algorithm is the classic double-count (Mattern's four-counter
// method): a coordinator polls every node for (work, sent, received); if two
// consecutive polls return identical, balanced totals, no message can have
// been in flight between them, and the coordinator announces termination.
//
// WaitQuiescence (runtime.go) is the driver-level shortcut usable because
// all simulated nodes share one process; WaitTermination is the faithful
// message-based protocol, used the same way from every node (SPMD).

// Wire kinds for termination detection.
const (
	wireTermProbe    uint32 = 6 // coordinator -> node: report your counters
	wireTermReply    uint32 = 7 // node -> coordinator: (epoch, work, sent, recv)
	wireTermAnnounce uint32 = 8 // coordinator -> node: generation terminated
)

// termState tracks a node's participation in distributed termination.
type termState struct {
	mu        sync.Mutex
	announced uint64 // latest terminated generation
	waiters   []chan struct{}

	// Coordinator state (node 0 only).
	replyCh chan termReply
}

type termReply struct {
	epoch uint64
	work  int64
	sent  int64
	recv  int64
}

func newTermState() *termState {
	return &termState{replyCh: make(chan termReply, 64)}
}

func (ts *termState) generation() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.announced
}

// WaitTermination blocks until the coordinator (node 0) announces a
// termination generation newer than the one observed at entry. Every node of
// the cluster must call it (SPMD); node 0 additionally runs the coordinator
// until its own wait is satisfied. numNodes is the cluster size.
//
// The protocol works for repeated phases: post more work after it returns
// and call it again.
func (rt *Runtime) WaitTermination(numNodes int) {
	ts := rt.term
	ts.mu.Lock()
	entryGen := ts.announced
	ch := make(chan struct{})
	ts.waiters = append(ts.waiters, ch)
	ts.mu.Unlock()

	if rt.node == 0 {
		rt.coordinate(numNodes, entryGen)
	}
	<-ch
}

// coordinate polls all nodes until a stable balanced double count, then
// announces generation entryGen+1 to everyone (including itself).
func (rt *Runtime) coordinate(numNodes int, entryGen uint64) {
	ts := rt.term
	epoch := entryGen << 20 // epochs namespaced per generation
	var prev *[3]int64
	for {
		// Already announced by a concurrent phase? (Defensive; single
		// coordinator in practice.)
		if ts.generation() > entryGen {
			return
		}
		epoch++
		var probe [8]byte
		binary.LittleEndian.PutUint64(probe[:], epoch)
		for n := 1; n < numNodes; n++ {
			_ = rt.ep.Send(NodeID(n), wireTermProbe, probe[:])
		}
		// The coordinator's own counters join the tally directly.
		totals := [3]int64{rt.Work(), rt.sent.Load(), rt.recv.Load()}
		needed := numNodes - 1
		timeout := rt.clk.After(time.Second)
		for needed > 0 {
			select {
			case r := <-ts.replyCh:
				if r.epoch != epoch {
					continue // stale reply from an earlier probe round
				}
				totals[0] += r.work
				totals[1] += r.sent
				totals[2] += r.recv
				needed--
			case <-timeout:
				needed = -1 // lost probe/reply; retry the round
			}
		}
		if needed == 0 && totals[0] == 0 && totals[1] == totals[2] {
			if prev != nil && *prev == totals {
				// Two identical balanced counts: terminated.
				gen := entryGen + 1
				var ann [8]byte
				binary.LittleEndian.PutUint64(ann[:], gen)
				for n := 1; n < numNodes; n++ {
					_ = rt.ep.Send(NodeID(n), wireTermAnnounce, ann[:])
				}
				rt.onTerminated(gen)
				return
			}
			prev = &totals
		} else {
			prev = nil
		}
		rt.clk.Sleep(500 * time.Microsecond)
	}
}

func (rt *Runtime) onWireTermProbe(msg comm.Message) {
	if len(msg.Payload) != 8 {
		return
	}
	var reply [32]byte
	copy(reply[0:8], msg.Payload)
	binary.LittleEndian.PutUint64(reply[8:16], uint64(rt.Work()))
	binary.LittleEndian.PutUint64(reply[16:24], uint64(rt.sent.Load()))
	binary.LittleEndian.PutUint64(reply[24:32], uint64(rt.recv.Load()))
	_ = rt.ep.Send(msg.From, wireTermReply, reply[:])
}

func (rt *Runtime) onWireTermReply(msg comm.Message) {
	if len(msg.Payload) != 32 {
		return
	}
	r := termReply{
		epoch: binary.LittleEndian.Uint64(msg.Payload[0:8]),
		work:  int64(binary.LittleEndian.Uint64(msg.Payload[8:16])),
		sent:  int64(binary.LittleEndian.Uint64(msg.Payload[16:24])),
		recv:  int64(binary.LittleEndian.Uint64(msg.Payload[24:32])),
	}
	select {
	case rt.term.replyCh <- r:
	default: // coordinator gone or slow; drop
	}
}

func (rt *Runtime) onWireTermAnnounce(msg comm.Message) {
	if len(msg.Payload) != 8 {
		return
	}
	rt.onTerminated(binary.LittleEndian.Uint64(msg.Payload))
}

// onTerminated releases all waiters once a new generation is announced.
func (rt *Runtime) onTerminated(gen uint64) {
	ts := rt.term
	ts.mu.Lock()
	if gen > ts.announced {
		ts.announced = gen
	}
	waiters := ts.waiters
	ts.waiters = nil
	ts.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

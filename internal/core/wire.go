package core

import (
	"encoding/binary"
	"fmt"
)

// Transport-level message kinds (comm handler IDs).
const (
	wireApp       uint32 = 1 // application message to a mobile pointer
	wireDirUpdate uint32 = 2 // lazy directory update
	wireInstall   uint32 = 3 // object migration payload
)

// appMsg is an application message on the wire or in an object queue.
type appMsg struct {
	dst     MobilePtr
	handler HandlerID
	sentAt  int64  // unix nanos at original send, for comm-time accounting
	epoch   uint64 // locator epoch at last resolution (0 = unversioned)
	route   []NodeID
	arg     []byte
}

func putPtr(b []byte, p MobilePtr) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(p.Home))
	binary.LittleEndian.PutUint32(b[4:8], p.Seq)
}

func getPtr(b []byte) MobilePtr {
	return MobilePtr{
		Home: NodeID(int32(binary.LittleEndian.Uint32(b[0:4]))),
		Seq:  binary.LittleEndian.Uint32(b[4:8]),
	}
}

// encodeApp encodes an application message.
// Layout: ptr(8) handler(4) sentAt(8) epoch(8) routeLen(2) route(4 each)
// argLen(4) arg.
func encodeApp(m *appMsg) []byte {
	n := 8 + 4 + 8 + 8 + 2 + 4*len(m.route) + 4 + len(m.arg)
	b := make([]byte, n)
	putPtr(b[0:8], m.dst)
	binary.LittleEndian.PutUint32(b[8:12], uint32(m.handler))
	binary.LittleEndian.PutUint64(b[12:20], uint64(m.sentAt))
	binary.LittleEndian.PutUint64(b[20:28], m.epoch)
	binary.LittleEndian.PutUint16(b[28:30], uint16(len(m.route)))
	off := 30
	for _, r := range m.route {
		binary.LittleEndian.PutUint32(b[off:off+4], uint32(r))
		off += 4
	}
	binary.LittleEndian.PutUint32(b[off:off+4], uint32(len(m.arg)))
	off += 4
	copy(b[off:], m.arg)
	return b
}

func decodeApp(b []byte) (*appMsg, error) {
	if len(b) < 34 {
		return nil, fmt.Errorf("core: short app message (%d bytes)", len(b))
	}
	m := &appMsg{
		dst:     getPtr(b[0:8]),
		handler: HandlerID(binary.LittleEndian.Uint32(b[8:12])),
		sentAt:  int64(binary.LittleEndian.Uint64(b[12:20])),
		epoch:   binary.LittleEndian.Uint64(b[20:28]),
	}
	nr := int(binary.LittleEndian.Uint16(b[28:30]))
	off := 30
	if len(b) < off+4*nr+4 {
		return nil, fmt.Errorf("core: truncated app message route")
	}
	for i := 0; i < nr; i++ {
		m.route = append(m.route, NodeID(int32(binary.LittleEndian.Uint32(b[off:off+4]))))
		off += 4
	}
	na := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	if len(b) < off+na {
		return nil, fmt.Errorf("core: truncated app message arg")
	}
	m.arg = b[off : off+na]
	return m, nil
}

// encodeDirUpdate encodes a directory update: "object ptr now lives at node".
func encodeDirUpdate(p MobilePtr, at NodeID) []byte {
	b := make([]byte, 12)
	putPtr(b[0:8], p)
	binary.LittleEndian.PutUint32(b[8:12], uint32(at))
	return b
}

func decodeDirUpdate(b []byte) (MobilePtr, NodeID, error) {
	if len(b) != 12 {
		return Nil, 0, fmt.Errorf("core: bad dir update (%d bytes)", len(b))
	}
	return getPtr(b[0:8]), NodeID(int32(binary.LittleEndian.Uint32(b[8:12]))), nil
}

// install carries a migrating object: its identity, serialized state, OOC
// hints, pending message queue, and — when the object was mid-speculation —
// its speculation snapshot (a snapshotted object is as mobile as any other;
// the conflict-resolution multicast depends on pulling losers).
type install struct {
	ptr      MobilePtr
	typeID   uint16
	priority int32
	locked   bool
	blob     []byte
	queue    []queued
	snap     []byte // speculation snapshot; nil = none
}

type queued struct {
	handler HandlerID
	sentAt  int64
	arg     []byte
}

func encodeInstall(in *install) []byte {
	n := 8 + 2 + 4 + 1 + 4 + len(in.blob) + 4
	for _, q := range in.queue {
		n += 4 + 8 + 4 + len(q.arg)
	}
	n++ // snapshot flag
	if in.snap != nil {
		n += 4 + len(in.snap)
	}
	b := make([]byte, n)
	putPtr(b[0:8], in.ptr)
	binary.LittleEndian.PutUint16(b[8:10], in.typeID)
	binary.LittleEndian.PutUint32(b[10:14], uint32(in.priority))
	if in.locked {
		b[14] = 1
	}
	binary.LittleEndian.PutUint32(b[15:19], uint32(len(in.blob)))
	off := 19
	copy(b[off:], in.blob)
	off += len(in.blob)
	binary.LittleEndian.PutUint32(b[off:off+4], uint32(len(in.queue)))
	off += 4
	for _, q := range in.queue {
		binary.LittleEndian.PutUint32(b[off:off+4], uint32(q.handler))
		binary.LittleEndian.PutUint64(b[off+4:off+12], uint64(q.sentAt))
		binary.LittleEndian.PutUint32(b[off+12:off+16], uint32(len(q.arg)))
		off += 16
		copy(b[off:], q.arg)
		off += len(q.arg)
	}
	if in.snap != nil {
		b[off] = 1
		binary.LittleEndian.PutUint32(b[off+1:off+5], uint32(len(in.snap)))
		off += 5
		copy(b[off:], in.snap)
	}
	return b
}

func decodeInstall(b []byte) (*install, error) {
	if len(b) < 23 {
		return nil, fmt.Errorf("core: short install (%d bytes)", len(b))
	}
	in := &install{
		ptr:      getPtr(b[0:8]),
		typeID:   binary.LittleEndian.Uint16(b[8:10]),
		priority: int32(binary.LittleEndian.Uint32(b[10:14])),
		locked:   b[14] == 1,
	}
	nb := int(binary.LittleEndian.Uint32(b[15:19]))
	off := 19
	if len(b) < off+nb+4 {
		return nil, fmt.Errorf("core: truncated install blob")
	}
	in.blob = b[off : off+nb]
	off += nb
	nq := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	for i := 0; i < nq; i++ {
		if len(b) < off+16 {
			return nil, fmt.Errorf("core: truncated install queue")
		}
		q := queued{
			handler: HandlerID(binary.LittleEndian.Uint32(b[off : off+4])),
			sentAt:  int64(binary.LittleEndian.Uint64(b[off+4 : off+12])),
		}
		na := int(binary.LittleEndian.Uint32(b[off+12 : off+16]))
		off += 16
		if len(b) < off+na {
			return nil, fmt.Errorf("core: truncated install queue arg")
		}
		q.arg = b[off : off+na]
		off += na
		in.queue = append(in.queue, q)
	}
	// Trailing speculation snapshot: flag byte, then len+bytes when set.
	// Absence of the section (an old-format frame) decodes as no snapshot.
	if off < len(b) && b[off] == 1 {
		if len(b) < off+5 {
			return nil, fmt.Errorf("core: truncated install snapshot header")
		}
		ns := int(binary.LittleEndian.Uint32(b[off+1 : off+5]))
		off += 5
		if len(b) < off+ns {
			return nil, fmt.Errorf("core: truncated install snapshot")
		}
		in.snap = b[off : off+ns]
	}
	return in, nil
}

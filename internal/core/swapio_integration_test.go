package core

import (
	"errors"
	"testing"
	"time"

	"mrts/internal/storage"
)

// waitHas polls the predicate about a key's presence in rt's backing store.
func waitStoreCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDestroyObjectDeletesBlob: destroying a swapped-out object must remove
// its on-disk blob (satellite: blobs must not outlive their objects) and
// leave a tombstone that refuses further operations.
func TestDestroyObjectDeletesBlob(t *testing.T) {
	rt, _ := newSwapFaultRuntime(t, storage.NewMem(), 1<<20, storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Count: 3, Ballast: make([]byte, 512)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	key := storeKey(ptr)
	if !rt.io.Backing().Has(key) {
		t.Fatal("no blob on disk after eviction")
	}
	if err := rt.DestroyObject(ptr); err != nil {
		t.Fatal(err)
	}
	waitStoreCond(t, "blob deletion", func() bool { return !rt.io.Backing().Has(key) })
	if err := rt.DestroyObject(ptr); !errors.Is(err, ErrObjectLost) {
		t.Fatalf("second destroy: want ErrObjectLost, got %v", err)
	}
	if rt.InCore(ptr) {
		t.Fatal("destroyed object reports in-core")
	}
	// Late posts to the tombstone must not wedge termination.
	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)
}

// TestDestroyObjectNotLocal: destroying an unknown pointer fails cleanly.
func TestDestroyObjectNotLocal(t *testing.T) {
	rt, _ := newSwapFaultRuntime(t, storage.NewMem(), 1<<20, storage.RetryPolicy{})
	if err := rt.DestroyObject(MobilePtr{Home: 9, Seq: 42}); !errors.Is(err, ErrNotLocal) {
		t.Fatalf("want ErrNotLocal, got %v", err)
	}
}

// TestMigrateAwayDeletesBlob: when an object leaves the node, its stale
// blob must leave the node's spool with it.
func TestMigrateAwayDeletesBlob(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{Count: 5, Ballast: make([]byte, 512)})
	if got := evictAndSettle(t, c.rts[0], ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	key := storeKey(ptr)
	if !c.rts[0].io.Backing().Has(key) {
		t.Fatal("no blob on node 0 after eviction")
	}
	if err := c.rts[0].Migrate(ptr, 1); err != nil {
		t.Fatal(err)
	}
	WaitQuiescence(c.rts...)
	waitStoreCond(t, "stale blob deletion on node 0", func() bool {
		return !c.rts[0].io.Backing().Has(key)
	})
	// The object itself survives the move with its state.
	c.rts[1].Post(ptr, hInc, nil)
	WaitQuiescence(c.rts...)
	if !c.rts[1].IsLocal(ptr) {
		t.Fatal("object not on node 1 after migration")
	}
}

// TestMigrateInCoreDeletesStaleBlob: an object that was evicted, reloaded,
// and then migrated while in-core leaves a stale blob behind unless the
// migration path deletes it unconditionally.
func TestMigrateInCoreDeletesStaleBlob(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{Ballast: make([]byte, 512)})
	if got := evictAndSettle(t, c.rts[0], ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	// Reload by posting: the object comes back in-core; the blob remains.
	c.rts[0].Post(ptr, hInc, nil)
	WaitQuiescence(c.rts...)
	if !c.rts[0].InCore(ptr) {
		t.Fatal("object not back in core")
	}
	key := storeKey(ptr)
	if err := c.rts[0].Migrate(ptr, 1); err != nil {
		t.Fatal(err)
	}
	WaitQuiescence(c.rts...)
	waitStoreCond(t, "stale blob deletion on node 0", func() bool {
		return !c.rts[0].io.Backing().Has(key)
	})
}

// TestEvictVictimsReportsFailure: when every candidate is pinned,
// evictVictims must return false and the hard path must count a loud stall
// rather than spin.
func TestEvictVictimsReportsFailure(t *testing.T) {
	rt, _ := newSwapFaultRuntime(t, storage.NewMem(), 4096, storage.RetryPolicy{})
	var ptrs []MobilePtr
	for i := 0; i < 3; i++ {
		p := rt.CreateObject(&testObj{Ballast: make([]byte, 1000)})
		if !rt.Lock(p) {
			t.Fatalf("Lock(%v) = false for a local object", p)
		}
		ptrs = append(ptrs, p)
	}
	// The residual demands that usage drop below ~one object's footprint.
	residual := func() int64 {
		if used := rt.mem.MemUsed(); used > 1000 {
			return used - 1000
		}
		return 0
	}
	if rt.evictVictims(residual(), Nil, residual) {
		t.Fatal("evictVictims reported success with every candidate locked")
	}
	for _, p := range ptrs {
		rt.Unlock(p)
	}
	// Unpinned, the same pass succeeds (second-scan behaviour: candidates
	// that were busy earlier are re-picked).
	if !rt.evictVictims(residual(), Nil, residual) {
		t.Fatal("evictVictims failed with idle unpinned candidates")
	}
	waitQuiesceOrFail(t, rt)
}

// TestEvictStallCounted: hard-threshold pressure against fully pinned
// residents surfaces as an EvictStalls count, not silence.
func TestEvictStallCounted(t *testing.T) {
	// Budget fits ~2 objects; pin both residents, then force a third to
	// load — the make-room pass on the load path cannot free anything.
	rt, _ := newSwapFaultRuntime(t, storage.NewMem(), 2600, storage.RetryPolicy{})
	victim := rt.CreateObject(&testObj{Ballast: make([]byte, 1000)})
	if got := evictAndSettle(t, rt, victim); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	var pinned []MobilePtr
	for i := 0; i < 2; i++ {
		p := rt.CreateObject(&testObj{Ballast: make([]byte, 1000)})
		rt.Lock(p)
		pinned = append(pinned, p)
	}
	rt.Post(victim, hInc, nil) // demand load with nothing evictable
	waitQuiesceOrFail(t, rt)
	if rt.EvictStalls() == 0 {
		t.Fatal("hard-path eviction failure was not counted as a stall")
	}
	for _, p := range pinned {
		rt.Unlock(p)
	}
}

// TestPrefetchReturnsLocality: the Prefetch/Lock bool contract (satellite:
// call sites can now assert locality).
func TestPrefetchReturnsLocality(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{})
	if !c.rts[0].Prefetch(ptr) {
		t.Fatal("Prefetch of a local object = false")
	}
	if c.rts[1].Prefetch(ptr) {
		t.Fatal("Prefetch of a remote object = true")
	}
	if !c.rts[0].Lock(ptr) {
		t.Fatal("Lock of a local object = false")
	}
	c.rts[0].Unlock(ptr)
	if c.rts[1].Lock(ptr) {
		t.Fatal("Lock of a remote object = true")
	}
}

// TestRuntimeCoalescesDuplicateLoads: many posts racing against one
// swapped-out object issue exactly one storage read (runtime-level view of
// the scheduler's coalescing; the queue also serializes via stLoading).
func TestRuntimeCoalescesDuplicateLoads(t *testing.T) {
	st := storage.NewMem()
	rt, _ := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	before := st.Stats().Gets
	for i := 0; i < 20; i++ {
		rt.Post(ptr, hInc, nil)
	}
	waitQuiesceOrFail(t, rt)
	if got := st.Stats().Gets - before; got != 1 {
		t.Fatalf("20 racing posts issued %d reads, want 1", got)
	}
	if !rt.InCore(ptr) {
		t.Fatal("object not in core after the posts drained")
	}
}

// TestIOStatsSurface: the runtime exposes the scheduler's counters.
func TestIOStatsSurface(t *testing.T) {
	rt, _ := newSwapFaultRuntime(t, storage.NewMem(), 1<<20, storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)
	st := rt.IOStats()
	if st.Writes == 0 {
		t.Fatalf("no eviction write counted: %+v", st)
	}
	if st.DemandLoads == 0 || st.CompletedDemand == 0 {
		t.Fatalf("no demand load counted: %+v", st)
	}
}

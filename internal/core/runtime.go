package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/bufpool"
	"mrts/internal/clock"
	"mrts/internal/comm"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
	"mrts/internal/swapio"
	"mrts/internal/trace"
)

// Config configures one node's runtime.
type Config struct {
	// Endpoint is this node's attachment to the cluster transport.
	Endpoint comm.Endpoint
	// Pool executes message handlers and their nested tasks. The pool's
	// worker count is the node's PE count.
	Pool sched.Pool
	// Factory constructs objects by type ID for reload and migration.
	Factory Factory
	// Mem configures the out-of-core layer (budget, policy, thresholds).
	Mem ooc.Config
	// Store holds serialized objects unloaded from memory.
	Store storage.Store
	// IOWorkers is the swap I/O scheduler's worker count (<= 0 means 2).
	IOWorkers int
	// QueueDepth bounds the I/O scheduler's backlog: when this many
	// requests are queued, speculative prefetch submissions are refused
	// until the backlog drains (<= 0 means 64). Demand loads and eviction
	// writes are never bounded.
	QueueDepth int
	// Retry configures transparent retry with exponential backoff for
	// transient storage faults inside the I/O scheduler. The zero value
	// means a single attempt per operation.
	Retry storage.RetryPolicy
	// OnSwapError, when non-nil, receives every swap-path failure that
	// survived the retry budget: failed eviction writes (the object stays
	// in core) and failed loads (the object is lost and its queue dropped).
	// It runs on a runtime goroutine and must not block.
	OnSwapError func(SwapError)
	// Collector, when non-nil, receives comp/comm/disk time accounting.
	Collector *trace.Collector
	// Tracer, when non-nil, receives structured trace events for the swap
	// lifecycle (evict/load/retry/storefail/lost), application handler
	// execution, and multicast progress. Events from the transport and the
	// task pool are recorded by installing the same tracer there (see
	// comm.Endpoint.SetTracer and sched.Pool.SetTracer); cluster.New wires
	// all three from one TraceSink.
	Tracer *obs.Tracer
	// CommDelay, when non-nil, gives the modeled wire time of a received
	// message of the given payload size; it is charged to the Comm
	// account. The in-process transport serializes these delays on its
	// dispatcher, so per-node Comm time never exceeds wall time. Nil means
	// communication is free (no accounting).
	CommDelay func(payloadSize int) time.Duration
	// DiskDelay, when non-nil, gives the modeled service time of one disk
	// operation on a blob of the given size; it is charged to the Disk
	// account per store/load instead of the measured wait (which would
	// multiply queueing time across concurrent waiters). Nil falls back to
	// measuring the operations.
	DiskDelay func(blobSize int) time.Duration
	// PrefetchDepth bounds how many out-of-core objects the runtime loads
	// ahead of need when memory is available (<= 0 means 2).
	PrefetchDepth int
	// Directory selects the location-management policy (default DirLazy,
	// the paper's choice). Ignored when Locator is set.
	Directory DirectoryPolicy
	// NumNodes is the cluster size, needed by the eager directory policy
	// to broadcast migrations. Zero disables broadcasting. Ignored when
	// Locator is set.
	NumNodes int
	// Locator, when non-nil, replaces the home-anchored policy locator as
	// the routing seam: first-hop resolution, the location cache, and the
	// staleness-feedback fan-outs all go through it. cluster.New injects a
	// directory-backed locator here for placement-aware routing.
	Locator Locator
	// Clock is the time source for message timestamps, handler accounting,
	// termination probing and swap waits. Nil means the wall clock; the
	// simulation harness injects a virtual clock. It is also the default
	// clock of the I/O scheduler and the retry backoff.
	Clock clock.Clock
}

// objState is the residency state of a local object.
type objState int32

const (
	stInCore objState = iota
	stStoring
	stOut
	stLoading
	// stLost is terminal: the object's blob could not be read back (or
	// decoded) after the retry budget, so the object is unreachable.
	// Messages to a lost object are dropped so termination still fires.
	stLost
)

type localObject struct {
	mu     sync.Mutex
	ptr    MobilePtr
	typeID uint16
	obj    Object // nil unless in-core
	state  objState
	queue  []queued

	scheduled bool // a drain task is queued or running
	running   bool // a handler is executing right now
	wantLoad  bool // load requested while storing
	migrating bool
}

// Runtime is one node's MRTS instance.
type Runtime struct {
	node    NodeID
	ep      comm.Endpoint
	pool    sched.Pool
	factory Factory
	mem     *ooc.Manager
	io      *swapio.Scheduler
	col     *trace.Collector
	tracer  *obs.Tracer
	clk     clock.Clock
	pfDepth int

	mu      sync.Mutex
	objects map[MobilePtr]*localObject
	parked  map[MobilePtr][]*appMsg
	seq     uint32

	// loc is the routing seam (first-hop resolution + location cache). It
	// lives outside rt.mu: Locate/Note never touch the object table, and
	// the locator never takes runtime locks.
	loc Locator

	hmu      sync.RWMutex
	handlers map[HandlerID]Handler

	work    atomic.Int64 // messages materialized on this node, not yet done
	sent    atomic.Int64 // app/install messages sent to other nodes
	recv    atomic.Int64 // app/install messages received from other nodes
	swapOps atomic.Int64 // evictions/loads in flight (Close waits on this)

	loadFailures  atomic.Uint64
	storeFailures atomic.Uint64
	objectsLost   atomic.Uint64
	evictStalls   atomic.Uint64
	onSwapError   func(SwapError)
	semu          sync.Mutex
	swapErrs      []SwapError

	commDelay func(int) time.Duration
	diskDelay func(int) time.Duration

	dstats dirStats

	// Speculation snapshots (SnapshotObject / RollbackObject): the encoded
	// pre-speculation state of local objects, keyed by pointer. The table
	// owns the pooled blobs; every exit path (rollback, commit, loss,
	// destroy, migration hand-off) returns them to the arena.
	snapMu sync.Mutex
	snaps  map[MobilePtr][]byte

	snapTaken     atomic.Uint64
	snapRollbacks atomic.Uint64
	snapCommits   atomic.Uint64
	snapDiscards  atomic.Uint64

	closed atomic.Bool

	mcasts *mcastTable
	term   *termState
}

// NewRuntime creates the runtime for one node and registers its transport
// handlers. The caller retains ownership of the Endpoint and Pool; the
// runtime owns the Store (wrapping it in the swap I/O scheduler) and closes
// it on Close.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Endpoint == nil || cfg.Pool == nil || cfg.Store == nil {
		panic("core: Config requires Endpoint, Pool and Store")
	}
	if cfg.Factory == nil {
		cfg.Factory = func(t uint16) (Object, error) { return nil, ErrUnknownType }
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 2
	}
	clk := clock.Or(cfg.Clock)
	mem := ooc.NewManager(cfg.Mem)
	// Mirror every absorbed retry into the ooc layer's accounting and the
	// event tracer, chaining any observer the caller installed.
	retry := cfg.Retry
	userRetryHook := retry.OnRetry
	tracer := cfg.Tracer
	retry.OnRetry = func(key storage.Key, attempt int, err error) {
		mem.NoteRetries(1)
		tracer.Emit(obs.KindSwapRetry, 0, int64(attempt))
		if userRetryHook != nil {
			userRetryHook(key, attempt, err)
		}
	}
	loc := cfg.Locator
	if loc == nil {
		loc = NewPolicyLocator(cfg.Directory, cfg.Endpoint.Node(), cfg.NumNodes)
	}
	rt := &Runtime{
		node:    cfg.Endpoint.Node(),
		ep:      cfg.Endpoint,
		pool:    cfg.Pool,
		factory: cfg.Factory,
		mem:     mem,
		loc:     loc,
		io: swapio.New(cfg.Store, swapio.Config{
			Workers:    cfg.IOWorkers,
			QueueBound: cfg.QueueDepth,
			Retry:      retry,
			Tracer:     cfg.Tracer,
			Clock:      cfg.Clock,
		}),
		col:       cfg.Collector,
		tracer:    cfg.Tracer,
		clk:       clk,
		pfDepth:   cfg.PrefetchDepth,
		objects:   make(map[MobilePtr]*localObject),
		parked:    make(map[MobilePtr][]*appMsg),
		snaps:     make(map[MobilePtr][]byte),
		handlers:  make(map[HandlerID]Handler),
		mcasts:    newMcastTable(),
		term:      newTermState(),
		commDelay: cfg.CommDelay,
		diskDelay: cfg.DiskDelay,
	}
	rt.onSwapError = cfg.OnSwapError
	rt.ep.Register(wireApp, rt.onWireApp)
	rt.ep.Register(wireDirUpdate, rt.onWireDirUpdate)
	rt.ep.Register(wireInstall, rt.onWireInstall)
	rt.ep.Register(wireMcast, rt.onWireMcast)
	rt.ep.Register(wireMigrateReq, rt.onWireMigrateReq)
	rt.ep.Register(wireTermProbe, rt.onWireTermProbe)
	rt.ep.Register(wireTermReply, rt.onWireTermReply)
	rt.ep.Register(wireTermAnnounce, rt.onWireTermAnnounce)
	return rt
}

// Node returns this runtime's node ID.
func (rt *Runtime) Node() NodeID { return rt.node }

// Mem returns the out-of-core residency manager (for stats and tests).
func (rt *Runtime) Mem() *ooc.Manager { return rt.mem }

// Collector returns the trace collector (may be nil).
func (rt *Runtime) Collector() *trace.Collector { return rt.col }

// Tracer returns the structured event tracer (may be nil).
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }

// Clock returns the runtime's injected time source (never nil).
func (rt *Runtime) Clock() clock.Clock { return rt.clk }

// Register installs a message handler under id. All nodes must register the
// same IDs before posting any messages (SPMD model).
func (rt *Runtime) Register(id HandlerID, h Handler) {
	rt.hmu.Lock()
	rt.handlers[id] = h
	rt.hmu.Unlock()
}

func (rt *Runtime) handler(id HandlerID) Handler {
	rt.hmu.RLock()
	h := rt.handlers[id]
	rt.hmu.RUnlock()
	return h
}

func oid(p MobilePtr) ooc.ObjectID {
	return ooc.ObjectID(uint64(uint32(p.Home))<<32 | uint64(p.Seq))
}

func storeKey(p MobilePtr) storage.Key {
	return storage.Key(fmt.Sprintf("obj-%d-%d", p.Home, p.Seq))
}

// CreateObject registers obj as a new mobile object homed on this node and
// returns its mobile pointer.
//
// Peers that predict this node's pointer sequence (a shared placement does)
// can post to the pointer before the object exists; those messages park here,
// so creation must drain the parked set or they — and the work counter they
// hold — would be stranded forever.
func (rt *Runtime) CreateObject(obj Object) MobilePtr {
	rt.mu.Lock()
	rt.seq++
	ptr := MobilePtr{Home: rt.node, Seq: rt.seq}
	lo := &localObject{ptr: ptr, typeID: obj.TypeID(), obj: obj, state: stInCore}
	rt.objects[ptr] = lo
	parked := rt.parked[ptr]
	delete(rt.parked, ptr)
	rt.mu.Unlock()
	if err := rt.mem.Register(oid(ptr), int64(obj.SizeHint())); err != nil {
		panic(err) // impossible: seq is unique
	}
	if len(parked) > 0 {
		lo.mu.Lock()
		for _, m := range parked {
			lo.queue = append(lo.queue, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
		}
		rt.mem.SetQueueLen(oid(ptr), len(lo.queue))
		if !lo.scheduled {
			lo.scheduled = true
			rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
		}
		lo.mu.Unlock()
	}
	rt.maybeEvictForSoft()
	return ptr
}

// Post sends a one-sided message to the mobile object addressed by dst. The
// receiving object does not post a receive: its handler runs when the
// control layer schedules it. Post never blocks on the destination.
func (rt *Runtime) Post(dst MobilePtr, h HandlerID, arg []byte) {
	if rt.closed.Load() {
		return
	}
	rt.work.Add(1)
	rt.route(&appMsg{dst: dst, handler: h, sentAt: rt.clk.Now().UnixNano(), arg: arg})
}

// route places m: into a local queue, a parked set, or onto the wire. The
// caller must have accounted m in rt.work.
func (rt *Runtime) route(m *appMsg) {
	rt.mu.Lock()
	if lo, ok := rt.objects[m.dst]; ok {
		rt.mu.Unlock()
		rt.enqueueLocal(lo, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
		return
	}
	rt.mu.Unlock()
	target, epoch := rt.loc.Locate(m.dst)
	if target == rt.node {
		// The locator says the object should be here but it is not: it is
		// in flight to us (migration), not created yet, or the view is
		// stale. Park the message; install/create/restore/dirUpdate/
		// ReRouteParked will re-route it. The object table is re-checked
		// under rt.mu so an install landing between the check above and the
		// park cannot strand the message: every path that makes a pointer
		// local drains the parked set under this same lock.
		rt.mu.Lock()
		if lo, ok := rt.objects[m.dst]; ok {
			rt.mu.Unlock()
			rt.enqueueLocal(lo, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
			return
		}
		rt.parked[m.dst] = append(rt.parked[m.dst], m)
		rt.mu.Unlock()
		return
	}
	if len(m.route) >= maxForwardHops {
		// The object is unreachable (lost to a failed install, or a
		// directory cycle): drop the message instead of forwarding it
		// forever. Termination then remains detectable — and the loss is
		// loud: counted, traced, and a quiescent invariant violation.
		rt.dstats.dropped.Add(1)
		rt.tracer.Emit(obs.KindRouteDrop, uint64(oid(m.dst)), int64(len(m.route)))
		rt.work.Add(-1)
		return
	}
	m.epoch = epoch
	m.route = append(m.route, rt.node)
	rt.sent.Add(1)
	rt.work.Add(-1)
	if err := rt.ep.Send(target, wireApp, encodeApp(m)); err != nil {
		// Transport failure: the message is dropped; undo the sent count
		// (work was already released above).
		rt.sent.Add(-1)
	}
}

// onWireApp receives an application message from the transport.
func (rt *Runtime) onWireApp(msg comm.Message) {
	m, err := decodeApp(msg.Payload)
	if err != nil {
		return
	}
	rt.recv.Add(1)
	rt.work.Add(1)
	rt.chargeComm(len(msg.Payload))
	rt.mu.Lock()
	lo, ok := rt.objects[m.dst]
	rt.mu.Unlock()
	if ok {
		// Delivered: repair whatever stale nodes the locator wants told
		// (the lazy chain, the placed locator's overridden senders).
		if targets := rt.loc.FeedbackTargets(m.route); len(targets) > 0 {
			upd := encodeDirUpdate(m.dst, rt.node)
			for _, via := range targets {
				rt.dstats.dirUpdates.Add(1)
				_ = rt.ep.Send(via, wireDirUpdate, upd)
			}
		}
		rt.dstats.observeHops(len(m.route))
		rt.enqueueLocal(lo, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
		return
	}
	rt.dstats.forwarded.Add(1)
	if m.epoch != 0 && m.epoch != rt.loc.Epoch() {
		// The sender resolved against a directory epoch that has since
		// moved on: this is a versioned-staleness retry, not a forwarding
		// chain. route() below re-resolves at the current epoch.
		rt.dstats.staleRetries.Add(1)
		rt.tracer.Emit(obs.KindRouteStale, uint64(oid(m.dst)), int64(m.epoch))
	}
	rt.route(m)
}

func (rt *Runtime) onWireDirUpdate(msg comm.Message) {
	ptr, at, err := decodeDirUpdate(msg.Payload)
	if err != nil {
		return
	}
	rt.mu.Lock()
	_, local := rt.objects[ptr]
	rt.mu.Unlock()
	if !local {
		rt.loc.Note(ptr, at)
	}
	rt.mu.Lock()
	parked := rt.parked[ptr]
	delete(rt.parked, ptr)
	rt.mu.Unlock()
	for _, m := range parked {
		rt.route(m)
	}
}

// ReRouteParked re-resolves every parked message against the locator and
// re-routes those whose first hop is no longer this node. Cluster churn
// calls it after a membership epoch bump: a message parked here awaiting an
// object whose placement moved to another node would otherwise wait forever
// (parked messages hold the work counter, so termination would never fire).
// Returns the number of messages re-routed.
func (rt *Runtime) ReRouteParked() int {
	rt.mu.Lock()
	var ms []*appMsg
	for ptr, list := range rt.parked {
		if target, _ := rt.loc.Locate(ptr); target != rt.node {
			ms = append(ms, list...)
			delete(rt.parked, ptr)
		}
	}
	rt.mu.Unlock()
	for _, m := range ms {
		rt.route(m)
	}
	return len(ms)
}

// enqueueLocal queues q for local object lo and makes sure progress happens:
// a drain task if in-core, a load if on disk.
func (rt *Runtime) enqueueLocal(lo *localObject, q queued) {
	lo.mu.Lock()
	if lo.state == stLost {
		// The object is unreachable (load failed after retries). Drop the
		// message so termination is still detectable; the loss itself was
		// already surfaced via the counters and OnSwapError.
		lo.mu.Unlock()
		rt.work.Add(-1)
		return
	}
	lo.queue = append(lo.queue, q)
	rt.mem.SetQueueLen(oid(lo.ptr), len(lo.queue))
	switch lo.state {
	case stInCore:
		if !lo.scheduled {
			lo.scheduled = true
			rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
		}
	case stOut:
		rt.startLoadLocked(lo, swapio.Demand)
	case stStoring:
		lo.wantLoad = true
	case stLoading:
		// Already on its way in — but if it went in as a prefetch, a
		// handler is now blocked on it: promote it past the backlog. A
		// false return (the request just completed or was cancelled) is
		// benign; the load's own completion path sees the queued message.
		rt.io.Promote(storeKey(lo.ptr))
	}
	lo.mu.Unlock()
}

// drain executes lo's queued handlers until the queue empties.
func (rt *Runtime) drain(lo *localObject, sc *sched.Ctx) {
	for {
		lo.mu.Lock()
		if lo.state != stInCore {
			// Evicted or migrating between messages; the load/install
			// path will reschedule.
			lo.scheduled = false
			lo.mu.Unlock()
			return
		}
		if len(lo.queue) == 0 {
			lo.scheduled = false
			obj := lo.obj
			lo.mu.Unlock()
			if obj != nil {
				rt.mem.SetSize(oid(lo.ptr), int64(obj.SizeHint()))
			}
			rt.mem.SetQueueLen(oid(lo.ptr), 0)
			rt.maybeEvictForSoft()
			rt.prefetchTick()
			return
		}
		q := lo.queue[0]
		lo.queue = lo.queue[1:]
		rt.mem.SetQueueLen(oid(lo.ptr), len(lo.queue))
		lo.running = true
		obj := lo.obj
		lo.mu.Unlock()

		rt.runHandler(lo.ptr, obj, q, sc)

		lo.mu.Lock()
		lo.running = false
		lo.mu.Unlock()
		rt.work.Add(-1)
	}
}

func (rt *Runtime) runHandler(ptr MobilePtr, obj Object, q queued, sc *sched.Ctx) {
	h := rt.handler(q.handler)
	if h == nil {
		return
	}
	ctx := &Ctx{rt: rt, Self: ptr, obj: obj, sc: sc}
	sp := rt.tracer.Start(obs.KindHandler, uint64(oid(ptr)))
	t0 := rt.clk.Now()
	h(ctx, q.arg)
	if rt.col != nil {
		rt.col.Add(trace.Comp, rt.clk.Since(t0))
	}
	sp.End(int64(q.handler))
	rt.mem.Touch(oid(ptr))
}

// chargeComm accounts the modeled wire time of a received message.
func (rt *Runtime) chargeComm(payloadSize int) {
	if rt.col != nil && rt.commDelay != nil {
		rt.col.Add(trace.Comm, rt.commDelay(payloadSize))
	}
}

// chargeDisk accounts one disk operation: the modeled service time when a
// disk model is configured, otherwise the measured duration.
func (rt *Runtime) chargeDisk(blobSize int, measured time.Duration) {
	if rt.col == nil {
		return
	}
	if rt.diskDelay != nil {
		rt.col.Add(trace.Disk, rt.diskDelay(blobSize))
		return
	}
	rt.col.Add(trace.Disk, measured)
}

// Counters for quiescence detection (see WaitQuiescence).

// Work returns the number of messages materialized on this node and not yet
// fully handled.
func (rt *Runtime) Work() int64 { return rt.work.Load() }

// SentCount returns the cumulative count of messages sent to other nodes.
func (rt *Runtime) SentCount() int64 { return rt.sent.Load() }

// RecvCount returns the cumulative count of messages received from other
// nodes.
func (rt *Runtime) RecvCount() int64 { return rt.recv.Load() }

// Close shuts the runtime's storage down. The caller must have established
// quiescence first (WaitQuiescence); Close cancels the queued prefetch
// backlog (nothing will consume it), waits for in-flight swap operations
// started by post-handler housekeeping, then closes the I/O scheduler and
// with it the store.
func (rt *Runtime) Close() error {
	if rt.closed.Swap(true) {
		return nil
	}
	rt.io.CancelPrefetches()
	for rt.swapOps.Load() > 0 {
		rt.clk.Sleep(100 * time.Microsecond)
	}
	return rt.io.Close()
}

// IOStats returns the swap I/O scheduler's statistics snapshot.
func (rt *Runtime) IOStats() swapio.Stats { return rt.io.Snapshot() }

// WaitQuiescence blocks until the whole set of runtimes is globally
// terminated: no handler running, no message queued or parked anywhere, and
// every sent message received. This is the termination condition of the
// paper's control layer ("when no message handlers are executing and no
// messages are being delivered"); with all simulated nodes sharing one
// process the detector reads the distributed counters directly instead of
// exchanging probe messages.
func WaitQuiescence(rts ...*Runtime) {
	clk := clock.Real()
	if len(rts) > 0 {
		clk = rts[0].clk // all nodes of one cluster share a clock
	}
	read := func() (work, sent, recv int64) {
		for _, rt := range rts {
			work += rt.Work()
			sent += rt.SentCount()
			recv += rt.RecvCount()
		}
		return
	}
	for {
		w1, s1, r1 := read()
		if w1 == 0 && s1 == r1 {
			// Double-read: stable across a second observation means no
			// message was in flight between the two reads.
			clk.Sleep(200 * time.Microsecond)
			w2, s2, r2 := read()
			if w2 == 0 && s2 == r2 && s2 == s1 && r2 == r1 {
				return
			}
			continue
		}
		clk.Sleep(500 * time.Microsecond)
	}
}

// encodeObject serializes obj into a pooled buffer, charging the disk-time
// account. The caller owns the returned blob; on the eviction path ownership
// passes straight to the I/O scheduler (which hands it to the store or back
// to the arena), so the steady-state swap cycle allocates nothing here.
func (rt *Runtime) encodeObject(obj Object) ([]byte, error) {
	t0 := rt.clk.Now()
	w := bufpool.GetWriter(obj.SizeHint())
	err := obj.EncodeTo(w)
	blob := w.Detach()
	bufpool.PutWriter(w)
	if err != nil {
		bufpool.Put(blob)
		blob = nil
	}
	if rt.col != nil {
		rt.col.Add(trace.Disk, rt.clk.Since(t0))
	}
	return blob, err
}

// readerPool recycles the bytes.Reader wrapped around each decode source;
// no DecodeFrom implementation retains its reader past the call.
var readerPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}

func (rt *Runtime) decodeObject(typeID uint16, blob []byte) (Object, error) {
	t0 := rt.clk.Now()
	obj, err := rt.factory(typeID)
	if err != nil {
		return nil, err
	}
	r := readerPool.Get().(*bytes.Reader)
	r.Reset(blob)
	err = obj.DecodeFrom(r)
	r.Reset(nil) // drop the blob reference before pooling
	readerPool.Put(r)
	if rt.col != nil {
		rt.col.Add(trace.Disk, rt.clk.Since(t0))
	}
	return obj, err
}

package core

import (
	"encoding/binary"

	"mrts/internal/bufpool"
	"mrts/internal/comm"
	"mrts/internal/sched"
)

// Additional wire kinds for object mobility.
const (
	wireMigrateReq uint32 = 4 // "send object X to node Y"
)

// Migrate moves a local, idle mobile object to another node, together with
// its pending message queue and out-of-core hints. The object's mobile
// pointer remains valid everywhere: this node keeps a forwarding entry, the
// home node is informed, and messages routed through stale directory entries
// are forwarded and trigger lazy updates.
//
// Migrate returns ErrNotLocal if the object is not here, and ErrBusy if a
// handler is running, scheduled or the object is being swapped; callers
// retry or give up (the paper's load balancing migrates idle objects only).
func (rt *Runtime) Migrate(ptr MobilePtr, dest NodeID) error {
	if dest == rt.node {
		return nil
	}
	rt.mu.Lock()
	lo, ok := rt.objects[ptr]
	rt.mu.Unlock()
	if !ok {
		return ErrNotLocal
	}

	lo.mu.Lock()
	if lo.running || lo.scheduled || lo.migrating {
		lo.mu.Unlock()
		return ErrBusy
	}
	var blob []byte
	var err error
	switch lo.state {
	case stInCore:
		blob, err = rt.encodeObject(lo.obj)
		if err != nil {
			lo.mu.Unlock()
			return err
		}
	case stOut:
		// Load the serialized form straight from the store; no need to
		// deserialize just to move bytes. The read goes through the I/O
		// scheduler at demand class, coalescing with any in-flight load.
		lo.migrating = true
		lo.mu.Unlock()
		blob, err = rt.io.LoadSync(storeKey(ptr), uint64(oid(ptr)))
		lo.mu.Lock()
		lo.migrating = false
		if err != nil {
			lo.mu.Unlock()
			return err
		}
		if lo.running || lo.scheduled || lo.state != stOut {
			lo.mu.Unlock()
			return ErrBusy
		}
	case stLost:
		// Terminal: returning ErrBusy here would make RequestMigration's
		// retry loop spin forever on an object that can never move.
		lo.mu.Unlock()
		return ErrObjectLost
	default: // stStoring, stLoading
		lo.mu.Unlock()
		return ErrBusy
	}

	// Point of no return: capture the queue, drop the local record.
	q := lo.queue
	lo.queue = nil
	lo.migrating = true
	typeID := lo.typeID
	lo.mu.Unlock()

	id := oid(ptr)
	in := &install{
		ptr:    ptr,
		typeID: typeID,
		locked: rt.mem.Locked(id),
		blob:   blob,
	}
	in.queue = q
	// The speculation snapshot leaves with the object: the conflict-
	// resolution multicast pulls losers — snapshotted by definition — so a
	// migration that stranded the snapshot would leak the pre-speculation
	// state, and one that refused snapshotted objects would wedge the
	// collection's retry loop. Extracted before the object record drops so
	// the invariant sweep never sees a snapshot without its object.
	snap := rt.takeSnapshotBlob(ptr)
	in.snap = snap

	rt.mu.Lock()
	delete(rt.objects, ptr)
	rt.mu.Unlock()
	rt.loc.Note(ptr, dest)
	rt.mem.Unregister(id)
	// The blob leaves with the object — unconditionally, not just for
	// stOut: an in-core object that was ever evicted here still has a
	// stale blob on disk, and without this the spool leaks every
	// migrated-away object's footprint forever.
	rt.io.Delete(storeKey(ptr))

	// The queued messages leave this node inside the install message.
	rt.work.Add(int64(-len(q)))
	rt.sent.Add(1)
	if err := rt.ep.Send(dest, wireInstall, encodeInstall(in)); err != nil {
		// Transport failure: reinstall locally (installLocal re-adopts a
		// copy of the snapshot, so the extracted blob is released below
		// either way).
		rt.sent.Add(-1)
		rt.work.Add(int64(len(q)))
		rt.installLocal(in)
		if snap != nil {
			bufpool.Put(snap)
		}
		return err
	}
	if snap != nil {
		bufpool.Put(snap)
	}
	// Proactively tell whichever nodes the locator anchors routing on (the
	// home node for the policy locators — plus the whole cluster under
	// eager — or the ring owner for the placed locator).
	if targets := rt.loc.MigrateTargets(ptr, dest); len(targets) > 0 {
		upd := encodeDirUpdate(ptr, dest)
		for _, n := range targets {
			rt.dstats.dirUpdates.Add(1)
			_ = rt.ep.Send(n, wireDirUpdate, upd)
		}
	}
	return nil
}

// onWireInstall receives a migrating object.
func (rt *Runtime) onWireInstall(msg comm.Message) {
	in, err := decodeInstall(msg.Payload)
	if err != nil {
		return
	}
	rt.recv.Add(1)
	rt.work.Add(int64(len(in.queue)))
	rt.chargeComm(len(msg.Payload))
	rt.installLocal(in)
}

// installLocal registers an installed object and reschedules its queue.
func (rt *Runtime) installLocal(in *install) {
	obj, err := rt.decodeObject(in.typeID, in.blob)
	if err != nil {
		// Unknown type or corrupt blob: drop the object and its work.
		rt.work.Add(int64(-len(in.queue)))
		return
	}
	lo := &localObject{
		ptr:    in.ptr,
		typeID: in.typeID,
		obj:    obj,
		state:  stInCore,
		queue:  in.queue,
	}
	rt.mu.Lock()
	rt.objects[in.ptr] = lo
	parked := rt.parked[in.ptr]
	delete(rt.parked, in.ptr)
	rt.mu.Unlock()
	rt.loc.Forget(in.ptr)

	id := oid(in.ptr)
	_ = rt.mem.Register(id, int64(obj.SizeHint()))
	if in.locked {
		rt.mem.Lock(id)
	}
	if in.priority != 0 {
		rt.mem.SetPriority(id, int(in.priority))
	}
	if in.snap != nil {
		// Adopt a pooled copy: in.snap aliases the wire frame (or, on the
		// reinstall path, a blob the caller still owns).
		rt.adoptSnapshotBlob(in.ptr, bufpool.Clone(in.snap))
	}
	rt.mcasts.objectArrived(rt, in.ptr)

	lo.mu.Lock()
	for _, m := range parked {
		lo.queue = append(lo.queue, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
	}
	rt.mem.SetQueueLen(id, len(lo.queue))
	if len(lo.queue) > 0 && !lo.scheduled {
		lo.scheduled = true
		rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
	}
	lo.mu.Unlock()
	rt.maybeEvictForSoft()
}

// RequestMigration asks the node currently holding ptr to migrate it to
// dest. It is one-sided: the request is routed like an application message
// (forwarded along stale directory chains).
func (rt *Runtime) RequestMigration(ptr MobilePtr, dest NodeID) {
	if rt.IsLocal(ptr) {
		_ = rt.Migrate(ptr, dest)
		return
	}
	b := make([]byte, 12)
	putPtr(b[0:8], ptr)
	binary.LittleEndian.PutUint32(b[8:12], uint32(dest))
	target, _ := rt.loc.Locate(ptr)
	if target == rt.node {
		return // in flight to us; nothing sensible to do
	}
	_ = rt.ep.Send(target, wireMigrateReq, b)
}

func (rt *Runtime) onWireMigrateReq(msg comm.Message) {
	if len(msg.Payload) != 12 {
		return
	}
	ptr := getPtr(msg.Payload[0:8])
	dest := NodeID(int32(binary.LittleEndian.Uint32(msg.Payload[8:12])))
	if rt.IsLocal(ptr) {
		if err := rt.Migrate(ptr, dest); err == ErrBusy {
			// Busy: retry once the current work drains by re-posting the
			// request to ourselves through the transport (keeps the
			// request one-sided and non-blocking).
			_ = rt.ep.Send(rt.node, wireMigrateReq, msg.Payload)
		}
		return
	}
	// Forward toward the current location.
	if target, _ := rt.loc.Locate(ptr); target != rt.node {
		_ = rt.ep.Send(target, wireMigrateReq, msg.Payload)
	}
}

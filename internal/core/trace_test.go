package core

import (
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// newTracedFaultRuntime is newSwapFaultRuntime plus an event tracer, for
// asserting what the swap path emits on its failure branches.
func newTracedFaultRuntime(t *testing.T, st storage.Store, retry storage.RetryPolicy) (*Runtime, *obs.Tracer) {
	t.Helper()
	tr := comm.NewInProc(1, comm.LatencyModel{})
	pool := sched.NewWorkStealing(2)
	tracer := obs.NewTracer("test", 1<<12)
	pool.SetTracer(tracer)
	rt := NewRuntime(Config{
		Endpoint: tr.Endpoint(0),
		Pool:     pool,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    st,
		Retry:    retry,
		Tracer:   tracer,
	})
	t.Cleanup(func() {
		rt.Close()
		pool.Close()
		tr.Close()
	})
	rt.Register(hInc, func(ctx *Ctx, arg []byte) { ctx.Object().(*testObj).Count++ })
	return rt, tracer
}

// TestTracerRecordsSwapLifecycle: a clean evict/load round trip must leave
// matching swap.evict and swap.load spans plus handler and scheduler events
// on the tracer, all attributed to the object's ID.
func TestTracerRecordsSwapLifecycle(t *testing.T) {
	rt, tracer := newTracedFaultRuntime(t, storage.NewMem(), storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	counts := tracer.CountByKind()
	if counts[obs.KindSwapEvict] != 1 {
		t.Fatalf("swap.evict events = %d, want 1 (counts %v)", counts[obs.KindSwapEvict], counts)
	}
	if counts[obs.KindSwapLoad] != 1 {
		t.Fatalf("swap.load events = %d, want 1", counts[obs.KindSwapLoad])
	}
	if counts[obs.KindHandler] == 0 || counts[obs.KindSchedRun] == 0 {
		t.Fatalf("handler/sched events missing: %v", counts)
	}
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.KindSwapEvict || ev.Kind == obs.KindSwapLoad {
			if ev.ID != uint64(oid(ptr)) {
				t.Fatalf("%s event attributed to object %d, want %d", ev.Kind, ev.ID, oid(ptr))
			}
			if ev.Dur <= 0 {
				t.Fatalf("%s must be a span (Dur > 0), got %+v", ev.Kind, ev)
			}
			if ev.Arg <= 0 {
				t.Fatalf("%s must carry the blob size, got %+v", ev.Kind, ev)
			}
		}
	}
}

// TestTracerRecordsRetries: transient faults absorbed by the retry layer
// must still be visible as swap.retry instants carrying the attempt number.
func TestTracerRecordsRetries(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstGets: 2, FailFirstPuts: 2})
	rt, tracer := newTracedFaultRuntime(t, st, storage.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	counts := tracer.CountByKind()
	if counts[obs.KindSwapRetry] != 4 {
		t.Fatalf("swap.retry events = %d, want 4 (2 put + 2 get)", counts[obs.KindSwapRetry])
	}
	if counts[obs.KindSwapLost] != 0 || counts[obs.KindSwapStoreFail] != 0 {
		t.Fatalf("absorbed faults must not emit failure events: %v", counts)
	}
	var attempts []int64
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.KindSwapRetry {
			attempts = append(attempts, ev.Arg)
		}
	}
	for _, a := range attempts {
		if a < 1 || a > 3 {
			t.Fatalf("retry attempt numbers out of range: %v", attempts)
		}
	}
}

// TestTracerRecordsObjectLoss: a permanent read fault must emit exactly one
// swap.lost instant for the object, alongside the counters the earlier
// hardening added.
func TestTracerRecordsObjectLoss(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{GetFailProb: 1, Permanent: true})
	rt, tracer := newTracedFaultRuntime(t, st, storage.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}
	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	counts := tracer.CountByKind()
	if counts[obs.KindSwapLost] != 1 {
		t.Fatalf("swap.lost events = %d, want 1 (counts %v)", counts[obs.KindSwapLost], counts)
	}
	for _, ev := range tracer.Events() {
		if ev.Kind == obs.KindSwapLost && ev.ID != uint64(oid(ptr)) {
			t.Fatalf("swap.lost attributed to object %d, want %d", ev.ID, oid(ptr))
		}
	}
}

// TestTracerRecordsStoreFailure: a failed eviction write rolls the object
// back in core and must emit a swap.store_fail instant.
func TestTracerRecordsStoreFailure(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{PutFailProb: 1, Permanent: true})
	rt, tracer := newTracedFaultRuntime(t, st, storage.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stInCore {
		t.Fatalf("eviction settled in state %d, want rollback to stInCore", got)
	}

	counts := tracer.CountByKind()
	if counts[obs.KindSwapStoreFail] != 1 {
		t.Fatalf("swap.store_fail events = %d, want 1 (counts %v)", counts[obs.KindSwapStoreFail], counts)
	}
	if counts[obs.KindSwapLost] != 0 {
		t.Fatalf("rolled-back store must not lose the object: %v", counts)
	}
}

package core

import (
	"fmt"

	"mrts/internal/obs"
)

// PublishMetrics registers this runtime's observable state into reg under
// the given prefix (e.g. "node0."). It subsumes the three accounting
// surfaces that grew separately — trace.Collector (comp/comm/disk time),
// ooc.Stats (residency and swap counts) and SwapStats (failure/retry
// counters) — plus the transport and directory counters, behind the
// registry's uniform snapshot/delta semantics. Gauges read live state, so
// one registration covers the whole run.
func (rt *Runtime) PublishMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	// trace.Collector: category times in seconds plus the derived overlap.
	if col := rt.col; col != nil {
		reg.Gauge(prefix+"time.comp_sec", func() float64 { return col.Report().Comp.Seconds() })
		reg.Gauge(prefix+"time.comm_sec", func() float64 { return col.Report().Comm.Seconds() })
		reg.Gauge(prefix+"time.disk_sec", func() float64 { return col.Report().Disk.Seconds() })
		reg.Gauge(prefix+"time.total_sec", func() float64 { return col.Report().Total.Seconds() })
		reg.Gauge(prefix+"time.overlap_pct", func() float64 { return col.Report().Overlap() })
	}
	// ooc.Stats via the residency manager.
	mem := rt.mem
	reg.Gauge(prefix+"ooc.evictions", func() float64 { return float64(mem.Snapshot().Evictions) })
	reg.Gauge(prefix+"ooc.loads", func() float64 { return float64(mem.Snapshot().Loads) })
	reg.Gauge(prefix+"ooc.in_core", func() float64 { return float64(mem.Snapshot().InCore) })
	reg.Gauge(prefix+"ooc.out_of_core", func() float64 { return float64(mem.Snapshot().OutOfCore) })
	reg.Gauge(prefix+"ooc.mem_used", func() float64 { return float64(mem.MemUsed()) })
	reg.Gauge(prefix+"ooc.mem_budget", func() float64 { return float64(mem.Budget()) })
	reg.Gauge(prefix+"ooc.mem_peak", func() float64 { return float64(mem.Snapshot().PeakMemUsed) })
	// SwapStats: the hardened swap path's failure surface.
	reg.Gauge(prefix+"swap.retries", func() float64 { return float64(rt.SwapStats().Retries) })
	reg.Gauge(prefix+"swap.load_failures", func() float64 { return float64(rt.SwapStats().LoadFailures) })
	reg.Gauge(prefix+"swap.store_failures", func() float64 { return float64(rt.SwapStats().StoreFailures) })
	reg.Gauge(prefix+"swap.objects_lost", func() float64 { return float64(rt.SwapStats().ObjectsLost) })
	reg.Gauge(prefix+"swap.evict_stalls", func() float64 { return float64(rt.EvictStalls()) })
	// Speculation-snapshot lifecycle (S-UPDR's optimistic execution).
	reg.Gauge(prefix+"specul.snapshots", func() float64 { return float64(rt.SpeculStats().Snapshots) })
	reg.Gauge(prefix+"specul.rollbacks", func() float64 { return float64(rt.SpeculStats().Rollbacks) })
	reg.Gauge(prefix+"specul.commits", func() float64 { return float64(rt.SpeculStats().Commits) })
	reg.Gauge(prefix+"specul.discards", func() float64 { return float64(rt.SpeculStats().Discards) })
	// The swap I/O scheduler: queue shape and pipeline behaviour.
	reg.Gauge(prefix+"swapio.queue_depth", func() float64 { return float64(rt.IOStats().QueueDepth) })
	reg.Gauge(prefix+"swapio.coalesced", func() float64 { return float64(rt.IOStats().Coalesced) })
	reg.Gauge(prefix+"swapio.cancelled", func() float64 { return float64(rt.IOStats().Cancelled) })
	reg.Gauge(prefix+"swapio.rejected", func() float64 { return float64(rt.IOStats().Rejected) })
	reg.Gauge(prefix+"swapio.demand_wait_ms", func() float64 {
		return float64(rt.IOStats().DemandWaitMean().Microseconds()) / 1000
	})
	// Control-layer message accounting and directory behaviour.
	reg.Gauge(prefix+"msg.work", func() float64 { return float64(rt.Work()) })
	reg.Gauge(prefix+"msg.sent", func() float64 { return float64(rt.SentCount()) })
	reg.Gauge(prefix+"msg.recv", func() float64 { return float64(rt.RecvCount()) })
	reg.Gauge(prefix+"dir.forwarded", func() float64 { return float64(rt.ForwardedCount()) })
	reg.Gauge(prefix+"dir.updates_sent", func() float64 { return float64(rt.DirUpdatesSent()) })
	// Routing surface: drops at the hop bound, epoch-staleness retries and
	// the delivered-message hop histogram.
	reg.Gauge(prefix+"route.dropped", func() float64 { return float64(rt.RouteDropped()) })
	reg.Gauge(prefix+"route.stale_retries", func() float64 { return float64(rt.RouteStaleRetries()) })
	reg.Gauge(prefix+"route.hops_mean", func() float64 { return rt.RouteHopsMean() })
	for b := 1; b <= hopBuckets; b++ {
		b := b
		name := fmt.Sprintf("route.hops_%d", b)
		if b == hopBuckets {
			name = fmt.Sprintf("route.hops_%dplus", b)
		}
		reg.Gauge(prefix+name, func() float64 { return float64(rt.RouteHopHistogram()[b-1]) })
	}
	// Transport counters.
	ep := rt.ep
	reg.Gauge(prefix+"comm.msgs_sent", func() float64 { return float64(ep.Stats().MsgsSent) })
	reg.Gauge(prefix+"comm.msgs_received", func() float64 { return float64(ep.Stats().MsgsReceived) })
	reg.Gauge(prefix+"comm.bytes_sent", func() float64 { return float64(ep.Stats().BytesSent) })
	reg.Gauge(prefix+"comm.bytes_received", func() float64 { return float64(ep.Stats().BytesReceived) })
}

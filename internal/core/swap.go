package core

import (
	"time"

	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
)

// startLoadLocked transitions lo from stOut to stLoading and starts the
// asynchronous load. Caller holds lo.mu.
func (rt *Runtime) startLoadLocked(lo *localObject) {
	if lo.state != stOut {
		return
	}
	lo.state = stLoading
	rt.swapOps.Add(1)
	go func() {
		defer rt.swapOps.Add(-1)
		rt.loadObject(lo)
	}()
}

// loadObject brings lo back in core: it makes room per the hard threshold,
// reads the blob, deserializes, and reschedules pending work. A load that
// fails after the storage layer's retry budget loses the object: it enters
// the terminal stLost state, its queue is dropped (termination must still
// fire), and the failure is surfaced through the counters and OnSwapError —
// never silently.
func (rt *Runtime) loadObject(lo *localObject) {
	id := oid(lo.ptr)
	// Make room before the bytes arrive.
	if need := rt.mem.NeedForAlloc(rt.mem.Size(id)); need > 0 {
		rt.evictVictims(need, lo.ptr, func() int64 {
			return rt.mem.NeedForAlloc(rt.mem.Size(id))
		})
	}
	sp := rt.tracer.Start(obs.KindSwapLoad, uint64(id))
	t0 := time.Now()
	blob, err := rt.store.GetAsync(storeKey(lo.ptr)).Wait()
	rt.chargeDisk(len(blob), time.Since(t0))
	op := SwapLoad
	var obj Object
	if err == nil {
		op = SwapDecode
		obj, err = rt.decodeObject(lo.typeID, blob)
	}
	sp.End(int64(len(blob)))
	if err != nil {
		lo.mu.Lock()
		n := len(lo.queue)
		lo.queue = nil
		lo.state = stLost
		lo.wantLoad = false
		lo.mu.Unlock()
		rt.mem.SetQueueLen(id, 0)
		rt.work.Add(int64(-n))
		rt.tracer.Emit(obs.KindSwapLost, uint64(id), int64(n))
		rt.mcasts.objectLost(rt, lo.ptr)
		rt.noteSwapError(SwapError{Ptr: lo.ptr, Op: op, Err: err, Dropped: n, Lost: true})
		return
	}
	lo.mu.Lock()
	lo.obj = obj
	lo.state = stInCore
	rt.mem.MarkIn(id)
	if len(lo.queue) > 0 && !lo.scheduled {
		lo.scheduled = true
		rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
	}
	lo.mu.Unlock()
	rt.mcasts.objectArrived(rt, lo.ptr)
}

// tryEvict unloads lo to the storage layer if it is idle, unlocked and
// in-core. It reports whether the eviction was initiated.
func (rt *Runtime) tryEvict(lo *localObject) bool {
	id := oid(lo.ptr)
	rt.swapOps.Add(1)
	if rt.closed.Load() {
		rt.swapOps.Add(-1)
		return false
	}
	lo.mu.Lock()
	if lo.state != stInCore || lo.running || lo.scheduled || lo.migrating || rt.mem.Locked(id) {
		lo.mu.Unlock()
		rt.swapOps.Add(-1)
		return false
	}
	obj := lo.obj
	lo.obj = nil
	lo.state = stStoring
	lo.mu.Unlock()

	sp := rt.tracer.Start(obs.KindSwapEvict, uint64(id))
	blob, err := rt.encodeObject(obj)
	if err != nil {
		// Serialization failed; keep the object in core.
		sp.End(0)
		lo.mu.Lock()
		lo.obj = obj
		lo.state = stInCore
		lo.mu.Unlock()
		rt.swapOps.Add(-1)
		return false
	}
	rt.mem.SetSize(id, int64(len(blob)))
	rt.mem.MarkOut(id)
	res := rt.store.PutAsync(storeKey(lo.ptr), blob)
	go func() {
		defer rt.swapOps.Add(-1)
		t0 := time.Now()
		_, err := res.Wait()
		rt.chargeDisk(len(blob), time.Since(t0))
		sp.End(int64(len(blob)))
		lo.mu.Lock()
		if err != nil {
			// Write failed after retries: restore the in-core copy (we
			// still hold obj via the closure). The restore satisfies any
			// load requested while storing, so wantLoad must be cleared —
			// leaving it set would make the next successful eviction
			// trigger a spurious immediate reload.
			lo.obj = obj
			lo.state = stInCore
			lo.wantLoad = false
			rt.mem.MarkIn(oid(lo.ptr))
			if len(lo.queue) > 0 && !lo.scheduled {
				lo.scheduled = true
				rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
			}
			lo.mu.Unlock()
			rt.tracer.Emit(obs.KindSwapStoreFail, uint64(id), int64(len(blob)))
			rt.noteSwapError(SwapError{Ptr: lo.ptr, Op: SwapStore, Err: err})
			return
		}
		lo.state = stOut
		want := lo.wantLoad || len(lo.queue) > 0
		lo.wantLoad = false
		if want {
			rt.startLoadLocked(lo)
		}
		lo.mu.Unlock()
	}()
	return true
}

// evictVictims evicts objects until residual reports no remaining need,
// skipping exclude. need seeds the victim selection; the residual need is
// re-read from the live accounting between victims rather than summed from
// the pre-selected sizes — tryEvict re-serializes (and SetSizes) each
// object, and a failed async write returns its bytes in-core, so sizes
// captured before eviction go stale immediately.
func (rt *Runtime) evictVictims(need int64, exclude MobilePtr, residual func() int64) {
	if need <= 0 {
		return
	}
	for _, vid := range rt.mem.PickVictims(need) {
		if vid == oid(exclude) {
			continue
		}
		lo := rt.findByOID(vid)
		if lo == nil {
			continue
		}
		if rt.tryEvict(lo) && residual() <= 0 {
			return
		}
	}
}

// maybeEvictForSoft responds to the soft threshold: when free memory drops
// below the configured fraction, the out-of-core layer is "advised" to swap.
func (rt *Runtime) maybeEvictForSoft() {
	if need := rt.mem.NeedForSoft(); need > 0 {
		rt.evictVictims(need, Nil, rt.mem.NeedForSoft)
	}
}

// prefetchTick loads a few out-of-core objects with pending messages — the
// out-of-core layer's prefetch cache at work. It runs even under memory
// pressure: the load path evicts idle victims to make room, which is exactly
// the streaming the runtime exists to overlap.
func (rt *Runtime) prefetchTick() {
	for _, id := range rt.mem.SuggestPrefetch(rt.pfDepth) {
		lo := rt.findByOID(id)
		if lo == nil {
			continue
		}
		lo.mu.Lock()
		if lo.state == stOut {
			rt.startLoadLocked(lo)
		}
		lo.mu.Unlock()
	}
}

func (rt *Runtime) findByOID(id ooc.ObjectID) *localObject {
	ptr := MobilePtr{Home: NodeID(int32(uint64(id) >> 32)), Seq: uint32(uint64(id))}
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	return lo
}

// Lock pins the object in core: it will not be selected for eviction until
// Unlock. Locking an out-of-core object also schedules its load.
func (rt *Runtime) Lock(ptr MobilePtr) {
	rt.mem.Lock(oid(ptr))
	rt.Prefetch(ptr)
}

// Unlock releases a Lock.
func (rt *Runtime) Unlock(ptr MobilePtr) { rt.mem.Unlock(oid(ptr)) }

// SetPriority sets the object's swapping priority hint: higher values keep
// the object in core longer.
func (rt *Runtime) SetPriority(ptr MobilePtr, pri int) { rt.mem.SetPriority(oid(ptr), pri) }

// Prefetch schedules a load of a local out-of-core object ("force loading").
func (rt *Runtime) Prefetch(ptr MobilePtr) {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return
	}
	lo.mu.Lock()
	if lo.state == stOut {
		rt.startLoadLocked(lo)
	} else if lo.state == stStoring {
		lo.wantLoad = true
	}
	lo.mu.Unlock()
}

// InCore reports whether the object is local and resident in memory.
func (rt *Runtime) InCore(ptr MobilePtr) bool {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.state == stInCore
}

// IsLocal reports whether the object currently lives on this node.
func (rt *Runtime) IsLocal(ptr MobilePtr) bool {
	rt.mu.Lock()
	_, ok := rt.objects[ptr]
	rt.mu.Unlock()
	return ok
}

// NumLocalObjects returns the number of mobile objects on this node.
func (rt *Runtime) NumLocalObjects() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.objects)
}

// LocalObjects returns the mobile pointers of all objects on this node.
func (rt *Runtime) LocalObjects() []MobilePtr {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]MobilePtr, 0, len(rt.objects))
	for p := range rt.objects {
		out = append(out, p)
	}
	return out
}

package core

import (
	"errors"

	"mrts/internal/obs"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/swapio"
)

// The swap data path. Residency decisions (what to evict, what to load,
// when) stay here in the control layer; every byte that moves to or from
// disk flows through the swapio scheduler, which serves demand loads ahead
// of eviction writes ahead of prefetches, coalesces duplicate loads of one
// key, and runs serialization on its own I/O workers so compute workers
// never encode or decode inside drain.

// startLoadLocked transitions lo from stOut to stLoading and submits the
// read to the I/O scheduler at the given class. Caller holds lo.mu.
func (rt *Runtime) startLoadLocked(lo *localObject, class swapio.Class) {
	if lo.state != stOut {
		return
	}
	lo.state = stLoading
	rt.swapOps.Add(1)
	sp := rt.tracer.Start(obs.KindSwapLoad, uint64(oid(lo.ptr)))
	t0 := rt.clk.Now()
	ok := rt.io.Load(storeKey(lo.ptr), uint64(oid(lo.ptr)), class, func(blob []byte, err error) {
		defer rt.swapOps.Add(-1)
		if !errors.Is(err, swapio.ErrCanceled) {
			rt.chargeDisk(len(blob), rt.clk.Since(t0))
		}
		rt.finishLoad(lo, sp, blob, err)
	})
	if !ok {
		// Refused: the scheduler is closed, or the prefetch backlog hit
		// the bound and this was speculative. Revert; a demand will
		// resubmit when a message actually arrives.
		lo.state = stOut
		rt.swapOps.Add(-1)
		sp.End(0)
	}
}

// finishLoad completes a load on an I/O worker: it makes room per the hard
// threshold, decodes the blob there (never on a compute worker), and
// reschedules pending work. A load that fails after the storage layer's
// retry budget loses the object: it enters the terminal stLost state, its
// queue is dropped (termination must still fire), and the failure is
// surfaced through the counters and OnSwapError — never silently.
func (rt *Runtime) finishLoad(lo *localObject, sp obs.Span, blob []byte, err error) {
	id := oid(lo.ptr)
	if errors.Is(err, swapio.ErrCanceled) {
		// A superseded prefetch: the object simply stays out of core. A
		// message may have raced in between the cancellation decision and
		// this callback; re-issue at demand class if so.
		sp.End(0)
		lo.mu.Lock()
		if lo.state == stLoading {
			lo.state = stOut
			if !rt.closed.Load() && (len(lo.queue) > 0 || lo.wantLoad) {
				lo.wantLoad = false
				rt.startLoadLocked(lo, swapio.Demand)
			}
		}
		lo.mu.Unlock()
		return
	}
	op := SwapLoad
	var obj Object
	if err == nil {
		// Make room before the decoded object re-enters the accounting.
		// Memory pressure supersedes speculation: drop the queued prefetch
		// backlog before evicting victims.
		if need := rt.mem.NeedForAlloc(rt.mem.Size(id)); need > 0 {
			rt.io.CancelPrefetches()
			if !rt.evictVictims(need, lo.ptr, func() int64 {
				return rt.mem.NeedForAlloc(rt.mem.Size(id))
			}) {
				rt.noteEvictStall(rt.mem.NeedForAlloc(rt.mem.Size(id)))
			}
		}
		op = SwapDecode
		obj, err = rt.decodeObject(lo.typeID, blob)
	}
	sp.End(int64(len(blob)))
	if err != nil {
		// The object is gone for good; a speculation snapshot held for it
		// can never be rolled back or committed. Discard it (counted) before
		// the state flips to stLost so the continuous invariant sweep never
		// sees a snapshot pinned to a lost object.
		rt.discardSnapshot(lo.ptr)
		lo.mu.Lock()
		n := len(lo.queue)
		lo.queue = nil
		lo.state = stLost
		lo.wantLoad = false
		lo.mu.Unlock()
		rt.mem.SetQueueLen(id, 0)
		rt.work.Add(int64(-n))
		rt.tracer.Emit(obs.KindSwapLost, uint64(id), int64(n))
		rt.mcasts.objectLost(rt, lo.ptr)
		rt.noteSwapError(SwapError{Ptr: lo.ptr, Op: op, Err: err, Dropped: n, Lost: true})
		return
	}
	lo.mu.Lock()
	lo.obj = obj
	lo.state = stInCore
	rt.mem.MarkIn(id)
	if len(lo.queue) > 0 && !lo.scheduled {
		lo.scheduled = true
		rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
	}
	lo.mu.Unlock()
	rt.mcasts.objectArrived(rt, lo.ptr)
}

// tryEvict unloads lo to the storage layer if it is idle, unlocked and
// in-core. It reports whether the eviction was initiated. Serialization is
// pipelined: the object is committed to stStoring here, but the encode and
// the write both happen on an I/O worker.
func (rt *Runtime) tryEvict(lo *localObject) bool {
	id := oid(lo.ptr)
	rt.swapOps.Add(1)
	if rt.closed.Load() {
		rt.swapOps.Add(-1)
		return false
	}
	lo.mu.Lock()
	if lo.state != stInCore || lo.running || lo.scheduled || lo.migrating || rt.mem.Locked(id) {
		lo.mu.Unlock()
		rt.swapOps.Add(-1)
		return false
	}
	obj := lo.obj
	lo.obj = nil
	lo.state = stStoring
	lo.mu.Unlock()

	// The bytes leave the accounting at the commit point, not when the
	// write lands: victim selection must see the effect immediately, or a
	// burst of evictions against a slow disk would over-evict (the residual
	// need would not drop until the queued writes drained).
	rt.mem.MarkOut(id)

	sp := rt.tracer.Start(obs.KindSwapEvict, uint64(id))
	t0 := rt.clk.Now()
	encoded := false
	ok := rt.io.Store(storeKey(lo.ptr), uint64(id),
		func() ([]byte, error) { return rt.encodeObject(obj) },
		func(n int) {
			// Runs on the I/O worker between encode and write; both
			// closures run sequentially there, so the flag needs no lock.
			encoded = true
			rt.mem.SetStoredSize(id, int64(n))
		},
		func(n int, err error) {
			defer rt.swapOps.Add(-1)
			rt.chargeDisk(n, rt.clk.Since(t0))
			sp.End(int64(n))
			rt.finishEvict(lo, obj, encoded, n, err)
		})
	if !ok {
		// Scheduler closed under us: restore the object untouched.
		lo.mu.Lock()
		lo.obj = obj
		lo.state = stInCore
		rt.mem.MarkIn(id)
		lo.mu.Unlock()
		sp.End(0)
		rt.swapOps.Add(-1)
		return false
	}
	return true
}

// finishEvict completes an eviction on an I/O worker after the encode+write
// settle. encoded distinguishes a serialization failure (silent in-core
// restore) from a write failure (counted rollback). n is the serialized
// size; the blob itself already belongs to the store (or the arena).
func (rt *Runtime) finishEvict(lo *localObject, obj Object, encoded bool, n int, err error) {
	id := oid(lo.ptr)
	if err != nil {
		// Restore the in-core copy (we still hold obj via the closure).
		// The restore satisfies any load requested while storing, so
		// wantLoad must be cleared — leaving it set would make the next
		// successful eviction trigger a spurious immediate reload.
		lo.mu.Lock()
		lo.obj = obj
		lo.state = stInCore
		lo.wantLoad = false
		rt.mem.MarkIn(id)
		if len(lo.queue) > 0 && !lo.scheduled {
			lo.scheduled = true
			rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
		}
		lo.mu.Unlock()
		if encoded {
			// The write failed after the retry budget: loud rollback.
			rt.tracer.Emit(obs.KindSwapStoreFail, uint64(id), int64(n))
			rt.noteSwapError(SwapError{Ptr: lo.ptr, Op: SwapStore, Err: err})
		}
		return
	}
	lo.mu.Lock()
	lo.state = stOut
	want := lo.wantLoad || len(lo.queue) > 0
	class := swapio.Prefetch
	if len(lo.queue) > 0 {
		class = swapio.Demand
	}
	lo.wantLoad = false
	if want {
		rt.startLoadLocked(lo, class)
	}
	lo.mu.Unlock()
}

// evictVictims evicts objects until residual reports no remaining need,
// skipping exclude. need seeds the victim selection; the residual need is
// re-read from the live accounting between victims rather than summed from
// the pre-selected sizes — evictions commit their accounting at submission,
// and a failed write returns its bytes in-core, so sizes captured before
// eviction go stale immediately. A second scan re-picks victims in case
// candidates that were busy (running/scheduled/locked) in the first pass
// have gone idle. It reports whether the need was met; callers on the hard
// path must treat false as a loud stall, not silently proceed over budget.
func (rt *Runtime) evictVictims(need int64, exclude MobilePtr, residual func() int64) bool {
	if need <= 0 {
		return true
	}
	pick := need
	for pass := 0; pass < 2; pass++ {
		for _, vid := range rt.mem.PickVictims(pick) {
			if vid == oid(exclude) {
				continue
			}
			lo := rt.findByOID(vid)
			if lo == nil {
				continue
			}
			if rt.tryEvict(lo) && residual() <= 0 {
				return true
			}
		}
		if residual() <= 0 {
			return true
		}
		pick = residual()
	}
	return residual() <= 0
}

// noteEvictStall surfaces a hard-threshold eviction pass that could not
// free the needed bytes: every candidate was busy. The run proceeds over
// budget (the alternative is deadlock), but loudly — counted, traced.
func (rt *Runtime) noteEvictStall(need int64) {
	rt.evictStalls.Add(1)
	rt.tracer.Emit(obs.KindSwapStall, 0, need)
}

// EvictStalls returns how many hard-threshold eviction passes failed to
// free the needed bytes because every victim candidate was busy.
func (rt *Runtime) EvictStalls() uint64 { return rt.evictStalls.Load() }

// maybeEvictForSoft responds to the soft threshold: when free memory drops
// below the configured fraction, the out-of-core layer is "advised" to swap.
// The advice is best-effort; an unmet need here is not a stall.
func (rt *Runtime) maybeEvictForSoft() {
	if need := rt.mem.NeedForSoft(); need > 0 {
		rt.evictVictims(need, Nil, rt.mem.NeedForSoft)
	}
}

// prefetchTick tops up the prefetch pipeline — the out-of-core layer's
// cache population at work. It runs even under memory pressure: the load
// path evicts idle victims to make room, which is exactly the streaming the
// runtime exists to overlap. Queue-depth feedback throttles it: the tick
// only fills the gap between the scheduler's queued prefetches and the
// configured depth, and the scheduler itself refuses speculative loads when
// its backlog saturates.
func (rt *Runtime) prefetchTick() {
	if rt.closed.Load() {
		return
	}
	budget := rt.pfDepth - rt.io.QueuedPrefetches()
	if budget <= 0 {
		return
	}
	for _, cand := range rt.mem.SuggestPrefetchRanked(budget) {
		lo := rt.findByOID(cand.ID)
		if lo == nil {
			continue
		}
		class := swapio.Prefetch
		if cand.Urgent {
			class = swapio.Demand
		}
		lo.mu.Lock()
		if lo.state == stOut {
			rt.startLoadLocked(lo, class)
		}
		lo.mu.Unlock()
	}
}

func (rt *Runtime) findByOID(id ooc.ObjectID) *localObject {
	ptr := MobilePtr{Home: NodeID(int32(uint64(id) >> 32)), Seq: uint32(uint64(id))}
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	return lo
}

// Lock pins the object in core: it will not be selected for eviction until
// Unlock. Locking an out-of-core object also schedules its load at demand
// class. It reports whether the object is local — a false return means the
// pointer lives elsewhere (or was destroyed) and nothing was pinned;
// callers that require residency must check it.
func (rt *Runtime) Lock(ptr MobilePtr) bool {
	if !rt.IsLocal(ptr) {
		return false
	}
	rt.mem.Lock(oid(ptr))
	rt.forceLoad(ptr)
	return true
}

// Unlock releases a Lock.
func (rt *Runtime) Unlock(ptr MobilePtr) { rt.mem.Unlock(oid(ptr)) }

// SetPriority sets the object's swapping priority hint: higher values keep
// the object in core longer.
func (rt *Runtime) SetPriority(ptr MobilePtr, pri int) { rt.mem.SetPriority(oid(ptr), pri) }

// Prefetch schedules a speculative load of a local out-of-core object. It
// reports whether the object is local; a false return means the pointer
// lives on another node (or was destroyed) and no load was scheduled.
func (rt *Runtime) Prefetch(ptr MobilePtr) bool {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	switch lo.state {
	case stOut:
		rt.startLoadLocked(lo, swapio.Prefetch)
	case stStoring:
		lo.wantLoad = true
	}
	lo.mu.Unlock()
	return true
}

// forceLoad is Prefetch at demand class — the paper's "force loading",
// used when something is blocked on the object (a lock acquisition, a
// multicast collection). A queued prefetch of the same key is promoted
// rather than duplicated. It reports whether the object is local.
func (rt *Runtime) forceLoad(ptr MobilePtr) bool {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	switch lo.state {
	case stOut:
		rt.startLoadLocked(lo, swapio.Demand)
	case stStoring:
		lo.wantLoad = true
	case stLoading:
		rt.io.Promote(storeKey(lo.ptr))
	}
	lo.mu.Unlock()
	return true
}

// InCore reports whether the object is local and resident in memory.
func (rt *Runtime) InCore(ptr MobilePtr) bool {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.state == stInCore
}

// IsLocal reports whether the object currently lives on this node.
func (rt *Runtime) IsLocal(ptr MobilePtr) bool {
	rt.mu.Lock()
	_, ok := rt.objects[ptr]
	rt.mu.Unlock()
	return ok
}

// NumLocalObjects returns the number of mobile objects on this node.
func (rt *Runtime) NumLocalObjects() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.objects)
}

// LocalObjects returns the mobile pointers of all objects on this node.
func (rt *Runtime) LocalObjects() []MobilePtr {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]MobilePtr, 0, len(rt.objects))
	for p := range rt.objects {
		out = append(out, p)
	}
	return out
}

package core

import (
	"time"

	"mrts/internal/ooc"
	"mrts/internal/sched"
)

// startLoadLocked transitions lo from stOut to stLoading and starts the
// asynchronous load. Caller holds lo.mu.
func (rt *Runtime) startLoadLocked(lo *localObject) {
	if lo.state != stOut {
		return
	}
	lo.state = stLoading
	rt.swapOps.Add(1)
	go func() {
		defer rt.swapOps.Add(-1)
		rt.loadObject(lo)
	}()
}

// loadObject brings lo back in core: it makes room per the hard threshold,
// reads the blob, deserializes, and reschedules pending work.
func (rt *Runtime) loadObject(lo *localObject) {
	id := oid(lo.ptr)
	// Make room before the bytes arrive.
	if need := rt.mem.NeedForAlloc(rt.mem.Size(id)); need > 0 {
		rt.evictVictims(need, lo.ptr)
	}
	t0 := time.Now()
	blob, err := rt.store.GetAsync(storeKey(lo.ptr)).Wait()
	rt.chargeDisk(len(blob), time.Since(t0))
	if err != nil {
		// The blob is missing or unreadable: the object is lost. Drop its
		// queue so termination is still reached; surface via panic in
		// debug builds would hide the accounting, so count the work off.
		lo.mu.Lock()
		n := len(lo.queue)
		lo.queue = nil
		lo.state = stOut
		lo.mu.Unlock()
		rt.work.Add(int64(-n))
		return
	}
	obj, err := rt.decodeObject(lo.typeID, blob)
	if err != nil {
		lo.mu.Lock()
		n := len(lo.queue)
		lo.queue = nil
		lo.state = stOut
		lo.mu.Unlock()
		rt.work.Add(int64(-n))
		return
	}
	lo.mu.Lock()
	lo.obj = obj
	lo.state = stInCore
	rt.mem.MarkIn(id)
	if len(lo.queue) > 0 && !lo.scheduled {
		lo.scheduled = true
		rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
	}
	lo.mu.Unlock()
	rt.mcasts.objectArrived(rt, lo.ptr)
}

// tryEvict unloads lo to the storage layer if it is idle, unlocked and
// in-core. It reports whether the eviction was initiated.
func (rt *Runtime) tryEvict(lo *localObject) bool {
	id := oid(lo.ptr)
	rt.swapOps.Add(1)
	if rt.closed.Load() {
		rt.swapOps.Add(-1)
		return false
	}
	lo.mu.Lock()
	if lo.state != stInCore || lo.running || lo.scheduled || lo.migrating || rt.mem.Locked(id) {
		lo.mu.Unlock()
		rt.swapOps.Add(-1)
		return false
	}
	obj := lo.obj
	lo.obj = nil
	lo.state = stStoring
	lo.mu.Unlock()

	blob, err := rt.encodeObject(obj)
	if err != nil {
		// Serialization failed; keep the object in core.
		lo.mu.Lock()
		lo.obj = obj
		lo.state = stInCore
		lo.mu.Unlock()
		rt.swapOps.Add(-1)
		return false
	}
	rt.mem.SetSize(id, int64(len(blob)))
	rt.mem.MarkOut(id)
	res := rt.store.PutAsync(storeKey(lo.ptr), blob)
	go func() {
		defer rt.swapOps.Add(-1)
		t0 := time.Now()
		_, err := res.Wait()
		rt.chargeDisk(len(blob), time.Since(t0))
		lo.mu.Lock()
		if err != nil {
			// Write failed: restore the in-core copy (we still hold obj
			// via the closure).
			lo.obj = obj
			lo.state = stInCore
			rt.mem.MarkIn(oid(lo.ptr))
			if len(lo.queue) > 0 && !lo.scheduled {
				lo.scheduled = true
				rt.pool.Submit(func(sc *sched.Ctx) { rt.drain(lo, sc) })
			}
			lo.mu.Unlock()
			return
		}
		lo.state = stOut
		want := lo.wantLoad || len(lo.queue) > 0
		lo.wantLoad = false
		if want {
			rt.startLoadLocked(lo)
		}
		lo.mu.Unlock()
	}()
	return true
}

// evictVictims frees at least need bytes, skipping exclude.
func (rt *Runtime) evictVictims(need int64, exclude MobilePtr) {
	if need <= 0 {
		return
	}
	var freed int64
	for _, vid := range rt.mem.PickVictims(need) {
		if vid == oid(exclude) {
			continue
		}
		lo := rt.findByOID(vid)
		if lo == nil {
			continue
		}
		size := rt.mem.Size(vid)
		if rt.tryEvict(lo) {
			freed += size
			if freed >= need {
				return
			}
		}
	}
}

// maybeEvictForSoft responds to the soft threshold: when free memory drops
// below the configured fraction, the out-of-core layer is "advised" to swap.
func (rt *Runtime) maybeEvictForSoft() {
	if need := rt.mem.NeedForSoft(); need > 0 {
		rt.evictVictims(need, Nil)
	}
}

// prefetchTick loads a few out-of-core objects with pending messages — the
// out-of-core layer's prefetch cache at work. It runs even under memory
// pressure: the load path evicts idle victims to make room, which is exactly
// the streaming the runtime exists to overlap.
func (rt *Runtime) prefetchTick() {
	for _, id := range rt.mem.SuggestPrefetch(rt.pfDepth) {
		lo := rt.findByOID(id)
		if lo == nil {
			continue
		}
		lo.mu.Lock()
		if lo.state == stOut {
			rt.startLoadLocked(lo)
		}
		lo.mu.Unlock()
	}
}

func (rt *Runtime) findByOID(id ooc.ObjectID) *localObject {
	ptr := MobilePtr{Home: NodeID(int32(uint64(id) >> 32)), Seq: uint32(uint64(id))}
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	return lo
}

// Lock pins the object in core: it will not be selected for eviction until
// Unlock. Locking an out-of-core object also schedules its load.
func (rt *Runtime) Lock(ptr MobilePtr) {
	rt.mem.Lock(oid(ptr))
	rt.Prefetch(ptr)
}

// Unlock releases a Lock.
func (rt *Runtime) Unlock(ptr MobilePtr) { rt.mem.Unlock(oid(ptr)) }

// SetPriority sets the object's swapping priority hint: higher values keep
// the object in core longer.
func (rt *Runtime) SetPriority(ptr MobilePtr, pri int) { rt.mem.SetPriority(oid(ptr), pri) }

// Prefetch schedules a load of a local out-of-core object ("force loading").
func (rt *Runtime) Prefetch(ptr MobilePtr) {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return
	}
	lo.mu.Lock()
	if lo.state == stOut {
		rt.startLoadLocked(lo)
	} else if lo.state == stStoring {
		lo.wantLoad = true
	}
	lo.mu.Unlock()
}

// InCore reports whether the object is local and resident in memory.
func (rt *Runtime) InCore(ptr MobilePtr) bool {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return false
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	return lo.state == stInCore
}

// IsLocal reports whether the object currently lives on this node.
func (rt *Runtime) IsLocal(ptr MobilePtr) bool {
	rt.mu.Lock()
	_, ok := rt.objects[ptr]
	rt.mu.Unlock()
	return ok
}

// NumLocalObjects returns the number of mobile objects on this node.
func (rt *Runtime) NumLocalObjects() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.objects)
}

// LocalObjects returns the mobile pointers of all objects on this node.
func (rt *Runtime) LocalObjects() []MobilePtr {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]MobilePtr, 0, len(rt.objects))
	for p := range rt.objects {
		out = append(out, p)
	}
	return out
}

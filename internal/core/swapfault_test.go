package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mrts/internal/clock"
	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// The swap-fault tests run on a virtual clock: retry backoff, swap waits and
// the settle polls below advance simulated time, not wall time, so the whole
// file runs in milliseconds. time.After is only ever a hang watchdog.

// swapRecorder collects OnSwapError callbacks.
type swapRecorder struct {
	mu   sync.Mutex
	errs []SwapError
}

func (r *swapRecorder) record(e SwapError) {
	r.mu.Lock()
	r.errs = append(r.errs, e)
	r.mu.Unlock()
}

func (r *swapRecorder) snapshot() []SwapError {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SwapError(nil), r.errs...)
}

// newSwapFaultRuntime builds a single-node runtime over st with a retry
// policy and a recording swap-error callback.
func newSwapFaultRuntime(t *testing.T, st storage.Store, budget int64, retry storage.RetryPolicy) (*Runtime, *swapRecorder) {
	t.Helper()
	vclk := clock.NewVirtual()
	t.Cleanup(vclk.Stop)
	tr := comm.NewInProcClock(1, comm.LatencyModel{}, vclk)
	pool := sched.NewWorkStealing(2)
	rec := &swapRecorder{}
	retry.Clock = vclk
	rt := NewRuntime(Config{
		Endpoint:    tr.Endpoint(0),
		Pool:        pool,
		Factory:     testFactory,
		Mem:         ooc.Config{Budget: budget},
		Store:       st,
		Retry:       retry,
		Clock:       vclk,
		OnSwapError: rec.record,
	})
	t.Cleanup(func() {
		rt.Close()
		pool.Close()
		tr.Close()
	})
	rt.Register(hInc, func(ctx *Ctx, arg []byte) { ctx.Object().(*testObj).Count++ })
	return rt, rec
}

// evictAndSettle forces ptr out of core and waits for the async write to
// land (stOut) or be rolled back (stInCore). Returns the settled state.
func evictAndSettle(t *testing.T, rt *Runtime, ptr MobilePtr) objState {
	t.Helper()
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		t.Fatalf("object %v not local", ptr)
	}
	if !rt.tryEvict(lo) {
		t.Fatalf("tryEvict(%v) refused", ptr)
	}
	for i := 0; i < 10_000; i++ {
		lo.mu.Lock()
		st := lo.state
		lo.mu.Unlock()
		if st == stOut || st == stInCore {
			return st
		}
		rt.clk.Sleep(time.Millisecond)
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	t.Fatalf("eviction of %v never settled (state %d)", ptr, lo.state)
	return lo.state
}

func waitQuiesceOrFail(t *testing.T, rt *Runtime) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		WaitQuiescence(rt)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("quiescence never reached")
	}
}

// TestSwapLoadPermanentFaultLosesObjectLoudly drives the load-error branch:
// a permanently failing read loses the object, and every reporting surface
// must say so — SwapStats, SwapErrors, OnSwapError, and the OOC snapshot.
func TestSwapLoadPermanentFaultLosesObjectLoudly(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{GetFailProb: 1, Permanent: true})
	rt, rec := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Count: 7, Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}

	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	s := rt.SwapStats()
	if s.LoadFailures != 1 || s.ObjectsLost != 1 || s.StoreFailures != 0 {
		t.Fatalf("SwapStats = %+v, want 1 load failure, 1 lost", s)
	}
	if s.Retries != 0 {
		t.Fatalf("permanent fault burned %d retries, want 0", s.Retries)
	}
	errs := rt.SwapErrors()
	if len(errs) != 1 {
		t.Fatalf("SwapErrors = %d entries, want 1", len(errs))
	}
	e := errs[0]
	if e.Ptr != ptr || e.Op != SwapLoad || !e.Lost || e.Dropped != 1 {
		t.Fatalf("SwapError = %+v, want lost load of %v dropping 1 message", e, ptr)
	}
	if !errors.Is(e.Err, storage.ErrInjected) {
		t.Fatalf("SwapError.Err = %v, want ErrInjected chain", e.Err)
	}
	if cb := rec.snapshot(); len(cb) != 1 || cb[0].Ptr != ptr {
		t.Fatalf("OnSwapError saw %v, want the lost load", cb)
	}
	if m := rt.Mem().Snapshot(); m.LoadFailures != 1 || m.ObjectsLost != 1 {
		t.Fatalf("ooc snapshot = %+v, want the failure mirrored", m)
	}
	if rt.Work() != 0 {
		t.Fatalf("work counter leaked: %d", rt.Work())
	}

	// A lost object is terminal: more messages are dropped, accounted, and
	// must not wedge termination.
	for i := 0; i < 5; i++ {
		rt.Post(ptr, hInc, nil)
	}
	waitQuiesceOrFail(t, rt)
	if rt.Work() != 0 {
		t.Fatalf("work counter leaked after posting to lost object: %d", rt.Work())
	}
	if err := rt.Migrate(ptr, 0); err != nil {
		t.Fatalf("Migrate to self on lost object = %v", err)
	}
}

// TestSwapDecodeFaultLosesObject drives the decode-error branch: the read
// succeeds but returns a truncated blob, so deserialization fails and the
// object is lost with Op == SwapDecode.
func TestSwapDecodeFaultLosesObject(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstGets: 1, CorruptGets: true})
	rt, _ := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 512)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}

	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	s := rt.SwapStats()
	if s.LoadFailures != 1 || s.ObjectsLost != 1 {
		t.Fatalf("SwapStats = %+v, want 1 decode failure, 1 lost", s)
	}
	errs := rt.SwapErrors()
	if len(errs) != 1 || errs[0].Op != SwapDecode || !errs[0].Lost {
		t.Fatalf("SwapErrors = %+v, want one lost SwapDecode", errs)
	}
}

// TestSwapRetryExhaustionLosesObject drives the retry-exhaustion branch: a
// transient fault outlasting the attempt budget still loses the object, with
// the burned retries counted.
func TestSwapRetryExhaustionLosesObject(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstGets: 8})
	rt, rec := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut", got)
	}

	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	s := rt.SwapStats()
	if s.LoadFailures != 1 || s.ObjectsLost != 1 {
		t.Fatalf("SwapStats = %+v, want exhaustion to lose the object", s)
	}
	if s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (2 attempts)", s.Retries)
	}
	if cb := rec.snapshot(); len(cb) != 1 || errors.Is(cb[0].Err, storage.ErrPermanent) {
		t.Fatalf("callback = %+v, want one transient-exhaustion error", cb)
	}
}

// TestSwapRetryAbsorbsTransientFaults: faults shorter than the attempt
// budget are invisible to the application — no losses, no failures, just a
// non-zero retry count on both stats surfaces.
func TestSwapRetryAbsorbsTransientFaults(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{FailFirstGets: 2, FailFirstPuts: 2})
	rt, rec := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Count: 41, Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("eviction settled in state %d, want stOut (puts retried)", got)
	}

	rt.Post(ptr, hInc, nil)
	waitQuiesceOrFail(t, rt)

	got := make(chan int64, 1)
	rt.Register(99, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	rt.Post(ptr, 99, nil)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("count = %d, want 42 (state intact through faults)", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("object unreachable after transient faults")
	}

	s := rt.SwapStats()
	if s.LoadFailures != 0 || s.StoreFailures != 0 || s.ObjectsLost != 0 {
		t.Fatalf("SwapStats = %+v, want no failures", s)
	}
	if s.Retries != 4 {
		t.Fatalf("Retries = %d, want 4 (2 put + 2 get)", s.Retries)
	}
	if m := rt.Mem().Snapshot(); m.Retries != 4 {
		t.Fatalf("ooc snapshot Retries = %d, want 4", m.Retries)
	}
	if len(rec.snapshot()) != 0 {
		t.Fatalf("OnSwapError fired %v for absorbed faults", rec.snapshot())
	}
}

// TestSwapStoreFaultKeepsObjectAndCounts drives the write-error branch: a
// failed eviction write restores the object in core and surfaces the failure
// without losing anything.
func TestSwapStoreFaultKeepsObjectAndCounts(t *testing.T) {
	st := storage.NewFault(storage.NewMem(), storage.FaultConfig{PutFailProb: 1, Permanent: true})
	rt, rec := newSwapFaultRuntime(t, st, 1<<20, storage.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	ptr := rt.CreateObject(&testObj{Count: 5, Ballast: make([]byte, 256)})
	if got := evictAndSettle(t, rt, ptr); got != stInCore {
		t.Fatalf("eviction settled in state %d, want rollback to stInCore", got)
	}

	s := rt.SwapStats()
	if s.StoreFailures != 1 || s.ObjectsLost != 0 || s.LoadFailures != 0 {
		t.Fatalf("SwapStats = %+v, want 1 store failure, nothing lost", s)
	}
	errs := rec.snapshot()
	if len(errs) != 1 || errs[0].Op != SwapStore || errs[0].Lost {
		t.Fatalf("OnSwapError = %+v, want one non-lost SwapStore", errs)
	}
	// The object must still be fully usable.
	got := make(chan int64, 1)
	rt.Register(99, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	rt.Post(ptr, 99, nil)
	select {
	case v := <-got:
		if v != 5 {
			t.Fatalf("count = %d, want 5", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("object unreachable after rolled-back eviction")
	}
}

// gatedStore blocks Put until the gate channel is closed, optionally failing
// it — a deterministic way to act while an eviction write is in flight.
type gatedStore struct {
	storage.Store
	gate <-chan struct{}
	fail chan bool // buffered; next Put fails if a true is queued
}

func (s *gatedStore) Put(k storage.Key, d []byte) error {
	<-s.gate
	select {
	case f := <-s.fail:
		if f {
			return errors.New("gated write fault")
		}
	default:
	}
	return s.Store.Put(k, d)
}

// TestEvictionRollbackClearsWantLoad is the regression test for the spurious
// reload: a Prefetch that lands while the object is storing sets wantLoad; if
// the write then fails, the in-core restore satisfies that load request, so
// the flag must be cleared — otherwise the next successful eviction
// immediately reloads the object for no one.
func TestEvictionRollbackClearsWantLoad(t *testing.T) {
	gate := make(chan struct{})
	gs := &gatedStore{Store: storage.NewMem(), gate: gate, fail: make(chan bool, 1)}
	rt, _ := newSwapFaultRuntime(t, gs, 1<<20, storage.RetryPolicy{})
	ptr := rt.CreateObject(&testObj{Ballast: make([]byte, 256)})

	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	gs.fail <- true
	if !rt.tryEvict(lo) {
		t.Fatal("tryEvict refused")
	}
	// The write is parked on the gate: the object is stStoring, so this
	// Prefetch takes the wantLoad path.
	rt.Prefetch(ptr)
	close(gate)

	settled := false
	for i := 0; i < 10_000 && !settled; i++ {
		lo.mu.Lock()
		st, want := lo.state, lo.wantLoad
		lo.mu.Unlock()
		if st == stInCore {
			if want {
				t.Fatal("wantLoad still set after rollback restored the object")
			}
			settled = true
			break
		}
		rt.clk.Sleep(time.Millisecond)
	}
	if !settled {
		t.Fatal("rollback never settled")
	}

	// A later, successful eviction must stay evicted: no spurious reload.
	// (The rollback itself counted one load: MarkIn re-admitted the bytes.)
	baseline := rt.Mem().Snapshot().Loads
	if got := evictAndSettle(t, rt, ptr); got != stOut {
		t.Fatalf("second eviction settled in state %d, want stOut", got)
	}
	rt.clk.Sleep(20 * time.Millisecond) // a spurious reload would start here
	if rt.InCore(ptr) {
		t.Fatal("object reloaded with no pending work: stale wantLoad")
	}
	if loads := rt.Mem().Snapshot().Loads; loads != baseline {
		t.Fatalf("Loads = %d, want %d (nobody asked for the object)", loads, baseline)
	}
}

package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mrts/internal/storage"
	"mrts/internal/swapio"
)

// This file implements the check/restore functionality the paper's
// conclusion derives from the out-of-core subsystem: "check and restore
// functionality for fault tolerance can be implemented with little effort on
// top of the out-of-core subsystem". A checkpoint serializes every local
// mobile object — reusing the exact serialization path the swapping machinery
// exercises constantly — together with its pending message queue, the
// directory and the OOC hints, into a storage.Store. Restore rebuilds the
// node from it.
//
// The cluster must be quiescent (WaitQuiescence) when checkpointing; this is
// the natural phase boundary of the paper's programming model, where control
// is back at the application.

const checkpointMagic = 0x4D435054 // "MCPT"

// Checkpoint writes this node's full state into st under the given prefix.
// Objects currently swapped out are copied from the runtime's own store
// without deserializing them. The runtime must be quiescent.
func (rt *Runtime) Checkpoint(st storage.Store, prefix string) error {
	rt.mu.Lock()
	ptrs := make([]MobilePtr, 0, len(rt.objects))
	for p := range rt.objects {
		ptrs = append(ptrs, p)
	}
	seq := rt.seq
	rt.mu.Unlock()
	dir := rt.loc.Cached()

	var manifest bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(rt.node))
	binary.LittleEndian.PutUint32(hdr[8:12], seq)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(ptrs)))
	manifest.Write(hdr[:])

	for _, p := range ptrs {
		rec, err := rt.checkpointObject(p, st, prefix)
		if err != nil {
			return fmt.Errorf("core: checkpoint %v: %w", p, err)
		}
		manifest.Write(rec)
	}

	// Directory entries.
	var db [12]byte
	binary.LittleEndian.PutUint32(db[0:4], uint32(len(dir)))
	manifest.Write(db[0:4])
	for p, n := range dir {
		putPtr(db[0:8], p)
		binary.LittleEndian.PutUint32(db[8:12], uint32(n))
		manifest.Write(db[:])
	}

	// Termination counters. A restored node must rejoin the Mattern
	// double-count where its old incarnation left off: the other nodes'
	// counters still include traffic exchanged with it, so a node restarting
	// at zero would leave the cluster's sent/recv totals unbalanced forever.
	// Quiescence makes the snapshot stable (only application messages are
	// counted, and none are in flight).
	var cb [16]byte
	binary.LittleEndian.PutUint64(cb[0:8], uint64(rt.sent.Load()))
	binary.LittleEndian.PutUint64(cb[8:16], uint64(rt.recv.Load()))
	manifest.Write(cb[:])

	return st.Put(storage.Key(prefix+"-manifest"), manifest.Bytes())
}

// checkpointObject snapshots one object: blob + queue + hints. Returns the
// manifest record.
func (rt *Runtime) checkpointObject(p MobilePtr, st storage.Store, prefix string) ([]byte, error) {
	rt.mu.Lock()
	lo := rt.objects[p]
	rt.mu.Unlock()
	if lo == nil {
		return nil, ErrUnknownObject
	}
	lo.mu.Lock()
	if lo.running || lo.scheduled {
		lo.mu.Unlock()
		return nil, ErrBusy
	}
	var blob []byte
	var err error
	switch lo.state {
	case stInCore:
		blob, err = rt.encodeObject(lo.obj)
	case stOut:
		blob, err = rt.io.Backing().Get(storeKey(p))
	case stLost:
		err = ErrObjectLost
	default:
		err = ErrBusy
	}
	queue := append([]queued(nil), lo.queue...)
	typeID := lo.typeID
	lo.mu.Unlock()
	if err != nil {
		return nil, err
	}

	id := oid(p)
	if err := st.Put(storage.Key(fmt.Sprintf("%s-%d-%d", prefix, p.Home, p.Seq)), blob); err != nil {
		return nil, err
	}

	var rec bytes.Buffer
	var b [8]byte
	putPtr(b[0:8], p)
	rec.Write(b[:8])
	binary.LittleEndian.PutUint16(b[0:2], typeID)
	rec.Write(b[0:2])
	flags := byte(0)
	if rt.mem.Locked(id) {
		flags |= 1
	}
	rec.WriteByte(flags)
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(queue)))
	rec.Write(b[0:4])
	for _, q := range queue {
		binary.LittleEndian.PutUint32(b[0:4], uint32(q.handler))
		rec.Write(b[0:4])
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(q.arg)))
		rec.Write(b[0:4])
		rec.Write(q.arg)
	}
	return rec.Bytes(), nil
}

// Restore rebuilds this node from a checkpoint written by Checkpoint. The
// runtime must be freshly created (no objects) with the same node ID and
// factory. Restored objects start out-of-core-cold: they are registered and
// their blobs installed in the runtime's store; loads happen on demand, so
// restoring is cheap even for huge datasets (the point of building restore
// on the out-of-core path).
func (rt *Runtime) Restore(st storage.Store, prefix string) error {
	data, err := st.Get(storage.Key(prefix + "-manifest"))
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	r := bytes.NewReader(data)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: restore: short manifest: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != checkpointMagic {
		return fmt.Errorf("core: restore: bad magic")
	}
	if node := NodeID(int32(binary.LittleEndian.Uint32(hdr[4:8]))); node != rt.node {
		return fmt.Errorf("core: restore: checkpoint is for node %d, this is node %d", node, rt.node)
	}
	seq := binary.LittleEndian.Uint32(hdr[8:12])
	n := int(binary.LittleEndian.Uint32(hdr[12:16]))

	rt.mu.Lock()
	if len(rt.objects) != 0 {
		rt.mu.Unlock()
		return fmt.Errorf("core: restore: runtime already has objects")
	}
	rt.seq = seq
	rt.mu.Unlock()

	var b [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, b[0:8]); err != nil {
			return fmt.Errorf("core: restore: truncated record: %w", err)
		}
		ptr := getPtr(b[0:8])
		if _, err := io.ReadFull(r, b[0:2]); err != nil {
			return err
		}
		typeID := binary.LittleEndian.Uint16(b[0:2])
		fb, err := r.ReadByte()
		if err != nil {
			return err
		}
		if _, err := io.ReadFull(r, b[0:4]); err != nil {
			return err
		}
		nq := int(binary.LittleEndian.Uint32(b[0:4]))
		var queue []queued
		for k := 0; k < nq; k++ {
			if _, err := io.ReadFull(r, b[0:8]); err != nil {
				return err
			}
			h := HandlerID(binary.LittleEndian.Uint32(b[0:4]))
			na := int(binary.LittleEndian.Uint32(b[4:8]))
			// Bound the untrusted arg length before allocating.
			const maxRestoreArg = 1 << 26
			if na > maxRestoreArg {
				return fmt.Errorf("core: restore: queued arg length %d exceeds limit %d (corrupt checkpoint?)", na, maxRestoreArg)
			}
			arg := make([]byte, na)
			if _, err := io.ReadFull(r, arg); err != nil {
				return err
			}
			queue = append(queue, queued{handler: h, arg: arg})
		}

		blob, err := st.Get(storage.Key(fmt.Sprintf("%s-%d-%d", prefix, ptr.Home, ptr.Seq)))
		if err != nil {
			return fmt.Errorf("core: restore %v: %w", ptr, err)
		}
		if err := rt.io.Backing().Put(storeKey(ptr), blob); err != nil {
			return err
		}

		lo := &localObject{ptr: ptr, typeID: typeID, state: stOut, queue: queue}
		rt.mu.Lock()
		rt.objects[ptr] = lo
		// Peers may have posted to this pointer while the restoring node was
		// still coming up; those messages parked here and already hold the
		// work counter, so adopt them into the queue (the checkpointed
		// entries are new work and are accounted below).
		parked := rt.parked[ptr]
		delete(rt.parked, ptr)
		rt.mu.Unlock()
		id := oid(ptr)
		if err := rt.mem.Register(id, int64(len(blob))); err != nil {
			return err
		}
		rt.mem.MarkOut(id)
		if fb&1 != 0 {
			rt.mem.Lock(id)
		}
		rt.work.Add(int64(len(queue)))
		lo.mu.Lock()
		for _, m := range parked {
			lo.queue = append(lo.queue, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
		}
		rt.mem.SetQueueLen(id, len(lo.queue))
		if len(lo.queue) > 0 {
			rt.startLoadLocked(lo, swapio.Demand)
		}
		lo.mu.Unlock()
	}

	// Directory: replay the checkpointed location cache into the locator.
	if _, err := io.ReadFull(r, b[0:4]); err != nil {
		return err
	}
	nd := int(binary.LittleEndian.Uint32(b[0:4]))
	for i := 0; i < nd; i++ {
		if _, err := io.ReadFull(r, b[0:12]); err != nil {
			return err
		}
		rt.loc.Note(getPtr(b[0:8]), NodeID(int32(binary.LittleEndian.Uint32(b[8:12]))))
	}

	// Termination counters (see Checkpoint). Added, not stored: the new
	// incarnation may already have live counts — peers that learned its
	// address post as soon as it joins, racing Restore — and overwriting
	// them would erase receives from the global Mattern balance, wedging
	// termination detection cluster-wide.
	var cb [16]byte
	if _, err := io.ReadFull(r, cb[:]); err != nil {
		return fmt.Errorf("core: restore: truncated counters: %w", err)
	}
	rt.sent.Add(int64(binary.LittleEndian.Uint64(cb[0:8])))
	rt.recv.Add(int64(binary.LittleEndian.Uint64(cb[8:16])))
	return nil
}

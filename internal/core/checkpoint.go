package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mrts/internal/bufpool"
	"mrts/internal/storage"
	"mrts/internal/swapio"
)

// This file implements the check/restore functionality the paper's
// conclusion derives from the out-of-core subsystem: "check and restore
// functionality for fault tolerance can be implemented with little effort on
// top of the out-of-core subsystem". A checkpoint serializes every local
// mobile object — reusing the exact serialization path the swapping machinery
// exercises constantly — together with its pending message queue, the
// directory and the OOC hints, into a storage.Store. Restore rebuilds the
// node from it.
//
// The cluster must be quiescent (WaitQuiescence) when checkpointing; this is
// the natural phase boundary of the paper's programming model, where control
// is back at the application.

const checkpointMagic = 0x4D435054 // "MCPT"

// Checkpoint writes this node's full state into st under the given prefix.
// Objects currently swapped out are copied from the runtime's own store
// without deserializing them. The runtime must be quiescent.
func (rt *Runtime) Checkpoint(st storage.Store, prefix string) error {
	rt.mu.Lock()
	ptrs := make([]MobilePtr, 0, len(rt.objects))
	for p := range rt.objects {
		ptrs = append(ptrs, p)
	}
	seq := rt.seq
	rt.mu.Unlock()
	dir := rt.loc.Cached()

	var manifest bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(rt.node))
	binary.LittleEndian.PutUint32(hdr[8:12], seq)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(ptrs)))
	manifest.Write(hdr[:])

	for _, p := range ptrs {
		rec, err := rt.checkpointObject(p, st, prefix)
		if err != nil {
			return fmt.Errorf("core: checkpoint %v: %w", p, err)
		}
		manifest.Write(rec)
	}

	// Directory entries.
	var db [12]byte
	binary.LittleEndian.PutUint32(db[0:4], uint32(len(dir)))
	manifest.Write(db[0:4])
	for p, n := range dir {
		putPtr(db[0:8], p)
		binary.LittleEndian.PutUint32(db[8:12], uint32(n))
		manifest.Write(db[:])
	}

	// Termination counters. A restored node must rejoin the Mattern
	// double-count where its old incarnation left off: the other nodes'
	// counters still include traffic exchanged with it, so a node restarting
	// at zero would leave the cluster's sent/recv totals unbalanced forever.
	// Quiescence makes the snapshot stable (only application messages are
	// counted, and none are in flight).
	var cb [16]byte
	binary.LittleEndian.PutUint64(cb[0:8], uint64(rt.sent.Load()))
	binary.LittleEndian.PutUint64(cb[8:16], uint64(rt.recv.Load()))
	manifest.Write(cb[:])

	return st.Put(storage.Key(prefix+"-manifest"), manifest.Bytes())
}

// checkpointObject snapshots one object: blob + queue + hints. Returns the
// manifest record.
func (rt *Runtime) checkpointObject(p MobilePtr, st storage.Store, prefix string) ([]byte, error) {
	rt.mu.Lock()
	lo := rt.objects[p]
	rt.mu.Unlock()
	if lo == nil {
		return nil, ErrUnknownObject
	}
	lo.mu.Lock()
	if lo.running || lo.scheduled {
		lo.mu.Unlock()
		return nil, ErrBusy
	}
	var blob []byte
	var err error
	switch lo.state {
	case stInCore:
		blob, err = rt.encodeObject(lo.obj)
	case stOut:
		blob, err = rt.io.Backing().Get(storeKey(p))
	case stLost:
		err = ErrObjectLost
	default:
		err = ErrBusy
	}
	queue := append([]queued(nil), lo.queue...)
	typeID := lo.typeID
	lo.mu.Unlock()
	if err != nil {
		return nil, err
	}

	id := oid(p)
	if err := st.Put(storage.Key(fmt.Sprintf("%s-%d-%d", prefix, p.Home, p.Seq)), blob); err != nil {
		return nil, err
	}

	var rec bytes.Buffer
	var b [8]byte
	putPtr(b[0:8], p)
	rec.Write(b[:8])
	binary.LittleEndian.PutUint16(b[0:2], typeID)
	rec.Write(b[0:2])
	flags := byte(0)
	if rt.mem.Locked(id) {
		flags |= 1
	}
	rec.WriteByte(flags)
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(queue)))
	rec.Write(b[0:4])
	for _, q := range queue {
		binary.LittleEndian.PutUint32(b[0:4], uint32(q.handler))
		rec.Write(b[0:4])
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(q.arg)))
		rec.Write(b[0:4])
		rec.Write(q.arg)
	}
	return rec.Bytes(), nil
}

// --- Object-granular speculation snapshots --------------------------------
//
// Checkpoint/Restore above serialize a whole quiescent node; speculative
// execution (meshgen's S-UPDR) needs something finer-grained and live: one
// object saves its pre-speculation state, refines optimistically, and either
// commits (the snapshot is discarded) or loses a conflict and rolls back in
// place. The snapshot reuses the exact serialization path the swap machinery
// exercises constantly, so anything that can swap can speculate — and the
// snapshot survives eviction and travels with migration (see migrate.go),
// because a speculating object is as mobile as any other.

// SnapshotObject captures ptr's current serialized state as its speculation
// snapshot, replacing any previous one. The object must be local and in
// core; the intended caller is the object's own message handler (which has
// exclusive access), or a driver holding the object idle.
func (rt *Runtime) SnapshotObject(ptr MobilePtr) error {
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		return ErrNotLocal
	}
	lo.mu.Lock()
	if lo.state == stLost {
		lo.mu.Unlock()
		return ErrObjectLost
	}
	if lo.state != stInCore || lo.obj == nil {
		lo.mu.Unlock()
		return ErrBusy
	}
	blob, err := rt.encodeObject(lo.obj)
	lo.mu.Unlock()
	if err != nil {
		return err
	}
	rt.snapMu.Lock()
	if old, ok := rt.snaps[ptr]; ok {
		bufpool.Put(old)
	}
	rt.snaps[ptr] = blob
	rt.snapMu.Unlock()
	rt.snapTaken.Add(1)
	return nil
}

// RollbackObject restores ptr to its speculation snapshot, decoding the
// saved state into the live object in place (the running handler's Object()
// reference stays valid), and consumes the snapshot. The object must be
// local and in core; on ErrBusy the snapshot is kept so the caller can retry
// once the object is resident again.
func (rt *Runtime) RollbackObject(ptr MobilePtr) error {
	rt.snapMu.Lock()
	blob, ok := rt.snaps[ptr]
	delete(rt.snaps, ptr)
	rt.snapMu.Unlock()
	if !ok {
		return ErrNoSnapshot
	}
	rt.mu.Lock()
	lo := rt.objects[ptr]
	rt.mu.Unlock()
	if lo == nil {
		bufpool.Put(blob)
		rt.snapDiscards.Add(1)
		return ErrNotLocal
	}
	lo.mu.Lock()
	switch {
	case lo.state == stLost:
		lo.mu.Unlock()
		bufpool.Put(blob)
		rt.snapDiscards.Add(1)
		return ErrObjectLost
	case lo.state != stInCore || lo.obj == nil:
		lo.mu.Unlock()
		rt.snapMu.Lock()
		rt.snaps[ptr] = blob
		rt.snapMu.Unlock()
		return ErrBusy
	}
	r := readerPool.Get().(*bytes.Reader)
	r.Reset(blob)
	err := lo.obj.DecodeFrom(r)
	r.Reset(nil)
	readerPool.Put(r)
	size := 0
	if err == nil {
		size = lo.obj.SizeHint()
	}
	lo.mu.Unlock()
	bufpool.Put(blob)
	if err != nil {
		return fmt.Errorf("core: rollback %v: %w", ptr, err)
	}
	rt.mem.SetSize(oid(ptr), int64(size))
	rt.snapRollbacks.Add(1)
	return nil
}

// CommitObject discards ptr's speculation snapshot: the optimistic update
// won and the pre-speculation state is no longer needed. It reports whether
// a snapshot existed.
func (rt *Runtime) CommitObject(ptr MobilePtr) bool {
	rt.snapMu.Lock()
	blob, ok := rt.snaps[ptr]
	delete(rt.snaps, ptr)
	rt.snapMu.Unlock()
	if !ok {
		return false
	}
	bufpool.Put(blob)
	rt.snapCommits.Add(1)
	return true
}

// Snapshotted reports whether ptr currently holds a speculation snapshot.
func (rt *Runtime) Snapshotted(ptr MobilePtr) bool {
	rt.snapMu.Lock()
	_, ok := rt.snaps[ptr]
	rt.snapMu.Unlock()
	return ok
}

// SnapshotCount returns the number of objects currently snapshotted. At
// quiescence it must be zero (CheckInvariants enforces this): every
// speculation either committed or rolled back.
func (rt *Runtime) SnapshotCount() int {
	rt.snapMu.Lock()
	defer rt.snapMu.Unlock()
	return len(rt.snaps)
}

// discardSnapshot drops ptr's snapshot, if any, counting the discard. It is
// the exit path for objects that stop existing mid-speculation: lost to a
// storage failure or destroyed.
func (rt *Runtime) discardSnapshot(ptr MobilePtr) {
	rt.snapMu.Lock()
	blob, ok := rt.snaps[ptr]
	delete(rt.snaps, ptr)
	rt.snapMu.Unlock()
	if ok {
		bufpool.Put(blob)
		rt.snapDiscards.Add(1)
	}
}

// takeSnapshotBlob removes and returns ptr's snapshot blob (nil if none);
// ownership passes to the caller. Migration uses it to carry the snapshot
// with the object.
func (rt *Runtime) takeSnapshotBlob(ptr MobilePtr) []byte {
	rt.snapMu.Lock()
	blob := rt.snaps[ptr]
	delete(rt.snaps, ptr)
	rt.snapMu.Unlock()
	return blob
}

// adoptSnapshotBlob installs blob as ptr's snapshot, taking ownership; any
// previous snapshot is returned to the arena.
func (rt *Runtime) adoptSnapshotBlob(ptr MobilePtr, blob []byte) {
	rt.snapMu.Lock()
	if old, ok := rt.snaps[ptr]; ok {
		bufpool.Put(old)
	}
	rt.snaps[ptr] = blob
	rt.snapMu.Unlock()
}

// SpeculStats counts the speculation-snapshot lifecycle on one runtime.
type SpeculStats struct {
	// Snapshots is how many SnapshotObject calls captured state.
	Snapshots uint64
	// Rollbacks is how many snapshots were restored by RollbackObject.
	Rollbacks uint64
	// Commits is how many snapshots were discarded by CommitObject.
	Commits uint64
	// Discards is how many snapshots were dropped because their object was
	// lost or destroyed mid-speculation.
	Discards uint64
}

// SpeculStats returns the speculation-snapshot counters.
func (rt *Runtime) SpeculStats() SpeculStats {
	return SpeculStats{
		Snapshots: rt.snapTaken.Load(),
		Rollbacks: rt.snapRollbacks.Load(),
		Commits:   rt.snapCommits.Load(),
		Discards:  rt.snapDiscards.Load(),
	}
}

// Restore rebuilds this node from a checkpoint written by Checkpoint. The
// runtime must be freshly created (no objects) with the same node ID and
// factory. Restored objects start out-of-core-cold: they are registered and
// their blobs installed in the runtime's store; loads happen on demand, so
// restoring is cheap even for huge datasets (the point of building restore
// on the out-of-core path).
func (rt *Runtime) Restore(st storage.Store, prefix string) error {
	data, err := st.Get(storage.Key(prefix + "-manifest"))
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	r := bytes.NewReader(data)
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("core: restore: short manifest: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != checkpointMagic {
		return fmt.Errorf("core: restore: bad magic")
	}
	if node := NodeID(int32(binary.LittleEndian.Uint32(hdr[4:8]))); node != rt.node {
		return fmt.Errorf("core: restore: checkpoint is for node %d, this is node %d", node, rt.node)
	}
	seq := binary.LittleEndian.Uint32(hdr[8:12])
	n := int(binary.LittleEndian.Uint32(hdr[12:16]))

	rt.mu.Lock()
	if len(rt.objects) != 0 {
		rt.mu.Unlock()
		return fmt.Errorf("core: restore: runtime already has objects")
	}
	rt.seq = seq
	rt.mu.Unlock()

	var b [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, b[0:8]); err != nil {
			return fmt.Errorf("core: restore: truncated record: %w", err)
		}
		ptr := getPtr(b[0:8])
		if _, err := io.ReadFull(r, b[0:2]); err != nil {
			return err
		}
		typeID := binary.LittleEndian.Uint16(b[0:2])
		fb, err := r.ReadByte()
		if err != nil {
			return err
		}
		if _, err := io.ReadFull(r, b[0:4]); err != nil {
			return err
		}
		nq := int(binary.LittleEndian.Uint32(b[0:4]))
		var queue []queued
		for k := 0; k < nq; k++ {
			if _, err := io.ReadFull(r, b[0:8]); err != nil {
				return err
			}
			h := HandlerID(binary.LittleEndian.Uint32(b[0:4]))
			na := int(binary.LittleEndian.Uint32(b[4:8]))
			// Bound the untrusted arg length before allocating.
			const maxRestoreArg = 1 << 26
			if na > maxRestoreArg {
				return fmt.Errorf("core: restore: queued arg length %d exceeds limit %d (corrupt checkpoint?)", na, maxRestoreArg)
			}
			arg := make([]byte, na)
			if _, err := io.ReadFull(r, arg); err != nil {
				return err
			}
			queue = append(queue, queued{handler: h, arg: arg})
		}

		blob, err := st.Get(storage.Key(fmt.Sprintf("%s-%d-%d", prefix, ptr.Home, ptr.Seq)))
		if err != nil {
			return fmt.Errorf("core: restore %v: %w", ptr, err)
		}
		if err := rt.io.Backing().Put(storeKey(ptr), blob); err != nil {
			return err
		}

		lo := &localObject{ptr: ptr, typeID: typeID, state: stOut, queue: queue}
		rt.mu.Lock()
		rt.objects[ptr] = lo
		// Peers may have posted to this pointer while the restoring node was
		// still coming up; those messages parked here and already hold the
		// work counter, so adopt them into the queue (the checkpointed
		// entries are new work and are accounted below).
		parked := rt.parked[ptr]
		delete(rt.parked, ptr)
		rt.mu.Unlock()
		id := oid(ptr)
		if err := rt.mem.Register(id, int64(len(blob))); err != nil {
			return err
		}
		rt.mem.MarkOut(id)
		if fb&1 != 0 {
			rt.mem.Lock(id)
		}
		rt.work.Add(int64(len(queue)))
		lo.mu.Lock()
		for _, m := range parked {
			lo.queue = append(lo.queue, queued{handler: m.handler, sentAt: m.sentAt, arg: m.arg})
		}
		rt.mem.SetQueueLen(id, len(lo.queue))
		if len(lo.queue) > 0 {
			rt.startLoadLocked(lo, swapio.Demand)
		}
		lo.mu.Unlock()
	}

	// Directory: replay the checkpointed location cache into the locator.
	if _, err := io.ReadFull(r, b[0:4]); err != nil {
		return err
	}
	nd := int(binary.LittleEndian.Uint32(b[0:4]))
	for i := 0; i < nd; i++ {
		if _, err := io.ReadFull(r, b[0:12]); err != nil {
			return err
		}
		rt.loc.Note(getPtr(b[0:8]), NodeID(int32(binary.LittleEndian.Uint32(b[8:12]))))
	}

	// Termination counters (see Checkpoint). Added, not stored: the new
	// incarnation may already have live counts — peers that learned its
	// address post as soon as it joins, racing Restore — and overwriting
	// them would erase receives from the global Mattern balance, wedging
	// termination detection cluster-wide.
	var cb [16]byte
	if _, err := io.ReadFull(r, cb[:]); err != nil {
		return fmt.Errorf("core: restore: truncated counters: %w", err)
	}
	rt.sent.Add(int64(binary.LittleEndian.Uint64(cb[0:8])))
	rt.recv.Add(int64(binary.LittleEndian.Uint64(cb[8:16])))
	return nil
}

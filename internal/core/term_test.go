package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The termination tests run on a virtual clock: the detector's probe rounds,
// the transport, and every in-handler delay advance simulated time only, so
// the schedule is deterministic and the suite finishes in milliseconds of
// wall time. time.After here is purely a hang watchdog — it never fires on
// the happy path.

func TestWaitTerminationSingleNode(t *testing.T) {
	c, _ := newVirtualCluster(t, 1, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	obj := &testObj{}
	ptr := rt.CreateObject(obj)
	for i := 0; i < 50; i++ {
		rt.Post(ptr, hInc, nil)
	}
	done := make(chan struct{})
	go func() {
		rt.WaitTermination(1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("distributed termination never detected")
	}
	if obj.Count != 50 {
		t.Fatalf("count = %d (terminated too early?)", obj.Count)
	}
}

func TestWaitTerminationSPMD(t *testing.T) {
	// All nodes call WaitTermination; a relay chain keeps messages flying
	// between them; no node may unblock before the chain ends.
	c, vclk := newVirtualCluster(t, 4, 1<<20)
	ptrs := make([]MobilePtr, 4)
	for i, rt := range c.rts {
		ptrs[i] = rt.CreateObject(&testObj{})
	}
	var hops atomic.Int64
	for i, rt := range c.rts {
		i := i
		rt.Register(hRelay, func(ctx *Ctx, arg []byte) {
			ttl := binary.LittleEndian.Uint32(arg)
			hops.Add(1)
			vclk.Sleep(100 * time.Microsecond) // keep the chain visibly alive
			if ttl == 0 {
				return
			}
			next := make([]byte, 4)
			binary.LittleEndian.PutUint32(next, ttl-1)
			ctx.Post(ptrs[(i+1)%4], hRelay, next)
		})
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 199)
	c.rts[0].Post(ptrs[0], hRelay, arg)

	var wg sync.WaitGroup
	for _, rt := range c.rts {
		wg.Add(1)
		go func(rt *Runtime) {
			defer wg.Done()
			rt.WaitTermination(4)
			if h := hops.Load(); h != 200 {
				t.Errorf("node %d unblocked at %d hops, want 200", rt.Node(), h)
			}
		}(rt)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(15 * time.Second):
		t.Fatal("SPMD termination timed out")
	}
}

func TestWaitTerminationMultiplePhases(t *testing.T) {
	c, _ := newVirtualCluster(t, 2, 1<<20)
	registerInc(c)
	obj := &testObj{}
	ptr := c.rts[0].CreateObject(obj)
	for phase := 1; phase <= 3; phase++ {
		for i := 0; i < 10; i++ {
			c.rts[1].Post(ptr, hInc, nil)
		}
		var wg sync.WaitGroup
		for _, rt := range c.rts {
			wg.Add(1)
			go func(rt *Runtime) {
				defer wg.Done()
				rt.WaitTermination(2)
			}(rt)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("phase %d never terminated", phase)
		}
		if got := obj.Count; got != int64(phase*10) {
			t.Fatalf("phase %d: count = %d, want %d", phase, got, phase*10)
		}
	}
}

func TestWaitTerminationAgreesWithQuiescence(t *testing.T) {
	// The distributed detector and the driver-level one must agree: after
	// WaitTermination returns, WaitQuiescence settles within a couple of its
	// own probe rounds of virtual time.
	c, vclk := newVirtualCluster(t, 3, 1<<20)
	registerInc(c)
	ptr := c.rts[1].CreateObject(&testObj{})
	for _, rt := range c.rts {
		for i := 0; i < 30; i++ {
			rt.Post(ptr, hInc, nil)
		}
	}
	var wg sync.WaitGroup
	for _, rt := range c.rts {
		wg.Add(1)
		go func(rt *Runtime) {
			defer wg.Done()
			rt.WaitTermination(3)
		}(rt)
	}
	wg.Wait()
	start := vclk.Now()
	WaitQuiescence(c.rts...)
	if d := vclk.Since(start); d > 5*time.Millisecond {
		t.Errorf("quiescence check after distributed termination took %v of virtual time", d)
	}
}

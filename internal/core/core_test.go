package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"mrts/internal/clock"
	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
	"mrts/internal/trace"
)

// testObj is a simple mobile object: a counter plus ballast bytes that give
// it a controllable size.
type testObj struct {
	Count   int64
	Ballast []byte
}

func (o *testObj) TypeID() uint16 { return 1 }

func (o *testObj) EncodeTo(w io.Writer) error {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(o.Count))
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(o.Ballast)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := w.Write(o.Ballast)
	return err
}

func (o *testObj) DecodeFrom(r io.Reader) error {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	o.Count = int64(binary.LittleEndian.Uint64(b[0:8]))
	o.Ballast = make([]byte, binary.LittleEndian.Uint32(b[8:12]))
	_, err := io.ReadFull(r, o.Ballast)
	return err
}

func (o *testObj) SizeHint() int { return 12 + len(o.Ballast) }

func testFactory(t uint16) (Object, error) {
	if t == 1 {
		return &testObj{}, nil
	}
	return nil, ErrUnknownType
}

// cluster is a test harness bundling n runtimes on an in-process transport.
type cluster struct {
	tr  *comm.InProcTransport
	rts []*Runtime
}

func newCluster(t testing.TB, n int, budget int64) *cluster {
	return newClusterClock(t, n, budget, nil)
}

// newVirtualCluster builds a cluster on a fresh virtual clock, for tests
// that run their schedule in virtual time. The clock stops after the
// cluster's own cleanup (LIFO), so shutdown still has a live clock.
func newVirtualCluster(t testing.TB, n int, budget int64) (*cluster, *clock.Virtual) {
	t.Helper()
	vclk := clock.NewVirtual()
	t.Cleanup(vclk.Stop)
	return newClusterClock(t, n, budget, vclk), vclk
}

func newClusterClock(t testing.TB, n int, budget int64, clk clock.Clock) *cluster {
	t.Helper()
	tr := comm.NewInProcClock(n, comm.LatencyModel{}, clk)
	c := &cluster{tr: tr}
	for i := 0; i < n; i++ {
		rt := NewRuntime(Config{
			Endpoint:  tr.Endpoint(comm.NodeID(i)),
			Pool:      sched.NewWorkStealing(2),
			Factory:   testFactory,
			Mem:       ooc.Config{Budget: budget},
			Store:     storage.NewMem(),
			Collector: trace.NewCollector(),
			Clock:     clk,
			CommDelay: func(size int) time.Duration {
				return 10*time.Microsecond + time.Duration(size)*time.Nanosecond
			},
		})
		c.rts = append(c.rts, rt)
	}
	t.Cleanup(func() {
		WaitQuiescence(c.rts...)
		for _, rt := range c.rts {
			rt.Close()
		}
		tr.Close()
	})
	return c
}

const (
	hInc   HandlerID = 1
	hRelay HandlerID = 2
)

func registerInc(c *cluster) {
	for _, rt := range c.rts {
		rt.Register(hInc, func(ctx *Ctx, arg []byte) {
			ctx.Object().(*testObj).Count++
		})
	}
}

func TestSingleNodePostAndQuiesce(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	obj := &testObj{}
	ptr := rt.CreateObject(obj)
	for i := 0; i < 100; i++ {
		rt.Post(ptr, hInc, nil)
	}
	WaitQuiescence(rt)
	if obj.Count != 100 {
		t.Fatalf("count = %d, want 100", obj.Count)
	}
	if rt.Work() != 0 {
		t.Fatalf("work = %d after quiescence", rt.Work())
	}
}

func TestCrossNodePost(t *testing.T) {
	c := newCluster(t, 3, 1<<20)
	registerInc(c)
	obj := &testObj{}
	ptr := c.rts[2].CreateObject(obj)
	// Post from every node, including non-home nodes.
	for _, rt := range c.rts {
		for i := 0; i < 50; i++ {
			rt.Post(ptr, hInc, nil)
		}
	}
	WaitQuiescence(c.rts...)
	if obj.Count != 150 {
		t.Fatalf("count = %d, want 150", obj.Count)
	}
}

func TestHandlerPostsMore(t *testing.T) {
	// A relay chain across nodes: each hop decrements a TTL and forwards.
	c := newCluster(t, 4, 1<<20)
	var hops atomic.Int64
	ptrs := make([]MobilePtr, 4)
	for i, rt := range c.rts {
		ptrs[i] = rt.CreateObject(&testObj{})
	}
	for i, rt := range c.rts {
		i := i
		rt.Register(hRelay, func(ctx *Ctx, arg []byte) {
			ttl := binary.LittleEndian.Uint32(arg)
			hops.Add(1)
			if ttl == 0 {
				return
			}
			next := make([]byte, 4)
			binary.LittleEndian.PutUint32(next, ttl-1)
			ctx.Post(ptrs[(i+1)%4], hRelay, next)
		})
	}
	arg := make([]byte, 4)
	binary.LittleEndian.PutUint32(arg, 99)
	c.rts[0].Post(ptrs[0], hRelay, arg)
	WaitQuiescence(c.rts...)
	if hops.Load() != 100 {
		t.Fatalf("hops = %d, want 100", hops.Load())
	}
}

func TestOutOfCoreEviction(t *testing.T) {
	// Budget fits only ~2 of the 10 objects; posting to all must swap
	// objects in and out while preserving their state.
	c := newCluster(t, 1, 3000)
	registerInc(c)
	rt := c.rts[0]
	var ptrs []MobilePtr
	for i := 0; i < 10; i++ {
		ptrs = append(ptrs, rt.CreateObject(&testObj{Ballast: make([]byte, 1000)}))
	}
	for round := 0; round < 5; round++ {
		for _, p := range ptrs {
			rt.Post(p, hInc, nil)
		}
		WaitQuiescence(rt)
	}
	stats := rt.Mem().Snapshot()
	if stats.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
	// Verify counts survived the swapping: load each object by posting one
	// final increment and checking the total.
	var total int64
	for _, p := range ptrs {
		rt.Post(p, hInc, nil)
	}
	WaitQuiescence(rt)
	for _, p := range ptrs {
		// Read the object via a handler to make sure it is in core.
		done := make(chan int64, 1)
		rt.Register(99, func(ctx *Ctx, arg []byte) {
			done <- ctx.Object().(*testObj).Count
		})
		rt.Post(p, 99, nil)
		total += <-done
	}
	if total != 60 {
		t.Fatalf("total = %d, want 60 (10 objects × 6 increments)", total)
	}
	t.Logf("evictions=%d loads=%d peak=%d", stats.Evictions, stats.Loads, stats.PeakMemUsed)
}

func TestLockPinsObject(t *testing.T) {
	c := newCluster(t, 1, 2500)
	registerInc(c)
	rt := c.rts[0]
	pinned := rt.CreateObject(&testObj{Ballast: make([]byte, 1000)})
	rt.Lock(pinned)
	for i := 0; i < 8; i++ {
		p := rt.CreateObject(&testObj{Ballast: make([]byte, 1000)})
		rt.Post(p, hInc, nil)
	}
	WaitQuiescence(rt)
	if !rt.InCore(pinned) {
		t.Fatal("locked object was evicted")
	}
	rt.Unlock(pinned)
}

func TestMigration(t *testing.T) {
	c := newCluster(t, 3, 1<<20)
	registerInc(c)
	obj := &testObj{Count: 7}
	ptr := c.rts[0].CreateObject(obj)
	if err := c.rts[0].Migrate(ptr, 1); err != nil {
		t.Fatal(err)
	}
	if c.rts[0].IsLocal(ptr) {
		t.Fatal("object still local at origin")
	}
	// Give the install a moment.
	deadline := time.Now().Add(5 * time.Second)
	for !c.rts[1].IsLocal(ptr) {
		if time.Now().After(deadline) {
			t.Fatal("object never arrived at node 1")
		}
		time.Sleep(time.Millisecond)
	}
	// Post from node 2, whose directory is stale (thinks home node 0 has
	// it); the message must be forwarded and still delivered.
	c.rts[2].Post(ptr, hInc, nil)
	WaitQuiescence(c.rts...)
	// The migrated object state lives on node 1 now; read it there.
	got := make(chan int64, 1)
	c.rts[1].Register(98, func(ctx *Ctx, arg []byte) {
		got <- ctx.Object().(*testObj).Count
	})
	c.rts[1].Post(ptr, 98, nil)
	if v := <-got; v != 8 {
		t.Fatalf("count = %d, want 8 (7 + 1 forwarded increment)", v)
	}
}

func TestMigrationCarriesQueue(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	obj := &testObj{}
	ptr := rt.CreateObject(obj)
	// Queue messages while the object cannot run them (no drain yet
	// because we enqueue under an artificial busy mark).
	// Simpler: migrate with an empty queue is already covered; here, just
	// verify post-then-migrate eventually lands all increments.
	for i := 0; i < 20; i++ {
		rt.Post(ptr, hInc, nil)
	}
	// Migration may fail with ErrBusy while draining; retry.
	for {
		err := rt.Migrate(ptr, 1)
		if err == nil {
			break
		}
		if err != ErrBusy {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < 20; i++ {
		c.rts[1].Post(ptr, hInc, nil)
	}
	WaitQuiescence(c.rts...)
	got := make(chan int64, 1)
	c.rts[1].Register(98, func(ctx *Ctx, arg []byte) {
		got <- ctx.Object().(*testObj).Count
	})
	c.rts[1].Post(ptr, 98, nil)
	if v := <-got; v != 40 {
		t.Fatalf("count = %d, want 40", v)
	}
}

func TestRequestMigrationPull(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	ptr := c.rts[0].CreateObject(&testObj{})
	c.rts[1].RequestMigration(ptr, 1)
	deadline := time.Now().Add(5 * time.Second)
	for !c.rts[1].IsLocal(ptr) {
		if time.Now().After(deadline) {
			t.Fatal("pull migration did not complete")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCallInline(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	registerInc(c)
	rt := c.rts[0]
	a := rt.CreateObject(&testObj{})
	bObj := &testObj{}
	b := rt.CreateObject(bObj)
	var inlined atomic.Bool
	rt.Register(50, func(ctx *Ctx, arg []byte) {
		inlined.Store(ctx.CallInline(b, hInc, nil))
	})
	rt.Post(a, 50, nil)
	WaitQuiescence(rt)
	if !inlined.Load() {
		t.Fatal("inline call should succeed for idle in-core object")
	}
	if bObj.Count != 1 {
		t.Fatalf("b.Count = %d", bObj.Count)
	}
	// Inline to a missing object fails.
	rt.Register(51, func(ctx *Ctx, arg []byte) {
		if ctx.CallInline(MobilePtr{Home: 0, Seq: 9999}, hInc, nil) {
			t.Error("inline call to unknown object should fail")
		}
	})
	rt.Post(a, 51, nil)
	WaitQuiescence(rt)
}

func TestForEachInHandler(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	rt := c.rts[0]
	var sum atomic.Int64
	rt.Register(60, func(ctx *Ctx, arg []byte) {
		ctx.ForEach(100, func(i int) { sum.Add(int64(i)) })
	})
	ptr := rt.CreateObject(&testObj{})
	rt.Post(ptr, 60, nil)
	WaitQuiescence(rt)
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestMulticastCollectsAndDelivers(t *testing.T) {
	c := newCluster(t, 3, 1<<20)
	registerInc(c)
	// Objects scattered across nodes.
	p0 := c.rts[0].CreateObject(&testObj{})
	p1 := c.rts[1].CreateObject(&testObj{})
	p2 := c.rts[2].CreateObject(&testObj{})
	c.rts[0].PostMulticast([]MobilePtr{p0, p1, p2}, 1, hInc, nil)
	WaitQuiescence(c.rts...)
	// All three objects must now be on node 0 (collected), and only p0
	// received the message.
	for i, p := range []MobilePtr{p0, p1, p2} {
		if !c.rts[0].IsLocal(p) {
			t.Fatalf("object %d not collected on node 0", i)
		}
	}
	if c.rts[0].PendingMulticasts() != 0 {
		t.Fatal("multicast still pending")
	}
	got := make(chan int64, 1)
	c.rts[0].Register(98, func(ctx *Ctx, arg []byte) {
		got <- ctx.Object().(*testObj).Count
	})
	c.rts[0].Post(p0, 98, nil)
	if v := <-got; v != 1 {
		t.Fatalf("p0 count = %d, want 1", v)
	}
	c.rts[0].Post(p1, 98, nil)
	if v := <-got; v != 0 {
		t.Fatalf("p1 count = %d, want 0 (deliverCount=1)", v)
	}
}

func TestMulticastDeliverAll(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	registerInc(c)
	p0 := c.rts[0].CreateObject(&testObj{})
	p1 := c.rts[1].CreateObject(&testObj{})
	// Initiate from node 1 while ptrs[0] lives on node 0: the multicast
	// must travel to node 0 and collect there.
	c.rts[1].PostMulticast([]MobilePtr{p0, p1}, 2, hInc, nil)
	WaitQuiescence(c.rts...)
	got := make(chan int64, 1)
	c.rts[0].Register(98, func(ctx *Ctx, arg []byte) {
		got <- ctx.Object().(*testObj).Count
	})
	for _, p := range []MobilePtr{p0, p1} {
		c.rts[0].Post(p, 98, nil)
		if v := <-got; v != 1 {
			t.Fatalf("%v count = %d, want 1", p, v)
		}
	}
}

func TestTraceAccounting(t *testing.T) {
	c := newCluster(t, 2, 2000)
	rt := c.rts[0]
	rt.Register(70, func(ctx *Ctx, arg []byte) {
		time.Sleep(2 * time.Millisecond) // computation
	})
	c.rts[1].Register(70, func(ctx *Ctx, arg []byte) {})
	var ptrs []MobilePtr
	for i := 0; i < 6; i++ {
		ptrs = append(ptrs, rt.CreateObject(&testObj{Ballast: make([]byte, 800)}))
	}
	for round := 0; round < 3; round++ {
		for _, p := range ptrs {
			rt.Post(p, 70, nil)
		}
		WaitQuiescence(c.rts...)
	}
	r := rt.Collector().Report()
	if r.Comp <= 0 {
		t.Error("no computation time recorded")
	}
	if r.Disk <= 0 {
		t.Error("no disk time recorded despite memory pressure")
	}
	// Cross-node message for comm accounting.
	remote := c.rts[1].CreateObject(&testObj{})
	rt.Post(remote, 70, nil)
	WaitQuiescence(c.rts...)
	if c.rts[1].Collector().Report().Comm <= 0 {
		t.Error("no communication time recorded for remote message")
	}
}

func TestCreateManyObjectsUniquePointers(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	seen := make(map[MobilePtr]bool)
	for i := 0; i < 100; i++ {
		for _, rt := range c.rts {
			p := rt.CreateObject(&testObj{})
			if seen[p] {
				t.Fatalf("duplicate pointer %v", p)
			}
			seen[p] = true
		}
	}
}

func TestPostAfterCloseIsNoop(t *testing.T) {
	tr := comm.NewInProc(1, comm.LatencyModel{})
	defer tr.Close()
	pool := sched.NewWorkStealing(1)
	defer pool.Close()
	rt := NewRuntime(Config{
		Endpoint: tr.Endpoint(0),
		Pool:     pool,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    storage.NewMem(),
	})
	ptr := rt.CreateObject(&testObj{})
	rt.Close()
	rt.Post(ptr, hInc, nil) // must not panic or hang
	if rt.Work() != 0 {
		t.Fatal("post after close should not create work")
	}
}

func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c := newCluster(t, 4, 20000)
	registerInc(c)
	var all []MobilePtr
	for _, rt := range c.rts {
		for i := 0; i < 25; i++ {
			all = append(all, rt.CreateObject(&testObj{Ballast: make([]byte, 500)}))
		}
	}
	// Every node posts to every object repeatedly — remote routing, OOC
	// swapping and queue handling all at once.
	for round := 0; round < 10; round++ {
		for _, rt := range c.rts {
			for _, p := range all {
				rt.Post(p, hInc, nil)
			}
		}
	}
	WaitQuiescence(c.rts...)
	// Each object: 10 rounds × 4 nodes = 40 increments.
	got := make(chan int64, 1)
	for _, rt := range c.rts {
		rt.Register(98, func(ctx *Ctx, arg []byte) {
			got <- ctx.Object().(*testObj).Count
		})
	}
	var total int64
	for _, p := range all {
		c.rts[p.Home].Post(p, 98, nil)
		total += <-got
	}
	if want := int64(len(all) * 40); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestMobilePtrString(t *testing.T) {
	p := MobilePtr{Home: 3, Seq: 42}
	if p.String() != "mp{3:42}" {
		t.Errorf("String = %q", p.String())
	}
	if !Nil.IsNil() || p.IsNil() {
		t.Error("IsNil misbehaves")
	}
}

func TestWirreRoundtrips(t *testing.T) {
	m := &appMsg{
		dst:     MobilePtr{Home: 2, Seq: 77},
		handler: 9,
		sentAt:  123456789,
		route:   []NodeID{0, 3},
		arg:     []byte("payload"),
	}
	got, err := decodeApp(encodeApp(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.dst != m.dst || got.handler != m.handler || got.sentAt != m.sentAt ||
		len(got.route) != 2 || got.route[0] != 0 || got.route[1] != 3 ||
		string(got.arg) != "payload" {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	in := &install{
		ptr: MobilePtr{Home: 1, Seq: 5}, typeID: 1, priority: -3, locked: true,
		blob:  []byte{1, 2, 3},
		queue: []queued{{handler: 4, sentAt: 99, arg: []byte("a")}},
	}
	gin, err := decodeInstall(encodeInstall(in))
	if err != nil {
		t.Fatal(err)
	}
	if gin.ptr != in.ptr || gin.typeID != 1 || gin.priority != -3 || !gin.locked ||
		string(gin.blob) != string([]byte{1, 2, 3}) || len(gin.queue) != 1 ||
		gin.queue[0].handler != 4 || string(gin.queue[0].arg) != "a" {
		t.Fatalf("install roundtrip mismatch: %+v", gin)
	}
	if _, err := decodeApp([]byte{1, 2}); err == nil {
		t.Error("short app message should fail")
	}
	if _, err := decodeInstall([]byte{1}); err == nil {
		t.Error("short install should fail")
	}
	_ = fmt.Sprint(m.dst)
}

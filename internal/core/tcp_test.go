package core

import (
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

// TestRuntimeOverTCP runs the full MRTS stack over real loopback TCP
// sockets: the control layer is transport-agnostic, so posting, forwarding,
// migration, out-of-core swapping and termination must all work unchanged.
func TestRuntimeOverTCP(t *testing.T) {
	tr, err := comm.NewTCP(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var rts []*Runtime
	var pools []sched.Pool
	for i := 0; i < 3; i++ {
		pool := sched.NewWorkStealing(2)
		pools = append(pools, pool)
		rts = append(rts, NewRuntime(Config{
			Endpoint: tr.Endpoint(comm.NodeID(i)),
			Pool:     pool,
			Factory:  testFactory,
			Mem:      ooc.Config{Budget: 4000}, // tight: swapping over TCP runs too
			Store:    storage.NewMem(),
			NumNodes: 3,
		}))
	}
	defer func() {
		WaitQuiescence(rts...)
		for _, rt := range rts {
			rt.Close()
		}
		for _, p := range pools {
			p.Close()
		}
	}()
	for _, rt := range rts {
		rt.Register(hInc, func(ctx *Ctx, arg []byte) {
			ctx.Object().(*testObj).Count++
		})
	}

	// Objects with ballast so the budget forces evictions.
	var ptrs []MobilePtr
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			ptrs = append(ptrs, rts[i].CreateObject(&testObj{Ballast: make([]byte, 1000)}))
		}
	}
	// Cross-node traffic.
	for _, rt := range rts {
		for _, p := range ptrs {
			for k := 0; k < 5; k++ {
				rt.Post(p, hInc, nil)
			}
		}
	}
	WaitQuiescence(rts...)

	// Migrate an object over TCP and keep posting to it.
	mig := ptrs[0]
	for {
		err := rts[0].Migrate(mig, 2)
		if err == nil {
			break
		}
		if err != ErrBusy {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !rts[2].IsLocal(mig) {
		if time.Now().After(deadline) {
			t.Fatal("TCP migration never landed")
		}
		time.Sleep(time.Millisecond)
	}
	rts[1].Post(mig, hInc, nil)
	WaitQuiescence(rts...)

	// Verify all counts: every object got 15 increments; the migrated one 16.
	got := make(chan int64, 1)
	for _, rt := range rts {
		rt.Register(98, func(ctx *Ctx, arg []byte) {
			got <- ctx.Object().(*testObj).Count
		})
	}
	for _, p := range ptrs {
		want := int64(15)
		target := rts[p.Home]
		if p == mig {
			want = 16
			target = rts[2]
		}
		target.Post(p, 98, nil)
		select {
		case v := <-got:
			if v != want {
				t.Fatalf("object %v count = %d, want %d", p, v, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("no reply for %v", p)
		}
	}
	// The tight budget must have caused real swapping during the run.
	var evictions uint64
	for _, rt := range rts {
		evictions += rt.Mem().Snapshot().Evictions
	}
	if evictions == 0 {
		t.Error("expected evictions under the tight budget")
	}
}

package core

import (
	"testing"
	"time"

	"mrts/internal/comm"
	"mrts/internal/ooc"
	"mrts/internal/sched"
	"mrts/internal/storage"
)

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	c := newCluster(t, 1, 2500) // tight budget: some objects end up on disk
	registerInc(c)
	rt := c.rts[0]
	var ptrs []MobilePtr
	for i := 0; i < 6; i++ {
		ptrs = append(ptrs, rt.CreateObject(&testObj{Count: int64(i), Ballast: make([]byte, 800)}))
	}
	for _, p := range ptrs {
		rt.Post(p, hInc, nil)
	}
	WaitQuiescence(rt)

	ckpt := storage.NewMem()
	if err := rt.Checkpoint(ckpt, "ck1"); err != nil {
		t.Fatal(err)
	}

	// A brand-new runtime (same node id) restores from the checkpoint.
	tr2 := comm.NewInProc(1, comm.LatencyModel{})
	defer tr2.Close()
	pool2 := sched.NewWorkStealing(2)
	defer pool2.Close()
	rt2 := NewRuntime(Config{
		Endpoint: tr2.Endpoint(0),
		Pool:     pool2,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    storage.NewMem(),
	})
	defer rt2.Close()
	if err := rt2.Restore(ckpt, "ck1"); err != nil {
		t.Fatal(err)
	}
	if rt2.NumLocalObjects() != 6 {
		t.Fatalf("restored %d objects, want 6", rt2.NumLocalObjects())
	}
	// The restored objects must carry the pre-checkpoint state: object i
	// had Count == i+1 (initial i plus one increment).
	rt2.Register(hInc, func(ctx *Ctx, arg []byte) { ctx.Object().(*testObj).Count++ })
	got := make(chan int64, 1)
	rt2.Register(98, func(ctx *Ctx, arg []byte) { got <- ctx.Object().(*testObj).Count })
	for i, p := range ptrs {
		rt2.Post(p, 98, nil)
		if v := <-got; v != int64(i)+1 {
			t.Fatalf("object %d restored Count = %d, want %d", i, v, i+1)
		}
	}
	// New sequence numbers must not collide with checkpointed objects.
	np := rt2.CreateObject(&testObj{})
	for _, p := range ptrs {
		if np == p {
			t.Fatal("sequence collision after restore")
		}
	}
}

func TestCheckpointRefusesBusyObject(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	rt := c.rts[0]
	block := make(chan struct{})
	started := make(chan struct{})
	rt.Register(77, func(ctx *Ctx, arg []byte) {
		close(started)
		<-block
	})
	ptr := rt.CreateObject(&testObj{})
	rt.Post(ptr, 77, nil)
	<-started
	ckpt := storage.NewMem()
	err := rt.Checkpoint(ckpt, "busy")
	close(block)
	if err == nil {
		t.Fatal("checkpoint of a running object should fail")
	}
	WaitQuiescence(rt)
}

func TestRestoreWrongNode(t *testing.T) {
	c := newCluster(t, 2, 1<<20)
	rt := c.rts[0]
	rt.CreateObject(&testObj{})
	WaitQuiescence(rt)
	ckpt := storage.NewMem()
	if err := rt.Checkpoint(ckpt, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.rts[1].Restore(ckpt, "x"); err == nil {
		t.Fatal("restore on wrong node should fail")
	}
}

func TestRestoreRefusesNonEmptyRuntime(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	rt := c.rts[0]
	rt.CreateObject(&testObj{})
	WaitQuiescence(rt)
	ckpt := storage.NewMem()
	if err := rt.Checkpoint(ckpt, "x"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Restore(ckpt, "x"); err == nil {
		t.Fatal("restore into a non-empty runtime should fail")
	}
}

func TestRestoreMissingManifest(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	if err := c.rts[0].Restore(storage.NewMem(), "nope"); err == nil {
		t.Fatal("restore without manifest should fail")
	}
}

func TestCheckpointPreservesLocks(t *testing.T) {
	c := newCluster(t, 1, 1<<20)
	rt := c.rts[0]
	ptr := rt.CreateObject(&testObj{})
	rt.Lock(ptr)
	WaitQuiescence(rt)
	ckpt := storage.NewMem()
	if err := rt.Checkpoint(ckpt, "lk"); err != nil {
		t.Fatal(err)
	}
	tr2 := comm.NewInProc(1, comm.LatencyModel{})
	defer tr2.Close()
	pool2 := sched.NewWorkStealing(1)
	defer pool2.Close()
	rt2 := NewRuntime(Config{
		Endpoint: tr2.Endpoint(0),
		Pool:     pool2,
		Factory:  testFactory,
		Mem:      ooc.Config{Budget: 1 << 20},
		Store:    storage.NewMem(),
	})
	defer rt2.Close()
	if err := rt2.Restore(ckpt, "lk"); err != nil {
		t.Fatal(err)
	}
	if !rt2.Mem().Locked(oid(ptr)) {
		t.Fatal("lock hint lost across checkpoint/restore")
	}
	// Give the background no chance to leave stray work.
	time.Sleep(time.Millisecond)
	WaitQuiescence(rt2)
}

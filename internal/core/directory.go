package core

import "sync/atomic"

// DirectoryPolicy selects how mobile object locations propagate after
// migration. The paper's system uses lazy updates, chosen over the
// alternatives after experimentation ("lazy updates provides good compromise
// between accuracy and update overhead"); all three candidates are
// implemented here so the trade-off can be measured (see the dirpolicies
// bench experiment).
type DirectoryPolicy int

const (
	// DirLazy (default): messages are forwarded along stale directory
	// chains; when one finally reaches the object, update messages flow
	// back to every node it was routed through.
	DirLazy DirectoryPolicy = iota
	// DirEager: a migration immediately broadcasts the new location to
	// every node — accurate but O(nodes) traffic per migration.
	DirEager
	// DirHome: no location caching at all; every message for a non-local
	// object is sent to its home node, which forwards it — cheap updates,
	// permanent double-hop for migrated objects.
	DirHome
)

// String implements fmt.Stringer.
func (p DirectoryPolicy) String() string {
	switch p {
	case DirEager:
		return "eager"
	case DirHome:
		return "home"
	default:
		return "lazy"
	}
}

// DirectoryPolicies lists all supported policies.
func DirectoryPolicies() []DirectoryPolicy { return []DirectoryPolicy{DirLazy, DirEager, DirHome} }

// dirStats counts routing events for the policy comparison.
type dirStats struct {
	forwarded  atomic.Int64 // messages received for objects not local here
	dirUpdates atomic.Int64 // directory update messages sent
}

// ForwardedCount returns how many application messages this node received
// and had to forward onward (a measure of directory staleness).
func (rt *Runtime) ForwardedCount() int64 { return rt.dstats.forwarded.Load() }

// DirUpdatesSent returns how many directory update messages this node sent.
func (rt *Runtime) DirUpdatesSent() int64 { return rt.dstats.dirUpdates.Load() }

// lookupLocked returns the node to try for ptr under the active policy.
// Caller holds rt.mu.
func (rt *Runtime) lookupLocked(ptr MobilePtr) NodeID {
	if rt.dirPolicy == DirHome && ptr.Home != rt.node {
		// Non-home nodes never cache: always route via home. The home
		// node itself must consult its map (it is the forwarding anchor).
		return ptr.Home
	}
	if n, ok := rt.dir[ptr]; ok {
		return n
	}
	return ptr.Home
}

// recordLocation notes a fresher location for ptr (no-op under DirHome,
// which never caches).
func (rt *Runtime) recordLocation(ptr MobilePtr, at NodeID) {
	if rt.dirPolicy == DirHome && ptr.Home != rt.node {
		return
	}
	rt.mu.Lock()
	if _, local := rt.objects[ptr]; !local {
		rt.dir[ptr] = at
	}
	rt.mu.Unlock()
}

// broadcastLocation implements the eager policy's migration hook.
func (rt *Runtime) broadcastLocation(ptr MobilePtr, at NodeID, numNodes int) {
	upd := encodeDirUpdate(ptr, at)
	for n := 0; n < numNodes; n++ {
		if NodeID(n) == rt.node || NodeID(n) == at {
			continue
		}
		rt.dstats.dirUpdates.Add(1)
		_ = rt.ep.Send(NodeID(n), wireDirUpdate, upd)
	}
}

package core

import "sync/atomic"

// DirectoryPolicy selects how mobile object locations propagate after
// migration. The paper's system uses lazy updates, chosen over the
// alternatives after experimentation ("lazy updates provides good compromise
// between accuracy and update overhead"); all three candidates are
// implemented here so the trade-off can be measured (see the dirpolicies
// bench experiment). The policies are realized behind the Locator seam — see
// NewPolicyLocator — and a fourth, placement-aware locator lives in
// internal/cluster (NewPlacedLocator), which routes by the consistent-hash
// directory instead of the home anchor.
type DirectoryPolicy int

const (
	// DirLazy (default): messages are forwarded along stale directory
	// chains; when one finally reaches the object, update messages flow
	// back to every node it was routed through.
	DirLazy DirectoryPolicy = iota
	// DirEager: a migration immediately broadcasts the new location to
	// every node — accurate but O(nodes) traffic per migration.
	DirEager
	// DirHome: no location caching at all; every message for a non-local
	// object is sent to its home node, which forwards it — cheap updates,
	// permanent double-hop for migrated objects.
	DirHome
)

// String implements fmt.Stringer.
func (p DirectoryPolicy) String() string {
	switch p {
	case DirEager:
		return "eager"
	case DirHome:
		return "home"
	default:
		return "lazy"
	}
}

// DirectoryPolicies lists all supported policies.
func DirectoryPolicies() []DirectoryPolicy { return []DirectoryPolicy{DirLazy, DirEager, DirHome} }

// hopBuckets is the route.hops histogram width: buckets for 1..4 hops plus a
// final 5+ overflow bucket.
const hopBuckets = 5

// dirStats counts routing events for the policy comparison and the routing
// observability surface.
type dirStats struct {
	forwarded    atomic.Int64 // messages received for objects not local here
	dirUpdates   atomic.Int64 // directory update messages sent
	dropped      atomic.Int64 // messages dropped at the forward-hop bound
	staleRetries atomic.Int64 // re-resolves after an epoch mismatch
	hopSum       atomic.Int64 // total hops across delivered remote messages
	hopCount     atomic.Int64 // delivered remote messages
	hops         [hopBuckets]atomic.Int64
}

// observeHops records the hop count of one delivered remote message.
func (s *dirStats) observeHops(hops int) {
	s.hopSum.Add(int64(hops))
	s.hopCount.Add(1)
	b := hops
	if b > hopBuckets {
		b = hopBuckets
	}
	if b >= 1 {
		s.hops[b-1].Add(1)
	}
}

// ForwardedCount returns how many application messages this node received
// and had to forward onward (a measure of directory staleness).
func (rt *Runtime) ForwardedCount() int64 { return rt.dstats.forwarded.Load() }

// DirUpdatesSent returns how many directory update messages this node sent.
func (rt *Runtime) DirUpdatesSent() int64 { return rt.dstats.dirUpdates.Load() }

// RouteDropped returns how many messages this node dropped at the
// forward-hop bound. Nonzero means a routing cycle or an object lost to a
// failed install — CheckInvariants surfaces it as a quiescent violation so
// sim soaks fail loudly instead of silently losing messages.
func (rt *Runtime) RouteDropped() int64 { return rt.dstats.dropped.Load() }

// RouteStaleRetries returns how many received messages carried a resolution
// epoch older than the locator's current one and were re-resolved here.
func (rt *Runtime) RouteStaleRetries() int64 { return rt.dstats.staleRetries.Load() }

// RouteHopsMean returns the mean hop count over messages delivered to this
// node from remote senders (1.0 = every message took the direct hop).
func (rt *Runtime) RouteHopsMean() float64 {
	n := rt.dstats.hopCount.Load()
	if n == 0 {
		return 0
	}
	return float64(rt.dstats.hopSum.Load()) / float64(n)
}

// RouteHopHistogram returns the delivered-message hop histogram: buckets for
// 1, 2, 3, 4 and 5+ hops.
func (rt *Runtime) RouteHopHistogram() [hopBuckets]int64 {
	var out [hopBuckets]int64
	for i := range out {
		out[i] = rt.dstats.hops[i].Load()
	}
	return out
}

// Locator returns the runtime's routing locator.
func (rt *Runtime) Locator() Locator { return rt.loc }

// Package geom3 provides the 3-D geometric primitives for tetrahedral
// meshing: points, exact orientation and in-sphere predicates (floating
// point filter with math/big fallback, after Shewchuk), circumspheres and
// element size measures. The paper's mesh generation methods run in both
// 2-D and 3-D; the MRTS code paths are dimension-independent, and this
// package backs the 3-D build.
package geom3

import (
	"fmt"
	"math"
	"math/big"
)

// Point is a point in 3-space.
type Point struct {
	X, Y, Z float64
}

// Pt is shorthand for Point{x, y, z}.
func Pt(x, y, z float64) Point { return Point{x, y, z} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product p × q.
func (p Point) Cross(q Point) Point {
	return Point{
		p.Y*q.Z - p.Z*q.Y,
		p.Z*q.X - p.X*q.Z,
		p.X*q.Y - p.Y*q.X,
	}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	d := p.Sub(q)
	return math.Sqrt(d.Dot(d))
}

// Dist2 returns the squared distance.
func (p Point) Dist2(q Point) float64 {
	d := p.Sub(q)
	return d.Dot(d)
}

// Eq reports exact equality.
func (p Point) Eq(q Point) bool { return p == q }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g, %g)", p.X, p.Y, p.Z) }

// Box is an axis-aligned box.
type Box struct {
	Min, Max Point
}

// NewBox returns the box spanning the two corners in any order.
func NewBox(a, b Point) Box {
	return Box{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// Center returns the box center.
func (b Box) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Contains reports whether p lies inside b (inclusive).
func (b Box) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Diagonal returns the length of the box diagonal.
func (b Box) Diagonal() float64 { return b.Min.Dist(b.Max) }

// Sign is the sign of a determinant.
type Sign int

// Determinant signs.
const (
	Negative Sign = -1
	Zero     Sign = 0
	Positive Sign = 1
)

// Forward error bounds (Shewchuk).
const (
	epsilon3    = 2.220446049250313e-16 / 2
	o3dErrBound = (7.0 + 56.0*epsilon3) * epsilon3
	ispErrBound = (16.0 + 224.0*epsilon3) * epsilon3
)

func signOf(x float64) Sign {
	switch {
	case x > 0:
		return Positive
	case x < 0:
		return Negative
	default:
		return Zero
	}
}

func abs3(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Orient3D returns Positive if d lies on the positive side of the plane
// through a, b, c — the side the right-hand-rule normal of the
// counter-clockwise triangle (a, b, c) points to — Negative on the other
// side, and Zero if the four points are coplanar. The result is exact.
func Orient3D(a, b, c, d Point) Sign {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)
	permanent := (abs3(bdxcdy)+abs3(cdxbdy))*abs3(adz) +
		(abs3(cdxady)+abs3(adxcdy))*abs3(bdz) +
		(abs3(adxbdy)+abs3(bdxady))*abs3(cdz)
	errBound := o3dErrBound * permanent
	if det > errBound || -det > errBound {
		return signOf(-det) // Shewchuk's det is positive *below* the plane
	}
	return orient3DExact(a, b, c, d)
}

func orient3DExact(a, b, c, d Point) Sign {
	const prec = 256
	nf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(prec) }
	sub := func(x, y float64) *big.Float { return new(big.Float).SetPrec(prec).Sub(nf(x), nf(y)) }
	mul := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Mul(x, y) }
	sb := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Sub(x, y) }
	ad := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Add(x, y) }

	adx, ady, adz := sub(a.X, d.X), sub(a.Y, d.Y), sub(a.Z, d.Z)
	bdx, bdy, bdz := sub(b.X, d.X), sub(b.Y, d.Y), sub(b.Z, d.Z)
	cdx, cdy, cdz := sub(c.X, d.X), sub(c.Y, d.Y), sub(c.Z, d.Z)

	t1 := mul(adz, sb(mul(bdx, cdy), mul(cdx, bdy)))
	t2 := mul(bdz, sb(mul(cdx, ady), mul(adx, cdy)))
	t3 := mul(cdz, sb(mul(adx, bdy), mul(bdx, ady)))
	det := ad(ad(t1, t2), t3)
	return Sign(-det.Sign())
}

// InSphere returns Positive if point e lies strictly inside the sphere
// through a, b, c, d (which must be positively oriented: Orient3D(a,b,c,d)
// > 0), Negative outside, Zero on the sphere. Exact.
func InSphere(a, b, c, d, e Point) Sign {
	aex, aey, aez := a.X-e.X, a.Y-e.Y, a.Z-e.Z
	bex, bey, bez := b.X-e.X, b.Y-e.Y, b.Z-e.Z
	cex, cey, cez := c.X-e.X, c.Y-e.Y, c.Z-e.Z
	dex, dey, dez := d.X-e.X, d.Y-e.Y, d.Z-e.Z

	aexbey := aex * bey
	bexaey := bex * aey
	ab := aexbey - bexaey
	bexcey := bex * cey
	cexbey := cex * bey
	bc := bexcey - cexbey
	cexdey := cex * dey
	dexcey := dex * cey
	cd := cexdey - dexcey
	dexaey := dex * aey
	aexdey := aex * dey
	da := dexaey - aexdey
	aexcey := aex * cey
	cexaey := cex * aey
	ac := aexcey - cexaey
	bexdey := bex * dey
	dexbey := dex * bey
	bd := bexdey - dexbey

	abc := aez*bc - bez*ac + cez*ab
	bcd := bez*cd - cez*bd + dez*bc
	cda := cez*da + dez*ac + aez*cd
	dab := dez*ab + aez*bd + bez*da

	alift := aex*aex + aey*aey + aez*aez
	blift := bex*bex + bey*bey + bez*bez
	clift := cex*cex + cey*cey + cez*cez
	dlift := dex*dex + dey*dey + dez*dez

	det := (dlift*abc - clift*dab) + (blift*cda - alift*bcd)

	aezplus := abs3(aez)
	bezplus := abs3(bez)
	cezplus := abs3(cez)
	dezplus := abs3(dez)
	aexbeyplus := abs3(aexbey)
	bexaeyplus := abs3(bexaey)
	bexceyplus := abs3(bexcey)
	cexbeyplus := abs3(cexbey)
	cexdeyplus := abs3(cexdey)
	dexceyplus := abs3(dexcey)
	dexaeyplus := abs3(dexaey)
	aexdeyplus := abs3(aexdey)
	aexceyplus := abs3(aexcey)
	cexaeyplus := abs3(cexaey)
	bexdeyplus := abs3(bexdey)
	dexbeyplus := abs3(dexbey)
	permanent := ((cexdeyplus+dexceyplus)*bezplus+
		(dexbeyplus+bexdeyplus)*cezplus+
		(bexceyplus+cexbeyplus)*dezplus)*alift +
		((dexaeyplus+aexdeyplus)*cezplus+
			(aexceyplus+cexaeyplus)*dezplus+
			(cexdeyplus+dexceyplus)*aezplus)*blift +
		((aexbeyplus+bexaeyplus)*dezplus+
			(bexdeyplus+dexbeyplus)*aezplus+
			(dexaeyplus+aexdeyplus)*bezplus)*clift +
		((bexceyplus+cexbeyplus)*aezplus+
			(cexaeyplus+aexceyplus)*bezplus+
			(aexbeyplus+bexaeyplus)*cezplus)*dlift
	errBound := ispErrBound * permanent
	if det > errBound || -det > errBound {
		return signOf(-det) // sign follows the flipped orientation convention
	}
	return inSphereExact(a, b, c, d, e)
}

func inSphereExact(a, b, c, d, e Point) Sign {
	const prec = 512
	nf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(prec) }
	sub := func(x, y float64) *big.Float { return new(big.Float).SetPrec(prec).Sub(nf(x), nf(y)) }
	mul := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Mul(x, y) }
	sb := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Sub(x, y) }
	ad := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Add(x, y) }

	type row struct{ x, y, z, lift *big.Float }
	mk := func(p Point) row {
		x, y, z := sub(p.X, e.X), sub(p.Y, e.Y), sub(p.Z, e.Z)
		lift := ad(ad(mul(x, x), mul(y, y)), mul(z, z))
		return row{x, y, z, lift}
	}
	ra, rb, rc, rd := mk(a), mk(b), mk(c), mk(d)

	// 4x4 determinant | x y z lift | expanded along lift column.
	det3 := func(p, q, r row) *big.Float {
		t1 := mul(p.x, sb(mul(q.y, r.z), mul(r.y, q.z)))
		t2 := mul(q.x, sb(mul(r.y, p.z), mul(p.y, r.z)))
		t3 := mul(r.x, sb(mul(p.y, q.z), mul(q.y, p.z)))
		return ad(ad(t1, t2), t3)
	}
	// det = -lift_a*det3(b,c,d) + lift_b*det3(a,c,d)
	//       -lift_c*det3(a,b,d) + lift_d*det3(a,b,c)
	det := new(big.Float).SetPrec(prec)
	det.Sub(det, mul(ra.lift, det3(rb, rc, rd)))
	det.Add(det, mul(rb.lift, det3(ra, rc, rd)))
	det.Sub(det, mul(rc.lift, det3(ra, rb, rd)))
	det.Add(det, mul(rd.lift, det3(ra, rb, rc)))
	return Sign(-det.Sign())
}

// Tet is a tetrahedron given by its corners.
type Tet struct {
	A, B, C, D Point
}

// Volume returns the signed volume (positive for positively oriented tets).
func (t Tet) Volume() float64 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)).Dot(t.D.Sub(t.A)) / 6
}

// Centroid returns the centroid.
func (t Tet) Centroid() Point {
	return Point{
		(t.A.X + t.B.X + t.C.X + t.D.X) / 4,
		(t.A.Y + t.B.Y + t.C.Y + t.D.Y) / 4,
		(t.A.Z + t.B.Z + t.C.Z + t.D.Z) / 4,
	}
}

// Circumcenter returns the circumcenter and whether it is well-defined.
func (t Tet) Circumcenter() (Point, bool) {
	// Solve 2 (P - A) · x = |P|² - |A|² for P in {B, C, D} relative to A.
	b := t.B.Sub(t.A)
	c := t.C.Sub(t.A)
	d := t.D.Sub(t.A)
	det := b.Cross(c).Dot(d) * 2
	if det == 0 {
		return Point{}, false
	}
	b2, c2, d2 := b.Dot(b), c.Dot(c), d.Dot(d)
	x := c.Cross(d).Scale(b2).Add(d.Cross(b).Scale(c2)).Add(b.Cross(c).Scale(d2)).Scale(1 / det)
	return t.A.Add(x), true
}

// Circumradius returns the circumradius (+Inf for degenerate tets).
func (t Tet) Circumradius() float64 {
	cc, ok := t.Circumcenter()
	if !ok {
		return math.Inf(1)
	}
	return cc.Dist(t.A)
}

// LongestEdge returns the longest of the six edge lengths.
func (t Tet) LongestEdge() float64 {
	m := t.A.Dist(t.B)
	for _, d := range []float64{
		t.A.Dist(t.C), t.A.Dist(t.D), t.B.Dist(t.C), t.B.Dist(t.D), t.C.Dist(t.D),
	} {
		if d > m {
			m = d
		}
	}
	return m
}

// ShortestEdge returns the shortest of the six edge lengths.
func (t Tet) ShortestEdge() float64 {
	m := t.A.Dist(t.B)
	for _, d := range []float64{
		t.A.Dist(t.C), t.A.Dist(t.D), t.B.Dist(t.C), t.B.Dist(t.D), t.C.Dist(t.D),
	} {
		if d < m {
			m = d
		}
	}
	return m
}

// RadiusEdgeRatio returns circumradius / shortest edge, the standard 3-D
// quality measure (≈ 0.612 for a regular tetrahedron).
func (t Tet) RadiusEdgeRatio() float64 {
	se := t.ShortestEdge()
	if se == 0 {
		return math.Inf(1)
	}
	return t.Circumradius() / se
}

package geom3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2, 3), Pt(4, 5, 6)
	if p.Add(q) != Pt(5, 7, 9) {
		t.Error("Add")
	}
	if q.Sub(p) != Pt(3, 3, 3) {
		t.Error("Sub")
	}
	if p.Scale(2) != Pt(2, 4, 6) {
		t.Error("Scale")
	}
	if p.Dot(q) != 4+10+18 {
		t.Error("Dot")
	}
	if Pt(1, 0, 0).Cross(Pt(0, 1, 0)) != Pt(0, 0, 1) {
		t.Error("Cross")
	}
	if Pt(0, 0, 0).Dist(Pt(2, 3, 6)) != 7 {
		t.Error("Dist")
	}
	if Pt(0, 0, 0).Dist2(Pt(2, 3, 6)) != 49 {
		t.Error("Dist2")
	}
}

func TestBox(t *testing.T) {
	b := NewBox(Pt(1, 1, 1), Pt(0, 0, 0))
	if b.Min != Pt(0, 0, 0) || b.Max != Pt(1, 1, 1) {
		t.Fatal("NewBox normalization")
	}
	if b.Center() != Pt(0.5, 0.5, 0.5) {
		t.Error("Center")
	}
	if !b.Contains(Pt(0.5, 0.5, 0.5)) || b.Contains(Pt(2, 0, 0)) {
		t.Error("Contains")
	}
	if math.Abs(b.Diagonal()-math.Sqrt(3)) > 1e-12 {
		t.Error("Diagonal")
	}
}

func TestOrient3DBasic(t *testing.T) {
	a, b, c := Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0)
	if Orient3D(a, b, c, Pt(0, 0, 1)) != Positive {
		t.Error("above should be Positive")
	}
	if Orient3D(a, b, c, Pt(0, 0, -1)) != Negative {
		t.Error("below should be Negative")
	}
	if Orient3D(a, b, c, Pt(5, 5, 0)) != Zero {
		t.Error("coplanar should be Zero")
	}
}

func TestOrient3DNearDegenerate(t *testing.T) {
	a, b, c := Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0)
	for i := 30; i < 48; i++ {
		eps := math.Ldexp(1, -i)
		if Orient3D(a, b, c, Pt(0.3, 0.3, eps)) != Positive {
			t.Fatalf("eps=2^-%d misclassified (above)", i)
		}
		if Orient3D(a, b, c, Pt(0.3, 0.3, -eps)) != Negative {
			t.Fatalf("eps=2^-%d misclassified (below)", i)
		}
	}
}

func TestOrient3DSwapAntisymmetry(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		a, b, c, d := Pt(ax, ay, az), Pt(bx, by, bz), Pt(cx, cy, cz), Pt(dx, dy, dz)
		return Orient3D(a, b, c, d) == -Orient3D(b, a, c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInSphereBasic(t *testing.T) {
	// Regular-ish tet with circumsphere around the origin region.
	a, b, c, d := Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0), Pt(0, 0, 1)
	if Orient3D(a, b, c, d) != Positive {
		t.Fatal("test tet not positively oriented")
	}
	cc, ok := (geomTet(a, b, c, d)).Circumcenter()
	if !ok {
		t.Fatal("no circumcenter")
	}
	if InSphere(a, b, c, d, cc) != Positive {
		t.Error("circumcenter should be inside the circumsphere")
	}
	if InSphere(a, b, c, d, Pt(10, 10, 10)) != Negative {
		t.Error("far point should be outside")
	}
	// A cocircular point: reflect a vertex through the center.
	e := cc.Add(cc.Sub(a))
	if InSphere(a, b, c, d, e) != Zero {
		t.Error("antipodal point should be on the sphere")
	}
}

func geomTet(a, b, c, d Point) Tet { return Tet{A: a, B: b, C: c, D: d} }

func TestInSphereNearBoundary(t *testing.T) {
	a, b, c, d := Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0), Pt(0, 0, 1)
	cc, _ := geomTet(a, b, c, d).Circumcenter()
	r := cc.Dist(a)
	for i := 40; i < 50; i++ {
		eps := math.Ldexp(1, -i)
		in := Pt(cc.X+r-eps, cc.Y, cc.Z)
		out := Pt(cc.X+r+eps, cc.Y, cc.Z)
		if InSphere(a, b, c, d, in) != Positive {
			t.Fatalf("eps=2^-%d: inside point misclassified", i)
		}
		if InSphere(a, b, c, d, out) != Negative {
			t.Fatalf("eps=2^-%d: outside point misclassified", i)
		}
	}
}

func TestTetMeasures(t *testing.T) {
	tet := geomTet(Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0), Pt(0, 0, 1))
	if math.Abs(tet.Volume()-1.0/6) > 1e-12 {
		t.Errorf("Volume = %v", tet.Volume())
	}
	if tet.Centroid() != Pt(0.25, 0.25, 0.25) {
		t.Errorf("Centroid = %v", tet.Centroid())
	}
	cc, ok := tet.Circumcenter()
	if !ok {
		t.Fatal("no circumcenter")
	}
	if cc.Dist(Pt(0.5, 0.5, 0.5)) > 1e-12 {
		t.Errorf("Circumcenter = %v, want (0.5,0.5,0.5)", cc)
	}
	if math.Abs(tet.Circumradius()-math.Sqrt(3)/2) > 1e-12 {
		t.Errorf("Circumradius = %v", tet.Circumradius())
	}
	if tet.LongestEdge() != math.Sqrt2 {
		t.Errorf("LongestEdge = %v", tet.LongestEdge())
	}
	if tet.ShortestEdge() != 1 {
		t.Errorf("ShortestEdge = %v", tet.ShortestEdge())
	}
	// Degenerate tet.
	deg := geomTet(Pt(0, 0, 0), Pt(1, 0, 0), Pt(2, 0, 0), Pt(3, 0, 0))
	if _, ok := deg.Circumcenter(); ok {
		t.Error("degenerate tet should have no circumcenter")
	}
	if !math.IsInf(deg.Circumradius(), 1) {
		t.Error("degenerate circumradius should be +Inf")
	}
}

func TestCircumcenterEquidistant3D(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tet := geomTet(
			Pt(rng.Float64(), rng.Float64(), rng.Float64()),
			Pt(rng.Float64(), rng.Float64(), rng.Float64()),
			Pt(rng.Float64(), rng.Float64(), rng.Float64()),
			Pt(rng.Float64(), rng.Float64(), rng.Float64()),
		)
		if math.Abs(tet.Volume()) < 1e-4 {
			continue
		}
		cc, ok := tet.Circumcenter()
		if !ok {
			t.Fatal("circumcenter should exist")
		}
		da := cc.Dist(tet.A)
		tol := 1e-6 * (1 + da)
		for _, p := range []Point{tet.B, tet.C, tet.D} {
			if math.Abs(cc.Dist(p)-da) > tol {
				t.Fatalf("not equidistant: %v vs %v", cc.Dist(p), da)
			}
		}
	}
}

func TestRadiusEdgeRatio(t *testing.T) {
	// Regular tetrahedron: ratio = sqrt(6)/4 / ... = sqrt(3/8) ≈ 0.612.
	h := math.Sqrt(3) / 2
	reg := geomTet(
		Pt(0, 0, 0), Pt(1, 0, 0), Pt(0.5, h, 0),
		Pt(0.5, h/3, math.Sqrt(2.0/3.0)),
	)
	want := math.Sqrt(3.0 / 8.0)
	if got := reg.RadiusEdgeRatio(); math.Abs(got-want) > 1e-6 {
		t.Errorf("regular tet ratio = %v, want %v", got, want)
	}
	zero := geomTet(Pt(0, 0, 0), Pt(0, 0, 0), Pt(1, 0, 0), Pt(0, 1, 0))
	if !math.IsInf(zero.RadiusEdgeRatio(), 1) {
		t.Error("zero edge should give +Inf ratio")
	}
}

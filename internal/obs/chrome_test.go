package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc mirrors the JSON object format for decoding in tests.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceIsValidAndComplete(t *testing.T) {
	sink := NewTraceSink(64)
	n0 := sink.NewTracer("node0")
	n1 := sink.NewTracer("node1")
	n0.Start(KindSwapLoad, 11).End(2048)
	n0.Emit(KindSwapRetry, 11, 1)
	n1.Emit(KindCommSend, 0, 64)
	n1.Start(KindSchedRun, 0).End(3)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sink.Tracers()...); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter produced invalid JSON:\n%s", buf.String())
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	var procNames []string
	tracks := map[int]map[string]bool{} // pid -> named threads
	kinds := map[string]string{}        // event name -> ph
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames = append(procNames, ev.Args["name"].(string))
		case ev.Ph == "M" && ev.Name == "thread_name":
			if tracks[ev.PID] == nil {
				tracks[ev.PID] = map[string]bool{}
			}
			tracks[ev.PID][ev.Args["name"].(string)] = true
		default:
			kinds[ev.Name] = ev.Ph
			if ev.Ph != "X" && ev.Ph != "i" {
				t.Fatalf("unexpected phase %q for %s", ev.Ph, ev.Name)
			}
			if ev.Ph == "X" && ev.Dur <= 0 {
				t.Fatalf("complete event %s has dur %v", ev.Name, ev.Dur)
			}
		}
	}
	if len(procNames) != 2 {
		t.Fatalf("process names %v, want node0+node1", procNames)
	}
	for pid := 0; pid < 2; pid++ {
		for _, track := range []string{"swap", "comm", "sched"} {
			if !tracks[pid][track] {
				t.Fatalf("pid %d missing %s track (have %v)", pid, track, tracks[pid])
			}
		}
	}
	if kinds["swap.load"] != "X" {
		t.Fatalf("swap.load rendered as %q, want X", kinds["swap.load"])
	}
	if kinds["swap.retry"] != "i" || kinds["comm.send"] != "i" {
		t.Fatalf("instants rendered wrong: %v", kinds)
	}
}

func TestWriteChromeTraceSkipsNilTracers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, NewTracer("solo", 4)); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
}

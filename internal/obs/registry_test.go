package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc() // no panic
	r.Gauge("g", func() float64 { return 1 })
	r.Set("v", 2)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestRegistrySnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("swap.evictions")
	c.Add(3)
	gauge := 7.0
	r.Gauge("mem.used", func() float64 { return gauge })
	r.Set("bench.speed", 1200)

	s1 := r.Snapshot()
	if s1["swap.evictions"] != 3 || s1["mem.used"] != 7 || s1["bench.speed"] != 1200 {
		t.Fatalf("snapshot wrong: %v", s1)
	}

	c.Inc()
	gauge = 11
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if d["swap.evictions"] != 1 || d["mem.used"] != 4 || d["bench.speed"] != 0 {
		t.Fatalf("delta wrong: %v", d)
	}
}

func TestRegistryCounterIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter returned distinct handles for one name")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("hits").Inc()
				r.Set("last", float64(i))
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Snapshot()["hits"]; got != 8*200 {
		t.Fatalf("hits = %v, want %d", got, 8*200)
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	s := Snapshot{"b": 2, "a": 1.5}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["a"] != 1.5 || back["b"] != 2 {
		t.Fatalf("round trip wrong: %v", back)
	}
	if got := s.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
}

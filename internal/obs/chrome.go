package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file exports recorded events as Chrome trace-event JSON (the
// "JSON Array Format" with object wrapper), the format Perfetto and
// chrome://tracing load directly. Mapping:
//
//   - every tracer (one per node per cluster) becomes a process (pid),
//     named by its label via a process_name metadata event;
//   - every track (swap/comm/sched/app/mcast) becomes a named thread (tid)
//     inside that process;
//   - duration events use ph "X" (complete events), instants use ph "i"
//     with thread scope; timestamps are microseconds with fractional
//     nanosecond precision.

// track order fixes the tid assignment so the rendered rows are stable.
var trackOrder = []string{"swap", "comm", "sched", "app", "mcast"}

func trackTID(track string) int {
	for i, t := range trackOrder {
		if t == track {
			return i
		}
	}
	return len(trackOrder)
}

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func argName(k Kind) string {
	switch k {
	case KindSwapEvict, KindSwapLoad, KindCommSend, KindCommDeliver:
		return "bytes"
	case KindSwapRetry:
		return "attempt"
	case KindSwapLost:
		return "dropped"
	case KindSchedRun:
		return "worker"
	case KindSchedSteal:
		return "victim"
	case KindHandler:
		return "handler"
	case KindMcastStart:
		return "members"
	case KindNodeJoin, KindNodeLeave:
		return "epoch"
	case KindDirRebalance:
		return "dest"
	default:
		return "arg"
	}
}

func toChrome(pid int, ev Event) chromeEvent {
	ce := chromeEvent{
		Name: ev.Kind.String(),
		PID:  pid,
		TID:  trackTID(ev.Kind.Track()),
		TS:   float64(ev.TS) / 1e3,
		Args: map[string]any{"id": ev.ID, argName(ev.Kind): ev.Arg},
	}
	if ev.Dur > 0 {
		ce.Ph = "X"
		ce.Dur = float64(ev.Dur) / 1e3
	} else {
		ce.Ph = "i"
		ce.Scope = "t"
	}
	return ce
}

// WriteChromeTrace writes the tracers' events as Chrome trace-event JSON.
// Tracers must come from one TraceSink (or be a single standalone tracer)
// so their timestamps share an epoch.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder writes a trailing newline, which is valid inside the
		// array and keeps the file diffable.
		return enc.Encode(ce)
	}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		label := t.label
		if label == "" {
			label = fmt.Sprintf("pid%d", t.pid)
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", PID: t.pid,
			Args: map[string]any{"name": label}}); err != nil {
			return err
		}
		for tid, track := range trackOrder {
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: t.pid, TID: tid,
				Args: map[string]any{"name": track}}); err != nil {
				return err
			}
		}
		for _, ev := range t.Events() {
			if err := emit(toChrome(t.pid, ev)); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the unified metrics surface: named counters (monotonic,
// incremented by the instrumented code), gauges (read-through functions,
// how trace.Collector / ooc.Stats / SwapStats are subsumed without copying
// their state) and settable values (for harness-level results). A Snapshot
// flattens all three into one map with delta semantics and JSON output.
//
// All methods are safe for concurrent use and safe on a nil receiver, so
// instrumented layers can accept an optional registry without branching.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() float64
	values   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
		values:   make(map[string]float64),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a usable no-op) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a read-through gauge. The function is called at every
// Snapshot; it must be safe for concurrent use. Re-registering a name
// replaces the previous function.
func (r *Registry) Gauge(name string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = f
	r.mu.Unlock()
}

// Set stores a value under name (harness-level results: speeds, overlaps,
// elapsed times).
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.values[name] = v
	r.mu.Unlock()
}

// Snapshot flattens every counter, gauge and value into one map. Gauges
// are evaluated outside the registry lock order guarantees of their own
// state; a gauge must not call back into this registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	out := make(Snapshot, len(r.counters)+len(r.gauges)+len(r.values))
	type namedGauge struct {
		name string
		f    func() float64
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, v := range r.values {
		out[name] = v
	}
	for name, f := range r.gauges {
		gauges = append(gauges, namedGauge{name, f})
	}
	r.mu.Unlock()
	for _, g := range gauges {
		out[g.name] = g.f()
	}
	return out
}

// Counter is a monotonic counter handle. The nil counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Snapshot is a point-in-time flattening of a registry.
type Snapshot map[string]float64

// Delta returns s minus prev, key by key; keys absent from prev are taken
// as zero, and keys absent from s are omitted. This gives per-interval
// readings from cumulative counters.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v - prev[k]
	}
	return out
}

// Keys returns the snapshot's keys sorted.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as an indented JSON object. encoding/json
// sorts map keys, so the output is deterministic and diffable.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Package obs is the unified observability layer of the MRTS: a
// low-overhead structured event tracer plus a metrics registry.
//
// The per-category timers in internal/trace answer "how much time went
// where" in aggregate; they cannot answer "what was this node doing at
// t=1.2s, and did the load overlap the refinement". That question — the one
// behind Tables IV-VI of the paper — needs per-event timelines. The Tracer
// records the swap lifecycle (evict/load/retry/lost), communication
// send/deliver, scheduler run/steal and multicast progress as fixed-size
// events in a per-node ring buffer; the exporter in chrome.go turns a set
// of tracers into Chrome trace-event JSON that Perfetto renders directly.
//
// Everything here is nil-safe: a nil *Tracer accepts Emit/Start calls and
// does nothing, so instrumented code paths never need to branch on whether
// tracing is enabled.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// The event kinds recorded by the runtime layers.
const (
	// KindSwapEvict spans one eviction: serialize plus the store write
	// (Arg: blob bytes).
	KindSwapEvict Kind = iota
	// KindSwapLoad spans one load: the store read plus decode (Arg: blob
	// bytes).
	KindSwapLoad
	// KindSwapRetry marks a transient storage fault absorbed by the retry
	// layer (Arg: 1-based attempt number that failed).
	KindSwapRetry
	// KindSwapStoreFail marks an eviction write that failed after the
	// retry budget; the object stayed in core.
	KindSwapStoreFail
	// KindSwapLost marks an object made unreachable by a failed load
	// (Arg: queued messages dropped with it).
	KindSwapLost
	// KindCommSend marks a message handed to the transport (Arg: payload
	// bytes).
	KindCommSend
	// KindCommDeliver spans the dispatch of a received message on the
	// endpoint's dispatcher goroutine (Arg: payload bytes).
	KindCommDeliver
	// KindSchedRun spans one task execution on a pool worker (Arg: worker
	// index).
	KindSchedRun
	// KindSchedSteal marks a successful steal (Arg: victim worker index).
	KindSchedSteal
	// KindHandler spans one application message handler (ID: the object's
	// packed mobile pointer, Arg: handler ID).
	KindHandler
	// KindMcastStart marks a multicast beginning collection (Arg: vector
	// length).
	KindMcastStart
	// KindMcastDeliver marks a multicast whose collection completed and
	// whose messages were posted.
	KindMcastDeliver
	// KindMcastCancel marks a multicast cancelled because a member object
	// was lost.
	KindMcastCancel
	// KindSwapWait spans the time a demand load sat queued in the swap I/O
	// scheduler before a worker dispatched it (ID: object).
	KindSwapWait
	// KindSwapCancel marks a queued prefetch load cancelled because it was
	// superseded (memory pressure or shutdown; ID: object).
	KindSwapCancel
	// KindSwapStall marks a hard-threshold eviction pass that could not
	// free the needed bytes — every victim candidate was busy (Arg: bytes
	// still needed).
	KindSwapStall
	// KindTierSpill marks a write the fast tier could not admit — no lease
	// room, too big, too cold, or a fast-store error — placed directly on
	// the slow tier (Arg: blob bytes).
	KindTierSpill
	// KindTierDemote marks a completed background fast→slow move (Arg:
	// blob bytes).
	KindTierDemote
	// KindTierPromote marks a completed slow→fast move earned by repeated
	// demand misses (Arg: blob bytes).
	KindTierPromote
	// KindNodeJoin marks a node (re)entering the placement ring (ID: the
	// node, Arg: the new ring epoch).
	KindNodeJoin
	// KindNodeLeave marks a node leaving the placement ring (ID: the
	// node, Arg: the new ring epoch).
	KindNodeLeave
	// KindDirRebalance marks one object migrated to its ring owner during
	// a membership change (ID: the object's packed mobile pointer, Arg:
	// the destination node).
	KindDirRebalance
	// KindRouteStale marks a received message whose carried resolution
	// epoch was older than the locator's current one (ID: the object's
	// packed mobile pointer, Arg: the stale epoch).
	KindRouteStale
	// KindRouteDrop marks a message dropped at the forward-hop bound —
	// always a routing defect, surfaced by CheckInvariants too (ID: the
	// object's packed mobile pointer, Arg: the hop count at the drop).
	KindRouteDrop
	// KindSpeculConflict marks a detected speculation conflict: a
	// neighbor's concurrent cavity update intersected this object's
	// speculative cavity (ID: the loser's packed mobile pointer, Arg: the
	// speculation epoch).
	KindSpeculConflict
	// KindSpeculRollback marks a speculative refinement rolled back to its
	// pre-speculation snapshot after losing a conflict (ID: the object's
	// packed mobile pointer, Arg: the speculation epoch rolled back).
	KindSpeculRollback
	// KindSpeculThrottle marks adaptive speculation throttling engaging: a
	// conflict loser whose retry was demoted to bulk-sync pacing because
	// the observed conflict rate over the sliding announce window exceeded
	// the configured threshold (ID: the object's packed mobile pointer,
	// Arg: the retry epoch that ran in bulk mode).
	KindSpeculThrottle
	// KindMeshExport marks one block frame appended to a meshstore chunk
	// at an irrevocable commit point (ID: the packed block grid
	// coordinates, Arg: the frame bytes written).
	KindMeshExport
	// KindMeshRestore marks one block re-created into a runtime from a
	// meshstore chunk during a rank-independent restore (ID: the packed
	// block grid coordinates, Arg: the raw payload bytes).
	KindMeshRestore
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSwapEvict:
		return "swap.evict"
	case KindSwapLoad:
		return "swap.load"
	case KindSwapRetry:
		return "swap.retry"
	case KindSwapStoreFail:
		return "swap.storefail"
	case KindSwapLost:
		return "swap.lost"
	case KindCommSend:
		return "comm.send"
	case KindCommDeliver:
		return "comm.deliver"
	case KindSchedRun:
		return "sched.run"
	case KindSchedSteal:
		return "sched.steal"
	case KindHandler:
		return "app.handler"
	case KindMcastStart:
		return "mcast.start"
	case KindMcastDeliver:
		return "mcast.deliver"
	case KindMcastCancel:
		return "mcast.cancel"
	case KindSwapWait:
		return "swap.wait"
	case KindSwapCancel:
		return "swap.cancel"
	case KindSwapStall:
		return "swap.stall"
	case KindTierSpill:
		return "tier.spill"
	case KindTierDemote:
		return "tier.demote"
	case KindTierPromote:
		return "tier.promote"
	case KindNodeJoin:
		return "node.join"
	case KindNodeLeave:
		return "node.leave"
	case KindDirRebalance:
		return "dir.rebalance"
	case KindRouteStale:
		return "route.stale"
	case KindRouteDrop:
		return "route.drop"
	case KindSpeculConflict:
		return "specul.conflict"
	case KindSpeculRollback:
		return "specul.rollback"
	case KindSpeculThrottle:
		return "specul.throttle"
	case KindMeshExport:
		return "mesh.export"
	case KindMeshRestore:
		return "mesh.restore"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Track returns the timeline the kind belongs to when rendered (one named
// thread per track in the Chrome trace).
func (k Kind) Track() string {
	switch k {
	case KindSwapEvict, KindSwapLoad, KindSwapRetry, KindSwapStoreFail, KindSwapLost,
		KindSwapWait, KindSwapCancel, KindSwapStall:
		return "swap"
	case KindCommSend, KindCommDeliver, KindRouteStale, KindRouteDrop:
		return "comm"
	case KindSchedRun, KindSchedSteal:
		return "sched"
	case KindTierSpill, KindTierDemote, KindTierPromote:
		return "tier"
	case KindNodeJoin, KindNodeLeave, KindDirRebalance:
		return "cluster"
	case KindHandler:
		return "app"
	case KindSpeculConflict, KindSpeculRollback, KindSpeculThrottle:
		return "specul"
	case KindMeshExport, KindMeshRestore:
		return "mesh"
	default:
		return "mcast"
	}
}

// Event is one recorded occurrence. Events are fixed-size so the ring
// buffer never allocates after construction.
type Event struct {
	// TS is the start time in nanoseconds since the tracer's epoch.
	TS int64
	// Dur is the duration in nanoseconds; zero for instant events.
	Dur int64
	// Kind classifies the event.
	Kind Kind
	// ID identifies the subject (object ID, message handler, ...); its
	// meaning is per-kind.
	ID uint64
	// Arg carries the kind-specific scalar payload (bytes, attempt,
	// dropped count, worker index, ...).
	Arg int64
}

// DefaultCapacity is the per-tracer ring size used when none is given.
const DefaultCapacity = 1 << 15

// Tracer records events for one node into a bounded ring. When the ring
// wraps, the oldest events are overwritten and counted in Dropped. All
// methods are safe for concurrent use and safe on a nil receiver.
type Tracer struct {
	pid   int
	label string
	epoch time.Time

	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever emitted
	dropped uint64
}

// NewTracer returns a standalone tracer (pid 0). Tracers that should share
// a timeline must come from one TraceSink instead.
func NewTracer(label string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{label: label, epoch: time.Now(), buf: make([]Event, 0, capacity)}
}

// Enabled reports whether events are being recorded (false on nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Label returns the tracer's display label.
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// now returns nanoseconds since the epoch.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Emit records an instant event.
func (t *Tracer) Emit(k Kind, id uint64, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{TS: t.now(), Kind: k, ID: id, Arg: arg})
}

// Start opens a duration event; call End on the returned span to record
// it. The zero Span (from a nil tracer) is inert.
func (t *Tracer) Start(k Kind, id uint64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, kind: k, id: id, start: t.now()}
}

// Span is an open duration event.
type Span struct {
	t     *Tracer
	kind  Kind
	id    uint64
	start int64
}

// End closes the span with the kind-specific argument.
func (s Span) End(arg int64) {
	if s.t == nil {
		return
	}
	s.t.record(Event{TS: s.start, Dur: s.t.now() - s.start, Kind: s.kind, ID: s.id, Arg: arg})
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = ev
		t.dropped++
	}
	t.next++
	t.mu.Unlock()
}

// Dropped returns how many old events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Events returns a copy of the recorded events sorted by start time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.buf...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// CountByKind tallies the recorded events per kind.
func (t *Tracer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range t.buf {
		out[ev.Kind]++
	}
	return out
}

// TraceSink groups the tracers of one capture: every tracer created from a
// sink shares its epoch (so timelines align) and gets a distinct pid (so
// Perfetto renders each node — across clusters — as its own process).
type TraceSink struct {
	epoch    time.Time
	capacity int

	mu      sync.Mutex
	tracers []*Tracer
}

// NewTraceSink returns an empty sink. capacity <= 0 selects
// DefaultCapacity for each tracer.
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &TraceSink{epoch: time.Now(), capacity: capacity}
}

// NewTracer creates a tracer labeled label sharing the sink's epoch. Safe
// on a nil sink, which returns a nil (disabled) tracer.
func (s *TraceSink) NewTracer(label string) *Tracer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := &Tracer{pid: len(s.tracers), label: label, epoch: s.epoch,
		buf: make([]Event, 0, s.capacity)}
	s.tracers = append(s.tracers, t)
	s.mu.Unlock()
	return t
}

// Tracers returns the tracers created so far.
func (s *TraceSink) Tracers() []*Tracer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Tracer(nil), s.tracers...)
}

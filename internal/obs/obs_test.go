package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindSwapRetry, 1, 2)
	tr.Start(KindSwapLoad, 3).End(4)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer holds state")
	}
	var sink *TraceSink
	if got := sink.NewTracer("x"); got != nil {
		t.Fatalf("nil sink produced tracer %v", got)
	}
	if sink.Tracers() != nil {
		t.Fatal("nil sink lists tracers")
	}
}

func TestTracerRecordsAndSorts(t *testing.T) {
	tr := NewTracer("node0", 16)
	sp := tr.Start(KindSwapLoad, 7)
	tr.Emit(KindSwapRetry, 7, 1)
	time.Sleep(time.Millisecond)
	sp.End(1024)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// The load span started before the retry instant, so sorting by TS
	// must put it first even though it was recorded last.
	if evs[0].Kind != KindSwapLoad {
		t.Fatalf("events not sorted by start time: %v", evs)
	}
	if evs[0].Dur <= 0 || evs[0].Arg != 1024 || evs[0].ID != 7 {
		t.Fatalf("span fields wrong: %+v", evs[0])
	}
	if evs[1].Dur != 0 || evs[1].Arg != 1 {
		t.Fatalf("instant fields wrong: %+v", evs[1])
	}
	if got := tr.CountByKind()[KindSwapRetry]; got != 1 {
		t.Fatalf("CountByKind retry = %d, want 1", got)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer("node0", 8)
	for i := 0; i < 20; i++ {
		tr.Emit(KindCommSend, uint64(i), 0)
	}
	if tr.Len() != 8 {
		t.Fatalf("ring holds %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", tr.Dropped())
	}
	// The survivors must be the newest 12..19.
	for _, ev := range tr.Events() {
		if ev.ID < 12 {
			t.Fatalf("old event %d survived the wrap", ev.ID)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer("node0", 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(KindSchedSteal, uint64(i), int64(i))
				tr.Start(KindSchedRun, uint64(i)).End(0)
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 8*500*2 {
		t.Fatalf("held+dropped = %d, want %d", got, 8*500*2)
	}
}

func TestSinkAssignsDistinctPids(t *testing.T) {
	s := NewTraceSink(0)
	a := s.NewTracer("node0")
	b := s.NewTracer("node1")
	if a.pid == b.pid {
		t.Fatalf("sink reused pid %d", a.pid)
	}
	if len(s.Tracers()) != 2 {
		t.Fatalf("sink lists %d tracers", len(s.Tracers()))
	}
	if a.Label() != "node0" {
		t.Fatalf("label = %q", a.Label())
	}
}

func TestKindStringsAndTracks(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
		if k.Track() == "" {
			t.Fatalf("kind %d has no track", k)
		}
	}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriangleArea(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(2, 0), Pt(0, 2)}
	if got := tr.Area(); got != 2 {
		t.Errorf("Area = %v, want 2", got)
	}
	// Clockwise orientation flips the sign.
	cw := Triangle{Pt(0, 0), Pt(0, 2), Pt(2, 0)}
	if got := cw.Area(); got != -2 {
		t.Errorf("Area = %v, want -2", got)
	}
}

func TestCentroid(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if got := tr.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestCircumcenter(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(2, 0), Pt(0, 2)}
	cc, ok := tr.Circumcenter()
	if !ok {
		t.Fatal("circumcenter should exist")
	}
	if !cc.Eq(Pt(1, 1)) {
		t.Errorf("Circumcenter = %v, want (1,1)", cc)
	}
	if r := tr.Circumradius(); math.Abs(r-math.Sqrt2) > 1e-12 {
		t.Errorf("Circumradius = %v, want sqrt(2)", r)
	}
	// Degenerate triangle.
	deg := Triangle{Pt(0, 0), Pt(1, 1), Pt(2, 2)}
	if _, ok := deg.Circumcenter(); ok {
		t.Error("degenerate triangle should have no circumcenter")
	}
	if !math.IsInf(deg.Circumradius(), 1) {
		t.Error("degenerate triangle circumradius should be +Inf")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		tr := Triangle{
			Pt(rng.Float64()*10, rng.Float64()*10),
			Pt(rng.Float64()*10, rng.Float64()*10),
			Pt(rng.Float64()*10, rng.Float64()*10),
		}
		if math.Abs(tr.Area()) < 1e-6 {
			continue
		}
		cc, ok := tr.Circumcenter()
		if !ok {
			t.Fatal("circumcenter should exist for non-degenerate triangle")
		}
		da, db, dc := cc.Dist(tr.A), cc.Dist(tr.B), cc.Dist(tr.C)
		tol := 1e-7 * (1 + da)
		if math.Abs(da-db) > tol || math.Abs(da-dc) > tol {
			t.Fatalf("circumcenter not equidistant: %v %v %v", da, db, dc)
		}
	}
}

func TestEdgesAndQuality(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(3, 0), Pt(0, 4)}
	if got := tr.ShortestEdge(); got != 3 {
		t.Errorf("ShortestEdge = %v", got)
	}
	if got := tr.LongestEdge(); got != 5 {
		t.Errorf("LongestEdge = %v", got)
	}
	// Right triangle: circumradius = hypotenuse/2 = 2.5, ratio = 2.5/3.
	if got := tr.Quality(); math.Abs(got-2.5/3) > 1e-12 {
		t.Errorf("Quality = %v, want %v", got, 2.5/3)
	}
	// Equilateral: quality = 1/sqrt(3).
	eq := Triangle{Pt(0, 0), Pt(1, 0), Pt(0.5, math.Sqrt(3)/2)}
	if got := eq.Quality(); math.Abs(got-1/math.Sqrt(3)) > 1e-9 {
		t.Errorf("equilateral Quality = %v, want %v", got, 1/math.Sqrt(3))
	}
	zero := Triangle{Pt(0, 0), Pt(0, 0), Pt(1, 1)}
	if !math.IsInf(zero.Quality(), 1) {
		t.Error("zero-edge triangle quality should be +Inf")
	}
}

func TestMinAngle(t *testing.T) {
	eq := Triangle{Pt(0, 0), Pt(1, 0), Pt(0.5, math.Sqrt(3)/2)}
	if got := eq.MinAngle(); math.Abs(got-math.Pi/3) > 1e-9 {
		t.Errorf("equilateral MinAngle = %v, want 60°", got)
	}
	right := Triangle{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	if got := right.MinAngle(); math.Abs(got-math.Pi/4) > 1e-9 {
		t.Errorf("right isoceles MinAngle = %v, want 45°", got)
	}
}

func TestContainsPoint(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	if !tr.ContainsPoint(Pt(1, 1)) {
		t.Error("interior point")
	}
	if !tr.ContainsPoint(Pt(2, 0)) {
		t.Error("boundary point")
	}
	if !tr.ContainsPoint(Pt(0, 0)) {
		t.Error("vertex")
	}
	if tr.ContainsPoint(Pt(3, 3)) {
		t.Error("outside point")
	}
}

func TestCircumcircleContains(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(2, 0), Pt(0, 2)}
	if !tr.CircumcircleContains(Pt(1, 1)) {
		t.Error("circumcenter should be inside circumcircle")
	}
	if tr.CircumcircleContains(Pt(10, 10)) {
		t.Error("far point should be outside")
	}
	// Cocircular point is NOT strictly inside.
	if tr.CircumcircleContains(Pt(2, 2)) {
		t.Error("cocircular point should not be strictly inside")
	}
}

func TestOffCenter(t *testing.T) {
	// A skinny triangle whose circumcenter is far away.
	tr := Triangle{Pt(0, 0), Pt(1, 0), Pt(0.5, 8)}
	beta := math.Sqrt2
	oc, ok := tr.OffCenter(beta)
	if !ok {
		t.Fatal("off-center should exist")
	}
	cc, _ := tr.Circumcenter()
	m := Pt(0.5, 0)
	// The off-center must lie between the shortest-edge midpoint and the
	// circumcenter, and no farther than the circumcenter.
	if m.Dist(oc) > m.Dist(cc)+1e-12 {
		t.Errorf("off-center %v is farther than circumcenter %v", oc, cc)
	}
	// New triangle (p,q,off) should have radius-edge ratio close to beta
	// (when the off-center was pulled in, i.e. differs from circumcenter).
	if oc != cc {
		nt := Triangle{Pt(0, 0), Pt(1, 0), oc}
		if got := nt.Quality(); math.Abs(got-beta) > 0.05 {
			t.Errorf("off-center new triangle quality = %v, want ≈ %v", got, beta)
		}
	}
	// Degenerate input.
	deg := Triangle{Pt(0, 0), Pt(1, 1), Pt(2, 2)}
	if _, ok := deg.OffCenter(beta); ok {
		t.Error("degenerate triangle should have no off-center")
	}
	// A good-quality triangle keeps its circumcenter.
	eqt := Triangle{Pt(0, 0), Pt(1, 0), Pt(0.5, math.Sqrt(3)/2)}
	oc2, ok := eqt.OffCenter(beta)
	if !ok {
		t.Fatal("off-center should exist for equilateral")
	}
	cc2, _ := eqt.Circumcenter()
	if oc2.Dist(cc2) > 1e-12 {
		t.Errorf("good triangle should keep circumcenter, got %v want %v", oc2, cc2)
	}
}

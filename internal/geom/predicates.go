package geom

import "math/big"

// Sign is the sign of a geometric determinant.
type Sign int

// Possible determinant signs.
const (
	Negative Sign = -1
	Zero     Sign = 0
	Positive Sign = 1
)

// Orientation of the machine epsilon-based filter constants. These are the
// standard forward error bounds for the 2x2 and 3x3 determinants computed in
// double precision (cf. Shewchuk, "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates").
const (
	epsilon      = 2.220446049250313e-16 / 2 // half-ulp of 1.0
	ccwErrBound  = (3.0 + 16.0*epsilon) * epsilon
	iccErrBound  = (10.0 + 96.0*epsilon) * epsilon
	absErrExpand = 1.0
)

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Orient2D returns Positive if points a, b, c make a counter-clockwise turn,
// Negative for clockwise, and Zero if they are collinear. The result is exact:
// a floating-point filter handles the common case and exact big.Float
// arithmetic resolves near-degenerate inputs.
func Orient2D(a, b, c Point) Sign {
	detL := (a.X - c.X) * (b.Y - c.Y)
	detR := (a.Y - c.Y) * (b.X - c.X)
	det := detL - detR

	var detSum float64
	switch {
	case detL > 0:
		if detR <= 0 {
			return signOf(det)
		}
		detSum = detL + detR
	case detL < 0:
		if detR >= 0 {
			return signOf(det)
		}
		detSum = -detL - detR
	default:
		return signOf(det)
	}

	errBound := ccwErrBound * detSum
	if det >= errBound || -det >= errBound {
		return signOf(det)
	}
	return orient2DExact(a, b, c)
}

func signOf(x float64) Sign {
	switch {
	case x > 0:
		return Positive
	case x < 0:
		return Negative
	default:
		return Zero
	}
}

func orient2DExact(a, b, c Point) Sign {
	ax, ay := big.NewFloat(a.X), big.NewFloat(a.Y)
	bx, by := big.NewFloat(b.X), big.NewFloat(b.Y)
	cx, cy := big.NewFloat(c.X), big.NewFloat(c.Y)
	for _, f := range []*big.Float{ax, ay, bx, by, cx, cy} {
		f.SetPrec(256)
	}
	acx := new(big.Float).Sub(ax, cx)
	acy := new(big.Float).Sub(ay, cy)
	bcx := new(big.Float).Sub(bx, cx)
	bcy := new(big.Float).Sub(by, cy)
	l := new(big.Float).Mul(acx, bcy)
	r := new(big.Float).Mul(acy, bcx)
	det := new(big.Float).Sub(l, r)
	return Sign(det.Sign())
}

// InCircle returns Positive if point d lies strictly inside the circle
// through a, b, c (which must be in counter-clockwise order), Negative if it
// lies strictly outside, and Zero if the four points are cocircular. Like
// Orient2D the result is exact via a filtered computation.
func InCircle(a, b, c, d Point) Sign {
	adx := a.X - d.X
	ady := a.Y - d.Y
	bdx := b.X - d.X
	bdy := b.Y - d.Y
	cdx := c.X - d.X
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := iccErrBound * permanent
	if det > errBound || -det > errBound {
		return signOf(det)
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) Sign {
	const prec = 512
	nf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(prec) }
	adx := new(big.Float).Sub(nf(a.X), nf(d.X))
	ady := new(big.Float).Sub(nf(a.Y), nf(d.Y))
	bdx := new(big.Float).Sub(nf(b.X), nf(d.X))
	bdy := new(big.Float).Sub(nf(b.Y), nf(d.Y))
	cdx := new(big.Float).Sub(nf(c.X), nf(d.X))
	cdy := new(big.Float).Sub(nf(c.Y), nf(d.Y))

	mul := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Mul(x, y) }
	sub := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Sub(x, y) }
	add := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Add(x, y) }

	alift := add(mul(adx, adx), mul(ady, ady))
	blift := add(mul(bdx, bdx), mul(bdy, bdy))
	clift := add(mul(cdx, cdx), mul(cdy, cdy))

	t1 := mul(alift, sub(mul(bdx, cdy), mul(cdx, bdy)))
	t2 := mul(blift, sub(mul(cdx, ady), mul(adx, cdy)))
	t3 := mul(clift, sub(mul(adx, bdy), mul(bdx, ady)))

	det := add(add(t1, t2), t3)
	return Sign(det.Sign())
}

// SegmentsProperlyIntersect reports whether segments pq and rs intersect at a
// single point interior to both.
func SegmentsProperlyIntersect(p, q, r, s Point) bool {
	d1 := Orient2D(r, s, p)
	d2 := Orient2D(r, s, q)
	d3 := Orient2D(p, q, r)
	d4 := Orient2D(p, q, s)
	return d1*d2 < 0 && d3*d4 < 0
}

// OnSegment reports whether point c lies on segment ab (inclusive of the
// endpoints). The three points are assumed collinear is NOT required; the
// collinearity is checked exactly.
func OnSegment(a, b, c Point) bool {
	if Orient2D(a, b, c) != Zero {
		return false
	}
	return minf(a.X, b.X) <= c.X && c.X <= maxf(a.X, b.X) &&
		minf(a.Y, b.Y) <= c.Y && c.Y <= maxf(a.Y, b.Y)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

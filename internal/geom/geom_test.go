package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Pt(0, 0).Dist2(Pt(3, 4)); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := p.Mid(q); !got.Eq(Pt(2, -1)) {
		t.Errorf("Mid = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(3, 4), Pt(1, 2))
	if !r.Min.Eq(Pt(1, 2)) || !r.Max.Eq(Pt(3, 4)) {
		t.Fatalf("NewRect normalization failed: %+v", r)
	}
	if r.W() != 2 || r.H() != 2 {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
	if !r.Center().Eq(Pt(2, 3)) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(2, 3)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains misbehaves")
	}
	s := NewRect(Pt(2.5, 3.5), Pt(10, 10))
	if !r.Intersects(s) || !s.Intersects(r) {
		t.Error("Intersects should be true")
	}
	far := NewRect(Pt(100, 100), Pt(101, 101))
	if r.Intersects(far) {
		t.Error("Intersects should be false for disjoint rects")
	}
	u := r.Union(far)
	if !u.Min.Eq(Pt(1, 2)) || !u.Max.Eq(Pt(101, 101)) {
		t.Errorf("Union = %+v", u)
	}
	e := r.Expand(1)
	if !e.Min.Eq(Pt(0, 1)) || !e.Max.Eq(Pt(4, 5)) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	r := BoundingRect(pts)
	if !r.Min.Eq(Pt(-2, -1)) || !r.Max.Eq(Pt(4, 5)) {
		t.Errorf("BoundingRect = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(empty) should panic")
		}
	}()
	BoundingRect(nil)
}

func TestSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(2, 0)}
	if s.Len() != 2 {
		t.Errorf("Len = %v", s.Len())
	}
	if !s.Mid().Eq(Pt(1, 0)) {
		t.Errorf("Mid = %v", s.Mid())
	}
	if !s.DiametralContains(Pt(1, 0.5)) {
		t.Error("point near center should be inside diametral circle")
	}
	if s.DiametralContains(Pt(0, 1)) {
		t.Error("point at endpoint vertical should be outside (angle = 90°)")
	}
	if s.DiametralContains(Pt(5, 5)) {
		t.Error("far point should be outside diametral circle")
	}
}

func TestPointSegmentDist2(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 9},
		{Pt(-3, 4), 25},
		{Pt(13, 4), 25},
		{Pt(5, 0), 0},
	}
	for _, c := range cases {
		if got := PointSegmentDist2(c.p, s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PointSegmentDist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment behaves as a point.
	d := Segment{Pt(1, 1), Pt(1, 1)}
	if got := PointSegmentDist2(Pt(4, 5), d); got != 25 {
		t.Errorf("degenerate segment dist2 = %v", got)
	}
}

func TestOrient2DBasic(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if Orient2D(a, b, Pt(0, 1)) != Positive {
		t.Error("ccw should be Positive")
	}
	if Orient2D(a, b, Pt(0, -1)) != Negative {
		t.Error("cw should be Negative")
	}
	if Orient2D(a, b, Pt(2, 0)) != Zero {
		t.Error("collinear should be Zero")
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Classic robustness stress: points nearly collinear at tiny offsets.
	a := Pt(0.5, 0.5)
	b := Pt(12, 12)
	// Stop above ulp(24) = 2^-48: below it, 24+eps rounds to exactly 24 and
	// the points genuinely become collinear.
	for i := 0; i < 17; i++ {
		eps := math.Ldexp(1, -i-30)
		c := Pt(24+eps, 24)
		got := Orient2D(a, b, c)
		// c is below the line y=x so the turn a->b->c is clockwise.
		if got != Negative {
			t.Fatalf("eps=2^-%d: Orient2D = %v, want Negative", i+30, got)
		}
		c2 := Pt(24, 24+eps)
		if got := Orient2D(a, b, c2); got != Positive {
			t.Fatalf("eps=2^-%d: Orient2D = %v, want Positive", i+30, got)
		}
	}
	if Orient2D(a, b, Pt(24, 24)) != Zero {
		t.Error("exactly collinear point should give Zero")
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return Orient2D(a, b, c) == -Orient2D(b, a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrient2DCyclicInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		s := Orient2D(a, b, c)
		return s == Orient2D(b, c, a) && s == Orient2D(c, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) counter-clockwise.
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if InCircle(a, b, c, Pt(0, 0)) != Positive {
		t.Error("origin should be inside")
	}
	if InCircle(a, b, c, Pt(2, 2)) != Negative {
		t.Error("(2,2) should be outside")
	}
	if InCircle(a, b, c, Pt(0, -1)) != Zero {
		t.Error("(0,-1) is cocircular, want Zero")
	}
}

func TestInCircleNearDegenerate(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(1, 0), Pt(1, 1)
	// Points just inside/outside the circumcircle of the right triangle,
	// whose circumcenter is (0.5, 0.5) and radius sqrt(0.5).
	center := Pt(0.5, 0.5)
	r := math.Sqrt(0.5)
	for i := 40; i < 52; i++ {
		eps := math.Ldexp(1, -i)
		in := Pt(center.X+r-eps, center.Y)
		out := Pt(center.X+r+eps, center.Y)
		if InCircle(a, b, c, in) != Positive {
			t.Fatalf("eps=2^-%d: inside point misclassified", i)
		}
		if InCircle(a, b, c, out) != Negative {
			t.Fatalf("eps=2^-%d: outside point misclassified", i)
		}
	}
}

func TestInCircleSymmetryUnderRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64(), rng.Float64())
		b := Pt(rng.Float64(), rng.Float64())
		c := Pt(rng.Float64(), rng.Float64())
		d := Pt(rng.Float64(), rng.Float64())
		if Orient2D(a, b, c) != Positive {
			a, b = b, a
		}
		if Orient2D(a, b, c) != Positive {
			continue // collinear, skip
		}
		s := InCircle(a, b, c, d)
		if InCircle(b, c, a, d) != s || InCircle(c, a, b, d) != s {
			t.Fatalf("InCircle not invariant under rotation of (a,b,c)")
		}
	}
}

func TestSegmentsProperlyIntersect(t *testing.T) {
	if !SegmentsProperlyIntersect(Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0)) {
		t.Error("crossing diagonals should intersect")
	}
	if SegmentsProperlyIntersect(Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)) {
		t.Error("collinear disjoint should not properly intersect")
	}
	if SegmentsProperlyIntersect(Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 2)) {
		t.Error("T-junction (touching) is not proper intersection")
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(4, 4)
	if !OnSegment(a, b, Pt(2, 2)) {
		t.Error("midpoint should be on segment")
	}
	if !OnSegment(a, b, a) || !OnSegment(a, b, b) {
		t.Error("endpoints should be on segment")
	}
	if OnSegment(a, b, Pt(5, 5)) {
		t.Error("point beyond endpoint should be off segment")
	}
	if OnSegment(a, b, Pt(2, 3)) {
		t.Error("off-line point should be off segment")
	}
}

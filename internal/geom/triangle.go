package geom

import "math"

// Triangle is a triangle given by its three corner points. Orientation is
// not implied; use Orient2D to test it.
type Triangle struct {
	A, B, C Point
}

// Area returns the signed area of t (positive when A, B, C are
// counter-clockwise).
func (t Triangle) Area() float64 {
	return (t.B.Sub(t.A)).Cross(t.C.Sub(t.A)) / 2
}

// Centroid returns the centroid of t.
func (t Triangle) Centroid() Point {
	return Point{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3}
}

// Circumcenter returns the circumcenter of t and reports whether it is
// well-defined (false for degenerate, collinear triangles).
func (t Triangle) Circumcenter() (Point, bool) {
	ax, ay := t.A.X, t.A.Y
	bx, by := t.B.X-ax, t.B.Y-ay
	cx, cy := t.C.X-ax, t.C.Y-ay
	d := 2 * (bx*cy - by*cx)
	if d == 0 {
		return Point{}, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{ax + ux, ay + uy}, true
}

// Circumradius returns the circumradius of t, or +Inf for a degenerate
// triangle.
func (t Triangle) Circumradius() float64 {
	cc, ok := t.Circumcenter()
	if !ok {
		return math.Inf(1)
	}
	return cc.Dist(t.A)
}

// ShortestEdge returns the length of the shortest edge of t.
func (t Triangle) ShortestEdge() float64 {
	ab := t.A.Dist(t.B)
	bc := t.B.Dist(t.C)
	ca := t.C.Dist(t.A)
	return math.Min(ab, math.Min(bc, ca))
}

// LongestEdge returns the length of the longest edge of t.
func (t Triangle) LongestEdge() float64 {
	ab := t.A.Dist(t.B)
	bc := t.B.Dist(t.C)
	ca := t.C.Dist(t.A)
	return math.Max(ab, math.Max(bc, ca))
}

// Quality returns the circumradius-to-shortest-edge ratio of t, the quality
// measure driving Ruppert-style Delaunay refinement. Smaller is better; a
// ratio of 1/sqrt(3) ≈ 0.577 corresponds to an equilateral triangle, and a
// ratio bound B guarantees a minimum angle of arcsin(1/(2B)).
func (t Triangle) Quality() float64 {
	se := t.ShortestEdge()
	if se == 0 {
		return math.Inf(1)
	}
	return t.Circumradius() / se
}

// MinAngle returns the smallest interior angle of t in radians.
func (t Triangle) MinAngle() float64 {
	angle := func(v, p, q Point) float64 {
		a := p.Sub(v)
		b := q.Sub(v)
		la, lb := math.Hypot(a.X, a.Y), math.Hypot(b.X, b.Y)
		if la == 0 || lb == 0 {
			return 0
		}
		cos := a.Dot(b) / (la * lb)
		if cos > 1 {
			cos = 1
		} else if cos < -1 {
			cos = -1
		}
		return math.Acos(cos)
	}
	m := angle(t.A, t.B, t.C)
	m = math.Min(m, angle(t.B, t.C, t.A))
	m = math.Min(m, angle(t.C, t.A, t.B))
	return m
}

// ContainsPoint reports whether p lies inside or on the boundary of t.
// t must be counter-clockwise oriented.
func (t Triangle) ContainsPoint(p Point) bool {
	return Orient2D(t.A, t.B, p) >= 0 &&
		Orient2D(t.B, t.C, p) >= 0 &&
		Orient2D(t.C, t.A, p) >= 0
}

// CircumcircleContains reports whether p lies strictly inside the
// circumcircle of t. t must be counter-clockwise oriented.
func (t Triangle) CircumcircleContains(p Point) bool {
	return InCircle(t.A, t.B, t.C, p) == Positive
}

// OffCenter computes the off-center Steiner point of Üngör for the triangle,
// a point on the segment from the circumcenter toward the midpoint of the
// shortest edge, such that inserting it still removes the poor triangle but
// creates a new triangle of acceptable quality more often than the plain
// circumcenter. beta is the quality bound in use. The second return value is
// false for degenerate triangles.
func (t Triangle) OffCenter(beta float64) (Point, bool) {
	cc, ok := t.Circumcenter()
	if !ok {
		return Point{}, false
	}
	// Identify the shortest edge (p, q).
	p, q := t.A, t.B
	best := t.A.Dist2(t.B)
	if d := t.B.Dist2(t.C); d < best {
		best, p, q = d, t.B, t.C
	}
	if d := t.C.Dist2(t.A); d < best {
		p, q = t.C, t.A
	}
	m := p.Mid(q)
	l := p.Dist(q)
	// The off-center sits on segment (m, cc) at distance from m such that
	// the new triangle (p, q, off) has radius-edge ratio exactly beta.
	dm := m.Dist(cc)
	if dm == 0 {
		return cc, true
	}
	// Height h above the midpoint for which ratio == beta:
	// r = (h^2 + (l/2)^2) / (2h), require r / l == beta.
	// => h = beta*l + sqrt((beta*l)^2 - (l/2)^2) (take the root <= dm).
	bl := beta * l
	disc := bl*bl - l*l/4
	if disc < 0 {
		return cc, true
	}
	h := bl + math.Sqrt(disc)
	if h >= dm {
		return cc, true // circumcenter is already close enough
	}
	dir := cc.Sub(m).Scale(1 / dm)
	return m.Add(dir.Scale(h)), true
}

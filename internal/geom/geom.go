// Package geom provides the 2-D geometric primitives used by the mesh
// generation substrates: points, bounding boxes, robust orientation and
// in-circle predicates, circumcircle computations and triangle quality
// measures.
//
// The predicates use a floating-point filter with a forward error bound and
// fall back to exact arithmetic (math/big) only when the filter cannot
// certify the sign, following the approach popularized by Shewchuk's
// adaptive predicates.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q, treating both as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q, treating both as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max the
// upper-right corner; a Rect with Min==Max is a degenerate (empty) rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share any area or boundary.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// BoundingRect returns the bounding rectangle of the given points. It panics
// if pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Point
}

// Len returns the length of s.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of s.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// DiametralContains reports whether p lies strictly inside the diametral
// circle of s (the circle with s as diameter). This is the encroachment test
// of Ruppert's algorithm: a point inside a segment's diametral circle
// encroaches upon the segment.
func (s Segment) DiametralContains(p Point) bool {
	// p is inside the diametral circle iff angle(A, p, B) > 90°, i.e. the
	// dot product (A-p)·(B-p) < 0.
	return s.A.Sub(p).Dot(s.B.Sub(p)) < 0
}

// PointSegmentDist2 returns the squared distance from p to segment s.
func PointSegmentDist2(p Point, s Segment) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := ab.Dot(ab)
	if den == 0 {
		return p.Dist2(s.A)
	}
	t := ap.Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := s.A.Add(ab.Scale(t))
	return p.Dist2(proj)
}

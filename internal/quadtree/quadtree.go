// Package quadtree provides the adaptive quad-tree used by the non-uniform
// parallel Delaunay refinement method (NUPDR): the domain is covered by
// leaves whose sizes adapt to a local sizing function, each leaf owning the
// portion of the mesh it encloses. Neighbor queries supply the buffer zones
// (BUF) that must be co-located with a leaf during refinement.
package quadtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mrts/internal/geom"
)

// NodeID identifies a node of the tree. The root is always 0.
type NodeID int32

// NoNode is the nil node ID.
const NoNode NodeID = -1

// Child quadrant order.
const (
	SW = iota
	SE
	NW
	NE
)

type node struct {
	bounds geom.Rect
	parent NodeID
	child  [4]NodeID // all NoNode for a leaf
	depth  int32
}

func (n *node) isLeaf() bool { return n.child[0] == NoNode }

// Tree is an adaptive quad-tree over a rectangular domain. The zero value is
// not usable; call New.
type Tree struct {
	nodes   []node
	nLeaves int
}

// New returns a tree with a single leaf covering bounds.
func New(bounds geom.Rect) *Tree {
	t := &Tree{}
	t.nodes = append(t.nodes, node{
		bounds: bounds,
		parent: NoNode,
		child:  [4]NodeID{NoNode, NoNode, NoNode, NoNode},
	})
	t.nLeaves = 1
	return t
}

// Root returns the root node ID.
func (t *Tree) Root() NodeID { return 0 }

// NumNodes returns the total number of nodes (leaves and internal).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return t.nLeaves }

// IsLeaf reports whether n is a leaf.
func (t *Tree) IsLeaf(n NodeID) bool { return t.nodes[n].isLeaf() }

// Bounds returns the rectangle covered by n.
func (t *Tree) Bounds(n NodeID) geom.Rect { return t.nodes[n].bounds }

// Depth returns the depth of n (root is 0).
func (t *Tree) Depth(n NodeID) int { return int(t.nodes[n].depth) }

// Parent returns the parent of n, or NoNode for the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.nodes[n].parent }

// Children returns the four children of n (all NoNode for a leaf).
func (t *Tree) Children(n NodeID) [4]NodeID { return t.nodes[n].child }

// Split subdivides leaf n into four quadrant children and returns them in
// SW, SE, NW, NE order. Split panics if n is not a leaf.
func (t *Tree) Split(n NodeID) [4]NodeID {
	if !t.nodes[n].isLeaf() {
		panic(fmt.Sprintf("quadtree: Split of non-leaf %d", n))
	}
	b := t.nodes[n].bounds
	c := b.Center()
	quads := [4]geom.Rect{
		{Min: b.Min, Max: c}, // SW
		{Min: geom.Pt(c.X, b.Min.Y), Max: geom.Pt(b.Max.X, c.Y)}, // SE
		{Min: geom.Pt(b.Min.X, c.Y), Max: geom.Pt(c.X, b.Max.Y)}, // NW
		{Min: c, Max: b.Max}, // NE
	}
	var kids [4]NodeID
	depth := t.nodes[n].depth + 1
	for i := 0; i < 4; i++ {
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, node{
			bounds: quads[i],
			parent: n,
			child:  [4]NodeID{NoNode, NoNode, NoNode, NoNode},
			depth:  depth,
		})
		kids[i] = id
	}
	t.nodes[n].child = kids
	t.nLeaves += 3 // one leaf became four
	return kids
}

// Leaves returns the IDs of all leaves.
func (t *Tree) Leaves() []NodeID {
	out := make([]NodeID, 0, t.nLeaves)
	for i := range t.nodes {
		if t.nodes[i].isLeaf() {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// LeafAt descends from the root to the leaf containing p. Returns NoNode if
// p is outside the root bounds.
func (t *Tree) LeafAt(p geom.Point) NodeID {
	if !t.nodes[0].bounds.Contains(p) {
		return NoNode
	}
	n := NodeID(0)
	for !t.nodes[n].isLeaf() {
		c := t.nodes[n].bounds.Center()
		var q int
		if p.X < c.X {
			if p.Y < c.Y {
				q = SW
			} else {
				q = NW
			}
		} else {
			if p.Y < c.Y {
				q = SE
			} else {
				q = NE
			}
		}
		n = t.nodes[n].child[q]
	}
	return n
}

// Neighbors returns the leaves adjacent to leaf n: every other leaf whose
// rectangle touches n's rectangle (sharing an edge or a corner). This is the
// buffer zone BUF of the NUPDR method.
func (t *Tree) Neighbors(n NodeID) []NodeID {
	target := t.nodes[n].bounds
	var out []NodeID
	var walk func(NodeID)
	walk = func(m NodeID) {
		if !t.nodes[m].bounds.Intersects(target) {
			return
		}
		if t.nodes[m].isLeaf() {
			if m != n {
				out = append(out, m)
			}
			return
		}
		for _, c := range t.nodes[m].child {
			walk(c)
		}
	}
	walk(0)
	return out
}

// LeavesIn returns all leaves intersecting r.
func (t *Tree) LeavesIn(r geom.Rect) []NodeID {
	var out []NodeID
	var walk func(NodeID)
	walk = func(m NodeID) {
		if !t.nodes[m].bounds.Intersects(r) {
			return
		}
		if t.nodes[m].isLeaf() {
			out = append(out, m)
			return
		}
		for _, c := range t.nodes[m].child {
			walk(c)
		}
	}
	walk(0)
	return out
}

// RefineToSize splits leaves until every leaf's width and height are at most
// size(center of leaf). maxDepth bounds the subdivision (0 means 30).
// It returns the number of splits performed.
func (t *Tree) RefineToSize(size func(geom.Point) float64, maxDepth int) int {
	if maxDepth <= 0 {
		maxDepth = 30
	}
	splits := 0
	stack := t.Leaves()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := t.nodes[n].bounds
		h := size(b.Center())
		if h <= 0 || math.IsNaN(h) {
			continue
		}
		if (b.W() > h || b.H() > h) && int(t.nodes[n].depth) < maxDepth {
			kids := t.Split(n)
			stack = append(stack, kids[0], kids[1], kids[2], kids[3])
			splits++
		}
	}
	return splits
}

// Balance enforces the 2:1 rule: adjacent leaves differ by at most one level.
// NUPDR's quad-tree construction maintains this so that buffer zones stay
// bounded. Returns the number of extra splits.
func (t *Tree) Balance() int {
	splits := 0
	for {
		var toSplit []NodeID
		for _, leaf := range t.Leaves() {
			for _, nb := range t.Neighbors(leaf) {
				if t.nodes[nb].depth > t.nodes[leaf].depth+1 {
					toSplit = append(toSplit, leaf)
					break
				}
			}
		}
		if len(toSplit) == 0 {
			return splits
		}
		for _, n := range toSplit {
			if t.nodes[n].isLeaf() {
				t.Split(n)
				splits++
			}
		}
	}
}

// EncodedSize returns the number of bytes EncodeTo writes.
func (t *Tree) EncodedSize() int { return 8 + len(t.nodes)*(32+4+16+4) }

// EncodeTo writes a binary encoding of the tree.
func (t *Tree) EncodeTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], 0x51544545) // "QTEE"
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(t.nodes)))
	if _, err := bw.Write(b[:8]); err != nil {
		return err
	}
	for i := range t.nodes {
		n := &t.nodes[i]
		for _, f := range []float64{n.bounds.Min.X, n.bounds.Min.Y, n.bounds.Max.X, n.bounds.Max.Y} {
			binary.LittleEndian.PutUint64(b[:8], math.Float64bits(f))
			if _, err := bw.Write(b[:8]); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(b[:4], uint32(n.parent))
		if _, err := bw.Write(b[:4]); err != nil {
			return err
		}
		for _, c := range n.child {
			binary.LittleEndian.PutUint32(b[:4], uint32(c))
			if _, err := bw.Write(b[:4]); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(b[:4], uint32(n.depth))
		if _, err := bw.Write(b[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeFrom replaces the tree with one read from r.
func (t *Tree) DecodeFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var b [8]byte
	if _, err := io.ReadFull(br, b[:8]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(b[:4]) != 0x51544545 {
		return fmt.Errorf("quadtree: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(b[4:8]))
	// Bound the untrusted node count: a corrupted prefix could otherwise
	// demand a multi-gigabyte allocation before the short read is noticed.
	const maxDecodeNodes = 1 << 24
	if n > maxDecodeNodes {
		return fmt.Errorf("quadtree: node count %d exceeds limit %d (corrupt blob?)", n, maxDecodeNodes)
	}
	nodes := make([]node, n)
	leaves := 0
	for i := range nodes {
		var f [4]float64
		for k := 0; k < 4; k++ {
			if _, err := io.ReadFull(br, b[:8]); err != nil {
				return err
			}
			f[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
		}
		nodes[i].bounds = geom.Rect{Min: geom.Pt(f[0], f[1]), Max: geom.Pt(f[2], f[3])}
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return err
		}
		nodes[i].parent = NodeID(int32(binary.LittleEndian.Uint32(b[:4])))
		for k := 0; k < 4; k++ {
			if _, err := io.ReadFull(br, b[:4]); err != nil {
				return err
			}
			nodes[i].child[k] = NodeID(int32(binary.LittleEndian.Uint32(b[:4])))
		}
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return err
		}
		nodes[i].depth = int32(binary.LittleEndian.Uint32(b[:4]))
		if nodes[i].isLeaf() {
			leaves++
		}
	}
	t.nodes = nodes
	t.nLeaves = leaves
	return nil
}

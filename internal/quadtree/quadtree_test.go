package quadtree

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"mrts/internal/geom"
)

func unitTree() *Tree {
	return New(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
}

func TestNewAndRoot(t *testing.T) {
	tr := unitTree()
	if tr.NumNodes() != 1 || tr.NumLeaves() != 1 {
		t.Fatalf("nodes=%d leaves=%d", tr.NumNodes(), tr.NumLeaves())
	}
	if !tr.IsLeaf(tr.Root()) {
		t.Fatal("root should start as a leaf")
	}
	if tr.Depth(tr.Root()) != 0 {
		t.Fatal("root depth should be 0")
	}
	if tr.Parent(tr.Root()) != NoNode {
		t.Fatal("root has no parent")
	}
}

func TestSplitGeometry(t *testing.T) {
	tr := unitTree()
	kids := tr.Split(tr.Root())
	if tr.NumLeaves() != 4 || tr.NumNodes() != 5 {
		t.Fatalf("after split: leaves=%d nodes=%d", tr.NumLeaves(), tr.NumNodes())
	}
	if tr.IsLeaf(tr.Root()) {
		t.Fatal("root should no longer be a leaf")
	}
	wants := [4]geom.Rect{
		geom.NewRect(geom.Pt(0, 0), geom.Pt(0.5, 0.5)),
		geom.NewRect(geom.Pt(0.5, 0), geom.Pt(1, 0.5)),
		geom.NewRect(geom.Pt(0, 0.5), geom.Pt(0.5, 1)),
		geom.NewRect(geom.Pt(0.5, 0.5), geom.Pt(1, 1)),
	}
	for i, k := range kids {
		if got := tr.Bounds(k); got != wants[i] {
			t.Errorf("quadrant %d bounds = %+v, want %+v", i, got, wants[i])
		}
		if tr.Depth(k) != 1 {
			t.Errorf("child depth = %d", tr.Depth(k))
		}
		if tr.Parent(k) != tr.Root() {
			t.Errorf("child parent wrong")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("splitting a non-leaf should panic")
		}
	}()
	tr.Split(tr.Root())
}

func TestLeafAt(t *testing.T) {
	tr := unitTree()
	kids := tr.Split(tr.Root())
	tr.Split(kids[NE])
	cases := []struct {
		p    geom.Point
		want func(n NodeID) bool
	}{
		{geom.Pt(0.1, 0.1), func(n NodeID) bool { return n == kids[SW] }},
		{geom.Pt(0.9, 0.1), func(n NodeID) bool { return n == kids[SE] }},
		{geom.Pt(0.1, 0.9), func(n NodeID) bool { return n == kids[NW] }},
		{geom.Pt(0.9, 0.9), func(n NodeID) bool { return tr.Depth(n) == 2 }},
	}
	for _, c := range cases {
		n := tr.LeafAt(c.p)
		if n == NoNode || !c.want(n) {
			t.Errorf("LeafAt(%v) = %d", c.p, n)
		}
		if !tr.Bounds(n).Contains(c.p) {
			t.Errorf("LeafAt(%v): bounds do not contain point", c.p)
		}
	}
	if tr.LeafAt(geom.Pt(2, 2)) != NoNode {
		t.Error("outside point should return NoNode")
	}
}

func TestNeighbors(t *testing.T) {
	tr := unitTree()
	kids := tr.Split(tr.Root())
	// All four quadrants touch each other (corner at the center).
	for _, k := range kids {
		nbs := tr.Neighbors(k)
		if len(nbs) != 3 {
			t.Fatalf("quadrant %d: %d neighbors, want 3", k, len(nbs))
		}
		for _, nb := range nbs {
			if nb == k {
				t.Fatal("leaf listed as its own neighbor")
			}
		}
	}
	// Split SW further: NE of that sub-split touches all original quadrants.
	sub := tr.Split(kids[SW])
	nbs := tr.Neighbors(sub[NE])
	if len(nbs) != 6 {
		t.Fatalf("inner corner leaf: %d neighbors, want 6", len(nbs))
	}
}

func TestLeavesIn(t *testing.T) {
	tr := unitTree()
	kids := tr.Split(tr.Root())
	_ = kids
	got := tr.LeavesIn(geom.NewRect(geom.Pt(0.6, 0.6), geom.Pt(0.9, 0.9)))
	if len(got) != 1 {
		t.Fatalf("LeavesIn(NE interior) = %d leaves", len(got))
	}
	all := tr.LeavesIn(geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
	if len(all) != 4 {
		t.Fatalf("LeavesIn(all) = %d leaves", len(all))
	}
}

func TestRefineToSize(t *testing.T) {
	tr := unitTree()
	splits := tr.RefineToSize(func(p geom.Point) float64 {
		// Fine near origin.
		return 0.05 + 0.4*math.Hypot(p.X, p.Y)
	}, 0)
	if splits == 0 {
		t.Fatal("expected splits")
	}
	for _, leaf := range tr.Leaves() {
		b := tr.Bounds(leaf)
		h := 0.05 + 0.4*math.Hypot(b.Center().X, b.Center().Y)
		if b.W() > h || b.H() > h {
			t.Errorf("leaf %d (%v) exceeds size %v", leaf, b, h)
		}
	}
	// Leaves near origin must be deeper than leaves far away.
	dNear := tr.Depth(tr.LeafAt(geom.Pt(0.01, 0.01)))
	dFar := tr.Depth(tr.LeafAt(geom.Pt(0.99, 0.99)))
	if dNear <= dFar {
		t.Errorf("expected gradation: near depth %d, far depth %d", dNear, dFar)
	}
}

func TestBalance(t *testing.T) {
	tr := unitTree()
	// Split SW corner repeatedly to create a sharp depth gradient.
	n := tr.Root()
	for i := 0; i < 6; i++ {
		kids := tr.Split(n)
		n = kids[SW]
	}
	tr.Balance()
	for _, leaf := range tr.Leaves() {
		for _, nb := range tr.Neighbors(leaf) {
			if d := tr.Depth(nb) - tr.Depth(leaf); d > 1 || d < -1 {
				t.Fatalf("2:1 balance violated: leaf depth %d vs neighbor depth %d",
					tr.Depth(leaf), tr.Depth(nb))
			}
		}
	}
}

func TestLeavesPartition(t *testing.T) {
	// Leaves always tile the root: areas sum to the root area and LeafAt
	// finds exactly one leaf for interior points.
	tr := unitTree()
	tr.RefineToSize(func(p geom.Point) float64 { return 0.07 + 0.3*p.X }, 0)
	var area float64
	for _, leaf := range tr.Leaves() {
		b := tr.Bounds(leaf)
		area += b.W() * b.H()
	}
	if math.Abs(area-1) > 1e-12 {
		t.Errorf("leaf areas sum to %v, want 1", area)
	}
	f := func(x, y float64) bool {
		p := geom.Pt(math.Abs(math.Mod(x, 1)), math.Abs(math.Mod(y, 1)))
		n := tr.LeafAt(p)
		return n != NoNode && tr.Bounds(n).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecode(t *testing.T) {
	tr := unitTree()
	tr.RefineToSize(func(p geom.Point) float64 { return 0.15 }, 0)
	var buf bytes.Buffer
	if err := tr.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != tr.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", tr.EncodedSize(), buf.Len())
	}
	var tr2 Tree
	if err := tr2.DecodeFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if tr2.NumNodes() != tr.NumNodes() || tr2.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("decode mismatch: nodes %d/%d leaves %d/%d",
			tr2.NumNodes(), tr.NumNodes(), tr2.NumLeaves(), tr.NumLeaves())
	}
	for _, leaf := range tr.Leaves() {
		if tr2.Bounds(leaf) != tr.Bounds(leaf) {
			t.Fatalf("leaf %d bounds differ", leaf)
		}
	}
	if err := (&Tree{}).DecodeFrom(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5, 6, 7})); err == nil {
		t.Error("bad magic should fail")
	}
}

package meshgen

import (
	"fmt"
	"sync"
	"time"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/workload"
)

// PCDMConfig configures a parallel constrained Delaunay meshing run: the
// unit square decomposed into Grid×Grid subdomains whose meshes conform to
// the subdomain boundaries, with interface segment splits propagated by
// small asynchronous messages.
type PCDMConfig struct {
	// Grid is the decomposition dimension (Grid×Grid subdomains).
	Grid int
	// TargetElements is the approximate total element count.
	TargetElements int
	// PEs is the number of processing elements.
	PEs int
	// QualityBound is the radius-edge bound (0 = default √2).
	QualityBound float64
}

func (c *PCDMConfig) defaults() error {
	if c.Grid <= 0 {
		c.Grid = 4
	}
	if c.PEs <= 0 {
		c.PEs = 1
	}
	if c.TargetElements <= 0 {
		return fmt.Errorf("meshgen: TargetElements must be positive")
	}
	return nil
}

// Subdomain neighbor sides.
const (
	sideLeft = iota
	sideRight
	sideBottom
	sideTop
)

// interfaceSide classifies a split midpoint against the subdomain rectangle:
// which side's interface line it lies on, or -1.
func interfaceSide(r geom.Rect, p geom.Point) int {
	switch {
	case p.X == r.Min.X:
		return sideLeft
	case p.X == r.Max.X:
		return sideRight
	case p.Y == r.Min.Y:
		return sideBottom
	case p.Y == r.Max.Y:
		return sideTop
	default:
		return -1
	}
}

// newSubdomainMesh builds the initial CDT of a rectangular subdomain: four
// corners, four constrained boundary segments, exterior carved.
func newSubdomainMesh(r geom.Rect) (*mesh.Mesh, error) {
	p := &delaunay.PSLG{
		Points: []geom.Point{
			r.Min, geom.Pt(r.Max.X, r.Min.Y), r.Max, geom.Pt(r.Min.X, r.Max.Y),
		},
		Segments: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	m, _, err := delaunay.BuildCDT(p)
	if err != nil {
		return nil, fmt.Errorf("meshgen: subdomain CDT: %w", err)
	}
	return m, nil
}

// refineSubdomain applies incoming interface split points to the mesh and
// runs quality/size refinement, returning the outgoing split points grouped
// by side.
func refineSubdomain(m *mesh.Mesh, r geom.Rect, splits []geom.Point,
	maxArea, beta float64, hasNb [4]bool) (out [4][]geom.Point, err error) {
	for _, p := range splits {
		if _, err := m.InsertPoint(p, mesh.NoTri); err != nil &&
			err != mesh.ErrDuplicate && err != mesh.ErrOutside {
			return out, fmt.Errorf("meshgen: applying split %v: %w", p, err)
		}
	}
	_, err = delaunay.Refine(m, delaunay.Options{
		QualityBound: beta,
		MaxArea:      maxArea,
		OnSegmentSplit: func(a, b, mid geom.Point) {
			if s := interfaceSide(r, mid); s >= 0 && hasNb[s] {
				out[s] = append(out[s], mid)
			}
		},
	})
	return out, err
}

// subdomainState is the in-core PCDM bookkeeping for one subdomain.
type subdomainState struct {
	mu        sync.Mutex
	rect      geom.Rect
	m         *mesh.Mesh
	pending   []geom.Point
	scheduled bool
	refined   bool // initial refinement done
}

// RunPCDM executes the in-core constrained Delaunay method: subdomains
// refined by a PE worker pool, interface splits exchanged as small
// asynchronous messages until the system goes quiet.
func RunPCDM(cfg PCDMConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	g := cfg.Grid
	maxArea := workload.UniformAreaFor(cfg.TargetElements, 1.0)

	subs := make([]*subdomainState, g*g)
	for j := 0; j < g; j++ {
		for i := 0; i < g; i++ {
			subs[j*g+i] = &subdomainState{rect: blockRect(g, i, j)}
		}
	}
	nbIndex := func(idx, side int) int {
		i, j := idx%g, idx/g
		switch side {
		case sideLeft:
			i--
		case sideRight:
			i++
		case sideBottom:
			j--
		case sideTop:
			j++
		}
		if i < 0 || i >= g || j < 0 || j >= g {
			return -1
		}
		return j*g + i
	}

	type task struct{ idx int }
	var wg sync.WaitGroup // counts outstanding tasks
	tasks := make(chan task, g*g*4)
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// schedule enqueues a task for idx if none is queued or running.
	var schedule func(idx int)
	schedule = func(idx int) {
		s := subs[idx]
		s.mu.Lock()
		if s.scheduled {
			s.mu.Unlock()
			return
		}
		s.scheduled = true
		s.mu.Unlock()
		wg.Add(1)
		tasks <- task{idx}
	}

	var workersWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < cfg.PEs; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for {
				select {
				case t := <-tasks:
					runPCDMTask(subs, t.idx, maxArea, cfg.QualityBound, g, nbIndex, schedule, fail)
					wg.Done()
				case <-stop:
					return
				}
			}
		}()
	}

	for idx := range subs {
		schedule(idx)
	}
	wg.Wait() // all tasks (including cascaded split tasks) done
	close(stop)
	workersWG.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	elements, vertices := 0, 0
	for _, s := range subs {
		elements += s.m.NumTriangles()
		vertices += s.m.NumVertices()
	}
	conforming := pcdmAudit(subs, g, nbIndex)
	return Result{
		Method:     "PCDM",
		Elements:   elements,
		Vertices:   vertices,
		Subdomains: g * g,
		PEs:        cfg.PEs,
		Elapsed:    time.Since(start),
		Conforming: conforming,
	}, nil
}

// runPCDMTask processes one subdomain: drain pending splits, refine,
// dispatch outgoing splits.
func runPCDMTask(subs []*subdomainState, idx int, maxArea, beta float64, g int,
	nbIndex func(int, int) int, schedule func(int), fail func(error)) {
	s := subs[idx]
	s.mu.Lock()
	splits := s.pending
	s.pending = nil
	if s.m == nil {
		m, err := newSubdomainMesh(s.rect)
		if err != nil {
			s.scheduled = false
			s.mu.Unlock()
			fail(err)
			return
		}
		s.m = m
	}
	m := s.m
	rect := s.rect
	s.mu.Unlock()

	var hasNb [4]bool
	for side := 0; side < 4; side++ {
		hasNb[side] = nbIndex(idx, side) >= 0
	}
	out, err := refineSubdomain(m, rect, splits, maxArea, beta, hasNb)
	if err != nil {
		fail(err)
	}

	s.mu.Lock()
	s.refined = true
	s.scheduled = false
	more := len(s.pending) > 0
	s.mu.Unlock()

	// Ship aggregated split messages to the neighbors.
	for side := 0; side < 4; side++ {
		if len(out[side]) == 0 {
			continue
		}
		nb := nbIndex(idx, side)
		if nb < 0 {
			continue
		}
		ns := subs[nb]
		ns.mu.Lock()
		ns.pending = append(ns.pending, out[side]...)
		ns.mu.Unlock()
		schedule(nb)
	}
	if more {
		schedule(idx)
	}
}

// pcdmAudit verifies interface conformity: both sides of every interface
// must hold identical point sets on the shared segment.
func pcdmAudit(subs []*subdomainState, g int, nbIndex func(int, int) int) bool {
	pts := make([][]geom.Point, len(subs))
	for i, s := range subs {
		pts[i] = hullPointsOf(s.m)
	}
	for idx, s := range subs {
		for _, side := range []int{sideRight, sideTop} {
			nb := nbIndex(idx, side)
			if nb < 0 {
				continue
			}
			a, b, ok := sharedEdge(s.rect, subs[nb].rect)
			if !ok {
				continue
			}
			pa := edgePointsOn(pts[idx], a, b)
			pb := edgePointsOn(pts[nb], a, b)
			if !samePoints(pa, pb) {
				return false
			}
		}
	}
	return true
}

// hullPointsOf returns the boundary (hull) vertices of a mesh.
func hullPointsOf(m *mesh.Mesh) []geom.Point {
	seen := make(map[geom.Point]bool)
	var out []geom.Point
	m.ForEachTri(func(id mesh.TriID, tr mesh.Tri) {
		for k := 0; k < 3; k++ {
			if tr.N[k] == mesh.NoTri {
				for _, v := range []mesh.VertexID{tr.V[(k+1)%3], tr.V[(k+2)%3]} {
					p := m.Vertex(v)
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	})
	return out
}

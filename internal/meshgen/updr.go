package meshgen

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mrts/internal/delaunay"
	"mrts/internal/geom"
	"mrts/internal/mesh"
	"mrts/internal/meshstore"
	"mrts/internal/workload"
)

// UPDRConfig configures a uniform parallel Delaunay refinement run over the
// unit square.
type UPDRConfig struct {
	// Blocks is the decomposition grid dimension: Blocks×Blocks subdomains.
	// The paper over-decomposes (N ≫ P).
	Blocks int
	// TargetElements is the approximate total element count.
	TargetElements int
	// PEs is the number of processing elements (worker goroutines).
	PEs int
	// QualityBound is the radius-edge bound (0 = default √2).
	QualityBound float64
	// KeepMeshes retains all block meshes in memory until the run ends
	// (the in-core behavior whose footprint the out-of-core build shrinks).
	// Element counts are collected either way.
	KeepMeshes bool
	// Export, when non-nil, frames every block into the meshstore chunk as
	// the dump pass visits it (RunOUPDR only). The writer is left open for
	// the caller to Finalize.
	Export *meshstore.Writer
}

func (c *UPDRConfig) defaults() error {
	if c.Blocks <= 0 {
		c.Blocks = 4
	}
	if c.PEs <= 0 {
		c.PEs = 1
	}
	if c.TargetElements <= 0 {
		return fmt.Errorf("meshgen: TargetElements must be positive")
	}
	return nil
}

// blockRect returns block (i,j)'s rectangle in the unit square.
func blockRect(blocks, i, j int) geom.Rect {
	w := 1.0 / float64(blocks)
	return geom.Rect{
		Min: geom.Pt(float64(i)*w, float64(j)*w),
		Max: geom.Pt(float64(i+1)*w, float64(j+1)*w),
	}
}

// meshBlock builds and refines one block's mesh: a CDT of the block
// rectangle whose boundary carries deterministically placed points at
// spacing h (the buffer-zone contract with the neighbors), refined to the
// uniform size internally.
func meshBlock(r geom.Rect, h, beta float64) (*blockMesh, error) {
	bpts := boundaryPoints(r, h)
	p := &delaunay.PSLG{Points: bpts}
	for i := range bpts {
		p.Segments = append(p.Segments, [2]int{i, (i + 1) % len(bpts)})
	}
	m, _, err := delaunay.BuildCDT(p)
	if err != nil {
		return nil, fmt.Errorf("meshgen: block CDT: %w", err)
	}
	maxArea := h * h * math.Sqrt(3) / 4
	// Boundary segments are frozen: the pre-placed spacing-h points are the
	// buffer-zone contract with the neighbors, so the interface needs no
	// further refinement (the UPDR design property).
	if _, err := delaunay.Refine(m, delaunay.Options{
		QualityBound:   beta,
		MaxArea:        maxArea,
		NoSegmentSplit: true,
	}); err != nil {
		return nil, fmt.Errorf("meshgen: block refine: %w", err)
	}
	return &blockMesh{rect: r, mesh: m, boundary: bpts}, nil
}

type blockMesh struct {
	rect     geom.Rect
	mesh     *mesh.Mesh
	boundary []geom.Point
}

// interfacePoints returns the block's boundary points on the given side
// (0=right edge, 1=top edge), for interface exchange with the neighbor.
func (b *blockMesh) interfacePoints(side int) []geom.Point {
	var a, c geom.Point
	switch side {
	case 0: // right edge
		a = geom.Pt(b.rect.Max.X, b.rect.Min.Y)
		c = b.rect.Max
	default: // top edge
		a = geom.Pt(b.rect.Min.X, b.rect.Max.Y)
		c = b.rect.Max
	}
	// The mesh may have split boundary segments during refinement; collect
	// actual hull points from the mesh rather than the initial spacing.
	return edgePointsOn(b.hullPoints(), a, c)
}

func (b *blockMesh) hullPoints() []geom.Point {
	seen := make(map[geom.Point]bool)
	var out []geom.Point
	m := b.mesh
	m.ForEachTri(func(id mesh.TriID, tr mesh.Tri) {
		for k := 0; k < 3; k++ {
			if tr.N[k] == mesh.NoTri {
				for _, v := range []mesh.VertexID{tr.V[(k+1)%3], tr.V[(k+2)%3]} {
					p := m.Vertex(v)
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
		}
	})
	return out
}

// RunUPDR executes the in-core uniform method: blocks are meshed in parallel
// by PE workers, then neighbors exchange interface point sets and verify
// conformity (the structured communication + global synchronization phase of
// the paper's UPDR).
func RunUPDR(cfg UPDRConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	h := workload.UniformSizeFor(cfg.TargetElements, 1.0)
	nb := cfg.Blocks

	blocks := make([]*blockMesh, nb*nb)
	var elements, vertices atomic.Int64

	// Phase 1: mesh blocks in parallel.
	type job struct{ i, j int }
	jobs := make(chan job, nb*nb)
	for j := 0; j < nb; j++ {
		for i := 0; i < nb; i++ {
			jobs <- job{i, j}
		}
	}
	close(jobs)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.PEs)
	for w := 0; w < cfg.PEs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				bm, err := meshBlock(blockRect(nb, jb.i, jb.j), h, cfg.QualityBound)
				if err != nil {
					errs <- err
					return
				}
				elements.Add(int64(bm.mesh.NumTriangles()))
				vertices.Add(int64(bm.mesh.NumVertices()))
				blocks[jb.j*nb+jb.i] = bm
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	// Phase 2 (global synchronization + structured exchange): each block
	// sends its right/top interface point sets to the respective neighbor,
	// which verifies them against its own.
	conforming := true
	type xfer struct {
		dst  int
		side int
		pts  []geom.Point
	}
	ch := make(chan xfer, nb*nb*2)
	for j := 0; j < nb; j++ {
		for i := 0; i < nb; i++ {
			b := blocks[j*nb+i]
			if i+1 < nb {
				ch <- xfer{dst: j*nb + i + 1, side: 0, pts: b.interfacePoints(0)}
			}
			if j+1 < nb {
				ch <- xfer{dst: (j+1)*nb + i, side: 1, pts: b.interfacePoints(1)}
			}
		}
	}
	close(ch)
	for x := range ch {
		dst := blocks[x.dst]
		var a, c geom.Point
		if x.side == 0 { // neighbor's left edge
			a = dst.rect.Min
			c = geom.Pt(dst.rect.Min.X, dst.rect.Max.Y)
		} else { // neighbor's bottom edge
			a = dst.rect.Min
			c = geom.Pt(dst.rect.Max.X, dst.rect.Min.Y)
		}
		mine := edgePointsOn(dst.hullPoints(), a, c)
		if !samePoints(mine, x.pts) {
			conforming = false
		}
	}

	if !cfg.KeepMeshes {
		for i := range blocks {
			blocks[i] = nil
		}
	}
	return Result{
		Method:     "UPDR",
		Elements:   int(elements.Load()),
		Vertices:   int(vertices.Load()),
		Subdomains: nb * nb,
		PEs:        cfg.PEs,
		Elapsed:    time.Since(start),
		Conforming: conforming,
	}, nil
}
